#include "src/wire/message.h"

#include <utility>

#include "src/base/assert.h"

namespace fractos {

// The shared field codecs are public (declared in message.h): the ObjectTable snapshot
// encoding reuses them so a field has exactly one wire format.
void encode_ref(Encoder& e, const ObjectRef& ref) {
  e.put_u32(ref.owner);
  e.put_u64(ref.index);
  e.put_u32(ref.reboot_count);
}

ObjectRef decode_ref(Decoder& d) {
  ObjectRef ref;
  ref.owner = d.get_u32();
  ref.index = d.get_u64();
  ref.reboot_count = d.get_u32();
  return ref;
}

void encode_mem_desc(Encoder& e, const MemoryDesc& m) {
  e.put_u32(m.node);
  e.put_u32(m.pool);
  e.put_u64(m.addr);
  e.put_u64(m.size);
}

MemoryDesc decode_mem_desc(Decoder& d) {
  MemoryDesc m;
  m.node = d.get_u32();
  m.pool = d.get_u32();
  m.addr = d.get_u64();
  m.size = d.get_u64();
  return m;
}

void encode_imms(Encoder& e, const std::vector<ImmExtent>& imms) {
  e.put_u32(static_cast<uint32_t>(imms.size()));
  for (const auto& imm : imms) {
    e.put_u32(imm.offset);
    e.put_bytes(imm.bytes);
  }
}

std::vector<ImmExtent> decode_imms(Decoder& d) {
  const uint32_t n = d.get_u32();
  std::vector<ImmExtent> imms;
  for (uint32_t i = 0; i < n && d.ok(); ++i) {
    ImmExtent imm;
    imm.offset = d.get_u32();
    imm.bytes = d.get_bytes();
    imms.push_back(std::move(imm));
  }
  return imms;
}

void encode_wire_cap(Encoder& e, const WireCap& c) {
  encode_ref(e, c.ref);
  e.put_u8(static_cast<uint8_t>(c.kind));
  e.put_u8(static_cast<uint8_t>(c.perms));
  encode_mem_desc(e, c.mem);
  e.put_bool(c.tracked);
}

WireCap decode_wire_cap(Decoder& d) {
  WireCap c;
  c.ref = decode_ref(d);
  c.kind = static_cast<ObjectKind>(d.get_u8());
  c.perms = static_cast<Perms>(d.get_u8());
  c.mem = decode_mem_desc(d);
  c.tracked = d.get_bool();
  return c;
}

void encode_repl_op(Encoder& e, const ReplicatedOp& op) {
  e.put_u8(static_cast<uint8_t>(op.kind));
  e.put_u64(op.requester);
  e.put_u64(op.base);
  e.put_u64(op.result_index);
  encode_mem_desc(e, op.mem);
  e.put_u8(static_cast<uint8_t>(op.perms));
  e.put_u64(op.offset);
  e.put_u64(op.size);
  e.put_u32(op.cid);
  e.put_u64(op.callback_id);
  e.put_u32(op.sub_controller);
  e.put_u64(op.sub_process);
  encode_imms(e, op.imms);
  e.put_u32(static_cast<uint32_t>(op.caps.size()));
  for (const auto& c : op.caps) {
    encode_wire_cap(e, c);
  }
  e.put_u32(static_cast<uint32_t>(op.indices.size()));
  for (uint64_t idx : op.indices) {
    e.put_u64(idx);
  }
}

ReplicatedOp decode_repl_op(Decoder& d) {
  ReplicatedOp op;
  op.kind = static_cast<ReplicatedOp::Kind>(d.get_u8());
  op.requester = d.get_u64();
  op.base = d.get_u64();
  op.result_index = d.get_u64();
  op.mem = decode_mem_desc(d);
  op.perms = static_cast<Perms>(d.get_u8());
  op.offset = d.get_u64();
  op.size = d.get_u64();
  op.cid = d.get_u32();
  op.callback_id = d.get_u64();
  op.sub_controller = d.get_u32();
  op.sub_process = d.get_u64();
  op.imms = decode_imms(d);
  const uint32_t ncaps = d.get_u32();
  for (uint32_t i = 0; i < ncaps && d.ok(); ++i) {
    op.caps.push_back(decode_wire_cap(d));
  }
  const uint32_t nidx = d.get_u32();
  for (uint32_t i = 0; i < nidx && d.ok(); ++i) {
    op.indices.push_back(d.get_u64());
  }
  return op;
}

namespace {

void encode_repl_entry(Encoder& e, const ReplLogEntry& entry) {
  e.put_u64(entry.index);
  e.put_u64(entry.term);
  encode_repl_op(e, entry.op);
}

ReplLogEntry decode_repl_entry(Decoder& d) {
  ReplLogEntry entry;
  entry.index = d.get_u64();
  entry.term = d.get_u64();
  entry.op = decode_repl_op(d);
  return entry;
}

// RemoteDerive/PeerReply bodies are shared between the single-op frames and the batch frames,
// so the batch encoding is byte-for-byte N copies of the single-op body plus a count.
void encode_remote_derive(Encoder& e, const RemoteDeriveMsg& m) {
  e.put_u64(m.op_id);
  encode_ref(e, m.base);
  e.put_u8(static_cast<uint8_t>(m.op));
  e.put_u64(m.requester);
  encode_imms(e, m.imms);
  e.put_u32(static_cast<uint32_t>(m.caps.size()));
  for (const auto& c : m.caps) {
    encode_wire_cap(e, c);
  }
  e.put_u64(m.offset);
  e.put_u64(m.size);
  e.put_u8(static_cast<uint8_t>(m.drop_perms));
}

RemoteDeriveMsg decode_remote_derive(Decoder& d) {
  RemoteDeriveMsg m;
  m.op_id = d.get_u64();
  m.base = decode_ref(d);
  m.op = static_cast<RemoteDeriveMsg::Op>(d.get_u8());
  m.requester = d.get_u64();
  m.imms = decode_imms(d);
  const uint32_t n = d.get_u32();
  for (uint32_t i = 0; i < n && d.ok(); ++i) {
    m.caps.push_back(decode_wire_cap(d));
  }
  m.offset = d.get_u64();
  m.size = d.get_u64();
  m.drop_perms = static_cast<Perms>(d.get_u8());
  return m;
}

void encode_peer_reply(Encoder& e, const PeerReplyMsg& m) {
  e.put_u64(m.op_id);
  e.put_u8(static_cast<uint8_t>(m.status));
  encode_wire_cap(e, m.result);
}

PeerReplyMsg decode_peer_reply(Decoder& d) {
  PeerReplyMsg m;
  m.op_id = d.get_u64();
  m.status = static_cast<ErrorCode>(d.get_u8());
  m.result = decode_wire_cap(d);
  return m;
}

struct BodyEncoder {
  Encoder& e;

  void operator()(const NullOpMsg&) {}
  void operator()(const MemoryCreateMsg& m) {
    e.put_u32(m.pool);
    e.put_u64(m.addr);
    e.put_u64(m.size);
    e.put_u8(static_cast<uint8_t>(m.perms));
  }
  void operator()(const MemoryDiminishMsg& m) {
    e.put_u32(m.cid);
    e.put_u64(m.offset);
    e.put_u64(m.size);
    e.put_u8(static_cast<uint8_t>(m.drop_perms));
  }
  void operator()(const MemoryCopyMsg& m) {
    e.put_u32(m.src);
    e.put_u32(m.dst);
    e.put_u64(m.src_off);
    e.put_u64(m.dst_off);
    e.put_u64(m.length);
  }
  void operator()(const RequestCreateMsg& m) {
    e.put_bool(m.has_base);
    e.put_u32(m.base);
    encode_imms(e, m.imms);
    e.put_u32(static_cast<uint32_t>(m.caps.size()));
    for (CapId cid : m.caps) {
      e.put_u32(cid);
    }
  }
  void operator()(const RequestInvokeMsg& m) {
    e.put_u32(m.cid);
    encode_imms(e, m.imms);
    e.put_u32(static_cast<uint32_t>(m.caps.size()));
    for (CapId cid : m.caps) {
      e.put_u32(cid);
    }
  }
  void operator()(const CapCreateRevtreeMsg& m) { e.put_u32(m.cid); }
  void operator()(const CapRevokeMsg& m) { e.put_u32(m.cid); }
  void operator()(const MonitorMsg& m) {
    e.put_u32(m.cid);
    e.put_u64(m.callback_id);
  }
  void operator()(const SyscallReplyMsg& m) {
    e.put_u64(m.call_seq);
    e.put_u8(static_cast<uint8_t>(m.status));
    e.put_u32(m.cid);
  }
  void operator()(const DeliverRequestMsg& m) {
    e.put_u32(m.endpoint_cid);
    encode_imms(e, m.imms);
    e.put_u32(static_cast<uint32_t>(m.caps.size()));
    for (const auto& c : m.caps) {
      e.put_u32(c.cid);
      e.put_u8(static_cast<uint8_t>(c.kind));
      e.put_u8(static_cast<uint8_t>(c.perms));
      e.put_u64(c.mem_size);
    }
  }
  void operator()(const MonitorCallbackMsg& m) {
    e.put_u64(m.callback_id);
    e.put_bool(m.delegate_mode);
  }
  void operator()(const DeliverAckMsg&) {}
  void operator()(const RemoteDeriveMsg& m) { encode_remote_derive(e, m); }
  void operator()(const PeerReplyMsg& m) { encode_peer_reply(e, m); }
  void operator()(const RemoteDeriveBatchMsg& m) {
    e.put_u32(static_cast<uint32_t>(m.ops.size()));
    for (const auto& op : m.ops) {
      encode_remote_derive(e, op);
    }
  }
  void operator()(const PeerReplyBatchMsg& m) {
    e.put_u32(static_cast<uint32_t>(m.replies.size()));
    for (const auto& r : m.replies) {
      encode_peer_reply(e, r);
    }
  }
  void operator()(const RemoteInvokeMsg& m) {
    encode_ref(e, m.target);
    encode_imms(e, m.imms);
    e.put_u32(static_cast<uint32_t>(m.caps.size()));
    for (const auto& c : m.caps) {
      encode_wire_cap(e, c);
    }
    e.put_u32(m.origin);
    e.put_u64(m.invoke_id);
  }
  void operator()(const RemoteInvokeErrorMsg& m) {
    e.put_u64(m.invoke_id);
    e.put_u8(static_cast<uint8_t>(m.status));
  }
  void operator()(const RevokeBroadcastMsg& m) {
    e.put_u64(m.cleanup_id);
    e.put_u32(static_cast<uint32_t>(m.revoked.size()));
    for (const auto& ref : m.revoked) {
      encode_ref(e, ref);
    }
  }
  void operator()(const RevokeAckMsg& m) { e.put_u64(m.cleanup_id); }
  void operator()(const RegisterMonitorMsg& m) {
    encode_ref(e, m.target);
    e.put_bool(m.delegate_mode);
    e.put_u64(m.callback_id);
    e.put_u32(m.subscriber_controller);
    e.put_u64(m.subscriber_process);
  }
  void operator()(const MonitorFiredMsg& m) {
    e.put_u64(m.process);
    e.put_u64(m.callback_id);
    e.put_bool(m.delegate_mode);
  }
  void operator()(const ReplAppendMsg& m) {
    e.put_u32(m.seat);
    e.put_u32(m.leader);
    e.put_u64(m.term);
    e.put_u64(m.prev_index);
    e.put_u64(m.prev_term);
    e.put_u64(m.commit_index);
    e.put_u32(static_cast<uint32_t>(m.entries.size()));
    for (const auto& entry : m.entries) {
      encode_repl_entry(e, entry);
    }
  }
  void operator()(const ReplAppendReplyMsg& m) {
    e.put_u32(m.seat);
    e.put_u32(m.from);
    e.put_u64(m.term);
    e.put_bool(m.ok);
    e.put_u64(m.match_index);
    e.put_bool(m.need_snapshot);
  }
  void operator()(const ReplVoteMsg& m) {
    e.put_u32(m.seat);
    e.put_u32(m.candidate);
    e.put_u64(m.term);
    e.put_u64(m.last_log_index);
    e.put_u64(m.last_log_term);
  }
  void operator()(const ReplVoteReplyMsg& m) {
    e.put_u32(m.seat);
    e.put_u32(m.from);
    e.put_u64(m.term);
    e.put_bool(m.granted);
  }
  void operator()(const ReplLeaderAnnounceMsg& m) {
    e.put_u32(m.seat);
    e.put_u32(m.leader);
    e.put_u64(m.term);
  }
  void operator()(const ReplSnapshotMsg& m) {
    e.put_u32(m.seat);
    e.put_u32(m.leader);
    e.put_u64(m.term);
    e.put_u64(m.last_index);
    e.put_u64(m.last_term);
    e.put_bytes(m.blob);
  }
};

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kNullOp: return "NullOp";
    case MsgType::kMemoryCreate: return "MemoryCreate";
    case MsgType::kMemoryDiminish: return "MemoryDiminish";
    case MsgType::kMemoryCopy: return "MemoryCopy";
    case MsgType::kRequestCreate: return "RequestCreate";
    case MsgType::kRequestInvoke: return "RequestInvoke";
    case MsgType::kCapCreateRevtree: return "CapCreateRevtree";
    case MsgType::kCapRevoke: return "CapRevoke";
    case MsgType::kMonitorDelegate: return "MonitorDelegate";
    case MsgType::kMonitorReceive: return "MonitorReceive";
    case MsgType::kSyscallReply: return "SyscallReply";
    case MsgType::kDeliverRequest: return "DeliverRequest";
    case MsgType::kDeliverAck: return "DeliverAck";
    case MsgType::kMonitorCallback: return "MonitorCallback";
    case MsgType::kRemoteInvoke: return "RemoteInvoke";
    case MsgType::kRemoteInvokeError: return "RemoteInvokeError";
    case MsgType::kRemoteDerive: return "RemoteDerive";
    case MsgType::kPeerReply: return "PeerReply";
    case MsgType::kRevokeBroadcast: return "RevokeBroadcast";
    case MsgType::kRevokeAck: return "RevokeAck";
    case MsgType::kRegisterMonitor: return "RegisterMonitor";
    case MsgType::kMonitorFired: return "MonitorFired";
    case MsgType::kRemoteDeriveBatch: return "RemoteDeriveBatch";
    case MsgType::kPeerReplyBatch: return "PeerReplyBatch";
    case MsgType::kReplAppend: return "ReplAppend";
    case MsgType::kReplAppendReply: return "ReplAppendReply";
    case MsgType::kReplVote: return "ReplVote";
    case MsgType::kReplVoteReply: return "ReplVoteReply";
    case MsgType::kReplLeaderAnnounce: return "ReplLeaderAnnounce";
    case MsgType::kReplSnapshot: return "ReplSnapshot";
  }
  return "unknown";
}

NameId msg_type_span_name(MsgType t) {
  // thread_local: shard workers fill their own cache instead of racing on one (the interned
  // id for a given name is identical on every thread, only the lazy fill would race).
  static thread_local NameId cache[256] = {};
  NameId& id = cache[static_cast<uint8_t>(t)];
  if (id == kInvalidNameId) {
    id = intern_name(msg_type_name(t));
  }
  return id;
}

std::vector<uint8_t> encode_envelope(const Envelope& env) {
  Encoder e;
  e.put_u8(static_cast<uint8_t>(env.type));
  e.put_u64(env.seq);
  std::visit(BodyEncoder{e}, env.body);
  return e.take();
}

Result<Envelope> decode_envelope(const std::vector<uint8_t>& buf) {
  Decoder d(buf);
  Envelope env;
  env.type = static_cast<MsgType>(d.get_u8());
  env.seq = d.get_u64();
  switch (env.type) {
    case MsgType::kNullOp:
      env.body = NullOpMsg{};
      break;
    case MsgType::kMemoryCreate: {
      MemoryCreateMsg m;
      m.pool = d.get_u32();
      m.addr = d.get_u64();
      m.size = d.get_u64();
      m.perms = static_cast<Perms>(d.get_u8());
      env.body = m;
      break;
    }
    case MsgType::kMemoryDiminish: {
      MemoryDiminishMsg m;
      m.cid = d.get_u32();
      m.offset = d.get_u64();
      m.size = d.get_u64();
      m.drop_perms = static_cast<Perms>(d.get_u8());
      env.body = m;
      break;
    }
    case MsgType::kMemoryCopy: {
      MemoryCopyMsg m;
      m.src = d.get_u32();
      m.dst = d.get_u32();
      m.src_off = d.get_u64();
      m.dst_off = d.get_u64();
      m.length = d.get_u64();
      env.body = m;
      break;
    }
    case MsgType::kRequestCreate: {
      RequestCreateMsg m;
      m.has_base = d.get_bool();
      m.base = d.get_u32();
      m.imms = decode_imms(d);
      const uint32_t n = d.get_u32();
      for (uint32_t i = 0; i < n && d.ok(); ++i) {
        m.caps.push_back(d.get_u32());
      }
      env.body = std::move(m);
      break;
    }
    case MsgType::kRequestInvoke: {
      RequestInvokeMsg m;
      m.cid = d.get_u32();
      m.imms = decode_imms(d);
      const uint32_t n = d.get_u32();
      for (uint32_t i = 0; i < n && d.ok(); ++i) {
        m.caps.push_back(d.get_u32());
      }
      env.body = std::move(m);
      break;
    }
    case MsgType::kCapCreateRevtree: {
      CapCreateRevtreeMsg m;
      m.cid = d.get_u32();
      env.body = m;
      break;
    }
    case MsgType::kCapRevoke: {
      CapRevokeMsg m;
      m.cid = d.get_u32();
      env.body = m;
      break;
    }
    case MsgType::kMonitorDelegate:
    case MsgType::kMonitorReceive: {
      MonitorMsg m;
      m.cid = d.get_u32();
      m.callback_id = d.get_u64();
      env.body = m;
      break;
    }
    case MsgType::kSyscallReply: {
      SyscallReplyMsg m;
      m.call_seq = d.get_u64();
      m.status = static_cast<ErrorCode>(d.get_u8());
      m.cid = d.get_u32();
      env.body = m;
      break;
    }
    case MsgType::kDeliverRequest: {
      DeliverRequestMsg m;
      m.endpoint_cid = d.get_u32();
      m.imms = decode_imms(d);
      const uint32_t n = d.get_u32();
      for (uint32_t i = 0; i < n && d.ok(); ++i) {
        DeliveredCap c;
        c.cid = d.get_u32();
        c.kind = static_cast<ObjectKind>(d.get_u8());
        c.perms = static_cast<Perms>(d.get_u8());
        c.mem_size = d.get_u64();
        m.caps.push_back(c);
      }
      env.body = std::move(m);
      break;
    }
    case MsgType::kMonitorCallback: {
      MonitorCallbackMsg m;
      m.callback_id = d.get_u64();
      m.delegate_mode = d.get_bool();
      env.body = m;
      break;
    }
    case MsgType::kDeliverAck:
      env.body = DeliverAckMsg{};
      break;
    case MsgType::kRemoteDerive: {
      env.body = decode_remote_derive(d);
      break;
    }
    case MsgType::kPeerReply: {
      env.body = decode_peer_reply(d);
      break;
    }
    case MsgType::kRemoteDeriveBatch: {
      RemoteDeriveBatchMsg m;
      const uint32_t n = d.get_u32();
      for (uint32_t i = 0; i < n && d.ok(); ++i) {
        m.ops.push_back(decode_remote_derive(d));
      }
      env.body = std::move(m);
      break;
    }
    case MsgType::kPeerReplyBatch: {
      PeerReplyBatchMsg m;
      const uint32_t n = d.get_u32();
      for (uint32_t i = 0; i < n && d.ok(); ++i) {
        m.replies.push_back(decode_peer_reply(d));
      }
      env.body = std::move(m);
      break;
    }
    case MsgType::kRemoteInvoke: {
      RemoteInvokeMsg m;
      m.target = decode_ref(d);
      m.imms = decode_imms(d);
      const uint32_t n = d.get_u32();
      for (uint32_t i = 0; i < n && d.ok(); ++i) {
        m.caps.push_back(decode_wire_cap(d));
      }
      m.origin = d.get_u32();
      m.invoke_id = d.get_u64();
      env.body = std::move(m);
      break;
    }
    case MsgType::kRemoteInvokeError: {
      RemoteInvokeErrorMsg m;
      m.invoke_id = d.get_u64();
      m.status = static_cast<ErrorCode>(d.get_u8());
      env.body = m;
      break;
    }
    case MsgType::kRevokeBroadcast: {
      RevokeBroadcastMsg m;
      m.cleanup_id = d.get_u64();
      const uint32_t n = d.get_u32();
      for (uint32_t i = 0; i < n && d.ok(); ++i) {
        m.revoked.push_back(decode_ref(d));
      }
      env.body = std::move(m);
      break;
    }
    case MsgType::kRevokeAck: {
      RevokeAckMsg m;
      m.cleanup_id = d.get_u64();
      env.body = m;
      break;
    }
    case MsgType::kRegisterMonitor: {
      RegisterMonitorMsg m;
      m.target = decode_ref(d);
      m.delegate_mode = d.get_bool();
      m.callback_id = d.get_u64();
      m.subscriber_controller = d.get_u32();
      m.subscriber_process = d.get_u64();
      env.body = m;
      break;
    }
    case MsgType::kMonitorFired: {
      MonitorFiredMsg m;
      m.process = d.get_u64();
      m.callback_id = d.get_u64();
      m.delegate_mode = d.get_bool();
      env.body = m;
      break;
    }
    case MsgType::kReplAppend: {
      ReplAppendMsg m;
      m.seat = d.get_u32();
      m.leader = d.get_u32();
      m.term = d.get_u64();
      m.prev_index = d.get_u64();
      m.prev_term = d.get_u64();
      m.commit_index = d.get_u64();
      const uint32_t n = d.get_u32();
      for (uint32_t i = 0; i < n && d.ok(); ++i) {
        m.entries.push_back(decode_repl_entry(d));
      }
      env.body = std::move(m);
      break;
    }
    case MsgType::kReplAppendReply: {
      ReplAppendReplyMsg m;
      m.seat = d.get_u32();
      m.from = d.get_u32();
      m.term = d.get_u64();
      m.ok = d.get_bool();
      m.match_index = d.get_u64();
      m.need_snapshot = d.get_bool();
      env.body = m;
      break;
    }
    case MsgType::kReplVote: {
      ReplVoteMsg m;
      m.seat = d.get_u32();
      m.candidate = d.get_u32();
      m.term = d.get_u64();
      m.last_log_index = d.get_u64();
      m.last_log_term = d.get_u64();
      env.body = m;
      break;
    }
    case MsgType::kReplVoteReply: {
      ReplVoteReplyMsg m;
      m.seat = d.get_u32();
      m.from = d.get_u32();
      m.term = d.get_u64();
      m.granted = d.get_bool();
      env.body = m;
      break;
    }
    case MsgType::kReplLeaderAnnounce: {
      ReplLeaderAnnounceMsg m;
      m.seat = d.get_u32();
      m.leader = d.get_u32();
      m.term = d.get_u64();
      env.body = m;
      break;
    }
    case MsgType::kReplSnapshot: {
      ReplSnapshotMsg m;
      m.seat = d.get_u32();
      m.leader = d.get_u32();
      m.term = d.get_u64();
      m.last_index = d.get_u64();
      m.last_term = d.get_u64();
      m.blob = d.get_bytes();
      env.body = std::move(m);
      break;
    }
    default:
      return ErrorCode::kInvalidArgument;
  }
  if (!d.done()) {
    return ErrorCode::kInvalidArgument;
  }
  return env;
}

namespace {
Envelope envelope_of(uint64_t seq, MsgType type, MsgBody body) {
  Envelope env;
  env.seq = seq;
  env.type = type;
  env.body = std::move(body);
  return env;
}
}  // namespace

Envelope make_envelope(uint64_t seq, NullOpMsg m) {
  return envelope_of(seq, MsgType::kNullOp, m);
}
Envelope make_envelope(uint64_t seq, MemoryCreateMsg m) {
  return envelope_of(seq, MsgType::kMemoryCreate, m);
}
Envelope make_envelope(uint64_t seq, MemoryDiminishMsg m) {
  return envelope_of(seq, MsgType::kMemoryDiminish, m);
}
Envelope make_envelope(uint64_t seq, MemoryCopyMsg m) {
  return envelope_of(seq, MsgType::kMemoryCopy, m);
}
Envelope make_envelope(uint64_t seq, RequestCreateMsg m) {
  return envelope_of(seq, MsgType::kRequestCreate, std::move(m));
}
Envelope make_envelope(uint64_t seq, RequestInvokeMsg m) {
  return envelope_of(seq, MsgType::kRequestInvoke, m);
}
Envelope make_envelope(uint64_t seq, CapCreateRevtreeMsg m) {
  return envelope_of(seq, MsgType::kCapCreateRevtree, m);
}
Envelope make_envelope(uint64_t seq, CapRevokeMsg m) {
  return envelope_of(seq, MsgType::kCapRevoke, m);
}
Envelope make_envelope(uint64_t seq, MonitorMsg m, bool delegate_mode) {
  return envelope_of(seq, delegate_mode ? MsgType::kMonitorDelegate : MsgType::kMonitorReceive,
                     m);
}
Envelope make_envelope(uint64_t seq, SyscallReplyMsg m) {
  return envelope_of(seq, MsgType::kSyscallReply, m);
}
Envelope make_envelope(uint64_t seq, DeliverRequestMsg m) {
  return envelope_of(seq, MsgType::kDeliverRequest, std::move(m));
}
Envelope make_envelope(uint64_t seq, DeliverAckMsg m) {
  return envelope_of(seq, MsgType::kDeliverAck, m);
}
Envelope make_envelope(uint64_t seq, MonitorCallbackMsg m) {
  return envelope_of(seq, MsgType::kMonitorCallback, m);
}
Envelope make_envelope(uint64_t seq, RemoteInvokeMsg m) {
  return envelope_of(seq, MsgType::kRemoteInvoke, std::move(m));
}
Envelope make_envelope(uint64_t seq, RemoteInvokeErrorMsg m) {
  return envelope_of(seq, MsgType::kRemoteInvokeError, m);
}
Envelope make_envelope(uint64_t seq, RemoteDeriveMsg m) {
  return envelope_of(seq, MsgType::kRemoteDerive, std::move(m));
}
Envelope make_envelope(uint64_t seq, PeerReplyMsg m) {
  return envelope_of(seq, MsgType::kPeerReply, m);
}
Envelope make_envelope(uint64_t seq, RevokeBroadcastMsg m) {
  return envelope_of(seq, MsgType::kRevokeBroadcast, std::move(m));
}
Envelope make_envelope(uint64_t seq, RevokeAckMsg m) {
  return envelope_of(seq, MsgType::kRevokeAck, m);
}
Envelope make_envelope(uint64_t seq, RegisterMonitorMsg m) {
  return envelope_of(seq, MsgType::kRegisterMonitor, m);
}
Envelope make_envelope(uint64_t seq, MonitorFiredMsg m) {
  return envelope_of(seq, MsgType::kMonitorFired, m);
}
Envelope make_envelope(uint64_t seq, RemoteDeriveBatchMsg m) {
  return envelope_of(seq, MsgType::kRemoteDeriveBatch, std::move(m));
}
Envelope make_envelope(uint64_t seq, PeerReplyBatchMsg m) {
  return envelope_of(seq, MsgType::kPeerReplyBatch, std::move(m));
}
Envelope make_envelope(uint64_t seq, ReplAppendMsg m) {
  return envelope_of(seq, MsgType::kReplAppend, std::move(m));
}
Envelope make_envelope(uint64_t seq, ReplAppendReplyMsg m) {
  return envelope_of(seq, MsgType::kReplAppendReply, m);
}
Envelope make_envelope(uint64_t seq, ReplVoteMsg m) {
  return envelope_of(seq, MsgType::kReplVote, m);
}
Envelope make_envelope(uint64_t seq, ReplVoteReplyMsg m) {
  return envelope_of(seq, MsgType::kReplVoteReply, m);
}
Envelope make_envelope(uint64_t seq, ReplLeaderAnnounceMsg m) {
  return envelope_of(seq, MsgType::kReplLeaderAnnounce, m);
}
Envelope make_envelope(uint64_t seq, ReplSnapshotMsg m) {
  return envelope_of(seq, MsgType::kReplSnapshot, std::move(m));
}

uint64_t imm_bytes(const std::vector<ImmExtent>& imms) {
  uint64_t total = 0;
  for (const auto& imm : imms) {
    total += imm.bytes.size();
  }
  return total;
}

}  // namespace fractos
