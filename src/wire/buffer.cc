#include "src/wire/buffer.h"

namespace fractos {

void Encoder::put_bytes(const std::vector<uint8_t>& bytes) {
  put_u32(static_cast<uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Encoder::put_string(const std::string& s) {
  put_u32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::put_raw(const uint8_t* data, size_t len) { buf_.insert(buf_.end(), data, data + len); }

std::vector<uint8_t> Decoder::get_bytes() {
  const uint32_t n = get_u32();
  if (!ok_ || pos_ + n > len_) {
    ok_ = false;
    pos_ = len_;
    return {};
  }
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

std::string Decoder::get_string() {
  const uint32_t n = get_u32();
  if (!ok_ || pos_ + n > len_) {
    ok_ = false;
    pos_ = len_;
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return out;
}

}  // namespace fractos
