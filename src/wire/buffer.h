// Bounds-checked binary encoding. All FractOS protocol messages are serialized through
// Encoder/Decoder; the encoded size is what the fabric charges to the wire, so serialization
// here is what makes the reproduction's byte accounting honest.
//
// Format: little-endian fixed-width integers, length-prefixed byte strings. Decoder never
// aborts on malformed input: it latches a failure flag and returns zeros, and callers check
// ok() once at the end (hardened against truncated/garbage buffers; tested by fuzz-ish tests).

#ifndef SRC_WIRE_BUFFER_H_
#define SRC_WIRE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace fractos {

class Encoder {
 public:
  void put_u8(uint8_t v) { buf_.push_back(v); }
  void put_u16(uint16_t v) { put_le(v); }
  void put_u32(uint32_t v) { put_le(v); }
  void put_u64(uint64_t v) { put_le(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  // Length-prefixed (u32) byte string.
  void put_bytes(const std::vector<uint8_t>& bytes);
  void put_string(const std::string& s);

  // Raw append, no length prefix (caller encodes the length separately).
  void put_raw(const uint8_t* data, size_t len);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

class Decoder {
 public:
  Decoder(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Decoder(const std::vector<uint8_t>& buf) : Decoder(buf.data(), buf.size()) {}

  uint8_t get_u8() { return get_le<uint8_t>(); }
  uint16_t get_u16() { return get_le<uint16_t>(); }
  uint32_t get_u32() { return get_le<uint32_t>(); }
  uint64_t get_u64() { return get_le<uint64_t>(); }
  bool get_bool() { return get_u8() != 0; }

  std::vector<uint8_t> get_bytes();
  std::string get_string();

  // True iff no read has run past the end of the buffer so far.
  bool ok() const { return ok_; }
  // True iff the whole buffer was consumed and no read failed.
  bool done() const { return ok_ && pos_ == len_; }
  size_t remaining() const { return len_ - pos_; }

 private:
  template <typename T>
  T get_le() {
    if (pos_ + sizeof(T) > len_) {
      ok_ = false;
      pos_ = len_;
      return T{};
    }
    T v{};
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fractos

#endif  // SRC_WIRE_BUFFER_H_
