// FractOS protocol messages.
//
// Three message planes share one envelope format:
//   1. Process -> Controller syscalls (Table 1 of the paper) and their replies. Syscalls are
//      "fully asynchronous and posted into a message-passing channel"; the seq field matches
//      replies to calls.
//   2. Controller -> Process deliveries: received Requests (the request_receive descriptor)
//      and monitor callbacks.
//   3. Controller <-> Controller: forwarded Request invocations (with capability delegation
//      piggybacked), revocation broadcasts (the prototype's cleanup algorithm), and monitor
//      subscriptions/firings.
//
// Every message is encoded with src/wire/buffer.h before entering a channel; the encoded size
// is the number of bytes charged to the simulated network.

#ifndef SRC_WIRE_MESSAGE_H_
#define SRC_WIRE_MESSAGE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/base/result.h"
#include "src/cap/types.h"
#include "src/sim/intern.h"
#include "src/wire/buffer.h"

namespace fractos {

enum class MsgType : uint8_t {
  // Plane 1: syscalls.
  kNullOp = 0,
  kMemoryCreate,
  kMemoryDiminish,
  kMemoryCopy,
  kRequestCreate,
  kRequestInvoke,
  kCapCreateRevtree,
  kCapRevoke,
  kMonitorDelegate,
  kMonitorReceive,
  kSyscallReply,
  // Plane 2: controller -> process (and kDeliverAck back).
  kDeliverRequest,
  kDeliverAck,
  kMonitorCallback,
  // Plane 3: controller <-> controller.
  kRemoteInvoke,
  kRemoteInvokeError,
  kRemoteDerive,
  kPeerReply,
  kRevokeBroadcast,
  kRevokeAck,
  kRegisterMonitor,
  kMonitorFired,
  // Appended (wire compatibility): batched owner-bound capability ops.
  kRemoteDeriveBatch,
  kPeerReplyBatch,
  // Appended: controller-metadata replication (leader lease + quorum log, DESIGN.md §4h).
  kReplAppend,
  kReplAppendReply,
  kReplVote,
  kReplVoteReply,
  kReplLeaderAnnounce,
  kReplSnapshot,
};

const char* msg_type_name(MsgType t);

// msg_type_name, pre-interned and cached per type — span sites that label a span with the
// message type pay an array index instead of building a string key.
NameId msg_type_span_name(MsgType t);

// An immediate-argument extent of a Request: bytes at a fixed offset in the argument buffer
// (Table 1: "(offset, size, addr)" triples; the addr'ed bytes are captured at create time).
struct ImmExtent {
  uint32_t offset = 0;
  std::vector<uint8_t> bytes;

  uint32_t end() const { return offset + static_cast<uint32_t>(bytes.size()); }
  bool operator==(const ImmExtent&) const = default;
};

// A capability traveling between Controllers (inside kRemoteInvoke). Memory capabilities
// carry their location descriptor — the rkey analogue — so third-party transfers need no
// extra resolution round trip.
struct WireCap {
  ObjectRef ref;
  ObjectKind kind = ObjectKind::kMemory;
  Perms perms = Perms::kNone;
  MemoryDesc mem;  // meaningful iff kind == kMemory
  // True when the owner created a per-delegation revocation-tree child for this capability
  // (monitor_delegate interception, Section 3.6). A holder's Controller revokes tracked
  // entries at the owner when the holder fails, which is what decrements the owner's
  // outstanding-delegation counter.
  bool tracked = false;

  bool operator==(const WireCap&) const = default;
};

// --- Plane 1: syscall payloads ------------------------------------------------------------

struct NullOpMsg {
  bool operator==(const NullOpMsg&) const = default;
};

struct MemoryCreateMsg {
  uint32_t pool = 0;
  uint64_t addr = 0;
  uint64_t size = 0;
  Perms perms = Perms::kReadWrite;
  bool operator==(const MemoryCreateMsg&) const = default;
};

struct MemoryDiminishMsg {
  CapId cid = kInvalidCap;
  uint64_t offset = 0;
  uint64_t size = 0;
  Perms drop_perms = Perms::kNone;
  bool operator==(const MemoryDiminishMsg&) const = default;
};

// memory_copy with optional sub-range addressing: `length == 0` means "whole overlap"
// (min of the two views). Offsets let services reuse one staging-window capability across
// operations instead of deriving a fresh Memory object per I/O.
struct MemoryCopyMsg {
  CapId src = kInvalidCap;
  CapId dst = kInvalidCap;
  uint64_t src_off = 0;
  uint64_t dst_off = 0;
  uint64_t length = 0;
  bool operator==(const MemoryCopyMsg&) const = default;
};

struct RequestCreateMsg {
  bool has_base = false;   // false: new root Request with the caller as provider
  CapId base = kInvalidCap;
  std::vector<ImmExtent> imms;
  std::vector<CapId> caps;
  bool operator==(const RequestCreateMsg&) const = default;
};

// request_invoke, optionally carrying a final (ephemeral) refinement layer. Invoke-time
// arguments are what make a client-supplied-argument RPC a single message: the args ride the
// invoke instead of requiring a request_create round trip to the owner first. (The persistent
// form of refinement is RequestCreateMsg with a base.)
struct RequestInvokeMsg {
  CapId cid = kInvalidCap;
  std::vector<ImmExtent> imms;
  std::vector<CapId> caps;
  bool operator==(const RequestInvokeMsg&) const = default;
};

struct CapCreateRevtreeMsg {
  CapId cid = kInvalidCap;
  bool operator==(const CapCreateRevtreeMsg&) const = default;
};

struct CapRevokeMsg {
  CapId cid = kInvalidCap;
  bool operator==(const CapRevokeMsg&) const = default;
};

struct MonitorMsg {  // kMonitorDelegate / kMonitorReceive
  CapId cid = kInvalidCap;
  uint64_t callback_id = 0;
  bool operator==(const MonitorMsg&) const = default;
};

struct SyscallReplyMsg {
  uint64_t call_seq = 0;  // seq of the syscall being answered
  ErrorCode status = ErrorCode::kOk;
  CapId cid = kInvalidCap;  // result capability, when the syscall produces one
  bool operator==(const SyscallReplyMsg&) const = default;
};

// --- Plane 2: controller -> process payloads ----------------------------------------------

// A capability installed into the receiver's space as part of a Request delivery.
struct DeliveredCap {
  CapId cid = kInvalidCap;
  ObjectKind kind = ObjectKind::kMemory;
  Perms perms = Perms::kNone;
  uint64_t mem_size = 0;  // extent size for Memory capabilities (0 for Requests)
  bool operator==(const DeliveredCap&) const = default;
};

// The request_receive descriptor of Table 1: immediates + capabilities.
struct DeliverRequestMsg {
  CapId endpoint_cid = kInvalidCap;  // the provider's own cid for the invoked root Request
  std::vector<ImmExtent> imms;
  std::vector<DeliveredCap> caps;
  bool operator==(const DeliverRequestMsg&) const = default;
};

struct MonitorCallbackMsg {  // monitor_delegate_cb / monitor_receive_cb
  uint64_t callback_id = 0;
  bool delegate_mode = false;  // true: monitor_delegate_cb, false: monitor_receive_cb
  bool operator==(const MonitorCallbackMsg&) const = default;
};

// Flow control: the Process runtime acknowledges a handled delivery; the Controller admits at
// most `congestion_window` unacknowledged deliveries per Process ("FractOS implements
// congestion control by limiting the number of outstanding FractOS responses in a Process",
// Section 4). Always node-local or PCIe traffic, never cross-node.
struct DeliverAckMsg {
  bool operator==(const DeliverAckMsg&) const = default;
};

// --- Plane 3: controller <-> controller payloads ------------------------------------------

struct RemoteInvokeMsg {
  ObjectRef target;  // the (base) Request object at the destination Controller
  std::vector<ImmExtent> imms;
  std::vector<WireCap> caps;
  ControllerAddr origin = kInvalidController;
  uint64_t invoke_id = 0;  // lets the origin match kRemoteInvokeError notifications
  bool operator==(const RemoteInvokeMsg&) const = default;
};

struct RemoteInvokeErrorMsg {
  uint64_t invoke_id = 0;
  ErrorCode status = ErrorCode::kInternal;
  bool operator==(const RemoteInvokeErrorMsg&) const = default;
};

// Derivation at the owner ("Creating or revoking capabilities requires a single message to
// the owning Controller", Section 3.5): one message derives a Request refinement, a Memory
// diminish, or a revocation-tree child, and kPeerReply returns the new object.
struct RemoteDeriveMsg {
  enum class Op : uint8_t {
    kRequestRefine = 0,
    kMemoryDiminish = 1,
    kRevtreeChild = 2,
    kRevoke = 3,
  };
  uint64_t op_id = 0;
  ObjectRef base;
  Op op = Op::kRequestRefine;
  ProcessId requester = kInvalidProcess;  // creator recorded on the derived object
  // kRequestRefine:
  std::vector<ImmExtent> imms;
  std::vector<WireCap> caps;
  // kMemoryDiminish:
  uint64_t offset = 0;
  uint64_t size = 0;
  Perms drop_perms = Perms::kNone;
  bool operator==(const RemoteDeriveMsg&) const = default;
};

// Generic controller-to-controller reply (RemoteDerive, RegisterMonitor).
struct PeerReplyMsg {
  uint64_t op_id = 0;
  ErrorCode status = ErrorCode::kOk;
  WireCap result;  // the derived object, when status == kOk and the op yields one
  bool operator==(const PeerReplyMsg&) const = default;
};

// N owner-bound capability ops (grant/refine/diminish/revoke) in one wire message. Each inner
// op keeps its own idempotent op_id, so receiver-side dedup and the sender's per-op promise
// bookkeeping are identical to the unbatched path; only the framing (and the per-message
// syscall overhead at the receiver) is amortized. Answered by one kPeerReplyBatch carrying
// the per-op replies in op order.
struct RemoteDeriveBatchMsg {
  std::vector<RemoteDeriveMsg> ops;
  bool operator==(const RemoteDeriveBatchMsg&) const = default;
};

struct PeerReplyBatchMsg {
  std::vector<PeerReplyMsg> replies;
  bool operator==(const PeerReplyBatchMsg&) const = default;
};

// Cleanup step of revocation (Section 3.5): the owner broadcasts invalidated objects; all
// Controllers purge capability-space entries referencing them and acknowledge. Once every
// peer has acknowledged, the owner erases the invalidated stubs from its table ("eventually
// cleaned up after ensuring no other Controllers have capabilities referencing it"). Outside
// the critical path; neither security nor performance critical.
struct RevokeBroadcastMsg {
  uint64_t cleanup_id = 0;
  std::vector<ObjectRef> revoked;
  bool operator==(const RevokeBroadcastMsg&) const = default;
};

struct RevokeAckMsg {
  uint64_t cleanup_id = 0;
  bool operator==(const RevokeAckMsg&) const = default;
};

struct RegisterMonitorMsg {
  ObjectRef target;
  bool delegate_mode = false;
  uint64_t callback_id = 0;
  ControllerAddr subscriber_controller = kInvalidController;
  ProcessId subscriber_process = kInvalidProcess;
  bool operator==(const RegisterMonitorMsg&) const = default;
};

struct MonitorFiredMsg {
  ProcessId process = kInvalidProcess;
  uint64_t callback_id = 0;
  bool delegate_mode = false;
  bool operator==(const MonitorFiredMsg&) const = default;
};

// --- Replication plane (controller <-> controller, DESIGN.md §4h) --------------------------

// One capability-metadata mutation, exactly as the seat's ObjectTable executes it. The
// replicated log is a sequence of these; followers replay committed entries through
// ObjectTable::apply_replicated, which re-derives the same object indices (insert() assigns
// them sequentially), so replicas converge structurally — `result_index` lets the follower
// audit that its apply produced the index the leader observed.
struct ReplicatedOp {
  enum class Kind : uint8_t {
    kNoop = 0,          // leader-change barrier entry; mutates nothing
    kCreateMemory,      // requester, mem, perms
    kDeriveMemory,      // requester, base, offset, size, perms (= drop_perms)
    kCreateRequestRoot, // requester (provider), cid (endpoint), imms+caps (initial args)
    kSetEndpointCid,    // base (idx), cid
    kDeriveRequest,     // requester, base, imms+caps (refinement)
    kRevtreeChild,      // requester, base
    kPrepareDelegation, // base (idx); creates a tracked child iff monitor_delegate'd
    kMonitorDelegate,   // base, callback_id, sub_controller, sub_process
    kMonitorReceive,    // base, callback_id, sub_controller, sub_process
    kRevoke,            // base (idx)
    kRevokeAllOf,       // requester (the failed process)
    kEraseObjects,      // indices
  };
  Kind kind = Kind::kNoop;
  ProcessId requester = kInvalidProcess;
  uint64_t base = 0;
  uint64_t result_index = 0;  // index the leader's own apply produced (0 when none)
  MemoryDesc mem;
  Perms perms = Perms::kNone;
  uint64_t offset = 0;
  uint64_t size = 0;
  CapId cid = kInvalidCap;
  uint64_t callback_id = 0;
  ControllerAddr sub_controller = kInvalidController;
  ProcessId sub_process = kInvalidProcess;
  std::vector<ImmExtent> imms;
  std::vector<WireCap> caps;
  std::vector<uint64_t> indices;
  bool operator==(const ReplicatedOp&) const = default;
};

struct ReplLogEntry {
  uint64_t index = 0;
  uint64_t term = 0;
  ReplicatedOp op;
  bool operator==(const ReplLogEntry&) const = default;
};

// Log replication + lease heartbeat (an empty entries vector is the heartbeat). `seat` names
// the replication group: the controller whose metadata this log replicates.
struct ReplAppendMsg {
  ControllerAddr seat = kInvalidController;
  ControllerAddr leader = kInvalidController;
  uint64_t term = 0;
  uint64_t prev_index = 0;
  uint64_t prev_term = 0;
  uint64_t commit_index = 0;
  std::vector<ReplLogEntry> entries;
  bool operator==(const ReplAppendMsg&) const = default;
};

struct ReplAppendReplyMsg {
  ControllerAddr seat = kInvalidController;
  ControllerAddr from = kInvalidController;
  uint64_t term = 0;
  bool ok = false;
  uint64_t match_index = 0;   // ok: highest index replicated; nack: follower log end (hint)
  bool need_snapshot = false; // follower is behind the compacted prefix or tainted
  bool operator==(const ReplAppendReplyMsg&) const = default;
};

struct ReplVoteMsg {
  ControllerAddr seat = kInvalidController;
  ControllerAddr candidate = kInvalidController;
  uint64_t term = 0;
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;
  bool operator==(const ReplVoteMsg&) const = default;
};

struct ReplVoteReplyMsg {
  ControllerAddr seat = kInvalidController;
  ControllerAddr from = kInvalidController;
  uint64_t term = 0;
  bool granted = false;
  bool operator==(const ReplVoteReplyMsg&) const = default;
};

// Broadcast by a newly established leader to every controller (members or not) so client-side
// routing (Controller::route_owner) follows the seat to its acting leader.
struct ReplLeaderAnnounceMsg {
  ControllerAddr seat = kInvalidController;
  ControllerAddr leader = kInvalidController;
  uint64_t term = 0;
  bool operator==(const ReplLeaderAnnounceMsg&) const = default;
};

// Full-state catch-up: a serialized ObjectTable replacing the follower's replica up to
// (last_index, last_term). Sent when a follower nacks with need_snapshot.
struct ReplSnapshotMsg {
  ControllerAddr seat = kInvalidController;
  ControllerAddr leader = kInvalidController;
  uint64_t term = 0;
  uint64_t last_index = 0;
  uint64_t last_term = 0;
  std::vector<uint8_t> blob;
  bool operator==(const ReplSnapshotMsg&) const = default;
};

// --- Envelope -------------------------------------------------------------------------------

using MsgBody =
    std::variant<NullOpMsg, MemoryCreateMsg, MemoryDiminishMsg, MemoryCopyMsg, RequestCreateMsg,
                 RequestInvokeMsg, CapCreateRevtreeMsg, CapRevokeMsg, MonitorMsg, SyscallReplyMsg,
                 DeliverRequestMsg, DeliverAckMsg, MonitorCallbackMsg, RemoteInvokeMsg,
                 RemoteInvokeErrorMsg, RemoteDeriveMsg, PeerReplyMsg, RevokeBroadcastMsg,
                 RevokeAckMsg, RegisterMonitorMsg, MonitorFiredMsg, RemoteDeriveBatchMsg,
                 PeerReplyBatchMsg, ReplAppendMsg, ReplAppendReplyMsg, ReplVoteMsg,
                 ReplVoteReplyMsg, ReplLeaderAnnounceMsg, ReplSnapshotMsg>;

struct Envelope {
  MsgType type = MsgType::kNullOp;
  uint64_t seq = 0;
  MsgBody body;
};

// Serializes an envelope; the result's size() is what the fabric charges to the wire.
std::vector<uint8_t> encode_envelope(const Envelope& env);

// Parses an envelope; fails (kInvalidArgument) on truncated or malformed input.
Result<Envelope> decode_envelope(const std::vector<uint8_t>& buf);

// Convenience constructors that keep type/body consistent.
Envelope make_envelope(uint64_t seq, NullOpMsg m);
Envelope make_envelope(uint64_t seq, MemoryCreateMsg m);
Envelope make_envelope(uint64_t seq, MemoryDiminishMsg m);
Envelope make_envelope(uint64_t seq, MemoryCopyMsg m);
Envelope make_envelope(uint64_t seq, RequestCreateMsg m);
Envelope make_envelope(uint64_t seq, RequestInvokeMsg m);
Envelope make_envelope(uint64_t seq, CapCreateRevtreeMsg m);
Envelope make_envelope(uint64_t seq, CapRevokeMsg m);
Envelope make_envelope(uint64_t seq, MonitorMsg m, bool delegate_mode);
Envelope make_envelope(uint64_t seq, SyscallReplyMsg m);
Envelope make_envelope(uint64_t seq, DeliverRequestMsg m);
Envelope make_envelope(uint64_t seq, DeliverAckMsg m);
Envelope make_envelope(uint64_t seq, MonitorCallbackMsg m);
Envelope make_envelope(uint64_t seq, RemoteInvokeMsg m);
Envelope make_envelope(uint64_t seq, RemoteInvokeErrorMsg m);
Envelope make_envelope(uint64_t seq, RemoteDeriveMsg m);
Envelope make_envelope(uint64_t seq, PeerReplyMsg m);
Envelope make_envelope(uint64_t seq, RevokeBroadcastMsg m);
Envelope make_envelope(uint64_t seq, RevokeAckMsg m);
Envelope make_envelope(uint64_t seq, RegisterMonitorMsg m);
Envelope make_envelope(uint64_t seq, MonitorFiredMsg m);
Envelope make_envelope(uint64_t seq, RemoteDeriveBatchMsg m);
Envelope make_envelope(uint64_t seq, PeerReplyBatchMsg m);
Envelope make_envelope(uint64_t seq, ReplAppendMsg m);
Envelope make_envelope(uint64_t seq, ReplAppendReplyMsg m);
Envelope make_envelope(uint64_t seq, ReplVoteMsg m);
Envelope make_envelope(uint64_t seq, ReplVoteReplyMsg m);
Envelope make_envelope(uint64_t seq, ReplLeaderAnnounceMsg m);
Envelope make_envelope(uint64_t seq, ReplSnapshotMsg m);

// Field codecs shared between the envelope encoders here and the ObjectTable snapshot
// encoding (src/cap/object_table.cc) — one wire format for a field, everywhere.
void encode_ref(Encoder& e, const ObjectRef& ref);
ObjectRef decode_ref(Decoder& d);
void encode_mem_desc(Encoder& e, const MemoryDesc& m);
MemoryDesc decode_mem_desc(Decoder& d);
void encode_imms(Encoder& e, const std::vector<ImmExtent>& imms);
std::vector<ImmExtent> decode_imms(Decoder& d);
void encode_wire_cap(Encoder& e, const WireCap& c);
WireCap decode_wire_cap(Decoder& d);
void encode_repl_op(Encoder& e, const ReplicatedOp& op);
ReplicatedOp decode_repl_op(Decoder& d);

// Total bytes of immediate payload across extents (used for cost accounting and tests).
uint64_t imm_bytes(const std::vector<ImmExtent>& imms);

}  // namespace fractos

#endif  // SRC_WIRE_MESSAGE_H_
