#include "src/fabric/queue_pair.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"
#include "src/sim/metrics.h"

namespace fractos {

namespace {

// Wire size charged for a standalone RC acknowledgment (header-only packet).
constexpr size_t kAckBytes = 16;

// Interned once; every bump afterwards is a slot-indexed add with no string in sight.
struct QpNames {
  NameId dropped = intern_name("qp.dropped");
  NameId retransmits = intern_name("qp.retransmits");
  NameId duplicates_suppressed = intern_name("qp.duplicates_suppressed");
  NameId acks_sent = intern_name("qp.acks_sent");
};

const QpNames& qp_names() {
  static const QpNames n;
  return n;
}

void bump(Network* net, NameId key, int64_t delta = 1) {
  if (MetricsRegistry* m = net->loop()->metrics()) {
    m->add(key, delta);
  }
}

}  // namespace

QueuePair::QueuePair(Network* net, Endpoint local) : net_(net), local_(local) {
  FRACTOS_CHECK(net != nullptr);
}

QueuePair::~QueuePair() { *alive_ = false; }

void QueuePair::connect(QueuePair& a, QueuePair& b) {
  FRACTOS_CHECK(a.peer_ == nullptr && b.peer_ == nullptr);
  a.peer_ = &b;
  b.peer_ = &a;
}

Endpoint QueuePair::remote() const {
  FRACTOS_CHECK(peer_ != nullptr);
  return peer_->local_;
}

void QueuePair::send(Traffic category, Payload payload) {
  FRACTOS_CHECK(peer_ != nullptr);
  if (severed_) {
    ++dropped_;
    bump(net_, qp_names().dropped);
    return;
  }
  if (!reliable()) {
    // Clean fabric or datagram service: one transfer, no protocol state. The dropped
    // callback only fires for sends eaten by node failure.
    QueuePair* peer = peer_;
    net_->send(local_, peer->local_, category, std::move(payload),
               [peer, palive = peer->alive_](Payload bytes) {
                 if (*palive) {
                   peer->deliver(std::move(bytes));
                 }
               },
               [this, alive = alive_]() {
                 if (*alive) {
                   ++dropped_;
                   bump(net_, qp_names().dropped);
                 }
               });
    return;
  }

  const uint64_t seq = tx_seq_++;
  Pending& p = unacked_[seq];
  p.category = category;
  p.payload = std::move(payload);
  transmit(seq);
}

void QueuePair::transmit(uint64_t seq) {
  auto it = unacked_.find(seq);
  FRACTOS_CHECK(it != unacked_.end());
  Pending& p = it->second;
  ++p.attempts;
  p.last_tx = net_->loop()->now();
  if (p.attempts > 1) {
    ++retransmits_;
    bump(net_, qp_names().retransmits);
  }

  QueuePair* peer = peer_;
  // `p.payload` is copied per transmission — a refcount bump, not a byte copy, so a burst of
  // retransmits of a 256 KiB frame costs nothing beyond the modeled wire time.
  net_->send(local_, peer->local_, p.category, p.payload,
             [peer, seq, palive = peer->alive_](Payload bytes) {
               if (*palive) {
                 peer->on_wire_data(seq, std::move(bytes));
               }
             });
  arm_retransmit(seq, p.attempts);
}

void QueuePair::arm_retransmit(uint64_t seq, uint32_t attempt) {
  // Exponential backoff, capped at 64x so a long outage retries at a steady cadence instead
  // of overshooting the budget horizon.
  const Duration delay = rto_ * static_cast<double>(uint64_t{1} << std::min(attempt - 1, 6u));
  net_->loop()->schedule_after(delay, [this, seq, attempt, alive = alive_]() {
    if (!*alive || severed_) {
      return;
    }
    auto it = unacked_.find(seq);
    if (it == unacked_.end() || it->second.attempts != attempt) {
      return;  // ACKed meanwhile, or a newer timer owns this seq.
    }
    // Only head retries count toward the budget (RoCE retry_cnt: consecutive retries of the
    // head WQE, reset on any ACK progress). A trailing entry is waiting out head-of-line
    // recovery; severing on its attempt count would kill a healthy pair under a burst.
    if (it == unacked_.begin() && ++consecutive_head_retries_ >= retry_budget_) {
      exhaust_retries();
      return;
    }
    transmit(seq);
  });
}

void QueuePair::exhaust_retries() {
  // RoCE RC retry_cnt exhaustion: the connection moves to the error state. Everything still
  // unACKed is lost.
  dropped_ += unacked_.size();
  bump(net_, qp_names().dropped, static_cast<int64_t>(unacked_.size()));
  net_->note_rc_exhausted();
  unacked_.clear();
  sever();
}

void QueuePair::on_wire_data(uint64_t seq, Payload payload) {
  if (severed_) {
    return;
  }
  if (seq == rx_next_) {
    ++rx_next_;
    send_ack(rx_next_);
    deliver(std::move(payload));
    return;
  }
  // Duplicate (already delivered) or out-of-order future message: an RC responder drops
  // both and re-ACKs its cumulative position so the sender can converge.
  if (seq < rx_next_) {
    ++duplicates_suppressed_;
    bump(net_, qp_names().duplicates_suppressed);
  }
  send_ack(rx_next_);
}

void QueuePair::send_ack(uint64_t cumulative) {
  if (peer_ == nullptr) {
    return;
  }
  ++acks_sent_;
  bump(net_, qp_names().acks_sent);
  QueuePair* peer = peer_;
  // One shared ACK frame for the lifetime of the program: every ACK aliases the same rep.
  static const Payload kAckFrame = Payload::zeros(kAckBytes);
  net_->send(local_, peer->local_, Traffic::kControl, kAckFrame,
             [peer, cumulative, palive = peer->alive_](Payload) {
               if (*palive) {
                 peer->on_ack(cumulative);
               }
             });
}

void QueuePair::on_ack(uint64_t cumulative) {
  if (severed_) {
    return;
  }
  const size_t before = unacked_.size();
  unacked_.erase(unacked_.begin(), unacked_.lower_bound(cumulative));
  if (unacked_.size() == before) {
    return;
  }
  consecutive_head_retries_ = 0;
  // Go-back-N resume: progress exposes a new head whose own timer may be parked at the
  // backoff cap. Retransmitting it now lets a recovering window drain at RTT pace instead
  // of one entry per capped backoff. The quiet-period check keeps the steady state (head
  // ACKed while the next entry's first copy is still in flight) from double-sending.
  if (!unacked_.empty()) {
    auto head = unacked_.begin();
    if (net_->loop()->now() - head->second.last_tx >= rto_) {
      transmit(head->first);
    }
  }
}

void QueuePair::deliver(Payload payload) {
  if (severed_) {
    return;
  }
  FRACTOS_CHECK_MSG(on_receive_ != nullptr, "QueuePair received with no handler");
  on_receive_(std::move(payload));
}

void QueuePair::sever() {
  if (severed_) {
    return;
  }
  severed_ = true;
  dropped_ += unacked_.size();
  bump(net_, qp_names().dropped, static_cast<int64_t>(unacked_.size()));
  unacked_.clear();
  if (peer_ != nullptr && !peer_->severed_) {
    QueuePair* peer = peer_;
    const Duration delay = net_->wire_latency(local_, peer->local_);
    net_->loop()->schedule_after(delay, [peer, palive = peer->alive_]() {
      if (*palive) {
        peer->peer_severed();
      }
    });
  }
}

void QueuePair::peer_severed() {
  if (severed_) {
    return;
  }
  severed_ = true;
  dropped_ += unacked_.size();
  bump(net_, qp_names().dropped, static_cast<int64_t>(unacked_.size()));
  unacked_.clear();
  if (on_severed_ != nullptr) {
    on_severed_();
  }
}

}  // namespace fractos
