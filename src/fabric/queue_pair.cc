#include "src/fabric/queue_pair.h"

#include <utility>

#include "src/base/assert.h"

namespace fractos {

QueuePair::QueuePair(Network* net, Endpoint local) : net_(net), local_(local) {
  FRACTOS_CHECK(net != nullptr);
}

void QueuePair::connect(QueuePair& a, QueuePair& b) {
  FRACTOS_CHECK(a.peer_ == nullptr && b.peer_ == nullptr);
  a.peer_ = &b;
  b.peer_ = &a;
}

Endpoint QueuePair::remote() const {
  FRACTOS_CHECK(peer_ != nullptr);
  return peer_->local_;
}

void QueuePair::send(Traffic category, std::vector<uint8_t> payload) {
  FRACTOS_CHECK(peer_ != nullptr);
  if (severed_) {
    return;
  }
  QueuePair* peer = peer_;
  net_->send(local_, peer->local_, category, std::move(payload),
             [peer](std::vector<uint8_t> bytes) { peer->deliver(std::move(bytes)); });
}

void QueuePair::deliver(std::vector<uint8_t> payload) {
  if (severed_) {
    return;
  }
  FRACTOS_CHECK_MSG(on_receive_ != nullptr, "QueuePair received with no handler");
  on_receive_(std::move(payload));
}

void QueuePair::sever() {
  if (severed_) {
    return;
  }
  severed_ = true;
  if (peer_ != nullptr && !peer_->severed_) {
    QueuePair* peer = peer_;
    const Duration delay = net_->wire_latency(local_, peer->local_);
    net_->loop()->schedule_after(delay, [peer]() { peer->peer_severed(); });
  }
}

void QueuePair::peer_severed() {
  if (severed_) {
    return;
  }
  severed_ = true;
  if (on_severed_ != nullptr) {
    on_severed_();
  }
}

}  // namespace fractos
