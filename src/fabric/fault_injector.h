// Deterministic fault injection for the simulated fabric.
//
// The paper's failure story (Section 3.6) — failure translation, stale-capability detection,
// monitor callbacks — is exercised by the failure tests against *clean* failures (a node is
// dead and stays dead). Real disaggregated fabrics also exhibit partial failure: lost and
// duplicated messages, latency spikes, transient partitions, nodes that go dark and come
// back. The FaultInjector models exactly that class of faults at the Network layer:
//
//   * per-link / per-traffic-category message drop, duplication, and extra delay jitter;
//   * link flaps: a (a,b) link is fully blocked for a scheduled interval;
//   * node outages: a node is unreachable (crash) for an interval, then reachable again
//     (restart) — the fabric-level view of a crash/restart cycle;
//   * RDMA RC retransmission: a "dropped" RDMA leg is retried by the (modeled) NIC after a
//     retry timeout with exponential backoff; exhausting the retry budget completes the verb
//     with kTimeout, matching RoCE RC retry_cnt semantics.
//
// Every decision is drawn from one Rng seeded by FaultPlan::seed, and the event loop is
// deterministic, so a seed fully determines the fault schedule: running the same workload
// twice with the same plan yields bit-identical simulated time, traffic counters, and
// injected-fault counters. Injected faults are counted as a first-class output
// (FaultCounters) so tests and the chaos harness can assert on them.
//
// When no injector is installed, the fabric takes the exact pre-existing code paths: no rng
// draws, no extra events, no behavior change — recorded bench numbers stay bit-identical.

#ifndef SRC_FABRIC_FAULT_INJECTOR_H_
#define SRC_FABRIC_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace fractos {

enum class Traffic : uint8_t;  // fabric/network.h

// Everything the injector may do to a run. Probabilities are per message, indexed by
// Traffic category (0 = control, 1 = data). Schedules use absolute simulated Times.
struct FaultPlan {
  uint64_t seed = 1;

  double drop_prob[2] = {0.0, 0.0};
  double dup_prob[2] = {0.0, 0.0};
  double jitter_prob[2] = {0.0, 0.0};
  Duration max_jitter = Duration::micros(25);

  // Per-link overrides win over the global drop probabilities. Links are unordered pairs.
  // Endpoints may be node ids or topology switch ids (Topology::tor_id / spine_id): a flap
  // on {tor_id(r), spine_id(s)} partitions exactly that uplink, and every message or RDMA
  // verb routed across it is dropped for the window.
  struct LinkOverride {
    uint32_t a = 0;
    uint32_t b = 0;
    double drop_prob[2] = {0.0, 0.0};
  };
  std::vector<LinkOverride> link_overrides;

  // Transient partition of one link: every message between a and b in [start, end) is
  // dropped, in both directions.
  struct LinkFlap {
    uint32_t a = 0;
    uint32_t b = 0;
    Time start;
    Time end;
  };
  std::vector<LinkFlap> flaps;

  // Scheduled crash/restart at the fabric level: the node is unreachable in [start, end).
  // Its host keeps executing (unlike Node::fail()) — this is what produces monitor
  // false-positives: heartbeats are lost while the node is actually alive.
  struct NodeOutage {
    uint32_t node = 0;
    Time start;
    Time end;
  };
  std::vector<NodeOutage> outages;

  // RDMA RC retransmission model (applies to rdma_read/rdma_write/rdma_third_party).
  Duration rdma_retry_timeout = Duration::micros(20);
  uint32_t rdma_retry_budget = 8;

  // True when the plan can reorder, lose, or duplicate messages — the condition under which
  // QueuePairs switch on their RC reliability machinery (seq/ACK/retransmit).
  bool perturbs_delivery() const {
    for (int c = 0; c < 2; ++c) {
      if (drop_prob[c] > 0 || dup_prob[c] > 0 || jitter_prob[c] > 0) {
        return true;
      }
    }
    return !link_overrides.empty() || !flaps.empty() || !outages.empty();
  }
};

// Injected-fault counters: a first-class output of every faulted run.
struct FaultCounters {
  uint64_t dropped[2] = {0, 0};      // random per-message drops, by category
  uint64_t duplicated[2] = {0, 0};
  uint64_t delayed[2] = {0, 0};
  uint64_t partition_drops = 0;      // flap- or outage-induced drops (deterministic)
  uint64_t rdma_retransmits = 0;     // modeled NIC retries of RDMA legs
  uint64_t rdma_aborts = 0;          // RDMA verbs failed with kTimeout (budget exhausted)

  uint64_t total_injected() const {
    return dropped[0] + dropped[1] + duplicated[0] + duplicated[1] + delayed[0] + delayed[1] +
           partition_drops + rdma_retransmits + rdma_aborts;
  }
  bool operator==(const FaultCounters&) const = default;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

  // What happens to one message send. Draws are made in a fixed order (drop, then dup, then
  // jitter) so the schedule is a pure function of the seed and the call sequence.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    Duration extra_delay = Duration::zero();
  };
  Verdict on_message(uint32_t src_node, uint32_t dst_node, Traffic category, Time now);

  // What happens to one RDMA verb between two nodes: zero or more modeled NIC retransmits
  // (delay accumulates with exponential backoff), or an abort once the budget is exhausted.
  // `path_blocked` reports a blocked topology link along the routed path (a spine or ToR
  // flap the direct (a, b) check cannot see); it defeats every retransmit, like a flap.
  struct RdmaVerdict {
    uint32_t retries = 0;
    bool abort = false;
    Duration delay = Duration::zero();
  };
  RdmaVerdict on_rdma(uint32_t a, uint32_t b, Time now, bool path_blocked = false);

  // Records a deterministic drop of a message whose route crossed a blocked topology link
  // (the Network detects those per hop; the flat (a, b) check in on_message cannot).
  void note_partition_drop() { ++counters_.partition_drops; }

  // True when the (a,b) link is blocked by a flap or either node is in an outage window.
  bool link_blocked(uint32_t a, uint32_t b, Time now) const;
  bool node_dark(uint32_t node, Time now) const;

  const FaultPlan& plan() const { return plan_; }
  const FaultCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = FaultCounters{}; }

 private:
  double drop_prob_for(uint32_t a, uint32_t b, size_t cat) const;

  FaultPlan plan_;
  Rng rng_;
  FaultCounters counters_;
};

}  // namespace fractos

#endif  // SRC_FABRIC_FAULT_INJECTOR_H_
