#include "src/fabric/node.h"

#include <utility>

namespace fractos {

Node::Node(EventLoop* loop, uint32_t id, std::string name, bool with_snic)
    : id_(id), name_(std::move(name)), host_(loop, name_ + "/host") {
  if (with_snic) {
    snic_ = std::make_unique<ExecContext>(loop, name_ + "/snic");
  }
}

PoolId Node::add_pool(uint64_t size) {
  // Sized construction (not fill-construction) so PoolAlloc's no-op value-init applies and
  // the calloc'd pages stay untouched.
  pools_.emplace_back(size);
  return static_cast<PoolId>(pools_.size() - 1);
}

PoolBytes& Node::pool(PoolId id) {
  FRACTOS_CHECK(id < pools_.size());
  return pools_[id];
}

const PoolBytes& Node::pool(PoolId id) const {
  FRACTOS_CHECK(id < pools_.size());
  return pools_[id];
}

Status Node::check_extent(PoolId pool, uint64_t addr, uint64_t size) const {
  if (pool >= pools_.size()) {
    return ErrorCode::kNotFound;
  }
  const uint64_t pool_size = pools_[pool].size();
  if (addr > pool_size || size > pool_size - addr) {
    return ErrorCode::kOutOfRange;
  }
  return ok_status();
}

Status Node::authorize_rdma(const RdmaKey& key, PoolId pool, uint64_t addr, uint64_t size,
                            bool is_write) const {
  if (failed_) {
    return ErrorCode::kChannelClosed;
  }
  if (Status s = check_extent(pool, addr, size); !s.ok()) {
    return s;
  }
  if (authorizer_ != nullptr) {
    return authorizer_(key, pool, addr, size, is_write);
  }
  return ok_status();
}

}  // namespace fractos
