// A data-center node: a host CPU, optionally a SmartNIC with its own (slower) cores, and a
// set of RDMA-registered memory pools.
//
// Memory pools hold real bytes: a Process's heap, a GPU's device memory, an NVMe adaptor's
// staging buffers are all pools, and RDMA operations move actual data between them. This lets
// integration tests verify end-to-end data integrity (checksums through the whole
// storage->GPU->application path), not just timing.

#ifndef SRC_FABRIC_NODE_H_
#define SRC_FABRIC_NODE_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/sim/exec_context.h"

namespace fractos {

// Where on a node an agent (Process or Controller) executes.
enum class Loc : uint8_t {
  kHost = 0,
  kSnic = 1,
};

struct Endpoint {
  uint32_t node = 0;
  Loc loc = Loc::kHost;

  bool operator==(const Endpoint&) const = default;
};

using PoolId = uint32_t;

// Allocator backing memory pools: calloc hands out copy-on-write zero pages, so a freshly
// registered pool is all-zeros without an explicit memset ever walking it, and the no-arg
// construct() keeps vector value-initialization from walking it either. A 1024-node cluster
// registers tens of GB of pool bytes (every GPU models 256 MB of device memory) of which a
// workload touches a few hundred MB; eager zeroing would materialize all of it in RSS.
template <typename T>
struct PoolAlloc {
  using value_type = T;
  PoolAlloc() = default;
  template <typename U>
  explicit PoolAlloc(const PoolAlloc<U>&) {}
  T* allocate(size_t n) {
    if (void* p = std::calloc(n, sizeof(T))) {
      return static_cast<T*>(p);
    }
    throw std::bad_alloc();
  }
  void deallocate(T* p, size_t) { std::free(p); }
  template <typename U>
  void construct(U*) {}
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
  bool operator==(const PoolAlloc&) const { return true; }
  bool operator!=(const PoolAlloc&) const { return false; }
};

// A pool's backing bytes. Identical to std::vector<uint8_t> semantically (zero-initialized,
// contiguous, sized), but untouched pages never hit RSS.
using PoolBytes = std::vector<uint8_t, PoolAlloc<uint8_t>>;

// The rkey carried by an RDMA operation: names the Memory object that authorizes the access
// (owner controller address, object index, reboot generation). The fabric treats it as
// opaque; the core layer's authorizer resolves it against the owning Controller's object
// table. This is the simulation analogue of NIC rkeys — registration programs them, revoking
// the object invalidates them, so revoked memory fails immediately with no critical-path
// round trips.
struct RdmaKey {
  uint32_t controller = 0xffffffffu;
  uint64_t object = ~0ULL;
  uint32_t generation = 0;
};

// Authorization hook for incoming one-sided RDMA, registered per node by the core layer.
using RdmaAuthorizer = std::function<Status(const RdmaKey& key, PoolId pool, uint64_t addr,
                                            uint64_t size, bool is_write)>;

class Node {
 public:
  Node(EventLoop* loop, uint32_t id, std::string name, bool with_snic);

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }

  ExecContext& host() { return host_; }
  bool has_snic() const { return snic_ != nullptr; }
  ExecContext& snic() {
    FRACTOS_CHECK(snic_ != nullptr);
    return *snic_;
  }
  ExecContext& context(Loc loc) { return loc == Loc::kHost ? host_ : snic(); }

  // Registers a new RDMA-accessible memory pool of `size` bytes, zero-initialized.
  PoolId add_pool(uint64_t size);
  bool has_pool(PoolId pool) const { return pool < pools_.size(); }
  PoolBytes& pool(PoolId id);
  const PoolBytes& pool(PoolId id) const;

  // Bounds check for an RDMA op against a pool.
  Status check_extent(PoolId pool, uint64_t addr, uint64_t size) const;

  void set_rdma_authorizer(RdmaAuthorizer authorizer) { authorizer_ = std::move(authorizer); }
  // Applies the authorizer (if any) after bounds-checking.
  Status authorize_rdma(const RdmaKey& key, PoolId pool, uint64_t addr, uint64_t size,
                        bool is_write) const;

  // Marks the node failed: RDMA targeting it fails, messages to/from it are dropped.
  void fail() { failed_ = true; }
  void recover() { failed_ = false; }
  bool failed() const { return failed_; }

 private:
  uint32_t id_;
  std::string name_;
  ExecContext host_;
  std::unique_ptr<ExecContext> snic_;
  std::vector<PoolBytes> pools_;
  RdmaAuthorizer authorizer_;
  bool failed_ = false;
};

}  // namespace fractos

#endif  // SRC_FABRIC_NODE_H_
