// Calibration constants for the simulated data-center fabric.
//
// The reproduction has no RoCE hardware, so the network is a latency/bandwidth model whose
// constants are calibrated against the paper's OWN microbenchmarks (Table 2 environment,
// Table 3 and Figures 5-7 measurements). Composed experiments (Figures 8-13) then become
// genuine predictions of the model rather than curve fits.
//
// Calibration sources, quoted from the paper:
//   * Table 2: "10 Gbps fabric and switch", Mellanox BlueField sNIC (ARM @ 800 MHz).
//   * Table 3: ibv_rc_pingpong loopback RTT 2.42 us (server on CPU), 3.68 us (server on sNIC).
//   * Fig. 5 text: "1-Byte RDMA takes 3.3 usec"; "double buffering for buffers larger than
//     16 KB, achieving the full throughput at 256 KB".

#ifndef SRC_FABRIC_PARAMS_H_
#define SRC_FABRIC_PARAMS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace fractos {

struct FabricParams {
  // One-way latency between two host endpoints on the SAME node through the NIC loopback
  // path. Table 3: raw loopback RTT with server on CPU = 2.42 us, so one way = 1.21 us.
  Duration loopback_oneway = Duration::micros(1.21);

  // One-way latency between a host endpoint and the sNIC cores of the SAME node.
  // Table 3: raw loopback RTT with server on sNIC = 3.68 us, so one way = 1.84 us
  // (the extra 0.63 us per direction is the PCIe crossing the paper describes).
  Duration host_snic_oneway = Duration::micros(1.84);

  // One-way latency between endpoints on DIFFERENT nodes, through the switch.
  // Fig. 5 text: a 1-byte RDMA (one round trip) takes 3.3 us, so one way = 1.65 us.
  Duration cross_node_oneway = Duration::micros(1.65);

  // Link bandwidth: 10 Gbps = 1.25 bytes/ns. Applies to cross-node transfers and charges
  // both the sender's egress and the receiver's ingress.
  double wire_bandwidth_bpns = 1.25;

  // Effective bandwidth of the NIC loopback / PCIe path used for same-node transfers
  // (PCIe Gen3 x8-class, well above the 10 Gbps wire).
  double local_bandwidth_bpns = 8.0;

  // Fixed per-message wire overhead: Ethernet + IPv4 + UDP + BTH + ICRC of a RoCEv2 frame.
  uint64_t header_bytes = 66;

  // Maximum payload carried per fabric message; larger transfers are segmented and charge
  // one header per segment (RoCE MTU 4096).
  uint64_t mtu_bytes = 4096;
};

// Transfer time of `bytes` at bandwidth `bpns`, rounded up to 1 ns.
Duration transfer_time(uint64_t bytes, double bandwidth_bpns);

// Number of MTU segments (and thus headers) a payload of `bytes` occupies.
uint64_t segment_count(uint64_t bytes, uint64_t mtu_bytes);

}  // namespace fractos

#endif  // SRC_FABRIC_PARAMS_H_
