// A modeled Ethernet switch: per-port egress queues with serialization delay, PFC-bounded
// queue occupancy, and ECN-style congestion accounting.
//
// The model is store-and-forward at message granularity: a message reaching a switch at
// time t waits for the egress port to drain everything ahead of it (head-of-line wait),
// then occupies the port for its serialization time. Two congestion signals are counted
// but deliberately do not lose traffic on a clean fabric:
//
//   * ECN marks — the egress queue occupancy at admission crossed `ecn_threshold_bytes`
//     (what a RoCEv2 switch would CE-mark and DCQCN would react to);
//   * pause events — the occupancy would have exceeded `port_buffer_bytes`, so the frame is
//     held upstream (PFC backpressure) until the queue has room. The wait is identical, but
//     the recorded occupancy stays bounded by the buffer — lossless fabrics push queues
//     upstream, they do not drop.
//
// All state advances monotonically per port, so delivery order per (src, dst) pair is
// preserved and same-seed runs are bit-identical.

#ifndef SRC_FABRIC_SWITCH_H_
#define SRC_FABRIC_SWITCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fabric/params.h"
#include "src/sim/time.h"

namespace fractos {

// Calibration of one switch (shared by every switch of a topology).
struct SwitchParams {
  // Per-port line rate. Matches the fabric's 10 Gbps wire (src/fabric/params.h).
  double port_bandwidth_bpns = 1.25;

  // Egress buffer per port: the PFC bound on queue occupancy. Shallow-buffer ToR class.
  uint64_t port_buffer_bytes = 128 << 10;

  // ECN marking threshold (DCQCN-style K), well below the buffer so marks precede pauses.
  uint64_t ecn_threshold_bytes = 32 << 10;

  // One-way propagation + switch pipeline latency per link traversed.
  Duration link_oneway = Duration::nanos(550);

  // Per-link bandwidth partition between the two traffic classes of the far-memory tier
  // (DaeMon-style dual-granularity movement, DESIGN.md §4k): the hot lane gets this share of
  // the port bandwidth for cacheline-sized demand fetches, the bulk lane the remainder for
  // page-sized prefetch and everything else. 0 (the default) keeps the single shared egress
  // clock — bit-identical to every recorded bench number — and the lane argument of
  // traverse() is ignored.
  double hot_lane_share = 0.0;
};

// First-class congestion record of one egress port.
struct PortStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;             // wire bytes serialized (payload + headers)
  uint64_t ecn_marks = 0;         // admissions with occupancy >= ecn_threshold_bytes
  uint64_t pause_events = 0;      // admissions held upstream by PFC backpressure
  uint64_t max_queue_bytes = 0;   // peak bounded occupancy observed at admission
  int64_t queue_wait_ns = 0;      // total head-of-line wait charged at this port
  // Hot-lane slice of the totals above (only moves when hot_lane_share > 0).
  uint64_t hot_messages = 0;
  uint64_t hot_bytes = 0;
};

class Switch {
 public:
  Switch(uint32_t id, std::string name, SwitchParams params)
      : id_(id), name_(std::move(name)), params_(params) {}

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const SwitchParams& params() const { return params_; }

  // One message crossing egress port `port` at time `enq` (arrival at the switch).
  // `hot_lane` selects the bandwidth partition when hot_lane_share > 0 (ignored otherwise):
  // each lane owns its own egress clock, so a page-sized prefetch queued on the bulk lane
  // never heads-of-line a cacheline demand fetch on the hot lane.
  struct Transit {
    Time depart;                    // serialization onto the egress link completes
    Duration queued;                // head-of-line wait (including any upstream pause)
    bool ecn_marked = false;
  };
  Transit traverse(uint32_t port, Time enq, uint64_t wire_bytes, bool hot_lane = false);

  size_t num_ports() const { return ports_.size(); }
  const PortStats& port_stats(uint32_t port) const;

  // Pre-sizes the port vector. Sharded parallel runs (DESIGN.md §4j) rely on this: different
  // shards own different ports of a spine, and the lazy vector growth in ensure_port would
  // race across their threads. Idempotent, never shrinks.
  void ensure_ports(uint32_t n) {
    if (ports_.size() < n) {
      ports_.resize(n);
    }
  }

  // Aggregates over every port of this switch.
  uint64_t max_queue_bytes() const;
  uint64_t total_ecn_marks() const;
  uint64_t total_pause_events() const;

 private:
  struct Port {
    Time free_at;      // shared clock (hot_lane_share == 0) or the bulk lane's clock
    Time hot_free_at;  // hot lane's clock; untouched while hot_lane_share == 0
    PortStats stats;
  };
  Port& ensure_port(uint32_t port);

  uint32_t id_;
  std::string name_;
  SwitchParams params_;
  std::vector<Port> ports_;
};

}  // namespace fractos

#endif  // SRC_FABRIC_SWITCH_H_
