// The fabric topology: which switches sit between two endpoints and which egress ports a
// message crosses.
//
// Two shapes:
//
//   * kSingleSwitch (the default) — every node hangs off one implicit switch. This is the
//     calibrated pre-topology model: the Network keeps its original flat send path (one
//     cross-node latency, NIC egress/ingress occupancy, no per-hop queues), so every
//     recorded bench number reproduces bit-identically.
//   * kFatTree — a two-tier ToR/spine fat tree. Nodes are assigned to racks by id
//     (rack = node / nodes_per_rack), each rack gets a ToR switch, and `num_spines` spine
//     switches interconnect the ToRs. Cross-rack flows pick their spine by a deterministic
//     ECMP flow hash, so same-seed runs route — and therefore time — bit-identically, and
//     every (src, dst) endpoint pair keeps one path, preserving per-pair FIFO delivery.
//
// Switches are fault-addressable: ToR and spine ids live in a reserved id range disjoint
// from node ids, so a FaultPlan::LinkFlap{tor_id(r), spine_id(s)} partitions exactly that
// uplink (Network checks every link of a route against the injector).

#ifndef SRC_FABRIC_TOPOLOGY_H_
#define SRC_FABRIC_TOPOLOGY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/fabric/node.h"
#include "src/fabric/switch.h"

namespace fractos {

struct TopologySpec {
  enum class Kind : uint8_t {
    kSingleSwitch = 0,
    kFatTree = 1,
  };
  Kind kind = Kind::kSingleSwitch;

  // Fat-tree shape (ignored for kSingleSwitch).
  uint32_t nodes_per_rack = 8;
  uint32_t num_spines = 2;
  SwitchParams sw;

  static TopologySpec single_switch() { return TopologySpec{}; }
  static TopologySpec fat_tree(uint32_t nodes_per_rack, uint32_t num_spines,
                               SwitchParams sw = {}) {
    TopologySpec s;
    s.kind = Kind::kFatTree;
    s.nodes_per_rack = nodes_per_rack;
    s.num_spines = num_spines;
    s.sw = sw;
    return s;
  }

  // Shape validation; std::nullopt when valid. With num_nodes > 0 also rejects a node count
  // that does not fill racks evenly — a ragged last rack silently skews rack-local vs
  // cross-rack traffic ratios and is almost always a sweep-configuration bug.
  // SystemConfig::validate() calls this.
  std::optional<std::string> validate(uint32_t num_nodes = 0) const;

  // A provable lower bound on how long any cross-rack delivery stays on source-rack
  // resources: before a message can touch the first shard-foreign switch (a spine), it
  // serializes at the sender NIC and crosses the NIC->ToR and ToR->spine links — at least
  // two one-way link propagations after send time. This is the conservative lookahead the
  // sharded engine uses (EventLoop::enable_sharding, DESIGN.md §4j).
  Duration min_cross_rack_latency() const { return sw.link_oneway + sw.link_oneway; }
};

class Topology {
 public:
  // Switch ids live far above any node id so FaultPlan links can name them unambiguously.
  static constexpr uint32_t kTorIdBase = 0x80000000u;
  static constexpr uint32_t kSpineIdBase = 0xc0000000u;
  static constexpr uint32_t tor_id(uint32_t rack) { return kTorIdBase + rack; }
  static constexpr uint32_t spine_id(uint32_t i) { return kSpineIdBase + i; }

  // Deterministic ECMP flow hash. Endpoint loc stands in for the queue-pair discriminator:
  // host and sNIC flows between the same nodes may take different spines, everything else
  // is a pure function of the pair — no rng, no per-run state.
  static uint64_t flow_hash(Endpoint src, Endpoint dst);

  explicit Topology(TopologySpec spec);

  const TopologySpec& spec() const { return spec_; }
  bool flat() const { return spec_.kind == TopologySpec::Kind::kSingleSwitch; }

  // Grows racks/ToRs to cover `node` (called by Network::add_node).
  void on_node_added(uint32_t node);

  uint32_t rack_of(uint32_t node) const {
    return flat() ? 0 : node / spec_.nodes_per_rack;
  }
  bool same_rack(uint32_t a, uint32_t b) const { return rack_of(a) == rack_of(b); }
  uint32_t num_racks() const { return static_cast<uint32_t>(tors_.size()); }
  uint32_t num_spines() const { return static_cast<uint32_t>(spines_.size()); }

  Switch& tor(uint32_t rack);
  Switch& spine(uint32_t i);
  const Switch& tor(uint32_t rack) const;
  const Switch& spine(uint32_t i) const;

  // The spine index a cross-rack (src, dst) flow hashes to.
  uint32_t spine_for(Endpoint src, Endpoint dst) const;

  // One link of a route. The first hop (node NIC onto its ToR link) has sw == nullptr: its
  // serialization is charged at the sender NIC by the Network, not at a switch port. Every
  // hop carries the fault-addressable (link_a, link_b) endpoints of the link it serializes
  // onto.
  struct Hop {
    Switch* sw = nullptr;
    uint32_t port = 0;
    uint32_t link_a = 0;
    uint32_t link_b = 0;
  };

  // Appends the hops of the src -> dst route to `out` (cleared first). Empty for flat
  // topologies and same-node traffic.
  void route(Endpoint src, Endpoint dst, std::vector<Hop>* out);

  // Number of links a cross-node message traverses (2 intra-rack, 4 cross-rack); 0 when
  // flat. Used for propagation-latency accounting.
  uint32_t num_links(Endpoint src, Endpoint dst) const;

  // Congestion aggregates over every switch of the topology.
  uint64_t max_port_queue_bytes() const;
  uint64_t total_ecn_marks() const;
  uint64_t total_pause_events() const;

  // Pre-sizes every switch's port vector to its full fan-out (ToRs: member ports + uplinks;
  // spines: one port per rack). Sharded parallel runs require this: different shards charge
  // different ports of the same spine, and lazy port-vector growth inside traverse() would
  // race. Idempotent; called by Network::add_node in sharded mode.
  void presize_ports();

 private:
  TopologySpec spec_;
  std::vector<std::unique_ptr<Switch>> tors_;
  std::vector<std::unique_ptr<Switch>> spines_;
};

}  // namespace fractos

#endif  // SRC_FABRIC_TOPOLOGY_H_
