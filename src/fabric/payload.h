// Payload: an immutable, refcounted byte buffer — the unit of bulk data on the simulated
// fabric.
//
// Before this type existed, every hop owned its bytes: Network::send copied the vector into
// the delivery closure, a duplicated message copied it again, every QueuePair retransmit
// copied it onto the wire, and RDMA verbs copied between pools and closures. For the
// payload-heavy paths (256 KiB storage reads, 512 KiB image batches) those copies dominated
// wall-clock time without changing a single simulated timestamp — pure simulator overhead.
//
// Payload copies are refcount bumps. The bytes are copied exactly once, at the origin
// (`Payload{std::move(vec)}` doesn't even copy — it adopts the vector). Immutability makes
// the sharing safe: no API exposes a mutable view, so a retransmitted message and its
// original can alias the same Rep forever. The refcount is atomic (relaxed increments,
// acquire-release decrement) because sharded parallel runs (DESIGN.md §4j) can retain and
// release a Rep from different shard threads — e.g. a retransmit buffer freed after its
// payload crossed a rack boundary. Uncontended atomic RMWs are a few cycles; measured noise
// on bench_simspeed's soaks.
//
// `std::vector<uint8_t>` converts implicitly, so existing call sites that build a vector
// (or a braced list) keep compiling; they now pay one adoption instead of N copies.

#ifndef SRC_FABRIC_PAYLOAD_H_
#define SRC_FABRIC_PAYLOAD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

namespace fractos {

class Payload {
 public:
  Payload() = default;

  // Adopts `bytes` (no copy). Implicit so vector-producing call sites — Encoder::take(),
  // braced literals in tests — convert without ceremony.
  Payload(std::vector<uint8_t> bytes)  // NOLINT(google-explicit-constructor)
      : rep_(new Rep{1, std::move(bytes)}) {}

  // Braced literals (`send(..., {1, 2, 3}, ...)`) — mostly tests and fixtures.
  Payload(std::initializer_list<uint8_t> bytes) : Payload(std::vector<uint8_t>(bytes)) {}

  // A zero-filled payload of `n` bytes (wire padding, ACK frames).
  static Payload zeros(size_t n) { return Payload(std::vector<uint8_t>(n)); }

  Payload(const Payload& other) : rep_(other.rep_) {
    if (rep_ != nullptr) {
      rep_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Payload(Payload&& other) noexcept : rep_(other.rep_) { other.rep_ = nullptr; }
  Payload& operator=(const Payload& other) {
    if (this != &other) {
      Payload tmp(other);
      std::swap(rep_, tmp.rep_);
    }
    return *this;
  }
  Payload& operator=(Payload&& other) noexcept {
    std::swap(rep_, other.rep_);
    return *this;
  }
  ~Payload() { unref(); }

  const uint8_t* data() const { return rep_ != nullptr ? rep_->bytes.data() : nullptr; }
  size_t size() const { return rep_ != nullptr ? rep_->bytes.size() : 0; }
  bool empty() const { return size() == 0; }

  // The underlying bytes as a vector reference — what Decoder and decode_envelope consume.
  // Valid for the lifetime of any Payload sharing this Rep.
  const std::vector<uint8_t>& bytes() const {
    static const std::vector<uint8_t> kEmpty;
    return rep_ != nullptr ? rep_->bytes : kEmpty;
  }

  // Materializes an owned copy of the bytes — for the rare consumer that must mutate
  // (e.g. copying into a simulated memory pool is memcpy from data(), not this).
  std::vector<uint8_t> to_vector() const { return bytes(); }

 private:
  struct Rep {
    std::atomic<size_t> refs;
    std::vector<uint8_t> bytes;
  };

  void unref() {
    if (rep_ != nullptr && rep_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete rep_;
    }
    rep_ = nullptr;
  }

  Rep* rep_ = nullptr;
};

}  // namespace fractos

#endif  // SRC_FABRIC_PAYLOAD_H_
