#include "src/fabric/network.h"

#include <string>
#include <utility>

#include "src/base/assert.h"
#include "src/sim/metrics.h"

namespace fractos {

namespace {

// Mirrors one RDMA fault verdict into the metrics registry at the exact point the verdict is
// drawn, so `net.faults.*` equals the injector's own FaultCounters key-for-key.
void note_rdma_faults(EventLoop* loop, const FaultInjector::RdmaVerdict& v) {
  MetricsRegistry* m = loop->metrics();
  if (m == nullptr) {
    return;
  }
  if (v.retries > 0) {
    static const NameId kRetransmits = intern_name("net.faults.rdma_retransmits");
    m->add(kRetransmits, v.retries);
  }
  if (v.abort) {
    static const NameId kAborts = intern_name("net.faults.rdma_aborts");
    m->add(kAborts);
  }
}

// Interned names for the per-transfer fast path (one hash lookup per process, ever).
struct NetNames {
  NameId msg[2] = {intern_name("net.messages.control"), intern_name("net.messages.data")};
  NameId bytes[2] = {intern_name("net.bytes.control"), intern_name("net.bytes.data")};
  NameId net = intern_name("net");
  NameId nic_wait = intern_name("nic-wait");
  NameId wire = intern_name("wire");
  NameId local = intern_name("local");
  NameId hop = intern_name("hop");
  NameId port_wait = intern_name("port-wait");
};

const NetNames& net_names() {
  static const NetNames n;
  return n;
}

// Route scratch, reused per transfer, never escapes a call. thread_local because sharded
// parallel runs route concurrently from several shard threads (same-rack routed transfers).
thread_local std::vector<Topology::Hop> t_route_scratch;

}  // namespace

Network::Network(EventLoop* loop, FabricParams params, TopologySpec topology)
    : loop_(loop), params_(params), topology_(topology) {
  FRACTOS_CHECK(loop != nullptr);
}

void Network::note_rc_exhausted() {
  ++counters_.rc_exhausted;
  if (MetricsRegistry* m = loop_->metrics(); m != nullptr) {
    static const NameId kRcExhausted = intern_name("net.faults.rc_exhausted");
    m->add(kRcExhausted);
  }
}

uint32_t Network::add_node(std::string name, bool with_snic) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(loop_, id, std::move(name), with_snic));
  egress_free_.push_back(Time{});
  ingress_free_.push_back(Time{});
  local_free_.push_back(Time{});
  topology_.on_node_added(id);
  if (loop_->sharded()) {
    // Rack partitioning needs the fat tree: the flat model shares one implicit switch (and
    // the receiver-ingress occupancy slot) across all nodes, which no rack can own.
    FRACTOS_CHECK(!topology_.flat());
    FRACTOS_CHECK(topology_.rack_of(id) < loop_->num_racks());
    rack_counters_.resize(loop_->num_racks());
    // Lazy port-vector growth inside traverse() would race across shard threads.
    topology_.presize_ports();
  }
  return id;
}

Node& Network::node(uint32_t id) {
  FRACTOS_CHECK(id < nodes_.size());
  return *nodes_[id];
}

Duration Network::wire_latency(Endpoint a, Endpoint b) const {
  if (a.node != b.node) {
    if (!topology_.flat()) {
      return topology_.spec().sw.link_oneway * static_cast<double>(topology_.num_links(a, b));
    }
    return params_.cross_node_oneway;
  }
  if (a.loc != b.loc) {
    return params_.host_snic_oneway;
  }
  return params_.loopback_oneway;
}

Time Network::schedule_transfer(Endpoint src, Endpoint dst, Traffic category,
                                uint64_t payload_bytes, LinkClass cls) {
  const bool cross = src.node != dst.node;
  const uint64_t wire_bytes =
      payload_bytes + params_.header_bytes * segment_count(payload_bytes, params_.mtu_bytes);

  const size_t cat = static_cast<size_t>(category);
  TrafficCounters& c = counters_for_current();
  c.messages[cat] += 1;
  c.bytes[cat] += wire_bytes;
  if (cross) {
    c.cross_messages[cat] += 1;
    c.cross_bytes[cat] += wire_bytes;
    if (topology_.same_rack(src.node, dst.node)) {
      c.rack_local_messages[cat] += 1;
      c.rack_local_bytes[cat] += wire_bytes;
    }
  }
  if (MetricsRegistry* m = loop_->metrics()) {
    const NetNames& n = net_names();
    m->add(n.msg[cat]);
    m->add(n.bytes[cat], static_cast<int64_t>(wire_bytes));
  }

  if (cross && !topology_.flat()) {
    return schedule_routed_transfer(src, dst, wire_bytes, cls);
  }

  // Flat/local path — the calibrated pre-topology model, bit-identical to the recorded
  // benches. Cross-node transfers occupy the 10 Gbps wire (sender egress + receiver
  // ingress); same-node (NIC loopback / PCIe) transfers occupy a separate, faster local
  // path and do not steal wire bandwidth.
  const double bw = cross ? params_.wire_bandwidth_bpns : params_.local_bandwidth_bpns;
  const Duration serialization = transfer_time(wire_bytes, bw);
  Time start;
  if (cross) {
    start = max(max(loop_->now(), egress_free_[src.node]), ingress_free_[dst.node]);
    egress_free_[src.node] = start + serialization;
    ingress_free_[dst.node] = start + serialization;
  } else {
    start = max(loop_->now(), local_free_[src.node]);
    local_free_[src.node] = start + serialization;
  }

  const Time arrival = start + serialization + wire_latency(src, dst);
  if (span_tracing_active() && loop_->span_tracer() != nullptr) {
    SpanTracer* t = loop_->span_tracer();
    const NetNames& n = net_names();
    // Waiting for NIC/wire occupancy is queueing; the transfer itself (serialization +
    // propagation) is fabric. Both windows are known up front, so record pre-closed spans.
    if (start > loop_->now()) {
      t->record(n.net, SpanKind::kQueue, n.nic_wait, loop_->now(), start);
    }
    const uint64_t id =
        t->record(n.net, SpanKind::kFabric, cross ? n.wire : n.local, start, arrival);
    if (id != 0) {
      t->attr(id, "bytes", std::to_string(wire_bytes));
    }
  }
  return arrival;
}

Time Network::schedule_routed_transfer(Endpoint src, Endpoint dst, uint64_t wire_bytes,
                                       LinkClass cls) {
  const Duration link = topology_.spec().sw.link_oneway;
  const Duration nic_ser = transfer_time(wire_bytes, params_.wire_bandwidth_bpns);
  topology_.route(src, dst, &t_route_scratch);
  FRACTOS_CHECK(!t_route_scratch.empty());

  SpanTracer* t =
      span_tracing_active() && loop_->span_tracer() != nullptr ? loop_->span_tracer() : nullptr;
  const NetNames& n = net_names();

  // Store-and-forward at message granularity: the sender NIC serializes onto its ToR link,
  // then every switch on the route re-serializes onto its egress link after draining the
  // queue ahead. The final ToR egress IS the delivery link, so the receiver NIC charges no
  // extra serialization.
  const Time nic_start = max(loop_->now(), egress_free_[src.node]);
  egress_free_[src.node] = nic_start + nic_ser;
  Time at = nic_start + nic_ser + link;
  if (t != nullptr) {
    if (nic_start > loop_->now()) {
      t->record(n.net, SpanKind::kQueue, n.nic_wait, loop_->now(), nic_start);
    }
    const uint64_t id = t->record(n.net, SpanKind::kFabric, n.wire, nic_start, at);
    if (id != 0) {
      t->attr(id, "bytes", std::to_string(wire_bytes));
    }
  }

  for (const Topology::Hop& hop : t_route_scratch) {
    if (hop.sw == nullptr) {
      continue;  // the NIC hop, charged above
    }
    const Switch::Transit tr =
        hop.sw->traverse(hop.port, at, wire_bytes, cls == LinkClass::kHot);
    if (tr.ecn_marked && ecn_listener_ != nullptr) {
      ecn_listener_(src.node, dst.node);
    }
    if (t != nullptr) {
      // Head-of-line wait at the egress port is congestion (its own tax bucket, so the
      // disaggregation-tax breakdown attributes fabric queueing per hop); the
      // serialization + propagation that follows is fabric proper.
      if (tr.queued > Duration::zero()) {
        t->record(n.net, SpanKind::kFabricQueue, n.port_wait, at, at + tr.queued);
      }
      t->record(n.net, SpanKind::kFabric, n.hop, at + tr.queued, tr.depart + link);
    }
    at = tr.depart + link;
  }
  return at;
}

bool Network::route_blocked(Endpoint src, Endpoint dst, Time now) {
  if (injector_ == nullptr || topology_.flat() || src.node == dst.node) {
    return false;
  }
  if (injector_->plan().flaps.empty()) {
    return false;  // only flap schedules can name switch links
  }
  topology_.route(src, dst, &t_route_scratch);
  for (const Topology::Hop& hop : t_route_scratch) {
    if (injector_->link_blocked(hop.link_a, hop.link_b, now)) {
      return true;
    }
  }
  return false;
}

void Network::transfer_then(Endpoint src, Endpoint dst, Traffic category, uint64_t payload_bytes,
                            LinkClass cls, EventLoop::Callback then) {
  if (loop_->sharded() && src.node != dst.node && !topology_.same_rack(src.node, dst.node)) {
    sharded_cross_rack_transfer(src, dst, category, payload_bytes, cls, std::move(then));
    return;
  }
  const Time arrival = schedule_transfer(src, dst, category, payload_bytes, cls);
  loop_->schedule_at(arrival, std::move(then));
}

void Network::sharded_cross_rack_transfer(Endpoint src, Endpoint dst, Traffic category,
                                          uint64_t payload_bytes, LinkClass cls,
                                          EventLoop::Callback then) {
  const uint64_t wire_bytes =
      payload_bytes + params_.header_bytes * segment_count(payload_bytes, params_.mtu_bytes);

  // All accounting is charged on the source rack, where the send executes — the same rack
  // for every shard count, so merged counters and metrics are shard-count-invariant.
  const size_t cat = static_cast<size_t>(category);
  TrafficCounters& c = counters_for_current();
  c.messages[cat] += 1;
  c.bytes[cat] += wire_bytes;
  c.cross_messages[cat] += 1;
  c.cross_bytes[cat] += wire_bytes;
  if (MetricsRegistry* m = loop_->metrics()) {
    const NetNames& n = net_names();
    m->add(n.msg[cat]);
    m->add(n.bytes[cat], static_cast<int64_t>(wire_bytes));
  }

  const TopologySpec& spec = topology_.spec();
  const Duration link = spec.sw.link_oneway;
  const Duration nic_ser = transfer_time(wire_bytes, params_.wire_bandwidth_bpns);
  const uint32_t src_rack = topology_.rack_of(src.node);
  const uint32_t dst_rack = topology_.rack_of(dst.node);
  const uint32_t spine = topology_.spine_for(src, dst);

  SpanTracer* t =
      span_tracing_active() && loop_->span_tracer() != nullptr ? loop_->span_tracer() : nullptr;
  const NetNames& n = net_names();

  // Source-rack prefix: NIC serialization plus the ToR uplink toward the chosen spine. Every
  // piece of state touched here (sender NIC egress, source-ToR ports) is owned by src_rack.
  const Time nic_start = max(loop_->now(), egress_free_[src.node]);
  egress_free_[src.node] = nic_start + nic_ser;
  const Time at = nic_start + nic_ser + link;
  if (t != nullptr) {
    if (nic_start > loop_->now()) {
      t->record(n.net, SpanKind::kQueue, n.nic_wait, loop_->now(), nic_start);
    }
    const uint64_t id = t->record(n.net, SpanKind::kFabric, n.wire, nic_start, at);
    if (id != 0) {
      t->attr(id, "bytes", std::to_string(wire_bytes));
    }
  }
  const bool hot = cls == LinkClass::kHot;
  const Switch::Transit tr =
      topology_.tor(src_rack).traverse(spec.nodes_per_rack + spine, at, wire_bytes, hot);
  if (t != nullptr) {
    if (tr.queued > Duration::zero()) {
      t->record(n.net, SpanKind::kFabricQueue, n.port_wait, at, at + tr.queued);
    }
    t->record(n.net, SpanKind::kFabric, n.hop, at + tr.queued, tr.depart + link);
  }

  // Arrival at the spine — the first resource owned by the destination rack. It sits at
  // least nic_ser + 2 * link_oneway past now(), which is what makes post_remote's lookahead
  // contract (TopologySpec::min_cross_rack_latency) provable rather than tuned.
  const Time t_mid = tr.depart + link;
  const uint32_t dst_local = dst.node % spec.nodes_per_rack;
  loop_->post_remote(
      dst_rack, t_mid,
      [this, spine, dst_rack, dst_local, wire_bytes, hot, then = std::move(then)]() mutable {
        // Destination-rack suffix, running at t_mid on the destination shard: spine egress
        // toward the destination ToR, then the ToR member port down to the node. Spine port
        // r faces rack r's ToR, so port dst_rack is owned by the destination rack too.
        const Duration link2 = topology_.spec().sw.link_oneway;
        SpanTracer* t2 = span_tracing_active() && loop_->span_tracer() != nullptr
                             ? loop_->span_tracer()
                             : nullptr;
        const NetNames& n2 = net_names();
        const Time at_spine = loop_->now();
        const Switch::Transit trs =
            topology_.spine(spine).traverse(dst_rack, at_spine, wire_bytes, hot);
        if (t2 != nullptr) {
          if (trs.queued > Duration::zero()) {
            t2->record(n2.net, SpanKind::kFabricQueue, n2.port_wait, at_spine,
                       at_spine + trs.queued);
          }
          t2->record(n2.net, SpanKind::kFabric, n2.hop, at_spine + trs.queued,
                     trs.depart + link2);
        }
        const Time at_tor = trs.depart + link2;
        const Switch::Transit trt =
            topology_.tor(dst_rack).traverse(dst_local, at_tor, wire_bytes, hot);
        if (t2 != nullptr) {
          if (trt.queued > Duration::zero()) {
            t2->record(n2.net, SpanKind::kFabricQueue, n2.port_wait, at_tor,
                       at_tor + trt.queued);
          }
          t2->record(n2.net, SpanKind::kFabric, n2.hop, at_tor + trt.queued,
                     trt.depart + link2);
        }
        loop_->schedule_at(trt.depart + link2, std::move(then));
      });
}

void Network::send(Endpoint src, Endpoint dst, Traffic category, Payload payload,
                   std::function<void(Payload)> deliver, std::function<void()> dropped) {
  FRACTOS_CHECK(src.node < nodes_.size() && dst.node < nodes_.size());
  if (nodes_[src.node]->failed() || nodes_[dst.node]->failed()) {
    if (dropped != nullptr) {
      loop_->post(std::move(dropped));
    }
    return;
  }

  if (injector_ == nullptr) {
    // Clean fabric — the only mode sharded runs support. transfer_then is bit-identical to
    // the historical schedule_transfer + schedule_at pair on an unsharded loop.
    const uint64_t payload_bytes = payload.size();
    const uint32_t dst_node = dst.node;
    transfer_then(src, dst, category, payload_bytes, LinkClass::kBulk,
                  [this, dst_node, payload = std::move(payload), deliver = std::move(deliver),
                   dropped = std::move(dropped)]() mutable {
                    // Failure is re-checked at delivery: a node that failed while the
                    // message was in flight never sees it.
                    if (nodes_[dst_node]->failed()) {
                      if (dropped != nullptr) {
                        dropped();
                      }
                      return;
                    }
                    deliver(std::move(payload));
                  });
    return;
  }

  Duration extra_delay = Duration::zero();
  bool duplicate = false;
  {
    // A blocked topology link (spine/ToR flap) eats the message deterministically, before
    // any probabilistic draw — mirroring how on_message treats node-to-node partitions.
    if (route_blocked(src, dst, loop_->now())) {
      injector_->note_partition_drop();
      if (MetricsRegistry* m = loop_->metrics()) {
        static const NameId kDrops = intern_name("net.faults.drops");
        m->add(kDrops);
      }
      return;
    }
    const FaultInjector::Verdict v =
        injector_->on_message(src.node, dst.node, category, loop_->now());
    if (MetricsRegistry* m = loop_->metrics()) {
      // Mirrored at the verdict site so net.faults.* matches FaultCounters exactly.
      static const NameId kDrops = intern_name("net.faults.drops");
      static const NameId kDuplicates = intern_name("net.faults.duplicates");
      static const NameId kDelayed = intern_name("net.faults.delayed");
      if (v.drop) {
        m->add(kDrops);
      }
      if (v.duplicate) {
        m->add(kDuplicates);
      }
      if (v.extra_delay > Duration::zero()) {
        m->add(kDelayed);
      }
    }
    if (v.drop) {
      // Silent loss: unlike the failed-node path, nobody is told. Recovering from it is the
      // reliability layer's job (QueuePair RC retransmit, controller peer-op retries).
      return;
    }
    duplicate = v.duplicate;
    extra_delay = v.extra_delay;
  }  // injector verdict scope

  Time arrival = schedule_transfer(src, dst, category, payload.size());
  arrival = arrival + extra_delay;
  if (duplicate) {
    // A duplicated message is charged twice on the wire and delivered twice; receiver-side
    // dedup (QueuePair sequence numbers) is what keeps it invisible to the layers above.
    // Both copies alias the same Payload rep — duplication costs a refcount bump, not bytes.
    const Time dup_arrival = schedule_transfer(src, dst, category, payload.size());
    const uint32_t dd = dst.node;
    loop_->schedule_at(dup_arrival, [this, dd, payload, deliver]() mutable {
      if (!nodes_[dd]->failed()) {
        deliver(std::move(payload));
      }
    });
  }
  // Failure is re-checked at delivery: a node that failed while the message was in flight
  // never sees it.
  const uint32_t dst_node = dst.node;
  loop_->schedule_at(arrival, [this, dst_node, payload = std::move(payload),
                               deliver = std::move(deliver), dropped = std::move(dropped)]() mutable {
    if (nodes_[dst_node]->failed()) {
      if (dropped != nullptr) {
        dropped();
      }
      return;
    }
    deliver(std::move(payload));
  });
}

void Network::rdma_read(Endpoint initiator, uint32_t target, const RdmaKey& key, PoolId pool,
                        uint64_t addr, uint64_t size,
                        std::function<void(Result<Payload>)> done, LinkClass cls) {
  FRACTOS_CHECK(initiator.node < nodes_.size() && target < nodes_.size());
  if (injector_ != nullptr) {
    const bool blocked = route_blocked(initiator, Endpoint{target, Loc::kHost}, loop_->now());
    const FaultInjector::RdmaVerdict v =
        injector_->on_rdma(initiator.node, target, loop_->now(), blocked);
    note_rdma_faults(loop_, v);
    if (v.abort) {
      loop_->schedule_after(v.delay, [done = std::move(done)]() mutable {
        done(ErrorCode::kTimeout);
      });
      return;
    }
    if (v.retries > 0) {
      loop_->schedule_after(v.delay, [this, initiator, target, key, pool, addr, size, cls,
                                      done = std::move(done)]() mutable {
        rdma_read_impl(initiator, target, key, pool, addr, size, std::move(done), cls);
      });
      return;
    }
  }
  rdma_read_impl(initiator, target, key, pool, addr, size, std::move(done), cls);
}

void Network::rdma_read_impl(Endpoint initiator, uint32_t target, const RdmaKey& key,
                             PoolId pool, uint64_t addr, uint64_t size,
                             std::function<void(Result<Payload>)> done, LinkClass cls) {
  const Endpoint tgt_ep{target, Loc::kHost};

  // Request leg: a header-only work request to the target NIC. Each leg runs through
  // transfer_then, so under a sharded loop every node's state (authorizer, pools) is only
  // ever touched by the rack that owns it.
  transfer_then(initiator, tgt_ep, Traffic::kData, 0, cls,
                [this, initiator, target, key, pool, addr, size, tgt_ep, cls,
                 done = std::move(done)]() mutable {
    Node& t = *nodes_[target];
    const Status auth = t.authorize_rdma(key, pool, addr, size, /*is_write=*/false);
    if (!auth.ok()) {
      // NAK: header-only response.
      transfer_then(tgt_ep, initiator, Traffic::kData, 0, cls,
                    [done = std::move(done), auth]() mutable { done(auth.error()); });
      return;
    }
    const PoolBytes& mem = t.pool(pool);
    // The one origin copy: pool bytes into a fresh Payload rep. Every downstream hop shares
    // this rep.
    Payload data(std::vector<uint8_t>(mem.begin() + static_cast<ptrdiff_t>(addr),
                                      mem.begin() + static_cast<ptrdiff_t>(addr + size)));
    // Response leg carries the payload.
    transfer_then(tgt_ep, initiator, Traffic::kData, size, cls,
                  [done = std::move(done), data = std::move(data)]() mutable {
                    done(std::move(data));
                  });
  });
}

void Network::rdma_write(Endpoint initiator, uint32_t target, const RdmaKey& key, PoolId pool,
                         uint64_t addr, Payload data, std::function<void(Status)> done,
                         LinkClass cls) {
  FRACTOS_CHECK(initiator.node < nodes_.size() && target < nodes_.size());
  if (injector_ != nullptr) {
    const bool blocked = route_blocked(initiator, Endpoint{target, Loc::kHost}, loop_->now());
    const FaultInjector::RdmaVerdict v =
        injector_->on_rdma(initiator.node, target, loop_->now(), blocked);
    note_rdma_faults(loop_, v);
    if (v.abort) {
      loop_->schedule_after(v.delay, [done = std::move(done)]() mutable {
        done(Status(ErrorCode::kTimeout));
      });
      return;
    }
    if (v.retries > 0) {
      loop_->schedule_after(v.delay, [this, initiator, target, key, pool, addr, cls,
                                      data = std::move(data), done = std::move(done)]() mutable {
        rdma_write_impl(initiator, target, key, pool, addr, std::move(data), std::move(done),
                        cls);
      });
      return;
    }
  }
  rdma_write_impl(initiator, target, key, pool, addr, std::move(data), std::move(done), cls);
}

void Network::rdma_write_impl(Endpoint initiator, uint32_t target, const RdmaKey& key,
                              PoolId pool, uint64_t addr, Payload data,
                              std::function<void(Status)> done, LinkClass cls) {
  const Endpoint tgt_ep{target, Loc::kHost};
  const uint64_t size = data.size();

  // Request leg carries the payload (a handle — the bytes move only at the final pool copy).
  transfer_then(initiator, tgt_ep, Traffic::kData, size, cls,
                [this, target, key, pool, addr, tgt_ep, initiator, cls, data = std::move(data),
                 done = std::move(done)]() mutable {
                  Node& t = *nodes_[target];
                  const Status auth =
                      t.authorize_rdma(key, pool, addr, data.size(), /*is_write=*/true);
                  if (auth.ok()) {
                    PoolBytes& mem = t.pool(pool);
                    std::copy_n(data.data(), data.size(),
                                mem.begin() + static_cast<ptrdiff_t>(addr));
                  }
                  // ACK/NAK: header-only response.
                  transfer_then(tgt_ep, initiator, Traffic::kData, 0, cls,
                                [done = std::move(done), auth]() mutable { done(auth); });
                });
}

void Network::rdma_third_party(Endpoint initiator, RdmaSide src, RdmaSide dst, uint64_t size,
                               std::function<void(Status)> done) {
  FRACTOS_CHECK(initiator.node < nodes_.size());
  FRACTOS_CHECK(src.node < nodes_.size() && dst.node < nodes_.size());
  if (injector_ != nullptr) {
    // Two wire legs are exposed to faults: the work request (initiator -> src NIC) and the
    // third-party data leg (src -> dst). Either aborting fails the whole verb.
    const Endpoint src_ep{src.node, Loc::kHost};
    const Endpoint dst_ep{dst.node, Loc::kHost};
    const FaultInjector::RdmaVerdict v1 = injector_->on_rdma(
        initiator.node, src.node, loop_->now(), route_blocked(initiator, src_ep, loop_->now()));
    const FaultInjector::RdmaVerdict v2 = injector_->on_rdma(
        src.node, dst.node, loop_->now(), route_blocked(src_ep, dst_ep, loop_->now()));
    note_rdma_faults(loop_, v1);
    note_rdma_faults(loop_, v2);
    const Duration delay = v1.delay + v2.delay;
    if (v1.abort || v2.abort) {
      loop_->schedule_after(delay, [done = std::move(done)]() mutable {
        done(Status(ErrorCode::kTimeout));
      });
      return;
    }
    if (v1.retries > 0 || v2.retries > 0) {
      loop_->schedule_after(delay, [this, initiator, src, dst, size,
                                    done = std::move(done)]() mutable {
        rdma_third_party_impl(initiator, src, dst, size, std::move(done));
      });
      return;
    }
  }
  rdma_third_party_impl(initiator, src, dst, size, std::move(done));
}

void Network::rdma_third_party_impl(Endpoint initiator, RdmaSide src, RdmaSide dst,
                                    uint64_t size, std::function<void(Status)> done) {
  const Endpoint src_ep{src.node, Loc::kHost};
  const Endpoint dst_ep{dst.node, Loc::kHost};

  // Work request to the source NIC.
  transfer_then(initiator, src_ep, Traffic::kData, 0, LinkClass::kBulk,
                [this, initiator, src, dst, size, src_ep, dst_ep,
                 done = std::move(done)]() mutable {
    Node& s = *nodes_[src.node];
    Status auth = s.authorize_rdma(src.key, src.pool, src.addr, size, /*is_write=*/false);
    if (!auth.ok()) {
      transfer_then(src_ep, initiator, Traffic::kData, 0, LinkClass::kBulk,
                    [done = std::move(done), auth]() mutable { done(auth); });
      return;
    }
    const PoolBytes& mem = s.pool(src.pool);
    std::vector<uint8_t> data(mem.begin() + static_cast<ptrdiff_t>(src.addr),
                              mem.begin() + static_cast<ptrdiff_t>(src.addr + size));
    // Data leg goes straight to the destination — the initiator never touches it.
    transfer_then(src_ep, dst_ep, Traffic::kData, size, LinkClass::kBulk,
                  [this, initiator, dst, dst_ep, data = std::move(data),
                   done = std::move(done)]() mutable {
                    Node& t = *nodes_[dst.node];
                    const Status wauth = t.authorize_rdma(dst.key, dst.pool, dst.addr,
                                                          data.size(), /*is_write=*/true);
                    if (wauth.ok()) {
                      PoolBytes& tmem = t.pool(dst.pool);
                      std::copy(data.begin(), data.end(),
                                tmem.begin() + static_cast<ptrdiff_t>(dst.addr));
                    }
                    transfer_then(dst_ep, initiator, Traffic::kData, 0, LinkClass::kBulk,
                                  [done = std::move(done), wauth]() mutable { done(wauth); });
                  });
  });
}

}  // namespace fractos
