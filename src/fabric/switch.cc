#include "src/fabric/switch.h"

#include <algorithm>

#include "src/base/assert.h"

namespace fractos {

Switch::Port& Switch::ensure_port(uint32_t port) {
  if (port >= ports_.size()) {
    ports_.resize(port + 1);
  }
  return ports_[port];
}

const PortStats& Switch::port_stats(uint32_t port) const {
  FRACTOS_CHECK(port < ports_.size());
  return ports_[port].stats;
}

Switch::Transit Switch::traverse(uint32_t port, Time enq, uint64_t wire_bytes, bool hot_lane) {
  Port& p = ensure_port(port);
  // Lane partition (DESIGN.md §4k): with hot_lane_share > 0 each lane owns a private egress
  // clock and a proportional slice of the line rate — a strict bandwidth partition, not a
  // priority scheme, so neither class can starve the other. share == 0 collapses to the
  // single shared clock, bit-identical to the pre-partition model.
  const double share = params_.hot_lane_share;
  const bool partitioned = share > 0.0;
  const double bw =
      partitioned ? params_.port_bandwidth_bpns * (hot_lane ? share : 1.0 - share)
                  : params_.port_bandwidth_bpns;
  Time& free_at = partitioned && hot_lane ? p.hot_free_at : p.free_at;
  const Duration ser = transfer_time(wire_bytes, bw);
  const Time start = max(enq, free_at);

  // Backlog already committed to this lane when the message reaches it. With PFC, a frame
  // that would overflow the buffer is held at the upstream hop until the queue drains — the
  // wait is the same either way, but the occupancy we record is the bounded in-queue share.
  const int64_t backlog_ns = free_at > enq ? (free_at - enq).ns() : 0;
  const uint64_t backlog_bytes =
      static_cast<uint64_t>(static_cast<double>(backlog_ns) * bw);
  uint64_t occupancy = backlog_bytes + wire_bytes;
  const bool paused = occupancy > params_.port_buffer_bytes;
  if (paused) {
    occupancy = params_.port_buffer_bytes;
  }

  Transit t;
  t.depart = start + ser;
  t.queued = start - enq;
  t.ecn_marked = occupancy >= params_.ecn_threshold_bytes;

  free_at = t.depart;
  p.stats.messages += 1;
  p.stats.bytes += wire_bytes;
  if (partitioned && hot_lane) {
    p.stats.hot_messages += 1;
    p.stats.hot_bytes += wire_bytes;
  }
  p.stats.queue_wait_ns += t.queued.ns();
  p.stats.max_queue_bytes = std::max(p.stats.max_queue_bytes, occupancy);
  if (t.ecn_marked) {
    p.stats.ecn_marks += 1;
  }
  if (paused) {
    p.stats.pause_events += 1;
  }
  return t;
}

uint64_t Switch::max_queue_bytes() const {
  uint64_t m = 0;
  for (const Port& p : ports_) {
    m = std::max(m, p.stats.max_queue_bytes);
  }
  return m;
}

uint64_t Switch::total_ecn_marks() const {
  uint64_t n = 0;
  for (const Port& p : ports_) {
    n += p.stats.ecn_marks;
  }
  return n;
}

uint64_t Switch::total_pause_events() const {
  uint64_t n = 0;
  for (const Port& p : ports_) {
    n += p.stats.pause_events;
  }
  return n;
}

}  // namespace fractos
