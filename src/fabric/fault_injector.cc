#include "src/fabric/fault_injector.h"

#include <algorithm>

#include "src/fabric/network.h"

namespace fractos {

namespace {

bool same_link(uint32_t a, uint32_t b, uint32_t x, uint32_t y) {
  return (a == x && b == y) || (a == y && b == x);
}

}  // namespace

bool FaultInjector::node_dark(uint32_t node, Time now) const {
  for (const FaultPlan::NodeOutage& o : plan_.outages) {
    if (o.node == node && now >= o.start && now < o.end) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::link_blocked(uint32_t a, uint32_t b, Time now) const {
  for (const FaultPlan::LinkFlap& f : plan_.flaps) {
    if (same_link(a, b, f.a, f.b) && now >= f.start && now < f.end) {
      return true;
    }
  }
  return node_dark(a, now) || node_dark(b, now);
}

double FaultInjector::drop_prob_for(uint32_t a, uint32_t b, size_t cat) const {
  for (const FaultPlan::LinkOverride& o : plan_.link_overrides) {
    if (same_link(a, b, o.a, o.b)) {
      return o.drop_prob[cat];
    }
  }
  return plan_.drop_prob[cat];
}

FaultInjector::Verdict FaultInjector::on_message(uint32_t src_node, uint32_t dst_node,
                                                 Traffic category, Time now) {
  Verdict v;
  const size_t cat = static_cast<size_t>(category);

  // Partitions and outages are deterministic schedules: no rng draw, counted separately so a
  // test can distinguish "the flap ate it" from "the dice ate it".
  if (link_blocked(src_node, dst_node, now)) {
    ++counters_.partition_drops;
    v.drop = true;
    return v;
  }

  // Probabilistic faults draw in a fixed order — drop, then duplicate, then jitter — so the
  // rng consumption per message is a pure function of the plan, keeping runs seed-stable.
  const double dp = drop_prob_for(src_node, dst_node, cat);
  if (dp > 0 && rng_.next_bool(dp)) {
    ++counters_.dropped[cat];
    v.drop = true;
    return v;
  }
  if (plan_.dup_prob[cat] > 0 && rng_.next_bool(plan_.dup_prob[cat])) {
    ++counters_.duplicated[cat];
    v.duplicate = true;
  }
  if (plan_.jitter_prob[cat] > 0 && rng_.next_bool(plan_.jitter_prob[cat])) {
    ++counters_.delayed[cat];
    v.extra_delay = Duration::nanos(1 + rng_.next_below(
        static_cast<uint64_t>(std::max<int64_t>(1, plan_.max_jitter.ns()))));
  }
  return v;
}

FaultInjector::RdmaVerdict FaultInjector::on_rdma(uint32_t a, uint32_t b, Time now,
                                                  bool path_blocked) {
  RdmaVerdict v;

  // A blocked link defeats every retransmit: the modeled NIC burns its whole budget (with
  // exponential backoff between attempts) and completes the verb with an abort.
  auto backoff_total = [this](uint32_t attempts) {
    Duration d = Duration::zero();
    for (uint32_t i = 0; i < attempts; ++i) {
      d = d + plan_.rdma_retry_timeout * static_cast<double>(uint64_t{1} << std::min(i, 6u));
    }
    return d;
  };

  if (path_blocked || link_blocked(a, b, now)) {
    v.retries = plan_.rdma_retry_budget;
    v.abort = true;
    v.delay = backoff_total(plan_.rdma_retry_budget);
    counters_.rdma_retransmits += v.retries;
    ++counters_.rdma_aborts;
    return v;
  }

  // Loopback traffic never traverses the lossy wire.
  if (a == b) {
    return v;
  }

  const double dp = drop_prob_for(a, b, static_cast<size_t>(Traffic::kData));
  if (dp <= 0) {
    return v;
  }
  while (v.retries < plan_.rdma_retry_budget && rng_.next_bool(dp)) {
    ++v.retries;
  }
  if (v.retries > 0) {
    counters_.rdma_retransmits += v.retries;
    v.delay = backoff_total(v.retries);
    if (v.retries >= plan_.rdma_retry_budget) {
      v.abort = true;
      ++counters_.rdma_aborts;
    }
  }
  return v;
}

}  // namespace fractos
