#include "src/fabric/topology.h"

#include <string>

#include "src/base/assert.h"

namespace fractos {

std::optional<std::string> TopologySpec::validate(uint32_t num_nodes) const {
  if (kind == Kind::kSingleSwitch) {
    return std::nullopt;
  }
  if (nodes_per_rack == 0) {
    return "fat-tree topology needs nodes_per_rack >= 1";
  }
  if (num_spines == 0) {
    return "fat-tree topology needs num_spines >= 1 (no cross-rack path otherwise)";
  }
  if (num_nodes > 0 && num_nodes % nodes_per_rack != 0) {
    const uint32_t missing = nodes_per_rack - num_nodes % nodes_per_rack;
    return "fat-tree with " + std::to_string(num_nodes) +
           " node(s) does not divide into racks of " + std::to_string(nodes_per_rack) +
           ": the last rack would be silently under-filled, skewing rack-local vs "
           "cross-rack ratios; pick a nodes_per_rack that divides the node count, or add " +
           std::to_string(missing) + " node(s) to fill rack " +
           std::to_string(num_nodes / nodes_per_rack);
  }
  return std::nullopt;
}

Topology::Topology(TopologySpec spec) : spec_(spec) {
  if (!flat()) {
    FRACTOS_CHECK(spec_.nodes_per_rack > 0);
    FRACTOS_CHECK(spec_.num_spines > 0);
    spines_.reserve(spec_.num_spines);
    for (uint32_t i = 0; i < spec_.num_spines; ++i) {
      spines_.push_back(
          std::make_unique<Switch>(spine_id(i), "spine" + std::to_string(i), spec_.sw));
    }
  }
}

void Topology::on_node_added(uint32_t node) {
  if (flat()) {
    return;
  }
  const uint32_t rack = rack_of(node);
  while (tors_.size() <= rack) {
    const uint32_t r = static_cast<uint32_t>(tors_.size());
    tors_.push_back(std::make_unique<Switch>(tor_id(r), "tor" + std::to_string(r), spec_.sw));
  }
}

Switch& Topology::tor(uint32_t rack) {
  FRACTOS_CHECK(rack < tors_.size());
  return *tors_[rack];
}

Switch& Topology::spine(uint32_t i) {
  FRACTOS_CHECK(i < spines_.size());
  return *spines_[i];
}

const Switch& Topology::tor(uint32_t rack) const {
  FRACTOS_CHECK(rack < tors_.size());
  return *tors_[rack];
}

const Switch& Topology::spine(uint32_t i) const {
  FRACTOS_CHECK(i < spines_.size());
  return *spines_[i];
}

uint64_t Topology::flow_hash(Endpoint src, Endpoint dst) {
  // splitmix64 over the packed flow tuple: strong enough to spread adjacent node pairs
  // across spines, and a pure function so routing never perturbs seed determinism.
  uint64_t x = (static_cast<uint64_t>(src.node) << 33) ^ (static_cast<uint64_t>(dst.node) << 2) ^
               (static_cast<uint64_t>(src.loc) << 1) ^ static_cast<uint64_t>(dst.loc);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint32_t Topology::spine_for(Endpoint src, Endpoint dst) const {
  FRACTOS_CHECK(!spines_.empty());
  return static_cast<uint32_t>(flow_hash(src, dst) % spines_.size());
}

uint32_t Topology::num_links(Endpoint src, Endpoint dst) const {
  if (flat() || src.node == dst.node) {
    return 0;
  }
  return same_rack(src.node, dst.node) ? 2 : 4;
}

void Topology::route(Endpoint src, Endpoint dst, std::vector<Hop>* out) {
  out->clear();
  if (flat() || src.node == dst.node) {
    return;
  }
  const uint32_t src_rack = rack_of(src.node);
  const uint32_t dst_rack = rack_of(dst.node);
  FRACTOS_CHECK(src_rack < tors_.size() && dst_rack < tors_.size());
  const uint32_t dst_local = dst.node % spec_.nodes_per_rack;

  // Sender NIC onto its ToR link (serialized by the Network's per-node egress state).
  out->push_back(Hop{nullptr, 0, src.node, tor_id(src_rack)});

  if (src_rack == dst_rack) {
    out->push_back(Hop{tors_[src_rack].get(), dst_local, tor_id(src_rack), dst.node});
    return;
  }

  const uint32_t s = spine_for(src, dst);
  // ToR uplink ports sit above the member-node ports; spine port r faces rack r's ToR.
  out->push_back(
      Hop{tors_[src_rack].get(), spec_.nodes_per_rack + s, tor_id(src_rack), spine_id(s)});
  out->push_back(Hop{spines_[s].get(), dst_rack, spine_id(s), tor_id(dst_rack)});
  out->push_back(Hop{tors_[dst_rack].get(), dst_local, tor_id(dst_rack), dst.node});
}

void Topology::presize_ports() {
  for (const auto& t : tors_) {
    t->ensure_ports(spec_.nodes_per_rack + spec_.num_spines);
  }
  for (const auto& s : spines_) {
    s->ensure_ports(static_cast<uint32_t>(tors_.size()));
  }
}

uint64_t Topology::max_port_queue_bytes() const {
  uint64_t m = 0;
  for (const auto& t : tors_) {
    m = std::max(m, t->max_queue_bytes());
  }
  for (const auto& s : spines_) {
    m = std::max(m, s->max_queue_bytes());
  }
  return m;
}

uint64_t Topology::total_ecn_marks() const {
  uint64_t n = 0;
  for (const auto& t : tors_) {
    n += t->total_ecn_marks();
  }
  for (const auto& s : spines_) {
    n += s->total_ecn_marks();
  }
  return n;
}

uint64_t Topology::total_pause_events() const {
  uint64_t n = 0;
  for (const auto& t : tors_) {
    n += t->total_pause_events();
  }
  for (const auto& s : spines_) {
    n += s->total_pause_events();
  }
  return n;
}

}  // namespace fractos
