// Reliable-connected queue pair: the bidirectional, ordered message channel FractOS uses
// between a Process and its Controller and between Controllers ("Processes are decoupled from
// their Controller via an RoCE queue pair, as well as Controllers between themselves",
// Section 4 of the paper).
//
// A QueuePair is one local end; connect() wires two ends together. sever() models a broken
// channel (process death, node failure): the peer's severed handler fires, which is exactly
// the event FractOS's failure-translation machinery consumes ("A Process failure is detected
// by the owner Controller when their channel is severed", Section 3.6).

#ifndef SRC_FABRIC_QUEUE_PAIR_H_
#define SRC_FABRIC_QUEUE_PAIR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/fabric/network.h"

namespace fractos {

class QueuePair {
 public:
  using ReceiveHandler = std::function<void(std::vector<uint8_t>)>;
  using SeveredHandler = std::function<void()>;

  QueuePair(Network* net, Endpoint local);

  // Wires `a` and `b` as the two ends of one connection. Each end must be unconnected.
  static void connect(QueuePair& a, QueuePair& b);

  Endpoint local() const { return local_; }
  Endpoint remote() const;
  bool connected() const { return peer_ != nullptr; }
  bool severed() const { return severed_; }

  void set_receive_handler(ReceiveHandler handler) { on_receive_ = std::move(handler); }
  void set_severed_handler(SeveredHandler handler) { on_severed_ = std::move(handler); }

  // Sends `payload` to the peer; its receive handler runs after the modeled latency.
  // Sends on a severed pair are silently dropped (the RC connection is gone).
  void send(Traffic category, std::vector<uint8_t> payload);

  // Tears the connection down from this side. The peer's severed handler fires after one
  // propagation delay (the transport detecting the broken connection).
  void sever();

 private:
  void deliver(std::vector<uint8_t> payload);
  void peer_severed();

  Network* net_;
  Endpoint local_;
  QueuePair* peer_ = nullptr;
  ReceiveHandler on_receive_;
  SeveredHandler on_severed_;
  bool severed_ = false;
};

}  // namespace fractos

#endif  // SRC_FABRIC_QUEUE_PAIR_H_
