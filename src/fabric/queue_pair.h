// Reliable-connected queue pair: the bidirectional, ordered message channel FractOS uses
// between a Process and its Controller and between Controllers ("Processes are decoupled from
// their Controller via an RoCE queue pair, as well as Controllers between themselves",
// Section 4 of the paper).
//
// A QueuePair is one local end; connect() wires two ends together. sever() models a broken
// channel (process death, node failure): the peer's severed handler fires, which is exactly
// the event FractOS's failure-translation machinery consumes ("A Process failure is detected
// by the owner Controller when their channel is severed", Section 3.6).
//
// Reliability: on a clean fabric the wire itself never loses messages, so a send is one
// Network::send and nothing more. When a FaultInjector that can lose/duplicate/reorder
// messages is installed (Network::lossy()), kReliable pairs switch on RC semantics modeled
// after RoCE RC: every message carries a sequence number, the receiver delivers strictly
// in order (duplicates and out-of-order arrivals are dropped and re-ACKed), and the sender
// retransmits unACKed messages with exponential backoff. Exhausting the retry budget severs
// the pair — RoCE RC retry_cnt behavior. kDatagram pairs (heartbeats) stay fire-and-forget
// even on a lossy fabric, matching UD semantics.

#ifndef SRC_FABRIC_QUEUE_PAIR_H_
#define SRC_FABRIC_QUEUE_PAIR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/fabric/network.h"

namespace fractos {

class QueuePair {
 public:
  using ReceiveHandler = std::function<void(Payload)>;
  using SeveredHandler = std::function<void()>;

  // kReliable = RC service (retransmit on a lossy fabric); kDatagram = UD service (lossy
  // fabric may silently eat messages — what heartbeats want, so monitor false positives are
  // possible and detectable).
  enum class Mode : uint8_t {
    kReliable = 0,
    kDatagram = 1,
  };

  QueuePair(Network* net, Endpoint local);
  ~QueuePair();
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  // Wires `a` and `b` as the two ends of one connection. Each end must be unconnected.
  static void connect(QueuePair& a, QueuePair& b);

  Endpoint local() const { return local_; }
  Endpoint remote() const;
  bool connected() const { return peer_ != nullptr; }
  bool severed() const { return severed_; }

  void set_receive_handler(ReceiveHandler handler) { on_receive_ = std::move(handler); }
  void set_severed_handler(SeveredHandler handler) { on_severed_ = std::move(handler); }

  void set_mode(Mode mode) { mode_ = mode; }
  Mode mode() const { return mode_; }

  // RC retransmission knobs (effective only when the fabric is lossy).
  void set_retry_policy(Duration rto, uint32_t retry_budget) {
    rto_ = rto;
    retry_budget_ = retry_budget;
  }

  // Sends `payload` to the peer; its receive handler runs after the modeled latency.
  // Sends on a severed pair are dropped and counted in dropped(). The payload is a
  // refcounted handle: RC retransmissions re-send the same rep without copying bytes.
  void send(Traffic category, Payload payload);

  // Tears the connection down from this side. The peer's severed handler fires after one
  // propagation delay (the transport detecting the broken connection). Unacknowledged
  // in-flight messages are counted as dropped.
  void sever();

  // --- reliability counters (first-class outputs; all zero on a clean fabric) ---
  uint64_t dropped() const { return dropped_; }                 // sends that never arrived
  uint64_t retransmits() const { return retransmits_; }         // RC retries issued
  uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  uint64_t acks_sent() const { return acks_sent_; }
  size_t unacked() const { return unacked_.size(); }

 private:
  struct Pending {
    Traffic category = Traffic::kControl;
    Payload payload;
    uint32_t attempts = 0;
    Time last_tx;  // when this entry last hit the wire (drives go-back-N resume)
  };

  bool reliable() const { return mode_ == Mode::kReliable && net_->lossy(); }
  void transmit(uint64_t seq);
  void arm_retransmit(uint64_t seq, uint32_t attempt);
  void exhaust_retries();
  void on_wire_data(uint64_t seq, Payload payload);
  void send_ack(uint64_t cumulative);
  void on_ack(uint64_t cumulative);
  void deliver(Payload payload);
  void peer_severed();

  Network* net_;
  Endpoint local_;
  QueuePair* peer_ = nullptr;
  ReceiveHandler on_receive_;
  SeveredHandler on_severed_;
  bool severed_ = false;
  Mode mode_ = Mode::kReliable;

  // RC state. tx_seq_ numbers outgoing messages; rx_next_ is the next in-order sequence the
  // receive side will accept; unacked_ holds sent-but-unACKed messages for retransmission.
  uint64_t tx_seq_ = 0;
  uint64_t rx_next_ = 0;
  // RoCE retry_cnt: consecutive retransmissions of the *head* of the unacked window with no
  // cumulative-ACK progress in between. Trailing entries retransmit on their own timers but
  // never count toward the budget — they are blocked behind head-of-line recovery, which is
  // not evidence of a dead link. Reset on every ACK advance.
  uint32_t consecutive_head_retries_ = 0;
  std::map<uint64_t, Pending> unacked_;
  Duration rto_ = Duration::micros(30);
  uint32_t retry_budget_ = 12;

  uint64_t dropped_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t duplicates_suppressed_ = 0;
  uint64_t acks_sent_ = 0;

  // Guards every callback the pair parks in the event loop (deliveries, ACKs, retransmit
  // timers, sever propagation): Controller::restart() destroys channels mid-simulation, and
  // a timer firing into a destroyed pair must be a no-op, not a use-after-free.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace fractos

#endif  // SRC_FABRIC_QUEUE_PAIR_H_
