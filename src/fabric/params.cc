#include "src/fabric/params.h"

#include "src/base/assert.h"

namespace fractos {

Duration transfer_time(uint64_t bytes, double bandwidth_bpns) {
  FRACTOS_CHECK(bandwidth_bpns > 0.0);
  if (bytes == 0) {
    return Duration::zero();
  }
  const double ns = static_cast<double>(bytes) / bandwidth_bpns;
  const int64_t whole = static_cast<int64_t>(ns);
  return Duration::nanos(whole < 1 ? 1 : whole);
}

uint64_t segment_count(uint64_t bytes, uint64_t mtu_bytes) {
  FRACTOS_CHECK(mtu_bytes > 0);
  if (bytes == 0) {
    return 1;
  }
  return (bytes + mtu_bytes - 1) / mtu_bytes;
}

}  // namespace fractos
