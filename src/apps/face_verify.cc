#include "src/apps/face_verify.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"
#include "src/sim/rng.h"

namespace fractos {

std::vector<uint8_t> face_image(uint32_t batch, uint32_t index, uint64_t image_bytes) {
  Rng rng(0x9000ull + batch * 1315423911ull + index);
  std::vector<uint8_t> img(image_bytes);
  for (auto& b : img) {
    b = rng.next_byte();
  }
  return img;
}

std::vector<uint8_t> face_batch(uint32_t batch, uint32_t images_per_batch,
                                uint64_t image_bytes) {
  std::vector<uint8_t> content;
  content.reserve(image_bytes * images_per_batch);
  for (uint32_t i = 0; i < images_per_batch; ++i) {
    const auto img = face_image(batch, i, image_bytes);
    content.insert(content.end(), img.begin(), img.end());
  }
  return content;
}

SimGpu::Kernel make_face_verify_kernel(Duration per_image_compute) {
  return [per_image_compute](PoolBytes& mem, const std::vector<uint64_t>& args) {
    FRACTOS_CHECK(args.size() >= 5);
    const uint64_t probe = args[0];
    const uint64_t db = args[1];
    const uint64_t result = args[2];
    const uint64_t n = args[3];
    const uint64_t image_bytes = args[4];
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t p = probe + i * image_bytes;
      const uint64_t d = db + i * image_bytes;
      const bool match = std::equal(mem.begin() + static_cast<ptrdiff_t>(p),
                                    mem.begin() + static_cast<ptrdiff_t>(p + image_bytes),
                                    mem.begin() + static_cast<ptrdiff_t>(d));
      mem[result + i] = match ? 1 : 0;
    }
    return per_image_compute * static_cast<double>(n);
  };
}

FaceVerifyCluster FaceVerifyCluster::build(System* sys) {
  FaceVerifyCluster c;
  c.frontend_node = sys->add_node("frontend");
  c.fs_node = sys->add_node("fs");
  c.storage_node = sys->add_node("storage");
  c.gpu_node = sys->add_node("gpu");
  c.nvme = std::make_unique<SimNvme>(&sys->loop());
  c.gpu = std::make_unique<SimGpu>(&sys->net(), c.gpu_node);
  return c;
}

// --- FractOS deployment ---------------------------------------------------------------------

FaceVerifyFractos::FaceVerifyFractos(System* sys, FaceVerifyCluster* cluster, Loc ctrl_loc,
                                     FaceVerifyParams params, Controller* shared_controller)
    : sys_(sys), cluster_(cluster), params_(params), slot_pool_(params.pool_slots) {
  slot_pool_.instrument(&sys->loop(), "facever");
  const uint64_t batch_bytes = params_.image_bytes * params_.images_per_batch;

  Controller* c_front;
  Controller* c_fs;
  Controller* c_storage;
  Controller* c_gpu;
  if (shared_controller != nullptr) {
    c_front = c_fs = c_storage = c_gpu = shared_controller;
  } else {
    c_front = &sys->add_controller(cluster->frontend_node, ctrl_loc);
    c_fs = &sys->add_controller(cluster->fs_node, ctrl_loc);
    c_storage = &sys->add_controller(cluster->storage_node, ctrl_loc);
    c_gpu = &sys->add_controller(cluster->gpu_node, ctrl_loc);
  }

  BlockAdaptor::Params bp;
  bp.slot_bytes = std::max<uint64_t>(2 << 20, batch_bytes);
  block_ = std::make_unique<BlockAdaptor>(sys, cluster->storage_node, *c_storage,
                                          cluster->nvme.get(), bp);
  FsService::Params fp;
  fp.extent_bytes = std::max<uint64_t>(4 << 20, batch_bytes);
  fp.slot_bytes = bp.slot_bytes;
  fs_ = FsService::bootstrap(sys, cluster->fs_node, *c_fs, block_->process(),
                             block_->mgmt_endpoint(), fp);
  gpu_adaptor_ = std::make_unique<GpuAdaptor>(sys, *c_gpu, cluster->gpu.get());
  gpu_adaptor_->register_kernel("face_verify",
                                make_face_verify_kernel(params_.per_image_compute));

  const uint64_t heap =
      (batch_bytes * 2 + 8192) * params_.pool_slots + batch_bytes + (2 << 20);
  frontend_ = &sys->spawn("frontend", cluster->frontend_node, *c_front, heap);
  fs_create_ = sys->bootstrap_grant(fs_->process(), fs_->create_endpoint(), *frontend_).value();
  fs_open_ = sys->bootstrap_grant(fs_->process(), fs_->open_endpoint(), *frontend_).value();
  const CapId gpu_init =
      sys->bootstrap_grant(gpu_adaptor_->process(), gpu_adaptor_->init_endpoint(), *frontend_)
          .value();

  setup_gpu(ctrl_loc);
  (void)gpu_init;

  // GPU session + per-slot buffers and pre-derived kernel Requests ("a small pool of
  // pre-allocated GPU memory buffers").
  session_ = sys->await_ok(GpuClient::init(*frontend_, gpu_init));
  const CapId kernel_ep = sys->await_ok(GpuClient::load(*frontend_, session_, "face_verify"));

  const uint64_t result_bytes = params_.images_per_batch;
  slots_.resize(params_.pool_slots);
  for (size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = slots_[s];
    auto probe = sys->await_ok(GpuClient::alloc(*frontend_, session_, batch_bytes));
    auto db = sys->await_ok(GpuClient::alloc(*frontend_, session_, batch_bytes));
    auto res = sys->await_ok(GpuClient::alloc(*frontend_, session_, 4096));
    slot.gpu_probe_addr = probe.device_addr;
    slot.gpu_db_addr = db.device_addr;
    slot.gpu_result_addr = res.device_addr;
    slot.gpu_probe_mem = probe.mem;
    slot.gpu_db_mem = db.mem;

    slot.probe_addr = frontend_->alloc(batch_bytes);
    slot.probe_mem =
        sys->await_ok(frontend_->memory_create(slot.probe_addr, batch_bytes, Perms::kRead));
    slot.result_addr = frontend_->alloc(4096);
    slot.result_mem =
        sys->await_ok(frontend_->memory_create(slot.result_addr, 4096, Perms::kReadWrite));

    slot.respond_ep = sys->await_ok(frontend_->serve({}, [this, s](Process::Received) {
      finish_slot(s, ok_status());
    }));
    slot.error_ep = sys->await_ok(frontend_->serve({}, [this, s](Process::Received r) {
      finish_slot(s, Status(static_cast<ErrorCode>(
                        r.imm_u64(0).value_or(static_cast<uint64_t>(ErrorCode::kInternal)))));
    }));

    // The pre-derived kernel Request: args baked in, result copy-back pair + success/error
    // continuations attached. The storage adaptor will invoke it verbatim (step b of Fig. 2).
    Process::Args kargs = GpuClient::pack_args({slot.gpu_probe_addr, slot.gpu_db_addr,
                                                slot.gpu_result_addr, params_.images_per_batch,
                                                params_.image_bytes});
    kargs.cap(res.mem).cap(slot.result_mem).cap(slot.respond_ep).cap(slot.error_ep);
    slot.kernel_req = sys->await_ok(frontend_->request_derive(kernel_ep, std::move(kargs)));
  }
}

void FaceVerifyFractos::setup_gpu(Loc ctrl_loc) { (void)ctrl_loc; }

void FaceVerifyFractos::ingest_database() {
  const uint64_t batch_bytes = params_.image_bytes * params_.images_per_batch;
  const uint64_t stage_addr = frontend_->alloc(batch_bytes);
  const CapId stage =
      sys_->await_ok(frontend_->memory_create(stage_addr, batch_bytes, Perms::kReadWrite));
  for (uint32_t b = 0; b < params_.num_batches; ++b) {
    const std::string name = "batch_" + std::to_string(b);
    FRACTOS_CHECK(sys_->await(FsClient::create(*frontend_, fs_create_, name, batch_bytes)).ok());
    frontend_->write_mem(stage_addr, probe_for(b));
    auto f = sys_->await_ok(FsClient::open(*frontend_, fs_open_, name, true, false));
    FRACTOS_CHECK(sys_->await(FsClient::write(*frontend_, f, 0, batch_bytes, stage)).ok());
    FRACTOS_CHECK(sys_->await(FsClient::close(*frontend_, f)).ok());
  }
}

FaceVerifyFractos::~FaceVerifyFractos() {
  slot_pool_.close();
  for (size_t i = 0; i < slots_.size(); ++i) {
    finish_slot(i, Status(ErrorCode::kAborted));
  }
}

const std::vector<uint8_t>& FaceVerifyFractos::probe_for(uint32_t batch) {
  if (probe_cache_.size() <= batch) {
    probe_cache_.resize(batch + 1);
  }
  if (probe_cache_[batch].empty()) {
    probe_cache_[batch] = face_batch(batch, params_.images_per_batch, params_.image_bytes);
  }
  return probe_cache_[batch];
}

void FaceVerifyFractos::finish_slot(size_t i, Status st) {
  Slot& sl = slots_[i];
  if (!sl.completion.has_value()) {
    return;
  }
  Promise<Status> done = std::move(*sl.completion);
  sl.completion.reset();
  done.set(st);
}

Future<Result<bool>> FaceVerifyFractos::verify(uint32_t batch, bool tamper) {
  if (MetricsRegistry* m = sys_->loop().metrics()) {
    static const NameId kRequests = intern_name("facever.requests");
    m->add(kRequests);
  }
  uint64_t span = 0;
  if (span_tracing_active()) {
    if (SpanTracer* t = sys_->loop().span_tracer()) {
      static const NameId kFacever = intern_name("facever");
      static const NameId kVerify = intern_name("verify");
      span = t->begin(kFacever, SpanKind::kService, kVerify, sys_->loop().now());
    }
  }
  Promise<Result<bool>> promise;
  slot_pool_.acquire()
      .and_then(
          [this, batch, tamper, promise](size_t slot) { run_on_slot(slot, batch, tamper, promise); })
      .or_else([promise](ErrorCode e) { promise.set(e); });
  if (span == 0) {
    return promise.future();
  }
  return promise.future().then([this, span](Result<bool>&& r) -> Result<bool> {
    if (SpanTracer* t = sys_->loop().span_tracer()) {
      if (r.ok()) {
        t->end(span, sys_->loop().now());
      } else {
        t->end_error(span, sys_->loop().now(), "verify-failed");
      }
    }
    return std::move(r);
  });
}

void FaceVerifyFractos::run_on_slot(size_t s, uint32_t batch, bool tamper,
                                    Promise<Result<bool>> promise) {
  Slot& slot = slots_[s];
  const uint64_t batch_bytes = params_.image_bytes * params_.images_per_batch;

  // The probe (the client-supplied photos) is the cached batch; a tampered probe must NOT
  // verify, so that (rare, test-only) path takes a private corrupted copy. Slots are reused
  // round-robin, so the pristine probe for this batch is often already staged — skip the
  // redundant 512 KiB write_mem in that case.
  if (tamper) {
    std::vector<uint8_t> probe = probe_for(batch);
    probe[params_.image_bytes / 2] ^= 0xff;
    frontend_->write_mem(slot.probe_addr, probe);
    slot.staged_batch = -1;
  } else if (slot.staged_batch != static_cast<int64_t>(batch)) {
    frontend_->write_mem(slot.probe_addr, probe_for(batch));
    slot.staged_batch = static_cast<int64_t>(batch);
  }

  // Completion: the GPU adaptor copied the verdict bytes into our result buffer and invoked
  // the respond Request.
  Promise<Status> completion;
  completion.future().on_ready([this, s, tamper, promise](Status st) {
    Slot& sl = slots_[s];
    if (!st.ok()) {
      slot_pool_.release(s);
      promise.set(st.error());
      return;
    }
    const auto verdicts = frontend_->read_mem(sl.result_addr, params_.images_per_batch);
    bool all = true;
    for (uint32_t i = 0; i < params_.images_per_batch; ++i) {
      const bool expected = !(tamper && i == 0);
      if ((verdicts[i] == 1) != expected) {
        all = false;
      }
    }
    slot_pool_.release(s);
    promise.set(all);
  });
  slot.completion = std::move(completion);

  // Probe upload and file open proceed in parallel; the storage read is invoked when both
  // are done. From there the execution is fully decentralized: storage -> GPU -> frontend.
  struct Join {
    int remaining = 2;
    Status failure = ok_status();
    Result<FsClient::OpenFile> open_result = ErrorCode::kInternal;
  };
  auto join = std::make_shared<Join>();
  auto maybe_go = [this, s, join, batch_bytes]() {
    if (--join->remaining > 0) {
      return;
    }
    Slot& sl = slots_[s];
    if (!join->failure.ok() || !join->open_result.ok()) {
      finish_slot(s, join->failure.ok() ? Status(join->open_result.error()) : join->failure);
      return;
    }
    const auto& f = join->open_result.value();
    if (f.read_eps.empty()) {
      finish_slot(s, Status(ErrorCode::kInternal));
      return;
    }
    // Step a of Fig. 2: invoke the storage read with the GPU buffer as destination and the
    // (pre-derived) kernel Request as continuation.
    frontend_
        ->request_invoke(f.read_eps[0], Process::Args{}
                                            .imm_u64(0, 0)
                                            .imm_u64(8, batch_bytes)
                                            .cap(sl.gpu_db_mem)
                                            .cap(sl.kernel_req))
        .on_ready([this, s](Status st) {
          if (!st.ok()) {
            finish_slot(s, st);
          }
        });
  };

  frontend_->memory_copy(slot.probe_mem, slot.gpu_probe_mem, batch_bytes)
      .on_ready([join, maybe_go](Status st) {
        if (!st.ok()) {
          join->failure = st;
        }
        maybe_go();
      });
  FsClient::open(*frontend_, fs_open_, "batch_" + std::to_string(batch), false, /*dax=*/true)
      .on_ready([join, maybe_go](Result<FsClient::OpenFile>&& f) {
        join->open_result = std::move(f);
        maybe_go();
      });
}

// --- Baseline deployment ----------------------------------------------------------------------

FaceVerifyBaseline::FaceVerifyBaseline(System* sys, FaceVerifyCluster* cluster,
                                       FaceVerifyParams params)
    : sys_(sys), cluster_(cluster), params_(params), slot_pool_(params.pool_slots) {
  slot_pool_.instrument(&sys->loop(), "facever_baseline");
  nvmeof_target_ =
      std::make_unique<NvmeofTarget>(&sys->net(), cluster->storage_node, cluster->nvme.get());
  nvmeof_ =
      std::make_unique<NvmeofInitiator>(&sys->net(), cluster->fs_node, nvmeof_target_.get());
  PageCache::Params cp;
  cp.capacity_pages = params_.baseline_cache_pages;
  cache_ = std::make_unique<PageCache>(&sys->loop(), nvmeof_.get(), cp);
  nfs_server_ = std::make_unique<NfsServer>(&sys->net(), cluster->fs_node, cache_.get());
  nfs_ = std::make_unique<NfsClient>(&sys->net(), cluster->frontend_node, nfs_server_.get());
  rcuda_daemon_ = std::make_unique<RcudaDaemon>(&sys->net(), cluster->gpu.get());
  rcuda_daemon_->register_kernel("face_verify",
                                 make_face_verify_kernel(params_.per_image_compute));
  rcuda_ =
      std::make_unique<RcudaClient>(&sys->net(), cluster->frontend_node, rcuda_daemon_.get());

  kernel_fn_ = sys->await_ok(rcuda_->cu_module_get_function("face_verify"));
  const uint64_t batch_bytes = params_.image_bytes * params_.images_per_batch;
  slots_.resize(params_.pool_slots);
  for (auto& slot : slots_) {
    slot.gpu_probe_addr = sys->await_ok(rcuda_->cu_mem_alloc(batch_bytes));
    slot.gpu_db_addr = sys->await_ok(rcuda_->cu_mem_alloc(batch_bytes));
    slot.gpu_result_addr = sys->await_ok(rcuda_->cu_mem_alloc(4096));
  }
}

void FaceVerifyBaseline::ingest_database() {
  const uint64_t batch_bytes = params_.image_bytes * params_.images_per_batch;
  for (uint32_t b = 0; b < params_.num_batches; ++b) {
    const std::string name = "batch_" + std::to_string(b);
    FRACTOS_CHECK(nfs_server_->create_file(name, batch_bytes).ok());
    auto f = sys_->await_ok(nfs_->open(name));
    FRACTOS_CHECK(sys_->await(nfs_->write(f, 0, probe_for(b))).ok());
  }
}

const std::vector<uint8_t>& FaceVerifyBaseline::probe_for(uint32_t batch) {
  if (probe_cache_.size() <= batch) {
    probe_cache_.resize(batch + 1);
  }
  if (probe_cache_[batch].empty()) {
    probe_cache_[batch] = face_batch(batch, params_.images_per_batch, params_.image_bytes);
  }
  return probe_cache_[batch];
}

Future<Result<bool>> FaceVerifyBaseline::verify(uint32_t batch, bool tamper) {
  Promise<Result<bool>> promise;
  slot_pool_.acquire()
      .and_then(
          [this, batch, tamper, promise](size_t slot) { run_on_slot(slot, batch, tamper, promise); })
      .or_else([promise](ErrorCode e) { promise.set(e); });
  return promise.future();
}

void FaceVerifyBaseline::run_on_slot(size_t s, uint32_t batch, bool tamper,
                                     Promise<Result<bool>> promise) {
  const Slot& slot = slots_[s];
  const uint64_t batch_bytes = params_.image_bytes * params_.images_per_batch;
  const uint32_t n = params_.images_per_batch;

  auto fail = [this, s, promise](ErrorCode e) {
    slot_pool_.release(s);
    promise.set(e);
  };

  // One copy of the cached batch — cu_memcpy_htod consumes the probe by value.
  std::vector<uint8_t> probe = probe_for(batch);
  if (tamper) {
    probe[params_.image_bytes / 2] ^= 0xff;
  }

  // The centralized star: every step returns to the frontend before the next one starts.
  nfs_->open("batch_" + std::to_string(batch))
      .on_ready([this, s, slot, batch_bytes, n, tamper, probe = std::move(probe), promise,
                 fail](Result<NfsClient::FileHandle>&& f) mutable {
        if (!f.ok()) {
          fail(f.error());
          return;
        }
        nfs_->read(f.value(), 0, batch_bytes)
            .on_ready([this, s, slot, n, tamper, probe = std::move(probe), promise,
                       fail](Result<std::vector<uint8_t>>&& data) mutable {
              if (!data.ok()) {
                fail(data.error());
                return;
              }
              rcuda_->cu_memcpy_htod(slot.gpu_db_addr, std::move(data).value())
                  .on_ready([this, s, slot, n, tamper, probe = std::move(probe), promise,
                             fail](Status st) mutable {
                    if (!st.ok()) {
                      fail(st.error());
                      return;
                    }
                    rcuda_->cu_memcpy_htod(slot.gpu_probe_addr, std::move(probe))
                        .on_ready([this, s, slot, n, tamper, promise, fail](Status st2) {
                          if (!st2.ok()) {
                            fail(st2.error());
                            return;
                          }
                          rcuda_
                              ->cu_launch_kernel(kernel_fn_,
                                                 {slot.gpu_probe_addr, slot.gpu_db_addr,
                                                  slot.gpu_result_addr, n,
                                                  params_.image_bytes})
                              .on_ready([this, s, slot, n, tamper, promise, fail](Status st3) {
                                if (!st3.ok()) {
                                  fail(st3.error());
                                  return;
                                }
                                rcuda_->cu_ctx_synchronize().on_ready([this, s, slot, n, tamper,
                                                                       promise,
                                                                       fail](Status st4) {
                                  if (!st4.ok()) {
                                    fail(st4.error());
                                    return;
                                  }
                                  rcuda_->cu_memcpy_dtoh(slot.gpu_result_addr, n)
                                      .on_ready([this, s, n, tamper, promise,
                                                 fail](Result<std::vector<uint8_t>>&& v) {
                                        if (!v.ok()) {
                                          fail(v.error());
                                          return;
                                        }
                                        bool all = true;
                                        for (uint32_t i = 0; i < n; ++i) {
                                          const bool expected = !(tamper && i == 0);
                                          if ((v.value()[i] == 1) != expected) {
                                            all = false;
                                          }
                                        }
                                        slot_pool_.release(s);
                                        promise.set(all);
                                      });
                                });
                              });
                        });
                  });
            });
      });
}

}  // namespace fractos
