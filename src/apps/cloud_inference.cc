#include "src/apps/cloud_inference.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"
#include "src/sim/rng.h"

namespace fractos {

SimGpu::Kernel make_inference_kernel(Duration compute) {
  // args = {in_addr, out_addr, n_bytes}: out[i] = in[i] XOR 0x5A (content-verifiable).
  return [compute](PoolBytes& mem, const std::vector<uint64_t>& args) {
    FRACTOS_CHECK(args.size() >= 3);
    const uint64_t in = args[0];
    const uint64_t out = args[1];
    const uint64_t n = args[2];
    for (uint64_t i = 0; i < n; ++i) {
      mem[out + i] = static_cast<uint8_t>(mem[in + i] ^ 0x5A);
    }
    return compute;
  };
}

CloudInference::CloudInference(System* sys, Loc ctrl_loc, CloudInferenceParams params)
    : sys_(sys), params_(params), slot_pool_(params.pool_slots) {
  frontend_node_ = sys->add_node("frontend");
  fs_node_ = sys->add_node("fs");
  in_node_ = sys->add_node("input-storage");
  out_node_ = sys->add_node("output-storage");
  gpu_node_ = sys->add_node("gpu");
  Controller& c_front = sys->add_controller(frontend_node_, ctrl_loc);
  Controller& c_fs = sys->add_controller(fs_node_, ctrl_loc);
  Controller& c_in = sys->add_controller(in_node_, ctrl_loc);
  Controller& c_out = sys->add_controller(out_node_, ctrl_loc);
  Controller& c_gpu = sys->add_controller(gpu_node_, ctrl_loc);

  in_nvme_ = std::make_unique<SimNvme>(&sys->loop());
  out_nvme_ = std::make_unique<SimNvme>(&sys->loop());
  BlockAdaptor::Params bp;
  bp.slot_bytes = std::max<uint64_t>(2 << 20, params_.request_bytes);
  in_block_ = std::make_unique<BlockAdaptor>(sys, in_node_, c_in, in_nvme_.get(), bp);
  out_block_ = std::make_unique<BlockAdaptor>(sys, out_node_, c_out, out_nvme_.get(), bp);
  FsService::Params fp;
  fp.extent_bytes = std::max<uint64_t>(4 << 20, params_.request_bytes * params_.pool_slots);
  fp.slot_bytes = bp.slot_bytes;
  in_fs_ = FsService::bootstrap(sys, fs_node_, c_fs, in_block_->process(),
                                in_block_->mgmt_endpoint(), fp);
  out_fs_ = FsService::bootstrap(sys, fs_node_, c_fs, out_block_->process(),
                                 out_block_->mgmt_endpoint(), fp);
  gpu_ = std::make_unique<SimGpu>(&sys->net(), gpu_node_);
  gpu_adaptor_ = std::make_unique<GpuAdaptor>(sys, c_gpu, gpu_.get());
  gpu_adaptor_->register_kernel("inference", make_inference_kernel(params_.compute));

  const uint64_t heap =
      params_.pool_slots * (params_.request_bytes + 8192) + params_.request_bytes + (2 << 20);
  frontend_ = &sys->spawn("frontend", frontend_node_, c_front, heap);
  in_create_ = sys->bootstrap_grant(in_fs_->process(), in_fs_->create_endpoint(), *frontend_)
                   .value();
  in_open_ =
      sys->bootstrap_grant(in_fs_->process(), in_fs_->open_endpoint(), *frontend_).value();
  out_create_ = sys->bootstrap_grant(out_fs_->process(), out_fs_->create_endpoint(), *frontend_)
                    .value();
  out_open_ =
      sys->bootstrap_grant(out_fs_->process(), out_fs_->open_endpoint(), *frontend_).value();
  const CapId gpu_init =
      sys->bootstrap_grant(gpu_adaptor_->process(), gpu_adaptor_->init_endpoint(), *frontend_)
          .value();
  session_ = sys->await_ok(GpuClient::init(*frontend_, gpu_init));
  kernel_ep_ = sys->await_ok(GpuClient::load(*frontend_, session_, "inference"));
}

std::vector<uint8_t> CloudInference::input_content(uint32_t input_id) const {
  Rng rng(0xabcd0000ull + input_id);
  std::vector<uint8_t> v(params_.request_bytes);
  for (auto& b : v) {
    b = rng.next_byte();
  }
  return v;
}

void CloudInference::ingest() {
  const uint64_t rb = params_.request_bytes;
  // Input files.
  const uint64_t stage_addr = frontend_->alloc(rb);
  const CapId stage =
      sys_->await_ok(frontend_->memory_create(stage_addr, rb, Perms::kReadWrite));
  for (uint32_t i = 0; i < params_.num_inputs; ++i) {
    const std::string name = "in_" + std::to_string(i);
    FRACTOS_CHECK(sys_->await(FsClient::create(*frontend_, in_create_, name, rb)).ok());
    frontend_->write_mem(stage_addr, input_content(i));
    auto f = sys_->await_ok(FsClient::open(*frontend_, in_open_, name, true, false));
    FRACTOS_CHECK(sys_->await(FsClient::write(*frontend_, f, 0, rb, stage)).ok());
    FRACTOS_CHECK(sys_->await(FsClient::close(*frontend_, f)).ok());
    // Steady-state handle: DAX read-only, opened once (the paper's "two for open" amortizes).
    input_files_.push_back(
        sys_->await_ok(FsClient::open(*frontend_, in_open_, name, false, true)));
  }
  // Output file: one region per slot.
  FRACTOS_CHECK(sys_->await(FsClient::create(*frontend_, out_create_, "out",
                                             rb * params_.pool_slots))
                    .ok());
  output_file_ = sys_->await_ok(FsClient::open(*frontend_, out_open_, "out", true, true));
  FRACTOS_CHECK(output_file_.write_eps.size() == 1);  // single extent by construction
  output_file_fsmode_ =
      sys_->await_ok(FsClient::open(*frontend_, out_open_, "out", true, false));

  // Per-slot GPU buffers and the pre-derived continuation chain:
  //   kernel Request -> output-write Request -> respond Request.
  slots_.resize(params_.pool_slots);
  for (size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = slots_[s];
    slot.out_off = s * rb;
    auto in_buf = sys_->await_ok(GpuClient::alloc(*frontend_, session_, rb));
    auto out_buf = sys_->await_ok(GpuClient::alloc(*frontend_, session_, rb));
    slot.gpu_in_addr = in_buf.device_addr;
    slot.gpu_out_addr = out_buf.device_addr;
    slot.gpu_in_mem = in_buf.mem;
    slot.gpu_out_mem = out_buf.mem;
    slot.host_addr = frontend_->alloc(rb);
    slot.host_mem =
        sys_->await_ok(frontend_->memory_create(slot.host_addr, rb, Perms::kReadWrite));

    slot.respond_ep = sys_->await_ok(frontend_->serve({}, [this, s](Process::Received) {
      finish_slot(s, ok_status());
    }));
    slot.error_ep = sys_->await_ok(frontend_->serve({}, [this, s](Process::Received r) {
      finish_slot(s, Status(static_cast<ErrorCode>(
                        r.imm_u64(0).value_or(static_cast<uint64_t>(ErrorCode::kInternal)))));
    }));

    // Step d of Fig. 2: the output-write Request. Hidden service composition — the write
    // child came from the FS, reads from GPU memory, and continues into the application.
    const CapId write_req = sys_->await_ok(frontend_->request_derive(
        output_file_.write_eps[0], Process::Args{}
                                       .imm_u64(0, slot.out_off)
                                       .imm_u64(8, rb)
                                       .cap(slot.gpu_out_mem)
                                       .cap(slot.respond_ep)
                                       .cap(slot.error_ep)));
    // Step b/c: the kernel Request whose success continuation IS the output write.
    Process::Args kargs =
        GpuClient::pack_args({slot.gpu_in_addr, slot.gpu_out_addr, rb});
    kargs.cap(write_req).cap(slot.error_ep);
    slot.kernel_req = sys_->await_ok(frontend_->request_derive(kernel_ep_, std::move(kargs)));
  }
}

CloudInference::~CloudInference() {
  slot_pool_.close();
  for (size_t i = 0; i < slots_.size(); ++i) {
    finish_slot(i, Status(ErrorCode::kAborted));
  }
}

void CloudInference::finish_slot(size_t i, Status st) {
  Slot& sl = slots_[i];
  if (!sl.completion.has_value()) {
    return;
  }
  Promise<Status> done = std::move(*sl.completion);
  sl.completion.reset();
  done.set(st);
}

void CloudInference::verify_output(size_t s, uint32_t input_id, Promise<Result<bool>> promise) {
  Slot& slot = slots_[s];
  const uint64_t rb = params_.request_bytes;
  frontend_->write_mem(slot.host_addr, std::vector<uint8_t>(rb, 0));
  FsClient::read(*frontend_, output_file_fsmode_, slot.out_off, rb, slot.host_mem)
      .on_ready([this, s, input_id, promise](Status rs) {
        Slot& sl = slots_[s];
        if (!rs.ok()) {
          slot_pool_.release(s);
          promise.set(rs.error());
          return;
        }
        const auto got = frontend_->read_mem(sl.host_addr, params_.request_bytes);
        auto expected = input_content(input_id);
        for (auto& b : expected) {
          b = static_cast<uint8_t>(b ^ 0x5A);
        }
        slot_pool_.release(s);
        promise.set(got == expected);
      });
}

Future<Result<bool>> CloudInference::infer_distributed(uint32_t input_id) {
  Promise<Result<bool>> promise;
  FRACTOS_CHECK(input_id < input_files_.size());
  slot_pool_.acquire().and_then([this, input_id, promise](size_t s) {
    Slot& slot = slots_[s];
    Promise<Status> completion;
    completion.future().on_ready([this, s, input_id, promise](Status st) {
      if (!st.ok()) {
        slot_pool_.release(s);
        promise.set(st.error());
        return;
      }
      verify_output(s, input_id, promise);
    });
    slot.completion = std::move(completion);
    // Step a of Fig. 2: one message to the input SSD; everything after runs without us.
    frontend_
        ->request_invoke(input_files_[input_id].read_eps[0],
                         Process::Args{}
                             .imm_u64(0, 0)
                             .imm_u64(8, params_.request_bytes)
                             .cap(slot.gpu_in_mem)
                             .cap(slot.kernel_req))
        .on_ready([this, s](Status st) {
          if (!st.ok()) {
            finish_slot(s, st);
          }
        });
  }).or_else([promise](ErrorCode e) { promise.set(e); });
  return promise.future();
}

Future<Result<bool>> CloudInference::infer_centralized(uint32_t input_id) {
  Promise<Result<bool>> promise;
  FRACTOS_CHECK(input_id < input_files_.size());
  const uint64_t rb = params_.request_bytes;
  slot_pool_.acquire().and_then([this, input_id, rb, promise](size_t s) {
    Slot& slot = slots_[s];
    auto fail = [this, s, promise](ErrorCode e) {
      slot_pool_.release(s);
      promise.set(e);
    };
    // 1: input SSD -> app memory (the app mediates everything from here on).
    FsClient::read(*frontend_, input_files_[input_id], 0, rb, slot.host_mem)
        .on_ready([this, s, input_id, rb, promise, fail](Status s1) {
          if (!s1.ok()) {
            fail(s1.error());
            return;
          }
          Slot& sl = slots_[s];
          // 2: app -> GPU input buffer.
          frontend_->memory_copy(sl.host_mem, sl.gpu_in_mem, rb)
              .on_ready([this, s, input_id, rb, promise, fail](Status s2) {
                if (!s2.ok()) {
                  fail(s2.error());
                  return;
                }
                Slot& sl2 = slots_[s];
                // 3: kernel, with the result copied BACK to the app (GPU -> app).
                GpuClient::run(*frontend_, kernel_ep_,
                               {sl2.gpu_in_addr, sl2.gpu_out_addr, rb}, sl2.gpu_out_mem,
                               sl2.host_mem)
                    .on_ready([this, s, input_id, rb, promise, fail](Status s3) {
                      if (!s3.ok()) {
                        fail(s3.error());
                        return;
                      }
                      Slot& sl3 = slots_[s];
                      // 4+5: app -> FS -> output SSD.
                      FsClient::write(*frontend_, output_file_fsmode_, sl3.out_off, rb,
                                      sl3.host_mem)
                          .on_ready([this, s, input_id, promise, fail](Status s4) {
                            if (!s4.ok()) {
                              fail(s4.error());
                              return;
                            }
                            verify_output(s, input_id, promise);
                          });
                    });
              });
        });
  }).or_else([promise](ErrorCode e) { promise.set(e); });
  return promise.future();
}

}  // namespace fractos
