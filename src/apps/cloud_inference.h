// The COMPLETE Fig. 2 cloud-inference scenario, including the output path.
//
// "For each client request, the service reads its input from storage, processes it on a
// GPU-based inference engine, and writes the output to a file on a file server. [...] the FS
// service also uses remote SSDs."
//
// Distributed (ring, the green path):
//   frontend --(a: read request; dst = GPU input, cont = kernel Request)--> input SSD
//   input SSD --(b: kernel Request, verbatim)--> GPU
//   GPU --(d: output-write Request, verbatim; src = GPU output memory)--> output SSD
//   output SSD --(e: respond Request, verbatim)--> frontend
// The output-write Request is a DAX child the FS handed out — the dynamic composition of
// Section 3.4: the output SSD is invisible to the application, yet ends up reading from GPU
// memory and invoking the application's continuation directly.
//
// Centralized (star, the red path): the same FractOS primitives driven the conventional way —
// every transfer goes through the frontend (read to app, copy to GPU, result back to app,
// write from app). Fig. 2's analysis: the star needs 5 data transfers and ~1.6x the messages
// of the ring's 2.
//
// The kernel is verifiable: out[i] = in[i] XOR 0x5A; after a request the output file on the
// output SSD must contain exactly the transformed input.

#ifndef SRC_APPS_CLOUD_INFERENCE_H_
#define SRC_APPS_CLOUD_INFERENCE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/futures/slot_pool.h"
#include "src/services/fs.h"
#include "src/services/gpu_adaptor.h"

namespace fractos {

struct CloudInferenceParams {
  uint64_t request_bytes = 256 << 10;  // input (and output) payload per request
  uint32_t num_inputs = 4;             // input files ("the photos database")
  uint32_t pool_slots = 2;             // pre-allocated GPU buffer slots
  Duration compute = Duration::micros(400);  // inference time per request
};

SimGpu::Kernel make_inference_kernel(Duration compute);

class CloudInference {
 public:
  // Builds the full 5-node cluster (frontend / fs / input-storage / output-storage / gpu)
  // with one Controller per node at `ctrl_loc`, both storage tiers behind the FS service.
  CloudInference(System* sys, Loc ctrl_loc, CloudInferenceParams params);

  // Creates and fills the input files, and the per-slot output regions.
  void ingest();

  // One request through the DISTRIBUTED ring. Resolves true iff the output file holds the
  // correctly transformed input afterwards (verified by reading it back out of band).
  Future<Result<bool>> infer_distributed(uint32_t input_id);

  // The same work through the CENTRALIZED star (frontend mediates every transfer).
  Future<Result<bool>> infer_centralized(uint32_t input_id);

  Process& frontend() { return *frontend_; }
  uint32_t gpu_node() const { return gpu_node_; }
  // Fails in-flight requests and queued slot acquires with kAborted.
  ~CloudInference();

 private:
  struct Slot {
    uint64_t gpu_in_addr = 0;
    uint64_t gpu_out_addr = 0;
    CapId gpu_in_mem = kInvalidCap;
    CapId gpu_out_mem = kInvalidCap;
    CapId kernel_req = kInvalidCap;   // pre-derived: kernel -> output write -> respond
    CapId respond_ep = kInvalidCap;
    CapId error_ep = kInvalidCap;
    uint64_t out_off = 0;             // this slot's region in the output file
    std::optional<Promise<Status>> completion;
    // Centralized mode staging in frontend memory.
    uint64_t host_addr = 0;
    CapId host_mem = kInvalidCap;
  };

  // Completes the slot's pending promise (if any) with `st`.
  void finish_slot(size_t i, Status st);
  // Reads the output region back (FS mode) and compares against the transformed input.
  void verify_output(size_t slot, uint32_t input_id, Promise<Result<bool>> promise);
  std::vector<uint8_t> input_content(uint32_t input_id) const;

  System* sys_;
  CloudInferenceParams params_;
  uint32_t frontend_node_ = 0, fs_node_ = 0, in_node_ = 0, out_node_ = 0, gpu_node_ = 0;
  std::unique_ptr<SimNvme> in_nvme_;
  std::unique_ptr<SimNvme> out_nvme_;
  std::unique_ptr<SimGpu> gpu_;
  std::unique_ptr<BlockAdaptor> in_block_;
  std::unique_ptr<BlockAdaptor> out_block_;
  std::unique_ptr<FsService> in_fs_;
  std::unique_ptr<FsService> out_fs_;
  std::unique_ptr<GpuAdaptor> gpu_adaptor_;
  Process* frontend_ = nullptr;
  CapId in_create_ = kInvalidCap, in_open_ = kInvalidCap;
  CapId out_create_ = kInvalidCap, out_open_ = kInvalidCap;
  GpuClient::Session session_;
  CapId kernel_ep_ = kInvalidCap;
  SlotPool slot_pool_;
  std::vector<Slot> slots_;
  // Cached DAX opens (steady state: open once, reuse).
  std::vector<FsClient::OpenFile> input_files_;
  FsClient::OpenFile output_file_;
  FsClient::OpenFile output_file_fsmode_;  // FS-mode handle for verification reads
};

}  // namespace fractos

#endif  // SRC_APPS_CLOUD_INFERENCE_H_
