// The end-to-end face-verification application (Section 5, evaluated in Section 6.5).
//
// "The application is a face-verification service used to verify the identity of a person by
// matching the photo and the ID in the input with the photo corresponding to that ID from a
// secure database. [...] The application creates and builds a pipeline of Requests to
// (1) open and read the corresponding files from storage into the GPU (it uses a small pool
// of pre-allocated GPU memory buffers), (2) execute the face-verification GPU kernel,
// (3) copy the results from the GPU into the application memory, and (4) send a response."
//
// Two deployments over a 4-node cluster (frontend / fs / storage / gpu):
//   * FaceVerifyFractos — FS (DAX) + block adaptor + GPU adaptor, the request graph chained:
//     frontend -> storage read (dst = GPU buffer, continuation = kernel Request) ->
//     GPU kernel -> result copy-back -> respond. Database bytes cross the network ONCE.
//   * FaceVerifyBaseline — NFS frontend + ext4-over-NVMe-oF + rCUDA, the Section 6.5
//     baseline: database bytes cross the network three times (NVMe-oF, NFS, rCUDA).
//
// The kernel really compares probe vs database images byte-for-byte, so every run is
// content-verified: verify() resolves true only if all images matched.

#ifndef SRC_APPS_FACE_VERIFY_H_
#define SRC_APPS_FACE_VERIFY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/futures/slot_pool.h"

#include "src/baselines/nfs.h"
#include "src/baselines/nvmeof.h"
#include "src/baselines/page_cache.h"
#include "src/baselines/rcuda.h"
#include "src/services/fs.h"
#include "src/services/gpu_adaptor.h"

namespace fractos {

struct FaceVerifyParams {
  uint64_t image_bytes = 64 << 10;
  uint32_t images_per_batch = 8;
  uint32_t num_batches = 16;  // database size = num_batches batch files
  uint32_t pool_slots = 4;    // pre-allocated GPU buffer slots (paper: "a small pool")
  Duration per_image_compute = Duration::micros(120);
  // Page-cache pages on the baseline's FS node. The paper's database is a "secure database"
  // far larger than RAM, so per-request reads are cold; a bounded cache models that.
  uint64_t baseline_cache_pages = 64;
};

// Deterministic synthetic database image (the "secure database" content).
std::vector<uint8_t> face_image(uint32_t batch, uint32_t index, uint64_t image_bytes);

// A whole batch (images_per_batch images concatenated). Generation is pure wall-clock
// overhead — both deployments cache these per batch instead of regenerating 512 KiB of
// pseudo-random bytes on every request.
std::vector<uint8_t> face_batch(uint32_t batch, uint32_t images_per_batch,
                                uint64_t image_bytes);

// The face-verification kernel: args = {probe_addr, db_addr, result_addr, n, image_bytes};
// result[i] = 1 if probe image i matches database image i.
SimGpu::Kernel make_face_verify_kernel(Duration per_image_compute);

// Common cluster for both deployments.
struct FaceVerifyCluster {
  uint32_t frontend_node = 0;
  uint32_t fs_node = 0;
  uint32_t storage_node = 0;
  uint32_t gpu_node = 0;
  std::unique_ptr<SimNvme> nvme;
  std::unique_ptr<SimGpu> gpu;

  static FaceVerifyCluster build(System* sys);
};

class FaceVerifyFractos {
 public:
  // `ctrl_loc` places the per-node Controllers on host CPUs or SmartNICs (Fig. 12/13 compare
  // both); pass a `shared_controller` to use one Controller for everything ("Shared HAL").
  FaceVerifyFractos(System* sys, FaceVerifyCluster* cluster, Loc ctrl_loc,
                    FaceVerifyParams params, Controller* shared_controller = nullptr);

  // Creates and fills the database files ("batch_<i>", one per request batch).
  void ingest_database();

  // One client request. Resolves true iff the GPU's verdicts are exactly as expected: every
  // probe image matches its database image — except that with `tamper` set, probe image 0 is
  // corrupted and must be reported as a mismatch. (False means the system returned wrong
  // verdicts; errors surface as error codes.)
  Future<Result<bool>> verify(uint32_t batch, bool tamper = false);
  // Fails in-flight requests and queued slot acquires with kAborted.
  ~FaceVerifyFractos();

  Process& frontend() { return *frontend_; }

 private:
  struct Slot {
    uint64_t gpu_probe_addr = 0;
    uint64_t gpu_db_addr = 0;
    uint64_t gpu_result_addr = 0;
    CapId gpu_probe_mem = kInvalidCap;   // frontend-held caps
    CapId gpu_db_mem = kInvalidCap;
    CapId kernel_req = kInvalidCap;      // pre-derived kernel Request for this slot
    CapId respond_ep = kInvalidCap;      // per-slot respond endpoint
    CapId error_ep = kInvalidCap;
    uint64_t result_addr = 0;            // frontend result landing buffer
    CapId result_mem = kInvalidCap;
    uint64_t probe_addr = 0;             // frontend probe staging
    CapId probe_mem = kInvalidCap;
    // Which batch's pristine probe currently sits at probe_addr (-1 = none/corrupted).
    // Staging is a host-side write_mem with no simulated cost, so skipping a redundant
    // re-stage of the same bytes changes nothing simulated — only wall-clock memcpy.
    int64_t staged_batch = -1;
    std::optional<Promise<Status>> completion;
  };

  void setup_gpu(Loc ctrl_loc);
  // Completes the slot's pending promise (if any) with `st`.
  void finish_slot(size_t i, Status st);
  void run_on_slot(size_t slot, uint32_t batch, bool tamper, Promise<Result<bool>> promise);
  const std::vector<uint8_t>& probe_for(uint32_t batch);

  System* sys_;
  FaceVerifyCluster* cluster_;
  FaceVerifyParams params_;
  std::unique_ptr<BlockAdaptor> block_;
  std::unique_ptr<FsService> fs_;
  std::unique_ptr<GpuAdaptor> gpu_adaptor_;
  Process* frontend_ = nullptr;
  CapId fs_create_ = kInvalidCap;
  CapId fs_open_ = kInvalidCap;
  GpuClient::Session session_;
  SlotPool slot_pool_;
  std::vector<Slot> slots_;
  std::vector<std::vector<uint8_t>> probe_cache_;  // lazily filled, keyed by batch
};

class FaceVerifyBaseline {
 public:
  FaceVerifyBaseline(System* sys, FaceVerifyCluster* cluster, FaceVerifyParams params);

  void ingest_database();
  Future<Result<bool>> verify(uint32_t batch, bool tamper = false);

 private:
  struct Slot {
    uint64_t gpu_probe_addr = 0;
    uint64_t gpu_db_addr = 0;
    uint64_t gpu_result_addr = 0;
  };
  void run_on_slot(size_t slot, uint32_t batch, bool tamper, Promise<Result<bool>> promise);
  const std::vector<uint8_t>& probe_for(uint32_t batch);

  System* sys_;
  FaceVerifyCluster* cluster_;
  FaceVerifyParams params_;
  std::unique_ptr<NvmeofTarget> nvmeof_target_;
  std::unique_ptr<NvmeofInitiator> nvmeof_;
  std::unique_ptr<PageCache> cache_;
  std::unique_ptr<NfsServer> nfs_server_;
  std::unique_ptr<NfsClient> nfs_;
  std::unique_ptr<RcudaDaemon> rcuda_daemon_;
  std::unique_ptr<RcudaClient> rcuda_;
  uint64_t kernel_fn_ = 0;
  SlotPool slot_pool_;
  std::vector<Slot> slots_;
  std::vector<std::vector<uint8_t>> probe_cache_;  // lazily filled, keyed by batch
};

}  // namespace fractos

#endif  // SRC_APPS_FACE_VERIFY_H_
