// Simulated time. All FractOS latencies are modeled in nanoseconds of simulated time; the
// discrete-event loop in src/sim/event_loop.h advances a Time, and components add Durations.
//
// Duration and Time are distinct strong types: Time - Time = Duration, Time + Duration = Time.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <compare>
#include <cstdint>

namespace fractos {

class Duration {
 public:
  constexpr Duration() : ns_(0) {}

  static constexpr Duration nanos(int64_t ns) { return Duration(ns); }
  static constexpr Duration micros(double us) {
    return Duration(static_cast<int64_t>(us * 1e3));
  }
  static constexpr Duration millis(double ms) {
    return Duration(static_cast<int64_t>(ms * 1e6));
  }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr Duration zero() { return Duration(0); }

  constexpr int64_t ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) / k));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

class Time {
 public:
  constexpr Time() : ns_(0) {}
  static constexpr Time from_ns(int64_t ns) { return Time(ns); }

  constexpr int64_t ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Time operator+(Duration d) const { return Time(ns_ + d.ns()); }
  constexpr Duration operator-(Time o) const { return Duration::nanos(ns_ - o.ns_); }
  constexpr auto operator<=>(const Time&) const = default;

 private:
  explicit constexpr Time(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

inline Time max(Time a, Time b) { return a < b ? b : a; }
inline Duration max(Duration a, Duration b) { return a < b ? b : a; }
inline Duration min(Duration a, Duration b) { return a < b ? a : b; }

}  // namespace fractos

#endif  // SRC_SIM_TIME_H_
