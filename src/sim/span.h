// Structured span tracing for the simulated cluster.
//
// Where trace.h records free-form (actor, string) lines, a SpanTracer records a *forest* of
// spans — {trace_id, span_id, parent, actor, kind, t_start, t_end, attrs} — so tools can
// attribute every nanosecond of a request to fabric hops, controller compute, translation,
// queueing, or device time (the paper's Figure-8-style disaggregation-tax breakdown; see
// src/sim/tax_report.h).
//
// Context propagation is ambient: the single-threaded event loop makes a global
// (trace_id, span_id) pair safe. A SpanScope installs a context for the current stack frame;
// EventLoop captures the ambient context into every scheduled Event while a tracer is alive
// and restores it when the event fires, and Future::on_ready wraps stored continuations the
// same way — so a context set at the top of a request flows through timers, wire deliveries,
// and continuation chains without any call site threading it by hand.
//
// Zero-cost discipline (same as trace.h): with no SpanTracer alive, every instrumentation
// site is one branch on an inline global counter; no string is built, no context is copied,
// and no simulated-time event is ever scheduled by the tracer itself. Spans are stamped with
// simulated time only, so identical seeds serialize to byte-identical traces.
//
// Actor and name strings are interned (src/sim/intern.h): a Span stores two 4-byte ids, and
// hot sites that fire per message/IO pass pre-interned NameIds so a traced run never
// constructs a std::string key on the instrumentation path. The string_view overloads intern
// on the fly for cold sites and tests; serialization resolves ids back to strings, so dumps
// are unchanged.

#ifndef SRC_SIM_SPAN_H_
#define SRC_SIM_SPAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/intern.h"
#include "src/sim/time.h"

namespace fractos {

// What a span's duration models; tax_report.cc folds kinds into attribution buckets.
enum class SpanKind : uint8_t {
  kRequest = 0,      // a whole end-to-end request (trace root)
  kSyscall = 1,      // Process-side syscall round trip (send to reply)
  kController = 2,   // Controller handler occupancy (arrival to completion)
  kTranslation = 3,  // capability serialization / request-translation compute
  kFabric = 4,       // one wire transfer (occupancy + propagation)
  kQueue = 5,        // waiting for a busy resource (core, device channel, slot pool)
  kDevice = 6,       // device service time (NVMe channel, GPU engine)
  kService = 7,      // service-level operation (FS I/O, app verify)
  kFabricQueue = 8,  // head-of-line wait in a switch egress queue (fabric congestion)
  kReplication = 9,  // control-plane replication (log commit waits, leader elections)
  kFarMem = 10,      // far-memory fault handling (demand fetch / prefetch-wait turnaround)
};

const char* span_kind_name(SpanKind kind);

struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

namespace internal_span {
// SpanTracers alive; gates every capture site. Plain int on purpose: tracers are constructed
// and destroyed before/after any shard worker threads run (DESIGN.md §4j), so parallel phases
// only ever read it.
inline int g_active_tracers = 0;
// The ambient context is per-thread so each shard worker carries its own restore chain.
inline thread_local SpanContext g_ambient{};
}  // namespace internal_span

// True while any SpanTracer exists. This is the one branch every instrumentation and
// context-capture site pays when tracing is off.
inline bool span_tracing_active() { return internal_span::g_active_tracers > 0; }

inline SpanContext ambient_span_context() { return internal_span::g_ambient; }

// RAII ambient-context installer. The default constructor installs the *empty* context —
// used to detach work that must not join the current trace (e.g. the trailing DeliverAck a
// Process sends after a request was already delivered).
class SpanScope {
 public:
  explicit SpanScope(SpanContext ctx) : prev_(internal_span::g_ambient) {
    internal_span::g_ambient = ctx;
  }
  SpanScope() : prev_(internal_span::g_ambient) { internal_span::g_ambient = SpanContext{}; }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { internal_span::g_ambient = prev_; }

 private:
  SpanContext prev_;
};

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent = 0;  // 0 for trace roots
  NameId actor_id = kInvalidNameId;
  SpanKind kind = SpanKind::kRequest;
  NameId name_id = kInvalidNameId;
  const std::string& actor() const { return interned_name(actor_id); }
  const std::string& name() const { return interned_name(name_id); }
  Time t_start;
  Time t_end;
  bool open = false;
  bool error = false;
  std::string error_what;
  std::vector<std::pair<std::string, std::string>> attrs;
  // Latest end time seen among (transitive) children while this span was still open; close()
  // clamps t_end to it so a parent never closes earlier than a child (pre-closed fabric spans
  // end in the future relative to the event that records them).
  Time max_child_end;
};

// Records spans. Attach to an EventLoop with loop.set_span_tracer(&tracer); the tracer's
// lifetime (not attachment) is what switches the ambient-context machinery on.
//
// Sharded mode (DESIGN.md §4j) gives each rack its own tracer with a disjoint id namespace:
// construct with id_base = rack << 40 and attach via loop.set_rack_span_tracer(). Span and
// trace ids stay globally unique, so a trace whose spans land on several racks can be folded
// across tracers (fold_tax takes a tracer list). Operations on an id outside this tracer's
// namespace — e.g. bubbling a child's end time toward a parent recorded on another rack — are
// deterministic no-ops: a span's tracer is decided by the rack that records it, which is
// shard-count-invariant, so merged output is too.
class SpanTracer {
 public:
  explicit SpanTracer(uint64_t id_base = 0) : id_base_(id_base) {
    ++internal_span::g_active_tracers;
  }
  ~SpanTracer() { --internal_span::g_active_tracers; }
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  // Opens a trace root (kind kRequest) and returns its span id, which doubles as the trace
  // id. The caller installs it with SpanScope(tracer.context_of(id)).
  uint64_t start_trace(std::string_view actor, std::string_view name, Time now) {
    return start_trace(intern_name(actor), intern_name(name), now);
  }
  uint64_t start_trace(NameId actor, NameId name, Time now);

  // Opens a child of the ambient context. Returns 0 — on which every later operation is a
  // no-op — when no trace context is ambient, so call sites need no second branch.
  uint64_t begin(std::string_view actor, SpanKind kind, std::string_view name, Time now) {
    return begin(intern_name(actor), kind, intern_name(name), now);
  }
  uint64_t begin(NameId actor, SpanKind kind, NameId name, Time now);

  // Records an already-bounded child of the ambient context (fabric transfers and device
  // service windows know both endpoints up front; t_end may lie in the simulated future).
  // Returns the span id, or 0 when no context is ambient.
  uint64_t record(std::string_view actor, SpanKind kind, std::string_view name, Time t_start,
                  Time t_end) {
    return record(intern_name(actor), kind, intern_name(name), t_start, t_end);
  }
  uint64_t record(NameId actor, SpanKind kind, NameId name, Time t_start, Time t_end);

  // Closes a span at max(now, latest child end). No-op for id 0 or an already-closed span.
  void end(uint64_t span_id, Time now);

  // Closes a span and marks it failed (e.g. "timeout", "channel-closed").
  void end_error(uint64_t span_id, Time now, std::string_view what);

  void attr(uint64_t span_id, std::string_view key, std::string_view value);

  SpanContext context_of(uint64_t span_id) const;

  const std::vector<Span>& spans() const { return spans_; }
  const Span* find(uint64_t span_id) const;
  size_t open_spans() const { return open_; }
  uint64_t id_base() const { return id_base_; }

  // True iff `span_id` was issued by this tracer.
  bool contains(uint64_t span_id) const {
    return span_id > id_base_ && span_id - id_base_ <= spans_.size();
  }

  // All spans of one trace, in span-id (creation) order.
  std::vector<const Span*> trace(uint64_t trace_id) const;

  // Deterministic line-per-span dump (creation order, integer nanoseconds): identical seeds
  // must serialize byte-identically.
  std::string serialize() const;

 private:
  // Propagates a child's end time up the ancestor chain: open ancestors remember it (for
  // their own close), already-closed ancestors are extended so containment holds. Stops at
  // the namespace boundary — a parent on another rack's tracer is not extended.
  void bubble_end(uint64_t parent_id, Time end);

  std::vector<Span> spans_;  // span_id is id_base_ + index + 1
  uint64_t id_base_ = 0;
  size_t open_ = 0;
};

// Deterministic merged dump of several tracers (sharded mode: pass them in rack order, which
// is ascending id_base order — the result is then sorted by span-id namespace and identical
// for every shard count).
std::string serialize_spans(const std::vector<const SpanTracer*>& tracers);

}  // namespace fractos

#endif  // SRC_SIM_SPAN_H_
