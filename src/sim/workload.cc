#include "src/sim/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/base/assert.h"
#include "src/sim/metrics.h"

namespace fractos {

double ArrivalSpec::mean_rate_rps() const {
  switch (kind) {
    case Kind::kPoisson:
      return rate_rps;
    case Kind::kOnOff:
      return rate_rps * (on / (on + off));
    case Kind::kDiurnal:
      return rate_rps;  // the sinusoid integrates to zero over each period
  }
  return rate_rps;
}

ArrivalSchedule::ArrivalSchedule(ArrivalSpec spec, uint64_t seed)
    : spec_(spec), rng_(seed) {
  FRACTOS_CHECK(spec_.rate_rps > 0.0);
  if (spec_.kind == ArrivalSpec::Kind::kOnOff) {
    FRACTOS_CHECK(spec_.on > Duration::zero() && spec_.off >= Duration::zero());
  }
  if (spec_.kind == ArrivalSpec::Kind::kDiurnal) {
    FRACTOS_CHECK(spec_.depth >= 0.0 && spec_.depth < 1.0);
    FRACTOS_CHECK(spec_.period > Duration::zero());
  }
}

int64_t ArrivalSchedule::exp_gap_ns(double rate_rps) {
  // Inverse-CDF: gap = -ln(1 - u) / rate, u uniform in [0, 1). log1p keeps precision for
  // small u and never sees log(0).
  const double u = rng_.next_double();
  const double gap_s = -std::log1p(-u) / rate_rps;
  const int64_t ns = static_cast<int64_t>(gap_s * 1e9 + 0.5);
  return ns < 1 ? 1 : ns;
}

Duration ArrivalSchedule::next() {
  switch (spec_.kind) {
    case ArrivalSpec::Kind::kPoisson: {
      wall_ns_ += exp_gap_ns(spec_.rate_rps);
      return Duration::nanos(wall_ns_);
    }
    case ArrivalSpec::Kind::kOnOff: {
      // Draw the process in "busy time" (Poisson at the burst rate over concatenated on
      // windows), then splice the off windows back in: busy time b lands in cycle b / on at
      // offset b % on. Integer arithmetic, so the duty-cycle identity is exact.
      busy_ns_ += exp_gap_ns(spec_.rate_rps);
      const int64_t on_ns = spec_.on.ns();
      const int64_t cycle_ns = on_ns + spec_.off.ns();
      const int64_t cycles = busy_ns_ / on_ns;
      const int64_t within = busy_ns_ % on_ns;
      return Duration::nanos(cycles * cycle_ns + within);
    }
    case ArrivalSpec::Kind::kDiurnal: {
      // Thinning (Lewis & Shedler): candidates at the peak rate, each kept with probability
      // lambda(t) / lambda_max. Every candidate consumes exactly two rng draws whether kept
      // or not, so the stream stays deterministic under any acceptance pattern.
      const double lambda_max = spec_.rate_rps * (1.0 + spec_.depth);
      const double period_s = spec_.period.to_seconds();
      for (;;) {
        wall_ns_ += exp_gap_ns(lambda_max);
        const double t_s = static_cast<double>(wall_ns_) / 1e9;
        const double lambda =
            spec_.rate_rps * (1.0 + spec_.depth * std::sin(6.283185307179586 * t_s / period_s));
        if (rng_.next_double() * lambda_max < lambda) {
          return Duration::nanos(wall_ns_);
        }
      }
    }
  }
  FRACTOS_CHECK(false);
  return Duration::zero();
}

OpenLoopEngine::OpenLoopEngine(EventLoop* loop, Duration horizon)
    : loop_(loop), horizon_(horizon) {
  FRACTOS_CHECK(loop != nullptr);
  FRACTOS_CHECK(horizon > Duration::zero());
  actor_id_ = intern_name("openloop");
}

size_t OpenLoopEngine::add_tenant(TenantSpec spec, IssueFn issue) {
  FRACTOS_CHECK(!running_);
  FRACTOS_CHECK(issue != nullptr);
  FRACTOS_CHECK(!spec.name.empty());
  if (spec.ecn_backpressure) {
    FRACTOS_CHECK(spec.ecn_cut > 0.0 && spec.ecn_cut < 1.0);
    FRACTOS_CHECK(spec.ecn_recover > 0.0);
    FRACTOS_CHECK(spec.ecn_min_scale > 0.0 && spec.ecn_min_scale <= 1.0);
    FRACTOS_CHECK(spec.ecn_epoch > Duration::zero());
  }
  Tenant t(std::move(spec), std::move(issue));
  t.name_id = intern_name(t.spec.name);
  const std::string tp = "tenant." + t.spec.name + ".";
  t.keys.offered = intern_name(tp + "offered");
  t.keys.issued = intern_name(tp + "issued");
  t.keys.completed = intern_name(tp + "completed");
  t.keys.failed = intern_name(tp + "failed");
  t.keys.shed = intern_name(tp + "shed");
  t.keys.shed_client = intern_name(tp + "shed_client");
  t.keys.deferrals = intern_name(tp + "deferrals");
  t.keys.ecn_marks = intern_name(tp + "ecn_marks");
  t.keys.latency_ns = intern_name(tp + "latency_ns");
  tenants_.push_back(std::move(t));
  return tenants_.size() - 1;
}

void OpenLoopEngine::on_ecn_mark(uint32_t src_node, uint32_t dst_node) {
  const Time now = loop_->now();
  MetricsRegistry* mr = loop_->metrics();
  for (Tenant& t : tenants_) {
    if (!t.spec.ecn_backpressure) {
      continue;
    }
    bool touches = false;
    for (uint32_t n : t.spec.nodes) {
      if (n == src_node || n == dst_node) {
        touches = true;
        break;
      }
    }
    if (!touches) {
      continue;
    }
    ++t.slo.ecn_marks;
    if (mr != nullptr) {
      mr->add(t.keys.ecn_marks);
    }
    // Multiplicative decrease, at most once per epoch: a congested switch emits a mark per
    // queued message, and reacting to every one would slam the scale to the floor on the
    // first burst.
    if (now - t.last_cut >= t.spec.ecn_epoch) {
      t.scale = std::max(t.spec.ecn_min_scale, t.scale * (1.0 - t.spec.ecn_cut));
      t.last_cut = now;
    }
    t.last_signal = now;  // any mark restarts the mark-free recovery clock
  }
}

void OpenLoopEngine::recover(Tenant& t, Time now) {
  if (t.scale >= 1.0) {
    t.last_signal = now;
    return;
  }
  const int64_t epoch_ns = t.spec.ecn_epoch.ns();
  const int64_t k = (now - t.last_signal).ns() / epoch_ns;
  if (k > 0) {
    t.scale = std::min(1.0, t.scale + t.spec.ecn_recover * static_cast<double>(k));
    t.last_signal = t.last_signal + Duration::nanos(k * epoch_ns);
  }
}

Duration OpenLoopEngine::pacing_gap(const Tenant& t) const {
  return Duration::seconds(1.0 / (t.spec.arrivals.mean_rate_rps() * t.scale));
}

void OpenLoopEngine::schedule_next_arrival(size_t i) {
  Tenant& t = tenants_[i];
  const Duration offset = t.schedule.next();
  if (offset > horizon_) {
    t.done_generating = true;
    return;
  }
  const Time at = start_ + offset;
  loop_->schedule_at(at, [this, i, at]() {
    handle_arrival(i, at);
    schedule_next_arrival(i);
  });
}

void OpenLoopEngine::handle_arrival(size_t i, Time scheduled) {
  Tenant& t = tenants_[i];
  ++t.slo.offered;
  MetricsRegistry* mr = loop_->metrics();
  if (mr != nullptr) {
    mr->add(t.keys.offered);
  }
  if (t.spec.ecn_backpressure) {
    const Time now = loop_->now();
    recover(t, now);
    if (t.scale < 1.0) {
      const Time admit_at = max(now, t.next_admit);
      t.next_admit = admit_at + pacing_gap(t);
      if (admit_at > now) {
        if (t.deferred >= t.spec.defer_limit) {
          // The pacing backlog is full: shed here, before the request touches the system.
          ++t.slo.shed_client;
          if (mr != nullptr) {
            mr->add(t.keys.shed_client);
          }
          return;
        }
        ++t.deferred;
        ++deferred_total_;
        ++t.slo.deferrals;
        if (mr != nullptr) {
          mr->add(t.keys.deferrals);
        }
        loop_->schedule_at(admit_at, [this, i, scheduled]() {
          --tenants_[i].deferred;
          --deferred_total_;
          issue_request(i, scheduled);
        });
        return;
      }
    }
  }
  issue_request(i, scheduled);
}

void OpenLoopEngine::issue_request(size_t i, Time scheduled) {
  Tenant& t = tenants_[i];
  ++t.slo.issued;
  if (MetricsRegistry* mr = loop_->metrics()) {
    mr->add(t.keys.issued);
  }
  ++t.outstanding;
  ++outstanding_total_;
  uint64_t span_id = 0;
  SpanTracer* st = loop_->span_tracer();
  if (st != nullptr && span_tracing_active()) {
    span_id = st->start_trace(actor_id_, t.name_id, loop_->now());
  }
  DoneFn done = [this, i, scheduled, span_id](Status s) { complete(i, scheduled, span_id, s); };
  if (span_id != 0) {
    // The request's whole continuation chain inherits this trace root through the event
    // loop's ambient-context capture.
    SpanScope scope(st->context_of(span_id));
    t.issue(std::move(done));
  } else {
    t.issue(std::move(done));
  }
}

void OpenLoopEngine::complete(size_t i, Time scheduled, uint64_t span_id, Status s) {
  Tenant& t = tenants_[i];
  FRACTOS_CHECK(t.outstanding > 0);
  --t.outstanding;
  --outstanding_total_;
  const Time now = loop_->now();
  const Duration lat = now - scheduled;
  MetricsRegistry* mr = loop_->metrics();
  if (s.ok()) {
    ++t.slo.completed;
    t.slo.latency_us.add(lat);
    if (mr != nullptr) {
      mr->add(t.keys.completed);
      mr->observe(t.keys.latency_ns, static_cast<uint64_t>(lat.ns()));
    }
  } else if (s.error() == ErrorCode::kOverloaded) {
    ++t.slo.shed;
    t.slo.shed_latency_us.add(lat);
    if (mr != nullptr) {
      mr->add(t.keys.shed);
    }
  } else {
    ++t.slo.failed;
    if (mr != nullptr) {
      mr->add(t.keys.failed);
    }
  }
  if (span_id != 0) {
    if (SpanTracer* st = loop_->span_tracer()) {
      if (s.ok()) {
        st->end(span_id, now);
      } else {
        st->end_error(span_id, now, error_code_name(s.error()));
      }
    }
  }
}

void OpenLoopEngine::run() {
  FRACTOS_CHECK(!running_);
  running_ = true;
  start_ = loop_->now();
  for (size_t i = 0; i < tenants_.size(); ++i) {
    schedule_next_arrival(i);
  }
  const bool done = loop_->run_until([this]() {
    if (outstanding_total_ != 0 || deferred_total_ != 0) {
      return false;
    }
    for (const Tenant& t : tenants_) {
      if (!t.done_generating) {
        return false;
      }
    }
    return true;
  });
  FRACTOS_CHECK_MSG(done, "open-loop run: event loop drained with requests still in flight");
  for (Tenant& t : tenants_) {
    FRACTOS_CHECK_MSG(t.slo.offered == t.slo.accounted(),
                      "open-loop SLO accounting leak (a done callback was dropped or doubled)");
    t.slo.goodput_rps = static_cast<double>(t.slo.completed) / horizon_.to_seconds();
  }
}

}  // namespace fractos
