#include "src/sim/intern.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace fractos {

namespace {

struct Table {
  // Views key into `names`, whose std::deque never invalidates element references.
  std::unordered_map<std::string_view, NameId> ids;
  std::deque<std::string> names;  // names[id - 1]
  // Shard worker threads (DESIGN.md §4j) may intern concurrently. Assigned ids depend on
  // first-intern order, so they are process-local handles — nothing serialized ever embeds a
  // raw NameId, only the interned string it resolves to.
  std::mutex mu;
};

Table& table() {
  static Table t;
  return t;
}

}  // namespace

NameId intern_name(std::string_view name) {
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.ids.find(name);
  if (it != t.ids.end()) {
    return it->second;
  }
  t.names.emplace_back(name);
  const NameId id = static_cast<NameId>(t.names.size());
  t.ids.emplace(std::string_view(t.names.back()), id);
  return id;
}

const std::string& interned_name(NameId id) {
  static const std::string kEmpty;
  Table& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  if (id == 0 || id > t.names.size()) {
    return kEmpty;
  }
  // Safe to return a reference past the unlock: deque elements are never moved or erased.
  return t.names[id - 1];
}

}  // namespace fractos
