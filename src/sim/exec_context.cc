#include "src/sim/exec_context.h"

#include <utility>

#include "src/base/assert.h"

namespace fractos {

ExecContext::ExecContext(EventLoop* loop, std::string name, double speed)
    : loop_(loop), name_(std::move(name)), name_id_(intern_name(name_)), speed_(speed) {
  FRACTOS_CHECK(loop != nullptr);
  FRACTOS_CHECK(speed > 0.0);
}

void ExecContext::run(Duration cost, EventLoop::Callback work) {
  FRACTOS_DCHECK(cost >= Duration::zero());
  const Duration scaled = cost / speed_;
  const Time start = max(loop_->now(), free_at_);
  if (span_tracing_active() && start > loop_->now()) {
    // The core is busy with earlier work: the gap until it frees up is queueing, not compute.
    if (SpanTracer* t = loop_->span_tracer()) {
      static const NameId kCoreWait = intern_name("core-wait");
      t->record(name_id_, SpanKind::kQueue, kCoreWait, loop_->now(), start);
    }
  }
  const Time done = start + scaled;
  free_at_ = done;
  busy_ += scaled;
  loop_->schedule_at(done, std::move(work));
}

}  // namespace fractos
