// MetricsRegistry: named counters, gauges, and log2 histograms for the simulated cluster.
//
// Components register metrics lazily by incrementing them — Network (bytes, drops,
// retransmits), Controllers (ops, dedup hits), SlotPools (waits), devices, services. Keys
// follow `component.node.metric` (e.g. `ctrl.1.syscalls`, `fs.fs-node.ios`, `net.bytes.data`);
// keys are created on first touch, so a snapshot contains exactly the metrics the run
// exercised, in sorted order — deterministic, diffable, and goldenable (tests/metrics_test.cc).
//
// Zero-cost discipline: a registry is attached to the EventLoop (loop.set_metrics(&reg)) and
// every site guards on the pointer — one branch when disabled, no strings built. The registry
// never schedules events and only ever reads simulated time handed to it, so attaching one
// cannot shift a single recorded bench number.
//
// Hot paths use the NameId overloads: a site interns its key once (src/sim/intern.h), and
// each bump is then a vector index plus a cached pointer into the sorted map — no string
// construction, hashing, or tree walk. The maps stay the single source of truth, so
// snapshot()/serialize() are byte-identical whichever overload fed them.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/intern.h"
#include "src/sim/stats.h"

namespace fractos {

class MetricsRegistry {
 public:
  // Counters / gauges.
  void add(const std::string& key, int64_t delta = 1) { scalars_[key] += delta; }
  void set(const std::string& key, int64_t value) { scalars_[key] = value; }
  int64_t value(const std::string& key) const {
    auto it = scalars_.find(key);
    return it == scalars_.end() ? 0 : it->second;
  }

  // Interned-key fast path (the map lookup happens once per id, then is cached).
  void add(NameId id, int64_t delta = 1) { *scalar_slot(id) += delta; }
  void set(NameId id, int64_t value) { *scalar_slot(id) = value; }

  // Distributions (Log2Histogram buckets).
  void observe(const std::string& key, uint64_t sample) { hists_[key].add(sample); }
  void observe(NameId id, uint64_t sample) { hist_slot(id)->add(sample); }
  const Log2Histogram* histogram(const std::string& key) const {
    auto it = hists_.find(key);
    return it == hists_.end() ? nullptr : &it->second;
  }

  // Flattened, sorted key -> value view: scalars verbatim; each histogram `h` expands to
  // `h.count` plus `h.b<NN>` for every non-empty bucket (NN zero-padded so lexicographic
  // order is bucket order).
  std::map<std::string, int64_t> snapshot() const;

  // One "key value\n" line per snapshot entry — the golden-file format.
  std::string serialize() const;

  // Folds another registry in: scalars sum, histograms merge bucket-wise. Commutative and
  // associative, so merging per-rack registries from a sharded run (DESIGN.md §4j) yields
  // the same snapshot in any merge order — and the same snapshot for any shard count,
  // because each sample's rack placement is shard-count-invariant.
  void merge_from(const MetricsRegistry& other);

  bool empty() const { return scalars_.empty() && hists_.empty(); }

 private:
  // std::map never moves mapped values, so these cached pointers stay valid for the
  // registry's lifetime.
  int64_t* scalar_slot(NameId id);
  Log2Histogram* hist_slot(NameId id);

  std::map<std::string, int64_t> scalars_;
  std::map<std::string, Log2Histogram> hists_;
  std::vector<int64_t*> scalar_slots_;        // indexed by NameId
  std::vector<Log2Histogram*> hist_slots_;    // indexed by NameId
};

}  // namespace fractos

#endif  // SRC_SIM_METRICS_H_
