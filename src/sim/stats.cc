#include "src/sim/stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/assert.h"

namespace fractos {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::rel_stddev() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / std::abs(m);
}

double Samples::mean() const {
  if (xs_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs_) {
    sum += x;
  }
  return sum / static_cast<double>(xs_.size());
}

double Samples::percentile(double p) const {
  FRACTOS_CHECK(!xs_.empty());
  FRACTOS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Log2Histogram::add(uint64_t value) {
  size_t bucket = 0;
  while (value > 1 && bucket < 63) {
    value >>= 1;
    ++bucket;
  }
  ++buckets_[bucket];
  ++total_;
}

uint64_t Log2Histogram::bucket(size_t i) const {
  FRACTOS_CHECK(i < 64);
  return buckets_[i];
}

}  // namespace fractos
