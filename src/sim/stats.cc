#include "src/sim/stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/assert.h"

namespace fractos {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::rel_stddev() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / std::abs(m);
}

double Samples::mean() const {
  if (xs_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs_) {
    sum += x;
  }
  return sum / static_cast<double>(xs_.size());
}

double Samples::percentile(double p) const {
  FRACTOS_CHECK(!xs_.empty());
  FRACTOS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Log2Histogram::add(uint64_t value) {
  size_t bucket = 0;
  while (value > 1 && bucket < 63) {
    value >>= 1;
    ++bucket;
  }
  ++buckets_[bucket];
  ++total_;
}

uint64_t Log2Histogram::bucket(size_t i) const {
  FRACTOS_CHECK(i < 64);
  return buckets_[i];
}

size_t Log2Histogram::bucket_of(uint64_t value) {
  size_t bucket = 0;
  while (value > 1 && bucket < 63) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

uint64_t Log2Histogram::bucket_upper(size_t i) {
  FRACTOS_CHECK(i < 64);
  if (i == 63) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << (i + 1)) - 1;
}

uint64_t Log2Histogram::quantile(double q) const {
  FRACTOS_CHECK(q > 0.0 && q <= 1.0);
  FRACTOS_CHECK(total_ > 0);
  // Nearest-rank definition: the k-th smallest sample with k = ceil(q * n), computed in
  // integer arithmetic so a boundary like q = 0.5, n = 10 lands exactly on rank 5 (no
  // floating-point off-by-one at bucket boundaries).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total_));
  if (static_cast<double>(rank) < q * static_cast<double>(total_) || rank == 0) {
    ++rank;  // ceil; rank is 1-based
  }
  if (rank > total_) {
    rank = total_;
  }
  uint64_t cum = 0;
  for (size_t i = 0; i < 64; ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      return bucket_upper(i);
    }
  }
  return bucket_upper(63);
}

}  // namespace fractos
