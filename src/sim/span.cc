#include "src/sim/span.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/assert.h"

namespace fractos {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kSyscall:
      return "syscall";
    case SpanKind::kController:
      return "controller";
    case SpanKind::kTranslation:
      return "translation";
    case SpanKind::kFabric:
      return "fabric";
    case SpanKind::kQueue:
      return "queue";
    case SpanKind::kDevice:
      return "device";
    case SpanKind::kService:
      return "service";
    case SpanKind::kFabricQueue:
      return "fabric-queue";
    case SpanKind::kReplication:
      return "replication";
    case SpanKind::kFarMem:
      return "farmem";
  }
  return "?";
}

uint64_t SpanTracer::start_trace(NameId actor, NameId name, Time now) {
  Span s;
  s.span_id = id_base_ + spans_.size() + 1;
  s.trace_id = s.span_id;
  s.parent = 0;
  s.actor_id = actor;
  s.kind = SpanKind::kRequest;
  s.name_id = name;
  s.t_start = now;
  s.t_end = now;
  s.open = true;
  spans_.push_back(std::move(s));
  ++open_;
  return spans_.back().span_id;
}

uint64_t SpanTracer::begin(NameId actor, SpanKind kind, NameId name, Time now) {
  const SpanContext ctx = ambient_span_context();
  if (!ctx.valid()) {
    return 0;
  }
  Span s;
  s.span_id = id_base_ + spans_.size() + 1;
  s.trace_id = ctx.trace_id;
  s.parent = ctx.span_id;
  s.actor_id = actor;
  s.kind = kind;
  s.name_id = name;
  s.t_start = now;
  s.t_end = now;
  s.open = true;
  spans_.push_back(std::move(s));
  ++open_;
  return spans_.back().span_id;
}

uint64_t SpanTracer::record(NameId actor, SpanKind kind, NameId name, Time t_start,
                            Time t_end) {
  const SpanContext ctx = ambient_span_context();
  if (!ctx.valid()) {
    return 0;
  }
  FRACTOS_DCHECK(t_end >= t_start);
  Span s;
  s.span_id = id_base_ + spans_.size() + 1;
  s.trace_id = ctx.trace_id;
  s.parent = ctx.span_id;
  s.actor_id = actor;
  s.kind = kind;
  s.name_id = name;
  s.t_start = t_start;
  s.t_end = t_end;
  s.open = false;
  spans_.push_back(std::move(s));
  bubble_end(ctx.span_id, t_end);
  return spans_.back().span_id;
}

void SpanTracer::bubble_end(uint64_t parent_id, Time end) {
  // The chain ends at a trace root (parent 0) or at the first ancestor recorded by another
  // rack's tracer — cross-rack parents keep their locally-computed end times.
  while (parent_id != 0 && contains(parent_id)) {
    Span& s = spans_[parent_id - id_base_ - 1];
    if (s.open) {
      if (end > s.max_child_end) {
        s.max_child_end = end;
      }
      return;
    }
    if (s.t_end >= end) {
      return;
    }
    s.t_end = end;
    parent_id = s.parent;
  }
}

void SpanTracer::end(uint64_t span_id, Time now) {
  if (span_id == 0 || !contains(span_id)) {
    return;
  }
  Span& s = spans_[span_id - id_base_ - 1];
  if (!s.open) {
    return;
  }
  s.open = false;
  --open_;
  s.t_end = max(now, s.max_child_end);
  if (s.t_end < s.t_start) {
    s.t_end = s.t_start;
  }
  bubble_end(s.parent, s.t_end);
}

void SpanTracer::end_error(uint64_t span_id, Time now, std::string_view what) {
  if (span_id == 0) {
    return;
  }
  end(span_id, now);
  if (!contains(span_id)) {
    return;
  }
  Span& s = spans_[span_id - id_base_ - 1];
  s.error = true;
  s.error_what = what;
}

void SpanTracer::attr(uint64_t span_id, std::string_view key, std::string_view value) {
  if (span_id == 0 || !contains(span_id)) {
    return;
  }
  spans_[span_id - id_base_ - 1].attrs.emplace_back(key, value);
}

SpanContext SpanTracer::context_of(uint64_t span_id) const {
  if (span_id == 0 || !contains(span_id)) {
    return SpanContext{};
  }
  const Span& s = spans_[span_id - id_base_ - 1];
  return SpanContext{s.trace_id, s.span_id};
}

const Span* SpanTracer::find(uint64_t span_id) const {
  if (span_id == 0 || !contains(span_id)) {
    return nullptr;
  }
  return &spans_[span_id - id_base_ - 1];
}

std::vector<const Span*> SpanTracer::trace(uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.trace_id == trace_id) {
      out.push_back(&s);
    }
  }
  return out;
}

std::string SpanTracer::serialize() const {
  std::string out;
  char buf[256];
  for (const Span& s : spans_) {
    std::snprintf(buf, sizeof(buf),
                  "span id=%" PRIu64 " trace=%" PRIu64 " parent=%" PRIu64
                  " actor=%s kind=%s name=%s start=%" PRId64 " end=%" PRId64 " status=",
                  s.span_id, s.trace_id, s.parent, s.actor().c_str(), span_kind_name(s.kind),
                  s.name().c_str(), s.t_start.ns(), s.t_end.ns());
    out += buf;
    if (s.open) {
      out += "open";
    } else if (s.error) {
      out += "error:";
      out += s.error_what;
    } else {
      out += "ok";
    }
    for (const auto& [k, v] : s.attrs) {
      out += ' ';
      out += k;
      out += '=';
      out += v;
    }
    out += '\n';
  }
  return out;
}

std::string serialize_spans(const std::vector<const SpanTracer*>& tracers) {
  std::string out;
  for (const SpanTracer* t : tracers) {
    if (t != nullptr) {
      out += t->serialize();
    }
  }
  return out;
}

}  // namespace fractos
