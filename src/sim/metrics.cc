#include "src/sim/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace fractos {

std::map<std::string, int64_t> MetricsRegistry::snapshot() const {
  std::map<std::string, int64_t> out(scalars_.begin(), scalars_.end());
  char suffix[16];
  for (const auto& [key, hist] : hists_) {
    out[key + ".count"] = static_cast<int64_t>(hist.count());
    for (size_t i = 0; i < hist.num_buckets(); ++i) {
      const uint64_t n = hist.bucket(i);
      if (n != 0) {
        std::snprintf(suffix, sizeof(suffix), ".b%02zu", i);
        out[key + suffix] = static_cast<int64_t>(n);
      }
    }
  }
  return out;
}

int64_t* MetricsRegistry::scalar_slot(NameId id) {
  if (id >= scalar_slots_.size()) {
    scalar_slots_.resize(id + 1, nullptr);
  }
  int64_t*& slot = scalar_slots_[id];
  if (slot == nullptr) {
    slot = &scalars_[interned_name(id)];
  }
  return slot;
}

Log2Histogram* MetricsRegistry::hist_slot(NameId id) {
  if (id >= hist_slots_.size()) {
    hist_slots_.resize(id + 1, nullptr);
  }
  Log2Histogram*& slot = hist_slots_[id];
  if (slot == nullptr) {
    slot = &hists_[interned_name(id)];
  }
  return slot;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, value] : other.scalars_) {
    scalars_[key] += value;
  }
  for (const auto& [key, hist] : other.hists_) {
    hists_[key].merge_from(hist);
  }
}

std::string MetricsRegistry::serialize() const {
  std::string out;
  char buf[32];
  for (const auto& [key, value] : snapshot()) {
    out += key;
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", value);
    out += buf;
  }
  return out;
}

}  // namespace fractos
