// ExecContext models one polling CPU core (a host core or a SmartNIC ARM core).
//
// FractOS Controllers poll their message channels on dedicated cores (Section 4 of the paper:
// "two cores per instance, using polling to reduce latency"). Work submitted to an ExecContext
// is serialized FIFO: each item occupies the core for its stated compute cost, scaled by the
// core's speed factor. This is how the reproduction captures (a) controller compute being on
// the critical path and (b) the BlueField's slow ARM cores (the paper attributes sNIC slowness
// to an 800 MHz ARM and expensive atomics).

#ifndef SRC_SIM_EXEC_CONTEXT_H_
#define SRC_SIM_EXEC_CONTEXT_H_

#include <string>

#include "src/sim/event_loop.h"
#include "src/sim/intern.h"
#include "src/sim/time.h"

namespace fractos {

class ExecContext {
 public:
  // `speed` scales costs: a context with speed 0.5 takes twice the stated compute time.
  ExecContext(EventLoop* loop, std::string name, double speed = 1.0);

  // Runs `work` once the core has spent `cost` of compute on it, after all previously
  // submitted work. Zero-cost work still round-trips through the event loop (it models a
  // dequeue from the polling loop).
  void run(Duration cost, EventLoop::Callback work);

  // Time at which the core becomes idle given everything submitted so far.
  Time free_at() const { return free_at_; }

  // Total (scaled) compute consumed so far; used for utilization accounting in benches.
  Duration busy_time() const { return busy_; }

  const std::string& name() const { return name_; }
  double speed() const { return speed_; }

 private:
  EventLoop* loop_;
  std::string name_;
  NameId name_id_;  // interned name_, the span actor
  double speed_;
  Time free_at_;
  Duration busy_;
};

}  // namespace fractos

#endif  // SRC_SIM_EXEC_CONTEXT_H_
