// Deterministic pseudo-random number generation for workload generators (random I/O offsets,
// synthetic face-verification inputs). xoshiro256** seeded via splitmix64: fast, reproducible,
// and independent of the platform's std::mt19937 implementation details.

#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

#include "src/base/assert.h"

namespace fractos {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  uint64_t next_below(uint64_t bound) {
    FRACTOS_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = next_u64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t next_range(uint64_t lo, uint64_t hi) {
    FRACTOS_DCHECK(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  // Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  uint8_t next_byte() { return static_cast<uint8_t>(next_u64() & 0xff); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace fractos

#endif  // SRC_SIM_RNG_H_
