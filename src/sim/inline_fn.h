// InlineFn: the event loop's callback type — a move-only, type-erased void() callable tuned
// for the scheduler hot path.
//
// std::function costs the hot path twice: callables larger than its tiny SBO (16 bytes on
// libstdc++) heap-allocate on every schedule, and its copyability requirement forbids
// capturing move-only state (a Payload handle, another InlineFn). InlineFn instead:
//   * stores callables up to kInlineBytes directly inside the object (no allocation at all
//     for the common `[this]`/small-capture timers), and
//   * parks larger callables in fixed-size blocks recycled through a freelist, so a steady
//     state soak allocates nothing per event no matter the capture size. Callables larger
//     than a pool block (rare) fall back to plain new/delete.
//
// The freelist is per-thread (thread_local), so sharded parallel runs (DESIGN.md §4j) stay
// lock-free: a callback allocated on one shard thread and destroyed on another simply
// migrates its block to the destroyer's freelist.

#ifndef SRC_SIM_INLINE_FN_H_
#define SRC_SIM_INLINE_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace fractos {

namespace internal_inline_fn {

// Freelist of fixed-size overflow blocks. Owned by a function-local singleton so the blocks
// are reachable (and freed) at exit — leak-sanitizer clean.
constexpr size_t kPoolBlockBytes = 256;
constexpr size_t kPoolMaxFree = 4096;  // blocks parked before falling back to delete

struct Pool {
  std::vector<void*> free_blocks;
  ~Pool() {
    for (void* p : free_blocks) {
      ::operator delete(p);
    }
  }
};

inline Pool& pool() {
  static thread_local Pool p;
  return p;
}

inline void* pool_alloc() {
  Pool& p = pool();
  if (!p.free_blocks.empty()) {
    void* block = p.free_blocks.back();
    p.free_blocks.pop_back();
    return block;
  }
  return ::operator new(kPoolBlockBytes);
}

inline void pool_free(void* block) {
  Pool& p = pool();
  if (p.free_blocks.size() < kPoolMaxFree) {
    p.free_blocks.push_back(block);
  } else {
    ::operator delete(block);
  }
}

}  // namespace internal_inline_fn

class InlineFn {
 public:
  // Inline capacity. Sized so a capture of a handful of pointers/handles plus one
  // std::function-typed completion fits without touching the pool.
  static constexpr size_t kInlineBytes = 64;

  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callbacks convert implicitly
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      void* block = internal_inline_fn::kPoolBlockBytes >= sizeof(D) &&
                            alignof(D) <= alignof(std::max_align_t)
                        ? internal_inline_fn::pool_alloc()
                        : ::operator new(sizeof(D), std::align_val_t{alignof(D)});
      ::new (block) D(std::forward<F>(f));
      *reinterpret_cast<void**>(storage_) = block;
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { steal(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys the src object. nullptr means
    // "relocatable by memcpy of the whole storage" — true for trivially-copyable inline
    // callables and for all pool/heap-backed ones (their storage is just a pointer), which
    // lets the scheduler shuffle events with a fixed-size memcpy instead of an indirect call.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage);  // nullptr when destruction is a no-op
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }
  template <typename D>
  static constexpr bool memcpy_relocatable() {
    return std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;
  }

  template <typename D>
  static D* inline_obj(void* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }
  template <typename D>
  static D* heap_obj(void* storage) {
    return static_cast<D*>(*reinterpret_cast<void**>(storage));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*inline_obj<D>(s))(); },
      memcpy_relocatable<D>() ? nullptr
                              : +[](void* dst, void* src) noexcept {
                                  D* obj = inline_obj<D>(src);
                                  ::new (dst) D(std::move(*obj));
                                  obj->~D();
                                },
      std::is_trivially_destructible_v<D> ? nullptr
                                          : +[](void* s) { inline_obj<D>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (*heap_obj<D>(s))(); },
      nullptr,  // storage holds a pointer: memcpy relocates it
      [](void* s) {
        D* obj = heap_obj<D>(s);
        obj->~D();
        if constexpr (internal_inline_fn::kPoolBlockBytes >= sizeof(D) &&
                      alignof(D) <= alignof(std::max_align_t)) {
          internal_inline_fn::pool_free(*reinterpret_cast<void**>(s));
        } else {
          ::operator delete(*reinterpret_cast<void**>(s), std::align_val_t{alignof(D)});
        }
      },
  };

  void steal(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace fractos

#endif  // SRC_SIM_INLINE_FN_H_
