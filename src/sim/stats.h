// Measurement helpers for tests and benches: streaming summary statistics (Welford) and a
// sample container with percentiles. The paper reports means with a stddev-below-3%-of-mean
// criterion; Summary exposes exactly those quantities.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace fractos {

// Streaming mean / stddev / min / max.
class Summary {
 public:
  void add(double x);
  void add(Duration d) { add(d.to_us()); }

  size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  // stddev as a fraction of the mean; the paper's acceptance bar is < 0.03.
  double rel_stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores samples; supports percentiles (linear interpolation between closest ranks).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  void add(Duration d) { xs_.push_back(d.to_us()); }

  size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double percentile(double p) const;  // p in [0, 100]
  double median() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

// Fixed-boundary histogram (log2 buckets) for size/latency distributions in benches.
class Log2Histogram {
 public:
  void add(uint64_t value);
  uint64_t count() const { return total_; }
  // Bucket i counts values in [2^i, 2^(i+1)); bucket 0 also counts 0.
  uint64_t bucket(size_t i) const;
  size_t num_buckets() const { return 64; }

  // Bucket-wise accumulation — exact, since both sides already discretized identically.
  // Used to merge per-rack registries from sharded runs (DESIGN.md §4j).
  void merge_from(const Log2Histogram& other) {
    for (size_t i = 0; i < 64; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    total_ += other.total_;
  }

  // The bucket a value falls into (the inverse of the boundaries above).
  static size_t bucket_of(uint64_t value);
  // Largest value bucket i can hold: 2^(i+1) - 1 (bucket 0 holds {0, 1}).
  static uint64_t bucket_upper(size_t i);

  // Quantile estimate for q in (0, 1]: the upper bound of the bucket holding the
  // nearest-rank order statistic (rank = ceil(q * count), 1-based). The true sample at that
  // rank lies in the same bucket, so the estimate is never off by more than the bucket
  // width — the "within one bucket" guarantee the SLO reporting path relies on
  // (tests/workload_test.cc pins it against exact quantiles from raw samples).
  uint64_t quantile(double q) const;

 private:
  uint64_t buckets_[64] = {};
  uint64_t total_ = 0;
};

}  // namespace fractos

#endif  // SRC_SIM_STATS_H_
