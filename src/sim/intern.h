// Process-wide string interning for metric keys and span actor/name strings.
//
// Hot instrumentation sites fire millions of times per simulated second; building a
// std::string key and walking a std::map on every bump dominates their wall-clock cost.
// Interning turns each name into a small stable integer once — after that, metric bumps
// index a per-registry slot array and spans store a 4-byte id instead of copying a string.
//
// Ids are assigned in first-intern order, so their numeric values depend on run order —
// nothing serialized may ever depend on an id value. Serialized output (metric snapshots,
// span dumps) always goes through `interned_name()` back to the string, and the registries
// keep their string-sorted layouts, so goldens stay byte-identical.
//
// The table is append-only and process-wide (Meyer's singleton, safe from static
// initializers in other translation units), sized for the few hundred distinct names a run
// creates. Single-threaded by design, like the rest of the simulator.

#ifndef SRC_SIM_INTERN_H_
#define SRC_SIM_INTERN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace fractos {

using NameId = uint32_t;
inline constexpr NameId kInvalidNameId = 0;  // never assigned; interned_name(0) is ""

// Returns the stable id (>= 1) for `name`, inserting it on first sight.
NameId intern_name(std::string_view name);

// Reverse lookup; the returned reference lives for the whole process. Unknown ids
// (including kInvalidNameId) map to the empty string.
const std::string& interned_name(NameId id);

}  // namespace fractos

#endif  // SRC_SIM_INTERN_H_
