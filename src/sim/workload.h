// Open-loop multi-tenant traffic generation with SLO accounting (DESIGN.md §4i).
//
// A closed-loop driver (bench_scaleout's drive()) issues the next request only after the
// previous one completes, so under overload it slows down with the system and the knee in the
// latency-vs-load curve is invisible. The OpenLoopEngine instead draws arrival times from a
// seeded stochastic schedule and issues each request at its appointed simulated time whether
// or not earlier ones finished — offered load is an input, and queueing collapse shows up
// where it belongs: in the per-tenant p99/p99.9 and drop-rate accounting.
//
// Three layers:
//   * ArrivalSchedule — deterministic arrival-time streams (Poisson via inverse-CDF, bursty
//     on/off, diurnal-modulated via thinning), each driven by a private splitmix64 stream so
//     the same (spec, seed) yields byte-identical schedules on every platform.
//   * OpenLoopEngine — runs concurrent tenants against caller-supplied issue functions,
//     tagging each request with a per-tenant trace root and recording per-tenant SLO
//     counters and latency distributions (measured from the *scheduled* arrival, so pacing
//     delay and queueing both count against the tenant).
//   * ECN backpressure — Network::set_ecn_listener feeds switch ECN marks into
//     OpenLoopEngine::on_ecn_mark; a marked tenant's admission rate is cut multiplicatively
//     and recovers additively per mark-free epoch (DCQCN in spirit), with excess arrivals
//     deferred behind a pacing gate and shed client-side past a bounded deferral queue.
//
// Zero-cost discipline: nothing in this file is constructed by System or Controller; a run
// without an OpenLoopEngine (and without an ECN listener) executes no code from here, so all
// recorded goldens and bench numbers are unaffected.

#ifndef SRC_SIM_WORKLOAD_H_
#define SRC_SIM_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/sim/event_loop.h"
#include "src/sim/intern.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace fractos {

// The seed-expansion PRNG from rng.h, exposed as a stream: one independent instance per
// tenant, so adding a tenant never perturbs another tenant's arrival times.
class Splitmix64 {
 public:
  explicit Splitmix64(uint64_t seed) : x_(seed) {}

  uint64_t next() {
    x_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t x_;
};

// What a tenant's arrival process looks like. Rates are requests per second of simulated
// time.
struct ArrivalSpec {
  enum class Kind : uint8_t {
    kPoisson = 0,  // memoryless arrivals at rate_rps
    kOnOff = 1,    // Poisson at rate_rps during `on` windows, silent during `off` windows
    kDiurnal = 2,  // Poisson with rate_rps * (1 + depth * sin(2*pi*t / period))
  };

  Kind kind = Kind::kPoisson;
  double rate_rps = 1000.0;
  // On/off burst shape (kOnOff only).
  Duration on = Duration::millis(1);
  Duration off = Duration::millis(1);
  // Sinusoidal modulation (kDiurnal only); depth in [0, 1).
  double depth = 0.5;
  Duration period = Duration::millis(10);

  static ArrivalSpec poisson(double rps) {
    ArrivalSpec s;
    s.kind = Kind::kPoisson;
    s.rate_rps = rps;
    return s;
  }
  static ArrivalSpec on_off(double burst_rps, Duration on, Duration off) {
    ArrivalSpec s;
    s.kind = Kind::kOnOff;
    s.rate_rps = burst_rps;
    s.on = on;
    s.off = off;
    return s;
  }
  static ArrivalSpec diurnal(double mean_rps, double depth, Duration period) {
    ArrivalSpec s;
    s.kind = Kind::kDiurnal;
    s.rate_rps = mean_rps;
    s.depth = depth;
    s.period = period;
    return s;
  }

  // Long-run average arrival rate (what an SLO-normalizing denominator wants): the duty
  // cycle discounts kOnOff, the sinusoid integrates away for kDiurnal.
  double mean_rate_rps() const;
};

// A deterministic stream of arrival offsets for one tenant. next() returns strictly
// increasing Durations measured from the schedule's origin (the engine anchors them at
// run() time). Same (spec, seed) => byte-identical stream, pinned by tests/workload_test.cc.
class ArrivalSchedule {
 public:
  ArrivalSchedule(ArrivalSpec spec, uint64_t seed);

  Duration next();
  const ArrivalSpec& spec() const { return spec_; }

 private:
  // One exponential inter-arrival gap at `rate_rps`, in integer ns (floored at 1 ns so the
  // stream is strictly increasing).
  int64_t exp_gap_ns(double rate_rps);

  ArrivalSpec spec_;
  Splitmix64 rng_;
  int64_t wall_ns_ = 0;  // kPoisson / kDiurnal: last emitted offset
  int64_t busy_ns_ = 0;  // kOnOff: cumulative on-window time consumed
};

// One tenant of the open-loop harness.
struct TenantSpec {
  std::string name;  // metrics key component and span name: tenant.<name>.*
  ArrivalSpec arrivals;
  uint64_t seed = 1;

  // Nodes whose flows implicate this tenant: an ECN mark on a transfer touching any of them
  // (as source or destination) counts against the tenant. Leave empty when ECN backpressure
  // is off.
  std::vector<uint32_t> nodes;

  // ECN-driven client-side backpressure. On each mark (at most once per ecn_epoch) the
  // tenant's admission scale is cut to scale * (1 - ecn_cut), floored at ecn_min_scale; per
  // mark-free epoch it recovers by +ecn_recover up to 1. While scale < 1, arrivals are paced
  // at mean_rate * scale: excess arrivals wait behind the pacing gate (a deferral), and once
  // defer_limit of them are waiting, further arrivals are shed client-side without touching
  // the system.
  bool ecn_backpressure = false;
  double ecn_cut = 0.5;
  Duration ecn_epoch = Duration::micros(100);
  double ecn_recover = 0.05;
  double ecn_min_scale = 0.1;
  uint32_t defer_limit = 256;
};

// Per-tenant SLO accounting. Every offered arrival ends in exactly one of completed /
// failed / shed / shed_client, so offered == accounted() when a run finishes — the
// reconciliation invariant tests pin against Controller admission counters.
struct TenantSlo {
  uint64_t offered = 0;      // arrivals generated within the horizon
  uint64_t issued = 0;       // handed to the issue function (offered - shed_client)
  uint64_t completed = 0;    // issue function reported kOk
  uint64_t failed = 0;       // issue function reported an error other than kOverloaded
  uint64_t shed = 0;         // refused by Controller admission control (kOverloaded)
  uint64_t shed_client = 0;  // shed client-side by ECN backpressure (never issued)
  uint64_t deferrals = 0;    // arrivals delayed behind the ECN pacing gate
  uint64_t ecn_marks = 0;    // switch ECN marks attributed to this tenant

  // Completed-request latency, in us, measured from the scheduled arrival time (so ECN
  // pacing delay counts; an open-loop latency that ignored queueing-to-enter would hide
  // exactly the collapse this engine exists to expose).
  Samples latency_us;
  // Arrival-to-refusal latency of Controller sheds: the fail-fast bound.
  Samples shed_latency_us;

  double goodput_rps = 0.0;  // completed / horizon, filled in by run()

  uint64_t accounted() const { return completed + failed + shed + shed_client; }
  double p50() const { return latency_us.percentile(50.0); }
  double p99() const { return latency_us.percentile(99.0); }
  double p999() const { return latency_us.percentile(99.9); }
  double drop_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(shed + shed_client + failed) /
                              static_cast<double>(offered);
  }
};

// The open-loop harness. Usage:
//
//   OpenLoopEngine eng(&sys.loop(), Duration::millis(50));
//   size_t t = eng.add_tenant(spec, [&](OpenLoopEngine::DoneFn done) {
//     client.read(...).on_ready([done](Result<...>&& r) { done(to_status(r)); });
//   });
//   sys.net().set_ecn_listener([&](uint32_t s, uint32_t d) { eng.on_ecn_mark(s, d); });
//   eng.run();
//   const TenantSlo& slo = eng.slo(t);
//
// The issue function is called at each admitted arrival's simulated time and must invoke
// done exactly once (kOverloaded marks a Controller shed; anything else a failure). run()
// drives the loop until every tenant's schedule is past the horizon and every issued
// request has completed — it CHECK-fails if the loop drains with requests still in flight.
class OpenLoopEngine {
 public:
  using DoneFn = std::function<void(Status)>;
  using IssueFn = std::function<void(DoneFn)>;

  OpenLoopEngine(EventLoop* loop, Duration horizon);

  // Registers a tenant; returns its index. Call before run().
  size_t add_tenant(TenantSpec spec, IssueFn issue);

  // ECN mark on a (src, dst) transfer — wire to Network::set_ecn_listener.
  void on_ecn_mark(uint32_t src_node, uint32_t dst_node);

  void run();

  size_t num_tenants() const { return tenants_.size(); }
  const TenantSlo& slo(size_t tenant) const { return tenants_[tenant].slo; }
  const TenantSpec& spec(size_t tenant) const { return tenants_[tenant].spec; }
  Duration horizon() const { return horizon_; }

 private:
  struct Tenant {
    TenantSpec spec;
    ArrivalSchedule schedule;
    IssueFn issue;
    TenantSlo slo;
    NameId name_id = kInvalidNameId;  // span name (the tenant), interned once

    // ECN backpressure state.
    double scale = 1.0;   // current admission scale in (0, 1]
    Time next_admit;      // pacing gate: earliest time the next arrival may issue
    Time last_cut;        // when the scale was last cut (rate-limits cuts to one per epoch)
    Time last_signal;     // base of the mark-free-epoch recovery clock
    uint32_t deferred = 0;

    uint32_t outstanding = 0;
    bool done_generating = false;

    // Pre-interned tenant.<name>.* metric keys (touched only when a registry is attached).
    struct Keys {
      NameId offered = kInvalidNameId;
      NameId issued = kInvalidNameId;
      NameId completed = kInvalidNameId;
      NameId failed = kInvalidNameId;
      NameId shed = kInvalidNameId;
      NameId shed_client = kInvalidNameId;
      NameId deferrals = kInvalidNameId;
      NameId ecn_marks = kInvalidNameId;
      NameId latency_ns = kInvalidNameId;  // histogram, integer nanoseconds
    } keys;

    Tenant(TenantSpec s, IssueFn fn)
        : spec(std::move(s)), schedule(spec.arrivals, spec.seed), issue(std::move(fn)) {}
  };

  void schedule_next_arrival(size_t i);
  void handle_arrival(size_t i, Time scheduled);
  void issue_request(size_t i, Time scheduled);
  void complete(size_t i, Time scheduled, uint64_t span_id, Status s);
  // Additive recovery: credits full mark-free epochs elapsed since last_signal.
  void recover(Tenant& t, Time now);
  Duration pacing_gap(const Tenant& t) const;

  EventLoop* loop_;
  Duration horizon_;
  Time start_;
  std::vector<Tenant> tenants_;
  uint64_t outstanding_total_ = 0;
  uint64_t deferred_total_ = 0;
  bool running_ = false;
  NameId actor_id_ = kInvalidNameId;  // "openloop", the span actor
};

}  // namespace fractos

#endif  // SRC_SIM_WORKLOAD_H_
