#include "src/sim/tax_report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

#include "src/base/assert.h"

namespace fractos {

const char* tax_bucket_name(TaxBucket b) {
  switch (b) {
    case TaxBucket::kFabric:
      return "fabric";
    case TaxBucket::kController:
      return "controller";
    case TaxBucket::kTranslation:
      return "translation";
    case TaxBucket::kQueue:
      return "queue";
    case TaxBucket::kDevice:
      return "device";
    case TaxBucket::kOther:
      return "other";
    case TaxBucket::kFabricQueue:
      return "fabric.queue";
    case TaxBucket::kReplication:
      return "replication";
    case TaxBucket::kFarMem:
      return "farmem";
  }
  return "?";
}

TaxBucket tax_bucket_of(SpanKind kind) {
  switch (kind) {
    case SpanKind::kFabric:
      return TaxBucket::kFabric;
    case SpanKind::kController:
      return TaxBucket::kController;
    case SpanKind::kTranslation:
      return TaxBucket::kTranslation;
    case SpanKind::kQueue:
      return TaxBucket::kQueue;
    case SpanKind::kFabricQueue:
      return TaxBucket::kFabricQueue;
    case SpanKind::kReplication:
      return TaxBucket::kReplication;
    case SpanKind::kFarMem:
      return TaxBucket::kFarMem;
    case SpanKind::kDevice:
      return TaxBucket::kDevice;
    case SpanKind::kRequest:
    case SpanKind::kSyscall:
    case SpanKind::kService:
      return TaxBucket::kOther;
  }
  return TaxBucket::kOther;
}

namespace {

TaxBreakdown fold_spans(const std::vector<const Span*>& spans, uint64_t trace_id) {
  TaxBreakdown out;
  const Span* root = nullptr;
  for (const Span* s : spans) {
    if (s->span_id == trace_id) {
      root = s;
      break;
    }
  }
  if (root == nullptr || spans.empty()) {
    return out;
  }
  const int64_t lo = root->t_start.ns();
  const int64_t hi = root->t_end.ns();
  out.total_ns = hi - lo;
  if (out.total_ns <= 0) {
    return out;
  }

  // Clip every span to the root interval; open spans extend to the root's end. Depth is the
  // distance to the root along the parent chain, resolved by memoized chain walks — a span
  // gathered from one rack's tracer may precede its parent from another rack's in `spans`,
  // so a single in-order pass would not do.
  std::unordered_map<uint64_t, const Span*> by_id;
  by_id.reserve(spans.size());
  for (const Span* s : spans) {
    by_id.emplace(s->span_id, s);
  }
  std::unordered_map<uint64_t, int> depth;
  depth.reserve(spans.size());
  const auto depth_of = [&](const Span* s) {
    int walked = 0;
    const Span* cur = s;
    // Walk up until a memoized ancestor, the root, or a parent outside this trace's span set
    // (treated as depth 0, matching the old behavior for unknown parents).
    int base = 0;
    for (;;) {
      const auto memo = depth.find(cur->span_id);
      if (memo != depth.end()) {
        base = memo->second;
        break;
      }
      if (cur->parent == 0) {
        break;
      }
      const auto pit = by_id.find(cur->parent);
      if (pit == by_id.end()) {
        ++walked;  // unknown parent counts as one hop above an (absent) depth-0 ancestor
        break;
      }
      cur = pit->second;
      ++walked;
    }
    const int d = base + walked;
    depth[s->span_id] = d;
    return d;
  };

  struct Clipped {
    int64_t lo;
    int64_t hi;
    int depth;
    uint64_t span_id;
    TaxBucket bucket;
  };
  std::vector<Clipped> clipped;
  clipped.reserve(spans.size());
  for (const Span* s : spans) {
    const int d = depth_of(s);
    const int64_t a = std::max(s->t_start.ns(), lo);
    const int64_t b = std::min(s->open ? hi : s->t_end.ns(), hi);
    if (a < b) {
      clipped.push_back(Clipped{a, b, d, s->span_id, tax_bucket_of(s->kind)});
    }
  }

  // Elementary-interval sweep: between consecutive boundaries the covering set is constant,
  // and the deepest covering span (ties -> later span id) owns the slice.
  std::vector<int64_t> bounds;
  bounds.reserve(clipped.size() * 2);
  for (const Clipped& c : clipped) {
    bounds.push_back(c.lo);
    bounds.push_back(c.hi);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    const int64_t a = bounds[i];
    const int64_t b = bounds[i + 1];
    const Clipped* best = nullptr;
    for (const Clipped& c : clipped) {
      if (c.lo <= a && c.hi >= b) {
        if (best == nullptr || c.depth > best->depth ||
            (c.depth == best->depth && c.span_id > best->span_id)) {
          best = &c;
        }
      }
    }
    FRACTOS_DCHECK(best != nullptr);  // the root covers everything
    out.ns[static_cast<size_t>(best->bucket)] += b - a;
  }
  return out;
}

}  // namespace

TaxBreakdown fold_tax(const SpanTracer& tracer, uint64_t trace_id) {
  return fold_spans(tracer.trace(trace_id), trace_id);
}

TaxBreakdown fold_tax(const std::vector<const SpanTracer*>& tracers, uint64_t trace_id) {
  std::vector<const Span*> spans;
  for (const SpanTracer* t : tracers) {
    if (t == nullptr) {
      continue;
    }
    const std::vector<const Span*> part = t->trace(trace_id);
    spans.insert(spans.end(), part.begin(), part.end());
  }
  return fold_spans(spans, trace_id);
}

std::string tax_table(const std::vector<std::pair<std::string, TaxBreakdown>>& rows) {
  std::string out;
  char buf[64];
  size_t label_w = 5;
  for (const auto& [label, bd] : rows) {
    label_w = std::max(label_w, label.size());
  }
  std::snprintf(buf, sizeof(buf), "%-*s", static_cast<int>(label_w), "label");
  out += buf;
  for (size_t b = 0; b < kNumTaxBuckets; ++b) {
    std::snprintf(buf, sizeof(buf), " %12s", tax_bucket_name(static_cast<TaxBucket>(b)));
    out += buf;
  }
  out += "        total\n";
  for (const auto& [label, bd] : rows) {
    std::snprintf(buf, sizeof(buf), "%-*s", static_cast<int>(label_w), label.c_str());
    out += buf;
    for (size_t b = 0; b < kNumTaxBuckets; ++b) {
      std::snprintf(buf, sizeof(buf), " %9.3f us", static_cast<double>(bd.ns[b]) / 1e3);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), " %9.3f us\n", static_cast<double>(bd.total_ns) / 1e3);
    out += buf;
  }
  return out;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

void append_us(std::string& out, int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000, ns % 1000);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const SpanTracer& tracer) {
  std::string out = "{\"traceEvents\":[";
  char buf[64];
  bool first = true;
  for (const Span& s : tracer.spans()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "\n{\"name\":";
    append_json_string(out, s.name());
    out += ",\"cat\":\"";
    out += span_kind_name(s.kind);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_us(out, s.t_start.ns());
    out += ",\"dur\":";
    append_us(out, (s.t_end - s.t_start).ns());
    std::snprintf(buf, sizeof(buf), ",\"pid\":%" PRIu64 ",\"tid\":", s.trace_id);
    out += buf;
    append_json_string(out, s.actor());
    out += ",\"args\":{";
    std::snprintf(buf, sizeof(buf), "\"span_id\":%" PRIu64 ",\"parent\":%" PRIu64, s.span_id,
                  s.parent);
    out += buf;
    if (s.error) {
      out += ",\"error\":";
      append_json_string(out, s.error_what);
    }
    for (const auto& [k, v] : s.attrs) {
      out += ',';
      append_json_string(out, k);
      out += ':';
      append_json_string(out, v);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace fractos
