// Lightweight event tracing for the simulated cluster.
//
// A tracer is attached to the EventLoop (everything in a System shares one); components emit
// (actor, event) pairs stamped with simulated time. Tracing is off by default and costs one
// branch per call site when disabled — call sites must guard any expensive formatting with
// tracing().
//
//   sys.loop().set_tracer(trace_to_stderr());
//   ...
//   loop->trace("ctrl-1", "invoke forwarded to ctrl-2");

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.h"

namespace fractos {

using TraceFn = std::function<void(Time when, std::string_view actor, std::string_view event)>;

// A tracer that prints "  [   12.345 us] actor: event" lines to stderr.
inline TraceFn trace_to_stderr() {
  return [](Time when, std::string_view actor, std::string_view event) {
    std::fprintf(stderr, "  [%10.3f us] %.*s: %.*s\n", when.to_us(),
                 static_cast<int>(actor.size()), actor.data(), static_cast<int>(event.size()),
                 event.data());
  };
}

// A tracer that records events for test assertions.
struct TraceRecorder {
  struct Entry {
    Time when;
    std::string actor;
    std::string event;
  };
  std::vector<Entry> entries;

  TraceFn fn() {
    return [this](Time when, std::string_view actor, std::string_view event) {
      entries.push_back(Entry{when, std::string(actor), std::string(event)});
    };
  }

  // With `actor` empty, matches any actor; otherwise only that actor's events count, so
  // controller-level assertions don't accidentally match another component's trace lines.
  bool contains(std::string_view needle, std::string_view actor = {}) const {
    for (const auto& e : entries) {
      if ((actor.empty() || e.actor == actor) && e.event.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
  size_t count(std::string_view needle, std::string_view actor = {}) const {
    size_t n = 0;
    for (const auto& e : entries) {
      if ((actor.empty() || e.actor == actor) && e.event.find(needle) != std::string::npos) {
        ++n;
      }
    }
    return n;
  }

  // Exact-event matches. contains/count above do *substring* matching, so a needle like
  // "invoke" also matches "invoke-reply" — assertions about a specific event must use these.
  bool contains_exact(std::string_view event, std::string_view actor = {}) const {
    for (const auto& e : entries) {
      if ((actor.empty() || e.actor == actor) && e.event == event) {
        return true;
      }
    }
    return false;
  }
  size_t count_exact(std::string_view event, std::string_view actor = {}) const {
    size_t n = 0;
    for (const auto& e : entries) {
      if ((actor.empty() || e.actor == actor) && e.event == event) {
        ++n;
      }
    }
    return n;
  }
};

}  // namespace fractos

#endif  // SRC_SIM_TRACE_H_
