// Deterministic discrete-event loop, optionally sharded across worker threads.
//
// Every latency in the FractOS reproduction — network hops, PCIe crossings, controller compute,
// device service times — is realized by scheduling a callback at a future simulated Time. Events
// with equal timestamps fire in submission order (a monotonically increasing sequence number
// breaks ties), which makes whole-cluster runs bit-for-bit reproducible.
//
// The scheduler is two-level (see DESIGN.md §4e): a bucketed timer wheel covers the near
// future (kNumBuckets buckets of 2^kBucketBits ns each — most fabric/device latencies land
// here at O(1) insert), and a binary heap holds everything beyond the wheel horizon. A bucket
// is sorted by (when, seq) only when the cursor reaches it, and heap events are merged into
// their bucket at the same point, so the exact global (when, seq) firing order of a single
// priority queue is preserved — that ordering is the bit-identical-results invariant every
// recorded bench number depends on. Callbacks are InlineFn (src/sim/inline_fn.h): no heap
// allocation per event for small captures, freelist-recycled blocks for large ones.
//
// Sharded mode (DESIGN.md §4j). enable_sharding() partitions the loop into one scheduler
// shard per worker (rack r maps to shard r % num_shards) and switches sequence numbers to
// per-rack namespaces packed into the seq integer: seq = (src_rack << kRackSeqBits) |
// rack_counter. The (when, seq) comparator then realizes the canonical global order
// (when, src_rack, rack_seq), which does not depend on the shard count — a 1-, 2-, or
// 8-shard run fires the same events with the same timestamps in the same per-rack order.
// Cross-rack work whose delivery time is at least lookahead() in the future is posted with
// post_remote(); run_parallel() executes shards on threads under conservative (Graphite-style
// lax) synchronization: every shard may advance to min-next-event + lookahead, cross-shard
// posts travel through phase-exclusive mailboxes drained at the window barrier, and mailbox
// events are ordered by their (when, seq) stamp — never by wall-clock arrival.

#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/assert.h"
#include "src/sim/inline_fn.h"
#include "src/sim/span.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace fractos {

class MetricsRegistry;

namespace internal_engine {
// Ambient rack of the code currently running: the destination rack of the firing event in
// sharded mode, or whatever the enclosing RackScope pinned on a non-event thread. Rack 0 by
// default, which keeps legacy (unsharded) mode oblivious to racks entirely.
inline thread_local uint32_t g_rack = 0;
// Index of the shard whose event is currently executing on this thread; -1 outside event
// execution (setup code, barrier completions, the driver thread between run calls).
inline thread_local int32_t g_shard = -1;
}  // namespace internal_engine

// Pins the ambient rack for code that schedules work from outside event execution (bench
// drivers issuing the initial closed-loop requests, test setup). Restores on destruction.
class RackScope {
 public:
  explicit RackScope(uint32_t rack) : saved_(internal_engine::g_rack) {
    internal_engine::g_rack = rack;
  }
  ~RackScope() { internal_engine::g_rack = saved_; }
  RackScope(const RackScope&) = delete;
  RackScope& operator=(const RackScope&) = delete;

 private:
  uint32_t saved_;
};

class EventLoop {
 public:
  using Callback = InlineFn;

  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Unsharded: the time of the last fired event. Sharded: the executing shard's local time
  // during event execution, else the maximum across shards (the time of the last event fired
  // anywhere — identical for every shard count because the canonical firing order is).
  Time now() const {
    if (!sharded_) {
      return shard0_->now;
    }
    const int32_t s = internal_engine::g_shard;
    return s >= 0 ? shards_[static_cast<size_t>(s)]->now : global_now();
  }

  // Schedules `cb` to run at absolute time `when` (clamped to now()) on the ambient rack.
  void schedule_at(Time when, Callback cb);

  // Schedules `cb` to run `delay` after now().
  void schedule_after(Duration delay, Callback cb);

  // Schedules `cb` to run at the current time, after already-pending same-time events.
  void post(Callback cb);

  // Runs events until the queue is empty or `max_steps` events have fired.
  // Returns the number of events processed.
  uint64_t run(uint64_t max_steps = UINT64_MAX);

  // Runs events until `pred()` holds (checked after every event) or the queue drains.
  // Returns true iff the predicate was satisfied. `pred` is invoked directly (no
  // std::function indirection), so hot soak loops pay one inlineable call per event.
  // In sharded mode this runs cooperatively on the calling thread (exact canonical order),
  // which is what System::await and all setup-phase code use.
  template <typename Pred>
  bool run_until(Pred&& pred, uint64_t max_steps = UINT64_MAX) {
    if (pred()) {
      return true;
    }
    uint64_t processed = 0;
    while (processed < max_steps && prepare_next()) {
      fire_next();
      ++processed;
      if (pred()) {
        return true;
      }
    }
    return false;
  }

  // Runs all events scheduled at or before `deadline`, then sets now() to `deadline` if the
  // simulation has not already advanced past it.
  void run_until_time(Time deadline);

  bool empty() const { return pending() == 0; }
  size_t pending() const {
    if (!sharded_) {
      return shard0_->pending;
    }
    size_t n = 0;
    for (const auto& sh : shards_) {
      n += sh->pending;
    }
    return n;
  }
  uint64_t steps() const {
    if (!sharded_) {
      return shard0_->steps;
    }
    uint64_t n = 0;
    for (const auto& sh : shards_) {
      n += sh->steps;
    }
    return n;
  }

  // --- sharding (DESIGN.md §4j) ---
  //
  // Must be called on a pristine loop (nothing scheduled or fired yet), before any component
  // is built on top of it. Racks are assigned to shards round-robin: shard_of_rack(r) =
  // r % num_shards. `lookahead` is the conservative window — post_remote() deliveries must be
  // at least this far in the future; Topology::min_cross_rack_latency() is the provably safe
  // value for fat-tree fabrics.
  void enable_sharding(uint32_t num_shards, uint32_t num_racks, Duration lookahead);
  bool sharded() const { return sharded_; }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t num_racks() const { return num_racks_; }
  uint32_t shard_of_rack(uint32_t rack) const {
    return rack % static_cast<uint32_t>(shards_.size());
  }
  Duration lookahead() const { return lookahead_; }
  static uint32_t current_rack() { return internal_engine::g_rack; }

  // Schedules `cb` at `when` on `dst_rack`. Requires when >= now() + lookahead() — that slack
  // is what makes the parallel window safe. The event is stamped with the *source* rack's
  // sequence namespace, so cross-shard deliveries merge in (when, src_rack, rack_seq) order
  // regardless of thread interleaving.
  void post_remote(uint32_t dst_rack, Time when, Callback cb);

  // Runs to quiescence with one worker thread per shard under conservative synchronization.
  // Requires sharded mode; with a single shard this degenerates to run(). Returns the number
  // of events processed. Every run with the same initial state fires the identical canonical
  // event sequence (per-rack state, metrics, spans, counters are run-to-run byte-stable);
  // only wall-clock timing varies with thread scheduling.
  uint64_t run_parallel();

  // Largest cross-shard mailbox depth observed at any window barrier (diagnostics).
  uint64_t mailbox_high_water() const { return mailbox_hwm_; }

  // True while run_parallel() is inside its multi-threaded region. Only mutated outside
  // that region, so reads from worker threads are race-free. Guards setup-time-only
  // operations (e.g. lazy Controller peer meshing) that must not mutate cross-rack state
  // from inside a window.
  bool parallel_active() const { return parallel_active_; }

  // --- tracing (see src/sim/trace.h) ---
  void set_tracer(TraceFn tracer) {
    FRACTOS_CHECK(!sharded_ || tracer == nullptr);  // TraceFn sinks are single-thread-only
    tracer_ = std::move(tracer);
  }
  bool tracing() const { return tracer_ != nullptr; }
  void trace(std::string_view actor, std::string_view event) {
    if (tracer_ != nullptr) {
      tracer_(now(), actor, event);
    }
  }

  // --- structured spans & metrics (see src/sim/span.h, src/sim/metrics.h) ---
  //
  // While any SpanTracer is alive, every scheduled Event captures the ambient SpanContext
  // and restores it when it fires, so trace context flows through timers and wire deliveries
  // for free. Neither hook ever schedules events or advances time: attaching a tracer or a
  // registry cannot shift a single simulated timestamp.
  //
  // Sharded mode uses per-rack arenas instead of the single pointers: attach one tracer /
  // registry per rack (set_rack_*) and the accessors resolve through the ambient rack, so
  // every component transparently records into its own rack's arena with no locks. Rack
  // placement of every record is shard-count-invariant, so merged snapshots are too.
  void set_span_tracer(SpanTracer* tracer) {
    FRACTOS_CHECK(!sharded_ || tracer == nullptr);
    span_tracer_ = tracer;
  }
  SpanTracer* span_tracer() const {
    if (!sharded_) {
      return span_tracer_;
    }
    return rack_tracers_[internal_engine::g_rack];
  }
  void set_metrics(MetricsRegistry* metrics) {
    FRACTOS_CHECK(!sharded_ || metrics == nullptr);
    metrics_ = metrics;
  }
  MetricsRegistry* metrics() const {
    if (!sharded_) {
      return metrics_;
    }
    return rack_metrics_[internal_engine::g_rack];
  }
  void set_rack_span_tracer(uint32_t rack, SpanTracer* tracer) {
    FRACTOS_CHECK(sharded_ && rack < num_racks_);
    rack_tracers_[rack] = tracer;
  }
  void set_rack_metrics(uint32_t rack, MetricsRegistry* metrics) {
    FRACTOS_CHECK(sharded_ && rack < num_racks_);
    rack_metrics_[rack] = metrics;
  }

 private:
  struct Event {
    Time when;
    uint64_t seq;
    uint32_t rack;  // destination rack: selects the shard and the ambient rack while firing
    Callback cb;
    SpanContext ctx;  // ambient span context at schedule time (empty when tracing is off)
  };

  // Wheel geometry: 2^kBucketBits ns per bucket, kNumBuckets buckets — a ~262 us horizon
  // with 128 ns buckets, which covers the fabric/device latency range of this simulation.
  // (Chosen empirically via bench_simspeed's timer soak: smaller buckets mean smaller
  // drain sorts; 2048 slots keep the horizon wide enough that device latencies stay O(1).)
  static constexpr int kBucketBits = 7;
  static constexpr int kWheelBits = 11;
  static constexpr uint64_t kNumBuckets = uint64_t{1} << kWheelBits;
  static constexpr uint64_t kWheelMask = kNumBuckets - 1;

  // Sharded seqs: low bits count events issued by a rack, high bits carry the source rack.
  // (when, seq) comparisons then order equal-time events by (src_rack, per-rack issue order),
  // a total order independent of both shard count and thread interleaving.
  static constexpr int kRackSeqBits = 40;

  // Backstop for runaway cross-shard fan-out. post_remote CHECK-fails instead of blocking —
  // a blocking bound could deadlock the window barrier.
  static constexpr size_t kMailboxCap = size_t{1} << 20;

  static uint64_t bucket_no(Time t) { return static_cast<uint64_t>(t.ns()) >> kBucketBits; }

  // One complete two-level scheduler: the unsharded loop is exactly shards_[0].
  struct Shard {
    // Near future: ring of append-only buckets. buckets[b & kWheelMask] holds events whose
    // bucket number is b, for b in [wheel_pos, wheel_pos + kNumBuckets). occupancy mirrors
    // which ring slots are non-empty so the cursor skips empty stretches word-at-a-time.
    std::vector<Event> buckets[kNumBuckets];
    uint64_t occupancy[kNumBuckets / 64] = {};
    uint64_t wheel_pos = 0;  // absolute bucket number the cursor is at
    size_t wheel_count = 0;  // events currently filed in buckets

    // Far future (beyond the wheel horizon): min-heap on (when, seq).
    std::vector<Event> heap;

    // The bucket being drained: sorted by (when, seq); drain_pos is the next unfired event.
    // Events scheduled into the current bucket mid-drain are inserted in order.
    std::vector<Event> drain;
    size_t drain_pos = 0;
    bool draining = false;

    size_t pending = 0;  // total unfired events across drain, buckets, and heap
    Time now;            // time of this shard's last fired event
    uint64_t steps = 0;

    // Files `ev` into the draining bucket, the wheel, or the far-future heap.
    void insert(Event&& ev);

    // Ensures drain[drain_pos] is this shard's next (when, seq) event; false iff no events
    // are pending. Advances the wheel cursor and merges due heap events, but never fires.
    bool prepare();

    const Event& peek() const { return drain[drain_pos]; }

    // Returns the absolute number of the first non-empty bucket at or after `pos` (ring
    // space). Only valid while wheel_count > 0.
    uint64_t next_occupied_bucket(uint64_t pos) const;
  };

  uint64_t make_seq(uint32_t src_rack) {
    if (!sharded_) {
      return next_seq_++;
    }
    FRACTOS_DCHECK(src_rack < num_racks_);
    return (uint64_t{src_rack} << kRackSeqBits) | rack_seq_[src_rack]++;
  }

  // Ensures the globally next (when, seq) event is staged (coop_shard_ points at its shard);
  // false iff no events are pending anywhere. Unsharded: exactly the legacy single-scheduler
  // path. Sharded: cooperative min-scan across shards — the canonical order for any count.
  bool prepare_next();

  // Fires the event staged by prepare_next().
  void fire_next();

  void fire_shard(Shard& sh, int32_t idx);
  Time global_now() const;
  void advance_window(uint32_t num_shards);

  std::vector<std::unique_ptr<Shard>> shards_;  // size 1 until enable_sharding
  Shard* shard0_ = nullptr;                     // cached shards_[0].get() for the hot path
  uint32_t coop_shard_ = 0;                     // shard staged by the last prepare_next()

  bool sharded_ = false;
  uint32_t num_racks_ = 1;
  Duration lookahead_;
  std::vector<uint64_t> rack_seq_;  // per-rack issue counters (sharded mode)
  std::vector<SpanTracer*> rack_tracers_;
  std::vector<MetricsRegistry*> rack_metrics_;

  // Parallel-run state. mail_[src_shard * S + dst_shard] is written only by src_shard's
  // worker during a window and drained only inside the barrier completion, so each slot is
  // single-producer/single-consumer with the barrier as the synchronization edge.
  bool parallel_active_ = false;
  bool par_done_ = false;
  Time par_horizon_;  // exclusive: a shard fires while peek().when < par_horizon_
  std::vector<std::vector<Event>> mail_;
  uint64_t mailbox_hwm_ = 0;

  TraceFn tracer_;
  SpanTracer* span_tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  uint64_t next_seq_ = 0;  // legacy (unsharded) global sequence counter
};

}  // namespace fractos

#endif  // SRC_SIM_EVENT_LOOP_H_
