// Deterministic discrete-event loop.
//
// Every latency in the FractOS reproduction — network hops, PCIe crossings, controller compute,
// device service times — is realized by scheduling a callback at a future simulated Time. Events
// with equal timestamps fire in submission order (a monotonically increasing sequence number
// breaks ties), which makes whole-cluster runs bit-for-bit reproducible.

#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/span.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace fractos {

class MetricsRegistry;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  // Schedules `cb` to run at absolute time `when` (clamped to now()).
  void schedule_at(Time when, Callback cb);

  // Schedules `cb` to run `delay` after now().
  void schedule_after(Duration delay, Callback cb);

  // Schedules `cb` to run at the current time, after already-pending same-time events.
  void post(Callback cb);

  // Runs events until the queue is empty or `max_steps` events have fired.
  // Returns the number of events processed.
  uint64_t run(uint64_t max_steps = UINT64_MAX);

  // Runs events until `pred()` holds (checked after every event) or the queue drains.
  // Returns true iff the predicate was satisfied.
  bool run_until(const std::function<bool()>& pred, uint64_t max_steps = UINT64_MAX);

  // Runs all events scheduled at or before `deadline`, then sets now() to `deadline` if the
  // simulation has not already advanced past it.
  void run_until_time(Time deadline);

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  uint64_t steps() const { return steps_; }

  // --- tracing (see src/sim/trace.h) ---
  void set_tracer(TraceFn tracer) { tracer_ = std::move(tracer); }
  bool tracing() const { return tracer_ != nullptr; }
  void trace(std::string_view actor, std::string_view event) {
    if (tracer_ != nullptr) {
      tracer_(now_, actor, event);
    }
  }

  // --- structured spans & metrics (see src/sim/span.h, src/sim/metrics.h) ---
  //
  // While any SpanTracer is alive, every scheduled Event captures the ambient SpanContext
  // and restores it when it fires, so trace context flows through timers and wire deliveries
  // for free. Neither hook ever schedules events or advances time: attaching a tracer or a
  // registry cannot shift a single simulated timestamp.
  void set_span_tracer(SpanTracer* tracer) { span_tracer_ = tracer; }
  SpanTracer* span_tracer() const { return span_tracer_; }
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  struct Event {
    Time when;
    uint64_t seq;
    Callback cb;
    SpanContext ctx;  // ambient span context at schedule time (empty when tracing is off)
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void fire_next();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TraceFn tracer_;
  SpanTracer* span_tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  Time now_;
  uint64_t next_seq_ = 0;
  uint64_t steps_ = 0;
};

}  // namespace fractos

#endif  // SRC_SIM_EVENT_LOOP_H_
