// Deterministic discrete-event loop.
//
// Every latency in the FractOS reproduction — network hops, PCIe crossings, controller compute,
// device service times — is realized by scheduling a callback at a future simulated Time. Events
// with equal timestamps fire in submission order (a monotonically increasing sequence number
// breaks ties), which makes whole-cluster runs bit-for-bit reproducible.
//
// The scheduler is two-level (see DESIGN.md §4e): a bucketed timer wheel covers the near
// future (kNumBuckets buckets of 2^kBucketBits ns each — most fabric/device latencies land
// here at O(1) insert), and a binary heap holds everything beyond the wheel horizon. A bucket
// is sorted by (when, seq) only when the cursor reaches it, and heap events are merged into
// their bucket at the same point, so the exact global (when, seq) firing order of a single
// priority queue is preserved — that ordering is the bit-identical-results invariant every
// recorded bench number depends on. Callbacks are InlineFn (src/sim/inline_fn.h): no heap
// allocation per event for small captures, freelist-recycled blocks for large ones.

#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <vector>

#include "src/sim/inline_fn.h"
#include "src/sim/span.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace fractos {

class MetricsRegistry;

class EventLoop {
 public:
  using Callback = InlineFn;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  // Schedules `cb` to run at absolute time `when` (clamped to now()).
  void schedule_at(Time when, Callback cb);

  // Schedules `cb` to run `delay` after now().
  void schedule_after(Duration delay, Callback cb);

  // Schedules `cb` to run at the current time, after already-pending same-time events.
  void post(Callback cb);

  // Runs events until the queue is empty or `max_steps` events have fired.
  // Returns the number of events processed.
  uint64_t run(uint64_t max_steps = UINT64_MAX);

  // Runs events until `pred()` holds (checked after every event) or the queue drains.
  // Returns true iff the predicate was satisfied. `pred` is invoked directly (no
  // std::function indirection), so hot soak loops pay one inlineable call per event.
  template <typename Pred>
  bool run_until(Pred&& pred, uint64_t max_steps = UINT64_MAX) {
    if (pred()) {
      return true;
    }
    uint64_t processed = 0;
    while (processed < max_steps && prepare_next()) {
      fire_next();
      ++processed;
      if (pred()) {
        return true;
      }
    }
    return false;
  }

  // Runs all events scheduled at or before `deadline`, then sets now() to `deadline` if the
  // simulation has not already advanced past it.
  void run_until_time(Time deadline);

  bool empty() const { return pending_ == 0; }
  size_t pending() const { return pending_; }
  uint64_t steps() const { return steps_; }

  // --- tracing (see src/sim/trace.h) ---
  void set_tracer(TraceFn tracer) { tracer_ = std::move(tracer); }
  bool tracing() const { return tracer_ != nullptr; }
  void trace(std::string_view actor, std::string_view event) {
    if (tracer_ != nullptr) {
      tracer_(now_, actor, event);
    }
  }

  // --- structured spans & metrics (see src/sim/span.h, src/sim/metrics.h) ---
  //
  // While any SpanTracer is alive, every scheduled Event captures the ambient SpanContext
  // and restores it when it fires, so trace context flows through timers and wire deliveries
  // for free. Neither hook ever schedules events or advances time: attaching a tracer or a
  // registry cannot shift a single simulated timestamp.
  void set_span_tracer(SpanTracer* tracer) { span_tracer_ = tracer; }
  SpanTracer* span_tracer() const { return span_tracer_; }
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  struct Event {
    Time when;
    uint64_t seq;
    Callback cb;
    SpanContext ctx;  // ambient span context at schedule time (empty when tracing is off)
  };

  // Wheel geometry: 2^kBucketBits ns per bucket, kNumBuckets buckets — a ~262 us horizon
  // with 128 ns buckets, which covers the fabric/device latency range of this simulation.
  // (Chosen empirically via bench_simspeed's timer soak: smaller buckets mean smaller
  // drain sorts; 2048 slots keep the horizon wide enough that device latencies stay O(1).)
  static constexpr int kBucketBits = 7;
  static constexpr int kWheelBits = 11;
  static constexpr uint64_t kNumBuckets = uint64_t{1} << kWheelBits;
  static constexpr uint64_t kWheelMask = kNumBuckets - 1;

  static uint64_t bucket_no(Time t) { return static_cast<uint64_t>(t.ns()) >> kBucketBits; }

  // Files `ev` into the draining bucket, the wheel, or the far-future heap.
  void insert(Event&& ev);

  // Ensures drain_[drain_pos_] is the globally next (when, seq) event; false iff no events
  // are pending. Advances the wheel cursor and merges due heap events, but never fires.
  bool prepare_next();

  // Fires drain_[drain_pos_]. Call only after prepare_next() returned true.
  void fire_next();

  // Returns the absolute number of the first non-empty bucket at or after `pos` (ring
  // space). Only valid while wheel_count_ > 0.
  uint64_t next_occupied_bucket(uint64_t pos) const;

  // Near future: ring of append-only buckets. buckets_[b & kWheelMask] holds events whose
  // bucket number is b, for b in [wheel_pos_, wheel_pos_ + kNumBuckets). occupancy_ mirrors
  // which ring slots are non-empty so the cursor skips empty stretches word-at-a-time.
  std::vector<Event> buckets_[kNumBuckets];
  uint64_t occupancy_[kNumBuckets / 64] = {};
  uint64_t wheel_pos_ = 0;   // absolute bucket number the cursor is at
  size_t wheel_count_ = 0;   // events currently filed in buckets_

  // Far future (beyond the wheel horizon): min-heap on (when, seq).
  std::vector<Event> heap_;

  // The bucket being drained: sorted by (when, seq); drain_pos_ is the next unfired event.
  // Events scheduled into the current bucket mid-drain are inserted in order.
  std::vector<Event> drain_;
  size_t drain_pos_ = 0;
  bool draining_ = false;

  size_t pending_ = 0;  // total unfired events across drain_, buckets_, and heap_

  TraceFn tracer_;
  SpanTracer* span_tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  Time now_;
  uint64_t next_seq_ = 0;
  uint64_t steps_ = 0;
};

}  // namespace fractos

#endif  // SRC_SIM_EVENT_LOOP_H_
