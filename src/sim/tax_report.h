// Disaggregation-tax attribution: folds one trace's span forest into per-request latency
// buckets (the paper's Figures 8-10 attribute each request's latency to fabric hops,
// controller work, and device time — this reproduces that breakdown from our own spans).
//
// Attribution is an interval sweep over the root span's [t_start, t_end): at every instant
// the *deepest* covering span wins (ties break toward the later-created span), and its kind
// maps to a bucket. Because every instant of the root interval is assigned to exactly one
// bucket, the per-bucket sums add up to the end-to-end latency by construction — the bench
// asserts this for every request.

#ifndef SRC_SIM_TAX_REPORT_H_
#define SRC_SIM_TAX_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/span.h"

namespace fractos {

enum class TaxBucket : uint8_t {
  kFabric = 0,       // wire transfers
  kController = 1,   // controller handler compute
  kTranslation = 2,  // capability serialization / request translation
  kQueue = 3,        // waiting on busy cores, device channels, slot pools
  kDevice = 4,       // device service time
  kOther = 5,        // everything else (process-side logic, protocol gaps)
  kFabricQueue = 6,  // per-hop head-of-line wait in switch egress queues (congestion)
  kReplication = 7,  // control-plane replication (commit waits, elections)
  kFarMem = 8,       // far-memory fault handling (demand fetch / prefetch-wait turnaround)
};
inline constexpr size_t kNumTaxBuckets = 9;

const char* tax_bucket_name(TaxBucket b);
TaxBucket tax_bucket_of(SpanKind kind);

struct TaxBreakdown {
  int64_t ns[kNumTaxBuckets] = {};
  int64_t total_ns = 0;  // root span duration

  int64_t sum_ns() const {
    int64_t s = 0;
    for (size_t i = 0; i < kNumTaxBuckets; ++i) {
      s += ns[i];
    }
    return s;
  }
  TaxBreakdown& operator+=(const TaxBreakdown& o) {
    for (size_t i = 0; i < kNumTaxBuckets; ++i) {
      ns[i] += o.ns[i];
    }
    total_ns += o.total_ns;
    return *this;
  }
};

// Attributes trace `trace_id`'s root interval across buckets. Open spans are treated as
// extending to the root's end. Returns a zero breakdown if the trace does not exist.
TaxBreakdown fold_tax(const SpanTracer& tracer, uint64_t trace_id);

// Multi-tracer fold for sharded runs (DESIGN.md §4j): a trace whose spans landed on several
// racks' tracers is folded across all of them. Pass tracers in rack order for a deterministic
// result; spans are matched by trace id, which is globally unique across rack namespaces.
TaxBreakdown fold_tax(const std::vector<const SpanTracer*>& tracers, uint64_t trace_id);

// Renders labeled breakdowns as an aligned text table (one row per label, microseconds).
std::string tax_table(const std::vector<std::pair<std::string, TaxBreakdown>>& rows);

// Serializes every span as Chrome trace_event JSON ("ph":"X" complete events; ts/dur in
// microseconds; pid = trace id, tid = actor) — loadable in chrome://tracing / Perfetto.
std::string chrome_trace_json(const SpanTracer& tracer);

}  // namespace fractos

#endif  // SRC_SIM_TAX_REPORT_H_
