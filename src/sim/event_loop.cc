#include "src/sim/event_loop.h"

#include <utility>

#include "src/base/assert.h"

namespace fractos {

void EventLoop::schedule_at(Time when, Callback cb) {
  FRACTOS_DCHECK(cb != nullptr);
  if (when < now_) {
    when = now_;
  }
  Event ev{when, next_seq_++, std::move(cb), SpanContext{}};
  if (span_tracing_active()) {
    ev.ctx = ambient_span_context();
  }
  queue_.push(std::move(ev));
}

void EventLoop::schedule_after(Duration delay, Callback cb) {
  FRACTOS_DCHECK(delay >= Duration::zero());
  schedule_at(now_ + delay, std::move(cb));
}

void EventLoop::post(Callback cb) { schedule_at(now_, std::move(cb)); }

void EventLoop::fire_next() {
  // The event must be moved out before running: the callback may schedule new events and
  // reallocate the queue's storage.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  FRACTOS_DCHECK(ev.when >= now_);
  now_ = ev.when;
  ++steps_;
  if (span_tracing_active()) {
    SpanScope scope(ev.ctx);
    ev.cb();
  } else {
    ev.cb();
  }
}

uint64_t EventLoop::run(uint64_t max_steps) {
  uint64_t processed = 0;
  while (!queue_.empty() && processed < max_steps) {
    fire_next();
    ++processed;
  }
  return processed;
}

bool EventLoop::run_until(const std::function<bool()>& pred, uint64_t max_steps) {
  if (pred()) {
    return true;
  }
  uint64_t processed = 0;
  while (!queue_.empty() && processed < max_steps) {
    fire_next();
    ++processed;
    if (pred()) {
      return true;
    }
  }
  return false;
}

void EventLoop::run_until_time(Time deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    fire_next();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace fractos
