#include "src/sim/event_loop.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <utility>

#include "src/base/assert.h"

namespace fractos {

void EventLoop::schedule_at(Time when, Callback cb) {
  FRACTOS_DCHECK(static_cast<bool>(cb));
  if (when < now_) {
    when = now_;
  }
  Event ev{when, next_seq_++, std::move(cb), SpanContext{}};
  if (span_tracing_active()) {
    ev.ctx = ambient_span_context();
  }
  insert(std::move(ev));
}

void EventLoop::schedule_after(Duration delay, Callback cb) {
  FRACTOS_DCHECK(delay >= Duration::zero());
  schedule_at(now_ + delay, std::move(cb));
}

void EventLoop::post(Callback cb) { schedule_at(now_, std::move(cb)); }

void EventLoop::insert(Event&& ev) {
  ++pending_;
  const uint64_t b = bucket_no(ev.when);
  if (draining_ && b <= wheel_pos_) {
    // The event lands in the bucket currently being drained (or an already-scanned empty
    // one): splice it into the unfired remainder at its exact (when, seq) position. Its seq
    // is the largest issued so far, so it goes after every remaining equal-when event —
    // identical to what a global priority queue would do.
    if (drain_pos_ > 64 && drain_pos_ * 2 > drain_.size()) {
      // A long-draining bucket (e.g. the cursor parked on a far-future event while near-time
      // work churns through here) would otherwise accumulate fired slots without bound.
      drain_.erase(drain_.begin(), drain_.begin() + static_cast<ptrdiff_t>(drain_pos_));
      drain_pos_ = 0;
    }
    const auto it =
        std::upper_bound(drain_.begin() + static_cast<ptrdiff_t>(drain_pos_), drain_.end(),
                         ev.when, [](Time when, const Event& e) { return when < e.when; });
    drain_.insert(it, std::move(ev));
    return;
  }
  if (b < wheel_pos_ + kNumBuckets) {
    std::vector<Event>& bucket = buckets_[b & kWheelMask];
    if (bucket.empty()) {
      occupancy_[(b & kWheelMask) >> 6] |= uint64_t{1} << (b & 63);
    }
    bucket.push_back(std::move(ev));
    ++wheel_count_;
  } else {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), [](const Event& a, const Event& b2) {
      return a.when != b2.when ? a.when > b2.when : a.seq > b2.seq;
    });
  }
}

uint64_t EventLoop::next_occupied_bucket(uint64_t pos) const {
  const uint64_t start = pos & kWheelMask;
  uint64_t word_i = start >> 6;
  uint64_t w = occupancy_[word_i] & (~uint64_t{0} << (start & 63));
  for (uint64_t n = 0; n <= kNumBuckets / 64; ++n) {
    if (w != 0) {
      const uint64_t idx = (word_i << 6) + static_cast<uint64_t>(std::countr_zero(w));
      return pos + ((idx - start) & kWheelMask);
    }
    word_i = (word_i + 1) & (kNumBuckets / 64 - 1);
    w = occupancy_[word_i];
  }
  FRACTOS_CHECK(false);  // unreachable: wheel_count_ > 0 guarantees an occupied bucket
  return pos;
}

bool EventLoop::prepare_next() {
  if (drain_pos_ < drain_.size()) {
    return true;
  }
  if (draining_) {
    drain_.clear();
    drain_pos_ = 0;
    draining_ = false;
  }
  if (pending_ == 0) {
    return false;
  }

  // The next bucket to drain: the nearest non-empty wheel bucket, unless the heap's minimum
  // is due sooner (possible after the cursor advanced past a heap event's bucket, or when
  // the wheel is empty and the cursor must jump — the re-base case).
  uint64_t b = UINT64_MAX;
  if (wheel_count_ > 0) {
    b = next_occupied_bucket(wheel_pos_);
  }
  if (!heap_.empty()) {
    const uint64_t heap_b = bucket_no(heap_.front().when);
    if (heap_b < b) {
      b = heap_b;
    }
  }
  wheel_pos_ = b;

  // Load the bucket (swap keeps the retired drain vector's capacity warm inside the ring),
  // merge in every heap event due in it, and establish the exact firing order once.
  std::vector<Event>& bucket = buckets_[b & kWheelMask];
  occupancy_[(b & kWheelMask) >> 6] &= ~(uint64_t{1} << (b & 63));
  drain_.swap(bucket);
  wheel_count_ -= drain_.size();
  const auto later = [](const Event& a, const Event& b2) {
    return a.when != b2.when ? a.when > b2.when : a.seq > b2.seq;
  };
  while (!heap_.empty() && bucket_no(heap_.front().when) <= b) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    drain_.push_back(std::move(heap_.back()));
    heap_.pop_back();
  }
  std::sort(drain_.begin(), drain_.end(), [](const Event& a, const Event& b2) {
    return a.when != b2.when ? a.when < b2.when : a.seq < b2.seq;
  });
  drain_pos_ = 0;
  draining_ = true;
  return true;
}

void EventLoop::fire_next() {
  // The event must be moved out before running: the callback may schedule into the current
  // bucket and reallocate drain_'s storage.
  Event ev = std::move(drain_[drain_pos_]);
  ++drain_pos_;
  --pending_;
  FRACTOS_DCHECK(ev.when >= now_);
  now_ = ev.when;
  ++steps_;
  if (span_tracing_active()) {
    SpanScope scope(ev.ctx);
    ev.cb();
  } else {
    ev.cb();
  }
}

uint64_t EventLoop::run(uint64_t max_steps) {
  uint64_t processed = 0;
  while (processed < max_steps && prepare_next()) {
    fire_next();
    ++processed;
  }
  return processed;
}

void EventLoop::run_until_time(Time deadline) {
  while (prepare_next() && drain_[drain_pos_].when <= deadline) {
    fire_next();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace fractos
