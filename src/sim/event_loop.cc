#include "src/sim/event_loop.h"

#include <algorithm>
#include <barrier>
#include <bit>
#include <cstddef>
#include <thread>
#include <utility>

#include "src/base/assert.h"

namespace fractos {

EventLoop::EventLoop() {
  shards_.push_back(std::make_unique<Shard>());
  shard0_ = shards_[0].get();
}

void EventLoop::schedule_at(Time when, Callback cb) {
  FRACTOS_DCHECK(static_cast<bool>(cb));
  if (!sharded_) {
    Shard& sh = *shard0_;
    if (when < sh.now) {
      when = sh.now;
    }
    Event ev{when, next_seq_++, 0, std::move(cb), SpanContext{}};
    if (span_tracing_active()) {
      ev.ctx = ambient_span_context();
    }
    sh.insert(std::move(ev));
    return;
  }
  const uint32_t rack = internal_engine::g_rack;
  FRACTOS_DCHECK(rack < num_racks_);
  Shard& sh = *shards_[shard_of_rack(rack)];
  // During event execution the ambient rack always lives on the executing shard, so this
  // insert is thread-local; outside event execution (setup, RackScope'd drivers) no worker
  // threads are running.
  FRACTOS_DCHECK(internal_engine::g_shard < 0 ||
                 shards_[static_cast<size_t>(internal_engine::g_shard)].get() == &sh);
  const Time now = this->now();
  if (when < now) {
    when = now;
  }
  Event ev{when, make_seq(rack), rack, std::move(cb), SpanContext{}};
  if (span_tracing_active()) {
    ev.ctx = ambient_span_context();
  }
  sh.insert(std::move(ev));
}

void EventLoop::schedule_after(Duration delay, Callback cb) {
  FRACTOS_DCHECK(delay >= Duration::zero());
  schedule_at(now() + delay, std::move(cb));
}

void EventLoop::post(Callback cb) { schedule_at(now(), std::move(cb)); }

void EventLoop::Shard::insert(Event&& ev) {
  ++pending;
  const uint64_t b = bucket_no(ev.when);
  if (draining && b <= wheel_pos) {
    // The event lands in the bucket currently being drained (or an already-scanned empty
    // one): splice it into the unfired remainder at its exact (when, seq) position. New
    // events are always ordered after the event currently firing (their when is clamped to
    // shard now, and a fresh seq in any rack namespace beats only *later* stamps), so the
    // splice point is never before drain_pos. Unsharded, the fresh seq is the global maximum
    // and lands after every remaining equal-when event — identical to what a single global
    // priority queue would do. Sharded, mailbox deliveries and other-rack stamps may order
    // *between* remaining events, which the (when, seq) upper_bound handles.
    if (drain_pos > 64 && drain_pos * 2 > drain.size()) {
      // A long-draining bucket (e.g. the cursor parked on a far-future event while near-time
      // work churns through here) would otherwise accumulate fired slots without bound.
      drain.erase(drain.begin(), drain.begin() + static_cast<ptrdiff_t>(drain_pos));
      drain_pos = 0;
    }
    const auto it = std::upper_bound(
        drain.begin() + static_cast<ptrdiff_t>(drain_pos), drain.end(), ev,
        [](const Event& a, const Event& e) {
          return a.when != e.when ? a.when < e.when : a.seq < e.seq;
        });
    drain.insert(it, std::move(ev));
    return;
  }
  if (b < wheel_pos + kNumBuckets) {
    std::vector<Event>& bucket = buckets[b & kWheelMask];
    if (bucket.empty()) {
      occupancy[(b & kWheelMask) >> 6] |= uint64_t{1} << (b & 63);
    }
    bucket.push_back(std::move(ev));
    ++wheel_count;
  } else {
    heap.push_back(std::move(ev));
    std::push_heap(heap.begin(), heap.end(), [](const Event& a, const Event& b2) {
      return a.when != b2.when ? a.when > b2.when : a.seq > b2.seq;
    });
  }
}

uint64_t EventLoop::Shard::next_occupied_bucket(uint64_t pos) const {
  const uint64_t start = pos & kWheelMask;
  uint64_t word_i = start >> 6;
  uint64_t w = occupancy[word_i] & (~uint64_t{0} << (start & 63));
  for (uint64_t n = 0; n <= kNumBuckets / 64; ++n) {
    if (w != 0) {
      const uint64_t idx = (word_i << 6) + static_cast<uint64_t>(std::countr_zero(w));
      return pos + ((idx - start) & kWheelMask);
    }
    word_i = (word_i + 1) & (kNumBuckets / 64 - 1);
    w = occupancy[word_i];
  }
  FRACTOS_CHECK(false);  // unreachable: wheel_count > 0 guarantees an occupied bucket
  return pos;
}

bool EventLoop::Shard::prepare() {
  if (drain_pos < drain.size()) {
    return true;
  }
  if (draining) {
    drain.clear();
    drain_pos = 0;
    draining = false;
  }
  if (pending == 0) {
    return false;
  }

  // The next bucket to drain: the nearest non-empty wheel bucket, unless the heap's minimum
  // is due sooner (possible after the cursor advanced past a heap event's bucket, or when
  // the wheel is empty and the cursor must jump — the re-base case).
  uint64_t b = UINT64_MAX;
  if (wheel_count > 0) {
    b = next_occupied_bucket(wheel_pos);
  }
  if (!heap.empty()) {
    const uint64_t heap_b = bucket_no(heap.front().when);
    if (heap_b < b) {
      b = heap_b;
    }
  }
  wheel_pos = b;

  // Load the bucket (swap keeps the retired drain vector's capacity warm inside the ring),
  // merge in every heap event due in it, and establish the exact firing order once.
  std::vector<Event>& bucket = buckets[b & kWheelMask];
  occupancy[(b & kWheelMask) >> 6] &= ~(uint64_t{1} << (b & 63));
  drain.swap(bucket);
  wheel_count -= drain.size();
  const auto later = [](const Event& a, const Event& b2) {
    return a.when != b2.when ? a.when > b2.when : a.seq > b2.seq;
  };
  while (!heap.empty() && bucket_no(heap.front().when) <= b) {
    std::pop_heap(heap.begin(), heap.end(), later);
    drain.push_back(std::move(heap.back()));
    heap.pop_back();
  }
  std::sort(drain.begin(), drain.end(), [](const Event& a, const Event& b2) {
    return a.when != b2.when ? a.when < b2.when : a.seq < b2.seq;
  });
  drain_pos = 0;
  draining = true;
  return true;
}

bool EventLoop::prepare_next() {
  if (!sharded_) {
    coop_shard_ = 0;
    return shard0_->prepare();
  }
  FRACTOS_CHECK(!parallel_active_);  // cooperative stepping is main-thread-only
  // Cooperative min-scan: stage the global (when, seq) minimum across shards. Because seqs
  // carry (src_rack, rack_seq), this is the canonical order — the same for any shard count.
  int best = -1;
  Time best_when;
  uint64_t best_seq = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    if (!sh.prepare()) {
      continue;
    }
    const Event& e = sh.peek();
    if (best < 0 || e.when < best_when || (e.when == best_when && e.seq < best_seq)) {
      best = static_cast<int>(i);
      best_when = e.when;
      best_seq = e.seq;
    }
  }
  if (best < 0) {
    return false;
  }
  coop_shard_ = static_cast<uint32_t>(best);
  return true;
}

void EventLoop::fire_shard(Shard& sh, int32_t idx) {
  // The event must be moved out before running: the callback may schedule into the current
  // bucket and reallocate drain's storage.
  Event ev = std::move(sh.drain[sh.drain_pos]);
  ++sh.drain_pos;
  --sh.pending;
  FRACTOS_DCHECK(ev.when >= sh.now);
  sh.now = ev.when;
  ++sh.steps;
  if (sharded_) {
    internal_engine::g_shard = idx;
    internal_engine::g_rack = ev.rack;
  }
  if (span_tracing_active()) {
    SpanScope scope(ev.ctx);
    ev.cb();
  } else {
    ev.cb();
  }
  if (sharded_) {
    internal_engine::g_shard = -1;
  }
}

void EventLoop::fire_next() {
  fire_shard(*shards_[coop_shard_], static_cast<int32_t>(coop_shard_));
}

uint64_t EventLoop::run(uint64_t max_steps) {
  uint64_t processed = 0;
  while (processed < max_steps && prepare_next()) {
    fire_next();
    ++processed;
  }
  return processed;
}

void EventLoop::run_until_time(Time deadline) {
  while (prepare_next() && shards_[coop_shard_]->peek().when <= deadline) {
    fire_next();
  }
  for (auto& sh : shards_) {
    if (sh->now < deadline) {
      sh->now = deadline;
    }
  }
}

Time EventLoop::global_now() const {
  Time t = shards_[0]->now;
  for (size_t i = 1; i < shards_.size(); ++i) {
    if (shards_[i]->now > t) {
      t = shards_[i]->now;
    }
  }
  return t;
}

void EventLoop::enable_sharding(uint32_t num_shards, uint32_t num_racks, Duration lookahead) {
  FRACTOS_CHECK(!sharded_);
  FRACTOS_CHECK(num_shards >= 1);
  FRACTOS_CHECK(num_racks >= num_shards);
  FRACTOS_CHECK(num_racks < (uint32_t{1} << (64 - kRackSeqBits)));
  FRACTOS_CHECK(lookahead > Duration::zero());
  // Only a pristine loop may be sharded: already-issued legacy seqs would not interleave
  // deterministically with rack-namespaced ones.
  FRACTOS_CHECK(shard0_->pending == 0 && shard0_->steps == 0 && next_seq_ == 0);
  FRACTOS_CHECK(tracer_ == nullptr);       // TraceFn tracing is single-thread-only
  FRACTOS_CHECK(span_tracer_ == nullptr);  // use set_rack_span_tracer instead
  FRACTOS_CHECK(metrics_ == nullptr);      // use set_rack_metrics instead
  sharded_ = true;
  num_racks_ = num_racks;
  lookahead_ = lookahead;
  rack_seq_.assign(num_racks, 0);
  rack_tracers_.assign(num_racks, nullptr);
  rack_metrics_.assign(num_racks, nullptr);
  for (uint32_t i = 1; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void EventLoop::post_remote(uint32_t dst_rack, Time when, Callback cb) {
  FRACTOS_CHECK(sharded_);
  FRACTOS_DCHECK(dst_rack < num_racks_);
  // The conservative-synchronization contract: a delivery closer than lookahead could land
  // inside a window another shard has already executed past.
  FRACTOS_CHECK(when >= now() + lookahead_);
  const uint32_t src_rack = internal_engine::g_rack;
  Event ev{when, make_seq(src_rack), dst_rack, std::move(cb), SpanContext{}};
  if (span_tracing_active()) {
    ev.ctx = ambient_span_context();
  }
  const uint32_t dst_shard = shard_of_rack(dst_rack);
  const int32_t src_shard = internal_engine::g_shard;
  if (parallel_active_ && src_shard >= 0 &&
      static_cast<uint32_t>(src_shard) != dst_shard) {
    std::vector<Event>& q =
        mail_[static_cast<size_t>(src_shard) * shards_.size() + dst_shard];
    FRACTOS_CHECK_MSG(q.size() < kMailboxCap, "cross-shard mailbox overflow");
    q.push_back(std::move(ev));
  } else {
    shards_[dst_shard]->insert(std::move(ev));
  }
}

void EventLoop::advance_window(uint32_t num_shards) {
  // Runs inside the barrier completion: exactly one thread, all workers parked. Drain every
  // mailbox into its destination shard — insertion order across source shards is irrelevant
  // because buckets sort and the heap pops by the globally unique (when, seq) stamp.
  for (uint32_t src = 0; src < num_shards; ++src) {
    for (uint32_t dst = 0; dst < num_shards; ++dst) {
      std::vector<Event>& q = mail_[static_cast<size_t>(src) * num_shards + dst];
      if (q.size() > mailbox_hwm_) {
        mailbox_hwm_ = q.size();
      }
      for (Event& ev : q) {
        shards_[dst]->insert(std::move(ev));
      }
      q.clear();
    }
  }
  bool any = false;
  Time t_min;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    if (!sh.prepare()) {
      continue;
    }
    const Time t = sh.peek().when;
    if (!any || t < t_min) {
      any = true;
      t_min = t;
    }
  }
  if (!any) {
    par_done_ = true;  // every shard drained and every mailbox empty: quiescent
    return;
  }
  // The shard holding t_min always has work strictly below the horizon (lookahead > 0), so
  // every window fires at least one event — the loop cannot stall.
  par_horizon_ = t_min + lookahead_;
}

uint64_t EventLoop::run_parallel() {
  FRACTOS_CHECK(sharded_);
  FRACTOS_CHECK(!parallel_active_);
  FRACTOS_CHECK(tracer_ == nullptr);
  const uint64_t start_steps = steps();
  const uint32_t S = static_cast<uint32_t>(shards_.size());
  if (S == 1) {
    run();
    return steps() - start_steps;
  }
  mail_.clear();
  mail_.resize(static_cast<size_t>(S) * S);
  par_done_ = false;
  parallel_active_ = true;

  auto on_window = [this, S]() noexcept { advance_window(S); };
  std::barrier<decltype(on_window)> window(static_cast<ptrdiff_t>(S), on_window);
  auto worker = [this, &window](uint32_t s) {
    Shard& sh = *shards_[s];
    for (;;) {
      // The completion (mailbox drain + horizon computation) runs between every arrival and
      // release, so reads of par_done_/par_horizon_ below are ordered after it.
      window.arrive_and_wait();
      if (par_done_) {
        return;
      }
      while (sh.prepare() && sh.peek().when < par_horizon_) {
        fire_shard(sh, static_cast<int32_t>(s));
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(S - 1);
  for (uint32_t s = 1; s < S; ++s) {
    threads.emplace_back(worker, s);
  }
  worker(0);
  for (auto& t : threads) {
    t.join();
  }
  parallel_active_ = false;
  return steps() - start_steps;
}

}  // namespace fractos
