// Error handling for FractOS: no exceptions on OS paths. Operations return Result<T>, which
// carries either a value or an ErrorCode. ErrorCode values mirror the failure classes of the
// FractOS syscall surface (Table 1 of the paper) plus transport-level failures.

#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <cstdint>
#include <utility>
#include <variant>

#include "src/base/assert.h"

namespace fractos {

enum class ErrorCode : uint8_t {
  kOk = 0,
  // Capability-layer failures.
  kInvalidCapability,   // cid does not name a live entry in the caller's capability space
  kRevoked,             // target object has been invalidated at its owner Controller
  kStaleCapability,     // Controller reboot counter mismatch (owner failed and restarted)
  kPermissionDenied,    // operation requires rights the capability does not carry
  kWrongObjectKind,     // e.g. request_invoke on a Memory capability
  // Argument failures.
  kInvalidArgument,
  kOutOfRange,          // offset/size outside a Memory object's extents
  kArgumentOverlap,     // Request refinement writes an already-initialized immediate extent
  kNotFound,
  kAlreadyExists,
  // Resource / transport failures.
  kResourceExhausted,   // quota (cap space, memory, volumes) exceeded
  kBackpressure,        // congestion window full and queueing disabled
  kChannelClosed,       // peer Process or Controller is gone
  kTimeout,
  kAborted,             // operation cancelled by failure translation
  kBrokenPromise,       // every Promise for a Future died without delivering a value
  kUnimplemented,
  kInternal,
  kNotLeader,            // replicated seat: this controller cannot serve mutations right now
  kOverloaded,           // admission control shed the request before any work was done
};

// Human-readable name, for logs and test diagnostics.
const char* error_code_name(ErrorCode code);

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "kOk";
    case ErrorCode::kInvalidCapability: return "kInvalidCapability";
    case ErrorCode::kRevoked: return "kRevoked";
    case ErrorCode::kStaleCapability: return "kStaleCapability";
    case ErrorCode::kPermissionDenied: return "kPermissionDenied";
    case ErrorCode::kWrongObjectKind: return "kWrongObjectKind";
    case ErrorCode::kInvalidArgument: return "kInvalidArgument";
    case ErrorCode::kOutOfRange: return "kOutOfRange";
    case ErrorCode::kArgumentOverlap: return "kArgumentOverlap";
    case ErrorCode::kNotFound: return "kNotFound";
    case ErrorCode::kAlreadyExists: return "kAlreadyExists";
    case ErrorCode::kResourceExhausted: return "kResourceExhausted";
    case ErrorCode::kBackpressure: return "kBackpressure";
    case ErrorCode::kChannelClosed: return "kChannelClosed";
    case ErrorCode::kTimeout: return "kTimeout";
    case ErrorCode::kAborted: return "kAborted";
    case ErrorCode::kBrokenPromise: return "kBrokenPromise";
    case ErrorCode::kUnimplemented: return "kUnimplemented";
    case ErrorCode::kInternal: return "kInternal";
    case ErrorCode::kNotLeader: return "kNotLeader";
    case ErrorCode::kOverloaded: return "kOverloaded";
  }
  return "unknown";
}

// Result<T>: holds a T on success or an ErrorCode on failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}                      // NOLINT(runtime/explicit)
  Result(ErrorCode error) : repr_(error) {                          // NOLINT(runtime/explicit)
    FRACTOS_DCHECK(error != ErrorCode::kOk);
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }
  ErrorCode error() const { return ok() ? ErrorCode::kOk : std::get<ErrorCode>(repr_); }

  T& value() & {
    FRACTOS_CHECK_MSG(ok(), error_code_name(error()));
    return std::get<T>(repr_);
  }
  const T& value() const& {
    FRACTOS_CHECK_MSG(ok(), error_code_name(error()));
    return std::get<T>(repr_);
  }
  T&& value() && {
    FRACTOS_CHECK_MSG(ok(), error_code_name(error()));
    return std::get<T>(std::move(repr_));
  }
  T value_or(T fallback) const { return ok() ? std::get<T>(repr_) : std::move(fallback); }

 private:
  std::variant<T, ErrorCode> repr_;
};

// Result<void>: success/failure with no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : error_(ErrorCode::kOk) {}
  Result(ErrorCode error) : error_(error) {}  // NOLINT(runtime/explicit)

  bool ok() const { return error_ == ErrorCode::kOk; }
  ErrorCode error() const { return error_; }

 private:
  ErrorCode error_;
};

using Status = Result<void>;

inline Status ok_status() { return Status(); }

}  // namespace fractos

#endif  // SRC_BASE_RESULT_H_
