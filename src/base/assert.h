// Lightweight run-time check macros used across FractOS.
//
// FRACTOS_CHECK is always on: it guards invariants whose violation means memory corruption or a
// protocol bug that must never be shipped past. FRACTOS_DCHECK compiles out in NDEBUG builds.

#ifndef SRC_BASE_ASSERT_H_
#define SRC_BASE_ASSERT_H_

#include <cstdio>
#include <cstdlib>

#define FRACTOS_CHECK(cond)                                                          \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "FRACTOS_CHECK failed: %s at %s:%d\n", #cond, __FILE__,   \
                   __LINE__);                                                        \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define FRACTOS_CHECK_MSG(cond, msg)                                                 \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "FRACTOS_CHECK failed: %s (%s) at %s:%d\n", #cond, (msg), \
                   __FILE__, __LINE__);                                              \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#ifdef NDEBUG
#define FRACTOS_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define FRACTOS_DCHECK(cond) FRACTOS_CHECK(cond)
#endif

#endif  // SRC_BASE_ASSERT_H_
