// Simulated GPU device (the K80 stand-in).
//
// The GPU owns a device-memory pool on its node — registered with the fabric, so RDMA can
// land directly in GPU memory (the GPUDirect-RDMA path the paper's single-transfer data path
// relies on). Kernels are registered C++ functors that REALLY execute over the pool bytes
// (integration tests verify end-to-end data, not just timing) and return their modeled
// compute duration; the engine serializes launches like a single CUDA stream.
//
// Timing model: launch overhead (driver + doorbell) + kernel compute, FIFO on the engine.

#ifndef SRC_DEVICES_GPU_H_
#define SRC_DEVICES_GPU_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/fabric/network.h"

namespace fractos {

class SimGpu {
 public:
  struct Params {
    uint64_t memory_bytes = 256ull << 20;
    // Kernel-launch overhead on the device side (driver processing, doorbell, scheduling).
    Duration launch_overhead = Duration::micros(8.0);
  };

  // A kernel executes over the device pool and returns its compute duration.
  using Kernel =
      std::function<Duration(PoolBytes& mem, const std::vector<uint64_t>& args)>;
  using ContextId = uint32_t;
  using KernelId = uint32_t;

  SimGpu(Network* net, uint32_t node) : SimGpu(net, node, Params{}) {}
  SimGpu(Network* net, uint32_t node, Params params);

  uint32_t node() const { return node_; }
  PoolId pool() const { return pool_; }
  const Params& params() const { return params_; }

  // --- contexts & memory -------------------------------------------------------------------

  ContextId create_context();
  // Frees all allocations of the context.
  Status destroy_context(ContextId ctx);
  Result<uint64_t> alloc(ContextId ctx, uint64_t size);
  Status free(ContextId ctx, uint64_t addr);
  uint64_t bytes_allocated() const { return allocated_; }

  // --- kernels -----------------------------------------------------------------------------

  KernelId load_kernel(const std::string& name, Kernel kernel);
  bool has_kernel(KernelId id) const { return kernels_.contains(id); }

  // Launches a kernel; `done` runs when it completes (FIFO with other launches).
  void launch(KernelId id, std::vector<uint64_t> args, std::function<void(Status)> done);

  // Engine occupancy, for utilization reporting in benches.
  Duration busy_time() const { return busy_; }
  uint64_t launches() const { return launches_; }
  // When every queued launch will have completed (cuCtxSynchronize semantics).
  Time engine_free() const { return engine_free_; }

 private:
  struct Allocation {
    uint64_t size = 0;
    ContextId ctx = 0;
  };

  Network* net_;
  uint32_t node_;
  Params params_;
  PoolId pool_;
  Time engine_free_;
  Duration busy_;
  uint64_t launches_ = 0;
  ContextId next_ctx_ = 1;
  KernelId next_kernel_ = 1;
  std::unordered_map<KernelId, Kernel> kernels_;
  std::unordered_map<ContextId, bool> contexts_;
  // Simple first-fit allocator over the device pool.
  std::map<uint64_t, Allocation> allocs_;  // addr -> allocation, ordered
  uint64_t allocated_ = 0;
};

}  // namespace fractos

#endif  // SRC_DEVICES_GPU_H_
