// Simulated NVMe SSD (the Samsung 970evo Plus stand-in).
//
// Timing model calibrated to the paper's storage evaluation: ~70 us random 4 KiB read
// ("NVMe latency dominates (70 usec)", Section 6.4), writes absorbed quickly by the device's
// DRAM write cache, and internal parallelism via a small number of channels so queued I/O
// overlaps. Data is real: a sparse block store backs reads and writes, so storage-stack tests
// can verify content end to end.

#ifndef SRC_DEVICES_NVME_H_
#define SRC_DEVICES_NVME_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/fabric/payload.h"
#include "src/sim/event_loop.h"

namespace fractos {

class SimNvme {
 public:
  struct Params {
    uint64_t capacity_bytes = 16ull << 30;
    uint64_t block_bytes = 4096;
    // Random 4 KiB read service time (flash array read + FTL).
    Duration read_latency = Duration::micros(68.0);
    // Write service time into the DRAM-backed write cache.
    Duration write_latency = Duration::micros(12.0);
    // Internal streaming bandwidth once a transfer is in flight.
    double read_bw_bpns = 3.0;   // ~3 GB/s
    double write_bw_bpns = 2.5;  // ~2.5 GB/s
    // Internal parallelism: concurrent flash channels.
    uint32_t channels = 4;
  };

  explicit SimNvme(EventLoop* loop) : SimNvme(loop, Params{}) {}
  SimNvme(EventLoop* loop, Params params);

  const Params& params() const { return params_; }
  uint64_t capacity() const { return params_.capacity_bytes; }

  // Reads `size` bytes at byte offset `off`; `done` gets the data after the modeled service
  // time. Out-of-range access fails immediately. The result is a refcounted Payload: the
  // block-store copy happens once, here, and the handle rides the completion for free.
  void read(uint64_t off, uint64_t size, std::function<void(Result<Payload>)> done);

  // Writes `data` at byte offset `off`.
  void write(uint64_t off, Payload data, std::function<void(Status)> done);

  // Direct (zero-time) access for test setup / verification.
  std::vector<uint8_t> peek(uint64_t off, uint64_t size) const;
  void poke(uint64_t off, const std::vector<uint8_t>& data);

  uint64_t reads_completed() const { return reads_; }
  uint64_t writes_completed() const { return writes_; }

 private:
  // Picks the earliest-free channel and occupies it for `service`; returns completion time
  // and reports when service actually began (for queue-wait attribution).
  Time schedule_on_channel(Duration service, Time* start_out);
  Status check_range(uint64_t off, uint64_t size) const;

  // Sparse block store.
  std::vector<uint8_t>& block_for(uint64_t block_idx);
  void read_bytes(uint64_t off, uint64_t size, std::vector<uint8_t>& out) const;
  void write_bytes(uint64_t off, const std::vector<uint8_t>& data);

  EventLoop* loop_;
  Params params_;
  std::vector<Time> channel_free_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> blocks_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace fractos

#endif  // SRC_DEVICES_NVME_H_
