#include "src/devices/gpu.h"

#include <utility>

#include "src/base/assert.h"
#include "src/sim/metrics.h"

namespace fractos {

SimGpu::SimGpu(Network* net, uint32_t node, Params params)
    : net_(net), node_(node), params_(params) {
  pool_ = net_->node(node_).add_pool(params_.memory_bytes);
}

SimGpu::ContextId SimGpu::create_context() {
  const ContextId ctx = next_ctx_++;
  contexts_[ctx] = true;
  return ctx;
}

Status SimGpu::destroy_context(ContextId ctx) {
  if (!contexts_.contains(ctx)) {
    return ErrorCode::kNotFound;
  }
  for (auto it = allocs_.begin(); it != allocs_.end();) {
    if (it->second.ctx == ctx) {
      allocated_ -= it->second.size;
      it = allocs_.erase(it);
    } else {
      ++it;
    }
  }
  contexts_.erase(ctx);
  return ok_status();
}

Result<uint64_t> SimGpu::alloc(ContextId ctx, uint64_t size) {
  if (!contexts_.contains(ctx)) {
    return ErrorCode::kNotFound;
  }
  if (size == 0) {
    return ErrorCode::kInvalidArgument;
  }
  // First fit between existing allocations, 256-byte aligned (CUDA-like).
  const uint64_t align = 256;
  uint64_t candidate = 0;
  for (const auto& [addr, a] : allocs_) {
    if (candidate + size <= addr) {
      break;
    }
    const uint64_t end = addr + a.size;
    candidate = (end + align - 1) & ~(align - 1);
  }
  if (candidate + size > params_.memory_bytes) {
    return ErrorCode::kResourceExhausted;
  }
  allocs_[candidate] = Allocation{size, ctx};
  allocated_ += size;
  return candidate;
}

Status SimGpu::free(ContextId ctx, uint64_t addr) {
  auto it = allocs_.find(addr);
  if (it == allocs_.end() || it->second.ctx != ctx) {
    return ErrorCode::kNotFound;
  }
  allocated_ -= it->second.size;
  allocs_.erase(it);
  return ok_status();
}

SimGpu::KernelId SimGpu::load_kernel(const std::string& name, Kernel kernel) {
  (void)name;
  const KernelId id = next_kernel_++;
  kernels_[id] = std::move(kernel);
  return id;
}

void SimGpu::launch(KernelId id, std::vector<uint64_t> args, std::function<void(Status)> done) {
  auto it = kernels_.find(id);
  if (it == kernels_.end()) {
    net_->loop()->post([done = std::move(done)]() { done(ErrorCode::kNotFound); });
    return;
  }
  // Execute the kernel body now (the data transformation is instantaneous from the
  // simulation's point of view; its COST is what the engine models).
  PoolBytes& mem = net_->node(node_).pool(pool_);
  const Duration compute = it->second(mem, args);
  const Duration total = params_.launch_overhead + compute;
  const Time start = max(net_->loop()->now(), engine_free_);
  engine_free_ = start + total;
  busy_ += total;
  ++launches_;
  struct GpuNames {
    NameId launches = intern_name("gpu.launches");
    NameId kernel_ns = intern_name("gpu.kernel_ns");
    NameId gpu = intern_name("gpu");
    NameId engine_wait = intern_name("engine-wait");
    NameId kernel = intern_name("kernel");
  };
  if (MetricsRegistry* m = net_->loop()->metrics()) {
    static const GpuNames names;
    m->add(names.launches);
    m->observe(names.kernel_ns, static_cast<uint64_t>(total.ns()));
  }
  if (span_tracing_active()) {
    if (SpanTracer* t = net_->loop()->span_tracer()) {
      static const GpuNames names;
      if (start > net_->loop()->now()) {
        t->record(names.gpu, SpanKind::kQueue, names.engine_wait, net_->loop()->now(), start);
      }
      t->record(names.gpu, SpanKind::kDevice, names.kernel, start, engine_free_);
    }
  }
  net_->loop()->schedule_at(engine_free_, [done = std::move(done)]() { done(ok_status()); });
}

}  // namespace fractos
