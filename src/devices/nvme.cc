#include "src/devices/nvme.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "src/base/assert.h"
#include "src/fabric/params.h"
#include "src/sim/metrics.h"

namespace fractos {

namespace {

struct NvmeNames {
  NameId reads = intern_name("nvme.reads");
  NameId read_bytes = intern_name("nvme.read_bytes");
  NameId writes = intern_name("nvme.writes");
  NameId write_bytes = intern_name("nvme.write_bytes");
  NameId nvme = intern_name("nvme");
  NameId channel_wait = intern_name("channel-wait");
  NameId nvme_read = intern_name("nvme-read");
  NameId nvme_write = intern_name("nvme-write");
};

const NvmeNames& nvme_names() {
  static const NvmeNames n;
  return n;
}

}  // namespace

SimNvme::SimNvme(EventLoop* loop, Params params) : loop_(loop), params_(params) {
  FRACTOS_CHECK(loop != nullptr);
  FRACTOS_CHECK(params_.channels > 0);
  channel_free_.assign(params_.channels, Time{});
}

Status SimNvme::check_range(uint64_t off, uint64_t size) const {
  if (off > params_.capacity_bytes || size > params_.capacity_bytes - off) {
    return ErrorCode::kOutOfRange;
  }
  return ok_status();
}

Time SimNvme::schedule_on_channel(Duration service, Time* start_out) {
  size_t best = 0;
  for (size_t i = 1; i < channel_free_.size(); ++i) {
    if (channel_free_[i] < channel_free_[best]) {
      best = i;
    }
  }
  const Time start = max(loop_->now(), channel_free_[best]);
  channel_free_[best] = start + service;
  *start_out = start;
  return channel_free_[best];
}

std::vector<uint8_t>& SimNvme::block_for(uint64_t block_idx) {
  auto it = blocks_.find(block_idx);
  if (it == blocks_.end()) {
    it = blocks_.emplace(block_idx, std::vector<uint8_t>(params_.block_bytes, 0)).first;
  }
  return it->second;
}

void SimNvme::read_bytes(uint64_t off, uint64_t size, std::vector<uint8_t>& out) const {
  // Append per block instead of zero-filling up front: a pre-zeroed buffer writes every byte
  // twice on the (common) all-blocks-present path, and these reads are the storage soaks'
  // single largest memory touch.
  out.clear();
  out.reserve(size);
  uint64_t pos = 0;
  while (pos < size) {
    const uint64_t abs = off + pos;
    const uint64_t block = abs / params_.block_bytes;
    const uint64_t in_block = abs % params_.block_bytes;
    const uint64_t n = std::min(size - pos, params_.block_bytes - in_block);
    auto it = blocks_.find(block);
    if (it != blocks_.end()) {
      out.insert(out.end(), it->second.begin() + static_cast<ptrdiff_t>(in_block),
                 it->second.begin() + static_cast<ptrdiff_t>(in_block + n));
    } else {
      out.insert(out.end(), n, 0);
    }
    pos += n;
  }
}

void SimNvme::write_bytes(uint64_t off, const std::vector<uint8_t>& data) {
  uint64_t pos = 0;
  while (pos < data.size()) {
    const uint64_t abs = off + pos;
    const uint64_t block = abs / params_.block_bytes;
    const uint64_t in_block = abs % params_.block_bytes;
    const uint64_t n = std::min<uint64_t>(data.size() - pos, params_.block_bytes - in_block);
    std::vector<uint8_t>& blk = block_for(block);
    std::copy_n(data.begin() + static_cast<ptrdiff_t>(pos), n,
                blk.begin() + static_cast<ptrdiff_t>(in_block));
    pos += n;
  }
}

void SimNvme::read(uint64_t off, uint64_t size, std::function<void(Result<Payload>)> done) {
  if (Status s = check_range(off, size); !s.ok()) {
    loop_->post([done = std::move(done), s]() { done(s.error()); });
    return;
  }
  std::vector<uint8_t> raw;
  read_bytes(off, size, raw);
  Payload data(std::move(raw));  // the one copy: block store -> Payload rep
  const Duration service = params_.read_latency + transfer_time(size, params_.read_bw_bpns);
  Time start;
  const Time finish = schedule_on_channel(service, &start);
  ++reads_;
  if (MetricsRegistry* m = loop_->metrics()) {
    const NvmeNames& n = nvme_names();
    m->add(n.reads);
    m->add(n.read_bytes, static_cast<int64_t>(size));
  }
  if (span_tracing_active()) {
    if (SpanTracer* t = loop_->span_tracer()) {
      const NvmeNames& n = nvme_names();
      if (start > loop_->now()) {
        t->record(n.nvme, SpanKind::kQueue, n.channel_wait, loop_->now(), start);
      }
      t->record(n.nvme, SpanKind::kDevice, n.nvme_read, start, finish);
    }
  }
  loop_->schedule_at(finish, [done = std::move(done), data = std::move(data)]() mutable {
    done(std::move(data));
  });
}

void SimNvme::write(uint64_t off, Payload data, std::function<void(Status)> done) {
  if (Status s = check_range(off, data.size()); !s.ok()) {
    loop_->post([done = std::move(done), s]() { done(s); });
    return;
  }
  const Duration service =
      params_.write_latency + transfer_time(data.size(), params_.write_bw_bpns);
  Time start;
  const Time finish = schedule_on_channel(service, &start);
  write_bytes(off, data.bytes());
  ++writes_;
  if (MetricsRegistry* m = loop_->metrics()) {
    const NvmeNames& n = nvme_names();
    m->add(n.writes);
    m->add(n.write_bytes, static_cast<int64_t>(data.size()));
  }
  if (span_tracing_active()) {
    if (SpanTracer* t = loop_->span_tracer()) {
      const NvmeNames& n = nvme_names();
      if (start > loop_->now()) {
        t->record(n.nvme, SpanKind::kQueue, n.channel_wait, loop_->now(), start);
      }
      t->record(n.nvme, SpanKind::kDevice, n.nvme_write, start, finish);
    }
  }
  loop_->schedule_at(finish, [done = std::move(done)]() { done(ok_status()); });
}

std::vector<uint8_t> SimNvme::peek(uint64_t off, uint64_t size) const {
  FRACTOS_CHECK(check_range(off, size).ok());
  std::vector<uint8_t> out;
  read_bytes(off, size, out);
  return out;
}

void SimNvme::poke(uint64_t off, const std::vector<uint8_t>& data) {
  FRACTOS_CHECK(check_range(off, data.size()).ok());
  write_bytes(off, data);
}

}  // namespace fractos
