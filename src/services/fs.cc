#include "src/services/fs.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"

namespace fractos {

// In-flight state of one FS-mode I/O: chunks of at most stream_chunk bytes, up to
// pipeline_depth in flight (each holding one staging slot), so the block-device leg of one
// chunk overlaps the client-copy leg of another.
struct FsIoState {
  bool is_write = false;
  uint64_t off = 0;
  uint64_t size = 0;
  uint64_t issued = 0;     // bytes whose chunks have been started
  uint64_t completed = 0;  // bytes fully transferred
  uint32_t in_flight = 0;
  bool failed = false;
  ErrorCode error = ErrorCode::kInternal;
  bool finished = false;
  uint64_t extent_bytes = 0;
  std::vector<BlockClient::Volume> extents;
  CapId mem = kInvalidCap;   // client buffer
  CapId cont = kInvalidCap;  // success continuation (invoked verbatim)
  CapId err = kInvalidCap;   // optional error continuation
  // Stage-1 legs (the block-device side) run one at a time within an op, so chunk
  // completions stagger and the stage-2 leg (the client side) overlaps the next chunk's
  // stage 1 — concurrent same-link transfers would otherwise fair-share and all complete
  // together, defeating the pipeline.
  bool stage1_busy = false;
  std::deque<std::function<void()>> stage1_waiting;
  uint64_t span = 0;  // kService span covering the whole op (0 when tracing is off)

  void acquire_stage1(std::function<void()> fn) {
    if (stage1_busy) {
      stage1_waiting.push_back(std::move(fn));
      return;
    }
    stage1_busy = true;
    fn();
  }
  void release_stage1() {
    if (!stage1_waiting.empty()) {
      auto fn = std::move(stage1_waiting.front());
      stage1_waiting.pop_front();
      fn();
      return;
    }
    stage1_busy = false;
  }
};

std::unique_ptr<FsService> FsService::bootstrap(System* sys, uint32_t node,
                                                Controller& controller, Process& block_proc,
                                                CapId block_mgmt_ep) {
  return bootstrap(sys, node, controller, block_proc, block_mgmt_ep, Params{});
}

std::unique_ptr<FsService> FsService::bootstrap(System* sys, uint32_t node,
                                                Controller& controller, Process& block_proc,
                                                CapId block_mgmt_ep, Params params) {
  std::unique_ptr<FsService> fs(new FsService(sys, node, controller, params));
  const CapId mgmt = sys->bootstrap_grant(block_proc, block_mgmt_ep, *fs->proc_).value();
  fs->init_endpoints(mgmt);
  return fs;
}

FsService::FsService(System* sys, uint32_t node, Controller& controller, Params params)
    : sys_(sys), params_(params), slot_pool_(params.staging_slots) {
  const uint64_t heap = params_.staging_slots * params_.slot_bytes + (1 << 20);
  proc_ = &sys->spawn("fs-service", node, controller, heap);
  slot_pool_.instrument(&sys->loop(), "fs." + std::to_string(node));
  slots_.resize(params_.staging_slots);
  for (uint32_t i = 0; i < params_.staging_slots; ++i) {
    Slot& slot = slots_[i];
    slot.addr = proc_->alloc(params_.slot_bytes);
    slot.mem =
        sys->await_ok(proc_->memory_create(slot.addr, params_.slot_bytes, Perms::kReadWrite));
    // Block-RPC completion endpoints, one pair per slot, reused for every chunk that uses
    // the slot (no per-operation object churn).
    slot.ok_ep = sys->await_ok(proc_->serve({}, [this, i](Process::Received) {
      finish_slot(i, ok_status());
    }));
    slot.err_ep = sys->await_ok(proc_->serve({}, [this, i](Process::Received rr) {
      finish_slot(i, Status(static_cast<ErrorCode>(
                        rr.imm_u64(0).value_or(static_cast<uint64_t>(ErrorCode::kInternal)))));
    }));
  }
}

FsService::~FsService() {
  // Close first: queued acquires fail with kAborted and releases stop waking waiters, so the
  // chunk failures below cannot re-enter the pool and start new work mid-teardown.
  slot_pool_.close();
  for (size_t i = 0; i < slots_.size(); ++i) {
    finish_slot(i, Status(ErrorCode::kAborted));
  }
}

void FsService::init_endpoints(CapId block_mgmt) {
  block_mgmt_ = block_mgmt;
  create_ep_ = sys_->await_ok(proc_->serve({}, [this](Process::Received r) {
    handle_create(std::move(r));
  }));
  open_ep_ = sys_->await_ok(proc_->serve({}, [this](Process::Received r) {
    handle_open(std::move(r));
  }));
  unlink_ep_ = sys_->await_ok(proc_->serve({}, [this](Process::Received r) {
    handle_unlink(std::move(r));
  }));
}

void FsService::finish_slot(size_t slot, Status s) {
  if (!slots_[slot].pending.has_value()) {
    return;
  }
  Promise<Status> done = std::move(*slots_[slot].pending);
  slots_[slot].pending.reset();
  done.set(s);
}

void FsService::fail_op(const Process::Received& r, ErrorCode code) {
  std::vector<CapId> reqs;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kRequest) {
      reqs.push_back(c.cid);
    }
  }
  if (reqs.size() >= 2) {
    proc_->request_invoke(reqs[1], Process::Args{}.imm_u64(0, static_cast<uint64_t>(code)));
  }
}

void FsService::handle_create(Process::Received r) {
  if (r.num_caps() < 1) {
    return;
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  const uint64_t size = r.imm_u64(0).value_or(0);
  auto name = r.imm_str(8);
  if (!name.has_value() || size == 0 || files_.contains(*name)) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  const uint64_t n_extents = (size + params_.extent_bytes - 1) / params_.extent_bytes;
  // Allocate one block-device volume per extent, sequentially (plain member recursion — no
  // self-referential lambdas).
  auto file = std::make_shared<File>();
  file->size = size;
  create_extents(std::move(file), *name, size, n_extents, 0, reply);
}

void FsService::create_extents(std::shared_ptr<File> file, const std::string& name,
                               uint64_t size, uint64_t n_extents, uint64_t i, CapId reply) {
  if (i == n_extents) {
    files_[name] = *file;
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 0));
    return;
  }
  const uint64_t remaining = size - i * params_.extent_bytes;
  const uint64_t vol_size = std::min(params_.extent_bytes, remaining);
  BlockClient::create_volume(*proc_, block_mgmt_, vol_size)
      .on_ready([this, file = std::move(file), name, size, n_extents, i,
                 reply](Result<BlockClient::Volume>&& v) mutable {
        if (!v.ok()) {
          proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
          return;
        }
        file->extents.push_back(v.value());
        create_extents(std::move(file), name, size, n_extents, i + 1, reply);
      });
}

void FsService::reply_open(const File& f, CapId close_ep, std::vector<CapId> read_eps,
                           std::vector<CapId> write_eps, CapId reply) {
  Process::Args args;
  args.imm_u64(0, 0)
      .imm_u64(8, f.size)
      .imm_u64(16, params_.extent_bytes)
      .imm_u64(24, read_eps.size())
      .imm_u64(32, write_eps.size())
      .cap(close_ep);
  for (CapId c : read_eps) {
    args.cap(c);
  }
  for (CapId c : write_eps) {
    args.cap(c);
  }
  proc_->request_invoke(reply, std::move(args));
}

void FsService::handle_open(Process::Received r) {
  if (r.num_caps() < 1) {
    return;
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  const bool rw = r.imm_u64(0).value_or(0) != 0;
  const bool dax = r.imm_u64(8).value_or(0) != 0;
  auto name = r.imm_str(16);
  auto fit = name.has_value() ? files_.find(*name) : files_.end();
  if (fit == files_.end()) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  if (dax) {
    open_dax_mode(*name, fit->second, rw, reply);
  } else {
    open_fs_mode(*name, fit->second, rw, reply);
  }
}

void FsService::open_fs_mode(const std::string& name, File& f, bool rw, CapId reply) {
  const uint32_t open_id = next_open_++;
  std::vector<Future<Result<CapId>>> eps;
  eps.push_back(proc_->serve({}, [this, open_id](Process::Received rr) {
    handle_io(open_id, /*is_write=*/false, std::move(rr));
  }));
  if (rw) {
    eps.push_back(proc_->serve({}, [this, open_id](Process::Received rr) {
      handle_io(open_id, /*is_write=*/true, std::move(rr));
    }));
  }
  eps.push_back(proc_->serve({}, [this, open_id](Process::Received rr) {
    handle_close(open_id, std::move(rr));
  }));
  (void)f;
  when_all(std::move(eps)).on_ready([this, open_id, name, rw, reply](
                                        std::vector<Result<CapId>>&& cids) {
    auto fit = files_.find(name);
    if (fit == files_.end()) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
      return;
    }
    for (const auto& c : cids) {
      if (!c.ok()) {
        proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
        return;
      }
    }
    Open o;
    o.name = name;
    o.rw = rw;
    o.read_ep = cids[0].value();
    o.write_ep = rw ? cids[1].value() : kInvalidCap;
    o.close_ep = cids.back().value();
    opens_[open_id] = o;
    std::vector<CapId> write_eps;
    if (rw) {
      write_eps.push_back(o.write_ep);
    }
    reply_open(fit->second, o.close_ep, {o.read_ep}, write_eps, reply);
  });
}

void FsService::open_dax_mode(const std::string& name, File& f, bool rw, CapId reply) {
  // Lazily build the cached revocation-tree children over the block adaptor's per-volume
  // endpoints; children live at the BLOCK Controller (derivation at the owner), so revoking
  // a volume kills them, and revoking a child leaves the volume usable by the FS.
  std::vector<Future<Result<CapId>>> derivations;
  const bool need_read = f.dax_read.empty();
  const bool need_write = rw && f.dax_write.empty();
  if (need_read) {
    for (const auto& ext : f.extents) {
      derivations.push_back(proc_->cap_create_revtree(ext.read_ep));
    }
  }
  if (need_write) {
    for (const auto& ext : f.extents) {
      derivations.push_back(proc_->cap_create_revtree(ext.write_ep));
    }
  }
  when_all(std::move(derivations))
      .on_ready([this, name, rw, need_read, need_write, reply](std::vector<Result<CapId>>&& kids) {
        auto fit = files_.find(name);
        if (fit == files_.end()) {
          proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
          return;
        }
        File& file = fit->second;
        const size_t n = file.extents.size();
        size_t k = 0;
        for (const auto& kid : kids) {
          if (!kid.ok()) {
            proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
            return;
          }
        }
        if (need_read) {
          for (size_t i = 0; i < n; ++i) {
            file.dax_read.push_back(kids[k++].value());
          }
        }
        if (need_write) {
          for (size_t i = 0; i < n; ++i) {
            file.dax_write.push_back(kids[k++].value());
          }
        }
        const uint32_t open_id = next_open_++;
        proc_->serve({}, [this, open_id](Process::Received rr) {
          handle_close(open_id, std::move(rr));
        }).on_ready([this, open_id, name, rw, reply](Result<CapId>&& close_ep) {
          auto fit2 = files_.find(name);
          if (!close_ep.ok() || fit2 == files_.end()) {
            proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
            return;
          }
          File& file = fit2->second;
          Open o;
          o.name = name;
          o.rw = rw;
          o.dax = true;
          o.close_ep = close_ep.value();
          opens_[open_id] = o;
          ++file.dax_refs;
          reply_open(file, o.close_ep, file.dax_read, rw ? file.dax_write : std::vector<CapId>{},
                     reply);
        });
      });
}

void FsService::handle_io(uint32_t open_id, bool is_write, Process::Received r) {
  auto oit = opens_.find(open_id);
  if (oit == opens_.end()) {
    fail_op(r, ErrorCode::kRevoked);
    return;
  }
  const Open& o = oit->second;
  auto fit = files_.find(o.name);
  if (fit == files_.end()) {
    fail_op(r, ErrorCode::kNotFound);
    return;
  }
  if (is_write && !o.rw) {
    fail_op(r, ErrorCode::kPermissionDenied);
    return;
  }
  const File& f = fit->second;
  const uint64_t off = r.imm_u64(0).value_or(~0ull);
  const uint64_t size = r.imm_u64(8).value_or(0);
  CapId mem = kInvalidCap;
  uint64_t mem_size = 0;
  std::vector<CapId> reqs;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kMemory && mem == kInvalidCap) {
      mem = c.cid;
      mem_size = c.mem_size;
    } else if (c.kind == ObjectKind::kRequest) {
      reqs.push_back(c.cid);
    }
  }
  if (mem == kInvalidCap || reqs.empty() || size == 0 || off + size > f.size ||
      mem_size < size) {
    fail_op(r, ErrorCode::kInvalidArgument);
    return;
  }

  auto st = std::make_shared<FsIoState>();
  st->is_write = is_write;
  st->off = off;
  st->size = size;
  st->extent_bytes = params_.extent_bytes;
  st->extents = f.extents;
  st->mem = mem;
  st->cont = reqs[0];
  st->err = reqs.size() >= 2 ? reqs[1] : kInvalidCap;
  struct FsNames {
    NameId writes = intern_name("fs.writes");
    NameId reads = intern_name("fs.reads");
    NameId write_bytes = intern_name("fs.write_bytes");
    NameId read_bytes = intern_name("fs.read_bytes");
    NameId fs_write = intern_name("fs-write");
    NameId fs_read = intern_name("fs-read");
  };
  static const FsNames names;
  if (MetricsRegistry* m = sys_->loop().metrics()) {
    m->add(is_write ? names.writes : names.reads);
    m->add(is_write ? names.write_bytes : names.read_bytes, static_cast<int64_t>(size));
  }
  if (span_tracing_active()) {
    if (SpanTracer* t = sys_->loop().span_tracer()) {
      st->span = t->begin(intern_name(proc_->name()), SpanKind::kService,
                          is_write ? names.fs_write : names.fs_read, sys_->loop().now());
    }
  }
  io_pump(std::move(st));
}

void FsService::io_pump(std::shared_ptr<FsIoState> st) {
  if (st->finished) {
    return;
  }
  if (st->failed) {
    if (st->in_flight == 0) {
      st->finished = true;
      if (st->span != 0) {
        if (SpanTracer* t = sys_->loop().span_tracer()) {
          t->end_error(st->span, sys_->loop().now(), "io-failed");
        }
        st->span = 0;
      }
      if (st->err != kInvalidCap) {
        proc_->request_invoke(st->err,
                              Process::Args{}.imm_u64(0, static_cast<uint64_t>(st->error)));
      }
    }
    return;
  }
  if (st->completed == st->size) {
    st->finished = true;
    if (st->span != 0) {
      if (SpanTracer* t = sys_->loop().span_tracer()) {
        t->end(st->span, sys_->loop().now());
      }
      st->span = 0;
    }
    proc_->request_invoke(st->cont);
    return;
  }
  while (!st->failed && st->issued < st->size && st->in_flight < params_.pipeline_depth) {
    const uint64_t pos = st->off + st->issued;
    const uint64_t eoff = pos % st->extent_bytes;
    const uint64_t chunk = std::min({st->size - st->issued, st->extent_bytes - eoff,
                                     params_.slot_bytes, params_.stream_chunk});
    const uint64_t op_off = st->issued;
    st->issued += chunk;
    ++st->in_flight;
    slot_pool_.acquire()
        .and_then([this, st, op_off, chunk](size_t slot) { run_chunk(st, slot, op_off, chunk); })
        .or_else([this, st](ErrorCode e) {
          // Slot acquisition failed (service shutting down): fail the chunk without a slot.
          --st->in_flight;
          if (!st->failed) {
            st->error = e;
          }
          st->failed = true;
          io_pump(st);
        });
  }
}

void FsService::run_chunk(std::shared_ptr<FsIoState> st, size_t slot_idx, uint64_t op_off,
                          uint64_t chunk) {
  const uint64_t pos = st->off + op_off;
  const uint64_t extent = pos / st->extent_bytes;
  const uint64_t eoff = pos % st->extent_bytes;
  Slot& slot = slots_[slot_idx];
  auto chunk_finished = [this, st, slot_idx, chunk](Status s) {
    slot_pool_.release(slot_idx);
    --st->in_flight;
    if (!s.ok()) {
      if (!st->failed) {
        st->error = s.error();
      }
      st->failed = true;
    } else {
      st->completed += chunk;
    }
    io_pump(st);
  };
  if (extent >= st->extents.size()) {
    sys_->loop().post([chunk_finished]() { chunk_finished(ErrorCode::kOutOfRange); });
    return;
  }
  const BlockClient::Volume& vol = st->extents[extent];

  if (st->is_write) {
    // Client -> FS staging (network transfer 1, the serialized stage), then block write
    // (transfer 2 + device), overlapping the next chunk's stage 1.
    st->acquire_stage1([this, st, slot_idx, vol, eoff, op_off, chunk, chunk_finished]() {
      proc_->memory_copy(st->mem, slots_[slot_idx].mem, chunk, op_off, 0)
          .on_ready([this, st, slot_idx, vol, eoff, chunk, chunk_finished](Status cs) {
            st->release_stage1();
            if (!cs.ok()) {
              chunk_finished(cs);
              return;
            }
            Slot& sl = slots_[slot_idx];
            Promise<Status> block_done;
            block_done.future().on_ready(chunk_finished);
            sl.pending = std::move(block_done);
            proc_->request_invoke(vol.write_ep, Process::Args{}
                                                    .imm_u64(0, eoff)
                                                    .imm_u64(8, chunk)
                                                    .cap(sl.mem)
                                                    .cap(sl.ok_ep)
                                                    .cap(sl.err_ep));
          });
    });
    return;
  }

  // Read: block read into FS staging (transfer 1 + device), then FS -> client (transfer 2).
  st->acquire_stage1([this, st, slot_idx, vol, eoff, op_off, chunk, chunk_finished]() {
    Slot& sl = slots_[slot_idx];
    Promise<Status> block_done;
    block_done.future().on_ready([this, st, slot_idx, op_off, chunk, chunk_finished](Status bs) {
      st->release_stage1();
      if (!bs.ok()) {
        chunk_finished(bs);
        return;
      }
      proc_->memory_copy(slots_[slot_idx].mem, st->mem, chunk, 0, op_off)
          .on_ready([chunk_finished](Status cs) { chunk_finished(cs); });
    });
    sl.pending = std::move(block_done);
    proc_->request_invoke(vol.read_ep, Process::Args{}
                                           .imm_u64(0, eoff)
                                           .imm_u64(8, chunk)
                                           .cap(sl.mem)
                                           .cap(sl.ok_ep)
                                           .cap(sl.err_ep));
  });
}

void FsService::handle_close(uint32_t open_id, Process::Received r) {
  const CapId reply = r.num_caps() >= 1 ? r.cap(r.num_caps() - 1) : kInvalidCap;
  auto oit = opens_.find(open_id);
  if (oit == opens_.end()) {
    if (reply != kInvalidCap) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    }
    return;
  }
  const Open o = oit->second;
  opens_.erase(oit);

  std::vector<Future<Status>> revokes;
  if (o.dax) {
    auto fit = files_.find(o.name);
    if (fit != files_.end() && fit->second.dax_refs > 0 && --fit->second.dax_refs == 0) {
      for (CapId c : fit->second.dax_read) {
        revokes.push_back(proc_->cap_revoke(c));
      }
      for (CapId c : fit->second.dax_write) {
        revokes.push_back(proc_->cap_revoke(c));
      }
      fit->second.dax_read.clear();
      fit->second.dax_write.clear();
    }
  } else {
    proc_->remove_endpoint(o.read_ep);
    revokes.push_back(proc_->cap_revoke(o.read_ep));
    if (o.write_ep != kInvalidCap) {
      proc_->remove_endpoint(o.write_ep);
      revokes.push_back(proc_->cap_revoke(o.write_ep));
    }
  }
  proc_->remove_endpoint(o.close_ep);
  when_all(std::move(revokes)).on_ready([this, o, reply](std::vector<Status>&&) {
    proc_->cap_revoke(o.close_ep);
    if (reply != kInvalidCap) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 0));
    }
  });
}

void FsService::handle_unlink(Process::Received r) {
  if (r.num_caps() < 1) {
    return;
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  auto name = r.imm_str(0);
  auto fit = name.has_value() ? files_.find(*name) : files_.end();
  if (fit == files_.end()) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  const File file = fit->second;
  files_.erase(fit);

  // Destroy the backing volumes: the block adaptor revokes the per-volume endpoints, which
  // recursively kills every cached DAX child and every client-held delegation of them.
  destroy_extents(std::make_shared<std::vector<BlockClient::Volume>>(file.extents), 0, reply);
}

void FsService::destroy_extents(std::shared_ptr<std::vector<BlockClient::Volume>> extents,
                                size_t i, CapId reply) {
  if (i == extents->size()) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 0));
    return;
  }
  BlockClient::destroy(*proc_, (*extents)[i])
      .on_ready([this, extents = std::move(extents), i, reply](Status) mutable {
        destroy_extents(std::move(extents), i + 1, reply);
      });
}


// --- client helpers ----------------------------------------------------------------------------

Future<Status> FsClient::create(Process& proc, CapId create_ep, const std::string& name,
                                uint64_t size) {
  return proc.call(create_ep, Process::Args{}.imm_u64(0, size).imm_str(8, name))
      .then([](Result<Process::Received>&& r) -> Status {
        if (!r.ok()) {
          return r.error();
        }
        return r.value().imm_u64(0).value_or(1) == 0 ? ok_status()
                                                     : Status(ErrorCode::kAlreadyExists);
      });
}

Future<Result<FsClient::OpenFile>> FsClient::open(Process& proc, CapId open_ep,
                                                  const std::string& name, bool rw, bool dax) {
  return proc
      .call(open_ep, Process::Args{}
                         .imm_u64(0, rw ? 1 : 0)
                         .imm_u64(8, dax ? 1 : 0)
                         .imm_str(16, name))
      .then([rw, dax](Result<Process::Received>&& r) -> Result<OpenFile> {
        if (!r.ok()) {
          return r.error();
        }
        const auto& rr = r.value();
        if (rr.imm_u64(0).value_or(1) != 0) {
          return ErrorCode::kNotFound;
        }
        OpenFile f;
        f.dax = dax;
        f.rw = rw;
        f.size = rr.imm_u64(8).value_or(0);
        f.extent_bytes = rr.imm_u64(16).value_or(0);
        const uint64_t n_read = rr.imm_u64(24).value_or(0);
        const uint64_t n_write = rr.imm_u64(32).value_or(0);
        if (rr.num_caps() < 1 + n_read + n_write) {
          return ErrorCode::kInternal;
        }
        f.close_ep = rr.cap(0);
        for (uint64_t i = 0; i < n_read; ++i) {
          f.read_eps.push_back(rr.cap(1 + i));
        }
        for (uint64_t i = 0; i < n_write; ++i) {
          f.write_eps.push_back(rr.cap(1 + n_read + i));
        }
        return f;
      });
}

namespace {

// Shared sync-I/O driver for FS-mode (single target endpoint) and DAX (per-extent
// endpoints + client-side chunking with diminished views).
Future<Status> fs_client_io(Process& proc, const FsClient::OpenFile& f, bool is_write,
                            uint64_t off, uint64_t size, CapId mem) {
  struct IoState {
    Process* proc;
    FsClient::OpenFile file;
    bool is_write;
    uint64_t off, size, done = 0;
    CapId mem;
    CapId ok_ep = kInvalidCap, err_ep = kInvalidCap;
    Promise<Status> promise;
  };
  auto st = std::make_shared<IoState>();
  st->proc = &proc;
  st->file = f;
  st->is_write = is_write;
  st->off = off;
  st->size = size;
  st->mem = mem;
  // The per-chunk completion callback. Deliberately NOT a member of IoState: it captures the
  // state, so storing it inside the state would form a reference cycle that leaks whenever an
  // operation is abandoned (e.g. its endpoint was revoked mid-flight).
  auto chunk_done = std::make_shared<std::function<void(Status)>>();
  Promise<Status> promise = st->promise;

  const std::vector<CapId>& eps = is_write ? f.write_eps : f.read_eps;
  if (eps.empty() || size == 0 || off + size > f.size) {
    promise.set(Status(ErrorCode::kInvalidArgument));
    return promise.future();
  }

  auto finish = [st](Status s) {
    st->proc->remove_endpoint(st->ok_ep);
    st->proc->remove_endpoint(st->err_ep);
    st->promise.set(s);
  };

  auto pump = std::make_shared<std::function<void()>>();
  // pump -> box and box -> pump references must not BOTH be strong (cycle); the box is the
  // rooted one (the completion endpoint handlers hold it), so pump holds it weakly.
  *pump = [st, finish, weak_box = std::weak_ptr<std::function<void(Status)>>(chunk_done),
           weak_pump = std::weak_ptr<std::function<void()>>(pump)]() {
    auto pump = weak_pump.lock();
    auto chunk_done = weak_box.lock();
    if (!pump || !chunk_done) {
      return;
    }
    if (st->done == st->size) {
      finish(ok_status());
      return;
    }
    uint64_t target_off = st->off + st->done;
    uint64_t chunk = st->size - st->done;
    size_t ep_index = 0;
    if (st->file.dax) {
      ep_index = target_off / st->file.extent_bytes;
      const uint64_t eoff = target_off % st->file.extent_bytes;
      chunk = std::min(chunk, st->file.extent_bytes - eoff);
      target_off = eoff;
    }
    const std::vector<CapId>& eps = st->is_write ? st->file.write_eps : st->file.read_eps;
    if (ep_index >= eps.size()) {
      finish(ErrorCode::kOutOfRange);
      return;
    }
    const CapId ep = eps[ep_index];
    const uint64_t this_chunk = chunk;
    *chunk_done = [st, pump, finish, this_chunk](Status s) {
      if (!s.ok()) {
        finish(s);
        return;
      }
      st->done += this_chunk;
      (*pump)();
    };
    auto send = [st, chunk_done, ep, target_off, this_chunk](CapId view) {
      st->proc
          ->request_invoke(ep, Process::Args{}
                                   .imm_u64(0, target_off)
                                   .imm_u64(8, this_chunk)
                                   .cap(view)
                                   .cap(st->ok_ep)
                                   .cap(st->err_ep))
          .on_ready([chunk_done](Status s) {
            // A rejected invoke (revoked/purged endpoint) never reaches the service, so no
            // completion will fire: fail the op now.
            if (!s.ok() && *chunk_done) {
              auto done = std::move(*chunk_done);
              *chunk_done = nullptr;
              done(s);
            }
          });
    };
    if (st->done == 0) {
      send(st->mem);  // services copy exactly `size` bytes from/to the buffer's start
    } else {
      // Later chunks need a view at the right offset into the client buffer.
      st->proc->memory_diminish(st->mem, st->done, this_chunk, Perms::kNone)
          .on_ready([send, finish](Result<CapId>&& view) {
            if (!view.ok()) {
              finish(view.error());
              return;
            }
            send(view.value());
          });
    }
  };

  auto ok_f = proc.request_create({});
  auto err_f = proc.request_create({});
  when_all(std::vector<Future<Result<CapId>>>{std::move(ok_f), std::move(err_f)})
      .on_ready([st, pump, chunk_done](std::vector<Result<CapId>>&& eps2) {
        if (!eps2[0].ok() || !eps2[1].ok()) {
          st->promise.set(Status(ErrorCode::kResourceExhausted));
          return;
        }
        st->ok_ep = eps2[0].value();
        st->err_ep = eps2[1].value();
        st->proc->on_endpoint(st->ok_ep, [chunk_done](Process::Received) {
          if (*chunk_done) {
            auto done = std::move(*chunk_done);
            *chunk_done = nullptr;
            done(ok_status());
          }
        });
        st->proc->on_endpoint(st->err_ep, [chunk_done](Process::Received rr) {
          if (*chunk_done) {
            auto done = std::move(*chunk_done);
            *chunk_done = nullptr;
            done(Status(static_cast<ErrorCode>(
                rr.imm_u64(0).value_or(static_cast<uint64_t>(ErrorCode::kInternal)))));
          }
        });
        (*pump)();
      });
  return promise.future();
}

}  // namespace

Future<Status> FsClient::read(Process& proc, const OpenFile& f, uint64_t off, uint64_t size,
                              CapId mem) {
  return fs_client_io(proc, f, /*is_write=*/false, off, size, mem);
}

Future<Status> FsClient::write(Process& proc, const OpenFile& f, uint64_t off, uint64_t size,
                               CapId mem) {
  return fs_client_io(proc, f, /*is_write=*/true, off, size, mem);
}

Future<Status> FsClient::close(Process& proc, const OpenFile& f) {
  return proc.call(f.close_ep).then([](Result<Process::Received>&& r) -> Status {
    if (!r.ok()) {
      return r.error();
    }
    return r.value().imm_u64(0).value_or(1) == 0 ? ok_status() : Status(ErrorCode::kNotFound);
  });
}

Future<Status> FsClient::unlink(Process& proc, CapId unlink_ep, const std::string& name) {
  return proc.call(unlink_ep, Process::Args{}.imm_str(0, name))
      .then([](Result<Process::Received>&& r) -> Status {
        if (!r.ok()) {
          return r.error();
        }
        return r.value().imm_u64(0).value_or(1) == 0 ? ok_status()
                                                     : Status(ErrorCode::kNotFound);
      });
}

}  // namespace fractos
