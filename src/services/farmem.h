// Client-side far-memory runtime: a small local cache over one attached far-memory segment
// (src/services/mempool.h), faulting on access with DUAL-GRANULARITY data movement
// (DESIGN.md §4k, after DaeMon):
//
//   * hot path  — a miss demand-fetches one 64 B cacheline with a one-sided RDMA read on the
//     fabric's HOT lane (LinkClass::kHot): tiny transfers that must not queue behind pages;
//   * bulk path — sequential streaks (streak_threshold consecutive cachelines) trigger an
//     asynchronous 4 KiB page prefetch on the BULK lane; later accesses that land on an
//     in-flight page wait for it instead of issuing their own fetch.
//
// With `dual_granularity = false` the client degrades to the page-only baseline every
// fault moves a full page, synchronously, on the bulk lane — the comparison axis of
// bench_memtier.
//
// Address translation (the MIND placement axis): every fetch first resolves the segment
// offset to a fabric location. `placement` picks where that happens and what it costs:
//   * kOwnerCpu — control round trip to the owning node's host CPU (request_traversal cost);
//   * kSnic    — round trip to the owning node's SmartNIC ARM core (slower per-op compute,
//     but the host is never involved);
//   * kTor     — the ToR switch answers in-network at match-action pipeline latency; no
//     round trip past the rack fabric.
//
// Every fault is wrapped in a SpanKind::kFarMem span (bucket "farmem" in the tax report);
// translation work lands in kTranslation, and the RDMA legs contribute their usual fabric /
// fabric.queue spans as children. Prefetch issue is DETACHED from the faulting trace (an
// empty SpanScope): the bytes move in the background; only the time a later access spends
// *waiting* on an in-flight page is attributed (a "prefetch-wait" kFarMem span).
//
// Cache state is write-through, so eviction (FIFO, per granularity) never writes back.

#ifndef SRC_SERVICES_FARMEM_H_
#define SRC_SERVICES_FARMEM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/core/costs.h"
#include "src/core/system.h"

namespace fractos {

class FarMemClient {
 public:
  struct Config {
    uint64_t line_bytes = 64;
    uint64_t page_bytes = 4096;
    uint32_t line_slots = 256;  // local cacheline cache (dual mode)
    uint32_t page_slots = 8;    // local page cache
    // Consecutive-line streak that arms the next-page prefetch (dual mode).
    uint32_t streak_threshold = 4;
    bool dual_granularity = true;
    XlatePlacement placement = XlatePlacement::kOwnerCpu;
    // Per-fetch translation compute. CPU/sNIC match the Controller request-traversal
    // calibration (src/core/costs.h); the ToR figure models a match-action pipeline lookup.
    Duration cpu_xlate = Duration::micros(0.705);
    Duration snic_xlate = Duration::micros(2.555);
    Duration tor_xlate = Duration::nanos(300);
  };

  struct Stats {
    uint64_t accesses = 0;
    uint64_t line_hits = 0;
    uint64_t page_hits = 0;
    uint64_t demand_fetches = 0;   // synchronous line (dual) or page (baseline) faults
    uint64_t prefetches = 0;       // asynchronous page prefetches issued
    uint64_t prefetch_waits = 0;   // accesses that waited on an in-flight page
    uint64_t hot_bytes = 0;        // payload bytes moved on the hot lane
    uint64_t bulk_bytes = 0;       // payload bytes moved on the bulk lane
    uint64_t write_throughs = 0;
  };

  // `segment` must be a Memory capability in `client`'s space (MemPoolClient::attach);
  // `client_ctrl` is the Controller managing `client`, used once to resolve the capability
  // into an rkey + fabric location — the data path never touches a Controller again.
  FarMemClient(System* sys, Process& client, Controller& client_ctrl, CapId segment,
               Config cfg);

  // Reads [offset, offset+size) — the range must lie within one cacheline (the CPU-visible
  // access granularity this client models). Completes asynchronously, cache hits included,
  // so caller-side ordering never depends on hit/miss.
  void read(uint64_t offset, uint64_t size,
            std::function<void(Result<std::vector<uint8_t>>)> done);

  // Write-through: updates any cached copies, then RDMA-writes the remote segment. The range
  // must lie within one cacheline.
  void write(uint64_t offset, std::vector<uint8_t> bytes, std::function<void(Status)> done);

  const Stats& stats() const { return stats_; }
  const Config& config() const { return cfg_; }
  uint64_t segment_size() const { return seg_size_; }
  size_t cached_lines() const { return lines_.size(); }
  size_t cached_pages() const { return pages_.size(); }

 private:
  void fetch_line(uint64_t line, uint64_t offset, uint64_t size,
                  std::function<void(Result<std::vector<uint8_t>>)> done);
  void fetch_page(uint64_t page, uint64_t offset, uint64_t size,
                  std::function<void(Result<std::vector<uint8_t>>)> done);
  void maybe_prefetch(uint64_t page);
  void install_line(uint64_t line, std::vector<uint8_t> bytes);
  void install_page(uint64_t page, std::vector<uint8_t> bytes);

  // Runs the placement-dependent translation step, then `issue` (under the caller's ambient
  // span context, so the fetch's RDMA legs nest correctly).
  void translate_then(std::function<void()> issue);

  // Serves `done` with bytes copied out of `buf` (whose base segment offset is `base`).
  void complete_from(const std::vector<uint8_t>& buf, uint64_t base, uint64_t offset,
                     uint64_t size, std::function<void(Result<std::vector<uint8_t>>)>& done);

  void note_access(uint64_t line);

  System* sys_;
  Process* client_;
  Config cfg_;
  Endpoint client_ep_;
  // Resolved once from the segment capability: where the bytes live and the rkey that
  // authorizes one-sided access to them.
  RdmaKey rkey_;
  uint32_t mem_node_ = 0;
  PoolId mem_pool_ = 0;
  uint64_t mem_addr_ = 0;  // segment base within the remote pool
  uint64_t seg_size_ = 0;

  // Caches keyed by line/page base offset; FIFO eviction via the deques (deterministic —
  // the unordered_maps are lookup-only).
  std::unordered_map<uint64_t, std::vector<uint8_t>> lines_;
  std::deque<uint64_t> line_fifo_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
  std::deque<uint64_t> page_fifo_;
  // In-flight page fetches (prefetch or baseline fault): arrival runs the waiters in order.
  std::unordered_map<uint64_t, std::vector<std::function<void()>>> pending_pages_;

  // Sequential-streak detector.
  uint64_t last_line_ = ~0ULL;
  uint32_t streak_ = 0;

  Stats stats_;
};

}  // namespace fractos

#endif  // SRC_SERVICES_FARMEM_H_
