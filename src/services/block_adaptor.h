// The block-device adaptor: exposes a disaggregated NVMe SSD through logical volumes
// (Section 5: "The block-device adaptor exposes Requests that read/write the contents of
// logical volumes (managed through separate Requests)").
//
// Request conventions:
//
//   mgmt (volume create): imm@0 u64 size, caps = [reply].
//                         reply: imm@0 u64 status, caps = [read_ep, write_ep, delete_ep]
//   read  (per volume):   imm@0 u64 offset, imm@8 u64 size,
//                         caps = [dst Memory, continuation] or [dst, continuation, error].
//                         On success the continuation is invoked VERBATIM — the adaptor does
//                         not know (or care) whether it is a GPU kernel invocation, an FS
//                         callback, or a client reply (the decentralized-execution core of
//                         the paper). On failure the error Request (if present) is invoked
//                         with imm@0 = status.
//   write (per volume):   imm@0 u64 offset, imm@8 u64 size,
//                         caps = [src Memory, continuation] or [src, continuation, error].
//   delete (per volume):  caps = [reply]. Frees the region and REVOKES the volume's read and
//                         write endpoints — every delegated capability to the freed blocks
//                         dies immediately (the use-after-free scenario of Section 3.5).
//
// Data path: device <-> staging slot in the adaptor's heap <-> memory_copy against the
// client-provided Memory capability (which may live on any node — GPU memory included).

#ifndef SRC_SERVICES_BLOCK_ADAPTOR_H_
#define SRC_SERVICES_BLOCK_ADAPTOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/system.h"
#include "src/futures/slot_pool.h"
#include "src/devices/nvme.h"

namespace fractos {

class BlockAdaptor {
 public:
  struct Params {
    uint32_t staging_slots = 8;
    uint64_t slot_bytes = 2ull << 20;  // max I/O size per request
    // Device DMA and network transfer are overlapped in sub-chunks of this size (real
    // NVMe + RDMA pipelines naturally; a store-and-forward adaptor would not).
    uint64_t stream_chunk = 64ull << 10;
  };

  BlockAdaptor(System* sys, uint32_t node, Controller& controller, SimNvme* nvme);
  BlockAdaptor(System* sys, uint32_t node, Controller& controller, SimNvme* nvme, Params params);

  Process& process() { return *proc_; }
  CapId mgmt_endpoint() const { return mgmt_ep_; }
  SimNvme& nvme() { return *nvme_; }
  size_t num_volumes() const { return volumes_.size(); }
  uint64_t max_io_bytes() const { return params_.slot_bytes; }

 private:
  struct Volume {
    uint64_t base = 0;
    uint64_t size = 0;
    CapId read_ep = kInvalidCap;
    CapId write_ep = kInvalidCap;
    CapId delete_ep = kInvalidCap;
  };
  struct Slot {
    size_t idx = 0;           // index in slots_ / the SlotPool
    uint64_t addr = 0;        // offset in the adaptor heap
    CapId mem = kInvalidCap;  // reusable Memory capability over the whole slot
  };

  void handle_mgmt(Process::Received r);
  void handle_read(uint32_t vol_id, Process::Received r);
  void handle_write(uint32_t vol_id, Process::Received r);
  void handle_delete(uint32_t vol_id, Process::Received r);

  // Fails an op through the optional error continuation.
  void fail_op(const Process::Received& r, ErrorCode code);

  System* sys_;
  Process* proc_;
  SimNvme* nvme_;
  Params params_;
  CapId mgmt_ep_ = kInvalidCap;
  std::unordered_map<uint32_t, Volume> volumes_;
  uint32_t next_vol_ = 1;
  uint64_t next_lba_ = 0;  // bump allocation over the device address space
  // Staging-slot pool: ops queue when all slots are busy.
  SlotPool slot_pool_;
  std::vector<Slot> slots_;
};

// Client-side helpers wrapping the adaptor's wire conventions.
struct BlockClient {
  struct Volume {
    CapId read_ep = kInvalidCap;
    CapId write_ep = kInvalidCap;
    CapId delete_ep = kInvalidCap;
    uint64_t size = 0;
  };

  static Future<Result<Volume>> create_volume(Process& proc, CapId mgmt_ep, uint64_t size);
  // Synchronous forms: resolve when the I/O's continuation fires.
  static Future<Status> read(Process& proc, const Volume& v, uint64_t off, uint64_t size,
                             CapId dst_mem);
  static Future<Status> write(Process& proc, const Volume& v, uint64_t off, uint64_t size,
                              CapId src_mem);
  static Future<Status> destroy(Process& proc, const Volume& v);
};

}  // namespace fractos

#endif  // SRC_SERVICES_BLOCK_ADAPTOR_H_
