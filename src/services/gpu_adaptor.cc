#include "src/services/gpu_adaptor.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"

namespace fractos {

namespace {

// Unpacks the invoke imm layout (extents concatenated in offset order) into u64 kernel args.
std::vector<uint64_t> unpack_args(const std::vector<ImmExtent>& imms) {
  std::vector<ImmExtent> sorted = imms;
  std::sort(sorted.begin(), sorted.end(),
            [](const ImmExtent& a, const ImmExtent& b) { return a.offset < b.offset; });
  std::vector<uint8_t> bytes;
  for (const auto& e : sorted) {
    bytes.insert(bytes.end(), e.bytes.begin(), e.bytes.end());
  }
  std::vector<uint64_t> args;
  for (size_t i = 0; i + 8 <= bytes.size(); i += 8) {
    uint64_t v = 0;
    for (size_t j = 0; j < 8; ++j) {
      v |= static_cast<uint64_t>(bytes[i + j]) << (8 * j);
    }
    args.push_back(v);
  }
  return args;
}

}  // namespace

GpuAdaptor::GpuAdaptor(System* sys, Controller& controller, SimGpu* gpu)
    : sys_(sys), gpu_(gpu) {
  proc_ = &sys->spawn("gpu-adaptor", gpu->node(), controller, 8ull << 20);
  init_ep_ = sys->await_ok(proc_->serve({}, [this](Process::Received r) {
    handle_init(std::move(r));
  }));
}

void GpuAdaptor::register_kernel(const std::string& name, SimGpu::Kernel kernel) {
  kernel_registry_[name] = std::move(kernel);
}

void GpuAdaptor::handle_init(Process::Received r) {
  if (r.num_caps() < 1) {
    return;  // no reply channel: nothing to do
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  const uint32_t ctx_id = next_ctx_++;

  std::vector<Future<Result<CapId>>> eps;
  eps.push_back(proc_->serve({}, [this, ctx_id](Process::Received rr) {
    handle_alloc(ctx_id, std::move(rr));
  }));
  eps.push_back(proc_->serve({}, [this, ctx_id](Process::Received rr) {
    handle_load(ctx_id, std::move(rr));
  }));
  eps.push_back(proc_->serve({}, [this, ctx_id](Process::Received rr) {
    handle_cleanup(ctx_id, std::move(rr));
  }));
  when_all(std::move(eps)).on_ready([this, ctx_id, reply](std::vector<Result<CapId>>&& cids) {
    for (const auto& c : cids) {
      if (!c.ok()) {
        proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
        return;
      }
    }
    Context ctx;
    ctx.gpu_ctx = gpu_->create_context();
    ctx.alloc_ep = cids[0].value();
    ctx.load_ep = cids[1].value();
    ctx.cleanup_ep = cids[2].value();
    contexts_[ctx_id] = ctx;
    proc_->request_invoke(reply, Process::Args{}
                                     .imm_u64(0, 0)
                                     .cap(ctx.alloc_ep)
                                     .cap(ctx.load_ep)
                                     .cap(ctx.cleanup_ep));
  });
}

void GpuAdaptor::handle_alloc(uint32_t ctx_id, Process::Received r) {
  auto it = contexts_.find(ctx_id);
  if (it == contexts_.end() || r.num_caps() < 1) {
    return;
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  const uint64_t size = r.imm_u64(0).value_or(0);
  auto addr = gpu_->alloc(it->second.gpu_ctx, size);
  if (!addr.ok()) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  const uint64_t device_addr = addr.value();
  proc_->memory_create_in(gpu_->pool(), device_addr, size, Perms::kReadWrite)
      .on_ready([this, ctx_id, reply, device_addr](Result<CapId>&& mem) {
        auto cit = contexts_.find(ctx_id);
        if (!mem.ok() || cit == contexts_.end()) {
          proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
          return;
        }
        cit->second.handed_out.push_back(mem.value());
        cit->second.buffers.push_back(device_addr);
        proc_->request_invoke(reply,
                              Process::Args{}.imm_u64(0, 0).imm_u64(8, device_addr).cap(mem.value()));
      });
}

void GpuAdaptor::handle_load(uint32_t ctx_id, Process::Received r) {
  auto it = contexts_.find(ctx_id);
  if (it == contexts_.end() || r.num_caps() < 1) {
    return;
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  auto name = r.imm_str(0);
  if (!name.has_value() || !kernel_registry_.contains(*name)) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  const SimGpu::KernelId kid = gpu_->load_kernel(*name, kernel_registry_[*name]);
  proc_->serve({}, [this, ctx_id, kid](Process::Received rr) {
    handle_invoke(ctx_id, kid, std::move(rr));
  }).on_ready([this, ctx_id, reply](Result<CapId>&& ep) {
    auto cit = contexts_.find(ctx_id);
    if (!ep.ok() || cit == contexts_.end()) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
      return;
    }
    cit->second.handed_out.push_back(ep.value());
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 0).cap(ep.value()));
  });
}

void GpuAdaptor::handle_invoke(uint32_t ctx_id, SimGpu::KernelId kernel, Process::Received r) {
  (void)ctx_id;
  // Parse capability arguments by kind: Memory caps form (src, dst) result copy-back pairs;
  // the last two Request caps are the success/error continuations.
  std::vector<CapId> mems;
  std::vector<CapId> reqs;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kMemory) {
      mems.push_back(c.cid);
    } else {
      reqs.push_back(c.cid);
    }
  }
  if (reqs.size() < 2 || mems.size() % 2 != 0) {
    if (!reqs.empty()) {
      proc_->request_invoke(reqs.back(), Process::Args{}.imm_u64(0, 1));
    }
    return;
  }
  const CapId success = reqs[reqs.size() - 2];
  const CapId error = reqs[reqs.size() - 1];
  const std::vector<uint64_t> args = unpack_args(r.imms);

  gpu_->launch(kernel, args, [this, mems, success, error](Status s) {
    if (!s.ok()) {
      proc_->request_invoke(error, Process::Args{}.imm_u64(0, static_cast<uint64_t>(s.error())));
      return;
    }
    if (mems.empty()) {
      proc_->request_invoke(success);
      return;
    }
    // Result copy-back: chain the (src, dst) pairs, then signal success.
    auto copies = std::make_shared<std::vector<std::pair<CapId, CapId>>>();
    for (size_t i = 0; i + 1 < mems.size(); i += 2) {
      copies->emplace_back(mems[i], mems[i + 1]);
    }
    auto step = std::make_shared<std::function<void(size_t)>>();
    *step = [this, copies, success, error,
             weak_step = std::weak_ptr<std::function<void(size_t)>>(step)](size_t i) {
      auto step = weak_step.lock();
      if (!step) {
        return;
      }
      if (i == copies->size()) {
        proc_->request_invoke(success);
        return;
      }
      proc_->memory_copy((*copies)[i].first, (*copies)[i].second)
          .on_ready([this, step, i, error](Status cs) {
            if (!cs.ok()) {
              proc_->request_invoke(error,
                                    Process::Args{}.imm_u64(0, static_cast<uint64_t>(cs.error())));
              return;
            }
            (*step)(i + 1);
          });
    };
    (*step)(0);
  });
}

void GpuAdaptor::handle_cleanup(uint32_t ctx_id, Process::Received r) {
  auto it = contexts_.find(ctx_id);
  const CapId reply = r.num_caps() >= 1 ? r.cap(r.num_caps() - 1) : kInvalidCap;
  if (it == contexts_.end()) {
    if (reply != kInvalidCap) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    }
    return;
  }
  Context ctx = it->second;
  contexts_.erase(it);
  gpu_->destroy_context(ctx.gpu_ctx);

  // Revoke everything handed out plus the per-context endpoints: all delegated copies die.
  std::vector<Future<Status>> revokes;
  for (CapId cid : ctx.handed_out) {
    revokes.push_back(proc_->cap_revoke(cid));
  }
  revokes.push_back(proc_->cap_revoke(ctx.alloc_ep));
  revokes.push_back(proc_->cap_revoke(ctx.load_ep));
  proc_->remove_endpoint(ctx.alloc_ep);
  proc_->remove_endpoint(ctx.load_ep);
  proc_->remove_endpoint(ctx.cleanup_ep);
  when_all(std::move(revokes)).on_ready([this, ctx, reply](std::vector<Status>&&) {
    proc_->cap_revoke(ctx.cleanup_ep);
    if (reply != kInvalidCap) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 0));
    }
  });
}

// --- client helpers --------------------------------------------------------------------------

Process::Args GpuClient::pack_args(const std::vector<uint64_t>& args) {
  std::vector<uint8_t> bytes;
  bytes.reserve(args.size() * 8);
  for (uint64_t v : args) {
    for (size_t j = 0; j < 8; ++j) {
      bytes.push_back(static_cast<uint8_t>(v >> (8 * j)));
    }
  }
  Process::Args a;
  if (!bytes.empty()) {
    a.imm(0, std::move(bytes));
  }
  return a;
}

Future<Result<GpuClient::Session>> GpuClient::init(Process& proc, CapId init_ep) {
  return proc.call(init_ep).then([](Result<Process::Received>&& r) -> Result<Session> {
    if (!r.ok()) {
      return r.error();
    }
    if (r.value().imm_u64(0).value_or(1) != 0 || r.value().num_caps() < 3) {
      return ErrorCode::kInternal;
    }
    Session s;
    s.alloc_ep = r.value().cap(0);
    s.load_ep = r.value().cap(1);
    s.cleanup_ep = r.value().cap(2);
    return s;
  });
}

Future<Result<GpuClient::Buffer>> GpuClient::alloc(Process& proc, const Session& s,
                                                   uint64_t size) {
  return proc.call(s.alloc_ep, Process::Args{}.imm_u64(0, size))
      .then([size](Result<Process::Received>&& r) -> Result<Buffer> {
        if (!r.ok()) {
          return r.error();
        }
        if (r.value().imm_u64(0).value_or(1) != 0 || r.value().num_caps() < 1) {
          return ErrorCode::kResourceExhausted;
        }
        Buffer b;
        b.mem = r.value().cap(0);
        b.device_addr = r.value().imm_u64(8).value_or(0);
        b.size = size;
        return b;
      });
}

Future<Result<CapId>> GpuClient::load(Process& proc, const Session& s, const std::string& name) {
  return proc.call(s.load_ep, Process::Args{}.imm_str(0, name))
      .then([](Result<Process::Received>&& r) -> Result<CapId> {
        if (!r.ok()) {
          return r.error();
        }
        if (r.value().imm_u64(0).value_or(1) != 0 || r.value().num_caps() < 1) {
          return ErrorCode::kNotFound;
        }
        return r.value().cap(0);
      });
}

Future<Status> GpuClient::run(Process& proc, CapId kernel_ep, const std::vector<uint64_t>& args,
                              CapId copy_src, CapId copy_dst) {
  Promise<Status> promise;
  auto success_f = proc.request_create({});
  auto error_f = proc.request_create({});
  when_all(std::vector<Future<Result<CapId>>>{std::move(success_f), std::move(error_f)})
      .on_ready([&proc, kernel_ep, args, copy_src, copy_dst,
                 promise](std::vector<Result<CapId>>&& eps) {
        if (!eps[0].ok() || !eps[1].ok()) {
          promise.set(Status(ErrorCode::kResourceExhausted));
          return;
        }
        const CapId success = eps[0].value();
        const CapId error = eps[1].value();
        proc.on_endpoint(success, [&proc, success, error, promise](Process::Received) {
          proc.remove_endpoint(success);
          proc.remove_endpoint(error);
          promise.set(ok_status());
        });
        proc.on_endpoint(error, [&proc, success, error, promise](Process::Received rr) {
          proc.remove_endpoint(success);
          proc.remove_endpoint(error);
          promise.set(Status(static_cast<ErrorCode>(rr.imm_u64(0).value_or(
              static_cast<uint64_t>(ErrorCode::kInternal)))));
        });
        Process::Args invoke_args = pack_args(args);
        if (copy_src != kInvalidCap && copy_dst != kInvalidCap) {
          invoke_args.cap(copy_src).cap(copy_dst);
        }
        invoke_args.cap(success).cap(error);
        proc.request_invoke(kernel_ep, std::move(invoke_args))
            .on_ready([promise](Status s) {
              if (!s.ok()) {
                promise.set(s);
              }
            });
      });
  return promise.future();
}

Future<Status> GpuClient::cleanup(Process& proc, const Session& s) {
  return proc.call(s.cleanup_ep).then([](Result<Process::Received>&& r) -> Status {
    if (!r.ok()) {
      return r.error();
    }
    return r.value().imm_u64(0).value_or(1) == 0 ? ok_status()
                                                 : Status(ErrorCode::kInternal);
  });
}

}  // namespace fractos
