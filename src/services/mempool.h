// The far-memory pool service: the lower tier of the disaggregated memory stack
// (DESIGN.md §4k). A memory node exports slices of a large RDMA-registered pool as named,
// capability-protected segments; compute-side clients attach by name and then access the
// segment with one-sided RDMA through the returned Memory capability — the service is on the
// control path only (attach/detach), never on the data path, exactly like the paper's
// adaptors keep Controllers out of bulk transfers.
//
// Request conventions:
//
//   attach: imm@0 u64 size, imm@8 name, caps = [reply].
//           reply: imm@0 u64 status (0 ok, 1 exhausted/invalid, 2 size conflict),
//                  imm@8 u64 addr (segment base within the pool),
//                  imm@16 u64 size, caps = [Memory capability over the segment].
//           Attaching an existing name returns the SAME segment (shared far memory by
//           naming); the requested size must then fit inside it.
//
// Segments are bump-allocated, page-aligned, and zero-initialized (PoolBytes never touches
// RSS for untouched pages, so multi-GiB pools are cheap to model).

#ifndef SRC_SERVICES_MEMPOOL_H_
#define SRC_SERVICES_MEMPOOL_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/core/system.h"

namespace fractos {

class MemPoolService {
 public:
  struct Params {
    uint64_t segment_align = 4096;
  };

  // Spawns the pool Process on `node` and registers a fresh `capacity_bytes` RDMA pool there.
  static std::unique_ptr<MemPoolService> bootstrap(System* sys, uint32_t node,
                                                   Controller& controller,
                                                   uint64_t capacity_bytes);
  static std::unique_ptr<MemPoolService> bootstrap(System* sys, uint32_t node,
                                                   Controller& controller,
                                                   uint64_t capacity_bytes, Params params);

  Process& process() { return *proc_; }
  CapId attach_endpoint() const { return attach_ep_; }
  uint32_t node() const { return node_; }
  PoolId pool() const { return pool_; }
  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t bytes_reserved() const { return next_addr_; }
  size_t num_segments() const { return segments_.size(); }

 private:
  struct Segment {
    uint64_t addr = 0;
    uint64_t size = 0;
    CapId mem = kInvalidCap;
  };

  MemPoolService(System* sys, uint32_t node, Controller& controller, uint64_t capacity_bytes,
                 Params params);
  void handle_attach(Process::Received r);
  void reply_segment(const Segment& seg, CapId reply);

  System* sys_;
  Process* proc_;
  uint32_t node_;
  Params params_;
  uint64_t capacity_;
  uint64_t next_addr_ = 0;
  PoolId pool_ = 0;
  CapId attach_ep_ = kInvalidCap;
  std::unordered_map<std::string, Segment> segments_;
};

// One attached far-memory segment, from the client's point of view.
struct FarMemSegment {
  CapId mem = kInvalidCap;  // Memory capability in the CLIENT's capability space
  uint64_t addr = 0;        // base within the pool (matches the capability's extent)
  uint64_t size = 0;
};

// Client-side helper wrapping the attach wire convention.
struct MemPoolClient {
  static Future<Result<FarMemSegment>> attach(Process& proc, CapId attach_ep,
                                              const std::string& name, uint64_t size);
};

}  // namespace fractos

#endif  // SRC_SERVICES_MEMPOOL_H_
