// The GPU adaptor: exposes a disaggregated GPU as a FractOS service (Section 5).
//
// "The GPU adaptor runs on the host CPU, using the OS GPU driver, and offers several RPCs
// exposed through Requests: GPU context initialization, memory de/allocation, kernel loading,
// kernel invocation, and cleanup."
//
// Request conventions (all replies/continuations follow the last-capability convention):
//
//   init:     caps = [reply].             reply: caps = [alloc_ep, load_ep, cleanup_ep]
//   alloc:    imm@0 u64 size, caps = [reply].
//             reply: imm@0 u64 device_addr, caps = [Memory cap over the GPU buffer]
//   load:     imm@0 kernel name, caps = [reply].  reply: caps = [kernel invoke endpoint]
//   invoke:   imms  = packed u64 kernel arguments (forwarded to the kernel, paper: "all
//             other immediate arguments are forwarded to the GPU kernel itself");
//             caps  = zero or one (src, dst) Memory pairs to copy after completion (the
//             result copy-back of the face-verification pipeline), then [success, error]
//             Requests ("the GPU-kernel invocation Requests expect two Request arguments
//             used to signal success/error of the kernel invocation").
//   cleanup:  caps = [reply]. Destroys the context, frees device memory, and REVOKES every
//             capability the context handed out (delegated copies die with them).

#ifndef SRC_SERVICES_GPU_ADAPTOR_H_
#define SRC_SERVICES_GPU_ADAPTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/system.h"
#include "src/devices/gpu.h"

namespace fractos {

class GpuAdaptor {
 public:
  // Spawns the adaptor Process on the GPU's node, attached to `controller`.
  GpuAdaptor(System* sys, Controller& controller, SimGpu* gpu);

  Process& process() { return *proc_; }
  CapId init_endpoint() const { return init_ep_; }
  SimGpu& gpu() { return *gpu_; }

  // Host-side kernel registry (stands for the CUDA module the driver would load).
  void register_kernel(const std::string& name, SimGpu::Kernel kernel);

  size_t num_contexts() const { return contexts_.size(); }

 private:
  struct Context {
    SimGpu::ContextId gpu_ctx = 0;
    CapId alloc_ep = kInvalidCap;
    CapId load_ep = kInvalidCap;
    CapId cleanup_ep = kInvalidCap;
    std::vector<CapId> handed_out;  // memory + kernel caps to revoke on cleanup
    std::vector<uint64_t> buffers;  // device addresses to free
  };

  void handle_init(Process::Received r);
  void handle_alloc(uint32_t ctx_id, Process::Received r);
  void handle_load(uint32_t ctx_id, Process::Received r);
  void handle_invoke(uint32_t ctx_id, SimGpu::KernelId kernel, Process::Received r);
  void handle_cleanup(uint32_t ctx_id, Process::Received r);

  System* sys_;
  Process* proc_;
  SimGpu* gpu_;
  CapId init_ep_ = kInvalidCap;
  std::unordered_map<std::string, SimGpu::Kernel> kernel_registry_;
  std::unordered_map<uint32_t, Context> contexts_;
  uint32_t next_ctx_ = 1;
};

// Client-side helpers wrapping the adaptor's wire conventions.
struct GpuClient {
  struct Session {
    CapId alloc_ep = kInvalidCap;
    CapId load_ep = kInvalidCap;
    CapId cleanup_ep = kInvalidCap;
  };
  struct Buffer {
    CapId mem = kInvalidCap;
    uint64_t device_addr = 0;
    uint64_t size = 0;
  };

  static Future<Result<Session>> init(Process& proc, CapId init_ep);
  static Future<Result<Buffer>> alloc(Process& proc, const Session& s, uint64_t size);
  static Future<Result<CapId>> load(Process& proc, const Session& s, const std::string& name);
  // Synchronous kernel run: creates one-shot success/error endpoints and resolves when one
  // fires. `copy` optionally appends a (src, dst) result copy-back pair.
  static Future<Status> run(Process& proc, CapId kernel_ep, const std::vector<uint64_t>& args,
                            CapId copy_src = kInvalidCap, CapId copy_dst = kInvalidCap);
  static Future<Status> cleanup(Process& proc, const Session& s);

  // Packs u64 kernel arguments into the invoke imm layout.
  static Process::Args pack_args(const std::vector<uint64_t>& args);
};

}  // namespace fractos

#endif  // SRC_SERVICES_GPU_ADAPTOR_H_
