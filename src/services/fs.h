// The file-system service: the upper tier of the paper's two-tier storage stack (Section 5).
//
// "We implement a simple FS layer ... The FS Process exposes Requests to open extent-based
// files. A successful completion returns Requests to read/write the file contents.
// Internally, the FS uses one logical volume in the block device for each file extent."
//
// Two modes (Fig. 4):
//  * FS mode: every read/write is mediated by the FS Process — block-device I/O lands in FS
//    staging memory and is then copied to/from the client's Memory capability (two network
//    data transfers, the red path).
//  * DAX mode: on open, the FS hands the client revocation-tree CHILDREN of the block
//    adaptor's per-volume Requests — filtered by the open mode's permissions — so the client
//    talks to the block device directly (one transfer, the green path), without the FS giving
//    up the ability to revoke on close/unlink. This is the dynamic service composition the
//    paper cuts the disaggregation tax with.
//
// Request conventions:
//   create: imm@0 u64 size, imm@8 name, caps=[reply].    reply: imm@0 status
//   open:   imm@0 u64 mode (0 RO / 1 RW), imm@8 u64 dax (0/1), imm@16 name, caps=[reply].
//           reply: imm@0 status, imm@8 file_size, imm@16 extent_bytes,
//                  imm@24 n_read_eps, imm@32 n_write_eps,
//                  caps = [close_ep, read endpoints..., write endpoints...]
//           (FS mode: one fs_read / fs_write endpoint; DAX: one per extent.)
//   fs_read / fs_write (per open): imm@0 u64 off, imm@8 u64 size,
//           caps = [client Memory, continuation] or [mem, continuation, error].
//   close (per open): caps=[reply]. FS mode: revokes the per-open endpoints. DAX: drops a
//           reference; the cached extent children are revoked when the last open closes.
//   unlink: imm@0 name, caps=[reply]. Destroys the file's volumes (the block adaptor revokes
//           the per-volume endpoints, killing every outstanding DAX capability).

#ifndef SRC_SERVICES_FS_H_
#define SRC_SERVICES_FS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/system.h"
#include "src/futures/slot_pool.h"
#include "src/services/block_adaptor.h"

namespace fractos {

class FsService {
 public:
  struct Params {
    uint64_t extent_bytes = 4ull << 20;  // one block-device volume per extent
    uint32_t staging_slots = 8;
    uint64_t slot_bytes = 2ull << 20;
    // FS-mode I/O is streamed: chunks of at most stream_chunk bytes, up to pipeline_depth
    // in flight, so the block-device leg overlaps the client-copy leg.
    uint64_t stream_chunk = 256ull << 10;
    uint32_t pipeline_depth = 2;
  };

  // Spawns the FS Process on `node`; `block_mgmt_ep` must already be installed in ITS
  // capability space (use FsService::bootstrap to wire it).
  static std::unique_ptr<FsService> bootstrap(System* sys, uint32_t node, Controller& controller,
                                              Process& block_proc, CapId block_mgmt_ep);
  static std::unique_ptr<FsService> bootstrap(System* sys, uint32_t node, Controller& controller,
                                              Process& block_proc, CapId block_mgmt_ep,
                                              Params params);
  // Fails in-flight chunks and queued slot acquires with kAborted, in a controlled order.
  ~FsService();

  Process& process() { return *proc_; }
  CapId create_endpoint() const { return create_ep_; }
  CapId open_endpoint() const { return open_ep_; }
  CapId unlink_endpoint() const { return unlink_ep_; }
  size_t num_files() const { return files_.size(); }

 private:
  struct File {
    uint64_t size = 0;
    std::vector<BlockClient::Volume> extents;
    // Cached DAX revocation-tree children (created lazily, shared across opens, refcounted).
    std::vector<CapId> dax_read;
    std::vector<CapId> dax_write;
    uint32_t dax_refs = 0;
  };
  struct Open {
    std::string name;
    bool rw = false;
    bool dax = false;
    CapId read_ep = kInvalidCap;   // FS mode
    CapId write_ep = kInvalidCap;  // FS mode (RW only)
    CapId close_ep = kInvalidCap;
  };
  // A staging slot with its own block-RPC completion endpoints (created once; the per-slot
  // `pending` promise routes completions to the chunk currently using the slot).
  struct Slot {
    uint64_t addr = 0;
    CapId mem = kInvalidCap;
    CapId ok_ep = kInvalidCap;
    CapId err_ep = kInvalidCap;
    std::optional<Promise<Status>> pending;
  };

  FsService(System* sys, uint32_t node, Controller& controller, Params params);
  void init_endpoints(CapId block_mgmt);

  void handle_create(Process::Received r);
  void create_extents(std::shared_ptr<File> file, const std::string& name, uint64_t size,
                      uint64_t n_extents, uint64_t i, CapId reply);
  void handle_open(Process::Received r);
  void handle_unlink(Process::Received r);
  void destroy_extents(std::shared_ptr<std::vector<BlockClient::Volume>> extents, size_t i,
                       CapId reply);
  void handle_io(uint32_t open_id, bool is_write, Process::Received r);
  void handle_close(uint32_t open_id, Process::Received r);

  void open_fs_mode(const std::string& name, File& f, bool rw, CapId reply);
  void open_dax_mode(const std::string& name, File& f, bool rw, CapId reply);
  void reply_open(const File& f, CapId close_ep, std::vector<CapId> read_eps,
                  std::vector<CapId> write_eps, CapId reply);

  // Completes the slot's pending promise (if any) with `s`.
  void finish_slot(size_t slot, Status s);
  void fail_op(const Process::Received& r, ErrorCode code);

  // Issues chunks of a (possibly extent-spanning) FS-mode I/O, up to pipeline_depth in
  // flight.
  void io_pump(std::shared_ptr<struct FsIoState> st);
  void run_chunk(std::shared_ptr<struct FsIoState> st, size_t slot_idx, uint64_t op_off,
                 uint64_t chunk);

  System* sys_;
  Process* proc_;
  Params params_;
  CapId block_mgmt_ = kInvalidCap;
  CapId create_ep_ = kInvalidCap;
  CapId open_ep_ = kInvalidCap;
  CapId unlink_ep_ = kInvalidCap;
  std::unordered_map<std::string, File> files_;
  std::unordered_map<uint32_t, Open> opens_;
  uint32_t next_open_ = 1;
  // Declared before slots_ so teardown closes the pool before any Slot state goes away.
  SlotPool slot_pool_;
  std::vector<Slot> slots_;
};

// Client-side helpers.
struct FsClient {
  struct OpenFile {
    bool dax = false;
    bool rw = false;
    uint64_t size = 0;
    uint64_t extent_bytes = 0;
    CapId close_ep = kInvalidCap;
    std::vector<CapId> read_eps;   // FS mode: [fs_read]; DAX: per extent
    std::vector<CapId> write_eps;  // FS mode: [fs_write] (RW); DAX: per extent (RW)
  };

  static Future<Status> create(Process& proc, CapId create_ep, const std::string& name,
                               uint64_t size);
  static Future<Result<OpenFile>> open(Process& proc, CapId open_ep, const std::string& name,
                                       bool rw, bool dax);
  // Synchronous reads/writes against `mem` (sized >= `size`); handles DAX extent spanning.
  static Future<Status> read(Process& proc, const OpenFile& f, uint64_t off, uint64_t size,
                             CapId mem);
  static Future<Status> write(Process& proc, const OpenFile& f, uint64_t off, uint64_t size,
                              CapId mem);
  static Future<Status> close(Process& proc, const OpenFile& f);
  static Future<Status> unlink(Process& proc, CapId unlink_ep, const std::string& name);
};

}  // namespace fractos

#endif  // SRC_SERVICES_FS_H_
