#include "src/services/block_adaptor.h"

#include <utility>

#include "src/base/assert.h"

namespace fractos {

BlockAdaptor::BlockAdaptor(System* sys, uint32_t node, Controller& controller, SimNvme* nvme)
    : BlockAdaptor(sys, node, controller, nvme, Params{}) {}

BlockAdaptor::BlockAdaptor(System* sys, uint32_t node, Controller& controller, SimNvme* nvme,
                           Params params)
    : sys_(sys), nvme_(nvme), params_(params), slot_pool_(params.staging_slots) {
  const uint64_t heap = params_.staging_slots * params_.slot_bytes + (1 << 20);
  proc_ = &sys->spawn("block-adaptor", node, controller, heap);
  for (uint32_t i = 0; i < params_.staging_slots; ++i) {
    Slot slot;
    slot.idx = i;
    slot.addr = proc_->alloc(params_.slot_bytes);
    slot.mem =
        sys->await_ok(proc_->memory_create(slot.addr, params_.slot_bytes, Perms::kReadWrite));
    slots_.push_back(slot);
  }
  mgmt_ep_ = sys->await_ok(proc_->serve({}, [this](Process::Received r) {
    handle_mgmt(std::move(r));
  }));
}

void BlockAdaptor::fail_op(const Process::Received& r, ErrorCode code) {
  std::vector<CapId> reqs;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kRequest) {
      reqs.push_back(c.cid);
    }
  }
  if (reqs.size() >= 2) {
    proc_->request_invoke(reqs[1], Process::Args{}.imm_u64(0, static_cast<uint64_t>(code)));
  }
}

void BlockAdaptor::handle_mgmt(Process::Received r) {
  if (r.num_caps() < 1) {
    return;
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  const uint64_t size = r.imm_u64(0).value_or(0);
  const uint64_t aligned = (size + 4095) & ~4095ull;
  if (size == 0 || next_lba_ + aligned > nvme_->capacity()) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  const uint32_t vol_id = next_vol_++;
  const uint64_t base = next_lba_;
  next_lba_ += aligned;

  std::vector<Future<Result<CapId>>> eps;
  eps.push_back(proc_->serve({}, [this, vol_id](Process::Received rr) {
    handle_read(vol_id, std::move(rr));
  }));
  eps.push_back(proc_->serve({}, [this, vol_id](Process::Received rr) {
    handle_write(vol_id, std::move(rr));
  }));
  eps.push_back(proc_->serve({}, [this, vol_id](Process::Received rr) {
    handle_delete(vol_id, std::move(rr));
  }));
  when_all(std::move(eps)).on_ready([this, vol_id, base, size, reply](
                                        std::vector<Result<CapId>>&& cids) {
    for (const auto& c : cids) {
      if (!c.ok()) {
        proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
        return;
      }
    }
    Volume v;
    v.base = base;
    v.size = size;
    v.read_ep = cids[0].value();
    v.write_ep = cids[1].value();
    v.delete_ep = cids[2].value();
    volumes_[vol_id] = v;
    proc_->request_invoke(
        reply,
        Process::Args{}.imm_u64(0, 0).cap(v.read_ep).cap(v.write_ep).cap(v.delete_ep));
  });
}

void BlockAdaptor::handle_read(uint32_t vol_id, Process::Received r) {
  auto vit = volumes_.find(vol_id);
  if (vit == volumes_.end()) {
    fail_op(r, ErrorCode::kRevoked);
    return;
  }
  const Volume& vol = vit->second;
  const uint64_t off = r.imm_u64(0).value_or(~0ull);
  const uint64_t size = r.imm_u64(8).value_or(0);
  CapId dst = kInvalidCap;
  uint64_t dst_size = 0;
  CapId cont = kInvalidCap;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kMemory && dst == kInvalidCap) {
      dst = c.cid;
      dst_size = c.mem_size;
    } else if (c.kind == ObjectKind::kRequest && cont == kInvalidCap) {
      cont = c.cid;
    }
  }
  if (dst == kInvalidCap || cont == kInvalidCap || size == 0 || size > params_.slot_bytes ||
      off + size > vol.size || dst_size < size) {
    fail_op(r, ErrorCode::kInvalidArgument);
    return;
  }
  const uint64_t device_off = vol.base + off;
  slot_pool_.acquire().and_then([this, device_off, size, dst, cont, r](size_t slot_idx) {
    const Slot slot = slots_[slot_idx];
    // Stream the read: device DMA of sub-chunk k+1 overlaps the network copy of sub-chunk k
    // (each lands at its own offset inside the staging slot).
    struct ReadState {
      uint64_t issued = 0;
      uint64_t copied = 0;
      uint32_t device_in_flight = 0;  // up to 2: the device has parallel flash channels
      bool failed = false;
      ErrorCode error = ErrorCode::kInternal;
      uint32_t copies_in_flight = 0;
    };
    auto rs = std::make_shared<ReadState>();
    auto pump = std::make_shared<std::function<void()>>();
    auto finish_check = [this, rs, slot, size, cont, r]() {
      if (rs->failed) {
        if (rs->device_in_flight == 0 && rs->copies_in_flight == 0) {
          rs->failed = false;  // report once
          slot_pool_.release(slot.idx);
          fail_op(r, rs->error);
        }
        return;
      }
      if (rs->copied == size) {
        slot_pool_.release(slot.idx);
        // Invoke the continuation VERBATIM (decentralized control flow).
        proc_->request_invoke(cont);
      }
    };
    *pump = [this, rs, finish_check, slot, device_off, size, dst,
             weak_pump = std::weak_ptr<std::function<void()>>(pump)]() {
      auto pump = weak_pump.lock();
      if (!pump) {
        return;
      }
      while (!rs->failed && rs->device_in_flight < 2 && rs->issued < size) {
      const uint64_t sub_off = rs->issued;
      const uint64_t sub = std::min(params_.stream_chunk, size - sub_off);
      rs->issued += sub;
      ++rs->device_in_flight;
      nvme_->read(device_off + sub_off, sub,
                  [this, rs, pump, finish_check, slot, sub_off, sub,
                   dst](Result<Payload> data) {
                    --rs->device_in_flight;
                    if (!data.ok()) {
                      rs->failed = true;
                      rs->error = data.error();
                      finish_check();
                      return;
                    }
                    // DMA from the device lands in the staging slot...
                    proc_->write_mem(slot.addr + sub_off, data.value().bytes());
                    // ...and moves on to the destination — which may be GPU memory on
                    // another node (the b step of Fig. 2) — while the next sub-chunk reads.
                    ++rs->copies_in_flight;
                    proc_->memory_copy(slot.mem, dst, sub, sub_off, sub_off)
                        .on_ready([rs, finish_check, sub](Status cs) {
                          --rs->copies_in_flight;
                          if (!cs.ok()) {
                            rs->failed = true;
                            rs->error = cs.error();
                          } else {
                            rs->copied += sub;
                          }
                          finish_check();
                        });
                    (*pump)();
                  });
      }
    };
    (*pump)();
  }).or_else([this, r](ErrorCode e) { fail_op(r, e); });
}

void BlockAdaptor::handle_write(uint32_t vol_id, Process::Received r) {
  auto vit = volumes_.find(vol_id);
  if (vit == volumes_.end()) {
    fail_op(r, ErrorCode::kRevoked);
    return;
  }
  const Volume& vol = vit->second;
  const uint64_t off = r.imm_u64(0).value_or(~0ull);
  const uint64_t size = r.imm_u64(8).value_or(0);
  CapId src = kInvalidCap;
  uint64_t src_size = 0;
  CapId cont = kInvalidCap;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kMemory && src == kInvalidCap) {
      src = c.cid;
      src_size = c.mem_size;
    } else if (c.kind == ObjectKind::kRequest && cont == kInvalidCap) {
      cont = c.cid;
    }
  }
  if (src == kInvalidCap || cont == kInvalidCap || size == 0 || size > params_.slot_bytes ||
      off + size > vol.size || src_size < size) {
    fail_op(r, ErrorCode::kInvalidArgument);
    return;
  }
  const uint64_t device_off = vol.base + off;
  slot_pool_.acquire().and_then([this, device_off, size, src, cont, r](size_t slot_idx) {
    const Slot slot = slots_[slot_idx];
    // Stream the write: the network pull of sub-chunk k+1 overlaps the device program of
    // sub-chunk k.
    struct WriteState {
      uint64_t issued = 0;
      uint64_t written = 0;
      bool wire_busy = false;
      bool failed = false;
      ErrorCode error = ErrorCode::kInternal;
      uint32_t writes_in_flight = 0;
    };
    auto ws = std::make_shared<WriteState>();
    auto pump = std::make_shared<std::function<void()>>();
    auto finish_check = [this, ws, slot, size, cont, r]() {
      if (ws->failed) {
        if (!ws->wire_busy && ws->writes_in_flight == 0) {
          ws->failed = false;
          slot_pool_.release(slot.idx);
          fail_op(r, ws->error);
        }
        return;
      }
      if (ws->written == size) {
        slot_pool_.release(slot.idx);
        proc_->request_invoke(cont);
      }
    };
    *pump = [this, ws, finish_check, slot, device_off, size, src,
             weak_pump = std::weak_ptr<std::function<void()>>(pump)]() {
      auto pump = weak_pump.lock();
      if (!pump) {
        return;
      }
      if (ws->failed || ws->wire_busy || ws->issued >= size) {
        return;
      }
      const uint64_t sub_off = ws->issued;
      const uint64_t sub = std::min(params_.stream_chunk, size - sub_off);
      ws->issued += sub;
      ws->wire_busy = true;
      // Pull the client data into the staging slot (one network transfer)...
      proc_->memory_copy(src, slot.mem, sub, sub_off, sub_off)
          .on_ready([this, ws, pump, finish_check, slot, device_off, sub_off, sub](Status cs) {
            ws->wire_busy = false;
            if (!cs.ok()) {
              ws->failed = true;
              ws->error = cs.error();
              finish_check();
              return;
            }
            // ...then DMA it into the device while the next sub-chunk pulls.
            ++ws->writes_in_flight;
            nvme_->write(device_off + sub_off, proc_->read_mem(slot.addr + sub_off, sub),
                         [ws, finish_check, sub](Status st) {
                           --ws->writes_in_flight;
                           if (!st.ok()) {
                             ws->failed = true;
                             ws->error = st.error();
                           } else {
                             ws->written += sub;
                           }
                           finish_check();
                         });
            (*pump)();
          });
    };
    (*pump)();
  }).or_else([this, r](ErrorCode e) { fail_op(r, e); });
}

void BlockAdaptor::handle_delete(uint32_t vol_id, Process::Received r) {
  const CapId reply = r.num_caps() >= 1 ? r.cap(r.num_caps() - 1) : kInvalidCap;
  auto vit = volumes_.find(vol_id);
  if (vit == volumes_.end()) {
    if (reply != kInvalidCap) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    }
    return;
  }
  const Volume vol = vit->second;
  volumes_.erase(vit);
  // "the SSD Process must selectively revoke all capabilities granting access to the freed
  // block, and must do so as fast as possible" (Section 3.5).
  proc_->remove_endpoint(vol.read_ep);
  proc_->remove_endpoint(vol.write_ep);
  proc_->remove_endpoint(vol.delete_ep);
  std::vector<Future<Status>> revokes;
  revokes.push_back(proc_->cap_revoke(vol.read_ep));
  revokes.push_back(proc_->cap_revoke(vol.write_ep));
  revokes.push_back(proc_->cap_revoke(vol.delete_ep));
  when_all(std::move(revokes)).on_ready([this, reply](std::vector<Status>&&) {
    if (reply != kInvalidCap) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 0));
    }
  });
}

// --- client helpers --------------------------------------------------------------------------

Future<Result<BlockClient::Volume>> BlockClient::create_volume(Process& proc, CapId mgmt_ep,
                                                               uint64_t size) {
  return proc.call(mgmt_ep, Process::Args{}.imm_u64(0, size))
      .then([size](Result<Process::Received>&& r) -> Result<Volume> {
        if (!r.ok()) {
          return r.error();
        }
        if (r.value().imm_u64(0).value_or(1) != 0 || r.value().num_caps() < 3) {
          return ErrorCode::kResourceExhausted;
        }
        Volume v;
        v.read_ep = r.value().cap(0);
        v.write_ep = r.value().cap(1);
        v.delete_ep = r.value().cap(2);
        v.size = size;
        return v;
      });
}

namespace {

// Shared by read/write: invoke `ep` with [mem, ok, err] continuations and resolve on either.
Future<Status> block_io(Process& proc, CapId ep, uint64_t off, uint64_t size, CapId mem) {
  Promise<Status> promise;
  auto ok_f = proc.request_create({});
  auto err_f = proc.request_create({});
  when_all(std::vector<Future<Result<CapId>>>{std::move(ok_f), std::move(err_f)})
      .on_ready([&proc, ep, off, size, mem, promise](std::vector<Result<CapId>>&& eps) {
        if (!eps[0].ok() || !eps[1].ok()) {
          promise.set(Status(ErrorCode::kResourceExhausted));
          return;
        }
        const CapId ok_ep = eps[0].value();
        const CapId err_ep = eps[1].value();
        proc.on_endpoint(ok_ep, [&proc, ok_ep, err_ep, promise](Process::Received) {
          proc.remove_endpoint(ok_ep);
          proc.remove_endpoint(err_ep);
          promise.set(ok_status());
        });
        proc.on_endpoint(err_ep, [&proc, ok_ep, err_ep, promise](Process::Received rr) {
          proc.remove_endpoint(ok_ep);
          proc.remove_endpoint(err_ep);
          promise.set(Status(static_cast<ErrorCode>(
              rr.imm_u64(0).value_or(static_cast<uint64_t>(ErrorCode::kInternal)))));
        });
        proc.request_invoke(ep, Process::Args{}
                                    .imm_u64(0, off)
                                    .imm_u64(8, size)
                                    .cap(mem)
                                    .cap(ok_ep)
                                    .cap(err_ep))
            .on_ready([promise](Status s) {
              if (!s.ok()) {
                promise.set(s);
              }
            });
      });
  return promise.future();
}

}  // namespace

Future<Status> BlockClient::read(Process& proc, const Volume& v, uint64_t off, uint64_t size,
                                 CapId dst_mem) {
  return block_io(proc, v.read_ep, off, size, dst_mem);
}

Future<Status> BlockClient::write(Process& proc, const Volume& v, uint64_t off, uint64_t size,
                                  CapId src_mem) {
  return block_io(proc, v.write_ep, off, size, src_mem);
}

Future<Status> BlockClient::destroy(Process& proc, const Volume& v) {
  return proc.call(v.delete_ep).then([](Result<Process::Received>&& r) -> Status {
    if (!r.ok()) {
      return r.error();
    }
    return r.value().imm_u64(0).value_or(1) == 0 ? ok_status() : Status(ErrorCode::kNotFound);
  });
}

}  // namespace fractos
