#include "src/services/farmem.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/base/assert.h"
#include "src/sim/span.h"

namespace fractos {

namespace {

// Interned once: faults fire per access, so the instrumentation path never builds strings.
struct FarMemNames {
  NameId actor = intern_name("farmem");
  NameId line_fetch = intern_name("line-fetch");
  NameId page_fetch = intern_name("page-fetch");
  NameId prefetch_wait = intern_name("prefetch-wait");
  NameId write_through = intern_name("write-through");
  NameId xlate = intern_name("xlate");
};

const FarMemNames& farmem_names() {
  static const FarMemNames n;
  return n;
}

}  // namespace

FarMemClient::FarMemClient(System* sys, Process& client, Controller& client_ctrl,
                           CapId segment, Config cfg)
    : sys_(sys), client_(&client), cfg_(cfg), client_ep_{client.node(), Loc::kHost} {
  FRACTOS_CHECK(cfg_.line_bytes > 0);
  FRACTOS_CHECK(cfg_.page_bytes % cfg_.line_bytes == 0);
  FRACTOS_CHECK(cfg_.line_slots > 0 && cfg_.page_slots > 0);
  const Result<CapEntry> e = client_ctrl.inspect_cap(client.pid(), segment);
  FRACTOS_CHECK_MSG(e.ok(), "far-mem segment capability not in the client's space");
  const CapEntry& entry = e.value();
  FRACTOS_CHECK(entry.kind == ObjectKind::kMemory);
  // The capability resolves once into (rkey, fabric location); from here on every fetch is a
  // one-sided verb — no Controller on the data path.
  rkey_ = RdmaKey{entry.ref.owner, entry.ref.index, entry.ref.reboot_count};
  mem_node_ = entry.mem.node;
  mem_pool_ = entry.mem.pool;
  mem_addr_ = entry.mem.addr;
  seg_size_ = entry.mem.size;
  FRACTOS_CHECK(seg_size_ > 0 && seg_size_ % cfg_.page_bytes == 0);
}

void FarMemClient::note_access(uint64_t line) {
  if (last_line_ != ~0ULL && line == last_line_ + cfg_.line_bytes) {
    ++streak_;
  } else if (line != last_line_) {
    streak_ = 1;
  }
  last_line_ = line;
}

void FarMemClient::complete_from(const std::vector<uint8_t>& buf, uint64_t base,
                                 uint64_t offset, uint64_t size,
                                 std::function<void(Result<std::vector<uint8_t>>)>& done) {
  std::vector<uint8_t> out(buf.begin() + static_cast<ptrdiff_t>(offset - base),
                           buf.begin() + static_cast<ptrdiff_t>(offset - base + size));
  // Hits complete through the loop too, so caller-visible ordering never depends on hit/miss.
  sys_->loop().post([out = std::move(out), done = std::move(done)]() mutable {
    done(std::move(out));
  });
}

void FarMemClient::read(uint64_t offset, uint64_t size,
                        std::function<void(Result<std::vector<uint8_t>>)> done) {
  FRACTOS_CHECK(size > 0 && offset + size <= seg_size_);
  const uint64_t line = offset / cfg_.line_bytes * cfg_.line_bytes;
  FRACTOS_CHECK_MSG(offset + size <= line + cfg_.line_bytes,
                    "far-mem access must lie within one cacheline");
  const uint64_t page = offset / cfg_.page_bytes * cfg_.page_bytes;
  ++stats_.accesses;
  note_access(line);
  // A streak long enough arms a prefetch of the NEXT page — issued after the current access
  // is served/fetching, so the background page never queues ahead of a demand fetch at the
  // client NIC.
  const bool arm = cfg_.dual_granularity && streak_ >= cfg_.streak_threshold;
  const uint64_t next_page = page + cfg_.page_bytes;

  if (const auto pit = pages_.find(page); pit != pages_.end()) {
    ++stats_.page_hits;
    complete_from(pit->second, page, offset, size, done);
    if (arm) {
      maybe_prefetch(next_page);
    }
    return;
  }
  if (cfg_.dual_granularity) {
    if (const auto lit = lines_.find(line); lit != lines_.end()) {
      ++stats_.line_hits;
      complete_from(lit->second, line, offset, size, done);
      if (arm) {
        maybe_prefetch(next_page);
      }
      return;
    }
  }
  if (const auto wit = pending_pages_.find(page); wit != pending_pages_.end()) {
    // The page is already in flight: wait for it instead of fetching again. Only this wait —
    // not the background transfer — is attributed to the access.
    ++stats_.prefetch_waits;
    SpanTracer* tr = span_tracing_active() ? sys_->loop().span_tracer() : nullptr;
    const FarMemNames& n = farmem_names();
    const uint64_t span =
        tr != nullptr
            ? tr->begin(n.actor, SpanKind::kFarMem, n.prefetch_wait, sys_->loop().now())
            : 0;
    wit->second.push_back([this, page, offset, size, span, done = std::move(done)]() mutable {
      if (SpanTracer* t2 = span_tracing_active() ? sys_->loop().span_tracer() : nullptr;
          t2 != nullptr) {
        t2->end(span, sys_->loop().now());
      }
      const auto pit2 = pages_.find(page);
      if (pit2 == pages_.end()) {
        done(ErrorCode::kInternal);
        return;
      }
      complete_from(pit2->second, page, offset, size, done);
    });
    if (arm) {
      maybe_prefetch(next_page);
    }
    return;
  }

  if (cfg_.dual_granularity) {
    fetch_line(line, offset, size, std::move(done));
  } else {
    fetch_page(page, offset, size, std::move(done));
  }
  if (arm) {
    maybe_prefetch(next_page);
  }
}

void FarMemClient::fetch_line(uint64_t line, uint64_t offset, uint64_t size,
                              std::function<void(Result<std::vector<uint8_t>>)> done) {
  ++stats_.demand_fetches;
  stats_.hot_bytes += cfg_.line_bytes;
  SpanTracer* tr = span_tracing_active() ? sys_->loop().span_tracer() : nullptr;
  const FarMemNames& n = farmem_names();
  const uint64_t span =
      tr != nullptr ? tr->begin(n.actor, SpanKind::kFarMem, n.line_fetch, sys_->loop().now())
                    : 0;
  // Nest the translation and RDMA legs under the fault span (begin() does not install).
  std::optional<SpanScope> scope;
  if (span != 0) {
    scope.emplace(tr->context_of(span));
  }
  translate_then([this, line, offset, size, span, done = std::move(done)]() mutable {
    sys_->net().rdma_read(
        client_ep_, mem_node_, rkey_, mem_pool_, mem_addr_ + line, cfg_.line_bytes,
        [this, line, offset, size, span,
         done = std::move(done)](Result<Payload>&& r) mutable {
          SpanTracer* t2 = span_tracing_active() ? sys_->loop().span_tracer() : nullptr;
          if (!r.ok()) {
            if (t2 != nullptr) {
              t2->end_error(span, sys_->loop().now(), "rdma-failed");
            }
            done(r.error());
            return;
          }
          const Payload& p = r.value();
          install_line(line, std::vector<uint8_t>(p.data(), p.data() + p.size()));
          if (t2 != nullptr) {
            t2->end(span, sys_->loop().now());
          }
          std::vector<uint8_t> out(p.data() + (offset - line),
                                   p.data() + (offset - line + size));
          done(std::move(out));
        },
        LinkClass::kHot);
  });
}

void FarMemClient::fetch_page(uint64_t page, uint64_t offset, uint64_t size,
                              std::function<void(Result<std::vector<uint8_t>>)> done) {
  ++stats_.demand_fetches;
  stats_.bulk_bytes += cfg_.page_bytes;
  SpanTracer* tr = span_tracing_active() ? sys_->loop().span_tracer() : nullptr;
  const FarMemNames& n = farmem_names();
  const uint64_t span =
      tr != nullptr ? tr->begin(n.actor, SpanKind::kFarMem, n.page_fetch, sys_->loop().now())
                    : 0;
  std::optional<SpanScope> scope;
  if (span != 0) {
    scope.emplace(tr->context_of(span));
  }
  pending_pages_[page];  // later faults on this page wait instead of double-fetching
  translate_then([this, page, offset, size, span, done = std::move(done)]() mutable {
    sys_->net().rdma_read(
        client_ep_, mem_node_, rkey_, mem_pool_, mem_addr_ + page, cfg_.page_bytes,
        [this, page, offset, size, span,
         done = std::move(done)](Result<Payload>&& r) mutable {
          std::vector<std::function<void()>> waiters = std::move(pending_pages_[page]);
          pending_pages_.erase(page);
          SpanTracer* t2 = span_tracing_active() ? sys_->loop().span_tracer() : nullptr;
          if (!r.ok()) {
            if (t2 != nullptr) {
              t2->end_error(span, sys_->loop().now(), "rdma-failed");
            }
            done(r.error());
            for (auto& w : waiters) {
              w();
            }
            return;
          }
          const Payload& p = r.value();
          install_page(page, std::vector<uint8_t>(p.data(), p.data() + p.size()));
          if (t2 != nullptr) {
            t2->end(span, sys_->loop().now());
          }
          std::vector<uint8_t> out(p.data() + (offset - page),
                                   p.data() + (offset - page + size));
          done(std::move(out));
          for (auto& w : waiters) {
            w();
          }
        },
        LinkClass::kBulk);
  });
}

void FarMemClient::maybe_prefetch(uint64_t page) {
  if (!cfg_.dual_granularity || page >= seg_size_) {
    return;
  }
  if (pages_.contains(page) || pending_pages_.contains(page)) {
    return;
  }
  ++stats_.prefetches;
  stats_.bulk_bytes += cfg_.page_bytes;
  pending_pages_[page];
  // Background movement: detach from the faulting trace so only prefetch-WAIT time is ever
  // attributed to an access.
  SpanScope detach;
  translate_then([this, page]() {
    sys_->net().rdma_read(
        client_ep_, mem_node_, rkey_, mem_pool_, mem_addr_ + page, cfg_.page_bytes,
        [this, page](Result<Payload>&& r) mutable {
          std::vector<std::function<void()>> waiters = std::move(pending_pages_[page]);
          pending_pages_.erase(page);
          if (r.ok()) {
            const Payload& p = r.value();
            install_page(page, std::vector<uint8_t>(p.data(), p.data() + p.size()));
          }
          for (auto& w : waiters) {
            w();
          }
        },
        LinkClass::kBulk);
  });
}

void FarMemClient::install_line(uint64_t line, std::vector<uint8_t> bytes) {
  auto [it, inserted] = lines_.try_emplace(line);
  it->second = std::move(bytes);
  if (inserted) {
    line_fifo_.push_back(line);
    if (line_fifo_.size() > cfg_.line_slots) {
      lines_.erase(line_fifo_.front());
      line_fifo_.pop_front();
    }
  }
}

void FarMemClient::install_page(uint64_t page, std::vector<uint8_t> bytes) {
  auto [it, inserted] = pages_.try_emplace(page);
  it->second = std::move(bytes);
  if (inserted) {
    page_fifo_.push_back(page);
    if (page_fifo_.size() > cfg_.page_slots) {
      pages_.erase(page_fifo_.front());
      page_fifo_.pop_front();
    }
  }
}

void FarMemClient::write(uint64_t offset, std::vector<uint8_t> bytes,
                         std::function<void(Status)> done) {
  const uint64_t size = bytes.size();
  FRACTOS_CHECK(size > 0 && offset + size <= seg_size_);
  const uint64_t line = offset / cfg_.line_bytes * cfg_.line_bytes;
  FRACTOS_CHECK_MSG(offset + size <= line + cfg_.line_bytes,
                    "far-mem access must lie within one cacheline");
  ++stats_.write_throughs;
  // Write-through keeps every cached copy coherent with the remote segment, so eviction
  // never needs a writeback path.
  if (const auto lit = lines_.find(line); lit != lines_.end()) {
    std::copy(bytes.begin(), bytes.end(),
              lit->second.begin() + static_cast<ptrdiff_t>(offset - line));
  }
  const uint64_t page = offset / cfg_.page_bytes * cfg_.page_bytes;
  if (const auto pit = pages_.find(page); pit != pages_.end()) {
    std::copy(bytes.begin(), bytes.end(),
              pit->second.begin() + static_cast<ptrdiff_t>(offset - page));
  }
  const LinkClass cls = cfg_.dual_granularity ? LinkClass::kHot : LinkClass::kBulk;
  if (cfg_.dual_granularity) {
    stats_.hot_bytes += size;
  } else {
    stats_.bulk_bytes += size;
  }
  SpanTracer* tr = span_tracing_active() ? sys_->loop().span_tracer() : nullptr;
  const FarMemNames& n = farmem_names();
  const uint64_t span =
      tr != nullptr
          ? tr->begin(n.actor, SpanKind::kFarMem, n.write_through, sys_->loop().now())
          : 0;
  std::optional<SpanScope> scope;
  if (span != 0) {
    scope.emplace(tr->context_of(span));
  }
  translate_then([this, offset, span, cls, data = Payload(std::move(bytes)),
                  done = std::move(done)]() mutable {
    sys_->net().rdma_write(
        client_ep_, mem_node_, rkey_, mem_pool_, mem_addr_ + offset, std::move(data),
        [this, span, done = std::move(done)](Status s) mutable {
          if (SpanTracer* t2 = span_tracing_active() ? sys_->loop().span_tracer() : nullptr;
              t2 != nullptr) {
            if (s.ok()) {
              t2->end(span, sys_->loop().now());
            } else {
              t2->end_error(span, sys_->loop().now(), "rdma-failed");
            }
          }
          done(s);
        },
        cls);
  });
}

void FarMemClient::translate_then(std::function<void()> issue) {
  SpanTracer* tr = span_tracing_active() ? sys_->loop().span_tracer() : nullptr;
  EventLoop& loop = sys_->loop();
  const FarMemNames& n = farmem_names();
  if (cfg_.placement == XlatePlacement::kTor) {
    // In-network translation: the ToR's match-action table answers at pipeline latency — no
    // round trip leaves the rack fabric.
    if (tr != nullptr) {
      tr->record(n.actor, SpanKind::kTranslation, n.xlate, loop.now(),
                 loop.now() + cfg_.tor_xlate);
    }
    loop.schedule_after(cfg_.tor_xlate, std::move(issue));
    return;
  }
  const bool snic = cfg_.placement == XlatePlacement::kSnic;
  const Loc loc = snic ? Loc::kSnic : Loc::kHost;
  const Duration cost = snic ? cfg_.snic_xlate : cfg_.cpu_xlate;
  const uint64_t span =
      tr != nullptr ? tr->begin(n.actor, SpanKind::kTranslation, n.xlate, loop.now()) : 0;
  const Endpoint owner{mem_node_, loc};
  // Control round trip to the owner's translation agent (a header-sized lookup each way),
  // with the lookup itself charged on the owning core — host CPU or SmartNIC ARM.
  sys_->net().send(client_ep_, owner, Traffic::kControl, Payload::zeros(16),
                   [this, owner, loc, cost, span, issue = std::move(issue)](Payload) mutable {
                     sys_->net().node(mem_node_).context(loc).run(
                         cost, [this, owner, span, issue = std::move(issue)]() mutable {
                           sys_->net().send(
                               owner, client_ep_, Traffic::kControl, Payload::zeros(16),
                               [this, span, issue = std::move(issue)](Payload) mutable {
                                 if (SpanTracer* t2 = span_tracing_active()
                                                         ? sys_->loop().span_tracer()
                                                         : nullptr;
                                     t2 != nullptr) {
                                   t2->end(span, sys_->loop().now());
                                 }
                                 issue();
                               });
                         });
                   });
}

}  // namespace fractos
