#include "src/services/mempool.h"

#include <utility>

#include "src/base/assert.h"

namespace fractos {

std::unique_ptr<MemPoolService> MemPoolService::bootstrap(System* sys, uint32_t node,
                                                          Controller& controller,
                                                          uint64_t capacity_bytes) {
  return bootstrap(sys, node, controller, capacity_bytes, Params{});
}

std::unique_ptr<MemPoolService> MemPoolService::bootstrap(System* sys, uint32_t node,
                                                          Controller& controller,
                                                          uint64_t capacity_bytes,
                                                          Params params) {
  return std::unique_ptr<MemPoolService>(
      new MemPoolService(sys, node, controller, capacity_bytes, params));
}

MemPoolService::MemPoolService(System* sys, uint32_t node, Controller& controller,
                               uint64_t capacity_bytes, Params params)
    : sys_(sys), node_(node), params_(params), capacity_(capacity_bytes) {
  FRACTOS_CHECK(capacity_bytes > 0);
  FRACTOS_CHECK(params_.segment_align > 0);
  // The exported pool is separate from the Process heap: it models the memory node's
  // donated DRAM, not service working memory.
  pool_ = sys->net().node(node).add_pool(capacity_bytes);
  proc_ = &sys->spawn("mempool-service", node, controller, 1 << 20);
  attach_ep_ = sys->await_ok(proc_->serve({}, [this](Process::Received r) {
    handle_attach(std::move(r));
  }));
}

void MemPoolService::reply_segment(const Segment& seg, CapId reply) {
  proc_->request_invoke(reply, Process::Args{}
                                   .imm_u64(0, 0)
                                   .imm_u64(8, seg.addr)
                                   .imm_u64(16, seg.size)
                                   .cap(seg.mem));
}

void MemPoolService::handle_attach(Process::Received r) {
  if (r.num_caps() < 1) {
    return;
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  const uint64_t size = r.imm_u64(0).value_or(0);
  auto name = r.imm_str(8);
  if (!name.has_value() || size == 0) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  if (const auto it = segments_.find(*name); it != segments_.end()) {
    // Shared attach: the name is the rendezvous. A second tenant asking for more than the
    // segment holds is a conflict, not a grow — segments are immutable once exported.
    if (size > it->second.size) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 2));
      return;
    }
    reply_segment(it->second, reply);
    return;
  }
  const uint64_t align = params_.segment_align;
  const uint64_t addr = (next_addr_ + align - 1) / align * align;
  if (addr + size > capacity_) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  next_addr_ = addr + size;
  proc_->memory_create_in(pool_, addr, size, Perms::kReadWrite)
      .on_ready([this, name = *name, addr, size, reply](Result<CapId>&& mem) mutable {
        if (!mem.ok()) {
          proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
          return;
        }
        Segment seg{addr, size, mem.value()};
        segments_.emplace(std::move(name), seg);
        reply_segment(seg, reply);
      });
}

Future<Result<FarMemSegment>> MemPoolClient::attach(Process& proc, CapId attach_ep,
                                                    const std::string& name, uint64_t size) {
  return proc.call(attach_ep, Process::Args{}.imm_u64(0, size).imm_str(8, name))
      .then([](Result<Process::Received>&& r) -> Result<FarMemSegment> {
        if (!r.ok()) {
          return r.error();
        }
        if (r.value().imm_u64(0).value_or(1) != 0 || r.value().num_caps() < 1) {
          return ErrorCode::kResourceExhausted;
        }
        FarMemSegment seg;
        seg.mem = r.value().cap(0);
        seg.addr = r.value().imm_u64(8).value_or(0);
        seg.size = r.value().imm_u64(16).value_or(0);
        return seg;
      });
}

}  // namespace fractos
