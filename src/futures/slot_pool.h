// SlotPool: a bounded-concurrency semaphore whose units are slot indices.
//
// Services and apps pre-provision N parallel resources (request endpoints, staging buffers,
// GPU contexts) and must cap in-flight work at N. This pool replaces the five copy-pasted
// with_slot/waiting_-deque implementations that used to live in fs, block_adaptor,
// baseline_fs, face_verify, and cloud_inference.
//
// acquire() resolves with an exclusive slot index in [0, size()): immediately if a slot is
// free (lowest-numbered first from the initial state), otherwise FIFO when one is released.
// release() hands the slot to the longest-waiting acquirer synchronously, preserving the
// deterministic wake order the old per-service deques had. If the pool is destroyed with
// acquirers still queued, their futures complete with ErrorCode::kBrokenPromise (the broken-
// promise channel), so teardown never strands a continuation.

#ifndef SRC_FUTURES_SLOT_POOL_H_
#define SRC_FUTURES_SLOT_POOL_H_

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "src/base/assert.h"
#include "src/base/result.h"
#include "src/futures/future.h"

namespace fractos {

class SlotPool {
 public:
  explicit SlotPool(size_t slots) : total_(slots) {
    free_.reserve(slots);
    for (size_t i = slots; i-- > 0;) {
      free_.push_back(i);  // back of the vector is slot 0: acquisition order 0, 1, 2, ...
    }
  }

  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  Future<Result<size_t>> acquire() {
    if (closed_) {
      return make_ready_future(Result<size_t>(ErrorCode::kAborted));
    }
    if (!free_.empty()) {
      const size_t slot = free_.back();
      free_.pop_back();
      return make_ready_future(Result<size_t>(slot));
    }
    Promise<Result<size_t>> p;
    waiting_.push_back(p);
    return p.future();
  }

  // Shuts the pool down: queued acquirers fail with `status`, later acquires fail with
  // kAborted, and releases just return slots to the free list instead of waking anyone.
  // Owners call this first in their destructors so teardown cannot re-enter half-destroyed
  // members through a waiter continuation.
  void close(ErrorCode status = ErrorCode::kAborted) {
    closed_ = true;
    auto waiters = std::move(waiting_);
    waiting_.clear();
    for (auto& p : waiters) {
      p.set(Result<size_t>(status));
    }
  }

  bool closed() const { return closed_; }

  void release(size_t slot) {
    FRACTOS_DCHECK(slot < total_);
    if (!waiting_.empty()) {
      Promise<Result<size_t>> next = std::move(waiting_.front());
      waiting_.pop_front();
      next.set(Result<size_t>(slot));
      return;
    }
    free_.push_back(slot);
  }

  size_t size() const { return total_; }
  size_t available() const { return free_.size(); }
  size_t waiting() const { return waiting_.size(); }

 private:
  size_t total_;
  bool closed_ = false;
  std::vector<size_t> free_;
  std::deque<Promise<Result<size_t>>> waiting_;
};

}  // namespace fractos

#endif  // SRC_FUTURES_SLOT_POOL_H_
