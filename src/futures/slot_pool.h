// SlotPool: a bounded-concurrency semaphore whose units are slot indices.
//
// Services and apps pre-provision N parallel resources (request endpoints, staging buffers,
// GPU contexts) and must cap in-flight work at N. This pool replaces the five copy-pasted
// with_slot/waiting_-deque implementations that used to live in fs, block_adaptor,
// baseline_fs, face_verify, and cloud_inference.
//
// acquire() resolves with an exclusive slot index in [0, size()): immediately if a slot is
// free (lowest-numbered first from the initial state), otherwise FIFO when one is released.
// release() hands the slot to the longest-waiting acquirer synchronously, preserving the
// deterministic wake order the old per-service deques had. If the pool is destroyed with
// acquirers still queued, their futures complete with ErrorCode::kBrokenPromise (the broken-
// promise channel), so teardown never strands a continuation.

#ifndef SRC_FUTURES_SLOT_POOL_H_
#define SRC_FUTURES_SLOT_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/base/assert.h"
#include "src/base/result.h"
#include "src/futures/future.h"
#include "src/sim/event_loop.h"
#include "src/sim/intern.h"
#include "src/sim/metrics.h"
#include "src/sim/span.h"

namespace fractos {

class SlotPool {
 public:
  explicit SlotPool(size_t slots) : total_(slots) {
    free_.reserve(slots);
    for (size_t i = slots; i-- > 0;) {
      free_.push_back(i);  // back of the vector is slot 0: acquisition order 0, 1, 2, ...
    }
  }

  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  // Opts the pool into observability under `slots.<name>.*` metrics and kQueue spans for
  // blocked acquires. Purely additive: an uninstrumented pool (loop == nullptr) behaves
  // exactly as before, and an instrumented one never schedules events or advances time.
  void instrument(EventLoop* loop, const std::string& name) {
    loop_ = loop;
    name_id_ = intern_name(name);
    key_acquires_ = intern_name("slots." + name + ".acquires");
    key_waits_ = intern_name("slots." + name + ".waits");
    key_wait_ns_ = intern_name("slots." + name + ".wait_ns");
  }

  Future<Result<size_t>> acquire() {
    if (closed_) {
      return make_ready_future(Result<size_t>(ErrorCode::kAborted));
    }
    if (loop_ != nullptr && loop_->metrics() != nullptr) {
      loop_->metrics()->add(key_acquires_);
    }
    if (!free_.empty()) {
      const size_t slot = free_.back();
      free_.pop_back();
      return make_ready_future(Result<size_t>(slot));
    }
    Waiter w;
    if (loop_ != nullptr) {
      w.enqueued = loop_->now();
      if (loop_->metrics() != nullptr) {
        loop_->metrics()->add(key_waits_);
      }
      if (span_tracing_active() && loop_->span_tracer() != nullptr) {
        static const NameId kSlotWait = intern_name("slot-wait");
        w.span = loop_->span_tracer()->begin(name_id_, SpanKind::kQueue, kSlotWait, loop_->now());
      }
    }
    Promise<Result<size_t>> p = w.promise;
    waiting_.push_back(std::move(w));
    return p.future();
  }

  // Shuts the pool down: queued acquirers fail with `status`, later acquires fail with
  // kAborted, and releases just return slots to the free list instead of waking anyone.
  // Owners call this first in their destructors so teardown cannot re-enter half-destroyed
  // members through a waiter continuation.
  void close(ErrorCode status = ErrorCode::kAborted) {
    closed_ = true;
    auto waiters = std::move(waiting_);
    waiting_.clear();
    for (auto& w : waiters) {
      if (loop_ != nullptr && loop_->span_tracer() != nullptr) {
        loop_->span_tracer()->end_error(w.span, loop_->now(), "pool-closed");
      }
      w.promise.set(Result<size_t>(status));
    }
  }

  bool closed() const { return closed_; }

  void release(size_t slot) {
    FRACTOS_DCHECK(slot < total_);
    if (!waiting_.empty()) {
      Waiter next = std::move(waiting_.front());
      waiting_.pop_front();
      if (loop_ != nullptr) {
        if (loop_->span_tracer() != nullptr) {
          loop_->span_tracer()->end(next.span, loop_->now());
        }
        if (loop_->metrics() != nullptr) {
          loop_->metrics()->observe(key_wait_ns_,
                                    static_cast<uint64_t>((loop_->now() - next.enqueued).ns()));
        }
      }
      next.promise.set(Result<size_t>(slot));
      return;
    }
    free_.push_back(slot);
  }

  size_t size() const { return total_; }
  size_t available() const { return free_.size(); }
  size_t waiting() const { return waiting_.size(); }

 private:
  struct Waiter {
    Promise<Result<size_t>> promise;
    uint64_t span = 0;  // kQueue span covering the wait (0 when tracing is off)
    Time enqueued;
  };

  size_t total_;
  bool closed_ = false;
  std::vector<size_t> free_;
  std::deque<Waiter> waiting_;
  EventLoop* loop_ = nullptr;  // set by instrument(); null pools are silent
  NameId name_id_ = kInvalidNameId;     // span actor
  NameId key_acquires_ = kInvalidNameId;  // slots.<name>.* metric keys, pre-interned
  NameId key_waits_ = kInvalidNameId;
  NameId key_wait_ns_ = kInvalidNameId;
};

}  // namespace fractos

#endif  // SRC_FUTURES_SLOT_POOL_H_
