// Single-threaded promise/future library.
//
// The FractOS prototype "pervasively use[s] C++ promises and futures to develop asynchronous
// code, and build[s its] own promise/future library to optimize per-thread concurrency"
// (Section 4). This reproduction does the same: all syscalls return futures, and services are
// written as continuation chains. Because the whole cluster runs on one deterministic event
// loop, no atomics or locks are needed — exactly the optimization the paper describes (their
// profiling showed shared_ptr atomics dominating SmartNIC deployments).
//
// Semantics:
//   * single consumer: at most one continuation may be attached to a Future;
//   * continuations run synchronously when the value is (or becomes) available;
//   * Future<T>::then() flattens nested futures (then returning Future<U> yields Future<U>);
//   * void-returning continuations yield Future<Unit>.

#ifndef SRC_FUTURES_FUTURE_H_
#define SRC_FUTURES_FUTURE_H_

#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/assert.h"

namespace fractos {

struct Unit {
  constexpr bool operator==(const Unit&) const = default;
};

template <typename T>
class Future;
template <typename T>
class Promise;

namespace internal {

template <typename T>
struct FutureState {
  std::optional<T> value;
  std::function<void(T&&)> continuation;
  bool consumed = false;
};

template <typename T>
struct IsFuture : std::false_type {};
template <typename U>
struct IsFuture<Future<U>> : std::true_type {
  using value_type = U;
};

}  // namespace internal

template <typename T>
class Future {
 public:
  using value_type = T;

  Future() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ != nullptr && state_->value.has_value(); }

  // Peeks at a ready value without consuming it. CHECK-fails if not ready.
  const T& peek() const {
    FRACTOS_CHECK(ready());
    return *state_->value;
  }

  // Consumes a ready value. CHECK-fails if not ready or already consumed.
  T take() {
    FRACTOS_CHECK(ready());
    FRACTOS_CHECK(!state_->consumed);
    state_->consumed = true;
    return std::move(*state_->value);
  }

  // Attaches the single continuation; runs immediately if the value is already set.
  void on_ready(std::function<void(T&&)> cb) {
    FRACTOS_CHECK(state_ != nullptr);
    FRACTOS_CHECK(!state_->consumed);
    FRACTOS_CHECK(state_->continuation == nullptr);
    if (state_->value.has_value()) {
      state_->consumed = true;
      cb(std::move(*state_->value));
    } else {
      state_->continuation = std::move(cb);
    }
  }

  // Chains a continuation. The result is a Future of the continuation's result; futures
  // returned by the continuation are flattened, void maps to Unit. (Defined after Promise.)
  template <typename F>
  auto then(F&& f);

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state) : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  Future<T> future() const { return Future<T>(state_); }

  void set(T value) const {
    FRACTOS_CHECK(!state_->value.has_value());
    if (state_->continuation != nullptr) {
      auto cb = std::move(state_->continuation);
      state_->continuation = nullptr;
      state_->consumed = true;
      cb(std::move(value));
    } else {
      state_->value = std::move(value);
    }
  }

  bool fulfilled() const { return state_->value.has_value() || state_->consumed; }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
template <typename F>
auto Future<T>::then(F&& f) {
  using R = std::invoke_result_t<F, T&&>;
  if constexpr (std::is_void_v<R>) {
    Promise<Unit> p;
    auto fut = p.future();
    on_ready([f = std::forward<F>(f), p](T&& v) mutable {
      f(std::move(v));
      p.set(Unit{});
    });
    return fut;
  } else if constexpr (internal::IsFuture<R>::value) {
    using U = typename internal::IsFuture<R>::value_type;
    Promise<U> p;
    auto fut = p.future();
    on_ready([f = std::forward<F>(f), p](T&& v) mutable {
      f(std::move(v)).on_ready([p](U&& u) mutable { p.set(std::move(u)); });
    });
    return fut;
  } else {
    Promise<R> p;
    auto fut = p.future();
    on_ready([f = std::forward<F>(f), p](T&& v) mutable { p.set(f(std::move(v))); });
    return fut;
  }
}

template <typename T>
Future<std::decay_t<T>> make_ready_future(T&& value) {
  Promise<std::decay_t<T>> p;
  p.set(std::forward<T>(value));
  return p.future();
}

inline Future<Unit> make_ready_future() { return make_ready_future(Unit{}); }

// Completes with all results (in input order) once every input future completes.
template <typename T>
Future<std::vector<T>> when_all(std::vector<Future<T>> futures) {
  struct Gather {
    std::vector<std::optional<T>> slots;
    size_t remaining;
    Promise<std::vector<T>> promise;
  };
  auto gather = std::make_shared<Gather>();
  gather->slots.resize(futures.size());
  gather->remaining = futures.size();
  Promise<std::vector<T>> promise = gather->promise;
  if (futures.empty()) {
    promise.set({});
    return promise.future();
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    futures[i].on_ready([gather, i](T&& v) {
      gather->slots[i] = std::move(v);
      if (--gather->remaining == 0) {
        std::vector<T> out;
        out.reserve(gather->slots.size());
        for (auto& slot : gather->slots) {
          out.push_back(std::move(*slot));
        }
        gather->promise.set(std::move(out));
      }
    });
  }
  return promise.future();
}

}  // namespace fractos

#endif  // SRC_FUTURES_FUTURE_H_
