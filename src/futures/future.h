// Single-threaded promise/future library.
//
// The FractOS prototype "pervasively use[s] C++ promises and futures to develop asynchronous
// code, and build[s its] own promise/future library to optimize per-thread concurrency"
// (Section 4). This reproduction does the same: all syscalls return futures, controller peer
// operations and service completions are futures, and services are written as continuation
// chains. Because the whole cluster runs on one deterministic event loop, no atomics or locks
// are needed — exactly the optimization the paper describes (their profiling showed shared_ptr
// atomics dominating SmartNIC deployments).
//
// Semantics:
//   * single consumer: at most one continuation may be attached to a Future;
//   * continuations run synchronously when the value is (or becomes) available, up to a
//     bounded synchronous depth (kMaxSyncContinuationDepth); deeper deliveries are deferred
//     to a flat trampoline queue drained by the outermost delivery frame, so arbitrarily long
//     chains (100k+ links) cannot overflow the stack while simulated-time ordering is
//     unchanged — no event-loop hop is involved;
//   * Future<T>::then() flattens nested futures (then returning Future<U> yields Future<U>);
//   * void-returning continuations yield Future<Unit>;
//   * Result-typed futures carry an error channel: and_then()/or_else() short-circuit on
//     ErrorCode, when_any() races futures, and with_timeout() (src/futures/timeout.h) maps a
//     deadline to ErrorCode::kTimeout;
//   * broken promises are detected: if every Promise for a state dies without set(), a
//     Result-typed future completes with ErrorCode::kBrokenPromise; a non-Result future with
//     a continuation attached CHECK-fails (the continuation would otherwise dangle forever).

#ifndef SRC_FUTURES_FUTURE_H_
#define SRC_FUTURES_FUTURE_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/assert.h"
#include "src/base/result.h"
#include "src/sim/span.h"

namespace fractos {

struct Unit {
  constexpr bool operator==(const Unit&) const = default;
};

template <typename T>
class Future;
template <typename T>
class Promise;

namespace internal {

template <typename T>
struct FutureState {
  std::optional<T> value;
  std::function<void(T&&)> continuation;
  bool consumed = false;
  bool broken = false;    // every Promise died without set()
  int promise_refs = 0;   // live Promise handles sharing this state
};

template <typename T>
struct IsFuture : std::false_type {};
template <typename U>
struct IsFuture<Future<U>> : std::true_type {
  using value_type = U;
};

template <typename T>
struct IsResult : std::false_type {};
template <typename U>
struct IsResult<Result<U>> : std::true_type {
  using value_type = U;
};

// --- trampoline ---------------------------------------------------------------------------------
//
// Continuations run synchronously until the delivery stack reaches kMaxSyncContinuationDepth;
// beyond that they are queued and drained iteratively by the outermost delivery frame. The
// bound is small enough that a deep .then() chain stays within a few stack frames, and large
// enough that ordinary service pipelines never defer (so existing synchronous-order semantics
// and simulated-time determinism are preserved).

inline constexpr int kMaxSyncContinuationDepth = 64;

struct Trampoline {
  int depth = 0;
  std::deque<std::function<void()>> deferred;
};

inline Trampoline& trampoline() {
  // Per-thread: each shard worker (DESIGN.md §4j) bounds its own continuation depth. A
  // deferred continuation always drains before its outermost delivery frame returns, i.e.
  // within the same event, so per-thread state never leaks across events or shards.
  static thread_local Trampoline t;
  return t;
}

template <typename T>
void deliver(std::function<void(T&&)> cb, T value) {
  Trampoline& t = trampoline();
  if (t.depth >= kMaxSyncContinuationDepth) {
    // Too deep to run inline: defer. The value moves through a shared_ptr because
    // std::function requires copyable captures.
    t.deferred.push_back(
        [cb = std::move(cb), v = std::make_shared<T>(std::move(value))]() { cb(std::move(*v)); });
    return;
  }
  ++t.depth;
  cb(std::move(value));
  --t.depth;
  if (t.depth == 0) {
    while (!t.deferred.empty()) {
      auto next = std::move(t.deferred.front());
      t.deferred.pop_front();
      ++t.depth;
      next();
      --t.depth;
    }
  }
}

// Runs when the last Promise for `state` is destroyed before set(). Result-typed futures get
// kBrokenPromise through the error channel; non-Result futures with a continuation attached
// CHECK-fail (silently dropping the continuation is the footgun this exists to catch).
template <typename T>
void break_promise(FutureState<T>& state) {
  state.broken = true;
  if constexpr (IsResult<T>::value) {
    if (state.continuation != nullptr) {
      auto cb = std::move(state.continuation);
      state.continuation = nullptr;
      state.consumed = true;
      deliver<T>(std::move(cb), T(ErrorCode::kBrokenPromise));
    } else {
      state.value.emplace(ErrorCode::kBrokenPromise);
    }
  } else {
    FRACTOS_CHECK_MSG(state.continuation == nullptr,
                      "Promise destroyed without set() while a continuation was attached");
  }
}

}  // namespace internal

template <typename T>
class Future {
 public:
  using value_type = T;

  Future() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ != nullptr && state_->value.has_value(); }

  // True iff every Promise died without delivering a value. Result-typed futures additionally
  // become ready() with ErrorCode::kBrokenPromise.
  bool broken() const { return state_ != nullptr && state_->broken; }

  // Peeks at a ready value without consuming it. CHECK-fails if not ready.
  const T& peek() const {
    FRACTOS_CHECK(ready());
    return *state_->value;
  }

  // Consumes a ready value. CHECK-fails if not ready or already consumed.
  T take() {
    FRACTOS_CHECK(ready());
    FRACTOS_CHECK(!state_->consumed);
    state_->consumed = true;
    return std::move(*state_->value);
  }

  // Attaches the single continuation; runs immediately if the value is already set.
  // CHECK-fails on a future whose promises all died without a value (non-Result types only;
  // Result-typed broken futures deliver kBrokenPromise like any other error).
  void on_ready(std::function<void(T&&)> cb) {
    FRACTOS_CHECK(state_ != nullptr);
    FRACTOS_CHECK(!state_->consumed);
    FRACTOS_CHECK(state_->continuation == nullptr);
    if (state_->value.has_value()) {
      state_->consumed = true;
      internal::deliver<T>(std::move(cb), std::move(*state_->value));
    } else {
      FRACTOS_CHECK_MSG(!state_->broken, "on_ready on a broken promise's future");
      // While span tracing is on, a stored continuation carries the ambient trace context it
      // was attached under, so delivery (from whatever stack sets the promise) re-joins the
      // attaching request's trace. Ready futures above need no wrap: they deliver on the
      // attaching stack, where the context is already ambient.
      if (span_tracing_active()) {
        const SpanContext ctx = ambient_span_context();
        if (ctx.valid()) {
          state_->continuation = [ctx, cb = std::move(cb)](T&& v) mutable {
            SpanScope scope(ctx);
            cb(std::move(v));
          };
          return;
        }
      }
      state_->continuation = std::move(cb);
    }
  }

  // Chains a continuation. The result is a Future of the continuation's result; futures
  // returned by the continuation are flattened, void maps to Unit. (Defined after Promise.)
  template <typename F>
  auto then(F&& f);

  // Result-typed futures only: runs `f` with the success value (no argument for Status);
  // errors short-circuit past `f`. `f` may return void (-> Status), a plain V (-> Result<V>),
  // a Result<V>, or a Future<Result<V>> (flattened). (Defined after Promise.)
  template <typename F>
  auto and_then(F&& f);

  // Result-typed futures only: runs `f(ErrorCode)` on error; success passes through. `f` may
  // return void (error propagates unchanged, `f` is a side effect), or a T / Result payload /
  // Future<T> to substitute a recovery value. (Defined after Promise.)
  template <typename F>
  auto or_else(F&& f);

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state) : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) { state_->promise_refs = 1; }

  Promise(const Promise& other) : state_(other.state_) {
    if (state_ != nullptr) {
      ++state_->promise_refs;
    }
  }
  Promise(Promise&& other) noexcept : state_(std::move(other.state_)) {}
  Promise& operator=(const Promise& other) {
    if (this != &other) {
      release();
      state_ = other.state_;
      if (state_ != nullptr) {
        ++state_->promise_refs;
      }
    }
    return *this;
  }
  Promise& operator=(Promise&& other) noexcept {
    if (this != &other) {
      release();
      state_ = std::move(other.state_);
    }
    return *this;
  }
  ~Promise() { release(); }

  Future<T> future() const { return Future<T>(state_); }

  void set(T value) const {
    FRACTOS_CHECK(!state_->value.has_value());
    FRACTOS_CHECK_MSG(!state_->consumed, "Promise::set after the value was already delivered");
    if (state_->continuation != nullptr) {
      auto cb = std::move(state_->continuation);
      state_->continuation = nullptr;
      state_->consumed = true;
      internal::deliver<T>(std::move(cb), std::move(value));
    } else {
      state_->value = std::move(value);
    }
  }

  bool fulfilled() const { return state_->value.has_value() || state_->consumed; }

 private:
  void release() {
    if (state_ != nullptr && --state_->promise_refs == 0 && !state_->value.has_value() &&
        !state_->consumed) {
      internal::break_promise(*state_);
    }
    state_ = nullptr;
  }

  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
template <typename F>
auto Future<T>::then(F&& f) {
  using R = std::invoke_result_t<F, T&&>;
  if constexpr (std::is_void_v<R>) {
    Promise<Unit> p;
    auto fut = p.future();
    on_ready([f = std::forward<F>(f), p](T&& v) mutable {
      f(std::move(v));
      p.set(Unit{});
    });
    return fut;
  } else if constexpr (internal::IsFuture<R>::value) {
    using U = typename internal::IsFuture<R>::value_type;
    Promise<U> p;
    auto fut = p.future();
    on_ready([f = std::forward<F>(f), p](T&& v) mutable {
      f(std::move(v)).on_ready([p](U&& u) mutable { p.set(std::move(u)); });
    });
    return fut;
  } else {
    Promise<R> p;
    auto fut = p.future();
    on_ready([f = std::forward<F>(f), p](T&& v) mutable { p.set(f(std::move(v))); });
    return fut;
  }
}

namespace internal {

// Maps an and_then continuation's return type to the chained future's Result type.
template <typename R>
struct ChainedResult {
  using type = Result<R>;
};
template <>
struct ChainedResult<void> {
  using type = Result<void>;
};
template <typename U>
struct ChainedResult<Result<U>> {
  using type = Result<U>;
};
template <typename U>
struct ChainedResult<Future<Result<U>>> {
  using type = Result<U>;
};

// The continuation's return type: invoked with the success value, or with no argument for
// Status futures (a separate specialization because U&& is ill-formed for U = void).
template <typename F, typename U>
struct AndThenInvokeResult {
  using type = std::invoke_result_t<F, U&&>;
};
template <typename F>
struct AndThenInvokeResult<F, void> {
  using type = std::invoke_result_t<F>;
};

// Invokes the continuation and routes its result (void, plain value, Result, or Future) into
// the chained promise.
template <typename Out, typename Invoke>
void resolve_into(Promise<Out> p, Invoke&& invoke) {
  using R = decltype(invoke());
  using DR = std::decay_t<R>;
  if constexpr (std::is_void_v<R>) {
    invoke();
    p.set(Out());
  } else if constexpr (IsFuture<DR>::value) {
    static_assert(std::is_same_v<typename IsFuture<DR>::value_type, Out>,
                  "a future-returning continuation must yield the chained Result type");
    invoke().on_ready([p](Out&& v) mutable { p.set(std::move(v)); });
  } else {
    p.set(Out(std::move(invoke())));
  }
}

}  // namespace internal

template <typename T>
template <typename F>
auto Future<T>::and_then(F&& f) {
  static_assert(internal::IsResult<T>::value, "and_then requires a Future<Result<U>>");
  using U = typename internal::IsResult<T>::value_type;
  using R = typename internal::AndThenInvokeResult<F, U>::type;
  using Out = typename internal::ChainedResult<std::decay_t<R>>::type;
  Promise<Out> p;
  auto fut = p.future();
  on_ready([f = std::forward<F>(f), p](T&& r) mutable {
    if (!r.ok()) {
      p.set(Out(r.error()));
      return;
    }
    if constexpr (std::is_void_v<U>) {
      internal::resolve_into(p, [&]() -> decltype(auto) { return f(); });
    } else {
      internal::resolve_into(p, [&]() -> decltype(auto) { return f(std::move(r).value()); });
    }
  });
  return fut;
}

template <typename T>
template <typename F>
auto Future<T>::or_else(F&& f) {
  static_assert(internal::IsResult<T>::value, "or_else requires a Future<Result<U>>");
  using R = std::invoke_result_t<F, ErrorCode>;
  Promise<T> p;
  auto fut = p.future();
  on_ready([f = std::forward<F>(f), p](T&& r) mutable {
    if (r.ok()) {
      p.set(std::move(r));
      return;
    }
    if constexpr (std::is_void_v<R>) {
      f(r.error());
      p.set(std::move(r));  // side effect only: the error keeps propagating
    } else if constexpr (internal::IsFuture<std::decay_t<R>>::value) {
      static_assert(std::is_same_v<typename internal::IsFuture<std::decay_t<R>>::value_type, T>,
                    "a future-returning recovery must yield the same Result type");
      f(r.error()).on_ready([p](T&& v) mutable { p.set(std::move(v)); });
    } else {
      p.set(T(f(r.error())));
    }
  });
  return fut;
}

template <typename T>
Future<std::decay_t<T>> make_ready_future(T&& value) {
  Promise<std::decay_t<T>> p;
  p.set(std::forward<T>(value));
  return p.future();
}

inline Future<Unit> make_ready_future() { return make_ready_future(Unit{}); }

// Completes with all results (in input order) once every input future completes.
template <typename T>
Future<std::vector<T>> when_all(std::vector<Future<T>> futures) {
  struct Gather {
    std::vector<std::optional<T>> slots;
    size_t remaining;
    Promise<std::vector<T>> promise;
  };
  auto gather = std::make_shared<Gather>();
  gather->slots.resize(futures.size());
  gather->remaining = futures.size();
  Promise<std::vector<T>> promise = gather->promise;
  if (futures.empty()) {
    promise.set({});
    return promise.future();
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    futures[i].on_ready([gather, i](T&& v) {
      gather->slots[i] = std::move(v);
      if (--gather->remaining == 0) {
        std::vector<T> out;
        out.reserve(gather->slots.size());
        for (auto& slot : gather->slots) {
          out.push_back(std::move(*slot));
        }
        gather->promise.set(std::move(out));
      }
    });
  }
  return promise.future();
}

template <typename T>
struct WhenAnyResult {
  size_t index = 0;  // which input future won the race
  T value;
};

// Completes with the first input future to complete; later completions are dropped. With
// several futures already ready, the lowest index wins (attachment order — deterministic).
template <typename T>
Future<WhenAnyResult<T>> when_any(std::vector<Future<T>> futures) {
  FRACTOS_CHECK_MSG(!futures.empty(), "when_any of zero futures would never complete");
  auto race = std::make_shared<Promise<WhenAnyResult<T>>>();
  auto fut = race->future();
  for (size_t i = 0; i < futures.size(); ++i) {
    futures[i].on_ready([race, i](T&& v) {
      if (!race->fulfilled()) {
        race->set(WhenAnyResult<T>{i, std::move(v)});
      }
    });
  }
  return fut;
}

}  // namespace fractos

#endif  // SRC_FUTURES_FUTURE_H_
