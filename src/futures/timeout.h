// Timer-backed future combinators: sleep_for and with_timeout.
//
// These live apart from future.h because they need the simulated EventLoop; the core library
// has no clock. Timeouts map onto the Result error channel: a deadline that fires first
// completes the future with ErrorCode::kTimeout, and the loser's eventual delivery is dropped.
//
// Note: the EventLoop has no timer cancellation, so a with_timeout whose inner future wins
// still leaves the (no-op) deadline event in the loop — EventLoop::run() will advance
// simulated time to it. Callers that assert on total simulated time should account for that.

#ifndef SRC_FUTURES_TIMEOUT_H_
#define SRC_FUTURES_TIMEOUT_H_

#include <utility>

#include "src/futures/future.h"
#include "src/sim/event_loop.h"

namespace fractos {

// Completes after `delay` of simulated time.
inline Future<Unit> sleep_for(EventLoop& loop, Duration delay) {
  Promise<Unit> p;
  loop.schedule_after(delay, [p]() { p.set(Unit{}); });
  return p.future();
}

// Races `f` against a deadline. Result-typed futures only: completes with the inner result,
// or with ErrorCode::kTimeout if the deadline fires first.
template <typename T>
Future<T> with_timeout(EventLoop& loop, Duration timeout, Future<T> f) {
  static_assert(internal::IsResult<T>::value, "with_timeout requires a Future<Result<U>>");
  Promise<T> p;
  auto out = p.future();
  f.on_ready([p](T&& v) {
    if (!p.fulfilled()) {
      p.set(std::move(v));
    }
  });
  loop.schedule_after(timeout, [p]() {
    if (!p.fulfilled()) {
      p.set(T(ErrorCode::kTimeout));
    }
  });
  return out;
}

}  // namespace fractos

#endif  // SRC_FUTURES_TIMEOUT_H_
