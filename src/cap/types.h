// Core identifier types of the FractOS capability system.
//
// A capability, as in the paper (Section 3.5), "holds the address of the Controller it is
// registered with, and the respective object ID", plus the owner Controller's reboot counter
// (a Lamport-timestamp-like generation used to detect stale capabilities after a Controller
// failure). Processes never see ObjectRefs directly; they hold cids — indices into their
// Controller-maintained capability space, like POSIX file descriptors.

#ifndef SRC_CAP_TYPES_H_
#define SRC_CAP_TYPES_H_

#include <cstdint>

namespace fractos {

// Network-unique address of a Controller instance.
using ControllerAddr = uint32_t;
inline constexpr ControllerAddr kInvalidController = 0xffffffffu;

// Cluster-unique Process identifier (assigned at spawn).
using ProcessId = uint64_t;
inline constexpr ProcessId kInvalidProcess = ~0ULL;

// Index of an object within its owner Controller's object table.
using ObjectIndex = uint64_t;
inline constexpr ObjectIndex kInvalidObject = ~0ULL;

// Capability id: index into a Process's capability space ("cid" in Table 1).
using CapId = uint32_t;
inline constexpr CapId kInvalidCap = 0xffffffffu;

enum class ObjectKind : uint8_t {
  kMemory = 0,
  kRequest = 1,
};

// Memory permissions. Request capabilities always carry kInvoke implicitly.
enum class Perms : uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

inline Perms perms_intersect(Perms a, Perms b) {
  return static_cast<Perms>(static_cast<uint8_t>(a) & static_cast<uint8_t>(b));
}
inline Perms perms_drop(Perms p, Perms dropped) {
  return static_cast<Perms>(static_cast<uint8_t>(p) & ~static_cast<uint8_t>(dropped));
}
inline bool perms_allow(Perms have, Perms need) {
  return (static_cast<uint8_t>(have) & static_cast<uint8_t>(need)) ==
         static_cast<uint8_t>(need);
}

// Global reference to an object: owner Controller + table index + the owner's reboot counter
// at delegation time. Comparing reboot counters detects capabilities that outlived a
// Controller failure (Section 3.6, "failure translation").
struct ObjectRef {
  ControllerAddr owner = kInvalidController;
  ObjectIndex index = kInvalidObject;
  uint32_t reboot_count = 0;

  bool valid() const { return owner != kInvalidController && index != kInvalidObject; }
  bool operator==(const ObjectRef&) const = default;
};

// Identifies a registered RDMA-accessible buffer: which node, which memory pool on that node
// (host heap of a Process, GPU memory, ...), and the extent within the pool. Memory
// capabilities carry this descriptor when delegated — the analogue of an RDMA rkey — so that
// third-party transfers need no extra resolution round trip (Section 3.5: revocation is still
// enforced at the owner, which in this model authorizes RDMA ops at the target node).
struct MemoryDesc {
  uint32_t node = 0;
  uint32_t pool = 0;
  uint64_t addr = 0;
  uint64_t size = 0;

  bool operator==(const MemoryDesc&) const = default;
};

}  // namespace fractos

#endif  // SRC_CAP_TYPES_H_
