// The per-Controller object table: the authoritative registry of Memory and Request objects.
//
// This implements the paper's distributed capability management protocol (Section 3.5):
//
//  * Objects "can only be used by contacting the owner of the object — the Controller with
//    which it is registered", so revocation is a LOCAL invalidation at the owner: immediate
//    and global, with no delegation tracking.
//  * Derivation (memory_diminish, Request refinement, cap_create_revtree) creates a child
//    object linked under its base; revoking any object invalidates its whole subtree
//    recursively. Delegation, by contrast, shares the object — that asymmetry is the paper's
//    optimization over classic per-delegation capability trees (compared in Fig. 7).
//  * cap_create_revtree() children are pure indirection objects (Redell's caretaker pattern):
//    same payload as the base, independently revocable.
//  * Stale capabilities from before a Controller failure are detected by comparing the
//    reboot counter embedded in every ObjectRef with the table's current counter.
//  * monitor_delegate / monitor_receive (Section 3.6) hang subscriptions off objects; revoke
//    reports which callbacks fired so the Controller can route monitor messages.
//
// Storage is built for "millions of live capabilities" (ROADMAP): objects live in fixed-size
// slab arrays grouped into shards selected by a hash of the ObjectIndex. Slabs never move, so
// Object* stays valid across inserts (no rehash storms), freed slots are recycled through a
// per-shard freelist, and each shard keeps a small open-addressed index from ObjectIndex to
// slot. The derivation tree uses intrusive sibling links instead of per-node child vectors, so
// revocation touches exactly the revoked subtree and erasure unlinks in O(1) — no global scans
// to fix dangling links. Request argument blobs are content-interned (the way span names are
// NameId-interned in sim/trace), so N delegations of the same refinement share one allocation.

#ifndef SRC_CAP_OBJECT_TABLE_H_
#define SRC_CAP_OBJECT_TABLE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/cap/types.h"
#include "src/wire/message.h"

namespace fractos {

// Immediates + capabilities of a Request (initial args or one refinement layer).
struct RequestArgs {
  std::vector<ImmExtent> imms;
  std::vector<WireCap> caps;

  bool empty() const { return imms.empty() && caps.empty(); }
};

// A monitor subscription: who to notify (their Controller routes to the Process).
struct MonitorSub {
  ControllerAddr controller = kInvalidController;
  ProcessId process = kInvalidProcess;
  uint64_t callback_id = 0;
};

class ObjectTable {
 public:
  ObjectTable(ControllerAddr owner, uint32_t reboot_count = 1);

  ControllerAddr owner() const { return owner_; }
  uint32_t reboot_count() const { return reboot_count_; }

  // --- creation & derivation ---------------------------------------------------------------
  // Every create/derive records the `creator` Process, so that a Process failure can be
  // translated into revocation of everything it registered (Section 3.6).

  Result<ObjectIndex> create_memory(ProcessId creator, MemoryDesc desc, Perms perms);

  // memory_diminish: child object with a sub-extent and/or fewer permissions.
  Result<ObjectIndex> derive_memory(ProcessId creator, ObjectIndex base, uint64_t offset,
                                    uint64_t size, Perms drop_perms);

  // New root Request: `provider` (a Process managed by this Controller) serves it;
  // `endpoint_cid` is the provider's own cid, echoed back in deliveries for dispatch.
  Result<ObjectIndex> create_request_root(ProcessId provider, CapId endpoint_cid,
                                          RequestArgs args);

  // Fixes up the endpoint cid after the capability has been installed (the cid is only known
  // once the object exists).
  Status set_endpoint_cid(ObjectIndex idx, CapId endpoint_cid);

  // Derived Request. Derivation always happens at the base's owner ("Creating or revoking
  // capabilities requires a single message to the owning Controller"), so the base is always
  // in this same table and derivation chains never cross Controllers.
  Result<ObjectIndex> derive_request_local(ProcessId creator, ObjectIndex base,
                                           RequestArgs refinement);

  // cap_create_revtree: pure indirection child, independently revocable.
  Result<ObjectIndex> create_revtree_child(ProcessId creator, ObjectIndex base);

  // --- resolution (use-time validation) ----------------------------------------------------

  struct ResolvedMemory {
    MemoryDesc desc;
    Perms perms = Perms::kNone;
  };
  Result<ResolvedMemory> resolve_memory(ObjectIndex idx, uint32_t ref_reboot) const;

  struct ResolvedRequest {
    ProcessId provider = kInvalidProcess;
    CapId endpoint_cid = kInvalidCap;
    // Args merged base-first along the derivation chain.
    RequestArgs args;
  };
  Result<ResolvedRequest> resolve_request(ObjectIndex idx, uint32_t ref_reboot) const;

  // --- revocation --------------------------------------------------------------------------

  struct MonitorFire {
    MonitorSub sub;
    bool delegate_mode = false;  // true: monitor_delegate_cb, false: monitor_receive_cb
  };
  struct RevokeResult {
    std::vector<ObjectIndex> invalidated;  // the whole subtree, for the cleanup broadcast
    std::vector<MonitorFire> fires;
  };
  Result<RevokeResult> revoke(ObjectIndex idx, uint32_t ref_reboot);

  // Failure translation: revokes every live object created by `creator` (and, transitively,
  // everything derived from them).
  RevokeResult revoke_all_of(ProcessId creator);

  // Cleanup step: physically removes invalidated objects (run after the broadcast; "neither
  // security nor performance critical"). Returns how many were reclaimed.
  size_t sweep_invalidated();

  // Targeted cleanup: erases exactly these (invalidated) objects, once every peer has
  // acknowledged the revocation broadcast.
  size_t erase_objects(const std::vector<ObjectIndex>& indices);

  // --- monitors (Section 3.6) --------------------------------------------------------------

  // monitor_delegate: fire when the object's delegated children are all gone. The object must
  // not already have children (paper, footnote 1).
  Status monitor_delegate(ObjectIndex idx, uint32_t ref_reboot, MonitorSub sub);

  // monitor_receive: fire when the object is revoked.
  Status monitor_receive(ObjectIndex idx, uint32_t ref_reboot, MonitorSub sub);

  // Called by the Controller when delegating a capability to this object: if the object is
  // monitor_delegate'd, a tracked child object is created (and its index returned) so that
  // the delegatee's capability is independently revocable and counted. Otherwise returns
  // `idx` unchanged.
  Result<ObjectIndex> prepare_delegation(ObjectIndex idx);

  // --- replication (DESIGN.md §4h) ----------------------------------------------------------

  // Replays one committed log entry into this table. Followers converge structurally because
  // insert() assigns indices sequentially — replaying the leader's op stream in log order
  // re-derives the same indices. A mismatch against op.result_index is reported (not fatal)
  // so the caller can count divergence.
  struct ApplyOutcome {
    Status status = ok_status();
    ObjectIndex produced_index = 0;  // 0 when the op yields none
    bool diverged = false;           // produced_index != op.result_index (both nonzero)
    RevokeResult revoked;            // kRevoke / kRevokeAllOf: what this apply invalidated
  };
  ApplyOutcome apply_replicated(const ReplicatedOp& op);

  // Deterministic full-state serialization for follower catch-up (objects sorted by index,
  // every field verbatim). restore_snapshot replaces this table's entire contents, including
  // owner, reboot counter, and the next-index cursor.
  std::vector<uint8_t> serialize_snapshot() const;
  Status restore_snapshot(const std::vector<uint8_t>& blob);

  // Order-independent structural digest over the full table state. Equal digests across all
  // quorum members is the replica-audit invariant (tests/chaos_test.cc).
  uint64_t digest() const;

  // Objects that are invalidated but not yet erased, sorted by index. A takeover leader scans
  // these to re-issue revocation broadcasts the dead leader never finished.
  std::vector<ObjectIndex> invalidated_objects() const;

  // --- failure handling --------------------------------------------------------------------

  // Simulates a Controller crash+restart: every object is lost and the reboot counter bumps,
  // so all outstanding capabilities become stale.
  void reboot();

  // --- introspection -----------------------------------------------------------------------

  ObjectRef ref_of(ObjectIndex idx) const;
  bool is_invalidated(ObjectIndex idx) const;
  bool exists(ObjectIndex idx) const;
  size_t live_count() const { return live_; }
  size_t total_count() const { return total_; }
  ObjectKind kind_of(ObjectIndex idx) const;

  // Length of the derivation chain from `idx` up to its root (a root is depth 1). Returns 0
  // for unknown indices. The Controller uses this to price translation misses.
  size_t chain_depth(ObjectIndex idx) const;

  // Number of distinct interned argument blobs currently alive (empty args are represented by
  // nullptr and never hit the pool).
  size_t interned_args_count() const;

  static constexpr size_t kShardCount = 64;
  static constexpr size_t kSlabSlots = 1024;

 private:
  struct Object {
    ObjectKind kind = ObjectKind::kMemory;
    bool invalidated = false;

    // Derivation/revocation tree (local to this table), as intrusive links: children hang off
    // `first_child`..`last_child` and chain through the sibling pointers. New children append
    // at the tail, so traversal order matches the creation order the old child vectors had.
    ObjectIndex parent = kInvalidObject;
    ObjectIndex first_child = kInvalidObject;
    ObjectIndex last_child = kInvalidObject;
    ObjectIndex prev_sibling = kInvalidObject;
    ObjectIndex next_sibling = kInvalidObject;

    // Memory payload (kind == kMemory): the effective extent/perms of this view.
    MemoryDesc mem;
    Perms mem_perms = Perms::kNone;

    // Request payload (kind == kRequest).
    bool is_root = false;
    ProcessId provider = kInvalidProcess;
    CapId endpoint_cid = kInvalidCap;
    // This layer's refinement (roots: initial args); interned, nullptr means empty.
    std::shared_ptr<const RequestArgs> args;
    bool indirection = false;  // revtree child: adds no args of its own

    // Creating Process, used to translate a Process failure into revocations.
    ProcessId creator = kInvalidProcess;

    // Monitors.
    bool monitor_delegator = false;
    MonitorSub delegate_sub;
    uint32_t delegatee_count = 0;
    bool is_delegatee_child = false;  // decrements parent's counter on revoke
    std::vector<MonitorSub> receive_subs;
  };

  // One slab slot. `idx` doubles as the free marker (kInvalidObject = free); slots live inside
  // fixed arrays that never move, so &slot->obj is stable for the object's whole lifetime.
  struct Slot {
    ObjectIndex idx = kInvalidObject;
    Object obj;
  };

  struct IndexBucket {
    ObjectIndex key = 0;  // 0 = empty (indices start at 1), kInvalidObject = tombstone
    uint32_t slot = 0;
  };

  struct Shard {
    std::vector<std::unique_ptr<Slot[]>> slabs;
    std::vector<uint32_t> free_slots;       // LIFO recycle list of slot ids
    std::vector<IndexBucket> buckets;       // open-addressed, power-of-two size
    size_t filled = 0;                      // occupied + tombstoned buckets
    size_t entries = 0;                     // live keys
  };

  static uint64_t mix(ObjectIndex idx);
  Shard& shard_of(ObjectIndex idx) { return shards_[mix(idx) & (kShardCount - 1)]; }
  const Shard& shard_of(ObjectIndex idx) const { return shards_[mix(idx) & (kShardCount - 1)]; }

  Slot* find_slot(ObjectIndex idx);
  const Slot* find_slot(ObjectIndex idx) const;
  void index_insert(Shard& shard, ObjectIndex idx, uint32_t slot);
  uint32_t index_erase(Shard& shard, ObjectIndex idx);  // returns the freed slot id
  void index_grow(Shard& shard);

  // Walks every live slot in deterministic order: shard 0..N, slabs in allocation order,
  // slots in slot order.
  template <typename Fn>
  void for_each_object(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      for (size_t s = 0; s < shard.slabs.size(); ++s) {
        const Slot* slab = shard.slabs[s].get();
        for (size_t i = 0; i < kSlabSlots; ++i) {
          if (slab[i].idx != kInvalidObject) {
            fn(slab[i].idx, slab[i].obj);
          }
        }
      }
    }
  }

  Result<const Object*> lookup(ObjectIndex idx, uint32_t ref_reboot) const;
  Object* mutable_lookup(ObjectIndex idx);
  const Object* find_object(ObjectIndex idx) const;
  ObjectIndex insert(Object obj);
  void insert_with_index(ObjectIndex idx, Object obj);  // snapshot restore path
  void link_child(ObjectIndex parent_idx, ObjectIndex child_idx);
  void invalidate_subtree(ObjectIndex idx, RevokeResult& out);
  bool erase_one(ObjectIndex idx);
  std::shared_ptr<const RequestArgs> intern_args(RequestArgs args);
  const RequestArgs& args_of(const Object& o) const;

  ControllerAddr owner_;
  uint32_t reboot_count_;
  ObjectIndex next_index_ = 1;
  Shard shards_[kShardCount];
  size_t live_ = 0;
  size_t total_ = 0;

  // Content-interning pool for argument blobs: hash -> weak entries. Objects hold the strong
  // references; a blob dies with its last object and the bucket is pruned on the next probe.
  std::unordered_map<uint64_t, std::vector<std::weak_ptr<const RequestArgs>>> args_pool_;
};

// Validates that refinement extents do not overlap already-written extents or each other
// (the paper's immutability rule: "Request arguments that have already been initialized
// cannot be changed"). `existing` is checked against `added`, and `added` against itself.
Status check_imm_overlap(const std::vector<ImmExtent>& existing,
                         const std::vector<ImmExtent>& added);

}  // namespace fractos

#endif  // SRC_CAP_OBJECT_TABLE_H_
