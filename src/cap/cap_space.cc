#include "src/cap/cap_space.h"

#include <algorithm>

namespace fractos {

CapSpace::CapSpace(uint32_t quota) : quota_(quota) {}

Result<CapId> CapSpace::install(CapEntry entry) {
  if (live_ >= quota_) {
    return ErrorCode::kResourceExhausted;
  }
  // cids are NEVER reused: a stale cid held after revocation/purge must not silently alias a
  // newer capability (the confused-deputy hazard of POSIX fd reuse).
  const CapId cid = next_cid_++;
  slots_.emplace(cid, entry);
  ++live_;
  return cid;
}

Result<CapEntry> CapSpace::get(CapId cid) const {
  auto it = slots_.find(cid);
  if (it == slots_.end()) {
    return ErrorCode::kInvalidCapability;
  }
  return it->second;
}

Status CapSpace::remove(CapId cid) {
  if (slots_.erase(cid) == 0) {
    return ErrorCode::kInvalidCapability;
  }
  --live_;
  return ok_status();
}

size_t CapSpace::purge_refs(const std::vector<ObjectRef>& revoked) {
  size_t purged = 0;
  for (auto it = slots_.begin(); it != slots_.end();) {
    const ObjectRef& ref = it->second.ref;
    const bool hit = std::any_of(revoked.begin(), revoked.end(),
                                 [&ref](const ObjectRef& r) { return r == ref; });
    if (hit) {
      it = slots_.erase(it);
      --live_;
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

std::vector<CapEntry> CapSpace::all_entries() const {
  std::vector<CapEntry> out;
  out.reserve(live_);
  for (const auto& [cid, entry] : slots_) {
    out.push_back(entry);
  }
  return out;
}

}  // namespace fractos
