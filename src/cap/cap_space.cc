#include "src/cap/cap_space.h"

#include <algorithm>

namespace fractos {

CapSpace::CapSpace(uint32_t quota) : quota_(quota) {}

uint64_t CapSpace::ref_key(const ObjectRef& ref) {
  // Collisions are tolerated (buckets verify the full ref), so a cheap fold suffices.
  return (static_cast<uint64_t>(ref.owner) << 40) ^
         (static_cast<uint64_t>(ref.reboot_count) << 32) ^ ref.index;
}

Result<CapId> CapSpace::install(CapEntry entry) {
  if (live_ >= quota_) {
    return ErrorCode::kResourceExhausted;
  }
  // cids are NEVER reused: a stale cid held after revocation/purge must not silently alias a
  // newer capability (the confused-deputy hazard of POSIX fd reuse).
  const CapId cid = next_cid_++;
  std::vector<CapId>& cids = by_ref_[ref_key(entry.ref)];
  std::erase_if(cids, [this](CapId c) { return !slots_.contains(c); });
  cids.push_back(cid);
  slots_.emplace(cid, std::move(entry));
  ++live_;
  return cid;
}

Result<CapEntry> CapSpace::get(CapId cid) const {
  auto it = slots_.find(cid);
  if (it == slots_.end()) {
    return ErrorCode::kInvalidCapability;
  }
  return it->second;
}

Status CapSpace::remove(CapId cid) {
  if (slots_.erase(cid) == 0) {
    return ErrorCode::kInvalidCapability;
  }
  --live_;
  return ok_status();
}

size_t CapSpace::purge_refs(const std::vector<ObjectRef>& revoked) {
  size_t purged = 0;
  for (const ObjectRef& r : revoked) {
    auto bit = by_ref_.find(ref_key(r));
    if (bit == by_ref_.end()) {
      continue;
    }
    std::vector<CapId>& cids = bit->second;
    for (auto it = cids.begin(); it != cids.end();) {
      auto sit = slots_.find(*it);
      if (sit == slots_.end()) {
        it = cids.erase(it);  // removed through remove(); dropped lazily here
        continue;
      }
      if (sit->second.ref == r) {
        slots_.erase(sit);
        --live_;
        ++purged;
        it = cids.erase(it);
      } else {
        ++it;  // key collision with a different ref
      }
    }
    if (cids.empty()) {
      by_ref_.erase(bit);
    }
  }
  return purged;
}

std::vector<CapEntry> CapSpace::all_entries() const {
  std::vector<CapEntry> out;
  out.reserve(live_);
  for (const auto& [cid, entry] : slots_) {
    out.push_back(entry);
  }
  return out;
}

}  // namespace fractos
