#include "src/cap/object_table.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"

namespace fractos {

namespace {

// splitmix64 finalizer: sequential indices would otherwise pile into one shard.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t hash_args(const RequestArgs& args) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto fold = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  fold(args.imms.size());
  for (const ImmExtent& imm : args.imms) {
    fold(imm.offset);
    fold(imm.bytes.size());
    for (uint8_t b : imm.bytes) {
      fold(b);
    }
  }
  fold(args.caps.size());
  for (const WireCap& cap : args.caps) {
    fold(cap.ref.owner);
    fold(cap.ref.index);
    fold(cap.ref.reboot_count);
    fold(static_cast<uint64_t>(cap.kind));
    fold(static_cast<uint64_t>(cap.perms));
    fold(cap.mem.node);
    fold(cap.mem.pool);
    fold(cap.mem.addr);
    fold(cap.mem.size);
    fold(cap.tracked ? 1 : 0);
  }
  return h;
}

const RequestArgs& empty_args() {
  static const RequestArgs kEmpty;
  return kEmpty;
}

void encode_sub(Encoder& e, const MonitorSub& s) {
  e.put_u32(s.controller);
  e.put_u64(s.process);
  e.put_u64(s.callback_id);
}

MonitorSub decode_sub(Decoder& d) {
  MonitorSub s;
  s.controller = d.get_u32();
  s.process = d.get_u64();
  s.callback_id = d.get_u64();
  return s;
}

}  // namespace

ObjectTable::ObjectTable(ControllerAddr owner, uint32_t reboot_count)
    : owner_(owner), reboot_count_(reboot_count) {}

uint64_t ObjectTable::mix(ObjectIndex idx) { return mix64(idx); }

// --- shard plumbing ------------------------------------------------------------------------

ObjectTable::Slot* ObjectTable::find_slot(ObjectIndex idx) {
  return const_cast<Slot*>(static_cast<const ObjectTable*>(this)->find_slot(idx));
}

const ObjectTable::Slot* ObjectTable::find_slot(ObjectIndex idx) const {
  if (idx == kInvalidObject || idx == 0) {
    return nullptr;
  }
  const Shard& shard = shard_of(idx);
  if (shard.buckets.empty()) {
    return nullptr;
  }
  const size_t mask = shard.buckets.size() - 1;
  for (size_t probe = mix64(idx) & mask;; probe = (probe + 1) & mask) {
    const IndexBucket& b = shard.buckets[probe];
    if (b.key == 0) {
      return nullptr;  // hit an empty bucket: key absent
    }
    if (b.key == idx) {
      const Slot* slot = &shard.slabs[b.slot / kSlabSlots][b.slot % kSlabSlots];
      return slot->idx == idx ? slot : nullptr;
    }
    // Tombstones (kInvalidObject) and other keys: keep probing.
  }
}

void ObjectTable::index_grow(Shard& shard) {
  std::vector<IndexBucket> old = std::move(shard.buckets);
  const size_t new_size = old.empty() ? 16 : old.size() * 2;
  shard.buckets.assign(new_size, IndexBucket{});
  shard.filled = 0;
  const size_t mask = new_size - 1;
  for (const IndexBucket& b : old) {
    if (b.key == 0 || b.key == kInvalidObject) {
      continue;  // rehash drops tombstones
    }
    size_t probe = mix64(b.key) & mask;
    while (shard.buckets[probe].key != 0) {
      probe = (probe + 1) & mask;
    }
    shard.buckets[probe] = b;
    ++shard.filled;
  }
}

void ObjectTable::index_insert(Shard& shard, ObjectIndex idx, uint32_t slot) {
  // Grow at 3/4 load counting tombstones, so probes stay short forever.
  if (shard.buckets.empty() || (shard.filled + 1) * 4 > shard.buckets.size() * 3) {
    index_grow(shard);
  }
  const size_t mask = shard.buckets.size() - 1;
  size_t probe = mix64(idx) & mask;
  while (shard.buckets[probe].key != 0 && shard.buckets[probe].key != kInvalidObject) {
    FRACTOS_DCHECK(shard.buckets[probe].key != idx);
    probe = (probe + 1) & mask;
  }
  if (shard.buckets[probe].key == 0) {
    ++shard.filled;  // reusing a tombstone doesn't change the filled count
  }
  shard.buckets[probe] = IndexBucket{idx, slot};
  ++shard.entries;
}

uint32_t ObjectTable::index_erase(Shard& shard, ObjectIndex idx) {
  FRACTOS_DCHECK(!shard.buckets.empty());
  const size_t mask = shard.buckets.size() - 1;
  for (size_t probe = mix64(idx) & mask;; probe = (probe + 1) & mask) {
    IndexBucket& b = shard.buckets[probe];
    FRACTOS_CHECK(b.key != 0);  // caller verified the key exists
    if (b.key == idx) {
      b.key = kInvalidObject;  // tombstone keeps probe chains intact
      --shard.entries;
      return b.slot;
    }
  }
}

ObjectIndex ObjectTable::insert(Object obj) {
  const ObjectIndex idx = next_index_++;
  Shard& shard = shard_of(idx);
  if (shard.free_slots.empty()) {
    shard.slabs.push_back(std::make_unique<Slot[]>(kSlabSlots));
    // Newly minted slots enter the freelist back-to-front so allocation proceeds
    // front-to-back within the slab (deterministic iteration order).
    const uint32_t base = static_cast<uint32_t>((shard.slabs.size() - 1) * kSlabSlots);
    for (uint32_t i = 0; i < kSlabSlots; ++i) {
      shard.free_slots.push_back(base + kSlabSlots - 1 - i);
    }
  }
  const uint32_t slot_id = shard.free_slots.back();
  shard.free_slots.pop_back();
  Slot& slot = shard.slabs[slot_id / kSlabSlots][slot_id % kSlabSlots];
  slot.idx = idx;
  slot.obj = std::move(obj);
  index_insert(shard, idx, slot_id);
  ++total_;
  ++live_;
  return idx;
}

void ObjectTable::insert_with_index(ObjectIndex idx, Object obj) {
  FRACTOS_DCHECK(find_slot(idx) == nullptr);
  Shard& shard = shard_of(idx);
  if (shard.free_slots.empty()) {
    shard.slabs.push_back(std::make_unique<Slot[]>(kSlabSlots));
    const uint32_t base = static_cast<uint32_t>((shard.slabs.size() - 1) * kSlabSlots);
    for (uint32_t i = 0; i < kSlabSlots; ++i) {
      shard.free_slots.push_back(base + kSlabSlots - 1 - i);
    }
  }
  const uint32_t slot_id = shard.free_slots.back();
  shard.free_slots.pop_back();
  Slot& slot = shard.slabs[slot_id / kSlabSlots][slot_id % kSlabSlots];
  slot.idx = idx;
  slot.obj = std::move(obj);
  index_insert(shard, idx, slot_id);
  ++total_;
  if (!slot.obj.invalidated) {
    ++live_;
  }
}

Result<const ObjectTable::Object*> ObjectTable::lookup(ObjectIndex idx,
                                                       uint32_t ref_reboot) const {
  if (ref_reboot != reboot_count_) {
    return ErrorCode::kStaleCapability;
  }
  const Slot* slot = find_slot(idx);
  if (slot == nullptr) {
    return ErrorCode::kInvalidCapability;
  }
  if (slot->obj.invalidated) {
    return ErrorCode::kRevoked;
  }
  return &slot->obj;
}

ObjectTable::Object* ObjectTable::mutable_lookup(ObjectIndex idx) {
  Slot* slot = find_slot(idx);
  return slot == nullptr ? nullptr : &slot->obj;
}

const ObjectTable::Object* ObjectTable::find_object(ObjectIndex idx) const {
  const Slot* slot = find_slot(idx);
  return slot == nullptr ? nullptr : &slot->obj;
}

void ObjectTable::link_child(ObjectIndex parent_idx, ObjectIndex child_idx) {
  Object* parent = mutable_lookup(parent_idx);
  Object* child = mutable_lookup(child_idx);
  FRACTOS_DCHECK(parent != nullptr && child != nullptr);
  child->parent = parent_idx;
  child->prev_sibling = parent->last_child;
  child->next_sibling = kInvalidObject;
  if (parent->last_child != kInvalidObject) {
    mutable_lookup(parent->last_child)->next_sibling = child_idx;
  } else {
    parent->first_child = child_idx;
  }
  parent->last_child = child_idx;
}

std::shared_ptr<const RequestArgs> ObjectTable::intern_args(RequestArgs args) {
  if (args.empty()) {
    return nullptr;
  }
  const uint64_t h = hash_args(args);
  std::vector<std::weak_ptr<const RequestArgs>>& bucket = args_pool_[h];
  // Prune expired entries opportunistically; blobs die with their last holding object.
  std::erase_if(bucket, [](const std::weak_ptr<const RequestArgs>& w) { return w.expired(); });
  for (const std::weak_ptr<const RequestArgs>& w : bucket) {
    if (std::shared_ptr<const RequestArgs> existing = w.lock()) {
      if (existing->imms == args.imms && existing->caps == args.caps) {
        return existing;
      }
    }
  }
  auto fresh = std::make_shared<const RequestArgs>(std::move(args));
  bucket.push_back(fresh);
  return fresh;
}

const RequestArgs& ObjectTable::args_of(const Object& o) const {
  return o.args ? *o.args : empty_args();
}

// --- creation & derivation -----------------------------------------------------------------

Result<ObjectIndex> ObjectTable::create_memory(ProcessId creator, MemoryDesc desc, Perms perms) {
  if (desc.size == 0) {
    return ErrorCode::kInvalidArgument;
  }
  Object obj;
  obj.kind = ObjectKind::kMemory;
  obj.creator = creator;
  obj.mem = desc;
  obj.mem_perms = perms;
  return insert(std::move(obj));
}

Result<ObjectIndex> ObjectTable::derive_memory(ProcessId creator, ObjectIndex base,
                                               uint64_t offset, uint64_t size,
                                               Perms drop_perms) {
  auto base_obj = lookup(base, reboot_count_);
  if (!base_obj.ok()) {
    return base_obj.error();
  }
  const Object& b = *base_obj.value();
  if (b.kind != ObjectKind::kMemory) {
    return ErrorCode::kWrongObjectKind;
  }
  if (offset > b.mem.size || size > b.mem.size - offset || size == 0) {
    return ErrorCode::kOutOfRange;
  }
  Object obj;
  obj.kind = ObjectKind::kMemory;
  obj.creator = creator;
  obj.mem = b.mem;
  obj.mem.addr += offset;
  obj.mem.size = size;
  obj.mem_perms = perms_drop(b.mem_perms, drop_perms);
  const ObjectIndex idx = insert(std::move(obj));
  link_child(base, idx);
  return idx;
}

Result<ObjectIndex> ObjectTable::create_request_root(ProcessId provider, CapId endpoint_cid,
                                                     RequestArgs args) {
  if (provider == kInvalidProcess) {
    return ErrorCode::kInvalidArgument;
  }
  if (Status s = check_imm_overlap({}, args.imms); !s.ok()) {
    return s.error();
  }
  Object obj;
  obj.kind = ObjectKind::kRequest;
  obj.creator = provider;
  obj.is_root = true;
  obj.provider = provider;
  obj.endpoint_cid = endpoint_cid;
  obj.args = intern_args(std::move(args));
  return insert(std::move(obj));
}

Status ObjectTable::set_endpoint_cid(ObjectIndex idx, CapId endpoint_cid) {
  Object* o = mutable_lookup(idx);
  if (o == nullptr || !o->is_root) {
    return ErrorCode::kInvalidArgument;
  }
  o->endpoint_cid = endpoint_cid;
  return ok_status();
}

Result<ObjectIndex> ObjectTable::derive_request_local(ProcessId creator, ObjectIndex base,
                                                      RequestArgs refinement) {
  auto base_obj = lookup(base, reboot_count_);
  if (!base_obj.ok()) {
    return base_obj.error();
  }
  if (base_obj.value()->kind != ObjectKind::kRequest) {
    return ErrorCode::kWrongObjectKind;
  }
  // Collect the existing imm extents along the chain to validate immutability locally.
  std::vector<ImmExtent> existing;
  for (ObjectIndex cur = base; cur != kInvalidObject;) {
    const Object* o = find_object(cur);
    FRACTOS_CHECK(o != nullptr);
    const RequestArgs& layer = args_of(*o);
    existing.insert(existing.end(), layer.imms.begin(), layer.imms.end());
    cur = o->parent;
  }
  if (Status s = check_imm_overlap(existing, refinement.imms); !s.ok()) {
    return s.error();
  }
  Object obj;
  obj.kind = ObjectKind::kRequest;
  obj.creator = creator;
  obj.args = intern_args(std::move(refinement));
  const ObjectIndex idx = insert(std::move(obj));
  link_child(base, idx);
  return idx;
}

Result<ObjectIndex> ObjectTable::create_revtree_child(ProcessId creator, ObjectIndex base) {
  auto base_obj = lookup(base, reboot_count_);
  if (!base_obj.ok()) {
    return base_obj.error();
  }
  const Object& b = *base_obj.value();
  Object obj;
  obj.kind = b.kind;
  obj.creator = creator;
  obj.indirection = true;
  if (b.kind == ObjectKind::kMemory) {
    obj.mem = b.mem;
    obj.mem_perms = b.mem_perms;
  }
  const ObjectIndex idx = insert(std::move(obj));
  link_child(base, idx);
  return idx;
}

// --- resolution ----------------------------------------------------------------------------

Result<ObjectTable::ResolvedMemory> ObjectTable::resolve_memory(ObjectIndex idx,
                                                                uint32_t ref_reboot) const {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  const Object& o = *obj.value();
  if (o.kind != ObjectKind::kMemory) {
    return ErrorCode::kWrongObjectKind;
  }
  // Derived memory objects carry their effective extent, so no chain walk is needed; parents
  // were already checked live at derivation time and invalidate their subtree on revoke.
  return ResolvedMemory{o.mem, o.mem_perms};
}

Result<ObjectTable::ResolvedRequest> ObjectTable::resolve_request(ObjectIndex idx,
                                                                  uint32_t ref_reboot) const {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  if (obj.value()->kind != ObjectKind::kRequest) {
    return ErrorCode::kWrongObjectKind;
  }
  // Walk the local derivation chain to its head, collecting refinement layers.
  std::vector<const Object*> chain;
  ObjectIndex cur = idx;
  const Object* head = nullptr;
  while (cur != kInvalidObject) {
    const Object* o = find_object(cur);
    FRACTOS_CHECK(o != nullptr);
    if (o->invalidated) {
      return ErrorCode::kRevoked;
    }
    chain.push_back(o);
    head = o;
    cur = o->parent;
  }

  ResolvedRequest out;
  if (!head->is_root) {
    return ErrorCode::kInternal;  // derivation is always at the owner, so heads are roots
  }
  out.provider = head->provider;
  out.endpoint_cid = head->endpoint_cid;
  // Merge args base-first (chain was collected leaf-to-head).
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const RequestArgs& layer = args_of(**it);
    out.args.imms.insert(out.args.imms.end(), layer.imms.begin(), layer.imms.end());
    out.args.caps.insert(out.args.caps.end(), layer.caps.begin(), layer.caps.end());
  }
  if (Status s = check_imm_overlap({}, out.args.imms); !s.ok()) {
    return s.error();
  }
  return out;
}

// --- revocation ----------------------------------------------------------------------------

void ObjectTable::invalidate_subtree(ObjectIndex root, RevokeResult& out) {
  // Iterative pre-order walk. Children are pushed in reverse so they pop first-to-last,
  // which reproduces the old recursive traversal order exactly (monitor fire order is
  // observable through the Controller).
  std::vector<ObjectIndex> stack;
  std::vector<ObjectIndex> children;
  stack.push_back(root);
  while (!stack.empty()) {
    const ObjectIndex idx = stack.back();
    stack.pop_back();
    Object* o = mutable_lookup(idx);
    if (o == nullptr || o->invalidated) {
      continue;
    }
    o->invalidated = true;
    --live_;
    out.invalidated.push_back(idx);
    for (const MonitorSub& sub : o->receive_subs) {
      out.fires.push_back(MonitorFire{sub, /*delegate_mode=*/false});
    }
    o->receive_subs.clear();
    // A delegated ("delegatee") child decrements its parent's outstanding-delegation counter;
    // at zero the parent's monitor_delegate callback fires (Section 3.6).
    if (o->is_delegatee_child && o->parent != kInvalidObject) {
      Object* parent = mutable_lookup(o->parent);
      if (parent != nullptr && parent->monitor_delegator && parent->delegatee_count > 0) {
        if (--parent->delegatee_count == 0 && !parent->invalidated) {
          out.fires.push_back(MonitorFire{parent->delegate_sub, /*delegate_mode=*/true});
        }
      }
    }
    children.clear();
    for (ObjectIndex c = o->first_child; c != kInvalidObject;) {
      children.push_back(c);
      const Object* child = find_object(c);
      FRACTOS_DCHECK(child != nullptr);
      c = child->next_sibling;
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
}

Result<ObjectTable::RevokeResult> ObjectTable::revoke(ObjectIndex idx, uint32_t ref_reboot) {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  RevokeResult out;
  invalidate_subtree(idx, out);
  return out;
}

ObjectTable::RevokeResult ObjectTable::revoke_all_of(ProcessId creator) {
  RevokeResult out;
  // Collect first: invalidate_subtree mutates the table while walking. Sorted ascending =
  // creation order, so the broadcast lists objects deterministically.
  std::vector<ObjectIndex> owned;
  for_each_object([&](ObjectIndex idx, const Object& obj) {
    if (obj.creator == creator && !obj.invalidated) {
      owned.push_back(idx);
    }
  });
  std::sort(owned.begin(), owned.end());
  for (ObjectIndex idx : owned) {
    invalidate_subtree(idx, out);
  }
  return out;
}

bool ObjectTable::erase_one(ObjectIndex idx) {
  Slot* slot = find_slot(idx);
  if (slot == nullptr || !slot->obj.invalidated) {
    return false;
  }
  Object& o = slot->obj;
  // Orphan surviving children: they keep their subtrees but lose the dangling parent link.
  for (ObjectIndex c = o.first_child; c != kInvalidObject;) {
    Object* child = mutable_lookup(c);
    FRACTOS_DCHECK(child != nullptr);
    const ObjectIndex next = child->next_sibling;
    child->parent = kInvalidObject;
    child->prev_sibling = kInvalidObject;
    child->next_sibling = kInvalidObject;
    c = next;
  }
  // Unlink from the parent's child list in O(1).
  if (o.parent != kInvalidObject) {
    Object* parent = mutable_lookup(o.parent);
    if (parent != nullptr) {
      if (o.prev_sibling != kInvalidObject) {
        mutable_lookup(o.prev_sibling)->next_sibling = o.next_sibling;
      } else {
        parent->first_child = o.next_sibling;
      }
      if (o.next_sibling != kInvalidObject) {
        mutable_lookup(o.next_sibling)->prev_sibling = o.prev_sibling;
      } else {
        parent->last_child = o.prev_sibling;
      }
    }
  }
  Shard& shard = shard_of(idx);
  const uint32_t slot_id = index_erase(shard, idx);
  slot->idx = kInvalidObject;
  slot->obj = Object{};
  shard.free_slots.push_back(slot_id);
  --total_;
  return true;
}

size_t ObjectTable::sweep_invalidated() {
  std::vector<ObjectIndex> dead;
  for_each_object([&dead](ObjectIndex idx, const Object& obj) {
    if (obj.invalidated) {
      dead.push_back(idx);
    }
  });
  size_t swept = 0;
  for (ObjectIndex idx : dead) {
    if (erase_one(idx)) {
      ++swept;
    }
  }
  return swept;
}

size_t ObjectTable::erase_objects(const std::vector<ObjectIndex>& indices) {
  size_t erased = 0;
  for (ObjectIndex idx : indices) {
    if (erase_one(idx)) {
      ++erased;
    }
  }
  return erased;
}

// --- monitors ------------------------------------------------------------------------------

Status ObjectTable::monitor_delegate(ObjectIndex idx, uint32_t ref_reboot, MonitorSub sub) {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  Object* o = mutable_lookup(idx);
  if (o->first_child != kInvalidObject) {
    return ErrorCode::kInvalidArgument;  // paper footnote 1: must have no children yet
  }
  if (o->monitor_delegator) {
    return ErrorCode::kAlreadyExists;
  }
  o->monitor_delegator = true;
  o->delegate_sub = sub;
  o->delegatee_count = 0;
  return ok_status();
}

Status ObjectTable::monitor_receive(ObjectIndex idx, uint32_t ref_reboot, MonitorSub sub) {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  mutable_lookup(idx)->receive_subs.push_back(sub);
  return ok_status();
}

Result<ObjectIndex> ObjectTable::prepare_delegation(ObjectIndex idx) {
  auto obj = lookup(idx, reboot_count_);
  if (!obj.ok()) {
    return obj.error();
  }
  if (!obj.value()->monitor_delegator) {
    return idx;
  }
  auto child = create_revtree_child(obj.value()->creator, idx);
  if (!child.ok()) {
    return child.error();
  }
  Object* c = mutable_lookup(child.value());
  c->is_delegatee_child = true;
  mutable_lookup(idx)->delegatee_count++;
  return child.value();
}

// --- replication ---------------------------------------------------------------------------

ObjectTable::ApplyOutcome ObjectTable::apply_replicated(const ReplicatedOp& op) {
  ApplyOutcome out;
  auto take_index = [&out, &op](Result<ObjectIndex> r) {
    if (!r.ok()) {
      out.status = r.error();
      return;
    }
    out.produced_index = r.value();
    out.diverged = op.result_index != 0 && op.result_index != out.produced_index;
  };
  const MonitorSub sub{op.sub_controller, op.sub_process, op.callback_id};
  switch (op.kind) {
    case ReplicatedOp::Kind::kNoop:
      break;
    case ReplicatedOp::Kind::kCreateMemory:
      take_index(create_memory(op.requester, op.mem, op.perms));
      break;
    case ReplicatedOp::Kind::kDeriveMemory:
      take_index(derive_memory(op.requester, op.base, op.offset, op.size, op.perms));
      break;
    case ReplicatedOp::Kind::kCreateRequestRoot:
      take_index(create_request_root(op.requester, op.cid, RequestArgs{op.imms, op.caps}));
      break;
    case ReplicatedOp::Kind::kSetEndpointCid:
      out.status = set_endpoint_cid(op.base, op.cid);
      break;
    case ReplicatedOp::Kind::kDeriveRequest:
      take_index(derive_request_local(op.requester, op.base, RequestArgs{op.imms, op.caps}));
      break;
    case ReplicatedOp::Kind::kRevtreeChild:
      take_index(create_revtree_child(op.requester, op.base));
      break;
    case ReplicatedOp::Kind::kPrepareDelegation:
      take_index(prepare_delegation(op.base));
      break;
    case ReplicatedOp::Kind::kMonitorDelegate:
      out.status = monitor_delegate(op.base, reboot_count_, sub);
      break;
    case ReplicatedOp::Kind::kMonitorReceive:
      out.status = monitor_receive(op.base, reboot_count_, sub);
      break;
    case ReplicatedOp::Kind::kRevoke: {
      auto r = revoke(op.base, reboot_count_);
      if (!r.ok()) {
        out.status = r.error();
      } else {
        out.revoked = std::move(r.value());
      }
      break;
    }
    case ReplicatedOp::Kind::kRevokeAllOf:
      out.revoked = revoke_all_of(op.requester);
      break;
    case ReplicatedOp::Kind::kEraseObjects:
      erase_objects(op.indices);
      break;
  }
  return out;
}

std::vector<uint8_t> ObjectTable::serialize_snapshot() const {
  std::vector<std::pair<ObjectIndex, const Object*>> objs;
  objs.reserve(total_);
  for_each_object(
      [&objs](ObjectIndex idx, const Object& obj) { objs.emplace_back(idx, &obj); });
  std::sort(objs.begin(), objs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Encoder e;
  e.put_u32(owner_);
  e.put_u32(reboot_count_);
  e.put_u64(next_index_);
  e.put_u32(static_cast<uint32_t>(objs.size()));
  for (const auto& [idx, o] : objs) {
    e.put_u64(idx);
    e.put_u8(static_cast<uint8_t>(o->kind));
    e.put_bool(o->invalidated);
    e.put_u64(o->parent);
    e.put_u64(o->first_child);
    e.put_u64(o->last_child);
    e.put_u64(o->prev_sibling);
    e.put_u64(o->next_sibling);
    encode_mem_desc(e, o->mem);
    e.put_u8(static_cast<uint8_t>(o->mem_perms));
    e.put_bool(o->is_root);
    e.put_u64(o->provider);
    e.put_u32(o->endpoint_cid);
    const bool has_args = o->args != nullptr;
    e.put_bool(has_args);
    if (has_args) {
      encode_imms(e, o->args->imms);
      e.put_u32(static_cast<uint32_t>(o->args->caps.size()));
      for (const WireCap& c : o->args->caps) {
        encode_wire_cap(e, c);
      }
    }
    e.put_bool(o->indirection);
    e.put_u64(o->creator);
    e.put_bool(o->monitor_delegator);
    encode_sub(e, o->delegate_sub);
    e.put_u32(o->delegatee_count);
    e.put_bool(o->is_delegatee_child);
    e.put_u32(static_cast<uint32_t>(o->receive_subs.size()));
    for (const MonitorSub& s : o->receive_subs) {
      encode_sub(e, s);
    }
  }
  return e.take();
}

Status ObjectTable::restore_snapshot(const std::vector<uint8_t>& blob) {
  Decoder d(blob);
  const ControllerAddr owner = d.get_u32();
  const uint32_t reboot = d.get_u32();
  const ObjectIndex next = d.get_u64();
  const uint32_t count = d.get_u32();
  if (!d.ok() || owner != owner_) {
    return ErrorCode::kInvalidArgument;
  }
  // Destructive restore: the caller is replacing a stale or diverged replica wholesale, so a
  // malformed blob past this point leaves an empty table (and an error to act on).
  for (Shard& shard : shards_) {
    shard = Shard{};
  }
  args_pool_.clear();
  live_ = 0;
  total_ = 0;
  reboot_count_ = reboot;
  next_index_ = next;
  for (uint32_t i = 0; i < count && d.ok(); ++i) {
    const ObjectIndex idx = d.get_u64();
    Object o;
    o.kind = static_cast<ObjectKind>(d.get_u8());
    o.invalidated = d.get_bool();
    o.parent = d.get_u64();
    o.first_child = d.get_u64();
    o.last_child = d.get_u64();
    o.prev_sibling = d.get_u64();
    o.next_sibling = d.get_u64();
    o.mem = decode_mem_desc(d);
    o.mem_perms = static_cast<Perms>(d.get_u8());
    o.is_root = d.get_bool();
    o.provider = d.get_u64();
    o.endpoint_cid = d.get_u32();
    if (d.get_bool()) {
      RequestArgs args;
      args.imms = decode_imms(d);
      const uint32_t ncaps = d.get_u32();
      for (uint32_t c = 0; c < ncaps && d.ok(); ++c) {
        args.caps.push_back(decode_wire_cap(d));
      }
      o.args = intern_args(std::move(args));
    }
    o.indirection = d.get_bool();
    o.creator = d.get_u64();
    o.monitor_delegator = d.get_bool();
    o.delegate_sub = decode_sub(d);
    o.delegatee_count = d.get_u32();
    o.is_delegatee_child = d.get_bool();
    const uint32_t nsubs = d.get_u32();
    for (uint32_t s = 0; s < nsubs && d.ok(); ++s) {
      o.receive_subs.push_back(decode_sub(d));
    }
    if (!d.ok()) {
      break;
    }
    insert_with_index(idx, std::move(o));
  }
  if (!d.ok() || !d.done()) {
    return ErrorCode::kInvalidArgument;
  }
  return ok_status();
}

uint64_t ObjectTable::digest() const {
  auto fold = [](uint64_t h, uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
    return h;
  };
  // Per-object hashes combine by addition, so the digest is independent of shard iteration
  // order — it compares equal across members whose slabs filled in different orders only if
  // the object *states* agree.
  uint64_t sum = 0;
  for_each_object([&](ObjectIndex idx, const Object& o) {
    uint64_t h = 0xcbf29ce484222325ull;
    h = fold(h, idx);
    h = fold(h, static_cast<uint64_t>(o.kind));
    h = fold(h, o.invalidated ? 1 : 0);
    h = fold(h, o.parent);
    h = fold(h, o.first_child);
    h = fold(h, o.last_child);
    h = fold(h, o.mem.node);
    h = fold(h, o.mem.pool);
    h = fold(h, o.mem.addr);
    h = fold(h, o.mem.size);
    h = fold(h, static_cast<uint64_t>(o.mem_perms));
    h = fold(h, o.is_root ? 1 : 0);
    h = fold(h, o.provider);
    h = fold(h, o.endpoint_cid);
    h = fold(h, o.args ? hash_args(*o.args) : 0);
    h = fold(h, o.indirection ? 1 : 0);
    h = fold(h, o.creator);
    h = fold(h, o.monitor_delegator ? 1 : 0);
    h = fold(h, o.delegate_sub.controller);
    h = fold(h, o.delegate_sub.process);
    h = fold(h, o.delegate_sub.callback_id);
    h = fold(h, o.delegatee_count);
    h = fold(h, o.is_delegatee_child ? 1 : 0);
    h = fold(h, o.receive_subs.size());
    for (const MonitorSub& s : o.receive_subs) {
      h = fold(h, s.controller);
      h = fold(h, s.process);
      h = fold(h, s.callback_id);
    }
    sum += h;
  });
  uint64_t h = 0xcbf29ce484222325ull;
  h = fold(h, owner_);
  h = fold(h, reboot_count_);
  h = fold(h, next_index_);
  h = fold(h, live_);
  h = fold(h, total_);
  return h ^ sum;
}

std::vector<ObjectIndex> ObjectTable::invalidated_objects() const {
  std::vector<ObjectIndex> out;
  for_each_object([&](ObjectIndex idx, const Object& o) {
    if (o.invalidated) {
      out.push_back(idx);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

// --- failure handling ----------------------------------------------------------------------

void ObjectTable::reboot() {
  for (Shard& shard : shards_) {
    shard = Shard{};
  }
  args_pool_.clear();
  live_ = 0;
  total_ = 0;
  next_index_ = 1;
  ++reboot_count_;
}

// --- introspection -------------------------------------------------------------------------

ObjectRef ObjectTable::ref_of(ObjectIndex idx) const {
  FRACTOS_DCHECK(exists(idx));
  return ObjectRef{owner_, idx, reboot_count_};
}

bool ObjectTable::is_invalidated(ObjectIndex idx) const {
  const Object* o = find_object(idx);
  return o == nullptr || o->invalidated;
}

bool ObjectTable::exists(ObjectIndex idx) const { return find_slot(idx) != nullptr; }

ObjectKind ObjectTable::kind_of(ObjectIndex idx) const {
  const Object* o = find_object(idx);
  FRACTOS_CHECK(o != nullptr);
  return o->kind;
}

size_t ObjectTable::chain_depth(ObjectIndex idx) const {
  size_t depth = 0;
  for (ObjectIndex cur = idx; cur != kInvalidObject;) {
    const Object* o = find_object(cur);
    if (o == nullptr) {
      break;
    }
    ++depth;
    cur = o->parent;
  }
  return depth;
}

size_t ObjectTable::interned_args_count() const {
  size_t n = 0;
  for (const auto& [hash, bucket] : args_pool_) {
    for (const std::weak_ptr<const RequestArgs>& w : bucket) {
      if (!w.expired()) {
        ++n;
      }
    }
  }
  return n;
}

// --- imm overlap ---------------------------------------------------------------------------

Status check_imm_overlap(const std::vector<ImmExtent>& existing,
                         const std::vector<ImmExtent>& added) {
  // Sort + sweep over both sets at once; only added-vs-existing and added-vs-added pairs are
  // checked (pre-existing overlaps between `existing` extents are never this call's fault).
  // Matches the pairwise predicate `a.offset < b.end() && b.offset < a.end()` exactly,
  // including its zero-length corner: an empty extent overlaps only when strictly inside
  // another extent, never at an equal offset.
  if (added.empty()) {
    return ok_status();
  }
  struct Ev {
    uint32_t off;
    uint32_t end;
    bool is_added;
  };
  std::vector<Ev> evs;
  evs.reserve(existing.size() + added.size());
  for (const ImmExtent& e : existing) {
    evs.push_back(Ev{e.offset, e.end(), false});
  }
  for (const ImmExtent& e : added) {
    evs.push_back(Ev{e.offset, e.end(), true});
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) { return a.off < b.off; });

  uint64_t max_end_existing = 0;  // max end among extents with strictly lower offset
  uint64_t max_end_added = 0;
  size_t i = 0;
  while (i < evs.size()) {
    // Process one equal-offset group.
    size_t j = i;
    size_t nonzero_added = 0;
    size_t nonzero_existing = 0;
    while (j < evs.size() && evs[j].off == evs[i].off) {
      const Ev& c = evs[j];
      // Against strictly-lower offsets: overlap iff some prior extent ends past c.off.
      if (c.is_added) {
        if (max_end_existing > c.off || max_end_added > c.off) {
          return ErrorCode::kArgumentOverlap;
        }
        if (c.end > c.off) {
          ++nonzero_added;
        }
      } else {
        if (max_end_added > c.off) {
          return ErrorCode::kArgumentOverlap;
        }
        if (c.end > c.off) {
          ++nonzero_existing;
        }
      }
      ++j;
    }
    // Within the group: equal offsets overlap only when both extents are non-empty.
    if (nonzero_added >= 2 || (nonzero_added >= 1 && nonzero_existing >= 1)) {
      return ErrorCode::kArgumentOverlap;
    }
    for (size_t k = i; k < j; ++k) {
      uint64_t& max_end = evs[k].is_added ? max_end_added : max_end_existing;
      max_end = std::max(max_end, static_cast<uint64_t>(evs[k].end));
    }
    i = j;
  }
  return ok_status();
}

}  // namespace fractos
