#include "src/cap/object_table.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"

namespace fractos {

ObjectTable::ObjectTable(ControllerAddr owner, uint32_t reboot_count)
    : owner_(owner), reboot_count_(reboot_count) {}

ObjectIndex ObjectTable::insert(Object obj) {
  const ObjectIndex idx = next_index_++;
  objects_.emplace(idx, std::move(obj));
  return idx;
}

Result<const ObjectTable::Object*> ObjectTable::lookup(ObjectIndex idx,
                                                       uint32_t ref_reboot) const {
  if (ref_reboot != reboot_count_) {
    return ErrorCode::kStaleCapability;
  }
  auto it = objects_.find(idx);
  if (it == objects_.end()) {
    return ErrorCode::kInvalidCapability;
  }
  if (it->second.invalidated) {
    return ErrorCode::kRevoked;
  }
  return &it->second;
}

ObjectTable::Object* ObjectTable::mutable_lookup(ObjectIndex idx) {
  auto it = objects_.find(idx);
  return it == objects_.end() ? nullptr : &it->second;
}

Result<ObjectIndex> ObjectTable::create_memory(ProcessId creator, MemoryDesc desc, Perms perms) {
  if (desc.size == 0) {
    return ErrorCode::kInvalidArgument;
  }
  Object obj;
  obj.kind = ObjectKind::kMemory;
  obj.creator = creator;
  obj.mem = desc;
  obj.mem_perms = perms;
  return insert(std::move(obj));
}

Result<ObjectIndex> ObjectTable::derive_memory(ProcessId creator, ObjectIndex base,
                                               uint64_t offset, uint64_t size,
                                               Perms drop_perms) {
  auto base_obj = lookup(base, reboot_count_);
  if (!base_obj.ok()) {
    return base_obj.error();
  }
  const Object& b = *base_obj.value();
  if (b.kind != ObjectKind::kMemory) {
    return ErrorCode::kWrongObjectKind;
  }
  if (offset > b.mem.size || size > b.mem.size - offset || size == 0) {
    return ErrorCode::kOutOfRange;
  }
  Object obj;
  obj.kind = ObjectKind::kMemory;
  obj.creator = creator;
  obj.parent = base;
  obj.mem = b.mem;
  obj.mem.addr += offset;
  obj.mem.size = size;
  obj.mem_perms = perms_drop(b.mem_perms, drop_perms);
  const ObjectIndex idx = insert(std::move(obj));
  mutable_lookup(base)->children.push_back(idx);
  return idx;
}

Result<ObjectIndex> ObjectTable::create_request_root(ProcessId provider, CapId endpoint_cid,
                                                     RequestArgs args) {
  if (provider == kInvalidProcess) {
    return ErrorCode::kInvalidArgument;
  }
  if (Status s = check_imm_overlap({}, args.imms); !s.ok()) {
    return s.error();
  }
  Object obj;
  obj.kind = ObjectKind::kRequest;
  obj.creator = provider;
  obj.is_root = true;
  obj.provider = provider;
  obj.endpoint_cid = endpoint_cid;
  obj.args = std::move(args);
  return insert(std::move(obj));
}

Status ObjectTable::set_endpoint_cid(ObjectIndex idx, CapId endpoint_cid) {
  Object* o = mutable_lookup(idx);
  if (o == nullptr || !o->is_root) {
    return ErrorCode::kInvalidArgument;
  }
  o->endpoint_cid = endpoint_cid;
  return ok_status();
}

Result<ObjectIndex> ObjectTable::derive_request_local(ProcessId creator, ObjectIndex base,
                                                      RequestArgs refinement) {
  auto base_obj = lookup(base, reboot_count_);
  if (!base_obj.ok()) {
    return base_obj.error();
  }
  if (base_obj.value()->kind != ObjectKind::kRequest) {
    return ErrorCode::kWrongObjectKind;
  }
  // Collect the existing imm extents along the chain to validate immutability locally.
  std::vector<ImmExtent> existing;
  for (ObjectIndex cur = base; cur != kInvalidObject;) {
    const Object* o = &objects_.at(cur);
    existing.insert(existing.end(), o->args.imms.begin(), o->args.imms.end());
    cur = o->parent;
  }
  if (Status s = check_imm_overlap(existing, refinement.imms); !s.ok()) {
    return s.error();
  }
  Object obj;
  obj.kind = ObjectKind::kRequest;
  obj.creator = creator;
  obj.parent = base;
  obj.args = std::move(refinement);
  const ObjectIndex idx = insert(std::move(obj));
  mutable_lookup(base)->children.push_back(idx);
  return idx;
}

Result<ObjectIndex> ObjectTable::create_revtree_child(ProcessId creator, ObjectIndex base) {
  auto base_obj = lookup(base, reboot_count_);
  if (!base_obj.ok()) {
    return base_obj.error();
  }
  const Object& b = *base_obj.value();
  Object obj;
  obj.kind = b.kind;
  obj.creator = creator;
  obj.parent = base;
  obj.indirection = true;
  if (b.kind == ObjectKind::kMemory) {
    obj.mem = b.mem;
    obj.mem_perms = b.mem_perms;
  }
  const ObjectIndex idx = insert(std::move(obj));
  mutable_lookup(base)->children.push_back(idx);
  return idx;
}

Result<ObjectTable::ResolvedMemory> ObjectTable::resolve_memory(ObjectIndex idx,
                                                                uint32_t ref_reboot) const {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  const Object& o = *obj.value();
  if (o.kind != ObjectKind::kMemory) {
    return ErrorCode::kWrongObjectKind;
  }
  // Derived memory objects carry their effective extent, so no chain walk is needed; parents
  // were already checked live at derivation time and invalidate their subtree on revoke.
  return ResolvedMemory{o.mem, o.mem_perms};
}

Result<ObjectTable::ResolvedRequest> ObjectTable::resolve_request(ObjectIndex idx,
                                                                  uint32_t ref_reboot) const {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  if (obj.value()->kind != ObjectKind::kRequest) {
    return ErrorCode::kWrongObjectKind;
  }
  // Walk the local derivation chain to its head, collecting refinement layers.
  std::vector<const Object*> chain;
  ObjectIndex cur = idx;
  const Object* head = nullptr;
  while (cur != kInvalidObject) {
    auto it = objects_.find(cur);
    FRACTOS_CHECK(it != objects_.end());
    if (it->second.invalidated) {
      return ErrorCode::kRevoked;
    }
    chain.push_back(&it->second);
    head = &it->second;
    cur = it->second.parent;
  }

  ResolvedRequest out;
  if (!head->is_root) {
    return ErrorCode::kInternal;  // derivation is always at the owner, so heads are roots
  }
  out.provider = head->provider;
  out.endpoint_cid = head->endpoint_cid;
  // Merge args base-first (chain was collected leaf-to-head).
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const Object* layer = *it;
    out.args.imms.insert(out.args.imms.end(), layer->args.imms.begin(), layer->args.imms.end());
    out.args.caps.insert(out.args.caps.end(), layer->args.caps.begin(), layer->args.caps.end());
  }
  if (Status s = check_imm_overlap({}, out.args.imms); !s.ok()) {
    return s.error();
  }
  return out;
}

void ObjectTable::invalidate_subtree(ObjectIndex idx, RevokeResult& out) {
  Object* o = mutable_lookup(idx);
  if (o == nullptr || o->invalidated) {
    return;
  }
  o->invalidated = true;
  out.invalidated.push_back(idx);
  for (const MonitorSub& sub : o->receive_subs) {
    out.fires.push_back(MonitorFire{sub, /*delegate_mode=*/false});
  }
  o->receive_subs.clear();
  // A delegated ("delegatee") child decrements its parent's outstanding-delegation counter;
  // at zero the parent's monitor_delegate callback fires (Section 3.6).
  if (o->is_delegatee_child && o->parent != kInvalidObject) {
    Object* parent = mutable_lookup(o->parent);
    if (parent != nullptr && parent->monitor_delegator && parent->delegatee_count > 0) {
      if (--parent->delegatee_count == 0 && !parent->invalidated) {
        out.fires.push_back(MonitorFire{parent->delegate_sub, /*delegate_mode=*/true});
      }
    }
  }
  for (ObjectIndex child : o->children) {
    invalidate_subtree(child, out);
  }
}

Result<ObjectTable::RevokeResult> ObjectTable::revoke(ObjectIndex idx, uint32_t ref_reboot) {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  RevokeResult out;
  invalidate_subtree(idx, out);
  return out;
}

ObjectTable::RevokeResult ObjectTable::revoke_all_of(ProcessId creator) {
  RevokeResult out;
  // Collect first: invalidate_subtree mutates the table while walking.
  std::vector<ObjectIndex> owned;
  for (const auto& [idx, obj] : objects_) {
    if (obj.creator == creator && !obj.invalidated) {
      owned.push_back(idx);
    }
  }
  for (ObjectIndex idx : owned) {
    invalidate_subtree(idx, out);
  }
  return out;
}

size_t ObjectTable::sweep_invalidated() {
  size_t swept = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->second.invalidated) {
      it = objects_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  if (swept > 0) {
    // Drop dangling child links of surviving objects.
    for (auto& [idx, obj] : objects_) {
      std::erase_if(obj.children, [this](ObjectIndex c) { return !objects_.contains(c); });
      if (obj.parent != kInvalidObject && !objects_.contains(obj.parent)) {
        obj.parent = kInvalidObject;
      }
    }
  }
  return swept;
}

size_t ObjectTable::erase_objects(const std::vector<ObjectIndex>& indices) {
  size_t erased = 0;
  for (ObjectIndex idx : indices) {
    auto it = objects_.find(idx);
    if (it != objects_.end() && it->second.invalidated) {
      objects_.erase(it);
      ++erased;
    }
  }
  if (erased > 0) {
    for (auto& [idx, obj] : objects_) {
      std::erase_if(obj.children, [this](ObjectIndex c) { return !objects_.contains(c); });
      if (obj.parent != kInvalidObject && !objects_.contains(obj.parent)) {
        obj.parent = kInvalidObject;
      }
    }
  }
  return erased;
}

Status ObjectTable::monitor_delegate(ObjectIndex idx, uint32_t ref_reboot, MonitorSub sub) {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  Object* o = mutable_lookup(idx);
  if (!o->children.empty()) {
    return ErrorCode::kInvalidArgument;  // paper footnote 1: must have no children yet
  }
  if (o->monitor_delegator) {
    return ErrorCode::kAlreadyExists;
  }
  o->monitor_delegator = true;
  o->delegate_sub = sub;
  o->delegatee_count = 0;
  return ok_status();
}

Status ObjectTable::monitor_receive(ObjectIndex idx, uint32_t ref_reboot, MonitorSub sub) {
  auto obj = lookup(idx, ref_reboot);
  if (!obj.ok()) {
    return obj.error();
  }
  mutable_lookup(idx)->receive_subs.push_back(sub);
  return ok_status();
}

Result<ObjectIndex> ObjectTable::prepare_delegation(ObjectIndex idx) {
  auto obj = lookup(idx, reboot_count_);
  if (!obj.ok()) {
    return obj.error();
  }
  if (!obj.value()->monitor_delegator) {
    return idx;
  }
  auto child = create_revtree_child(obj.value()->creator, idx);
  if (!child.ok()) {
    return child.error();
  }
  Object* c = mutable_lookup(child.value());
  c->is_delegatee_child = true;
  mutable_lookup(idx)->delegatee_count++;
  return child.value();
}

void ObjectTable::reboot() {
  objects_.clear();
  next_index_ = 1;
  ++reboot_count_;
}

ObjectRef ObjectTable::ref_of(ObjectIndex idx) const {
  FRACTOS_DCHECK(objects_.contains(idx));
  return ObjectRef{owner_, idx, reboot_count_};
}

bool ObjectTable::is_invalidated(ObjectIndex idx) const {
  auto it = objects_.find(idx);
  return it == objects_.end() || it->second.invalidated;
}

size_t ObjectTable::live_count() const {
  size_t n = 0;
  for (const auto& [idx, obj] : objects_) {
    if (!obj.invalidated) {
      ++n;
    }
  }
  return n;
}

ObjectKind ObjectTable::kind_of(ObjectIndex idx) const {
  auto it = objects_.find(idx);
  FRACTOS_CHECK(it != objects_.end());
  return it->second.kind;
}

Status check_imm_overlap(const std::vector<ImmExtent>& existing,
                         const std::vector<ImmExtent>& added) {
  auto overlaps = [](const ImmExtent& a, const ImmExtent& b) {
    return a.offset < b.end() && b.offset < a.end();
  };
  for (size_t i = 0; i < added.size(); ++i) {
    for (const auto& e : existing) {
      if (overlaps(added[i], e)) {
        return ErrorCode::kArgumentOverlap;
      }
    }
    for (size_t j = i + 1; j < added.size(); ++j) {
      if (overlaps(added[i], added[j])) {
        return ErrorCode::kArgumentOverlap;
      }
    }
  }
  return ok_status();
}

}  // namespace fractos
