// The per-Process capability space: cid -> capability entry, maintained by the Process's
// Controller. "The references behind the capabilities are protected by FractOS, and Processes
// access them via indices in their capability space" (Section 3.1) — like POSIX fds.
//
// Memory entries cache the delegated MemoryDesc (the rkey analogue) so third-party transfers
// need no resolution round trip; validity is still enforced at the object's owner.

#ifndef SRC_CAP_CAP_SPACE_H_
#define SRC_CAP_CAP_SPACE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/cap/types.h"

namespace fractos {

struct CapEntry {
  ObjectRef ref;
  ObjectKind kind = ObjectKind::kMemory;
  Perms perms = Perms::kNone;
  MemoryDesc mem;  // meaningful iff kind == kMemory
  // The owner created a per-delegation revocation-tree child for this entry
  // (monitor_delegate bookkeeping); revoke it at the owner if the holder fails.
  bool tracked = false;
};

class CapSpace {
 public:
  // `quota` caps the number of live entries ("can be capped via quotas", Section 4).
  explicit CapSpace(uint32_t quota = 1u << 20);

  Result<CapId> install(CapEntry entry);
  Result<CapEntry> get(CapId cid) const;
  Status remove(CapId cid);

  // Cleanup step of revocation: drops every entry referencing one of `revoked`.
  // Returns the number of entries purged.
  size_t purge_refs(const std::vector<ObjectRef>& revoked);

  // All live entries (used when translating a Process failure into revocations).
  std::vector<CapEntry> all_entries() const;

  size_t size() const { return live_; }
  uint32_t quota() const { return quota_; }

 private:
  static uint64_t ref_key(const ObjectRef& ref);

  std::unordered_map<CapId, CapEntry> slots_;
  // Secondary index ref -> cids holding it, so purge_refs is O(revoked), not O(slots): at
  // millions of installed caps, a per-revocation full scan is the hot-path killer. Entries
  // are pruned lazily (remove() leaves them; install and purge drop dead cids on probe).
  std::unordered_map<uint64_t, std::vector<CapId>> by_ref_;
  CapId next_cid_ = 0;
  uint32_t quota_;
  size_t live_ = 0;
};

}  // namespace fractos

#endif  // SRC_CAP_CAP_SPACE_H_
