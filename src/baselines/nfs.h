// NFS-style remote file access: the frontend-to-file-server leg of the paper's end-to-end
// baseline (Section 6.5: "a frontend node that fetches files from a remote ext4 file system
// via NFS. The file system is backed by NVMe-over-Fabrics storage").
//
// The server keeps a flat extent table ("ext4") over any BlockDevice — in the baseline
// composition that device is an NVMe-oF initiator wrapped in a PageCache, giving the kernel
// cache behaviour of the real stack. Each client call is one network round trip; file data
// rides the reply/request.

#ifndef SRC_BASELINES_NFS_H_
#define SRC_BASELINES_NFS_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/baselines/block_device.h"
#include "src/fabric/queue_pair.h"
#include "src/futures/future.h"

namespace fractos {

class NfsServer {
 public:
  struct Params {
    // Per-RPC server-side processing (VFS + NFS daemon).
    Duration rpc_cost = Duration::micros(4.0);
  };

  NfsServer(Network* net, uint32_t node, BlockDevice* device);
  NfsServer(Network* net, uint32_t node, BlockDevice* device, Params params);

  uint32_t node() const { return node_; }
  // Server-side file creation (the exported directory's content).
  Status create_file(const std::string& name, uint64_t size);

  QueuePair& accept(Endpoint client_ep);

 private:
  struct File {
    uint64_t base = 0;
    uint64_t size = 0;
  };
  void on_rpc(QueuePair* qp, const Payload& bytes);

  Network* net_;
  uint32_t node_;
  BlockDevice* device_;
  Params params_;
  std::unordered_map<std::string, File> files_;
  std::unordered_map<uint64_t, File> handles_;
  uint64_t next_handle_ = 1;
  uint64_t next_base_ = 0;
  std::vector<std::unique_ptr<QueuePair>> connections_;
};

class NfsClient {
 public:
  struct FileHandle {
    uint64_t fh = 0;
    uint64_t size = 0;
  };

  NfsClient(Network* net, uint32_t node, NfsServer* server);

  Future<Result<FileHandle>> open(const std::string& name);
  Future<Result<std::vector<uint8_t>>> read(const FileHandle& f, uint64_t off, uint64_t size);
  Future<Status> write(const FileHandle& f, uint64_t off, std::vector<uint8_t> data);

 private:
  Future<Result<std::vector<uint8_t>>> call(std::vector<uint8_t> request, Traffic category);
  void on_reply(const Payload& bytes);

  Network* net_;
  QueuePair qp_;
  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, Promise<Result<std::vector<uint8_t>>>> pending_;
};

}  // namespace fractos

#endif  // SRC_BASELINES_NFS_H_
