// NVMe-over-Fabrics model: the disaggregation technology the paper's storage baselines use
// (Table 2 / Section 6.4 "Disaggregated Baseline", Section 6.5 baseline).
//
// Target: co-located with the SSD, hardware-accelerated command processing (the paper calls
// the real thing "existing hardware-accelerated NVMe-oF" — per-command cost is small and
// there is no user-level software on the data path).
// Initiator: the in-kernel driver on the consuming node; one round trip per command, data
// rides the fabric at line rate. Wrap it in a PageCache to get the Linux block-cache
// behaviour of the baselines.

#ifndef SRC_BASELINES_NVMEOF_H_
#define SRC_BASELINES_NVMEOF_H_

#include <memory>
#include <unordered_map>

#include "src/baselines/block_device.h"
#include "src/fabric/queue_pair.h"

namespace fractos {

class NvmeofTarget {
 public:
  struct Params {
    // Per-command processing at the target (hardware-offloaded).
    Duration command_cost = Duration::micros(2.0);
  };

  NvmeofTarget(Network* net, uint32_t node, SimNvme* nvme);
  NvmeofTarget(Network* net, uint32_t node, SimNvme* nvme, Params params);

  uint32_t node() const { return node_; }
  SimNvme& nvme() { return *nvme_; }

  // Wires a new initiator connection; called by NvmeofInitiator.
  QueuePair& accept(Endpoint initiator_ep);

 private:
  void on_command(QueuePair* qp, const Payload& bytes);

  Network* net_;
  uint32_t node_;
  SimNvme* nvme_;
  Params params_;
  std::vector<std::unique_ptr<QueuePair>> connections_;
};

// The initiator IS a BlockDevice: the kernel presents the remote namespace as a local disk.
class NvmeofInitiator : public BlockDevice {
 public:
  NvmeofInitiator(Network* net, uint32_t node, NvmeofTarget* target);

  void read(uint64_t off, uint64_t size,
            std::function<void(Result<Payload>)> done) override;
  void write(uint64_t off, Payload data, std::function<void(Status)> done) override;
  uint64_t capacity() const override { return target_->nvme().capacity(); }

 private:
  void on_completion(const Payload& bytes);

  Network* net_;
  NvmeofTarget* target_;
  QueuePair qp_;
  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, std::function<void(Result<Payload>)>> pending_;
};

}  // namespace fractos

#endif  // SRC_BASELINES_NVMEOF_H_
