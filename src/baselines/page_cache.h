// Write-back page cache with sequential read-ahead: the model of the Linux block/page cache
// that gives the paper's Disaggregated Baseline its two measured advantages (Section 6.4):
// "the NVMe-oF device in Disaggregated Baseline absorbs writes through the cache" and
// sequential reads benefit from "its effective read-ahead caching". Random reads miss — which
// is why FractOS's FS is competitive there.
//
// Model: 4 KiB pages, LRU eviction, writes complete into the cache (dirty pages are flushed
// to the backing device asynchronously), read misses fetch the missing contiguous run in one
// backing I/O, extended by a read-ahead window when the access pattern looks sequential.

#ifndef SRC_BASELINES_PAGE_CACHE_H_
#define SRC_BASELINES_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/baselines/block_device.h"
#include "src/sim/event_loop.h"

namespace fractos {

class PageCache : public BlockDevice {
 public:
  struct Params {
    uint64_t page_bytes = 4096;
    uint64_t capacity_pages = 65536;  // 256 MiB of cache
    uint32_t readahead_pages = 64;    // 256 KiB read-ahead window
    // Cost of serving a hit (kernel + memcpy), per page.
    Duration hit_cost_per_page = Duration::nanos(400);
  };

  PageCache(EventLoop* loop, BlockDevice* backing);
  PageCache(EventLoop* loop, BlockDevice* backing, Params params);

  void read(uint64_t off, uint64_t size,
            std::function<void(Result<Payload>)> done) override;
  void write(uint64_t off, Payload data, std::function<void(Status)> done) override;
  uint64_t capacity() const override { return backing_->capacity(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t readahead_fetches() const { return readahead_fetches_; }
  size_t cached_pages() const { return pages_.size(); }

 private:
  struct Page {
    std::vector<uint8_t> bytes;
    std::list<uint64_t>::iterator lru_pos;
  };

  bool page_cached(uint64_t page) const { return pages_.contains(page); }
  void touch(uint64_t page);
  void install_page(uint64_t page, std::vector<uint8_t> bytes);
  void evict_if_needed();
  std::vector<uint8_t> gather(uint64_t off, uint64_t size);

  EventLoop* loop_;
  BlockDevice* backing_;
  Params params_;
  std::unordered_map<uint64_t, Page> pages_;
  std::list<uint64_t> lru_;  // front = most recent
  uint64_t last_read_end_ = ~0ull;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t readahead_fetches_ = 0;
};

}  // namespace fractos

#endif  // SRC_BASELINES_PAGE_CACHE_H_
