// rCUDA-style generic GPU remoting (the Fig. 9 / Fig. 12-13 baseline).
//
// "rCUDA accesses remote GPUs transparently by interposing CUDA driver calls" (Section 6.3):
// every driver call is marshalled, shipped to a daemon co-located with the GPU, executed
// there, and its result shipped back — one network round trip per call, with per-call
// marshalling/dispatch cost at both ends, and bulk data staged through the daemon's host
// memory. A kernel execution is therefore a multi-round-trip affair
// (memcpyHtoD + launch + synchronize + memcpyDtoH), whereas FractOS needs a single Request
// invocation (which is precisely the comparison the paper draws).

#ifndef SRC_BASELINES_RCUDA_H_
#define SRC_BASELINES_RCUDA_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/devices/gpu.h"
#include "src/fabric/queue_pair.h"
#include "src/futures/future.h"

namespace fractos {

class RcudaDaemon {
 public:
  struct Params {
    // Marshalling + dispatch per intercepted driver call at the daemon. Published rCUDA
    // measurements report tens of microseconds per forwarded CUDA call even on fast fabrics
    // (and the paper's Fig. 9 shows rCUDA well above FractOS, sNIC deployment included);
    // 20 us sits in the middle of that range.
    Duration call_cost = Duration::micros(20.0);
    // Host-memory staging bandwidth for bulk transfers (extra copy vs. GPUDirect).
    double staging_bandwidth_bpns = 6.0;
  };

  RcudaDaemon(Network* net, SimGpu* gpu);
  RcudaDaemon(Network* net, SimGpu* gpu, Params params);

  uint32_t node() const { return gpu_->node(); }
  SimGpu& gpu() { return *gpu_; }
  // Registers a kernel by name (the daemon's module registry).
  void register_kernel(const std::string& name, SimGpu::Kernel kernel);

  QueuePair& accept(Endpoint client_ep);

 private:
  void on_call(QueuePair* qp, const Payload& bytes);

  Network* net_;
  SimGpu* gpu_;
  Params params_;
  SimGpu::ContextId ctx_ = 0;
  std::unordered_map<std::string, SimGpu::KernelId> functions_;
  std::vector<std::unique_ptr<QueuePair>> connections_;
};

// Client-side interposed CUDA driver API. All calls are asynchronous futures; the underlying
// transport performs one round trip per call.
class RcudaClient {
 public:
  struct Params {
    // Client-side interposition/marshalling per call.
    Duration call_cost = Duration::micros(4.0);
  };

  RcudaClient(Network* net, uint32_t node, RcudaDaemon* daemon);
  RcudaClient(Network* net, uint32_t node, RcudaDaemon* daemon, Params params);

  Future<Result<uint64_t>> cu_mem_alloc(uint64_t size);
  Future<Status> cu_mem_free(uint64_t device_addr);
  Future<Status> cu_memcpy_htod(uint64_t device_addr, std::vector<uint8_t> data);
  Future<Result<std::vector<uint8_t>>> cu_memcpy_dtoh(uint64_t device_addr, uint64_t size);
  Future<Result<uint64_t>> cu_module_get_function(const std::string& name);
  // Asynchronous launch: returns when the daemon queued the kernel.
  Future<Status> cu_launch_kernel(uint64_t function, std::vector<uint64_t> args);
  // Blocks (the future) until all queued work completed.
  Future<Status> cu_ctx_synchronize();

  uint64_t calls_issued() const { return next_seq_ - 1; }

 private:
  Future<Result<std::vector<uint8_t>>> call(std::vector<uint8_t> request, Traffic category);
  void on_reply(const Payload& bytes);

  Network* net_;
  uint32_t node_;
  Params params_;
  QueuePair qp_;
  uint64_t next_seq_ = 1;
  std::unordered_map<uint64_t, Promise<Result<std::vector<uint8_t>>>> pending_;
};

}  // namespace fractos

#endif  // SRC_BASELINES_RCUDA_H_
