// Multi-stage processing pipeline: the service-composition experiment of Fig. 8.
//
// K stage services are deployed on distinct nodes; a payload streams through all of them.
// Three drive modes cover the design space of Fig. 1:
//   * kStar      — the centralized model (e.g. rCUDA-like): the client mediates every
//                  transfer; data returns to the client after each stage.
//   * kFastStar  — centralized control, distributed data (e.g. LegoOS-like): the client
//                  invokes each stage synchronously, but each stage copies its output
//                  directly into the next stage's input buffer.
//   * kChain     — fully distributed (FractOS): the client pre-composes a continuation chain
//                  (stage i's Request carries stage i+1's input buffer and Request), invokes
//                  once, and the final stage responds to the client directly.
//
// Each stage increments every payload byte, so an end-to-end run is verified by content
// (output == input + K), not just by timing.

#ifndef SRC_BASELINES_PIPELINE_H_
#define SRC_BASELINES_PIPELINE_H_

#include <memory>
#include <vector>

#include "src/core/system.h"

namespace fractos {

class PipelineStage {
 public:
  // A FractOS Process on `node` with an input buffer of `buffer_bytes` and a "process"
  // endpoint: imm@0 u64 size, caps = [dst Memory, continuation]. The handler transforms its
  // buffer (+1 per byte), models `stage_cost` of compute, copies the result into dst, and
  // invokes the continuation verbatim.
  PipelineStage(System* sys, uint32_t node, Controller& controller, uint64_t buffer_bytes,
                Duration stage_cost);

  Process& process() { return *proc_; }
  CapId process_ep() const { return process_ep_; }
  CapId buffer_cap() const { return buffer_cap_; }  // delegate to the predecessor
  uint64_t invocations() const { return invocations_; }

 private:
  void handle(Process::Received r);

  System* sys_;
  Process* proc_;
  uint64_t buffer_addr_ = 0;
  uint64_t buffer_bytes_ = 0;
  Duration stage_cost_;
  CapId process_ep_ = kInvalidCap;
  CapId buffer_cap_ = kInvalidCap;
  uint64_t invocations_ = 0;
};

enum class PipelineMode {
  kStar = 0,
  kFastStar = 1,
  kChain = 2,
};

const char* pipeline_mode_name(PipelineMode mode);

class PipelineRunner {
 public:
  // Wires the client (on `client_node`, attached to `controller`) to the stages: grants the
  // needed capabilities, allocates client buffers, and (for kChain) pre-derives the
  // continuation chain — all setup cost, off the measured path.
  PipelineRunner(System* sys, uint32_t client_node, Controller& controller,
                 std::vector<PipelineStage*> stages, uint64_t payload_bytes, PipelineMode mode);

  // Pushes one payload through the pipeline; resolves when the final result reaches the
  // client. Verifies content (each stage increments every byte).
  Future<Status> run_once();

  Process& client() { return *client_; }

 private:
  void run_star(std::shared_ptr<Promise<Status>> done);
  void run_fast_star(std::shared_ptr<Promise<Status>> done);
  void run_chain(std::shared_ptr<Promise<Status>> done);
  Status verify_output();
  // One synchronous stage invocation with [dst, reply] caps.
  Future<Status> invoke_stage(size_t i, CapId dst);

  System* sys_;
  Process* client_;
  std::vector<PipelineStage*> stages_;
  uint64_t payload_bytes_;
  PipelineMode mode_;
  uint64_t in_addr_ = 0;
  uint64_t out_addr_ = 0;
  CapId in_cap_ = kInvalidCap;
  CapId out_cap_ = kInvalidCap;
  std::vector<CapId> stage_eps_;      // client-held process endpoints
  std::vector<CapId> stage_buffers_;  // client-held stage input buffers
  CapId chain_head_ = kInvalidCap;    // pre-derived chain (kChain)
  CapId chain_reply_ = kInvalidCap;   // client endpoint the last stage invokes
  std::function<void()> on_chain_reply_;
  uint8_t iteration_seed_ = 1;
};

}  // namespace fractos

#endif  // SRC_BASELINES_PIPELINE_H_
