#include "src/baselines/rcuda.h"

#include <utility>

#include "src/base/assert.h"
#include "src/wire/buffer.h"

namespace fractos {

namespace {
enum CallOp : uint8_t {
  kMemAlloc = 0,
  kMemFree = 1,
  kMemcpyHtoD = 2,
  kMemcpyDtoH = 3,
  kGetFunction = 4,
  kLaunchKernel = 5,
  kSynchronize = 6,
  kReply = 7,
};
}  // namespace

RcudaDaemon::RcudaDaemon(Network* net, SimGpu* gpu) : RcudaDaemon(net, gpu, Params{}) {}

RcudaDaemon::RcudaDaemon(Network* net, SimGpu* gpu, Params params)
    : net_(net), gpu_(gpu), params_(params) {
  ctx_ = gpu_->create_context();
}

void RcudaDaemon::register_kernel(const std::string& name, SimGpu::Kernel kernel) {
  functions_[name] = gpu_->load_kernel(name, std::move(kernel));
}

QueuePair& RcudaDaemon::accept(Endpoint client_ep) {
  (void)client_ep;
  connections_.push_back(std::make_unique<QueuePair>(net_, Endpoint{node(), Loc::kHost}));
  QueuePair* qp = connections_.back().get();
  qp->set_receive_handler([this, qp](Payload bytes) { on_call(qp, bytes); });
  return *qp;
}

void RcudaDaemon::on_call(QueuePair* qp, const Payload& bytes) {
  Decoder d(bytes.bytes());
  const uint8_t op = d.get_u8();
  const uint64_t seq = d.get_u64();

  auto respond = [qp, seq](uint8_t status, std::vector<uint8_t> payload, Traffic cat) {
    Encoder e;
    e.put_u8(kReply);
    e.put_u64(seq);
    e.put_u8(status);
    e.put_bytes(payload);
    qp->send(cat, e.take());
  };

  ExecContext& cpu = net_->node(node()).host();
  switch (op) {
    case kMemAlloc: {
      const uint64_t size = d.get_u64();
      cpu.run(params_.call_cost, [this, size, respond]() {
        auto addr = gpu_->alloc(ctx_, size);
        if (!addr.ok()) {
          respond(1, {}, Traffic::kControl);
          return;
        }
        Encoder e;
        e.put_u64(addr.value());
        respond(0, e.take(), Traffic::kControl);
      });
      break;
    }
    case kMemFree: {
      const uint64_t addr = d.get_u64();
      cpu.run(params_.call_cost, [this, addr, respond]() {
        respond(gpu_->free(ctx_, addr).ok() ? 0 : 1, {}, Traffic::kControl);
      });
      break;
    }
    case kMemcpyHtoD: {
      const uint64_t addr = d.get_u64();
      std::vector<uint8_t> data = d.get_bytes();
      // Staging copy through daemon host memory, then DMA into the GPU.
      const Duration staging =
          params_.call_cost + transfer_time(data.size(), params_.staging_bandwidth_bpns);
      cpu.run(staging, [this, addr, data = std::move(data), respond]() {
        PoolBytes& mem = net_->node(node()).pool(gpu_->pool());
        if (addr + data.size() > mem.size()) {
          respond(1, {}, Traffic::kControl);
          return;
        }
        std::copy(data.begin(), data.end(), mem.begin() + static_cast<ptrdiff_t>(addr));
        respond(0, {}, Traffic::kControl);
      });
      break;
    }
    case kMemcpyDtoH: {
      const uint64_t addr = d.get_u64();
      const uint64_t size = d.get_u64();
      const Duration staging =
          params_.call_cost + transfer_time(size, params_.staging_bandwidth_bpns);
      cpu.run(staging, [this, addr, size, respond]() {
        const PoolBytes& mem = net_->node(node()).pool(gpu_->pool());
        if (addr + size > mem.size()) {
          respond(1, {}, Traffic::kControl);
          return;
        }
        std::vector<uint8_t> data(mem.begin() + static_cast<ptrdiff_t>(addr),
                                  mem.begin() + static_cast<ptrdiff_t>(addr + size));
        respond(0, std::move(data), Traffic::kData);
      });
      break;
    }
    case kGetFunction: {
      const std::string name = d.get_string();
      cpu.run(params_.call_cost, [this, name, respond]() {
        auto it = functions_.find(name);
        if (it == functions_.end()) {
          respond(1, {}, Traffic::kControl);
          return;
        }
        Encoder e;
        e.put_u64(it->second);
        respond(0, e.take(), Traffic::kControl);
      });
      break;
    }
    case kLaunchKernel: {
      const uint64_t function = d.get_u64();
      const uint32_t n = d.get_u32();
      std::vector<uint64_t> args;
      for (uint32_t i = 0; i < n; ++i) {
        args.push_back(d.get_u64());
      }
      cpu.run(params_.call_cost, [this, function, args = std::move(args), respond]() mutable {
        // Asynchronous semantics: the call returns once queued; completion is observed via
        // cuCtxSynchronize.
        gpu_->launch(static_cast<SimGpu::KernelId>(function), std::move(args), [](Status) {});
        respond(0, {}, Traffic::kControl);
      });
      break;
    }
    case kSynchronize: {
      cpu.run(params_.call_cost, [this, respond]() {
        // Completes once every queued kernel has drained from the engine.
        const Time done_at = max(net_->loop()->now(), gpu_->engine_free());
        net_->loop()->schedule_at(done_at, [respond]() { respond(0, {}, Traffic::kControl); });
      });
      break;
    }
    default:
      FRACTOS_CHECK_MSG(false, "unknown rCUDA call");
  }
}

RcudaClient::RcudaClient(Network* net, uint32_t node, RcudaDaemon* daemon)
    : RcudaClient(net, node, daemon, Params{}) {}

RcudaClient::RcudaClient(Network* net, uint32_t node, RcudaDaemon* daemon, Params params)
    : net_(net), node_(node), params_(params), qp_(net, Endpoint{node, Loc::kHost}) {
  QueuePair& remote = daemon->accept(qp_.local());
  QueuePair::connect(qp_, remote);
  qp_.set_receive_handler([this](Payload bytes) { on_reply(bytes); });
}

Future<Result<std::vector<uint8_t>>> RcudaClient::call(std::vector<uint8_t> request,
                                                       Traffic category) {
  const uint64_t seq = next_seq_++;
  Promise<Result<std::vector<uint8_t>>> promise;
  pending_.emplace(seq, promise);
  // Client-side interposition cost, then the wire.
  net_->node(node_).host().run(params_.call_cost,
                               [this, request = std::move(request), category]() mutable {
                                 qp_.send(category, std::move(request));
                               });
  return promise.future();
}

void RcudaClient::on_reply(const Payload& bytes) {
  Decoder d(bytes.bytes());
  const uint8_t op = d.get_u8();
  const uint64_t seq = d.get_u64();
  const uint8_t status = d.get_u8();
  std::vector<uint8_t> payload = d.get_bytes();
  FRACTOS_CHECK(d.ok() && op == kReply);
  auto it = pending_.find(seq);
  FRACTOS_CHECK(it != pending_.end());
  auto promise = it->second;
  pending_.erase(it);
  if (status != 0) {
    promise.set(ErrorCode::kInternal);
  } else {
    promise.set(std::move(payload));
  }
}

Future<Result<uint64_t>> RcudaClient::cu_mem_alloc(uint64_t size) {
  Encoder e;
  e.put_u8(kMemAlloc);
  e.put_u64(next_seq_);
  e.put_u64(size);
  return call(e.take(), Traffic::kControl)
      .then([](Result<std::vector<uint8_t>>&& r) -> Result<uint64_t> {
        if (!r.ok()) {
          return r.error();
        }
        Decoder d(r.value());
        return d.get_u64();
      });
}

Future<Status> RcudaClient::cu_mem_free(uint64_t device_addr) {
  Encoder e;
  e.put_u8(kMemFree);
  e.put_u64(next_seq_);
  e.put_u64(device_addr);
  return call(e.take(), Traffic::kControl).then([](Result<std::vector<uint8_t>>&& r) -> Status {
    return r.ok() ? ok_status() : Status(r.error());
  });
}

Future<Status> RcudaClient::cu_memcpy_htod(uint64_t device_addr, std::vector<uint8_t> data) {
  Encoder e;
  e.put_u8(kMemcpyHtoD);
  e.put_u64(next_seq_);
  e.put_u64(device_addr);
  e.put_bytes(data);
  return call(e.take(), Traffic::kData).then([](Result<std::vector<uint8_t>>&& r) -> Status {
    return r.ok() ? ok_status() : Status(r.error());
  });
}

Future<Result<std::vector<uint8_t>>> RcudaClient::cu_memcpy_dtoh(uint64_t device_addr,
                                                                 uint64_t size) {
  Encoder e;
  e.put_u8(kMemcpyDtoH);
  e.put_u64(next_seq_);
  e.put_u64(device_addr);
  e.put_u64(size);
  return call(e.take(), Traffic::kControl);
}

Future<Result<uint64_t>> RcudaClient::cu_module_get_function(const std::string& name) {
  Encoder e;
  e.put_u8(kGetFunction);
  e.put_u64(next_seq_);
  e.put_string(name);
  return call(e.take(), Traffic::kControl)
      .then([](Result<std::vector<uint8_t>>&& r) -> Result<uint64_t> {
        if (!r.ok()) {
          return r.error();
        }
        Decoder d(r.value());
        return d.get_u64();
      });
}

Future<Status> RcudaClient::cu_launch_kernel(uint64_t function, std::vector<uint64_t> args) {
  Encoder e;
  e.put_u8(kLaunchKernel);
  e.put_u64(next_seq_);
  e.put_u64(function);
  e.put_u32(static_cast<uint32_t>(args.size()));
  for (uint64_t a : args) {
    e.put_u64(a);
  }
  return call(e.take(), Traffic::kControl).then([](Result<std::vector<uint8_t>>&& r) -> Status {
    return r.ok() ? ok_status() : Status(r.error());
  });
}

Future<Status> RcudaClient::cu_ctx_synchronize() {
  Encoder e;
  e.put_u8(kSynchronize);
  e.put_u64(next_seq_);
  return call(e.take(), Traffic::kControl).then([](Result<std::vector<uint8_t>>&& r) -> Status {
    return r.ok() ? ok_status() : Status(r.error());
  });
}

}  // namespace fractos
