// Block-device abstraction for the baseline (non-FractOS) storage stacks: a local NVMe, an
// NVMe-over-Fabrics initiator, or a page-cache decorator all present the same interface, so
// the baseline FS can be composed the way the paper's evaluation composes its baselines
// (Section 6.4: "Disaggregated Baseline" = FS over remote NVMe-oF with the Linux cache;
// "Local Baseline" = local block device).

#ifndef SRC_BASELINES_BLOCK_DEVICE_H_
#define SRC_BASELINES_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/result.h"
#include "src/devices/nvme.h"
#include "src/fabric/payload.h"

namespace fractos {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;
  virtual void read(uint64_t off, uint64_t size,
                    std::function<void(Result<Payload>)> done) = 0;
  virtual void write(uint64_t off, Payload data, std::function<void(Status)> done) = 0;
  virtual uint64_t capacity() const = 0;
};

// Directly attached NVMe (the paper's Local Baseline device).
class LocalNvmeDevice : public BlockDevice {
 public:
  explicit LocalNvmeDevice(SimNvme* nvme) : nvme_(nvme) {}

  void read(uint64_t off, uint64_t size,
            std::function<void(Result<Payload>)> done) override {
    nvme_->read(off, size, std::move(done));
  }
  void write(uint64_t off, Payload data, std::function<void(Status)> done) override {
    nvme_->write(off, std::move(data), std::move(done));
  }
  uint64_t capacity() const override { return nvme_->capacity(); }

 private:
  SimNvme* nvme_;
};

}  // namespace fractos

#endif  // SRC_BASELINES_BLOCK_DEVICE_H_
