#include "src/baselines/baseline_fs.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"

namespace fractos {

// In-flight state of one baseline-FS I/O, streamed in chunks like the kernel block layer.
struct BaselineIoState {
  bool is_write = false;
  uint64_t dev_base = 0;
  uint64_t off = 0;
  uint64_t size = 0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint32_t in_flight = 0;
  bool failed = false;
  bool finished = false;
  ErrorCode error = ErrorCode::kInternal;
  CapId mem = kInvalidCap;
  CapId cont = kInvalidCap;
  CapId err = kInvalidCap;
  // Stage-1 legs (device side) run one at a time within an op so chunk completions stagger
  // and the client-side leg overlaps the next chunk's device leg.
  bool stage1_busy = false;
  std::deque<std::function<void()>> stage1_waiting;

  void acquire_stage1(std::function<void()> fn) {
    if (stage1_busy) {
      stage1_waiting.push_back(std::move(fn));
      return;
    }
    stage1_busy = true;
    fn();
  }
  void release_stage1() {
    if (!stage1_waiting.empty()) {
      auto fn = std::move(stage1_waiting.front());
      stage1_waiting.pop_front();
      fn();
      return;
    }
    stage1_busy = false;
  }
};

BaselineFs::BaselineFs(System* sys, uint32_t node, Controller& controller, BlockDevice* device)
    : BaselineFs(sys, node, controller, device, Params{}) {}

BaselineFs::BaselineFs(System* sys, uint32_t node, Controller& controller, BlockDevice* device,
                       Params params)
    : sys_(sys), device_(device), params_(params), slot_pool_(params.staging_slots) {
  const uint64_t heap = params_.staging_slots * params_.slot_bytes + (1 << 20);
  proc_ = &sys->spawn("baseline-fs", node, controller, heap);
  slots_.resize(params_.staging_slots);
  for (uint32_t i = 0; i < params_.staging_slots; ++i) {
    Slot& slot = slots_[i];
    slot.addr = proc_->alloc(params_.slot_bytes);
    slot.mem =
        sys->await_ok(proc_->memory_create(slot.addr, params_.slot_bytes, Perms::kReadWrite));
  }
  create_ep_ = sys->await_ok(proc_->serve({}, [this](Process::Received r) {
    handle_create(std::move(r));
  }));
  open_ep_ = sys->await_ok(proc_->serve({}, [this](Process::Received r) {
    handle_open(std::move(r));
  }));
}

void BaselineFs::fail_op(const Process::Received& r, ErrorCode code) {
  std::vector<CapId> reqs;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kRequest) {
      reqs.push_back(c.cid);
    }
  }
  if (reqs.size() >= 2) {
    proc_->request_invoke(reqs[1], Process::Args{}.imm_u64(0, static_cast<uint64_t>(code)));
  }
}

void BaselineFs::handle_create(Process::Received r) {
  if (r.num_caps() < 1) {
    return;
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  const uint64_t size = r.imm_u64(0).value_or(0);
  auto name = r.imm_str(8);
  const uint64_t aligned = (size + 4095) & ~4095ull;
  if (!name.has_value() || size == 0 || files_.contains(*name) ||
      next_base_ + aligned > device_->capacity()) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  files_[*name] = File{size, next_base_};
  next_base_ += aligned;
  proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 0));
}

void BaselineFs::handle_open(Process::Received r) {
  if (r.num_caps() < 1) {
    return;
  }
  const CapId reply = r.cap(r.num_caps() - 1);
  const bool rw = r.imm_u64(0).value_or(0) != 0;
  // imm@8 is the dax flag in the FsService convention; the baseline cannot do DAX.
  auto name = r.imm_str(16);
  auto fit = name.has_value() ? files_.find(*name) : files_.end();
  if (fit == files_.end() || r.imm_u64(8).value_or(0) != 0) {
    proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    return;
  }
  const uint32_t open_id = next_open_++;
  std::vector<Future<Result<CapId>>> eps;
  eps.push_back(proc_->serve({}, [this, open_id](Process::Received rr) {
    handle_io(open_id, /*is_write=*/false, std::move(rr));
  }));
  if (rw) {
    eps.push_back(proc_->serve({}, [this, open_id](Process::Received rr) {
      handle_io(open_id, /*is_write=*/true, std::move(rr));
    }));
  }
  eps.push_back(proc_->serve({}, [this, open_id](Process::Received rr) {
    handle_close(open_id, std::move(rr));
  }));
  const std::string fname = *name;
  when_all(std::move(eps)).on_ready([this, open_id, fname, rw, reply](
                                        std::vector<Result<CapId>>&& cids) {
    auto fit2 = files_.find(fname);
    if (fit2 == files_.end()) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
      return;
    }
    for (const auto& c : cids) {
      if (!c.ok()) {
        proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
        return;
      }
    }
    Open o;
    o.name = fname;
    o.rw = rw;
    o.read_ep = cids[0].value();
    o.write_ep = rw ? cids[1].value() : kInvalidCap;
    o.close_ep = cids.back().value();
    opens_[open_id] = o;
    Process::Args args;
    args.imm_u64(0, 0)
        .imm_u64(8, fit2->second.size)
        .imm_u64(16, params_.extent_bytes)
        .imm_u64(24, 1)
        .imm_u64(32, rw ? 1 : 0)
        .cap(o.close_ep)
        .cap(o.read_ep);
    if (rw) {
      args.cap(o.write_ep);
    }
    proc_->request_invoke(reply, std::move(args));
  });
}

void BaselineFs::handle_io(uint32_t open_id, bool is_write, Process::Received r) {
  auto oit = opens_.find(open_id);
  if (oit == opens_.end()) {
    fail_op(r, ErrorCode::kRevoked);
    return;
  }
  const Open& o = oit->second;
  auto fit = files_.find(o.name);
  if (fit == files_.end() || (is_write && !o.rw)) {
    fail_op(r, ErrorCode::kPermissionDenied);
    return;
  }
  const File& f = fit->second;
  const uint64_t off = r.imm_u64(0).value_or(~0ull);
  const uint64_t size = r.imm_u64(8).value_or(0);
  CapId mem = kInvalidCap;
  uint64_t mem_size = 0;
  CapId cont = kInvalidCap;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kMemory && mem == kInvalidCap) {
      mem = c.cid;
      mem_size = c.mem_size;
    } else if (c.kind == ObjectKind::kRequest && cont == kInvalidCap) {
      cont = c.cid;
    }
  }
  if (mem == kInvalidCap || cont == kInvalidCap || size == 0 || off + size > f.size ||
      mem_size < size) {
    fail_op(r, ErrorCode::kInvalidArgument);
    return;
  }
  auto st = std::make_shared<BaselineIoState>();
  st->is_write = is_write;
  st->dev_base = f.base;
  st->off = off;
  st->size = size;
  st->mem = mem;
  st->cont = cont;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kRequest && c.cid != cont) {
      st->err = c.cid;
      break;
    }
  }
  io_pump(std::move(st));
}

void BaselineFs::io_pump(std::shared_ptr<BaselineIoState> st) {
  if (st->finished) {
    return;
  }
  if (st->failed) {
    if (st->in_flight == 0) {
      st->finished = true;
      if (st->err != kInvalidCap) {
        proc_->request_invoke(st->err,
                              Process::Args{}.imm_u64(0, static_cast<uint64_t>(st->error)));
      }
    }
    return;
  }
  if (st->completed == st->size) {
    st->finished = true;
    proc_->request_invoke(st->cont);
    return;
  }
  while (!st->failed && st->issued < st->size && st->in_flight < params_.pipeline_depth) {
    const uint64_t chunk =
        std::min({st->size - st->issued, params_.slot_bytes, params_.stream_chunk});
    const uint64_t op_off = st->issued;
    st->issued += chunk;
    ++st->in_flight;
    slot_pool_.acquire()
        .and_then([this, st, op_off, chunk](size_t slot) { run_chunk(st, slot, op_off, chunk); })
        .or_else([this, st](ErrorCode e) {
          --st->in_flight;
          if (!st->failed) {
            st->error = e;
          }
          st->failed = true;
          io_pump(st);
        });
  }
}

void BaselineFs::run_chunk(std::shared_ptr<BaselineIoState> st, size_t slot_idx,
                           uint64_t op_off, uint64_t chunk) {
  const Slot& slot = slots_[slot_idx];
  auto chunk_finished = [this, st, slot_idx, chunk](Status s) {
    slot_pool_.release(slot_idx);
    --st->in_flight;
    if (!s.ok()) {
      if (!st->failed) {
        st->error = s.error();
      }
      st->failed = true;
    } else {
      st->completed += chunk;
    }
    io_pump(st);
  };
  const uint64_t dev_off = st->dev_base + st->off + op_off;

  if (st->is_write) {
    st->acquire_stage1([this, st, slot_idx, dev_off, op_off, chunk, chunk_finished]() {
      proc_->memory_copy(st->mem, slots_[slot_idx].mem, chunk, op_off, 0)
          .on_ready([this, st, slot_idx, dev_off, chunk, chunk_finished](Status cs) {
            st->release_stage1();
            if (!cs.ok()) {
              chunk_finished(cs);
              return;
            }
            device_->write(dev_off, proc_->read_mem(slots_[slot_idx].addr, chunk),
                           [chunk_finished](Status ws) { chunk_finished(ws); });
          });
    });
    return;
  }

  st->acquire_stage1([this, st, slot_idx, dev_off, op_off, chunk, chunk_finished]() {
    device_->read(dev_off, chunk, [this, st, slot_idx, op_off, chunk, chunk_finished](
                                      Result<Payload> data) {
      st->release_stage1();
      if (!data.ok()) {
        chunk_finished(data.error());
        return;
      }
      proc_->write_mem(slots_[slot_idx].addr, data.value().bytes());
      proc_->memory_copy(slots_[slot_idx].mem, st->mem, chunk, 0, op_off)
          .on_ready([chunk_finished](Status cs) { chunk_finished(cs); });
    });
  });
}

void BaselineFs::handle_close(uint32_t open_id, Process::Received r) {
  const CapId reply = r.num_caps() >= 1 ? r.cap(r.num_caps() - 1) : kInvalidCap;
  auto oit = opens_.find(open_id);
  if (oit == opens_.end()) {
    if (reply != kInvalidCap) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 1));
    }
    return;
  }
  const Open o = oit->second;
  opens_.erase(oit);
  proc_->remove_endpoint(o.read_ep);
  std::vector<Future<Status>> revokes;
  revokes.push_back(proc_->cap_revoke(o.read_ep));
  if (o.write_ep != kInvalidCap) {
    proc_->remove_endpoint(o.write_ep);
    revokes.push_back(proc_->cap_revoke(o.write_ep));
  }
  proc_->remove_endpoint(o.close_ep);
  when_all(std::move(revokes)).on_ready([this, o, reply](std::vector<Status>&&) {
    proc_->cap_revoke(o.close_ep);
    if (reply != kInvalidCap) {
      proc_->request_invoke(reply, Process::Args{}.imm_u64(0, 0));
    }
  });
}

}  // namespace fractos
