#include "src/baselines/pipeline.h"

#include <utility>

#include "src/base/assert.h"

namespace fractos {

const char* pipeline_mode_name(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kStar: return "star";
    case PipelineMode::kFastStar: return "fast-star";
    case PipelineMode::kChain: return "chain";
  }
  return "unknown";
}

PipelineStage::PipelineStage(System* sys, uint32_t node, Controller& controller,
                             uint64_t buffer_bytes, Duration stage_cost)
    : sys_(sys), buffer_bytes_(buffer_bytes), stage_cost_(stage_cost) {
  proc_ = &sys->spawn("stage", node, controller, buffer_bytes + (1 << 20));
  buffer_addr_ = proc_->alloc(buffer_bytes);
  buffer_cap_ =
      sys->await_ok(proc_->memory_create(buffer_addr_, buffer_bytes, Perms::kReadWrite));
  process_ep_ = sys->await_ok(proc_->serve({}, [this](Process::Received r) {
    handle(std::move(r));
  }));
}

void PipelineStage::handle(Process::Received r) {
  ++invocations_;
  const uint64_t size = r.imm_u64(0).value_or(0);
  CapId dst = kInvalidCap;
  CapId cont = kInvalidCap;
  for (const auto& c : r.caps) {
    if (c.kind == ObjectKind::kMemory && dst == kInvalidCap) {
      dst = c.cid;
    } else if (c.kind == ObjectKind::kRequest && cont == kInvalidCap) {
      cont = c.cid;
    }
  }
  if (dst == kInvalidCap || cont == kInvalidCap || size == 0 || size > buffer_bytes_) {
    return;
  }
  // The stage transformation: +1 on every byte (content-verifiable end to end).
  auto data = proc_->read_mem(buffer_addr_, size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(b + 1);
  }
  proc_->write_mem(buffer_addr_, data);

  proc_->compute(stage_cost_).on_ready([this, dst, cont, size](Unit&&) {
    proc_->memory_copy(buffer_cap_, dst, size).on_ready([this, cont](Status cs) {
      if (!cs.ok()) {
        return;
      }
      proc_->request_invoke(cont);
    });
  });
}

PipelineRunner::PipelineRunner(System* sys, uint32_t client_node, Controller& controller,
                               std::vector<PipelineStage*> stages, uint64_t payload_bytes,
                               PipelineMode mode)
    : sys_(sys), stages_(std::move(stages)), payload_bytes_(payload_bytes), mode_(mode) {
  FRACTOS_CHECK(!stages_.empty());
  client_ = &sys->spawn("pipeline-client", client_node, controller,
                        2 * payload_bytes + (1 << 20));
  in_addr_ = client_->alloc(payload_bytes);
  out_addr_ = client_->alloc(payload_bytes);
  in_cap_ = sys->await_ok(client_->memory_create(in_addr_, payload_bytes, Perms::kReadWrite));
  out_cap_ = sys->await_ok(client_->memory_create(out_addr_, payload_bytes, Perms::kReadWrite));
  for (PipelineStage* s : stages_) {
    stage_eps_.push_back(sys->bootstrap_grant(s->process(), s->process_ep(), *client_).value());
    stage_buffers_.push_back(
        sys->bootstrap_grant(s->process(), s->buffer_cap(), *client_).value());
  }

  if (mode_ == PipelineMode::kChain) {
    // Client reply endpoint the LAST stage will invoke.
    chain_reply_ = sys->await_ok(client_->serve({}, [this](Process::Received) {
      if (on_chain_reply_) {
        auto cb = std::move(on_chain_reply_);
        on_chain_reply_ = nullptr;
        cb();
      }
    }));
    // Derive the chain back to front: stage i's Request carries [next input buffer / client
    // output buffer, next derived Request / client reply].
    CapId next_req = chain_reply_;
    for (size_t i = stages_.size(); i-- > 0;) {
      const CapId dst = i + 1 < stages_.size() ? stage_buffers_[i + 1] : out_cap_;
      chain_head_ = sys->await_ok(client_->request_derive(
          stage_eps_[i],
          Process::Args{}.imm_u64(0, payload_bytes_).cap(dst).cap(next_req)));
      next_req = chain_head_;
    }
  }
}

Status PipelineRunner::verify_output() {
  const auto out = client_->read_mem(out_addr_, payload_bytes_);
  const uint8_t expect0 = static_cast<uint8_t>(iteration_seed_ + stages_.size());
  for (size_t i = 0; i < out.size(); ++i) {
    const uint8_t expected = static_cast<uint8_t>(expect0 + (i & 0x3f));
    if (out[i] != expected) {
      return ErrorCode::kInternal;
    }
  }
  return ok_status();
}

Future<Status> PipelineRunner::invoke_stage(size_t i, CapId dst) {
  Promise<Status> promise;
  client_->request_create({}).on_ready([this, i, dst, promise](Result<CapId>&& reply) mutable {
    if (!reply.ok()) {
      promise.set(Status(reply.error()));
      return;
    }
    const CapId ep = reply.value();
    client_->on_endpoint(ep, [this, ep, promise](Process::Received) {
      client_->remove_endpoint(ep);
      promise.set(ok_status());
    });
    client_->request_invoke(stage_eps_[i], Process::Args{}
                                               .imm_u64(0, payload_bytes_)
                                               .cap(dst)
                                               .cap(ep))
        .on_ready([promise](Status s) {
          if (!s.ok()) {
            promise.set(s);
          }
        });
  });
  return promise.future();
}

Future<Status> PipelineRunner::run_once() {
  // Fresh input pattern per iteration so verification cannot pass by staleness.
  ++iteration_seed_;
  std::vector<uint8_t> input(payload_bytes_);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<uint8_t>(iteration_seed_ + (i & 0x3f));
  }
  client_->write_mem(in_addr_, input);
  client_->write_mem(out_addr_, std::vector<uint8_t>(payload_bytes_, 0));

  auto done = std::make_shared<Promise<Status>>();
  switch (mode_) {
    case PipelineMode::kStar:
      run_star(done);
      break;
    case PipelineMode::kFastStar:
      run_fast_star(done);
      break;
    case PipelineMode::kChain:
      run_chain(done);
      break;
  }
  return done->future();
}

void PipelineRunner::run_star(std::shared_ptr<Promise<Status>> done) {
  // The client mediates every hop: copy in, invoke, result comes back to the client.
  auto step = std::make_shared<std::function<void(size_t, CapId)>>();
  *step = [this, done, weak_step = std::weak_ptr<std::function<void(size_t, CapId)>>(step)](
              size_t i, CapId src) {
    auto step = weak_step.lock();
    if (!step) {
      return;
    }
    if (i == stages_.size()) {
      // Result is already in out_cap_ (the last stage wrote it there).
      done->set(verify_output());
      return;
    }
    client_->memory_copy(src, stage_buffers_[i], payload_bytes_)
        .on_ready([this, done, step, i](Status cs) {
          if (!cs.ok()) {
            done->set(cs);
            return;
          }
          invoke_stage(i, out_cap_).on_ready([this, done, step, i](Status s) {
            if (!s.ok()) {
              done->set(s);
              return;
            }
            (*step)(i + 1, out_cap_);
          });
        });
  };
  (*step)(0, in_cap_);
}

void PipelineRunner::run_fast_star(std::shared_ptr<Promise<Status>> done) {
  // Centralized control, direct data: stage i writes straight into stage i+1's buffer.
  client_->memory_copy(in_cap_, stage_buffers_[0], payload_bytes_)
      .on_ready([this, done](Status cs) {
        if (!cs.ok()) {
          done->set(cs);
          return;
        }
        auto step = std::make_shared<std::function<void(size_t)>>();
        *step = [this, done,
                 weak_step = std::weak_ptr<std::function<void(size_t)>>(step)](size_t i) {
          auto step = weak_step.lock();
          if (!step) {
            return;
          }
          if (i == stages_.size()) {
            done->set(verify_output());
            return;
          }
          const CapId dst = i + 1 < stages_.size() ? stage_buffers_[i + 1] : out_cap_;
          invoke_stage(i, dst).on_ready([this, done, step, i](Status s) {
            if (!s.ok()) {
              done->set(s);
              return;
            }
            (*step)(i + 1);
          });
        };
        (*step)(0);
      });
}

void PipelineRunner::run_chain(std::shared_ptr<Promise<Status>> done) {
  // Fully distributed: one invoke, the continuation chain does the rest.
  on_chain_reply_ = [this, done]() { done->set(verify_output()); };
  client_->memory_copy(in_cap_, stage_buffers_[0], payload_bytes_)
      .on_ready([this, done](Status cs) {
        if (!cs.ok()) {
          done->set(cs);
          return;
        }
        client_->request_invoke(chain_head_).on_ready([done](Status s) {
          if (!s.ok()) {
            done->set(s);
          }
        });
      });
}

}  // namespace fractos
