#include "src/baselines/nvmeof.h"

#include <utility>

#include "src/base/assert.h"
#include "src/wire/buffer.h"

namespace fractos {

namespace {
// Command/completion wire format (one message per NVMe-oF capsule).
constexpr uint8_t kOpRead = 0;
constexpr uint8_t kOpWrite = 1;
constexpr uint8_t kOpCompletion = 2;
}  // namespace

NvmeofTarget::NvmeofTarget(Network* net, uint32_t node, SimNvme* nvme)
    : NvmeofTarget(net, node, nvme, Params{}) {}

NvmeofTarget::NvmeofTarget(Network* net, uint32_t node, SimNvme* nvme, Params params)
    : net_(net), node_(node), nvme_(nvme), params_(params) {}

QueuePair& NvmeofTarget::accept(Endpoint initiator_ep) {
  (void)initiator_ep;
  connections_.push_back(std::make_unique<QueuePair>(net_, Endpoint{node_, Loc::kHost}));
  QueuePair* qp = connections_.back().get();
  qp->set_receive_handler([this, qp](Payload bytes) { on_command(qp, bytes); });
  return *qp;
}

void NvmeofTarget::on_command(QueuePair* qp, const Payload& bytes) {
  Decoder d(bytes.bytes());
  const uint8_t op = d.get_u8();
  const uint64_t seq = d.get_u64();
  const uint64_t off = d.get_u64();
  ExecContext& cpu = net_->node(node_).host();
  if (op == kOpRead) {
    const uint64_t size = d.get_u64();
    FRACTOS_CHECK(d.ok());
    cpu.run(params_.command_cost, [this, qp, seq, off, size]() {
      nvme_->read(off, size, [qp, seq](Result<Payload> r) {
        Encoder e;
        e.put_u8(kOpCompletion);
        e.put_u64(seq);
        e.put_u8(r.ok() ? 0 : static_cast<uint8_t>(r.error()));
        // The capsule format embeds data in the completion message, so the baseline pays an
        // encode copy here — the disaggregation tax FractOS's RDMA path avoids.
        e.put_bytes(r.ok() ? r.value().bytes() : std::vector<uint8_t>{});
        qp->send(Traffic::kData, e.take());
      });
    });
    return;
  }
  if (op == kOpWrite) {
    std::vector<uint8_t> data = d.get_bytes();
    FRACTOS_CHECK(d.ok());
    cpu.run(params_.command_cost, [this, qp, seq, off, data = std::move(data)]() mutable {
      nvme_->write(off, std::move(data), [qp, seq](Status s) {
        Encoder e;
        e.put_u8(kOpCompletion);
        e.put_u64(seq);
        e.put_u8(s.ok() ? 0 : static_cast<uint8_t>(s.error()));
        e.put_bytes({});
        qp->send(Traffic::kControl, e.take());
      });
    });
    return;
  }
  FRACTOS_CHECK_MSG(false, "unknown NVMe-oF command");
}

NvmeofInitiator::NvmeofInitiator(Network* net, uint32_t node, NvmeofTarget* target)
    : net_(net), target_(target), qp_(net, Endpoint{node, Loc::kHost}) {
  QueuePair& remote = target->accept(qp_.local());
  QueuePair::connect(qp_, remote);
  qp_.set_receive_handler([this](Payload bytes) { on_completion(bytes); });
}

void NvmeofInitiator::on_completion(const Payload& bytes) {
  Decoder d(bytes.bytes());
  const uint8_t op = d.get_u8();
  const uint64_t seq = d.get_u64();
  const uint8_t status = d.get_u8();
  std::vector<uint8_t> data = d.get_bytes();
  FRACTOS_CHECK(d.ok() && op == kOpCompletion);
  auto it = pending_.find(seq);
  FRACTOS_CHECK(it != pending_.end());
  auto done = std::move(it->second);
  pending_.erase(it);
  if (status != 0) {
    done(static_cast<ErrorCode>(status));
  } else {
    done(Payload(std::move(data)));
  }
}

void NvmeofInitiator::read(uint64_t off, uint64_t size,
                           std::function<void(Result<Payload>)> done) {
  const uint64_t seq = next_seq_++;
  pending_.emplace(seq, std::move(done));
  Encoder e;
  e.put_u8(kOpRead);
  e.put_u64(seq);
  e.put_u64(off);
  e.put_u64(size);
  qp_.send(Traffic::kControl, e.take());
}

void NvmeofInitiator::write(uint64_t off, Payload data, std::function<void(Status)> done) {
  const uint64_t seq = next_seq_++;
  pending_.emplace(seq, [done = std::move(done)](Result<Payload> r) {
    done(r.ok() ? ok_status() : Status(r.error()));
  });
  Encoder e;
  e.put_u8(kOpWrite);
  e.put_u64(seq);
  e.put_u64(off);
  e.put_bytes(data.bytes());
  qp_.send(Traffic::kData, e.take());
}

}  // namespace fractos
