#include "src/baselines/nfs.h"

#include <utility>

#include "src/base/assert.h"
#include "src/wire/buffer.h"

namespace fractos {

namespace {
enum NfsOp : uint8_t {
  kOpen = 0,
  kRead = 1,
  kWrite = 2,
  kReply = 3,
};
}  // namespace

NfsServer::NfsServer(Network* net, uint32_t node, BlockDevice* device)
    : NfsServer(net, node, device, Params{}) {}

NfsServer::NfsServer(Network* net, uint32_t node, BlockDevice* device, Params params)
    : net_(net), node_(node), device_(device), params_(params) {}

Status NfsServer::create_file(const std::string& name, uint64_t size) {
  const uint64_t aligned = (size + 4095) & ~4095ull;
  if (files_.contains(name) || next_base_ + aligned > device_->capacity()) {
    return ErrorCode::kAlreadyExists;
  }
  files_[name] = File{next_base_, size};
  next_base_ += aligned;
  return ok_status();
}

QueuePair& NfsServer::accept(Endpoint client_ep) {
  (void)client_ep;
  connections_.push_back(std::make_unique<QueuePair>(net_, Endpoint{node_, Loc::kHost}));
  QueuePair* qp = connections_.back().get();
  qp->set_receive_handler([this, qp](Payload bytes) { on_rpc(qp, bytes); });
  return *qp;
}

void NfsServer::on_rpc(QueuePair* qp, const Payload& bytes) {
  Decoder d(bytes.bytes());
  const uint8_t op = d.get_u8();
  const uint64_t seq = d.get_u64();
  auto respond = [qp, seq](uint8_t status, const std::vector<uint8_t>& payload, Traffic cat) {
    Encoder e;
    e.put_u8(kReply);
    e.put_u64(seq);
    e.put_u8(status);
    e.put_bytes(payload);
    qp->send(cat, e.take());
  };
  ExecContext& cpu = net_->node(node_).host();

  switch (op) {
    case kOpen: {
      const std::string name = d.get_string();
      cpu.run(params_.rpc_cost, [this, name, respond]() {
        auto it = files_.find(name);
        if (it == files_.end()) {
          respond(1, {}, Traffic::kControl);
          return;
        }
        const uint64_t fh = next_handle_++;
        handles_[fh] = it->second;
        Encoder e;
        e.put_u64(fh);
        e.put_u64(it->second.size);
        respond(0, e.take(), Traffic::kControl);
      });
      break;
    }
    case kRead: {
      const uint64_t fh = d.get_u64();
      const uint64_t off = d.get_u64();
      const uint64_t size = d.get_u64();
      cpu.run(params_.rpc_cost, [this, fh, off, size, respond]() {
        auto it = handles_.find(fh);
        if (it == handles_.end() || off + size > it->second.size) {
          respond(1, {}, Traffic::kControl);
          return;
        }
        device_->read(it->second.base + off, size, [respond](Result<Payload> r) {
          if (!r.ok()) {
            respond(1, {}, Traffic::kControl);
            return;
          }
          respond(0, r.value().bytes(), Traffic::kData);
        });
      });
      break;
    }
    case kWrite: {
      const uint64_t fh = d.get_u64();
      const uint64_t off = d.get_u64();
      std::vector<uint8_t> data = d.get_bytes();
      cpu.run(params_.rpc_cost, [this, fh, off, data = std::move(data), respond]() mutable {
        auto it = handles_.find(fh);
        if (it == handles_.end() || off + data.size() > it->second.size) {
          respond(1, {}, Traffic::kControl);
          return;
        }
        device_->write(it->second.base + off, std::move(data), [respond](Status s) {
          respond(s.ok() ? 0 : 1, {}, Traffic::kControl);
        });
      });
      break;
    }
    default:
      FRACTOS_CHECK_MSG(false, "unknown NFS rpc");
  }
}

NfsClient::NfsClient(Network* net, uint32_t node, NfsServer* server)
    : net_(net), qp_(net, Endpoint{node, Loc::kHost}) {
  QueuePair& remote = server->accept(qp_.local());
  QueuePair::connect(qp_, remote);
  qp_.set_receive_handler([this](Payload bytes) { on_reply(bytes); });
}

Future<Result<std::vector<uint8_t>>> NfsClient::call(std::vector<uint8_t> request,
                                                     Traffic category) {
  const uint64_t seq = next_seq_++;
  Promise<Result<std::vector<uint8_t>>> promise;
  pending_.emplace(seq, promise);
  qp_.send(category, std::move(request));
  return promise.future();
}

void NfsClient::on_reply(const Payload& bytes) {
  Decoder d(bytes.bytes());
  const uint8_t op = d.get_u8();
  const uint64_t seq = d.get_u64();
  const uint8_t status = d.get_u8();
  std::vector<uint8_t> payload = d.get_bytes();
  FRACTOS_CHECK(d.ok() && op == kReply);
  auto it = pending_.find(seq);
  FRACTOS_CHECK(it != pending_.end());
  auto promise = it->second;
  pending_.erase(it);
  if (status != 0) {
    promise.set(ErrorCode::kInternal);
  } else {
    promise.set(std::move(payload));
  }
}

Future<Result<NfsClient::FileHandle>> NfsClient::open(const std::string& name) {
  Encoder e;
  e.put_u8(kOpen);
  e.put_u64(next_seq_);
  e.put_string(name);
  return call(e.take(), Traffic::kControl)
      .then([](Result<std::vector<uint8_t>>&& r) -> Result<FileHandle> {
        if (!r.ok()) {
          return r.error();
        }
        Decoder d(r.value());
        FileHandle f;
        f.fh = d.get_u64();
        f.size = d.get_u64();
        return f;
      });
}

Future<Result<std::vector<uint8_t>>> NfsClient::read(const FileHandle& f, uint64_t off,
                                                     uint64_t size) {
  Encoder e;
  e.put_u8(kRead);
  e.put_u64(next_seq_);
  e.put_u64(f.fh);
  e.put_u64(off);
  e.put_u64(size);
  return call(e.take(), Traffic::kControl);
}

Future<Status> NfsClient::write(const FileHandle& f, uint64_t off, std::vector<uint8_t> data) {
  Encoder e;
  e.put_u8(kWrite);
  e.put_u64(next_seq_);
  e.put_u64(f.fh);
  e.put_u64(off);
  e.put_bytes(data);
  return call(e.take(), Traffic::kData).then([](Result<std::vector<uint8_t>>&& r) -> Status {
    return r.ok() ? ok_status() : Status(r.error());
  });
}

}  // namespace fractos
