// Baseline file-system service: the same client-facing FractOS FS interface as FsService's
// FS mode (so FsClient works unchanged), but backed by a conventional BlockDevice — a remote
// NVMe-oF namespace behind the Linux page cache ("Disaggregated Baseline", Section 6.4) or a
// directly attached NVMe ("Local Baseline").
//
// There is deliberately NO DAX mode here: a kernel block device cannot delegate authority
// over sub-ranges to third parties — that composition is exactly what FractOS adds.

#ifndef SRC_BASELINES_BASELINE_FS_H_
#define SRC_BASELINES_BASELINE_FS_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baselines/block_device.h"
#include "src/core/system.h"
#include "src/futures/slot_pool.h"

namespace fractos {

class BaselineFs {
 public:
  struct Params {
    uint64_t extent_bytes = 4ull << 20;
    uint32_t staging_slots = 8;
    uint64_t slot_bytes = 2ull << 20;
    // I/O is streamed like the kernel does: chunks of at most stream_chunk bytes, up to
    // pipeline_depth in flight.
    uint64_t stream_chunk = 256ull << 10;
    uint32_t pipeline_depth = 2;
  };

  BaselineFs(System* sys, uint32_t node, Controller& controller, BlockDevice* device);
  BaselineFs(System* sys, uint32_t node, Controller& controller, BlockDevice* device,
             Params params);

  Process& process() { return *proc_; }
  CapId create_endpoint() const { return create_ep_; }
  CapId open_endpoint() const { return open_ep_; }

 private:
  struct File {
    uint64_t size = 0;
    uint64_t base = 0;  // contiguous region on the device (bump-allocated)
  };
  struct Open {
    std::string name;
    bool rw = false;
    CapId read_ep = kInvalidCap;
    CapId write_ep = kInvalidCap;
    CapId close_ep = kInvalidCap;
  };
  struct Slot {
    uint64_t addr = 0;
    CapId mem = kInvalidCap;
  };

  void handle_create(Process::Received r);
  void handle_open(Process::Received r);
  void handle_io(uint32_t open_id, bool is_write, Process::Received r);
  void handle_close(uint32_t open_id, Process::Received r);
  void fail_op(const Process::Received& r, ErrorCode code);
  void io_pump(std::shared_ptr<struct BaselineIoState> st);
  void run_chunk(std::shared_ptr<struct BaselineIoState> st, size_t slot_idx, uint64_t op_off,
                 uint64_t chunk);

  System* sys_;
  Process* proc_;
  BlockDevice* device_;
  Params params_;
  CapId create_ep_ = kInvalidCap;
  CapId open_ep_ = kInvalidCap;
  std::unordered_map<std::string, File> files_;
  std::unordered_map<uint32_t, Open> opens_;
  uint32_t next_open_ = 1;
  uint64_t next_base_ = 0;
  SlotPool slot_pool_;
  std::vector<Slot> slots_;
};

}  // namespace fractos

#endif  // SRC_BASELINES_BASELINE_FS_H_
