#include "src/baselines/page_cache.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "src/base/assert.h"

namespace fractos {

PageCache::PageCache(EventLoop* loop, BlockDevice* backing)
    : PageCache(loop, backing, Params{}) {}

PageCache::PageCache(EventLoop* loop, BlockDevice* backing, Params params)
    : loop_(loop), backing_(backing), params_(params) {
  FRACTOS_CHECK(loop != nullptr && backing != nullptr);
}

void PageCache::touch(uint64_t page) {
  auto it = pages_.find(page);
  FRACTOS_DCHECK(it != pages_.end());
  lru_.erase(it->second.lru_pos);
  lru_.push_front(page);
  it->second.lru_pos = lru_.begin();
}

void PageCache::install_page(uint64_t page, std::vector<uint8_t> bytes) {
  auto it = pages_.find(page);
  if (it != pages_.end()) {
    it->second.bytes = std::move(bytes);
    touch(page);
    return;
  }
  lru_.push_front(page);
  pages_.emplace(page, Page{std::move(bytes), lru_.begin()});
  evict_if_needed();
}

void PageCache::evict_if_needed() {
  while (pages_.size() > params_.capacity_pages) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    pages_.erase(victim);
  }
}

std::vector<uint8_t> PageCache::gather(uint64_t off, uint64_t size) {
  std::vector<uint8_t> out(size);
  uint64_t pos = 0;
  while (pos < size) {
    const uint64_t abs = off + pos;
    const uint64_t page = abs / params_.page_bytes;
    const uint64_t in_page = abs % params_.page_bytes;
    const uint64_t n = std::min(size - pos, params_.page_bytes - in_page);
    const Page& p = pages_.at(page);
    std::copy_n(p.bytes.begin() + static_cast<ptrdiff_t>(in_page), n,
                out.begin() + static_cast<ptrdiff_t>(pos));
    touch(page);
    pos += n;
  }
  return out;
}

void PageCache::read(uint64_t off, uint64_t size, std::function<void(Result<Payload>)> done) {
  if (off + size > capacity()) {
    loop_->post([done = std::move(done)]() { done(ErrorCode::kOutOfRange); });
    return;
  }
  const uint64_t first = off / params_.page_bytes;
  const uint64_t last = (off + size - 1) / params_.page_bytes;
  bool all_cached = true;
  for (uint64_t p = first; p <= last; ++p) {
    if (!page_cached(p)) {
      all_cached = false;
      break;
    }
  }
  const bool sequential = off == last_read_end_;
  last_read_end_ = off + size;

  if (all_cached) {
    ++hits_;
    const uint64_t n_pages = last - first + 1;
    Payload data(gather(off, size));
    loop_->schedule_after(params_.hit_cost_per_page * static_cast<double>(n_pages),
                          [done = std::move(done), data = std::move(data)]() mutable {
                            done(std::move(data));
                          });
    return;
  }
  ++misses_;

  // Fetch the whole covering run in one backing I/O; extend by the read-ahead window when
  // the access pattern is sequential.
  uint64_t fetch_first = first;
  uint64_t fetch_last = last;
  if (sequential) {
    fetch_last =
        std::min(fetch_last + params_.readahead_pages,
                 (capacity() / params_.page_bytes) - 1);
    ++readahead_fetches_;
  }
  const uint64_t fetch_off = fetch_first * params_.page_bytes;
  const uint64_t fetch_size =
      std::min((fetch_last - fetch_first + 1) * params_.page_bytes, capacity() - fetch_off);
  backing_->read(
      fetch_off, fetch_size,
      [this, off, size, fetch_first, fetch_off, fetch_size,
       done = std::move(done)](Result<Payload> r) mutable {
        if (!r.ok()) {
          done(r.error());
          return;
        }
        const std::vector<uint8_t>& bytes = r.value().bytes();
        for (uint64_t p = fetch_first; (p - fetch_first + 1) * params_.page_bytes <= fetch_size;
             ++p) {
          const uint64_t start = (p - fetch_first) * params_.page_bytes;
          install_page(p, std::vector<uint8_t>(
                              bytes.begin() + static_cast<ptrdiff_t>(start),
                              bytes.begin() + static_cast<ptrdiff_t>(start + params_.page_bytes)));
        }
        // Serve from the fetched run directly: a request larger than the cache capacity may
        // already have evicted its own head pages.
        const uint64_t start = off - fetch_off;
        done(Payload(std::vector<uint8_t>(
            bytes.begin() + static_cast<ptrdiff_t>(start),
            bytes.begin() + static_cast<ptrdiff_t>(start + size))));
      });
}

void PageCache::write(uint64_t off, Payload data, std::function<void(Status)> done) {
  if (off + data.size() > capacity()) {
    loop_->post([done = std::move(done)]() { done(ErrorCode::kOutOfRange); });
    return;
  }
  // The cache absorbs the write: fully covered pages are installed, partially covered
  // cached pages are updated in place (partial uncached pages are simply not cached —
  // a later read re-fetches them). Device durability comes from an asynchronous write-back
  // issued immediately; the caller completes at memcpy speed. This is the "absorbs writes"
  // behaviour of Fig. 10.
  const uint64_t page_bytes = params_.page_bytes;
  const std::vector<uint8_t>& src = data.bytes();
  const uint64_t size = src.size();
  uint64_t pos = 0;
  while (pos < size) {
    const uint64_t abs = off + pos;
    const uint64_t page = abs / page_bytes;
    const uint64_t in_page = abs % page_bytes;
    const uint64_t n = std::min(size - pos, page_bytes - in_page);
    if (in_page == 0 && n == page_bytes) {
      install_page(page, std::vector<uint8_t>(src.begin() + static_cast<ptrdiff_t>(pos),
                                              src.begin() + static_cast<ptrdiff_t>(pos + n)));
    } else if (page_cached(page)) {
      Page& p = pages_.at(page);
      std::copy_n(src.begin() + static_cast<ptrdiff_t>(pos), n,
                  p.bytes.begin() + static_cast<ptrdiff_t>(in_page));
      touch(page);
    }
    pos += n;
  }
  backing_->write(off, std::move(data), [](Status) {});
  const uint64_t n_pages = (size + page_bytes - 1) / page_bytes;
  loop_->schedule_after(params_.hit_cost_per_page * static_cast<double>(n_pages),
                        [done = std::move(done)]() { done(ok_status()); });
}

}  // namespace fractos
