#include "src/core/controller.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"
#include "src/futures/timeout.h"
#include "src/sim/metrics.h"

namespace fractos {

namespace {

// "peer-<type>" span names, interned lazily on first use (MsgType is a uint8_t enum).
NameId peer_msg_type_span_name(MsgType t) {
  static NameId cache[256] = {};
  NameId& id = cache[static_cast<uint8_t>(t)];
  if (id == kInvalidNameId) {
    id = intern_name(std::string("peer-") + msg_type_name(t));
  }
  return id;
}

}  // namespace

Controller::Controller(Network* net, Config config)
    : net_(net), config_(config), table_(config.addr),
      tcache_(config.translation_cache_entries) {
  FRACTOS_CHECK(net != nullptr);
  exec_ = &net_->node(config_.endpoint.node).context(config_.endpoint.loc);
  name_ = "ctrl-" + std::to_string(config_.addr);
  name_id_ = intern_name(name_);
  const std::string mp = "ctrl." + std::to_string(config_.addr) + ".";
  mkeys_.syscalls = intern_name(mp + "syscalls");
  mkeys_.deliveries = intern_name(mp + "deliveries");
  mkeys_.translations = intern_name(mp + "translations");
  mkeys_.peer_retries = intern_name(mp + "peer_retries");
  mkeys_.peer_op_timeouts = intern_name(mp + "peer_op_timeouts");
  mkeys_.peer_dedup_hits = intern_name(mp + "peer_dedup_hits");
  mkeys_.late_reply = intern_name(mp + "late_reply");
  // Interning is registry-free; the registry only learns these keys if a hot-path feature
  // actually touches them, keeping default-config metric snapshots unchanged.
  const std::string cp = "cap." + std::to_string(config_.addr) + ".";
  mkeys_.cap_cache_hit = intern_name(cp + "xlate_hit");
  mkeys_.cap_cache_miss = intern_name(cp + "xlate_miss");
  mkeys_.cap_revoke_subtree = intern_name(cp + "revoke_subtree");
  mkeys_.cap_batch_occupancy = intern_name(cp + "batch_occupancy");
  mkeys_.admission_admitted = intern_name(mp + "admission.admitted");
  mkeys_.admission_shed = intern_name(mp + "admission.shed");
}

Controller::~Controller() {
  // Peer ops still in flight at teardown complete with kChannelClosed; their futures would
  // otherwise trip the broken-promise detector.
  fail_pending_ops(ErrorCode::kChannelClosed);
}

// --- wiring ----------------------------------------------------------------------------------

Channel& Controller::attach_process(ProcessId pid, uint32_t proc_node, PoolId heap_pool) {
  FRACTOS_CHECK(!procs_.contains(pid));
  auto state = std::make_unique<ProcState>(config_.cap_quota);
  state->pid = pid;
  state->node = proc_node;
  state->heap_pool = heap_pool;
  state->chan = std::make_unique<Channel>(net_, config_.endpoint);
  Channel& chan = *state->chan;
  chan.set_handler([this, pid](Envelope env) { on_process_msg(pid, std::move(env)); });
  chan.set_severed_handler([this, pid]() {
    // "A Process failure is detected by the owner Controller when their channel is severed."
    if (!failed_) {
      process_failed(pid);
    }
  });
  procs_.emplace(pid, std::move(state));
  return chan;
}

Channel& Controller::connect_peer(ControllerAddr peer, Endpoint peer_ep) {
  FRACTOS_CHECK(!peers_.contains(peer));
  Peer p;
  p.endpoint = peer_ep;
  p.chan = std::make_unique<Channel>(net_, config_.endpoint);
  Channel& chan = *p.chan;
  chan.set_handler([this, peer](Envelope env) { on_peer_msg(peer, std::move(env)); });
  chan.set_severed_handler([this, peer]() { on_peer_severed(peer); });
  peers_.emplace(peer, std::move(p));
  return chan;
}

Result<CapId> Controller::bootstrap_install(ProcessId pid, CapEntry entry) {
  auto it = procs_.find(pid);
  if (it == procs_.end() || !it->second->alive) {
    return ErrorCode::kNotFound;
  }
  return it->second->caps.install(entry);
}

Result<CapEntry> Controller::inspect_cap(ProcessId pid, CapId cid) const {
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    return ErrorCode::kNotFound;
  }
  return it->second->caps.get(cid);
}

size_t Controller::cap_space_size(ProcessId pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? 0 : it->second->caps.size();
}

// --- RDMA authorization ------------------------------------------------------------------------

Status Controller::check_rdma(const RdmaKey& key, PoolId pool, uint64_t addr, uint64_t size,
                              bool is_write) const {
  if (failed_) {
    return ErrorCode::kChannelClosed;
  }
  // key.controller is the owning seat: normally this Controller itself, but after a failover
  // the acting leader authorizes against its replica — a revoked object fails here on every
  // member that may legally answer.
  const ObjectTable* t = serving_table(key.controller);
  if (t == nullptr) {
    return ErrorCode::kInvalidCapability;
  }
  auto resolved = t->resolve_memory(key.object, key.generation);
  if (!resolved.ok()) {
    return resolved.error();
  }
  const auto& mem = resolved.value();
  if (mem.desc.pool != pool || addr < mem.desc.addr || addr + size > mem.desc.addr + mem.desc.size) {
    return ErrorCode::kOutOfRange;
  }
  if (!perms_allow(mem.perms, is_write ? Perms::kWrite : Perms::kRead)) {
    return ErrorCode::kPermissionDenied;
  }
  return ok_status();
}

// --- dispatch ----------------------------------------------------------------------------------

Duration Controller::cost_of(const Envelope& env) const {
  const ControllerCosts& c = config_.costs;
  switch (env.type) {
    case MsgType::kNullOp:
      return c.null_op;
    case MsgType::kMemoryCopy:
      return c.memcopy_setup;
    case MsgType::kRequestInvoke: {
      const auto& m = std::get<RequestInvokeMsg>(env.body);
      return c.request_traversal + c.cap_install * static_cast<double>(m.caps.size());
    }
    case MsgType::kRemoteInvoke: {
      const auto& m = std::get<RemoteInvokeMsg>(env.body);
      const double n = static_cast<double>(m.caps.size());
      return c.net_deserialize + c.request_traversal + (c.cap_deserialize + c.cap_install) * n;
    }
    case MsgType::kRemoteDerive: {
      const auto& m = std::get<RemoteDeriveMsg>(env.body);
      return c.syscall_base + c.cap_deserialize * static_cast<double>(m.caps.size());
    }
    case MsgType::kRemoteDeriveBatch: {
      // One syscall_base for the whole frame: batching amortizes the per-message fixed
      // cost across its members (each still pays its own capability deserialization).
      const auto& m = std::get<RemoteDeriveBatchMsg>(env.body);
      size_t caps = 0;
      for (const RemoteDeriveMsg& op : m.ops) {
        caps += op.caps.size();
      }
      return c.syscall_base + c.cap_deserialize * static_cast<double>(caps);
    }
    case MsgType::kDeliverAck:
      return Duration::nanos(50);
    default:
      return c.syscall_base;
  }
}

void Controller::on_process_msg(ProcessId pid, Envelope env) {
  if (failed_) {
    return;
  }
  // Evaluate the cost before the capture list moves `env` (argument order is unspecified).
  const Duration cost = cost_of(env);
  // The kController span covers arrival (message off the channel) to handler completion;
  // exec_->run itself records the core-wait slice as kQueue, which wins attribution for it.
  uint64_t span = 0;
  if (span_tracing_active() && net_->loop()->span_tracer() != nullptr) {
    span = net_->loop()->span_tracer()->begin(
        name_id_, SpanKind::kController, msg_type_span_name(env.type), net_->loop()->now());
  }
  exec_->run(cost, [this, pid, span, env = std::move(env)]() mutable {
    auto it = procs_.find(pid);
    if (it != procs_.end() && it->second->alive && !failed_) {
      handle_syscall(*it->second, env);
    }
    if (span != 0) {
      if (SpanTracer* t = net_->loop()->span_tracer()) {
        t->end(span, net_->loop()->now());
      }
    }
  });
}

void Controller::on_peer_msg(ControllerAddr peer, Envelope env) {
  if (failed_) {
    return;
  }
  const Duration cost = cost_of(env);
  uint64_t span = 0;
  if (span_tracing_active() && net_->loop()->span_tracer() != nullptr) {
    span = net_->loop()->span_tracer()->begin(
        name_id_, SpanKind::kController, peer_msg_type_span_name(env.type),
        net_->loop()->now());
  }
  exec_->run(cost, [this, peer, span, env = std::move(env)]() mutable {
    if (span != 0) {
      if (SpanTracer* t = net_->loop()->span_tracer()) {
        t->end(span, net_->loop()->now());
      }
    }
    if (failed_) {
      return;
    }
    switch (env.type) {
      case MsgType::kRemoteInvoke:
        peer_remote_invoke(peer, std::get<RemoteInvokeMsg>(env.body));
        break;
      case MsgType::kRemoteDerive:
        peer_remote_derive(peer, std::get<RemoteDeriveMsg>(env.body));
        break;
      case MsgType::kRemoteDeriveBatch:
        peer_remote_derive_batch(peer, std::get<RemoteDeriveBatchMsg>(env.body));
        break;
      case MsgType::kPeerReply:
        peer_reply(std::get<PeerReplyMsg>(env.body));
        break;
      case MsgType::kPeerReplyBatch:
        for (const PeerReplyMsg& r : std::get<PeerReplyBatchMsg>(env.body).replies) {
          peer_reply(r);
        }
        break;
      case MsgType::kRevokeBroadcast:
        peer_revoke_broadcast(peer, std::get<RevokeBroadcastMsg>(env.body));
        break;
      case MsgType::kRevokeAck:
        peer_revoke_ack(std::get<RevokeAckMsg>(env.body));
        break;
      case MsgType::kRegisterMonitor:
        peer_register_monitor(peer, env.seq, std::get<RegisterMonitorMsg>(env.body));
        break;
      case MsgType::kMonitorFired:
        peer_monitor_fired(std::get<MonitorFiredMsg>(env.body));
        break;
      case MsgType::kRemoteInvokeError:
        peer_invoke_error(std::get<RemoteInvokeErrorMsg>(env.body));
        break;
      case MsgType::kReplAppend:
      case MsgType::kReplAppendReply:
      case MsgType::kReplVote:
      case MsgType::kReplVoteReply:
      case MsgType::kReplSnapshot:
        handle_repl_msg(peer, env);
        break;
      case MsgType::kReplLeaderAnnounce:
        peer_leader_announce(std::get<ReplLeaderAnnounceMsg>(env.body));
        break;
      default:
        FRACTOS_CHECK_MSG(false, "unexpected message on peer channel");
    }
  });
}

void Controller::charge(Duration cost, std::function<void()> fn) {
  exec_->run(cost, std::move(fn));
}

void Controller::note_translation(Duration cost) {
  if (MetricsRegistry* m = net_->loop()->metrics()) {
    m->add(mkeys_.translations);
  }
  static const NameId kCapSerialize = intern_name("cap-serialize");
  record_translation_span(cost, kCapSerialize);
}

void Controller::record_translation_span(Duration cost, NameId name) {
  if (span_tracing_active() && net_->loop()->span_tracer() != nullptr) {
    // Called from the charge() callback, so the scaled cost has just elapsed on exec_:
    // the execution window is exactly [now - cost/speed, now].
    const Time now = net_->loop()->now();
    const Duration scaled = cost / exec_->speed();
    net_->loop()->span_tracer()->record(name_id_, SpanKind::kTranslation, name,
                                        Time::from_ns(now.ns() - scaled.ns()), now);
  }
}

Duration Controller::translation_extra_cost(ObjectIndex idx) const {
  if (!config_.charge_chain_traversal) {
    return Duration::zero();
  }
  if (tcache_.enabled() && tcache_.contains(idx)) {
    return Duration::zero();  // hit: the memoized route skips the chain walk entirely
  }
  const size_t depth = table_.chain_depth(idx);
  if (depth <= 1) {
    return Duration::zero();  // roots (and unknown indices, which fail later) walk nothing
  }
  return config_.costs.request_traversal * static_cast<double>(depth - 1);
}

Status Controller::translation_cache_audit() const {
  ErrorCode bad = ErrorCode::kOk;
  tcache_.for_each([&](ObjectIndex idx, const ObjectTable::ResolvedRequest& cached) {
    auto fresh = table_.resolve_request(idx, table_.reboot_count());
    if (!fresh.ok()) {
      // Still cached but no longer resolvable: a stale entry survived its revocation.
      bad = ErrorCode::kInternal;
      return;
    }
    const ObjectTable::ResolvedRequest& f = fresh.value();
    if (f.provider != cached.provider || f.endpoint_cid != cached.endpoint_cid ||
        f.args.imms != cached.args.imms || f.args.caps != cached.args.caps) {
      bad = ErrorCode::kInternal;
    }
  });
  return bad == ErrorCode::kOk ? ok_status() : Status(bad);
}

void Controller::close_peer_op_span(uint64_t op_id, const char* error) {
  auto it = pending_op_spans_.find(op_id);
  if (it == pending_op_spans_.end()) {
    return;
  }
  const uint64_t span = it->second;
  pending_op_spans_.erase(it);
  if (SpanTracer* t = net_->loop()->span_tracer()) {
    if (error != nullptr) {
      t->end_error(span, net_->loop()->now(), error);
    } else {
      t->end(span, net_->loop()->now());
    }
  }
}

// --- syscall handlers ----------------------------------------------------------------------------

void Controller::handle_syscall(ProcState& p, const Envelope& env) {
  ++stats_.syscalls;
  if (MetricsRegistry* m = net_->loop()->metrics()) {
    m->add(mkeys_.syscalls);
  }
  if (net_->loop()->tracing() && env.type != MsgType::kDeliverAck) {
    net_->loop()->trace(name_, std::string("syscall ") + msg_type_name(env.type) + " from pid " +
                                   std::to_string(p.pid));
  }
  switch (env.type) {
    case MsgType::kNullOp:
      reply(p, env.seq, ErrorCode::kOk);
      break;
    case MsgType::kMemoryCreate:
      sc_memory_create(p, env.seq, std::get<MemoryCreateMsg>(env.body));
      break;
    case MsgType::kMemoryDiminish:
      sc_memory_diminish(p, env.seq, std::get<MemoryDiminishMsg>(env.body));
      break;
    case MsgType::kMemoryCopy:
      sc_memory_copy(p, env.seq, std::get<MemoryCopyMsg>(env.body));
      break;
    case MsgType::kRequestCreate:
      sc_request_create(p, env.seq, std::get<RequestCreateMsg>(env.body));
      break;
    case MsgType::kRequestInvoke:
      sc_request_invoke(p, env.seq, std::get<RequestInvokeMsg>(env.body));
      break;
    case MsgType::kCapCreateRevtree:
      sc_cap_create_revtree(p, env.seq, std::get<CapCreateRevtreeMsg>(env.body));
      break;
    case MsgType::kCapRevoke:
      sc_cap_revoke(p, env.seq, std::get<CapRevokeMsg>(env.body));
      break;
    case MsgType::kMonitorDelegate:
      sc_monitor(p, env.seq, std::get<MonitorMsg>(env.body), /*delegate_mode=*/true);
      break;
    case MsgType::kMonitorReceive:
      sc_monitor(p, env.seq, std::get<MonitorMsg>(env.body), /*delegate_mode=*/false);
      break;
    case MsgType::kDeliverAck: {
      if (p.outstanding > 0) {
        --p.outstanding;
      }
      drain_deliveries(p);
      break;
    }
    default:
      FRACTOS_CHECK_MSG(false, "unexpected message on process channel");
  }
}

void Controller::reply(ProcState& p, uint64_t seq, ErrorCode status, CapId cid) {
  SyscallReplyMsg m;
  m.call_seq = seq;
  m.status = status;
  m.cid = cid;
  p.chan->send(Traffic::kControl, make_envelope(next_seq_++, m));
}

void Controller::sc_memory_create(ProcState& p, uint64_t seq, const MemoryCreateMsg& m) {
  // The Process registers memory it physically owns: a pool on its own node.
  if (!can_mutate_seat(addr())) {
    reply(p, seq, ErrorCode::kNotLeader);
    return;
  }
  Node& node = net_->node(p.node);
  if (Status s = node.check_extent(m.pool, m.addr, m.size); !s.ok()) {
    reply(p, seq, s.error());
    return;
  }
  MemoryDesc desc{p.node, m.pool, m.addr, m.size};
  auto idx = table_.create_memory(p.pid, desc, m.perms);
  if (!idx.ok()) {
    reply(p, seq, idx.error());
    return;
  }
  CapEntry entry;
  entry.ref = table_.ref_of(idx.value());
  entry.kind = ObjectKind::kMemory;
  entry.perms = m.perms;
  entry.mem = desc;
  auto cid = p.caps.install(entry);
  if (!cid.ok()) {
    reply(p, seq, cid.error());
    return;
  }
  ReplicatedOp op;
  op.kind = ReplicatedOp::Kind::kCreateMemory;
  op.requester = p.pid;
  op.result_index = idx.value();
  op.mem = desc;
  op.perms = m.perms;
  const ProcessId pid = p.pid;
  const CapId out = cid.value();
  commit_mutation(addr(), std::move(op), [this, pid, seq, out](ErrorCode ec) {
    auto it = procs_.find(pid);
    if (it == procs_.end() || !it->second->alive) {
      return;
    }
    reply(*it->second, seq, ec, ec == ErrorCode::kOk ? out : kInvalidCap);
  });
}

void Controller::sc_memory_diminish(ProcState& p, uint64_t seq, const MemoryDiminishMsg& m) {
  auto entry = p.caps.get(m.cid);
  if (!entry.ok()) {
    reply(p, seq, entry.error());
    return;
  }
  const CapEntry& e = entry.value();
  if (e.kind != ObjectKind::kMemory) {
    reply(p, seq, ErrorCode::kWrongObjectKind);
    return;
  }
  if (e.ref.owner == addr()) {
    if (!can_mutate_seat(addr())) {
      reply(p, seq, ErrorCode::kNotLeader);
      return;
    }
    auto idx = table_.derive_memory(p.pid, e.ref.index, m.offset, m.size, m.drop_perms);
    if (!idx.ok()) {
      reply(p, seq, idx.error());
      return;
    }
    auto resolved = table_.resolve_memory(idx.value(), table_.reboot_count());
    FRACTOS_CHECK(resolved.ok());
    CapEntry derived;
    derived.ref = table_.ref_of(idx.value());
    derived.kind = ObjectKind::kMemory;
    derived.perms = resolved.value().perms;
    derived.mem = resolved.value().desc;
    auto cid = p.caps.install(derived);
    ReplicatedOp op;
    op.kind = ReplicatedOp::Kind::kDeriveMemory;
    op.requester = p.pid;
    op.base = e.ref.index;
    op.result_index = idx.value();
    op.offset = m.offset;
    op.size = m.size;
    op.perms = m.drop_perms;
    const ProcessId pid = p.pid;
    const ErrorCode install_status = cid.ok() ? ErrorCode::kOk : cid.error();
    const CapId out = cid.value_or(kInvalidCap);
    commit_mutation(addr(), std::move(op),
                    [this, pid, seq, install_status, out](ErrorCode ec) {
                      auto it = procs_.find(pid);
                      if (it == procs_.end() || !it->second->alive) {
                        return;
                      }
                      reply(*it->second, seq, ec == ErrorCode::kOk ? install_status : ec,
                            ec == ErrorCode::kOk ? out : kInvalidCap);
                    });
    return;
  }
  // Derivation at the owner: single message to the owning Controller (Section 3.5).
  RemoteDeriveMsg rd;
  rd.op_id = next_op_id_++;
  rd.base = e.ref;
  rd.op = RemoteDeriveMsg::Op::kMemoryDiminish;
  rd.requester = p.pid;
  rd.offset = m.offset;
  rd.size = m.size;
  rd.drop_perms = m.drop_perms;
  const ProcessId pid = p.pid;
  const ControllerAddr owner = route_owner(e.ref.owner);
  call_peer_derive(owner, std::move(rd))
      .on_ready([this, pid, seq](Result<PeerReplyMsg>&& res) {
        auto it = procs_.find(pid);
        if (it == procs_.end() || !it->second->alive) {
          return;
        }
        ProcState& proc = *it->second;
        if (!res.ok()) {
          reply(proc, seq, res.error());
          return;
        }
        PeerReplyMsg r = std::move(res).value();
        if (r.status != ErrorCode::kOk) {
          reply(proc, seq, r.status);
          return;
        }
        CapEntry derived{r.result.ref, r.result.kind, r.result.perms, r.result.mem,
                         r.result.tracked};
        auto cid = proc.caps.install(derived);
        reply(proc, seq, cid.ok() ? ErrorCode::kOk : cid.error(), cid.value_or(kInvalidCap));
      });
}

void Controller::sc_memory_copy(ProcState& p, uint64_t seq, const MemoryCopyMsg& m) {
  auto src = p.caps.get(m.src);
  auto dst = p.caps.get(m.dst);
  if (!src.ok() || !dst.ok()) {
    reply(p, seq, ErrorCode::kInvalidCapability);
    return;
  }
  if (src.value().kind != ObjectKind::kMemory || dst.value().kind != ObjectKind::kMemory) {
    reply(p, seq, ErrorCode::kWrongObjectKind);
    return;
  }
  if (!perms_allow(src.value().perms, Perms::kRead) ||
      !perms_allow(dst.value().perms, Perms::kWrite)) {
    reply(p, seq, ErrorCode::kPermissionDenied);
    return;
  }
  // Resolve the sub-range views. length == 0 means the whole overlap (min of both views) —
  // this lets services point one fixed staging-window capability at variable-sized client
  // buffers without deriving a fresh Memory object per operation.
  CapEntry src_view = src.value();
  CapEntry dst_view = dst.value();
  if (m.src_off > src_view.mem.size || m.dst_off > dst_view.mem.size) {
    reply(p, seq, ErrorCode::kOutOfRange);
    return;
  }
  src_view.mem.addr += m.src_off;
  src_view.mem.size -= m.src_off;
  dst_view.mem.addr += m.dst_off;
  dst_view.mem.size -= m.dst_off;
  const uint64_t length =
      m.length == 0 ? std::min(src_view.mem.size, dst_view.mem.size) : m.length;
  if (length > src_view.mem.size || length > dst_view.mem.size) {
    reply(p, seq, ErrorCode::kOutOfRange);
    return;
  }
  src_view.mem.size = length;
  dst_view.mem.size = length;
  do_copy(p, seq, src_view, dst_view);
}

void Controller::do_copy(ProcState& p, uint64_t seq, const CapEntry& src, const CapEntry& dst) {
  const uint64_t total = src.mem.size;
  ++stats_.copies;
  stats_.copy_bytes += total;
  const ProcessId pid = p.pid;
  auto done = [this, pid, seq](Status s) {
    auto it = procs_.find(pid);
    if (it == procs_.end() || !it->second->alive) {
      return;
    }
    reply(*it->second, seq, s.ok() ? ErrorCode::kOk : s.error());
  };
  if (config_.hw_third_party_copies) {
    Network::RdmaSide s{src.mem.node, key_of(src.ref), src.mem.pool, src.mem.addr};
    Network::RdmaSide d{dst.mem.node, key_of(dst.ref), dst.mem.pool, dst.mem.addr};
    net_->rdma_third_party(config_.endpoint, s, d, total, std::move(done));
    return;
  }
  bounce_copy_chunked(config_.endpoint, src, dst, total, std::move(done));
}

void Controller::bounce_copy_chunked(Endpoint self, CapEntry src, CapEntry dst, uint64_t total,
                                     std::function<void(Status)> done) {
  // "FractOS uses double buffering for buffers larger than 16 KB" (Fig. 5): below the
  // threshold the copy is one read followed by one write through the Controller's bounce
  // buffers; above it, fixed-size chunks are pipelined with up to two reads in flight, so a
  // chunk's write overlaps the next chunk's read.
  struct CopyState {
    Network* net;
    Endpoint self;
    CapEntry src;
    CapEntry dst;
    uint64_t total = 0;
    uint64_t chunk = 0;
    uint64_t next_read = 0;
    uint64_t written = 0;
    uint32_t reads_in_flight = 0;
    bool failed = false;
    std::function<void(Status)> done;
  };
  auto st = std::make_shared<CopyState>();
  st->net = net_;
  st->self = self;
  st->src = src;
  st->dst = dst;
  st->total = total;
  st->chunk = total <= config_.double_buffer_threshold ? total : config_.copy_chunk_bytes;
  st->done = std::move(done);
  if (total == 0) {
    net_->loop()->post([st]() { st->done(ok_status()); });
    return;
  }

  // Recursive lambda via a shared function object. The self-capture is WEAK: pending RDMA
  // callbacks hold the function strongly, so it lives exactly as long as the copy is in
  // flight and is reclaimed afterwards (a strong self-capture would leak one CopyState per
  // operation).
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [st, weak_pump = std::weak_ptr<std::function<void()>>(pump)]() {
    auto pump = weak_pump.lock();
    if (!pump) {
      return;
    }
    while (!st->failed && st->next_read < st->total && st->reads_in_flight < 2) {
      const uint64_t off = st->next_read;
      const uint64_t len = std::min(st->chunk, st->total - off);
      st->next_read += len;
      ++st->reads_in_flight;
      st->net->rdma_read(
          st->self, st->src.mem.node, RdmaKey{st->src.ref.owner, st->src.ref.index,
                                              st->src.ref.reboot_count},
          st->src.mem.pool, st->src.mem.addr + off, len,
          [st, pump, off, len](Result<Payload> data) {
            --st->reads_in_flight;
            if (st->failed) {
              return;
            }
            if (!data.ok()) {
              st->failed = true;
              st->done(data.error());
              return;
            }
            // Hand the read's Payload handle straight to the write — the bounce "copy"
            // through the Controller moves no bytes in the simulator.
            st->net->rdma_write(
                st->self, st->dst.mem.node,
                RdmaKey{st->dst.ref.owner, st->dst.ref.index, st->dst.ref.reboot_count},
                st->dst.mem.pool, st->dst.mem.addr + off, std::move(data).value(),
                [st, len](Status ws) {
                  if (st->failed) {
                    return;
                  }
                  if (!ws.ok()) {
                    st->failed = true;
                    st->done(ws);
                    return;
                  }
                  st->written += len;
                  if (st->written == st->total) {
                    st->done(ok_status());
                  }
                });
            (*pump)();
          });
    }
  };
  (*pump)();
}

void Controller::set_admission_limit(ProcessId pid, uint32_t limit) {
  auto it = procs_.find(pid);
  FRACTOS_CHECK(it != procs_.end());
  it->second->admission_limit = limit;
  if (limit == 0) {
    it->second->admission_inflight = 0;
  }
}

void Controller::note_peer_generation(ControllerAddr peer, uint32_t reboot_count) {
  uint32_t& gen = peer_gens_[peer];
  if (reboot_count > gen) {
    gen = reboot_count;
  }
}

bool Controller::is_stale(const ObjectRef& ref) const {
  if (ref.owner == addr()) {
    return ref.reboot_count != table_.reboot_count();
  }
  auto it = peer_gens_.find(ref.owner);
  return it != peer_gens_.end() && ref.reboot_count < it->second;
}

Duration Controller::cap_serialize_cost(const std::vector<WireCap>& caps) {
  Duration total = Duration::zero();
  for (const WireCap& wc : caps) {
    const uint64_t key = (static_cast<uint64_t>(wc.ref.owner) << 48) ^ wc.ref.index;
    if (config_.cache_serialized_requests && serialized_cache_.contains(key)) {
      total += config_.costs.cap_serialize * config_.serialized_cache_discount;
    } else {
      total += config_.costs.cap_serialize;
      if (config_.cache_serialized_requests) {
        serialized_cache_.insert(key);
      }
    }
  }
  return total;
}

void Controller::node_recovered(uint32_t node) {
  ++stats_.node_recoveries;
  if (net_->loop()->tracing()) {
    net_->loop()->trace(name_, "node " + std::to_string(node) +
                                   " re-admitted (spurious failure report)");
  }
}

void Controller::node_failed(uint32_t node) {
  std::vector<ProcessId> victims;
  for (auto& [pid, proc] : procs_) {
    if (proc->alive && proc->node == node) {
      victims.push_back(pid);
    }
  }
  for (ProcessId pid : victims) {
    process_failed(pid);
  }
}

Result<WireCap> Controller::make_wire_cap(ProcState& p, CapId cid) {
  auto entry = p.caps.get(cid);
  if (!entry.ok()) {
    return entry.error();
  }
  const CapEntry& e = entry.value();
  if (is_stale(e.ref)) {
    return ErrorCode::kStaleCapability;
  }
  WireCap wc;
  wc.ref = e.ref;
  wc.kind = e.kind;
  wc.perms = e.perms;
  wc.mem = e.mem;
  wc.tracked = e.tracked;
  if (e.ref.owner == addr()) {
    // Owner-side monitor interception: delegating a monitor_delegate'd object creates a
    // tracked per-delegation child (Section 3.6).
    auto prepared = table_.prepare_delegation(e.ref.index);
    if (!prepared.ok()) {
      return prepared.error();
    }
    if (prepared.value() != e.ref.index) {
      wc.ref = table_.ref_of(prepared.value());
      wc.tracked = true;
      ReplicatedOp op;
      op.kind = ReplicatedOp::Kind::kPrepareDelegation;
      op.base = e.ref.index;
      op.result_index = prepared.value();
      log_mutation(addr(), std::move(op));
    }
  }
  return wc;
}

Result<std::vector<WireCap>> Controller::make_wire_caps(ProcState& p,
                                                        const std::vector<CapId>& cids) {
  std::vector<WireCap> out;
  out.reserve(cids.size());
  for (CapId cid : cids) {
    auto wc = make_wire_cap(p, cid);
    if (!wc.ok()) {
      return wc.error();
    }
    out.push_back(wc.value());
  }
  return out;
}

void Controller::sc_request_create(ProcState& p, uint64_t seq, const RequestCreateMsg& m) {
  auto caps = make_wire_caps(p, m.caps);
  if (!caps.ok()) {
    reply(p, seq, caps.error());
    return;
  }
  RequestArgs args;
  args.imms = m.imms;
  args.caps = std::move(caps).value();

  if (!m.has_base) {
    if (!can_mutate_seat(addr())) {
      reply(p, seq, ErrorCode::kNotLeader);
      return;
    }
    ReplicatedOp op;
    op.kind = ReplicatedOp::Kind::kCreateRequestRoot;
    op.requester = p.pid;
    op.imms = args.imms;
    op.caps = args.caps;
    auto idx = table_.create_request_root(p.pid, kInvalidCap, std::move(args));
    if (!idx.ok()) {
      reply(p, seq, idx.error());
      return;
    }
    CapEntry entry;
    entry.ref = table_.ref_of(idx.value());
    entry.kind = ObjectKind::kRequest;
    auto cid = p.caps.install(entry);
    if (!cid.ok()) {
      reply(p, seq, cid.error());
      return;
    }
    FRACTOS_CHECK(table_.set_endpoint_cid(idx.value(), cid.value()).ok());
    op.result_index = idx.value();
    op.cid = cid.value();  // followers apply the endpoint cid as part of the same entry
    const ProcessId pid = p.pid;
    const CapId out = cid.value();
    commit_mutation(addr(), std::move(op), [this, pid, seq, out](ErrorCode ec) {
      auto it = procs_.find(pid);
      if (it == procs_.end() || !it->second->alive) {
        return;
      }
      reply(*it->second, seq, ec, ec == ErrorCode::kOk ? out : kInvalidCap);
    });
    return;
  }

  auto base = p.caps.get(m.base);
  if (!base.ok()) {
    reply(p, seq, base.error());
    return;
  }
  if (base.value().kind != ObjectKind::kRequest) {
    reply(p, seq, ErrorCode::kWrongObjectKind);
    return;
  }
  if (base.value().ref.owner == addr()) {
    if (!can_mutate_seat(addr())) {
      reply(p, seq, ErrorCode::kNotLeader);
      return;
    }
    ReplicatedOp op;
    op.kind = ReplicatedOp::Kind::kDeriveRequest;
    op.requester = p.pid;
    op.base = base.value().ref.index;
    op.imms = args.imms;
    op.caps = args.caps;
    auto idx = table_.derive_request_local(p.pid, base.value().ref.index, std::move(args));
    if (!idx.ok()) {
      reply(p, seq, idx.error());
      return;
    }
    CapEntry entry;
    entry.ref = table_.ref_of(idx.value());
    entry.kind = ObjectKind::kRequest;
    auto cid = p.caps.install(entry);
    op.result_index = idx.value();
    const ProcessId pid = p.pid;
    const ErrorCode install_status = cid.ok() ? ErrorCode::kOk : cid.error();
    const CapId out = cid.value_or(kInvalidCap);
    commit_mutation(addr(), std::move(op),
                    [this, pid, seq, install_status, out](ErrorCode ec) {
                      auto it = procs_.find(pid);
                      if (it == procs_.end() || !it->second->alive) {
                        return;
                      }
                      reply(*it->second, seq, ec == ErrorCode::kOk ? install_status : ec,
                            ec == ErrorCode::kOk ? out : kInvalidCap);
                    });
    return;
  }

  // Derivation at the owner; capability arguments are delegated (serialized) on the way.
  RemoteDeriveMsg rd;
  rd.op_id = next_op_id_++;
  rd.base = base.value().ref;
  rd.op = RemoteDeriveMsg::Op::kRequestRefine;
  rd.requester = p.pid;
  rd.imms = std::move(args.imms);
  rd.caps = std::move(args.caps);
  const ProcessId pid = p.pid;
  const ControllerAddr owner = route_owner(base.value().ref.owner);
  const Duration extra = cap_serialize_cost(rd.caps);
  charge(extra, [this, pid, seq, owner, extra, rd = std::move(rd)]() mutable {
    note_translation(extra);
    call_peer_derive(owner, std::move(rd))
        .on_ready([this, pid, seq](Result<PeerReplyMsg>&& res) {
          auto it = procs_.find(pid);
          if (it == procs_.end() || !it->second->alive) {
            return;
          }
          ProcState& proc = *it->second;
          if (!res.ok()) {
            reply(proc, seq, res.error());
            return;
          }
          PeerReplyMsg r = std::move(res).value();
          if (r.status != ErrorCode::kOk) {
            reply(proc, seq, r.status);
            return;
          }
          CapEntry entry{r.result.ref, r.result.kind, r.result.perms, r.result.mem,
                         r.result.tracked};
          auto cid = proc.caps.install(entry);
          reply(proc, seq, cid.ok() ? ErrorCode::kOk : cid.error(), cid.value_or(kInvalidCap));
        });
  });
}

void Controller::sc_request_invoke(ProcState& p, uint64_t seq, const RequestInvokeMsg& m) {
  // Admission gate first, before any capability resolution or delegation minting: a shed
  // request must cost the Controller nothing but this branch and the refusal reply — that is
  // what makes shedding a defense against overload rather than another queue.
  const bool gated = p.admission_limit != 0;
  if (gated) {
    MetricsRegistry* mr = net_->loop()->metrics();
    if (p.admission_inflight >= p.admission_limit) {
      ++stats_.admission_shed;
      if (mr != nullptr) {
        mr->add(mkeys_.admission_shed);
      }
      reply(p, seq, ErrorCode::kOverloaded);
      return;
    }
    ++p.admission_inflight;
    ++stats_.admission_admitted;
    if (p.admission_inflight > stats_.admission_max_inflight) {
      stats_.admission_max_inflight = p.admission_inflight;
    }
    if (mr != nullptr) {
      mr->add(mkeys_.admission_admitted);
    }
  }
  auto entry = p.caps.get(m.cid);
  if (!entry.ok()) {
    if (gated) {
      admission_release(p);
    }
    reply(p, seq, entry.error());
    return;
  }
  const CapEntry& e = entry.value();
  if (e.kind != ObjectKind::kRequest) {
    if (gated) {
      admission_release(p);
    }
    reply(p, seq, ErrorCode::kWrongObjectKind);
    return;
  }
  // Refuse up front when the owning Controller is unreachable: accepting and then silently
  // dropping the forward would leave the invoker's reply endpoint waiting forever. Checked
  // before make_wire_caps so no tracked delegation children are minted for a doomed invoke.
  // A replicated seat is reachable through its acting leader after the seat itself dies.
  if (e.ref.owner != addr()) {
    Peer* pr = find_peer(route_owner(e.ref.owner));
    if (pr == nullptr || pr->chan->severed()) {
      if (gated) {
        admission_release(p);
      }
      reply(p, seq, ErrorCode::kChannelClosed);
      return;
    }
  }
  auto caps = make_wire_caps(p, m.caps);
  if (!caps.ok()) {
    if (gated) {
      admission_release(p);
    }
    reply(p, seq, caps.error());
    return;
  }

  if (is_stale(e.ref)) {
    if (gated) {
      admission_release(p);
    }
    reply(p, seq, ErrorCode::kStaleCapability);
    return;
  }
  if (e.ref.owner == addr()) {
    ++stats_.invokes_local;
    const Duration extra = translation_extra_cost(e.ref.index);
    if (extra == Duration::zero()) {
      const ErrorCode status = deliver_by_ref(e.ref, m.imms, caps.value());
      if (gated && status != ErrorCode::kOk) {
        admission_release(p);
      }
      reply(p, seq, status);
      return;
    }
    // Depth-proportional pricing (translation-cache miss): pay the chain walk on exec_,
    // stamp it into the translation tax bucket, then deliver.
    const ObjectRef target = e.ref;
    const ProcessId pid = p.pid;
    charge(extra, [this, pid, seq, target, extra, imms = m.imms,
                   wcaps = std::move(caps).value()]() {
      static const NameId kXlateMiss = intern_name("xlate-miss");
      record_translation_span(extra, kXlateMiss);
      const ErrorCode status = deliver_by_ref(target, imms, wcaps);
      auto it = procs_.find(pid);
      if (it != procs_.end() && it->second->alive) {
        if (status != ErrorCode::kOk) {
          admission_release(*it->second);
        }
        reply(*it->second, seq, status);
      }
    });
    return;
  }
  ++stats_.invokes_forwarded;

  // Forward to the owning Controller; the invoke-time refinement and the delegated
  // capabilities ride along, so a pre-arranged RPC is exactly one cross-node message.
  RemoteInvokeMsg ri;
  ri.target = e.ref;
  ri.imms = m.imms;
  ri.caps = std::move(caps).value();
  ri.origin = addr();
  ri.invoke_id = next_op_id_++;
  pending_invokes_[ri.invoke_id] = p.pid;
  const ControllerAddr owner = route_owner(e.ref.owner);
  const Duration extra = config_.costs.net_serialize + cap_serialize_cost(ri.caps);
  reply(p, seq, ErrorCode::kOk);  // accepted; remote failures surface via the error channel
  charge(extra, [this, owner, extra, ri = std::move(ri)]() mutable {
    note_translation(extra);
    send_peer(owner, make_envelope(next_seq_++, std::move(ri)));
  });
}

void Controller::sc_cap_create_revtree(ProcState& p, uint64_t seq,
                                       const CapCreateRevtreeMsg& m) {
  auto entry = p.caps.get(m.cid);
  if (!entry.ok()) {
    reply(p, seq, entry.error());
    return;
  }
  const CapEntry& e = entry.value();
  if (e.ref.owner == addr()) {
    if (!can_mutate_seat(addr())) {
      reply(p, seq, ErrorCode::kNotLeader);
      return;
    }
    auto idx = table_.create_revtree_child(p.pid, e.ref.index);
    if (!idx.ok()) {
      reply(p, seq, idx.error());
      return;
    }
    CapEntry child = e;  // same payload view, independently revocable object
    child.ref = table_.ref_of(idx.value());
    auto cid = p.caps.install(child);
    ReplicatedOp op;
    op.kind = ReplicatedOp::Kind::kRevtreeChild;
    op.requester = p.pid;
    op.base = e.ref.index;
    op.result_index = idx.value();
    const ProcessId pid = p.pid;
    const ErrorCode install_status = cid.ok() ? ErrorCode::kOk : cid.error();
    const CapId out = cid.value_or(kInvalidCap);
    commit_mutation(addr(), std::move(op),
                    [this, pid, seq, install_status, out](ErrorCode ec) {
                      auto it = procs_.find(pid);
                      if (it == procs_.end() || !it->second->alive) {
                        return;
                      }
                      reply(*it->second, seq, ec == ErrorCode::kOk ? install_status : ec,
                            ec == ErrorCode::kOk ? out : kInvalidCap);
                    });
    return;
  }
  RemoteDeriveMsg rd;
  rd.op_id = next_op_id_++;
  rd.base = e.ref;
  rd.op = RemoteDeriveMsg::Op::kRevtreeChild;
  rd.requester = p.pid;
  const ProcessId pid = p.pid;
  const ControllerAddr owner = route_owner(e.ref.owner);
  call_peer_derive(owner, std::move(rd))
      .on_ready([this, pid, seq](Result<PeerReplyMsg>&& res) {
        auto it = procs_.find(pid);
        if (it == procs_.end() || !it->second->alive) {
          return;
        }
        ProcState& proc = *it->second;
        if (!res.ok()) {
          reply(proc, seq, res.error());
          return;
        }
        PeerReplyMsg r = std::move(res).value();
        if (r.status != ErrorCode::kOk) {
          reply(proc, seq, r.status);
          return;
        }
        CapEntry entry{r.result.ref, r.result.kind, r.result.perms, r.result.mem,
                       r.result.tracked};
        auto cid = proc.caps.install(entry);
        reply(proc, seq, cid.ok() ? ErrorCode::kOk : cid.error(), cid.value_or(kInvalidCap));
      });
}

void Controller::sc_cap_revoke(ProcState& p, uint64_t seq, const CapRevokeMsg& m) {
  auto entry = p.caps.get(m.cid);
  if (!entry.ok()) {
    reply(p, seq, entry.error());
    return;
  }
  const CapEntry& e = entry.value();
  if (e.ref.owner == addr()) {
    if (!can_mutate_seat(addr())) {
      reply(p, seq, ErrorCode::kNotLeader);
      return;
    }
    auto result = table_.revoke(e.ref.index, e.ref.reboot_count);
    if (!result.ok()) {
      reply(p, seq, result.error());
      return;
    }
    apply_revoke(result.value());
    ReplicatedOp op;
    op.kind = ReplicatedOp::Kind::kRevoke;
    op.base = e.ref.index;
    const ProcessId pid = p.pid;
    commit_mutation(addr(), std::move(op), [this, pid, seq](ErrorCode ec) {
      auto it = procs_.find(pid);
      if (it != procs_.end() && it->second->alive) {
        reply(*it->second, seq, ec);
      }
    });
    return;
  }
  RemoteDeriveMsg rd;
  rd.op_id = next_op_id_++;
  rd.base = e.ref;
  rd.op = RemoteDeriveMsg::Op::kRevoke;
  rd.requester = p.pid;
  const ProcessId pid = p.pid;
  const ControllerAddr owner = route_owner(e.ref.owner);
  call_peer_derive(owner, std::move(rd))
      .on_ready([this, pid, seq](Result<PeerReplyMsg>&& res) {
        auto it = procs_.find(pid);
        if (it != procs_.end() && it->second->alive) {
          reply(*it->second, seq, res.ok() ? res.value().status : res.error());
        }
      });
}

void Controller::sc_monitor(ProcState& p, uint64_t seq, const MonitorMsg& m,
                            bool delegate_mode) {
  auto entry = p.caps.get(m.cid);
  if (!entry.ok()) {
    reply(p, seq, entry.error());
    return;
  }
  const CapEntry& e = entry.value();
  const MonitorSub sub{addr(), p.pid, m.callback_id};
  if (e.ref.owner == addr()) {
    if (!can_mutate_seat(addr())) {
      reply(p, seq, ErrorCode::kNotLeader);
      return;
    }
    const Status s = delegate_mode
                         ? table_.monitor_delegate(e.ref.index, e.ref.reboot_count, sub)
                         : table_.monitor_receive(e.ref.index, e.ref.reboot_count, sub);
    if (!s.ok()) {
      reply(p, seq, s.error());
      return;
    }
    ReplicatedOp op;
    op.kind = delegate_mode ? ReplicatedOp::Kind::kMonitorDelegate
                            : ReplicatedOp::Kind::kMonitorReceive;
    op.base = e.ref.index;
    op.callback_id = m.callback_id;
    op.sub_controller = addr();
    op.sub_process = p.pid;
    const ProcessId pid = p.pid;
    commit_mutation(addr(), std::move(op), [this, pid, seq](ErrorCode ec) {
      auto it = procs_.find(pid);
      if (it != procs_.end() && it->second->alive) {
        reply(*it->second, seq, ec);
      }
    });
    return;
  }
  RegisterMonitorMsg rm;
  rm.target = e.ref;
  rm.delegate_mode = delegate_mode;
  rm.callback_id = m.callback_id;
  rm.subscriber_controller = addr();
  rm.subscriber_process = p.pid;
  const uint64_t op_id = next_op_id_++;
  const ProcessId pid = p.pid;
  call_peer(route_owner(e.ref.owner), op_id, make_envelope(op_id, rm))
      .on_ready([this, pid, seq](Result<PeerReplyMsg>&& res) {
        auto it = procs_.find(pid);
        if (it != procs_.end() && it->second->alive) {
          reply(*it->second, seq, res.ok() ? res.value().status : res.error());
        }
      });
}

// --- delivery ------------------------------------------------------------------------------------

ErrorCode Controller::deliver_locally(ObjectIndex idx, const std::vector<ImmExtent>& extra_imms,
                                      const std::vector<WireCap>& extra_caps) {
  // deliver_locally is called with a ref whose owner is this Controller; the generation was
  // checked when building the ObjectRef view.
  ObjectTable::ResolvedRequest req;
  if (tcache_.enabled()) {
    MetricsRegistry* mr = net_->loop()->metrics();
    if (const ObjectTable::ResolvedRequest* cached = tcache_.lookup(idx)) {
      req = *cached;  // copy out: the delivery below consumes the merged args
      if (mr != nullptr) {
        mr->add(mkeys_.cap_cache_hit);
      }
    } else {
      auto resolved = table_.resolve_request(idx, table_.reboot_count());
      if (!resolved.ok()) {
        return resolved.error();
      }
      req = std::move(resolved).value();
      tcache_.put(idx, req);
      if (mr != nullptr) {
        mr->add(mkeys_.cap_cache_miss);
      }
    }
  } else {
    auto resolved = table_.resolve_request(idx, table_.reboot_count());
    if (!resolved.ok()) {
      return resolved.error();
    }
    req = std::move(resolved).value();
  }
  if (Status s = check_imm_overlap(req.args.imms, extra_imms); !s.ok()) {
    return s.error();
  }
  auto pit = procs_.find(req.provider);
  if (pit == procs_.end() || !pit->second->alive) {
    return ErrorCode::kChannelClosed;
  }
  ProcState& provider = *pit->second;

  DeliverRequestMsg d;
  d.endpoint_cid = req.endpoint_cid;
  d.imms = std::move(req.args.imms);
  d.imms.insert(d.imms.end(), extra_imms.begin(), extra_imms.end());
  std::vector<WireCap> all_caps = std::move(req.args.caps);
  all_caps.insert(all_caps.end(), extra_caps.begin(), extra_caps.end());
  for (const WireCap& wc : all_caps) {
    CapEntry entry{wc.ref, wc.kind, wc.perms, wc.mem, wc.tracked};
    auto cid = provider.caps.install(entry);
    if (!cid.ok()) {
      return cid.error();
    }
    d.caps.push_back(DeliveredCap{cid.value(), wc.kind, wc.perms, wc.mem.size});
  }
  push_delivery(provider, std::move(d));
  return ErrorCode::kOk;
}

ErrorCode Controller::deliver_by_ref(const ObjectRef& target,
                                     const std::vector<ImmExtent>& extra_imms,
                                     const std::vector<WireCap>& extra_caps) {
  if (target.owner != addr()) {
    // Acting leader for a dead seat: authorize against the replica so revoked or stale
    // capabilities are refused with the real reason, but the provider process lived on the
    // seat's node — it cannot be reached from here.
    ObjectTable* t = serving_table(target.owner);
    if (t == nullptr) {
      return ErrorCode::kInvalidArgument;
    }
    if (target.reboot_count != t->reboot_count()) {
      return ErrorCode::kStaleCapability;
    }
    auto resolved = t->resolve_request(target.index, t->reboot_count());
    if (!resolved.ok()) {
      return resolved.error();
    }
    return ErrorCode::kChannelClosed;
  }
  if (!can_mutate_seat(addr())) {
    return ErrorCode::kNotLeader;  // deposed own seat: a successor may hold newer state
  }
  if (target.reboot_count != table_.reboot_count()) {
    return ErrorCode::kStaleCapability;
  }
  return deliver_locally(target.index, extra_imms, extra_caps);
}

void Controller::push_delivery(ProcState& p, DeliverRequestMsg msg) {
  // A delivery into an admission-gated process is the response leg of an admitted invoke
  // (one response per invoke — see set_admission_limit); release its slot.
  admission_release(p);
  ++stats_.deliveries;
  if (MetricsRegistry* m = net_->loop()->metrics()) {
    m->add(mkeys_.deliveries);
  }
  if (net_->loop()->tracing()) {
    net_->loop()->trace(name_, "deliver request to pid " + std::to_string(p.pid) + " (" +
                                   std::to_string(msg.caps.size()) + " caps)");
  }
  if (p.outstanding >= config_.congestion_window) {
    p.pending.push_back(std::move(msg));
    ++deliveries_queued_;
    return;
  }
  ++p.outstanding;
  p.chan->send(Traffic::kControl, make_envelope(next_seq_++, std::move(msg)));
}

void Controller::drain_deliveries(ProcState& p) {
  while (!p.pending.empty() && p.outstanding < config_.congestion_window) {
    DeliverRequestMsg msg = std::move(p.pending.front());
    p.pending.pop_front();
    ++p.outstanding;
    p.chan->send(Traffic::kControl, make_envelope(next_seq_++, std::move(msg)));
  }
}

// --- peer handlers --------------------------------------------------------------------------------

void Controller::peer_remote_invoke(ControllerAddr origin, const RemoteInvokeMsg& m) {
  ++stats_.invokes_received;
  Duration extra = Duration::zero();
  if (m.target.owner == addr() && m.target.reboot_count == table_.reboot_count()) {
    extra = translation_extra_cost(m.target.index);
  }
  if (extra == Duration::zero()) {
    const ErrorCode status = deliver_by_ref(m.target, m.imms, m.caps);
    if (status != ErrorCode::kOk) {
      RemoteInvokeErrorMsg err;
      err.invoke_id = m.invoke_id;
      err.status = status;
      send_peer(origin, make_envelope(next_seq_++, err));
    }
    return;
  }
  // Translation-cache miss on a forwarded invoke: the owner pays the chain walk too.
  charge(extra, [this, origin, extra, m]() {
    static const NameId kXlateMiss = intern_name("xlate-miss");
    record_translation_span(extra, kXlateMiss);
    const ErrorCode status = deliver_by_ref(m.target, m.imms, m.caps);
    if (status != ErrorCode::kOk) {
      RemoteInvokeErrorMsg err;
      err.invoke_id = m.invoke_id;
      err.status = status;
      send_peer(origin, make_envelope(next_seq_++, err));
    }
  });
}

void Controller::peer_remote_derive(ControllerAddr origin, const RemoteDeriveMsg& m) {
  exec_remote_derive(origin, m, [this, origin](const PeerReplyMsg& r) {
    send_peer(origin, make_envelope(next_seq_++, r));
  });
}

void Controller::peer_remote_derive_batch(ControllerAddr origin, const RemoteDeriveBatchMsg& m) {
  if (m.ops.empty()) {
    return;
  }
  // Per-op execution with per-op dedup, answered as one kPeerReplyBatch in op order — a
  // resent batch whose members already executed replays every reply from the cache. Members
  // of a replicated seat complete asynchronously (commit-gated), so the batch reply is sent
  // only once the last member's reply lands; without a group every member completes inline
  // and the wire behavior is byte-identical to the synchronous path.
  auto out = std::make_shared<PeerReplyBatchMsg>();
  out->replies.resize(m.ops.size());
  auto remaining = std::make_shared<size_t>(m.ops.size());
  for (size_t i = 0; i < m.ops.size(); ++i) {
    exec_remote_derive(origin, m.ops[i],
                       [this, origin, out, remaining, i](const PeerReplyMsg& r) {
                         out->replies[i] = r;
                         if (--*remaining == 0) {
                           send_peer(origin, make_envelope(next_seq_++, std::move(*out)));
                         }
                       });
  }
}

void Controller::exec_remote_derive(ControllerAddr origin, const RemoteDeriveMsg& m,
                                    std::function<void(const PeerReplyMsg&)> done) {
  // Idempotency: a resent request whose first copy already executed is answered from the
  // reply cache — revokes and derivations must not run twice.
  const uint64_t dedup_key = peer_op_key(origin, m.op_id);
  if (net_->lossy()) {
    auto cached = completed_peer_ops_.find(dedup_key);
    if (cached != completed_peer_ops_.end()) {
      ++stats_.peer_dedup_hits;
      if (MetricsRegistry* mr = net_->loop()->metrics()) {
        mr->add(mkeys_.peer_dedup_hits);
      }
      done(cached->second);
      return;
    }
  }
  PeerReplyMsg r;
  r.op_id = m.op_id;
  ObjectTable* t = serving_table(m.base.owner);
  if (t == nullptr) {
    // Not the owner and not its acting leader (kInvalidArgument, the pre-replication
    // answer), or a group member that cannot currently lead the seat (kNotLeader — the
    // requester should re-route once a new leader announces itself).
    r.status = (m.base.owner == addr() || repl_groups_.count(m.base.owner) != 0)
                   ? ErrorCode::kNotLeader
                   : ErrorCode::kInvalidArgument;
    cache_completed_peer_op(dedup_key, r);
    done(r);
    return;
  }
  if (m.base.reboot_count != t->reboot_count()) {
    r.status = ErrorCode::kStaleCapability;
    cache_completed_peer_op(dedup_key, r);
    done(r);
    return;
  }
  ++stats_.derivations;
  ObjectTable& tbl = *t;
  const ControllerAddr seat = m.base.owner;
  ReplicatedOp op;
  op.requester = m.requester;
  op.base = m.base.index;
  ObjectTable::RevokeResult revoked;
  switch (m.op) {
    case RemoteDeriveMsg::Op::kRequestRefine: {
      RequestArgs args;
      args.imms = m.imms;
      args.caps = m.caps;
      auto idx = tbl.derive_request_local(m.requester, m.base.index, std::move(args));
      if (!idx.ok()) {
        r.status = idx.error();
      } else {
        r.result.ref = tbl.ref_of(idx.value());
        r.result.kind = ObjectKind::kRequest;
        op.kind = ReplicatedOp::Kind::kDeriveRequest;
        op.result_index = idx.value();
        op.imms = m.imms;
        op.caps = m.caps;
      }
      break;
    }
    case RemoteDeriveMsg::Op::kMemoryDiminish: {
      auto idx = tbl.derive_memory(m.requester, m.base.index, m.offset, m.size, m.drop_perms);
      if (!idx.ok()) {
        r.status = idx.error();
      } else {
        auto resolved = tbl.resolve_memory(idx.value(), tbl.reboot_count());
        FRACTOS_CHECK(resolved.ok());
        r.result.ref = tbl.ref_of(idx.value());
        r.result.kind = ObjectKind::kMemory;
        r.result.perms = resolved.value().perms;
        r.result.mem = resolved.value().desc;
        op.kind = ReplicatedOp::Kind::kDeriveMemory;
        op.result_index = idx.value();
        op.offset = m.offset;
        op.size = m.size;
        op.perms = m.drop_perms;
      }
      break;
    }
    case RemoteDeriveMsg::Op::kRevtreeChild: {
      auto idx = tbl.create_revtree_child(m.requester, m.base.index);
      if (!idx.ok()) {
        r.status = idx.error();
      } else {
        r.result.ref = tbl.ref_of(idx.value());
        r.result.kind = tbl.kind_of(idx.value());
        if (r.result.kind == ObjectKind::kMemory) {
          auto resolved = tbl.resolve_memory(idx.value(), tbl.reboot_count());
          FRACTOS_CHECK(resolved.ok());
          r.result.perms = resolved.value().perms;
          r.result.mem = resolved.value().desc;
        }
        op.kind = ReplicatedOp::Kind::kRevtreeChild;
        op.result_index = idx.value();
      }
      break;
    }
    case RemoteDeriveMsg::Op::kRevoke: {
      auto result = tbl.revoke(m.base.index, m.base.reboot_count);
      if (!result.ok()) {
        r.status = result.error();
      } else {
        op.kind = ReplicatedOp::Kind::kRevoke;
        revoked = std::move(result).value();
      }
      break;
    }
  }
  if (r.status != ErrorCode::kOk) {
    cache_completed_peer_op(dedup_key, r);
    done(r);
    return;
  }
  // Commit gate: the reply (and, for a revoke, the cleanup broadcast) is released only once
  // the entry is durable on a majority. Without a group the continuation runs synchronously
  // and this whole block collapses to the pre-replication order of effects.
  const bool is_revoke = op.kind == ReplicatedOp::Kind::kRevoke;
  auto revoked_state = std::make_shared<ObjectTable::RevokeResult>(std::move(revoked));
  commit_mutation(seat, std::move(op),
                  [this, seat, dedup_key, r, is_revoke, revoked_state,
                   done = std::move(done)](ErrorCode ec) mutable {
                    if (ec != ErrorCode::kOk) {
                      // Unknown outcome (deposed mid-commit): do NOT cache — the op may be
                      // retried at the next leader, and this member's eager state will be
                      // reset from a snapshot.
                      r.status = ec;
                      done(r);
                      return;
                    }
                    if (is_revoke) {
                      apply_revoke_for(seat, *revoked_state);
                    }
                    cache_completed_peer_op(dedup_key, r);
                    done(r);
                  });
}

void Controller::peer_reply(const PeerReplyMsg& m) {
  auto it = pending_ops_.find(m.op_id);
  if (it == pending_ops_.end()) {
    // The op already completed (first reply won, the deadline fired, or this Controller
    // failed): resend-induced duplicates and post-timeout stragglers land here.
    ++stats_.late_replies_ignored;
    if (MetricsRegistry* mr = net_->loop()->metrics()) {
      mr->add(mkeys_.late_reply);
    }
    return;
  }
  Promise<Result<PeerReplyMsg>> promise = std::move(it->second);
  pending_ops_.erase(it);
  pending_op_peer_.erase(m.op_id);
  close_peer_op_span(m.op_id, nullptr);
  promise.set(Result<PeerReplyMsg>(m));
}

void Controller::peer_revoke_broadcast(ControllerAddr origin, const RevokeBroadcastMsg& m) {
  for (auto& [pid, proc] : procs_) {
    proc->caps.purge_refs(m.revoked);
  }
  // Record the owner's generation (it is embedded in the refs) for eager stale checks. The
  // refs are keyed by their owner, not the broadcast's origin: a takeover leader broadcasts
  // on behalf of the dead seat.
  if (!m.revoked.empty()) {
    note_peer_generation(m.revoked.front().owner, m.revoked.front().reboot_count);
  }
  send_peer(origin, make_envelope(next_seq_++, RevokeAckMsg{m.cleanup_id}));
}

void Controller::peer_revoke_ack(const RevokeAckMsg& m) {
  auto it = pending_cleanups_.find(m.cleanup_id);
  if (it == pending_cleanups_.end()) {
    return;
  }
  if (--it->second.awaiting == 0) {
    // Every peer purged its references: the invalidated stubs can finally be reclaimed.
    const ControllerAddr seat = it->second.seat == 0 ? addr() : it->second.seat;
    if (ObjectTable* t = serving_table(seat); t != nullptr) {
      stats_.objects_reclaimed += t->erase_objects(it->second.objects);
      ReplicatedOp op;
      op.kind = ReplicatedOp::Kind::kEraseObjects;
      op.indices.assign(it->second.objects.begin(), it->second.objects.end());
      log_mutation(seat, std::move(op));
    }
    pending_cleanups_.erase(it);
  }
}

void Controller::peer_register_monitor(ControllerAddr origin, uint64_t seq,
                                       const RegisterMonitorMsg& m) {
  // The subscriber keys this op by the envelope seq, which resends reuse — so it doubles as
  // the dedup key (double-registering a monitor would double its fire count).
  const uint64_t dedup_key = peer_op_key(origin, seq);
  if (replay_completed_peer_op(origin, dedup_key)) {
    return;
  }
  PeerReplyMsg r;
  r.op_id = seq;  // the subscriber keyed its continuation by the envelope seq
  const MonitorSub sub{m.subscriber_controller, m.subscriber_process, m.callback_id};
  Status s(ErrorCode::kInvalidArgument);
  ObjectTable* t = serving_table(m.target.owner);
  if (t != nullptr) {
    s = m.delegate_mode
            ? t->monitor_delegate(m.target.index, m.target.reboot_count, sub)
            : t->monitor_receive(m.target.index, m.target.reboot_count, sub);
  }
  r.status = s.ok() ? ErrorCode::kOk : s.error();
  if (!s.ok()) {
    cache_completed_peer_op(dedup_key, r);
    send_peer(origin, make_envelope(next_seq_++, r));
    return;
  }
  ReplicatedOp op;
  op.kind = m.delegate_mode ? ReplicatedOp::Kind::kMonitorDelegate
                            : ReplicatedOp::Kind::kMonitorReceive;
  op.base = m.target.index;
  op.callback_id = m.callback_id;
  op.sub_controller = m.subscriber_controller;
  op.sub_process = m.subscriber_process;
  commit_mutation(m.target.owner, std::move(op),
                  [this, origin, dedup_key, r](ErrorCode ec) mutable {
                    r.status = ec;
                    if (ec == ErrorCode::kOk) {
                      cache_completed_peer_op(dedup_key, r);
                    }
                    send_peer(origin, make_envelope(next_seq_++, r));
                  });
}

void Controller::peer_monitor_fired(const MonitorFiredMsg& m) {
  auto it = procs_.find(m.process);
  if (it == procs_.end() || !it->second->alive) {
    return;
  }
  MonitorCallbackMsg cb;
  cb.callback_id = m.callback_id;
  cb.delegate_mode = m.delegate_mode;
  it->second->chan->send(Traffic::kControl, make_envelope(next_seq_++, cb));
}

void Controller::peer_invoke_error(const RemoteInvokeErrorMsg& m) {
  auto it = pending_invokes_.find(m.invoke_id);
  if (it == pending_invokes_.end()) {
    return;
  }
  const ProcessId pid = it->second;
  pending_invokes_.erase(it);
  auto pit = procs_.find(pid);
  if (pit == procs_.end() || !pit->second->alive) {
    return;
  }
  // A forwarded invoke that failed at the owner produces no response delivery; the error
  // channel is where its admission slot releases.
  admission_release(*pit->second);
  pit->second->chan->send(Traffic::kControl, make_envelope(next_seq_++, m));
}

// --- revocation plumbing --------------------------------------------------------------------------

void Controller::apply_revoke_for(ControllerAddr seat, const ObjectTable::RevokeResult& result,
                                  bool fire_monitors) {
  ++stats_.revocations;
  ObjectTable* t = serving_table(seat);
  if (t == nullptr) {
    return;  // lost the seat between revoke and cleanup; the next leader re-broadcasts
  }
  if (seat == addr() && tcache_.enabled()) {
    // Revocation-tree-aware invalidation: result.invalidated is exactly the revoked
    // subtree, so precisely the cached routes that just became unsafe are dropped.
    tcache_.invalidate(result.invalidated);
    if (!result.invalidated.empty()) {
      if (MetricsRegistry* m = net_->loop()->metrics()) {
        m->observe(mkeys_.cap_revoke_subtree, result.invalidated.size());
      }
    }
  }
  if (net_->loop()->tracing() && !result.invalidated.empty()) {
    net_->loop()->trace(name_, "revoked " + std::to_string(result.invalidated.size()) +
                                   " object(s), " + std::to_string(result.fires.size()) +
                                   " monitor fire(s)");
  }
  if (result.invalidated.empty()) {
    if (fire_monitors) {
      for (const auto& fire : result.fires) {
        dispatch_monitor_fire(fire);
      }
    }
    return;
  }
  RevokeBroadcastMsg bc;
  bc.cleanup_id = next_op_id_++;
  bc.revoked.reserve(result.invalidated.size());
  for (ObjectIndex idx : result.invalidated) {
    bc.revoked.push_back(ObjectRef{seat, idx, t->reboot_count()});
  }
  // Local cleanup (the owner is also "a Controller" for the broadcast).
  for (auto& [pid, proc] : procs_) {
    proc->caps.purge_refs(bc.revoked);
  }
  // Cleanup broadcast to every peer — the prototype's simple algorithm ("the cleanup step of
  // capability revocation is based on a broadcast", Section 4). Off the critical path; the
  // invalidated stubs are erased only once every live peer has acknowledged (two-phase
  // cleanup — "after ensuring no other Controllers have capabilities referencing it").
  size_t live_peers = 0;
  for (auto& [peer_addr, peer] : peers_) {
    if (peer.chan->severed()) {
      continue;
    }
    send_peer(peer_addr, make_envelope(next_seq_++, bc));
    ++live_peers;
  }
  if (live_peers == 0) {
    stats_.objects_reclaimed += t->erase_objects(result.invalidated);
    ReplicatedOp op;
    op.kind = ReplicatedOp::Kind::kEraseObjects;
    op.indices.assign(result.invalidated.begin(), result.invalidated.end());
    log_mutation(seat, std::move(op));
  } else {
    pending_cleanups_.emplace(bc.cleanup_id,
                              PendingCleanup{result.invalidated, live_peers, seat});
  }
  if (fire_monitors) {
    for (const auto& fire : result.fires) {
      dispatch_monitor_fire(fire);
    }
  }
}

void Controller::dispatch_monitor_fire(const ObjectTable::MonitorFire& fire) {
  ++stats_.monitor_fires;
  if (fire.sub.controller == addr()) {
    auto it = procs_.find(fire.sub.process);
    if (it == procs_.end() || !it->second->alive) {
      return;
    }
    MonitorCallbackMsg cb;
    cb.callback_id = fire.sub.callback_id;
    cb.delegate_mode = fire.delegate_mode;
    it->second->chan->send(Traffic::kControl, make_envelope(next_seq_++, cb));
    return;
  }
  MonitorFiredMsg mf;
  mf.process = fire.sub.process;
  mf.callback_id = fire.sub.callback_id;
  mf.delegate_mode = fire.delegate_mode;
  send_peer(fire.sub.controller, make_envelope(next_seq_++, mf));
}

Controller::Peer* Controller::find_peer(ControllerAddr peer) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) {
    return &it->second;
  }
  if (peer_connector_ == nullptr || failed_ || peer_connector_(peer) == nullptr) {
    return nullptr;
  }
  it = peers_.find(peer);
  FRACTOS_CHECK(it != peers_.end());
  return &it->second;
}

void Controller::send_peer(ControllerAddr peer, const Envelope& env, Traffic cat) {
  Peer* p = find_peer(peer);
  if (p == nullptr || p->chan->severed()) {
    return;  // peer unreachable; stale capabilities will surface at use
  }
  p->chan->send(cat, env);
}

Future<Result<PeerReplyMsg>> Controller::call_peer(ControllerAddr peer, uint64_t op_id,
                                                   Envelope env) {
  Promise<Result<PeerReplyMsg>> promise;
  Future<Result<PeerReplyMsg>> inner = promise.future();
  Peer* pr = failed_ ? nullptr : find_peer(peer);
  if (pr == nullptr || pr->chan->severed()) {
    promise.set(ErrorCode::kChannelClosed);
    return inner;
  }
  pending_ops_.emplace(op_id, promise);
  pending_op_peer_.emplace(op_id, peer);
  if (span_tracing_active() && net_->loop()->span_tracer() != nullptr) {
    static const NameId kPeerOp = intern_name("peer-op");
    const uint64_t span = net_->loop()->span_tracer()->begin(name_id_, SpanKind::kController,
                                                             kPeerOp, net_->loop()->now());
    if (span != 0) {
      pending_op_spans_.emplace(op_id, span);
    }
  }
  pr->chan->send(Traffic::kControl, env);
  if (!net_->lossy()) {
    // Clean fabric: the reply always arrives (or the peer's sever completes the op), so no
    // timers are armed and simulated time is untouched — the pre-existing fast path.
    return inner;
  }
  schedule_peer_resend(peer, op_id, Channel::encode(env), 1);
  Future<Result<PeerReplyMsg>> bounded =
      with_timeout(*net_->loop(), config_.peer_op_deadline, std::move(inner));
  // Scheduled after with_timeout's own deadline event (same instant, later sequence number):
  // the consumer sees kTimeout first, so dropping the promise here only triggers a guarded
  // no-op broken-promise delivery.
  net_->loop()->schedule_after(config_.peer_op_deadline,
                               [this, op_id]() { forget_peer_op(op_id); });
  return bounded;
}

Future<Result<PeerReplyMsg>> Controller::call_peer_derive(ControllerAddr peer,
                                                          RemoteDeriveMsg rd) {
  const uint64_t op_id = rd.op_id;
  if (config_.peer_op_batch_max == 0) {
    return call_peer(peer, op_id, make_envelope(op_id, std::move(rd)));
  }
  // Batched path: identical promise/span/timeout bookkeeping to call_peer, but the wire
  // send is deferred to flush_peer_batch.
  Promise<Result<PeerReplyMsg>> promise;
  Future<Result<PeerReplyMsg>> inner = promise.future();
  Peer* pr = failed_ ? nullptr : find_peer(peer);
  if (pr == nullptr || pr->chan->severed()) {
    promise.set(ErrorCode::kChannelClosed);
    return inner;
  }
  pending_ops_.emplace(op_id, promise);
  pending_op_peer_.emplace(op_id, peer);
  if (span_tracing_active() && net_->loop()->span_tracer() != nullptr) {
    static const NameId kPeerOp = intern_name("peer-op");
    const uint64_t span = net_->loop()->span_tracer()->begin(name_id_, SpanKind::kController,
                                                             kPeerOp, net_->loop()->now());
    if (span != 0) {
      pending_op_spans_.emplace(op_id, span);
    }
  }
  PendingBatch& batch = pending_batches_[peer];
  batch.ops.push_back(std::move(rd));
  if (batch.ops.size() >= config_.peer_op_batch_max) {
    flush_peer_batch(peer);
  } else if (!batch.flush_scheduled) {
    batch.flush_scheduled = true;
    net_->loop()->schedule_after(config_.peer_op_batch_delay,
                                 [this, peer]() { flush_peer_batch(peer); });
  }
  if (!net_->lossy()) {
    return inner;
  }
  Future<Result<PeerReplyMsg>> bounded =
      with_timeout(*net_->loop(), config_.peer_op_deadline, std::move(inner));
  net_->loop()->schedule_after(config_.peer_op_deadline,
                               [this, op_id]() { forget_peer_op(op_id); });
  return bounded;
}

void Controller::flush_peer_batch(ControllerAddr peer) {
  auto bit = pending_batches_.find(peer);
  if (bit == pending_batches_.end()) {
    return;
  }
  PendingBatch batch = std::move(bit->second);
  pending_batches_.erase(bit);
  if (failed_) {
    return;
  }
  // Drop members whose promise is already gone (severed peer or deadline before flush);
  // their futures have already been completed through the error channel.
  std::erase_if(batch.ops,
                [this](const RemoteDeriveMsg& op) { return !pending_ops_.contains(op.op_id); });
  if (batch.ops.empty()) {
    return;
  }
  Peer* pr = find_peer(peer);
  if (pr == nullptr || pr->chan->severed()) {
    return;  // on_peer_severed already failed every member op
  }
  if (MetricsRegistry* m = net_->loop()->metrics()) {
    m->observe(mkeys_.cap_batch_occupancy, batch.ops.size());
  }
  std::vector<uint64_t> op_ids;
  op_ids.reserve(batch.ops.size());
  for (const RemoteDeriveMsg& op : batch.ops) {
    op_ids.push_back(op.op_id);
  }
  RemoteDeriveBatchMsg msg;
  msg.ops = std::move(batch.ops);
  Envelope env = make_envelope(next_seq_++, std::move(msg));
  pr->chan->send(Traffic::kControl, env);
  if (net_->lossy()) {
    schedule_batch_resend(peer, std::move(op_ids), Channel::encode(env), 1);
  }
}

void Controller::schedule_batch_resend(ControllerAddr peer, std::vector<uint64_t> op_ids,
                                       Payload frame, uint32_t attempt) {
  if (attempt > config_.peer_op_retry_budget) {
    return;
  }
  const Duration delay =
      config_.peer_op_rto * static_cast<double>(uint64_t{1} << std::min(attempt - 1, 16u));
  net_->loop()->schedule_after(delay, [this, peer, op_ids = std::move(op_ids),
                                       frame = std::move(frame), attempt]() mutable {
    if (failed_) {
      return;
    }
    // The whole frame is resent while ANY member is still pending; receiver-side per-op
    // dedup replays already-executed members instead of running them twice.
    const bool any_pending = std::any_of(
        op_ids.begin(), op_ids.end(),
        [this](uint64_t op_id) { return pending_ops_.contains(op_id); });
    if (!any_pending) {
      return;
    }
    ++stats_.peer_retries;
    if (MetricsRegistry* m = net_->loop()->metrics()) {
      m->add(mkeys_.peer_retries);
    }
    Peer* pr = find_peer(peer);
    if (pr != nullptr && !pr->chan->severed()) {
      pr->chan->send_encoded(Traffic::kControl, frame);
    }
    schedule_batch_resend(peer, std::move(op_ids), std::move(frame), attempt + 1);
  });
}

void Controller::schedule_peer_resend(ControllerAddr peer, uint64_t op_id, Payload frame,
                                      uint32_t attempt) {
  if (attempt > config_.peer_op_retry_budget) {
    return;
  }
  const Duration delay =
      config_.peer_op_rto * static_cast<double>(uint64_t{1} << std::min(attempt - 1, 16u));
  net_->loop()->schedule_after(delay, [this, peer, op_id, frame = std::move(frame),
                                       attempt]() mutable {
    if (failed_ || !pending_ops_.contains(op_id)) {
      return;  // answered, timed out, or this Controller failed
    }
    ++stats_.peer_retries;
    if (MetricsRegistry* m = net_->loop()->metrics()) {
      m->add(mkeys_.peer_retries);
    }
    Peer* pr = find_peer(peer);
    if (pr != nullptr && !pr->chan->severed()) {
      pr->chan->send_encoded(Traffic::kControl, frame);
    }
    schedule_peer_resend(peer, op_id, std::move(frame), attempt + 1);
  });
}

void Controller::forget_peer_op(uint64_t op_id) {
  auto it = pending_ops_.find(op_id);
  if (it == pending_ops_.end()) {
    return;
  }
  ++stats_.peer_op_timeouts;
  if (MetricsRegistry* m = net_->loop()->metrics()) {
    m->add(mkeys_.peer_op_timeouts);
  }
  pending_ops_.erase(it);
  pending_op_peer_.erase(op_id);
  close_peer_op_span(op_id, "timeout");
}

void Controller::on_peer_severed(ControllerAddr peer) {
  if (failed_) {
    return;  // fail() already completed everything with kChannelClosed
  }
  // Collect first: completing a promise runs its continuation synchronously, and a
  // continuation may start new peer ops.
  std::vector<uint64_t> ops;
  for (const auto& [op_id, target] : pending_op_peer_) {
    if (target == peer) {
      ops.push_back(op_id);
    }
  }
  for (uint64_t op_id : ops) {
    auto it = pending_ops_.find(op_id);
    if (it == pending_ops_.end()) {
      continue;
    }
    Promise<Result<PeerReplyMsg>> promise = std::move(it->second);
    pending_ops_.erase(it);
    pending_op_peer_.erase(op_id);
    close_peer_op_span(op_id, "channel-closed");
    promise.set(ErrorCode::kChannelClosed);
  }
  // Replication: a dead leader's followers start a (rank-staggered) election immediately
  // rather than waiting out the lease.
  for (auto& [seat, group] : repl_groups_) {
    group->on_peer_severed(peer);
  }
}

bool Controller::replay_completed_peer_op(ControllerAddr origin, uint64_t key) {
  if (!net_->lossy()) {
    return false;
  }
  auto it = completed_peer_ops_.find(key);
  if (it == completed_peer_ops_.end()) {
    return false;
  }
  ++stats_.peer_dedup_hits;
  if (MetricsRegistry* m = net_->loop()->metrics()) {
    m->add(mkeys_.peer_dedup_hits);
  }
  send_peer(origin, make_envelope(next_seq_++, it->second));
  return true;
}

void Controller::cache_completed_peer_op(uint64_t key, const PeerReplyMsg& reply) {
  if (!net_->lossy()) {
    return;  // duplicates are impossible on a clean fabric; don't grow state for nothing
  }
  // Deterministic TTL eviction on simulated time: once an entry outlives peer_op_dedup_ttl
  // (>> peer_op_deadline), no resend of its op can still arrive, so it is dropped from the
  // front of the FIFO. The size cap stays as the hard backstop.
  const Time now = net_->loop()->now();
  while (!completed_peer_ops_fifo_.empty() &&
         now.ns() - completed_peer_ops_fifo_.front().second.ns() >=
             config_.peer_op_dedup_ttl.ns()) {
    completed_peer_ops_.erase(completed_peer_ops_fifo_.front().first);
    completed_peer_ops_fifo_.pop_front();
  }
  if (completed_peer_ops_.emplace(key, reply).second) {
    completed_peer_ops_fifo_.push_back({key, now});
    if (completed_peer_ops_fifo_.size() > kCompletedPeerOpCacheCap) {
      completed_peer_ops_.erase(completed_peer_ops_fifo_.front().first);
      completed_peer_ops_fifo_.pop_front();
    }
  }
}

void Controller::fail_pending_ops(ErrorCode status) {
  // Move the map out first: completing a promise runs its continuation synchronously, and a
  // continuation may start new peer ops.
  auto pending = std::move(pending_ops_);
  pending_ops_.clear();
  pending_op_peer_.clear();
  for (auto& [op_id, promise] : pending) {
    close_peer_op_span(op_id, "channel-closed");
    promise.set(status);
  }
}

// --- failure handling -----------------------------------------------------------------------------

void Controller::process_failed(ProcessId pid) {
  auto it = procs_.find(pid);
  if (it == procs_.end() || !it->second->alive) {
    return;
  }
  ProcState& p = *it->second;
  p.alive = false;
  ++stats_.process_failures;
  if (net_->loop()->tracing()) {
    net_->loop()->trace(name_, "process " + std::to_string(pid) + " failed; translating to revocations");
  }
  p.chan->sever();

  // Tracked (per-delegation) entries are revoked at their owners — this is what decrements
  // monitor_delegate counters for services whose client just died (Section 3.6).
  for (const CapEntry& entry : p.caps.all_entries()) {
    if (!entry.tracked) {
      continue;
    }
    if (entry.ref.owner == addr()) {
      auto result = table_.revoke(entry.ref.index, entry.ref.reboot_count);
      if (result.ok()) {
        ReplicatedOp op;
        op.kind = ReplicatedOp::Kind::kRevoke;
        op.base = entry.ref.index;
        log_mutation(addr(), std::move(op));
        apply_revoke(result.value());
      }
    } else {
      RemoteDeriveMsg rd;
      rd.op_id = next_op_id_++;
      rd.base = entry.ref;
      rd.op = RemoteDeriveMsg::Op::kRevoke;
      rd.requester = pid;
      // Fire-and-forget: the reply needs no action, so the future is dropped unconsumed.
      call_peer_derive(route_owner(entry.ref.owner), std::move(rd));
    }
  }
  // Everything the Process registered is invalidated.
  ReplicatedOp op;
  op.kind = ReplicatedOp::Kind::kRevokeAllOf;
  op.requester = pid;
  log_mutation(addr(), std::move(op));
  apply_revoke(table_.revoke_all_of(pid));
}

void Controller::fail() {
  if (failed_) {
    return;
  }
  failed_ = true;
  for (auto& [pid, proc] : procs_) {
    proc->chan->sever();
    proc->alive = false;
  }
  for (auto& [peer_addr, peer] : peers_) {
    peer.chan->sever();
  }
  // Replication groups die with the host; their commit waiters complete through the error
  // channel (every local process is already marked dead, so the continuations no-op).
  for (auto& [seat, group] : repl_groups_) {
    group->stop(ErrorCode::kChannelClosed);
  }
  // Outstanding peer ops complete through the error channel rather than dangling; their
  // continuations bail out early because every local process is now marked dead.
  fail_pending_ops(ErrorCode::kChannelClosed);
  pending_invokes_.clear();
  pending_batches_.clear();
}

void Controller::restart() {
  FRACTOS_CHECK(failed_);
  // All Processes of a failed Controller are considered failed (Section 3.6); the reboot
  // counter bump makes every capability that references this Controller stale.
  procs_.clear();
  peers_.clear();
  completed_peer_ops_.clear();
  completed_peer_ops_fifo_.clear();
  pending_batches_.clear();
  // Every cached translation references pre-reboot objects; the generation bump makes them
  // stale wholesale.
  tcache_.clear();
  table_.reboot();
  // Replication group membership does not survive a crash: a restarted member rejoins only
  // via an explicit enable_replication (it would need a snapshot catch-up anyway), and a
  // restarted seat serves its (empty, generation-bumped) table unreplicated.
  repl_groups_.clear();
  repl_routes_.clear();
  failed_ = false;
}

// --- replicated control plane ---------------------------------------------------------------------

void Controller::enable_replication(ControllerAddr seat, std::vector<ControllerAddr> members,
                                    uint32_t seat_reboot, ReplicationGroup::Params params) {
  FRACTOS_CHECK_MSG(repl_groups_.find(seat) == repl_groups_.end(),
                    "controller already joined a replication group for this seat");
  auto group =
      std::make_unique<ReplicationGroup>(this, seat, std::move(members), seat_reboot, params);
  ReplicationGroup* g = group.get();
  repl_groups_.emplace(seat, std::move(group));
  g->start();
}

ReplicationGroup* Controller::replication_group(ControllerAddr seat) {
  auto it = repl_groups_.find(seat);
  return it == repl_groups_.end() ? nullptr : it->second.get();
}

bool Controller::serves_seat(ControllerAddr seat) const {
  if (failed_) {
    return false;
  }
  if (seat == addr()) {
    return can_mutate_seat(seat);
  }
  auto it = repl_groups_.find(seat);
  return it != repl_groups_.end() && it->second->can_serve();
}

uint64_t Controller::seat_state_digest(ControllerAddr seat) const {
  if (seat == addr()) {
    return table_.digest();
  }
  auto it = repl_groups_.find(seat);
  return it == repl_groups_.end() ? 0 : it->second->state().digest();
}

ControllerAddr Controller::route_owner(ControllerAddr owner) const {
  if (owner == addr()) {
    return owner;
  }
  // A group member knows the leader first-hand; everyone else goes by the last announce.
  // Routing never turns a remote op into a self-op: if this member is itself the acting
  // leader, the op still targets the (possibly dead) owner and surfaces kChannelClosed —
  // serving one's own syscalls for a foreign seat is out of scope.
  auto git = repl_groups_.find(owner);
  if (git != repl_groups_.end()) {
    const ControllerAddr leader = git->second->known_leader();
    return leader != 0 && leader != addr() ? leader : owner;
  }
  auto rit = repl_routes_.find(owner);
  if (rit != repl_routes_.end() && rit->second.leader != 0 && rit->second.leader != addr()) {
    return rit->second.leader;
  }
  return owner;
}

ObjectTable* Controller::serving_table(ControllerAddr owner) {
  if (owner == addr()) {
    auto it = repl_groups_.find(owner);
    if (it != repl_groups_.end() && !it->second->can_serve()) {
      return nullptr;  // deposed own seat: a successor may hold newer committed state
    }
    return &table_;
  }
  auto it = repl_groups_.find(owner);
  if (it != repl_groups_.end() && it->second->can_serve()) {
    return &it->second->state();
  }
  return nullptr;
}

const ObjectTable* Controller::serving_table(ControllerAddr owner) const {
  return const_cast<Controller*>(this)->serving_table(owner);
}

bool Controller::can_mutate_seat(ControllerAddr seat) const {
  auto it = repl_groups_.find(seat);
  return it == repl_groups_.end() || it->second->can_serve();
}

void Controller::commit_mutation(ControllerAddr seat, ReplicatedOp op,
                                 std::function<void(ErrorCode)> done) {
  auto it = repl_groups_.find(seat);
  if (it == repl_groups_.end()) {
    done(ErrorCode::kOk);  // unreplicated: acknowledge inline (the pre-replication path)
    return;
  }
  it->second->replicate(std::move(op), std::move(done));
}

void Controller::log_mutation(ControllerAddr seat, ReplicatedOp op) {
  auto it = repl_groups_.find(seat);
  if (it == repl_groups_.end() || !it->second->is_leader()) {
    return;
  }
  it->second->replicate(std::move(op), [](ErrorCode) {});
}

void Controller::note_seat_leader(ControllerAddr seat, ControllerAddr leader, uint64_t term) {
  SeatRoute& route = repl_routes_[seat];
  if (term >= route.term) {
    route.leader = leader;
    route.term = term;
  }
}

void Controller::peer_leader_announce(const ReplLeaderAnnounceMsg& m) {
  note_seat_leader(m.seat, m.leader, m.term);
}

void Controller::on_seat_established(ControllerAddr seat) {
  auto it = repl_groups_.find(seat);
  if (it == repl_groups_.end()) {
    return;
  }
  ReplicationGroup& g = *it->second;
  // Tell every controller (group member or not) where the seat now lives, so invokes and
  // derives for its objects are routed here instead of at the dead leader.
  ReplLeaderAnnounceMsg ann;
  ann.seat = seat;
  ann.leader = addr();
  ann.term = g.term();
  for (auto& [peer_addr, peer] : peers_) {
    if (!peer.chan->severed()) {
      send_peer(peer_addr, make_envelope(next_seq_++, ann));
    }
  }
  if (seat == addr()) {
    return;  // the seat establishing itself at start(): nothing to finish
  }
  // Finish what the dead leader started: every object that is invalidated but not yet
  // erased still needs its cleanup broadcast. Monitors are NOT re-fired — the dead leader
  // may already have dispatched them (at-most-once across failover).
  const std::vector<ObjectIndex> pending = g.state().invalidated_objects();
  if (!pending.empty()) {
    ObjectTable::RevokeResult result;
    result.invalidated = pending;
    apply_revoke_for(seat, result, /*fire_monitors=*/false);
  }
}

void Controller::handle_repl_msg(ControllerAddr origin, const Envelope& env) {
  if (failed_) {
    return;
  }
  ControllerAddr seat = kInvalidController;
  switch (env.type) {
    case MsgType::kReplAppend:
      seat = std::get<ReplAppendMsg>(env.body).seat;
      break;
    case MsgType::kReplAppendReply:
      seat = std::get<ReplAppendReplyMsg>(env.body).seat;
      break;
    case MsgType::kReplVote:
      seat = std::get<ReplVoteMsg>(env.body).seat;
      break;
    case MsgType::kReplVoteReply:
      seat = std::get<ReplVoteReplyMsg>(env.body).seat;
      break;
    case MsgType::kReplSnapshot:
      seat = std::get<ReplSnapshotMsg>(env.body).seat;
      break;
    default:
      return;
  }
  ReplicationGroup* g = replication_group(seat);
  if (g == nullptr) {
    return;  // not a member of this seat's group (stale or misdirected): drop
  }
  switch (env.type) {
    case MsgType::kReplAppend:
      g->on_append(origin, std::get<ReplAppendMsg>(env.body));
      break;
    case MsgType::kReplAppendReply:
      g->on_append_reply(origin, std::get<ReplAppendReplyMsg>(env.body));
      break;
    case MsgType::kReplVote:
      g->on_vote(origin, std::get<ReplVoteMsg>(env.body));
      break;
    case MsgType::kReplVoteReply:
      g->on_vote_reply(origin, std::get<ReplVoteReplyMsg>(env.body));
      break;
    case MsgType::kReplSnapshot:
      g->on_snapshot(origin, std::get<ReplSnapshotMsg>(env.body));
      break;
    default:
      break;
  }
}

}  // namespace fractos
