// Envelope-typed message channel: a QueuePair that encodes/decodes FractOS protocol
// envelopes. Used both for Process<->Controller request/response queues and for
// Controller<->Controller links.

#ifndef SRC_CORE_CHANNEL_H_
#define SRC_CORE_CHANNEL_H_

#include <functional>
#include <utility>

#include "src/fabric/queue_pair.h"
#include "src/wire/message.h"

namespace fractos {

class Channel {
 public:
  using Handler = std::function<void(Envelope)>;
  using SeveredHandler = std::function<void()>;

  Channel(Network* net, Endpoint local) : qp_(net, local) {
    qp_.set_receive_handler([this](Payload bytes) { on_bytes(bytes); });
  }

  static void connect(Channel& a, Channel& b) { QueuePair::connect(a.qp_, b.qp_); }

  Endpoint local() const { return qp_.local(); }
  Endpoint remote() const { return qp_.remote(); }
  bool severed() const { return qp_.severed(); }

  void set_handler(Handler handler) { handler_ = std::move(handler); }
  void set_severed_handler(SeveredHandler handler) {
    qp_.set_severed_handler(std::move(handler));
  }

  void send(Traffic category, const Envelope& env) {
    qp_.send(category, encode_envelope(env));
  }

  // Pre-encoded variant: retry loops (controller peer-op resends) encode an Envelope once
  // with encode() and re-send the same refcounted frame on every attempt.
  static Payload encode(const Envelope& env) { return Payload(encode_envelope(env)); }
  void send_encoded(Traffic category, Payload frame) { qp_.send(category, std::move(frame)); }

  void sever() { qp_.sever(); }

  // Transport-level controls and counters, exposed for reliability tuning and assertions.
  QueuePair& queue_pair() { return qp_; }
  const QueuePair& queue_pair() const { return qp_; }

  uint64_t malformed_dropped() const { return malformed_dropped_; }

  // Test hook: feeds raw bytes to the receive path as if they arrived on the wire (the
  // Process API always encodes, so hostile raw frames can only be injected this way).
  void inject_raw_for_test(std::vector<uint8_t> bytes) { on_bytes(Payload(std::move(bytes))); }

 private:
  void on_bytes(const Payload& bytes) {
    auto env = decode_envelope(bytes.bytes());
    if (!env.ok()) {
      // Bytes on a channel come from an UNTRUSTED Process (or a peer with a bug): a trusted
      // Controller must never abort on malformed input — drop it and count it.
      ++malformed_dropped_;
      return;
    }
    if (handler_ != nullptr) {
      handler_(std::move(env).value());
    }
  }

  QueuePair qp_;
  Handler handler_;
  uint64_t malformed_dropped_ = 0;
};

}  // namespace fractos

#endif  // SRC_CORE_CHANNEL_H_
