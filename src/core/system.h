// System: assembles a FractOS cluster — nodes, Controllers (host-CPU, SmartNIC, or shared
// remote placement), Processes — and provides failure injection and the trusted bootstrap
// actions of the operator / resource-management service.
//
// System also owns the simulation-level "directory" that stands in for distributed NIC rkey
// state: each node's RDMA authorizer resolves incoming rkeys against the owning Controller's
// object table at zero simulated cost, which models NICs whose protection state is programmed
// synchronously by their co-located Controller.

#ifndef SRC_CORE_SYSTEM_H_
#define SRC_CORE_SYSTEM_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/controller.h"
#include "src/core/process.h"
#include "src/fabric/fault_injector.h"
#include "src/sim/event_loop.h"

namespace fractos {

struct SystemConfig {
  FabricParams fabric;
  // Fabric topology: single-switch (the calibrated flat default) or a ToR/spine fat tree
  // with per-port congestion modeling (src/fabric/topology.h).
  TopologySpec topology;
  ControllerCosts host_costs = ControllerCosts::host();
  ControllerCosts snic_costs = ControllerCosts::snic();
  uint32_t congestion_window = 1024;
  uint64_t double_buffer_threshold = 16 * 1024;
  uint64_t copy_chunk_bytes = 64 * 1024;
  bool hw_third_party_copies = false;
  uint64_t default_heap_bytes = 8ull << 20;
  uint32_t cap_quota = 1u << 20;
  // Section 6.1's suggested optimization: cache serialized Requests at Controllers.
  bool cache_serialized_requests = false;
  // Deterministic fault injection: when set, the plan is installed into the Network before
  // any topology is built. Absent (the default) the fabric is clean and every fault-handling
  // code path stays dormant — recorded bench numbers are unaffected.
  std::optional<FaultPlan> faults;
  // Controller peer-op reliability knobs (effective only on a lossy fabric).
  Duration peer_op_rto = Duration::micros(150);
  uint32_t peer_op_retry_budget = 3;
  Duration peer_op_deadline = Duration::millis(1);
  Duration peer_op_dedup_ttl = Duration::millis(50);
  // Capability hot path (see Controller::Config; all off by default).
  uint32_t translation_cache_entries = 0;
  bool charge_chain_traversal = false;
  uint32_t peer_op_batch_max = 0;
  Duration peer_op_batch_delay = Duration::micros(2);
  // Replicated control plane (DESIGN.md §4h): timing knobs applied by replicate_controller,
  // and the intended group size (0 = replication unused; checked against the node count by
  // validate()). No group is formed unless replicate_controller is called.
  ReplicationGroup::Params replication;
  uint32_t replication_group_size = 0;
  // Sharded parallel engine (DESIGN.md §4j): partitions the event loop by rack across
  // engine_shards worker threads under conservative lookahead. Requires a fat-tree topology
  // and the total rack count up front; the lookahead is derived from the topology
  // (TopologySpec::min_cross_rack_latency). engine_racks > 0 with engine_shards == 1 runs
  // the sharded engine cooperatively on one thread — the differential-testing baseline whose
  // results every shard count must reproduce. Both zero (the default) keeps the legacy
  // single-threaded engine, bit-identical to every recorded bench number.
  uint32_t engine_shards = 0;
  uint32_t engine_racks = 0;
  // Defer Controller peer channels to first use instead of eagerly meshing every pair.
  // The eager mesh is O(n^2) channels — prohibitive at 1000+ Controllers (the 1024-node
  // giant bench needs ~1M pairs eagerly, a few thousand lazily). Connecting costs no
  // simulated time. One semantic narrowing: revocation-cleanup broadcasts fan out only to
  // peers a channel exists to, so global message/step totals shrink by the skipped
  // broadcast legs (off the critical path: request latencies and results do not move —
  // pinned by parallel_engine_test). A Controller that never exchanged traffic can hold a
  // reference only via bootstrap_grant, and its stale stub surfaces at use exactly like an
  // unreachable peer's. Incompatible with replication_group_size > 0 (leader announcements
  // rely on the full mesh).
  bool lazy_controller_mesh = false;

  // Cross-field consistency check, run by the System constructor (CHECK) and directly by
  // tests. Returns a description of the *first* inconsistency found — a fault plan naming a
  // switch the topology doesn't have, a dedup TTL shorter than the op deadline it must
  // outlive, a replication quorum larger than the cluster — or std::nullopt when sound.
  // `num_nodes` > 0 enables the checks that need the cluster size (the constructor runs
  // before nodes exist and passes 0, so callers that know the size should re-validate).
  std::optional<std::string> validate(uint32_t num_nodes = 0) const;
};

class System {
 public:
  explicit System(SystemConfig config = {});

  EventLoop& loop() { return loop_; }
  Network& net() { return *net_; }
  const SystemConfig& config() const { return config_; }

  // The installed fault injector, or nullptr on a clean fabric. Its counters are the
  // first-class record of what the plan actually did to the run.
  FaultInjector* fault_injector() { return net_->fault_injector(); }

  // --- topology ---------------------------------------------------------------------------------

  uint32_t add_node(const std::string& name, bool with_snic = true);

  // Deploys a Controller on `node`, on the host CPU or the SmartNIC. All Controllers are
  // fully meshed (Controller-to-Controller queue pairs, Section 4).
  Controller& add_controller(uint32_t node, Loc loc);

  // Spawns a Process on `node`, attached to `controller` (which may be on another node —
  // the "Shared HAL" deployment of Section 6.5).
  Process& spawn(const std::string& name, uint32_t node, Controller& controller,
                 uint64_t heap_bytes = 0);

  // --- trusted bootstrap -----------------------------------------------------------------------

  // Copies a capability held by `from` into `to`'s capability space — the operator's
  // resource-management service granting initial access at deployment time (no messages).
  Result<CapId> bootstrap_grant(Process& from, CapId cid, Process& to);

  // Replicates `seat`'s capability metadata across {seat} ∪ replicas (DESIGN.md §4h): the
  // seat leads, the replicas maintain follower state machines, and after the seat dies one
  // replica takes over serving its objects. Uses config().replication for timing. Must be
  // called before the workload starts mutating the seat's table.
  void replicate_controller(Controller& seat, const std::vector<Controller*>& replicas);

  // Arms Controller-side admission control for `p`'s request_invoke syscalls (see
  // Controller::set_admission_limit); 0 disarms it.
  void set_admission(Process& p, uint32_t limit);

  // --- failure injection ------------------------------------------------------------------------

  void fail_process(Process& p) { p.fail(); }
  void fail_controller(Controller& c) { c.fail(); }
  void restart_controller(Controller& c);
  // Node failure (detected by the external monitoring service, Section 3.6): every Process
  // and Controller on the node fails.
  void fail_node(uint32_t node);

  // --- test/bench helpers -----------------------------------------------------------------------

  // Runs the event loop until `f` is ready and returns its value. CHECK-fails if the loop
  // drains without resolving it (a deadlock in the modeled protocol).
  template <typename T>
  T await(Future<T> f) {
    const bool done = loop_.run_until([&f]() { return f.ready(); });
    FRACTOS_CHECK_MSG(done, "await: event loop drained before future resolved");
    return f.take();
  }
  // Convenience: await and CHECK-unwrap a Result.
  template <typename T>
  T await_ok(Future<Result<T>> f) {
    Result<T> r = await(std::move(f));
    FRACTOS_CHECK_MSG(r.ok(), error_code_name(r.error()));
    return std::move(r).value();
  }
  Status await_status(Future<Status> f) { return await(std::move(f)); }

  Controller* controller_by_addr(ControllerAddr addr);
  const std::vector<std::unique_ptr<Process>>& processes() const { return procs_; }
  std::vector<Controller*> controllers();

 private:
  SystemConfig config_;
  EventLoop loop_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::unordered_map<ControllerAddr, Controller*> by_addr_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::unordered_map<uint32_t, std::vector<Process*>> procs_by_node_;
  std::unordered_map<ProcessId, Controller*> proc_ctrl_;
  ControllerAddr next_ctrl_addr_ = 1;
  ProcessId next_pid_ = 1;

  void install_authorizer(uint32_t node);
  void mesh_controller(Controller& c);
  // Lazy-mesh hook body: two-sided connect of `self` toward `peer_addr` on first use.
  Channel* lazy_connect(Controller& self, ControllerAddr peer_addr);
};

}  // namespace fractos

#endif  // SRC_CORE_SYSTEM_H_
