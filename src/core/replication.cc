#include "src/core/replication.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/base/assert.h"
#include "src/core/controller.h"
#include "src/sim/event_loop.h"
#include "src/sim/metrics.h"

namespace fractos {

namespace {
constexpr size_t kMaxEntriesPerAppend = 64;
}  // namespace

ReplicationGroup::ReplicationGroup(Controller* host, ControllerAddr seat,
                                   std::vector<ControllerAddr> members, uint32_t seat_reboot,
                                   Params params)
    : host_(host),
      seat_(seat),
      self_(host->addr()),
      members_(std::move(members)),
      params_(params) {
  FRACTOS_CHECK_MSG(!members_.empty() && members_.front() == seat_,
                    "replication group: members[0] must be the seat");
  FRACTOS_CHECK_MSG(std::find(members_.begin(), members_.end(), self_) != members_.end(),
                    "replication group: host is not a member");
  if (self_ != seat_) {
    replica_ = std::make_unique<ObjectTable>(seat_, seat_reboot);
  }
  const std::string prefix =
      "repl." + host_->name_ + ".s" + std::to_string(seat_) + ".";
  keys_.appends = intern_name(prefix + "appends");
  keys_.commits = intern_name(prefix + "commits");
  keys_.elections = intern_name(prefix + "elections");
  keys_.snapshots_sent = intern_name(prefix + "snapshots_sent");
  keys_.snapshots_installed = intern_name(prefix + "snapshots_installed");
  keys_.divergence = intern_name(prefix + "divergence");
  keys_.term = intern_name(prefix + "term");
}

ObjectTable& ReplicationGroup::state() {
  return self_ == seat_ ? host_->table_ : *replica_;
}

const ObjectTable& ReplicationGroup::state() const {
  return self_ == seat_ ? host_->table_ : *replica_;
}

EventLoop* ReplicationGroup::loop() const { return host_->net_->loop(); }

void ReplicationGroup::bump(NameId key, int64_t delta) {
  if (MetricsRegistry* m = loop()->metrics()) {
    m->add(key, delta);
  }
}

template <typename M>
void ReplicationGroup::send(ControllerAddr peer, M msg) {
  host_->send_peer(peer, make_envelope(host_->next_seq_++, std::move(msg)));
}

size_t ReplicationGroup::rank_of_self() const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == self_) {
      return i;
    }
  }
  return members_.size();
}

uint64_t ReplicationGroup::term_of(uint64_t index) const {
  if (index == 0) {
    return 0;
  }
  if (index == log_start_) {
    return snap_last_term_;
  }
  if (index > log_start_ && index <= last_index()) {
    return log_[index - log_start_ - 1].term;
  }
  return 0;
}

void ReplicationGroup::start() {
  running_ = true;
  term_ = 1;
  leader_ = seat_;
  voted_term_ = 1;
  voted_for_ = seat_;
  const Time now = loop()->now();
  last_append_time_ = now;
  last_candidacy_ = now;
  if (self_ == seat_) {
    // Term-1 leadership is conferred by configuration (System wires the group up on every
    // member synchronously), so the lease starts fresh without an election round.
    role_ = Role::kLeader;
    established_ = true;
    for (ControllerAddr m : members_) {
      next_[m] = 1;
      match_[m] = 0;
      last_ack_[m] = now;
    }
    if (state().total_count() > 0 || state().reboot_count() > 1) {
      // The seat already owns objects that predate the log: bring followers to the current
      // state via snapshot so index assignment stays aligned from the first logged op.
      for (ControllerAddr m : members_) {
        if (m != self_) {
          send_snapshot(m);
        }
      }
    }
  } else {
    role_ = Role::kFollower;
  }
  if (MetricsRegistry* m = loop()->metrics()) {
    m->set(keys_.term, static_cast<int64_t>(term_));
  }
  schedule_tick();
}

void ReplicationGroup::stop(ErrorCode waiter_status) {
  running_ = false;
  ++epoch_;
  fail_waiters(waiter_status);
}

bool ReplicationGroup::lease_valid() const {
  if (role_ != Role::kLeader) {
    return false;
  }
  const Time now = loop()->now();
  size_t fresh = 0;
  for (ControllerAddr m : members_) {
    if (m == self_) {
      ++fresh;
      continue;
    }
    auto it = last_ack_.find(m);
    if (it != last_ack_.end() && now - it->second <= params_.lease) {
      ++fresh;
    }
  }
  return fresh >= quorum();
}

bool ReplicationGroup::can_serve() const {
  return running_ && role_ == Role::kLeader && established_ && lease_valid();
}

void ReplicationGroup::schedule_tick() {
  loop()->schedule_after(params_.heartbeat, [this, epoch = epoch_]() {
    if (epoch != epoch_ || !running_ || host_->failed_) {
      return;
    }
    tick();
    schedule_tick();
  });
}

void ReplicationGroup::tick() {
  const Time now = loop()->now();
  if (role_ == Role::kLeader) {
    send_appends();
    // Give up on waiters past the commit deadline. The entry stays in the log and may still
    // commit — the client sees kTimeout and must treat the outcome as unknown.
    while (!waiters_.empty() && waiters_.front().index > commit_index_ &&
           waiters_.front().deadline <= now) {
      Waiter w = std::move(waiters_.front());
      waiters_.pop_front();
      w.done(ErrorCode::kTimeout);
    }
    return;
  }
  // Follower / candidate: stand for election once the leader has been silent for the lease
  // plus this member's deterministic rank stagger. The retry period is rank-staggered too:
  // if a round ever does split (ranks tied after a snapshot reshuffle, say), the retries
  // de-phase instead of colliding at the same tick forever.
  const Duration stagger =
      Duration::nanos(params_.election_stagger.ns() * static_cast<int64_t>(rank_of_self()));
  if (now - last_append_time_ >= params_.lease + stagger &&
      now - last_candidacy_ >= params_.lease + stagger) {
    become_candidate();
  }
}

void ReplicationGroup::become_candidate() {
  const Time now = loop()->now();
  role_ = Role::kCandidate;
  ++term_;
  voted_term_ = term_;
  voted_for_ = self_;
  votes_.clear();
  votes_.insert(self_);
  candidacy_start_ = now;
  last_candidacy_ = now;
  established_ = false;
  if (MetricsRegistry* m = loop()->metrics()) {
    m->set(keys_.term, static_cast<int64_t>(term_));
  }
  SpanTracer* tracer = loop()->span_tracer();
  if (span_tracing_active() && tracer != nullptr && election_trace_ == 0) {
    static const NameId kElection = intern_name("repl-election");
    election_trace_ = tracer->start_trace(host_->name_id_, kElection, now);
  }
  ReplVoteMsg v;
  v.seat = seat_;
  v.candidate = self_;
  v.term = term_;
  v.last_log_index = last_index();
  v.last_log_term = term_of(last_index());
  for (ControllerAddr m : members_) {
    if (m != self_) {
      send(m, v);
    }
  }
  if (votes_.size() >= quorum()) {
    become_leader();
  }
}

void ReplicationGroup::become_leader() {
  const Time now = loop()->now();
  role_ = Role::kLeader;
  leader_ = self_;
  established_ = false;
  next_.clear();
  match_.clear();
  last_ack_.clear();
  for (ControllerAddr m : members_) {
    next_[m] = last_index() + 1;
    match_[m] = 0;
  }
  // Every granted vote doubles as an append-freshness proof: the voter just promised this
  // term, so the lease starts valid without waiting for the first heartbeat round.
  last_ack_[self_] = now;
  for (ControllerAddr v : votes_) {
    last_ack_[v] = now;
  }
  bump(keys_.elections);
  // No-op barrier: committing it commits the entire inherited prefix (Raft's current-term
  // commit rule) and is the gate for serving the seat.
  ReplLogEntry barrier;
  barrier.index = last_index() + 1;
  barrier.term = term_;
  barrier.op.kind = ReplicatedOp::Kind::kNoop;
  barrier_index_ = barrier.index;
  log_.push_back(std::move(barrier));
  SpanTracer* tracer = loop()->span_tracer();
  if (election_trace_ != 0 && tracer != nullptr) {
    SpanScope scope(tracer->context_of(election_trace_));
    static const NameId kElected = intern_name("repl-election");
    tracer->record(host_->name_id_, SpanKind::kReplication, kElected, candidacy_start_, now);
    tracer->end(election_trace_, now);
    election_trace_ = 0;
  }
  host_->note_seat_leader(seat_, self_, term_);
  if (quorum() == 1) {
    advance_commit();
  }
  send_appends();
}

void ReplicationGroup::step_down(uint64_t new_term) {
  if (role_ == Role::kLeader && applied_index_ > commit_index_) {
    // Eagerly applied entries may never commit under the new leader: this state machine can
    // only rejoin via full snapshot.
    tainted_ = true;
  }
  SpanTracer* tracer = loop()->span_tracer();
  if (election_trace_ != 0 && tracer != nullptr) {
    tracer->end_error(election_trace_, loop()->now(), "deposed");
    election_trace_ = 0;
  }
  role_ = Role::kFollower;
  established_ = false;
  if (new_term > term_) {
    term_ = new_term;
    if (MetricsRegistry* m = loop()->metrics()) {
      m->set(keys_.term, static_cast<int64_t>(term_));
    }
  }
  fail_waiters(ErrorCode::kNotLeader);
}

void ReplicationGroup::replicate(ReplicatedOp op, std::function<void(ErrorCode)> done) {
  if (!can_serve()) {
    done(ErrorCode::kNotLeader);
    return;
  }
  const Time now = loop()->now();
  const uint64_t index = last_index() + 1;
  // The caller applied the op to state() before calling us (eager apply), so the applied
  // cursor tracks the log tip exactly on a serving leader.
  FRACTOS_DCHECK(applied_index_ + 1 == index);
  ReplLogEntry e;
  e.index = index;
  e.term = term_;
  e.op = std::move(op);
  log_.push_back(std::move(e));
  applied_index_ = index;
  bump(keys_.appends);
  Waiter w;
  w.index = index;
  w.deadline = now + params_.commit_deadline;
  w.appended = now;
  w.ctx = ambient_span_context();
  w.done = std::move(done);
  waiters_.push_back(std::move(w));
  if (quorum() == 1) {
    advance_commit();
  } else {
    send_appends();
  }
}

void ReplicationGroup::send_appends() {
  for (ControllerAddr m : members_) {
    if (m != self_) {
      send_append_to(m);
    }
  }
  last_ack_[self_] = loop()->now();
}

void ReplicationGroup::send_append_to(ControllerAddr peer) {
  if (next_[peer] <= log_start_) {
    send_snapshot(peer);
    return;
  }
  ReplAppendMsg m;
  m.seat = seat_;
  m.leader = self_;
  m.term = term_;
  m.prev_index = next_[peer] - 1;
  m.prev_term = term_of(m.prev_index);
  m.commit_index = commit_index_;
  for (uint64_t i = next_[peer]; i <= last_index() && m.entries.size() < kMaxEntriesPerAppend;
       ++i) {
    m.entries.push_back(log_[i - log_start_ - 1]);
  }
  send(peer, std::move(m));
}

void ReplicationGroup::send_snapshot(ControllerAddr peer) {
  if (applied_index_ != commit_index_) {
    // The serving table holds eagerly applied, not-yet-committed entries; snapshotting now
    // would leak them to a follower as committed state. Retry once the pipeline drains.
    next_[peer] = 0;
    return;
  }
  ReplSnapshotMsg m;
  m.seat = seat_;
  m.leader = self_;
  m.term = term_;
  m.last_index = applied_index_;
  m.last_term = term_of(applied_index_);
  m.blob = state().serialize_snapshot();
  next_[peer] = applied_index_ + 1;
  bump(keys_.snapshots_sent);
  send(peer, std::move(m));
}

void ReplicationGroup::on_append(ControllerAddr from, const ReplAppendMsg& m) {
  if (!running_) {
    return;
  }
  ReplAppendReplyMsg r;
  r.seat = seat_;
  r.from = self_;
  if (m.term < term_) {
    r.term = term_;
    r.ok = false;
    r.match_index = 0;
    send(from, r);
    return;
  }
  if (m.term > term_ || role_ != Role::kFollower) {
    FRACTOS_CHECK_MSG(!(role_ == Role::kLeader && m.term == term_),
                      "replication: two leaders share a term");
    step_down(m.term);
  }
  term_ = m.term;
  leader_ = m.leader;
  last_append_time_ = loop()->now();
  r.term = term_;
  if (tainted_) {
    r.ok = false;
    r.match_index = 0;
    r.need_snapshot = true;
    send(from, r);
    return;
  }
  if (m.prev_index > last_index()) {
    r.ok = false;
    r.match_index = last_index();
    send(from, r);
    return;
  }
  if (m.prev_index > log_start_ && term_of(m.prev_index) != m.prev_term) {
    FRACTOS_DCHECK(m.prev_index > applied_index_);  // committed entries never conflict
    log_.resize(m.prev_index - 1 - log_start_);
    r.ok = false;
    r.match_index = last_index();
    send(from, r);
    return;
  }
  for (const ReplLogEntry& e : m.entries) {
    if (e.index <= log_start_) {
      continue;  // already covered by our snapshot
    }
    if (e.index <= last_index()) {
      if (term_of(e.index) == e.term) {
        continue;  // duplicate of an entry we hold
      }
      FRACTOS_DCHECK(e.index > applied_index_);
      log_.resize(e.index - 1 - log_start_);  // conflicting suffix from a dead term
    }
    FRACTOS_DCHECK(e.index == last_index() + 1);
    log_.push_back(e);
  }
  if (m.commit_index > commit_index_) {
    const uint64_t next_commit = std::min(m.commit_index, last_index());
    if (next_commit > commit_index_) {
      bump(keys_.commits, static_cast<int64_t>(next_commit - commit_index_));
      commit_index_ = next_commit;
      apply_committed();
    }
  }
  r.ok = true;
  r.match_index = m.prev_index + m.entries.size();
  send(from, r);
}

void ReplicationGroup::on_append_reply(ControllerAddr from, const ReplAppendReplyMsg& m) {
  if (!running_) {
    return;
  }
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) {
    return;
  }
  last_ack_[from] = loop()->now();
  if (m.ok) {
    match_[from] = std::max(match_[from], m.match_index);
    next_[from] = std::max(next_[from], match_[from] + 1);
    advance_commit();
    if (next_[from] <= last_index()) {
      send_append_to(from);  // keep streaming until the follower is caught up
    }
    return;
  }
  if (m.need_snapshot) {
    send_snapshot(from);
    return;
  }
  next_[from] = std::min(next_[from], m.match_index + 1);
  if (next_[from] == 0) {
    next_[from] = 1;
  }
  send_append_to(from);
}

void ReplicationGroup::on_vote(ControllerAddr from, const ReplVoteMsg& m) {
  if (!running_) {
    return;
  }
  ReplVoteReplyMsg r;
  r.seat = seat_;
  r.from = self_;
  if (m.term < term_) {
    r.term = term_;
    r.granted = false;
    send(from, r);
    return;
  }
  if (m.term > term_) {
    if (role_ == Role::kLeader && lease_valid()) {
      // Lease protection: a live, majority-fresh leader ignores disruptive candidacies.
      r.term = term_;
      r.granted = false;
      send(from, r);
      return;
    }
    step_down(m.term);
    term_ = m.term;
  }
  const Time now = loop()->now();
  const bool leaderless = leader_ == 0;
  const bool lease_expired = leaderless || now - last_append_time_ >= params_.lease;
  const uint64_t my_last = last_index();
  const uint64_t my_last_term = term_of(my_last);
  const bool up_to_date = m.last_log_term > my_last_term ||
                          (m.last_log_term == my_last_term && m.last_log_index >= my_last);
  const bool can_vote =
      voted_term_ < term_ || (voted_term_ == term_ && voted_for_ == m.candidate);
  r.term = term_;
  r.granted = role_ != Role::kLeader && can_vote && up_to_date && lease_expired;
  if (r.granted) {
    voted_term_ = term_;
    voted_for_ = m.candidate;
    last_candidacy_ = now;  // defer our own candidacy a full lease window
  }
  send(from, r);
}

void ReplicationGroup::on_vote_reply(ControllerAddr from, const ReplVoteReplyMsg& m) {
  if (!running_) {
    return;
  }
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kCandidate || m.term != term_ || !m.granted) {
    return;
  }
  votes_.insert(from);
  if (votes_.size() >= quorum()) {
    become_leader();
  }
}

void ReplicationGroup::on_snapshot(ControllerAddr from, const ReplSnapshotMsg& m) {
  if (!running_) {
    return;
  }
  if (m.term < term_) {
    ReplAppendReplyMsg r;
    r.seat = seat_;
    r.from = self_;
    r.term = term_;
    r.ok = false;
    send(from, r);
    return;
  }
  if (m.term > term_ || role_ != Role::kFollower) {
    step_down(m.term);
  }
  term_ = m.term;
  leader_ = m.leader;
  last_append_time_ = loop()->now();
  const Status s = state().restore_snapshot(m.blob);
  FRACTOS_CHECK_MSG(s.ok(), "replication: malformed snapshot blob");
  log_.clear();
  log_start_ = m.last_index;
  snap_last_term_ = m.last_term;
  commit_index_ = m.last_index;
  applied_index_ = m.last_index;
  tainted_ = false;
  bump(keys_.snapshots_installed);
  ReplAppendReplyMsg r;
  r.seat = seat_;
  r.from = self_;
  r.term = term_;
  r.ok = true;
  r.match_index = m.last_index;
  send(from, r);
}

void ReplicationGroup::on_peer_severed(ControllerAddr peer) {
  if (!running_) {
    return;
  }
  last_ack_.erase(peer);
  if (std::find(members_.begin(), members_.end(), peer) == members_.end()) {
    return;
  }
  if (role_ != Role::kLeader && peer == leader_) {
    // Hard evidence the leader is gone: skip the lease wait and stand for election after a
    // deterministic rank-staggered delay (so the same member wins on every same-seed run).
    leader_ = 0;
    last_append_time_ = Time{};
    const Duration delay = Duration::nanos(params_.election_stagger.ns() *
                                           static_cast<int64_t>(rank_of_self()));
    loop()->schedule_after(delay, [this, epoch = epoch_, t = term_]() {
      if (epoch != epoch_ || !running_ || host_->failed_) {
        return;
      }
      if (role_ == Role::kFollower && term_ == t && leader_ == 0) {
        become_candidate();
      }
    });
  }
}

void ReplicationGroup::advance_commit() {
  std::vector<uint64_t> matches;
  matches.reserve(members_.size());
  for (ControllerAddr m : members_) {
    matches.push_back(m == self_ ? last_index() : match_[m]);
  }
  std::sort(matches.begin(), matches.end(), std::greater<uint64_t>());
  const uint64_t cand = matches[quorum() - 1];
  if (cand > commit_index_ && term_of(cand) == term_) {
    bump(keys_.commits, static_cast<int64_t>(cand - commit_index_));
    commit_index_ = cand;
    apply_committed();
    complete_waiters();
    send_appends();  // propagate the new commit index promptly
  }
}

void ReplicationGroup::apply_committed() {
  while (applied_index_ < commit_index_) {
    const ReplLogEntry& e = log_.at(applied_index_ - log_start_);
    FRACTOS_DCHECK(e.index == applied_index_ + 1);
    ++applied_index_;
    if (e.op.kind != ReplicatedOp::Kind::kNoop) {
      const ObjectTable::ApplyOutcome out = state().apply_replicated(e.op);
      if (out.diverged) {
        bump(keys_.divergence);
      }
    }
  }
  if (role_ == Role::kLeader && !established_ && barrier_index_ != 0 &&
      commit_index_ >= barrier_index_ && term_of(barrier_index_) == term_) {
    established_ = true;
    host_->on_seat_established(seat_);
  }
  maybe_compact();
}

void ReplicationGroup::maybe_compact() {
  const uint64_t upto = std::min(applied_index_, commit_index_);
  if (upto - log_start_ <= params_.snapshot_threshold) {
    return;
  }
  snap_last_term_ = term_of(upto);
  log_.erase(log_.begin(), log_.begin() + static_cast<int64_t>(upto - log_start_));
  log_start_ = upto;
}

void ReplicationGroup::complete_waiters() {
  const Time now = loop()->now();
  SpanTracer* tracer = loop()->span_tracer();
  while (!waiters_.empty() && waiters_.front().index <= commit_index_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    if (span_tracing_active() && tracer != nullptr && w.ctx.valid()) {
      SpanScope scope(w.ctx);
      static const NameId kCommit = intern_name("repl-commit");
      tracer->record(host_->name_id_, SpanKind::kReplication, kCommit, w.appended, now);
    }
    w.done(ErrorCode::kOk);
  }
}

void ReplicationGroup::fail_waiters(ErrorCode code) {
  std::deque<Waiter> failed;
  failed.swap(waiters_);
  for (Waiter& w : failed) {
    w.done(code);
  }
}

}  // namespace fractos
