// Owner-side translation cache: ObjectIndex -> fully resolved Request route
// (provider Process, endpoint cid, merged args). Resolving a Request walks its whole
// derivation chain merging refinement layers; at production scale (10^6 live capabilities,
// deep delegation chains) that walk dominates the invoke hot path. The cache memoizes the
// walk and is invalidated *exactly* by revocation subtrees: apply_revoke feeds it the
// RevokeResult.invalidated list, which by construction names every object whose resolution
// just changed (the revoked object and all its descendants). Nothing else can change a
// resolution — derivation only adds new indices, and a Controller reboot clears the cache
// wholesale — so a hit is always as authoritative as a fresh table walk. The property test
// in tests/property_test.cc audits exactly that invariant under chaos schedules.

#ifndef SRC_CORE_TRANSLATION_CACHE_H_
#define SRC_CORE_TRANSLATION_CACHE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/cap/object_table.h"

namespace fractos {

class TranslationCache {
 public:
  explicit TranslationCache(size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }
  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t invalidations() const { return invalidations_; }

  // Counting lookup (the resolve path): returns the cached resolution or nullptr, bumping
  // the hit/miss counters. The pointer is invalidated by any mutating call.
  const ObjectTable::ResolvedRequest* lookup(ObjectIndex idx) {
    auto it = map_.find(idx);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &it->second;
  }

  // Stat-free probe (cost pre-accounting peeks without double-counting the later lookup).
  bool contains(ObjectIndex idx) const { return map_.contains(idx); }

  void put(ObjectIndex idx, ObjectTable::ResolvedRequest resolved) {
    if (!enabled() || map_.contains(idx)) {
      return;
    }
    if (map_.size() >= capacity_) {
      // FIFO eviction: deterministic and cheap; entries for long-dead indices were already
      // removed by invalidate(), so the front is the oldest still-live resolution.
      while (!fifo_.empty()) {
        const ObjectIndex victim = fifo_.front();
        fifo_.pop_front();
        if (map_.erase(victim) > 0) {
          break;
        }
      }
    }
    map_.emplace(idx, std::move(resolved));
    fifo_.push_back(idx);
  }

  // Revocation-tree-aware invalidation: drops exactly the entries under the revoked
  // subtree (the caller passes RevokeResult.invalidated). Stale fifo slots are skipped
  // lazily at eviction time.
  void invalidate(const std::vector<ObjectIndex>& subtree) {
    for (ObjectIndex idx : subtree) {
      invalidations_ += map_.erase(idx);
    }
  }

  void clear() {
    map_.clear();
    fifo_.clear();
  }

  // Audit support: visits every cached entry (property tests re-resolve each one).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [idx, resolved] : map_) {
      fn(idx, resolved);
    }
  }

 private:
  size_t capacity_;
  std::unordered_map<ObjectIndex, ObjectTable::ResolvedRequest> map_;
  std::deque<ObjectIndex> fifo_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace fractos

#endif  // SRC_CORE_TRANSLATION_CACHE_H_
