#include "src/core/system.h"

#include <utility>

namespace fractos {

System::System(SystemConfig config) : config_(config) {
  net_ = std::make_unique<Network>(&loop_, config_.fabric, config_.topology);
  if (config_.faults.has_value()) {
    net_->install_fault_injector(*config_.faults);
  }
}

uint32_t System::add_node(const std::string& name, bool with_snic) {
  const uint32_t id = net_->add_node(name, with_snic);
  install_authorizer(id);
  return id;
}

void System::install_authorizer(uint32_t node) {
  // NIC-rkey model: resolve the rkey against the owning Controller's object table.
  net_->node(node).set_rdma_authorizer(
      [this](const RdmaKey& key, PoolId pool, uint64_t addr, uint64_t size, bool is_write) {
        Controller* owner = controller_by_addr(key.controller);
        if (owner == nullptr) {
          return Status(ErrorCode::kInvalidCapability);
        }
        return owner->check_rdma(key, pool, addr, size, is_write);
      });
}

Controller& System::add_controller(uint32_t node, Loc loc) {
  Controller::Config cfg;
  cfg.addr = next_ctrl_addr_++;
  cfg.endpoint = Endpoint{node, loc};
  cfg.costs = loc == Loc::kHost ? config_.host_costs : config_.snic_costs;
  cfg.congestion_window = config_.congestion_window;
  cfg.double_buffer_threshold = config_.double_buffer_threshold;
  cfg.copy_chunk_bytes = config_.copy_chunk_bytes;
  cfg.hw_third_party_copies = config_.hw_third_party_copies;
  cfg.cap_quota = config_.cap_quota;
  cfg.cache_serialized_requests = config_.cache_serialized_requests;
  cfg.peer_op_rto = config_.peer_op_rto;
  cfg.peer_op_retry_budget = config_.peer_op_retry_budget;
  cfg.peer_op_deadline = config_.peer_op_deadline;
  cfg.peer_op_dedup_ttl = config_.peer_op_dedup_ttl;
  cfg.translation_cache_entries = config_.translation_cache_entries;
  cfg.charge_chain_traversal = config_.charge_chain_traversal;
  cfg.peer_op_batch_max = config_.peer_op_batch_max;
  cfg.peer_op_batch_delay = config_.peer_op_batch_delay;
  controllers_.push_back(std::make_unique<Controller>(net_.get(), cfg));
  Controller& c = *controllers_.back();
  by_addr_[c.addr()] = &c;
  mesh_controller(c);
  return c;
}

void System::mesh_controller(Controller& c) {
  for (auto& other : controllers_) {
    if (other.get() == &c || other->failed()) {
      continue;
    }
    Channel& mine = c.connect_peer(other->addr(), other->endpoint());
    Channel& theirs = other->connect_peer(c.addr(), c.endpoint());
    Channel::connect(mine, theirs);
    // Exchange reboot generations (the discovery service's job) for eager stale detection.
    c.note_peer_generation(other->addr(), other->table().reboot_count());
    other->note_peer_generation(c.addr(), c.table().reboot_count());
  }
}

std::vector<Controller*> System::controllers() {
  std::vector<Controller*> out;
  out.reserve(controllers_.size());
  for (auto& c : controllers_) {
    out.push_back(c.get());
  }
  return out;
}

Process& System::spawn(const std::string& name, uint32_t node, Controller& controller,
                       uint64_t heap_bytes) {
  if (heap_bytes == 0) {
    heap_bytes = config_.default_heap_bytes;
  }
  const PoolId heap = net_->node(node).add_pool(heap_bytes);
  const ProcessId pid = next_pid_++;
  procs_.push_back(std::make_unique<Process>(net_.get(), pid, name, node, heap,
                                             controller.endpoint()));
  Process& p = *procs_.back();
  Channel& ctrl_side = controller.attach_process(pid, node, heap);
  Channel::connect(p.channel(), ctrl_side);
  procs_by_node_[node].push_back(&p);
  proc_ctrl_[pid] = &controller;
  return p;
}

Result<CapId> System::bootstrap_grant(Process& from, CapId cid, Process& to) {
  Controller* src_ctrl = proc_ctrl_.at(from.pid());
  Controller* dst_ctrl = proc_ctrl_.at(to.pid());
  auto entry = src_ctrl->inspect_cap(from.pid(), cid);
  if (!entry.ok()) {
    return entry.error();
  }
  return dst_ctrl->bootstrap_install(to.pid(), entry.value());
}

Controller* System::controller_by_addr(ControllerAddr addr) {
  auto it = by_addr_.find(addr);
  return it == by_addr_.end() ? nullptr : it->second;
}

void System::restart_controller(Controller& c) {
  c.restart();
  for (auto& other : controllers_) {
    if (other.get() != &c) {
      other->drop_peer(c.addr());
    }
  }
  mesh_controller(c);
}

void System::fail_node(uint32_t node) {
  net_->node(node).fail();
  auto it = procs_by_node_.find(node);
  if (it != procs_by_node_.end()) {
    for (Process* p : it->second) {
      p->fail();
    }
  }
  for (auto& c : controllers_) {
    if (c->endpoint().node == node && !c->failed()) {
      c->fail();
    }
  }
}

}  // namespace fractos
