#include "src/core/system.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/fabric/topology.h"

namespace fractos {

namespace {

// Checks one fault-plan link endpoint against the topology. Node ids cannot be validated
// here (nodes are added after construction); switch ids can: their ranges are reserved.
std::optional<std::string> check_fault_endpoint(const TopologySpec& topo, uint32_t id,
                                                const char* what) {
  if (id < Topology::kTorIdBase) {
    return std::nullopt;  // a node id; checked against num_nodes by the caller if known
  }
  if (topo.kind == TopologySpec::Kind::kSingleSwitch) {
    return std::string(what) + " references switch id " + std::to_string(id) +
           ", but the topology is single-switch (no addressable switches); use "
           "TopologySpec::fat_tree or name node ids";
  }
  if (id >= Topology::kSpineIdBase) {
    const uint32_t spine = id - Topology::kSpineIdBase;
    if (spine >= topo.num_spines) {
      return std::string(what) + " references spine " + std::to_string(spine) +
             ", but the fat tree has only " + std::to_string(topo.num_spines) + " spine(s)";
    }
  }
  return std::nullopt;  // ToR ids grow with the node count; checked when num_nodes is known
}

bool valid_prob(const double (&p)[2]) {
  return p[0] >= 0.0 && p[0] <= 1.0 && p[1] >= 0.0 && p[1] <= 1.0;
}

}  // namespace

std::optional<std::string> SystemConfig::validate(uint32_t num_nodes) const {
  if (congestion_window == 0) {
    return "congestion_window must be >= 1 (0 would deadlock every delivery queue)";
  }
  if (copy_chunk_bytes == 0) {
    return "copy_chunk_bytes must be >= 1 (0 would make chunked copies loop forever)";
  }
  if (peer_op_dedup_ttl < peer_op_deadline) {
    return "peer_op_dedup_ttl (" + std::to_string(peer_op_dedup_ttl.ns()) +
           "ns) is shorter than peer_op_deadline (" + std::to_string(peer_op_deadline.ns()) +
           "ns): dedup entries would be evicted while resends of their op can still "
           "arrive, re-executing non-idempotent ops; raise the TTL above the deadline";
  }
  if (replication_group_size == 1) {
    return "replication_group_size of 1 replicates nothing (the seat alone); use 0 to "
           "disable replication or >= 2 for an actual group";
  }
  if (num_nodes > 0 && replication_group_size > num_nodes) {
    return "replication_group_size (" + std::to_string(replication_group_size) +
           ") exceeds the cluster size (" + std::to_string(num_nodes) +
           " node(s)): a majority quorum could never assemble";
  }
  if (replication_group_size != 0 && replication.lease < replication.heartbeat) {
    return "replication.lease (" + std::to_string(replication.lease.ns()) +
           "ns) is shorter than replication.heartbeat (" +
           std::to_string(replication.heartbeat.ns()) +
           "ns): the leader's lease would expire between its own heartbeats, deposing a "
           "healthy leader every tick";
  }
  if (replication_group_size != 0 && replication.election_stagger < replication.heartbeat) {
    return "replication.election_stagger (" +
           std::to_string(replication.election_stagger.ns()) +
           "ns) is shorter than replication.heartbeat (" +
           std::to_string(replication.heartbeat.ns()) +
           "ns): candidacy-by-silence is checked at heartbeat granularity, so adjacent "
           "ranks would stand in the same tick, split the vote, and retry in lockstep";
  }
  if (auto err = topology.validate(num_nodes); err.has_value()) {
    return err;
  }
  if (engine_shards > 0 || engine_racks > 0) {
    if (topology.kind != TopologySpec::Kind::kFatTree) {
      return "engine_shards/engine_racks require a fat-tree topology: the flat model has "
             "no racks to partition the event loop by";
    }
    if (engine_shards == 0 || engine_racks == 0) {
      return "engine_shards and engine_racks must both be set (or both zero): the sharded "
             "engine needs the shard count and the total rack count up front";
    }
    if (engine_racks < engine_shards) {
      return "engine_racks (" + std::to_string(engine_racks) + ") < engine_shards (" +
             std::to_string(engine_shards) + "): some shards would own no rack";
    }
    if (num_nodes > 0 && num_nodes != engine_racks * topology.nodes_per_rack) {
      return "engine_racks (" + std::to_string(engine_racks) + ") x nodes_per_rack (" +
             std::to_string(topology.nodes_per_rack) + ") does not match the cluster size (" +
             std::to_string(num_nodes) + " node(s))";
    }
    if (faults.has_value()) {
      return "engine_shards requires a clean fabric: the fault injector draws rng in global "
             "send order, which a rack-parallel run does not have";
    }
  }
  if (lazy_controller_mesh && replication_group_size != 0) {
    return "lazy_controller_mesh is incompatible with replication: leader announcements "
           "broadcast over the full peer mesh, which a lazy mesh only grows on demand";
  }
  if (!faults.has_value()) {
    return std::nullopt;
  }
  const FaultPlan& plan = *faults;
  if (!valid_prob(plan.drop_prob) || !valid_prob(plan.dup_prob) ||
      !valid_prob(plan.jitter_prob)) {
    return "fault plan probabilities must lie in [0, 1]";
  }
  const uint32_t max_rack =
      num_nodes == 0 ? 0 : (num_nodes - 1) / std::max(topology.nodes_per_rack, 1u);
  auto check_link = [&](uint32_t a, uint32_t b,
                        const char* what) -> std::optional<std::string> {
    for (uint32_t id : {a, b}) {
      if (auto err = check_fault_endpoint(topology, id, what); err.has_value()) {
        return err;
      }
      if (id >= Topology::kTorIdBase && id < Topology::kSpineIdBase && num_nodes > 0 &&
          topology.kind == TopologySpec::Kind::kFatTree) {
        const uint32_t rack = id - Topology::kTorIdBase;
        if (rack > max_rack) {
          return std::string(what) + " references ToR of rack " + std::to_string(rack) +
                 ", but " + std::to_string(num_nodes) + " node(s) at " +
                 std::to_string(topology.nodes_per_rack) + "/rack fill only racks 0.." +
                 std::to_string(max_rack);
        }
      }
      if (id < Topology::kTorIdBase && num_nodes > 0 && id >= num_nodes) {
        return std::string(what) + " references node " + std::to_string(id) +
               ", but only nodes 0.." + std::to_string(num_nodes - 1) + " exist";
      }
    }
    return std::nullopt;
  };
  for (const FaultPlan::LinkOverride& o : plan.link_overrides) {
    if (!valid_prob(o.drop_prob)) {
      return "fault plan link_override probabilities must lie in [0, 1]";
    }
    if (auto err = check_link(o.a, o.b, "fault plan link_override"); err.has_value()) {
      return err;
    }
  }
  for (const FaultPlan::LinkFlap& f : plan.flaps) {
    if (f.end <= f.start) {
      return "fault plan link flap has end <= start (an empty or inverted window)";
    }
    if (auto err = check_link(f.a, f.b, "fault plan link flap"); err.has_value()) {
      return err;
    }
  }
  for (const FaultPlan::NodeOutage& o : plan.outages) {
    if (o.end <= o.start) {
      return "fault plan node outage has end <= start (an empty or inverted window)";
    }
    if (num_nodes > 0 && o.node >= num_nodes) {
      return "fault plan node outage references node " + std::to_string(o.node) +
             ", but only nodes 0.." + std::to_string(num_nodes - 1) + " exist";
    }
  }
  if (plan.rdma_retry_budget == 0) {
    return "fault plan rdma_retry_budget of 0 would abort every perturbed RDMA verb on its "
           "first loss; use >= 1 (or drop the RDMA knobs entirely)";
  }
  return std::nullopt;
}

System::System(SystemConfig config) : config_(config) {
  // Reject inconsistent configs at assembly time with an actionable message, instead of a
  // CHECK failure (or silent misbehavior) in the middle of a long run.
  if (auto err = config_.validate(); err.has_value()) {
    FRACTOS_CHECK_MSG(false, err->c_str());
  }
  if (config_.engine_shards > 0) {
    // Must happen before the Network exists: sharding is only legal on a pristine loop, and
    // Network::add_node consults loop().sharded() to size per-rack state.
    loop_.enable_sharding(config_.engine_shards, config_.engine_racks,
                          config_.topology.min_cross_rack_latency());
  }
  net_ = std::make_unique<Network>(&loop_, config_.fabric, config_.topology);
  if (config_.faults.has_value()) {
    net_->install_fault_injector(*config_.faults);
  }
}

uint32_t System::add_node(const std::string& name, bool with_snic) {
  const uint32_t id = net_->add_node(name, with_snic);
  install_authorizer(id);
  return id;
}

void System::install_authorizer(uint32_t node) {
  // NIC-rkey model: resolve the rkey against the owning Controller's object table. When the
  // owner is dead but its seat is replicated, the acting leader authorizes against its
  // replica — RDMA access continues across failover, and revoked capabilities stay refused.
  net_->node(node).set_rdma_authorizer(
      [this](const RdmaKey& key, PoolId pool, uint64_t addr, uint64_t size, bool is_write) {
        Controller* owner = controller_by_addr(key.controller);
        if (owner == nullptr || owner->failed()) {
          for (auto& c : controllers_) {
            if (!c->failed() && c->serves_seat(key.controller)) {
              return c->check_rdma(key, pool, addr, size, is_write);
            }
          }
        }
        if (owner == nullptr) {
          return Status(ErrorCode::kInvalidCapability);
        }
        return owner->check_rdma(key, pool, addr, size, is_write);
      });
}

Controller& System::add_controller(uint32_t node, Loc loc) {
  Controller::Config cfg;
  cfg.addr = next_ctrl_addr_++;
  cfg.endpoint = Endpoint{node, loc};
  cfg.costs = loc == Loc::kHost ? config_.host_costs : config_.snic_costs;
  cfg.congestion_window = config_.congestion_window;
  cfg.double_buffer_threshold = config_.double_buffer_threshold;
  cfg.copy_chunk_bytes = config_.copy_chunk_bytes;
  cfg.hw_third_party_copies = config_.hw_third_party_copies;
  cfg.cap_quota = config_.cap_quota;
  cfg.cache_serialized_requests = config_.cache_serialized_requests;
  cfg.peer_op_rto = config_.peer_op_rto;
  cfg.peer_op_retry_budget = config_.peer_op_retry_budget;
  cfg.peer_op_deadline = config_.peer_op_deadline;
  cfg.peer_op_dedup_ttl = config_.peer_op_dedup_ttl;
  cfg.translation_cache_entries = config_.translation_cache_entries;
  cfg.charge_chain_traversal = config_.charge_chain_traversal;
  cfg.peer_op_batch_max = config_.peer_op_batch_max;
  cfg.peer_op_batch_delay = config_.peer_op_batch_delay;
  controllers_.push_back(std::make_unique<Controller>(net_.get(), cfg));
  Controller& c = *controllers_.back();
  by_addr_[c.addr()] = &c;
  mesh_controller(c);
  return c;
}

void System::mesh_controller(Controller& c) {
  if (config_.lazy_controller_mesh) {
    // No eager pairs: the first send toward an unconnected peer resolves through
    // lazy_connect. &c is stable (controllers_ holds unique_ptrs).
    c.set_peer_connector(
        [this, &c](ControllerAddr peer) { return lazy_connect(c, peer); });
    return;
  }
  for (auto& other : controllers_) {
    if (other.get() == &c || other->failed()) {
      continue;
    }
    Channel& mine = c.connect_peer(other->addr(), other->endpoint());
    Channel& theirs = other->connect_peer(c.addr(), c.endpoint());
    Channel::connect(mine, theirs);
    // Exchange reboot generations (the discovery service's job) for eager stale detection.
    c.note_peer_generation(other->addr(), other->table().reboot_count());
    other->note_peer_generation(c.addr(), c.table().reboot_count());
  }
}

Channel* System::lazy_connect(Controller& self, ControllerAddr peer_addr) {
  // Connecting mutates both Controllers' peer maps — setup-time state that must never grow
  // from inside a parallel window (two shards could race on it). Workloads run under
  // run_parallel() must establish their peer links during cooperative setup (ingest,
  // warm-up), which every closed-loop driver here does naturally.
  FRACTOS_CHECK_MSG(!loop_.parallel_active(),
                    "lazy_controller_mesh: first contact between two Controllers must "
                    "happen outside run_parallel() (connect during setup/warm-up)");
  Controller* other = controller_by_addr(peer_addr);
  if (other == nullptr || other->failed() || other == &self) {
    return nullptr;
  }
  // A severed leftover on the other side (self failed and restarted without a
  // restart_controller round) would fail connect_peer's uniqueness CHECK; drop it first.
  other->drop_peer(self.addr());
  Channel& mine = self.connect_peer(other->addr(), other->endpoint());
  Channel& theirs = other->connect_peer(self.addr(), self.endpoint());
  Channel::connect(mine, theirs);
  self.note_peer_generation(other->addr(), other->table().reboot_count());
  other->note_peer_generation(self.addr(), self.table().reboot_count());
  return &mine;
}

std::vector<Controller*> System::controllers() {
  std::vector<Controller*> out;
  out.reserve(controllers_.size());
  for (auto& c : controllers_) {
    out.push_back(c.get());
  }
  return out;
}

Process& System::spawn(const std::string& name, uint32_t node, Controller& controller,
                       uint64_t heap_bytes) {
  if (heap_bytes == 0) {
    heap_bytes = config_.default_heap_bytes;
  }
  const PoolId heap = net_->node(node).add_pool(heap_bytes);
  const ProcessId pid = next_pid_++;
  procs_.push_back(std::make_unique<Process>(net_.get(), pid, name, node, heap,
                                             controller.endpoint()));
  Process& p = *procs_.back();
  Channel& ctrl_side = controller.attach_process(pid, node, heap);
  Channel::connect(p.channel(), ctrl_side);
  procs_by_node_[node].push_back(&p);
  proc_ctrl_[pid] = &controller;
  return p;
}

Result<CapId> System::bootstrap_grant(Process& from, CapId cid, Process& to) {
  Controller* src_ctrl = proc_ctrl_.at(from.pid());
  Controller* dst_ctrl = proc_ctrl_.at(to.pid());
  auto entry = src_ctrl->inspect_cap(from.pid(), cid);
  if (!entry.ok()) {
    return entry.error();
  }
  return dst_ctrl->bootstrap_install(to.pid(), entry.value());
}

void System::set_admission(Process& p, uint32_t limit) {
  proc_ctrl_.at(p.pid())->set_admission_limit(p.pid(), limit);
}

void System::replicate_controller(Controller& seat, const std::vector<Controller*>& replicas) {
  FRACTOS_CHECK_MSG(!replicas.empty(), "a replication group needs at least one replica");
  if (config_.replication_group_size != 0) {
    FRACTOS_CHECK_MSG(replicas.size() + 1 == config_.replication_group_size,
                      "replica count does not match config.replication_group_size");
  }
  std::vector<ControllerAddr> members;
  members.reserve(replicas.size() + 1);
  members.push_back(seat.addr());
  for (Controller* r : replicas) {
    FRACTOS_CHECK_MSG(r != nullptr && r != &seat && !r->failed(),
                      "replicas must be distinct live controllers other than the seat");
    members.push_back(r->addr());
  }
  const uint32_t seat_reboot = seat.table().reboot_count();
  seat.enable_replication(seat.addr(), members, seat_reboot, config_.replication);
  for (Controller* r : replicas) {
    r->enable_replication(seat.addr(), members, seat_reboot, config_.replication);
  }
}

Controller* System::controller_by_addr(ControllerAddr addr) {
  auto it = by_addr_.find(addr);
  return it == by_addr_.end() ? nullptr : it->second;
}

void System::restart_controller(Controller& c) {
  c.restart();
  for (auto& other : controllers_) {
    if (other.get() != &c) {
      other->drop_peer(c.addr());
    }
  }
  mesh_controller(c);
}

void System::fail_node(uint32_t node) {
  net_->node(node).fail();
  auto it = procs_by_node_.find(node);
  if (it != procs_by_node_.end()) {
    for (Process* p : it->second) {
      p->fail();
    }
  }
  for (auto& c : controllers_) {
    if (c->endpoint().node == node && !c->failed()) {
      c->fail();
    }
  }
}

}  // namespace fractos
