// Controller compute-cost model, calibrated against the paper's microbenchmarks.
//
// Every FractOS operation charges compute time on the Controller's ExecContext (a polling
// core). Host-CPU and SmartNIC cost tables are calibrated separately because the paper
// measures them separately — the BlueField's 800 MHz ARM cores are 3-7x slower, dominated by
// "atomic shared_ptr operations related to capability and object lookups" (Section 6.1).
//
// Calibration (all values derived from the paper's own numbers):
//   * null_op:          Table 3. FractOS@CPU 3.00us vs raw loopback 2.42us -> 0.58us;
//                       FractOS@sNIC 4.50us vs raw 3.68us -> 0.82us.
//   * request_traversal: Fig. 6. "the CPU deployment adds 1.41 usec for Request handling both
//                       ways" -> 0.705us per Controller traversal; sNIC "5.11" -> 2.555us.
//   * net_serialize/net_deserialize: Fig. 6. "(de)serializing Requests across the network
//                       adds additional 4.41 usec" per RPC round trip; a round trip crosses
//                       the network twice and each crossing pays serialize at the sender and
//                       deserialize at the receiver -> 4.41/4 = 1.10us each (sNIC: 12.21/4 =
//                       3.05us).
//   * cap_serialize/cap_deserialize: Fig. 7. "(de)serializing a single capability during
//                       delegation takes about 2.4 usec and 3.8 usec for the CPU and sNIC
//                       deployments" -> half at each side.
//   * memcopy_setup:    Fig. 5. 1-byte memory_copy takes 12.7us (CPU) / 24.5us (sNIC); after
//                       subtracting two 3.3us RDMA round trips and the 2.42/3.68us syscall
//                       channel round trip, 3.68us / 14.22us of orchestration remain.
//   * bounce_per_byte:  staging through Controller bounce buffers; ~20 GB/s memcpy.

#ifndef SRC_CORE_COSTS_H_
#define SRC_CORE_COSTS_H_

#include "src/sim/time.h"

namespace fractos {

// Where the far-memory tier resolves remote virtual addresses to fabric locations (the MIND
// placement axis, DESIGN.md §4k): on the owning node's CPU (a round trip to a host core), on
// the owning node's SmartNIC (round trip to a slower ARM core, but no host involvement), or
// inside the ToR switch itself (no round trip past the rack fabric — the match-action table
// answers in-network at pipeline latency).
enum class XlatePlacement : uint8_t {
  kOwnerCpu = 0,
  kSnic = 1,
  kTor = 2,
};

inline const char* xlate_placement_name(XlatePlacement p) {
  switch (p) {
    case XlatePlacement::kOwnerCpu:
      return "owner-cpu";
    case XlatePlacement::kSnic:
      return "snic";
    case XlatePlacement::kTor:
      return "tor";
  }
  return "?";
}

struct ControllerCosts {
  // Handling a null syscall (validation + reply).
  Duration null_op = Duration::micros(0.58);
  // Generic syscall handling: creates, diminish, revoke, monitor registration.
  Duration syscall_base = Duration::micros(0.30);
  // Charged whenever a Controller processes a Request invocation hop (validation, object
  // lookup, argument-chain merge).
  Duration request_traversal = Duration::micros(0.705);
  // Extra cost to serialize / deserialize a Request that crosses to another Controller.
  Duration net_serialize = Duration::micros(1.10);
  Duration net_deserialize = Duration::micros(1.10);
  // Per capability argument crossing a Controller boundary (delegation).
  Duration cap_serialize = Duration::micros(1.20);
  Duration cap_deserialize = Duration::micros(1.20);
  // Installing one capability into a Process's capability space.
  Duration cap_install = Duration::micros(0.15);
  // Fixed orchestration cost of a memory_copy (bounce-buffer management, two RDMA setups).
  Duration memcopy_setup = Duration::micros(3.68);
  // Per byte staged through the Controller's bounce buffers (charged once per copied byte).
  Duration bounce_per_byte = Duration::nanos(0);  // folded into link occupancy by default

  static ControllerCosts host() { return ControllerCosts{}; }

  static ControllerCosts snic() {
    ControllerCosts c;
    c.null_op = Duration::micros(0.82);
    c.syscall_base = Duration::micros(1.00);
    c.request_traversal = Duration::micros(2.555);
    c.net_serialize = Duration::micros(3.05);
    c.net_deserialize = Duration::micros(3.05);
    c.cap_serialize = Duration::micros(1.90);
    c.cap_deserialize = Duration::micros(1.90);
    c.cap_install = Duration::micros(0.50);
    c.memcopy_setup = Duration::micros(14.22);
    return c;
  }
};

}  // namespace fractos

#endif  // SRC_CORE_COSTS_H_
