// The FractOS Controller: the trusted OS layer ("Controllers build a distributed OS layer by
// implementing all trusted mechanisms for RPC, address translation, and message routing",
// Section 1).
//
// A Controller:
//   * manages the capability spaces of the Processes attached to it, and the object table of
//     everything those Processes register;
//   * handles the Table-1 syscall surface arriving on Process channels;
//   * routes Request invocations: locally to provider Processes, or to the owning peer
//     Controller via kRemoteInvoke (delegating capability arguments on the way);
//   * executes memory_copy data movement through RDMA — with intermediate bounce buffers and
//     double buffering like the prototype, or with third-party RDMA when the "HW copies"
//     mode of Fig. 5 is enabled;
//   * performs derivation-at-owner (kRemoteDerive), immediate revocation with broadcast
//     cleanup, monitor bookkeeping, and failure translation (process death -> revocations).
//
// Every operation charges calibrated compute on the Controller's ExecContext, which is a host
// core or a SmartNIC ARM core depending on deployment (Section 6 evaluates both).

#ifndef SRC_CORE_CONTROLLER_H_
#define SRC_CORE_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cap/cap_space.h"
#include "src/cap/object_table.h"
#include "src/core/channel.h"
#include "src/core/costs.h"
#include "src/core/replication.h"
#include "src/core/translation_cache.h"
#include "src/fabric/network.h"
#include "src/futures/future.h"
#include "src/sim/intern.h"

namespace fractos {

// Per-Controller operation counters (introspection for benches, debugging, and tests).
struct ControllerStats {
  uint64_t syscalls = 0;
  uint64_t invokes_local = 0;      // invocations delivered to a local provider
  uint64_t invokes_forwarded = 0;  // invocations forwarded to the owning peer
  uint64_t invokes_received = 0;   // kRemoteInvoke arrivals
  uint64_t deliveries = 0;
  uint64_t derivations = 0;
  uint64_t revocations = 0;        // revoke operations applied at this owner
  uint64_t objects_reclaimed = 0;  // stubs erased by the two-phase cleanup
  uint64_t copies = 0;
  uint64_t copy_bytes = 0;
  uint64_t monitor_fires = 0;
  uint64_t process_failures = 0;
  // Reliability-layer counters (all zero on a clean fabric).
  uint64_t peer_retries = 0;         // peer-op request resends
  uint64_t peer_op_timeouts = 0;     // peer ops that hit their deadline unanswered
  uint64_t peer_dedup_hits = 0;      // duplicate peer requests answered from the cache
  uint64_t late_replies_ignored = 0; // peer replies that arrived after timeout/completion
  uint64_t node_recoveries = 0;      // spurious node failures re-admitted by the monitor
  // Admission control (all zero unless set_admission_limit armed a process).
  uint64_t admission_admitted = 0;     // invokes accepted past the admission gate
  uint64_t admission_shed = 0;         // invokes refused with kOverloaded, no work done
  uint64_t admission_max_inflight = 0; // high-water mark of concurrently admitted invokes
};

class Controller {
 public:
  struct Config {
    ControllerAddr addr = 0;
    Endpoint endpoint;
    ControllerCosts costs;
    // Congestion control: max unacknowledged deliveries per Process (Section 4).
    uint32_t congestion_window = 1024;
    // memory_copy staging: below the threshold the copy is read-then-write; above it, chunks
    // are pipelined (double buffering), as in Fig. 5.
    uint64_t double_buffer_threshold = 16 * 1024;
    uint64_t copy_chunk_bytes = 64 * 1024;
    // Fig. 5 "HW copies": use third-party RDMA instead of bounce buffers.
    bool hw_third_party_copies = false;
    uint32_t cap_quota = 1u << 20;
    // Optimization suggested by the paper (Section 6.1): cache serialized Requests so that
    // repeat delegations of the same object pay a fraction of the serialization cost.
    bool cache_serialized_requests = false;
    double serialized_cache_discount = 0.25;  // fraction of cap_serialize paid on a hit
    // Peer-op reliability (effective only on a lossy fabric): requests are resent with
    // exponential backoff from peer_op_rto, at most peer_op_retry_budget times, and the
    // whole operation times out with kTimeout at peer_op_deadline.
    Duration peer_op_rto = Duration::micros(150);
    uint32_t peer_op_retry_budget = 3;
    Duration peer_op_deadline = Duration::millis(1);
    // Completed-peer-op dedup entries older than this are evicted (deterministically, on
    // simulated time). Must stay well above peer_op_deadline: once an op's deadline passes,
    // no more resends of it can arrive, so its cached reply is dead weight.
    Duration peer_op_dedup_ttl = Duration::millis(50);
    // Capability hot path (all off by default for compatibility with existing goldens):
    // owner-side translation cache capacity in entries; 0 disables caching.
    uint32_t translation_cache_entries = 0;
    // Depth-proportional translation pricing: a local delivery pays an extra
    // (chain_depth - 1) * request_traversal on a translation-cache miss and nothing on a
    // hit. Off means the legacy flat pricing (every invoke costs the same regardless of
    // delegation depth) — enabling it without a cache is the honest baseline for Fig. 7.
    bool charge_chain_traversal = false;
    // Batched owner-bound peer ops: coalesce up to this many RemoteDerive ops per peer into
    // one kRemoteDeriveBatch frame (amortizing per-message syscall_base). 0 sends singles.
    uint32_t peer_op_batch_max = 0;
    // How long a non-full batch may wait for more ops before flushing.
    Duration peer_op_batch_delay = Duration::micros(2);
  };

  // Bound on the completed-peer-op reply cache (receiver-side dedup, lossy fabric only).
  static constexpr size_t kCompletedPeerOpCacheCap = 4096;

  Controller(Network* net, Config config);
  // Completes any still-pending peer operations with kChannelClosed so their futures never
  // dangle (broken-promise discipline).
  ~Controller();

  ControllerAddr addr() const { return config_.addr; }
  Endpoint endpoint() const { return config_.endpoint; }
  ObjectTable& table() { return table_; }
  const Config& config() const { return config_; }
  bool failed() const { return failed_; }

  // --- wiring (performed by System) ---------------------------------------------------------

  // Creates the controller-side channel for a new Process; System connects it to the
  // process-side channel.
  Channel& attach_process(ProcessId pid, uint32_t proc_node, PoolId heap_pool);

  // Creates the controller-side channel toward a peer Controller.
  Channel& connect_peer(ControllerAddr peer, Endpoint peer_ep);

  // Lazy peer meshing (SystemConfig::lazy_controller_mesh): instead of an eager full mesh —
  // O(n^2) channels, prohibitive at 1000+ Controllers — System installs this hook and the
  // first send toward an unconnected peer resolves it on demand. The hook performs the
  // two-sided connect (or returns nullptr for a dead/unknown peer) and costs no simulated
  // time; see SystemConfig::lazy_controller_mesh for the one semantic narrowing.
  using PeerConnector = std::function<Channel*(ControllerAddr)>;
  void set_peer_connector(PeerConnector fn) { peer_connector_ = std::move(fn); }

  // Forgets a (severed) peer link so a restarted Controller can be re-meshed.
  void drop_peer(ControllerAddr peer) { peers_.erase(peer); }

  // --- trusted bootstrap ---------------------------------------------------------------------

  // Installs a capability directly into a managed Process's space (operator/resource-manager
  // action at deployment time; no messages modeled).
  Result<CapId> bootstrap_install(ProcessId pid, CapEntry entry);
  Result<CapEntry> inspect_cap(ProcessId pid, CapId cid) const;
  size_t cap_space_size(ProcessId pid) const;

  // --- RDMA authorization ---------------------------------------------------------------------

  // Validates an rkey against this Controller's object table: the object must be live, be
  // Memory, cover the extent, and permit the access. Called (through the System directory)
  // by node authorizers — the NIC-rkey model.
  Status check_rdma(const RdmaKey& key, PoolId pool, uint64_t addr, uint64_t size,
                    bool is_write) const;

  // --- failure handling ------------------------------------------------------------------------

  // Translates a Process failure into revocations (Section 3.6): everything it registered is
  // invalidated, monitors fire, the cleanup broadcast goes out.
  void process_failed(ProcessId pid);

  // Notification from the external monitoring service (Section 3.6, "a node failure is
  // detected by an external monitoring service such as Zookeeper"): fail every Process this
  // Controller manages on `node` (matters for remote/shared-Controller deployments, whose
  // channels to processes on the dead node may sever only much later).
  void node_failed(uint32_t node);

  // --- admission control -----------------------------------------------------------------------

  // Arms overload shedding for `pid`'s request_invoke syscalls: at most `limit` invokes may
  // be in flight (admitted but not yet answered by a response delivery) at once; the
  // (limit + 1)-th is refused immediately with kOverloaded, before any capability work —
  // the fail-fast bound that keeps an overloaded Controller's queue, and the admitted
  // requests' latency, finite. 0 (the default) disables the gate entirely: no counters
  // move, no metrics keys are registered, behavior is bit-identical to before.
  //
  // In-flight pairing assumes the RPC discipline every client in this repo follows: one
  // request_invoke produces exactly one response delivery back to the invoker (the reply-
  // endpoint invocation), so the gate releases on push_delivery to `pid`, on a failed
  // syscall reply, or on the remote error channel.
  void set_admission_limit(ProcessId pid, uint32_t limit);

  // Eager stale-capability detection: records a peer's current reboot generation so that
  // capabilities minted before it are refused locally, without a round trip (Section 3.6,
  // "eagerly detect Controller failure-triggered revocations when capabilities are used").
  void note_peer_generation(ControllerAddr peer, uint32_t reboot_count);

  // Notification from the monitoring service that a previously-reported node turned out to
  // be alive (its heartbeats resumed — a monitor false positive). Processes already killed
  // by failure translation stay dead; this re-admits the *node* for future placements and
  // is counted so operators can see spurious failures.
  void node_recovered(uint32_t node);

  // Controller crash: severs all channels. restart() empties the object table and bumps the
  // reboot counter, making every outstanding capability stale.
  void fail();
  void restart();

  // --- replicated control plane (DESIGN.md §4h) -----------------------------------------------

  // Joins this Controller to the replication group for `seat` (one of `members`, which must
  // lead with the seat itself). Called by System::replicate_controller on every member; once
  // armed, the seat's capability mutations commit on a majority before they are acknowledged,
  // and any member can take over serving the seat after the leader dies. With no group armed
  // (the default) every replication hook below is a no-op and behavior is bit-identical to an
  // unreplicated Controller.
  void enable_replication(ControllerAddr seat, std::vector<ControllerAddr> members,
                          uint32_t seat_reboot, ReplicationGroup::Params params);
  ReplicationGroup* replication_group(ControllerAddr seat);
  // True when this Controller is the acting, established leader for `seat` (the seat itself,
  // or a follower that completed takeover) — i.e. it can serve the seat's objects.
  bool serves_seat(ControllerAddr seat) const;
  // Replica-audit helper: the structural digest of this member's state machine for `seat`
  // (0 when this Controller is not in a group for `seat`). Equal digests across members are
  // the "no committed grant lost / no stale capability honored" audit invariant.
  uint64_t seat_state_digest(ControllerAddr seat) const;
  // Where ops for `owner`'s objects should be sent: the owner itself, or the acting leader
  // of its replication group when one is known (learned from kReplLeaderAnnounce).
  ControllerAddr route_owner(ControllerAddr owner) const;

  // --- introspection ----------------------------------------------------------------------------

  ExecContext& exec() { return *exec_; }
  size_t num_processes() const { return procs_.size(); }
  uint64_t deliveries_queued() const { return deliveries_queued_; }
  size_t pending_cleanups() const { return pending_cleanups_.size(); }
  const ControllerStats& stats() const { return stats_; }
  size_t completed_peer_op_cache_size() const { return completed_peer_ops_.size(); }
  const TranslationCache& translation_cache() const { return tcache_; }
  // Re-resolves every cached translation against the live table and fails if any cached
  // entry differs (a stale entry would let a revoked capability be honored). The property
  // test runs this after every chaos step.
  Status translation_cache_audit() const;

 private:
  struct ProcState {
    ProcessId pid = kInvalidProcess;
    uint32_t node = 0;
    PoolId heap_pool = 0;
    std::unique_ptr<Channel> chan;
    CapSpace caps;
    bool alive = true;
    uint32_t outstanding = 0;  // unacked deliveries (congestion control)
    uint32_t admission_limit = 0;     // 0 = no admission gate on this process
    uint32_t admission_inflight = 0;  // admitted invokes awaiting their response delivery
    std::deque<DeliverRequestMsg> pending;

    explicit ProcState(uint32_t quota) : caps(quota) {}
  };

  // --- dispatch ---
  void on_process_msg(ProcessId pid, Envelope env);
  void on_peer_msg(ControllerAddr peer, Envelope env);
  Duration cost_of(const Envelope& env) const;

  // --- syscall handlers ---
  void handle_syscall(ProcState& p, const Envelope& env);
  void sc_memory_create(ProcState& p, uint64_t seq, const MemoryCreateMsg& m);
  void sc_memory_diminish(ProcState& p, uint64_t seq, const MemoryDiminishMsg& m);
  void sc_memory_copy(ProcState& p, uint64_t seq, const MemoryCopyMsg& m);
  void sc_request_create(ProcState& p, uint64_t seq, const RequestCreateMsg& m);
  void sc_request_invoke(ProcState& p, uint64_t seq, const RequestInvokeMsg& m);
  void sc_cap_create_revtree(ProcState& p, uint64_t seq, const CapCreateRevtreeMsg& m);
  void sc_cap_revoke(ProcState& p, uint64_t seq, const CapRevokeMsg& m);
  void sc_monitor(ProcState& p, uint64_t seq, const MonitorMsg& m, bool delegate_mode);

  // --- peer handlers ---
  void peer_remote_invoke(ControllerAddr origin, const RemoteInvokeMsg& m);
  void peer_remote_derive(ControllerAddr origin, const RemoteDeriveMsg& m);
  void peer_remote_derive_batch(ControllerAddr origin, const RemoteDeriveBatchMsg& m);
  // Executes one owner-bound derive op (or replays its cached reply) and hands the reply to
  // `done`; dedup is internal, so batch members stay individually idempotent. Without a
  // replication group `done` runs synchronously (the pre-replication code path, verbatim);
  // with one, mutating ops defer `done` until the logged entry commits on a majority.
  void exec_remote_derive(ControllerAddr origin, const RemoteDeriveMsg& m,
                          std::function<void(const PeerReplyMsg&)> done);
  void peer_reply(const PeerReplyMsg& m);
  void peer_revoke_broadcast(ControllerAddr origin, const RevokeBroadcastMsg& m);
  void peer_revoke_ack(const RevokeAckMsg& m);
  void peer_register_monitor(ControllerAddr origin, uint64_t seq, const RegisterMonitorMsg& m);
  void peer_monitor_fired(const MonitorFiredMsg& m);
  void peer_invoke_error(const RemoteInvokeErrorMsg& m);

  // --- helpers ---
  void reply(ProcState& p, uint64_t seq, ErrorCode status, CapId cid = kInvalidCap);
  // Releases one admission-gate slot (no-op for ungated processes).
  static void admission_release(ProcState& p) {
    if (p.admission_inflight > 0) {
      --p.admission_inflight;
    }
  }
  // Refuses capabilities minted before a known peer generation (eager stale detection).
  bool is_stale(const ObjectRef& ref) const;
  // Per-capability serialization cost, honoring the serialized-Request cache.
  Duration cap_serialize_cost(const std::vector<WireCap>& caps);
  // Resolves a cid into a WireCap for delegation; applies monitor interception
  // (prepare_delegation) for locally-owned objects.
  Result<WireCap> make_wire_cap(ProcState& p, CapId cid);
  Result<std::vector<WireCap>> make_wire_caps(ProcState& p, const std::vector<CapId>& cids);
  // Installs delegated capabilities and delivers a Request to a local provider.
  ErrorCode deliver_locally(ObjectIndex idx, const std::vector<ImmExtent>& extra_imms,
                            const std::vector<WireCap>& extra_caps);
  // Same, but validates the ObjectRef (ownership + generation) first.
  ErrorCode deliver_by_ref(const ObjectRef& target, const std::vector<ImmExtent>& extra_imms,
                           const std::vector<WireCap>& extra_caps);
  void push_delivery(ProcState& p, DeliverRequestMsg msg);
  void drain_deliveries(ProcState& p);
  // Applies a revocation outcome for `seat` (this Controller, or a seat it acts for):
  // monitor fires + cleanup broadcast + local purge. `fire_monitors` is false on the
  // takeover re-broadcast path, where the dead leader may already have fired them
  // (at-most-once across failover).
  void apply_revoke_for(ControllerAddr seat, const ObjectTable::RevokeResult& result,
                        bool fire_monitors = true);
  void apply_revoke(const ObjectTable::RevokeResult& result) {
    apply_revoke_for(addr(), result);
  }
  void dispatch_monitor_fire(const ObjectTable::MonitorFire& fire);
  void send_peer(ControllerAddr peer, const Envelope& env, Traffic cat = Traffic::kControl);
  // Issues a RemoteDerive/RegisterMonitor-style op keyed by `op_id`: registers the pending
  // promise, sends `env` to `peer`, and returns a future for the reply. Completes
  // immediately with kChannelClosed if the peer is unreachable. On a lossy fabric the
  // request is additionally resent with exponential backoff and the whole op is bounded by
  // with_timeout(peer_op_deadline) — a lost conversation surfaces as kTimeout on the error
  // channel instead of hanging the simulation.
  Future<Result<PeerReplyMsg>> call_peer(ControllerAddr peer, uint64_t op_id, Envelope env);
  // Like call_peer for RemoteDerive ops, but routes through the per-peer batcher when
  // Config::peer_op_batch_max > 0: the op is queued and flushed as part of one
  // kRemoteDeriveBatch frame (at batch_max occupancy or after peer_op_batch_delay). Each
  // queued op keeps its own op_id, promise, span, and (lossy) timeout, so completion and
  // idempotency semantics are identical to the unbatched path.
  Future<Result<PeerReplyMsg>> call_peer_derive(ControllerAddr peer, RemoteDeriveMsg rd);
  void flush_peer_batch(ControllerAddr peer);
  // Lossy-fabric resend of a whole batch frame: retried while ANY member op is still
  // pending (receiver-side dedup makes re-executed members harmless).
  void schedule_batch_resend(ControllerAddr peer, std::vector<uint64_t> op_ids, Payload frame,
                             uint32_t attempt);
  // Resends carry the frame pre-encoded: one Envelope serialization per op, shared by every
  // retransmission attempt (the Payload copy is a refcount bump).
  void schedule_peer_resend(ControllerAddr peer, uint64_t op_id, Payload frame,
                            uint32_t attempt);
  // Deadline bookkeeping: drops the pending promise at op deadline (its with_timeout wrapper
  // has already delivered kTimeout) and counts the timeout.
  void forget_peer_op(uint64_t op_id);
  // Peer channel severed: every pending op addressed to that peer completes kChannelClosed.
  void on_peer_severed(ControllerAddr peer);
  // Receiver-side idempotency (lossy fabric only): replays the cached reply for a peer
  // request that was already executed, so request resends never double-execute.
  bool replay_completed_peer_op(ControllerAddr origin, uint64_t key);
  void cache_completed_peer_op(uint64_t key, const PeerReplyMsg& reply);
  static uint64_t peer_op_key(ControllerAddr origin, uint64_t op_id) {
    return (static_cast<uint64_t>(origin) << 48) ^ op_id;
  }
  // Completes every pending peer op with the given status and empties the map.
  void fail_pending_ops(ErrorCode status);
  // The memory_copy data path.
  void do_copy(ProcState& p, uint64_t seq, const CapEntry& src, const CapEntry& dst);
  void bounce_copy_chunked(Endpoint self, CapEntry src, CapEntry dst, uint64_t total,
                           std::function<void(Status)> done);
  // Charges additional compute, then runs `fn`.
  void charge(Duration cost, std::function<void()> fn);
  // Called from inside a charge() callback that just paid `cost` of capability/request
  // translation: counts it and records the kTranslation span retroactively (the execution
  // window [now - cost/speed, now] has just elapsed on exec_).
  void note_translation(Duration cost);
  // Records a kTranslation span named `name` over the window that just elapsed (shared by
  // cap-serialize accounting and translation-cache miss pricing).
  void record_translation_span(Duration cost, NameId name);
  // Extra compute a local delivery of `idx` owes under depth-proportional pricing: zero on
  // a translation-cache hit (or when the feature is off), (chain_depth - 1) *
  // request_traversal on a miss.
  Duration translation_extra_cost(ObjectIndex idx) const;
  // Closes the peer-op span registered for op_id, if any (error != nullptr marks it failed).
  void close_peer_op_span(uint64_t op_id, const char* error);

  // --- replication plumbing (all no-ops / identity when no group is armed) ---
  friend class ReplicationGroup;
  // The table this Controller may serve `owner`'s objects from: its own table (own seat,
  // unless a deposed own-seat group forbids serving), an acting-leader replica, or nullptr.
  ObjectTable* serving_table(ControllerAddr owner);
  const ObjectTable* serving_table(ControllerAddr owner) const;
  bool can_mutate_seat(ControllerAddr seat) const;
  // Commit gate for one capability mutation already applied to the serving table: without a
  // group, `done(kOk)` runs synchronously (bit-identical off path); with one, `done` runs
  // when the entry commits (or fails with kNotLeader/kTimeout).
  void commit_mutation(ControllerAddr seat, ReplicatedOp op, std::function<void(ErrorCode)> done);
  // Fire-and-forget variant for mutations whose replies are not commit-gated (delegation
  // bookkeeping, erase sweeps, failure translation) — keeps the log a total order of every
  // mutation so follower replicas converge structurally.
  void log_mutation(ControllerAddr seat, ReplicatedOp op);
  // ReplicationGroup hooks.
  void note_seat_leader(ControllerAddr seat, ControllerAddr leader, uint64_t term);
  void on_seat_established(ControllerAddr seat);
  void peer_leader_announce(const ReplLeaderAnnounceMsg& m);
  void handle_repl_msg(ControllerAddr origin, const Envelope& env);

  static RdmaKey key_of(const ObjectRef& ref) {
    return RdmaKey{ref.owner, ref.index, ref.reboot_count};
  }

  Network* net_;
  Config config_;
  ExecContext* exec_;
  ObjectTable table_;
  std::unordered_map<ProcessId, std::unique_ptr<ProcState>> procs_;
  struct Peer {
    std::unique_ptr<Channel> chan;
    Endpoint endpoint;
  };
  // Resolves `peer` to its live entry, lazily connecting through peer_connector_ when the
  // mesh is lazy. nullptr = unknown, unconnectable, or this Controller has failed.
  Peer* find_peer(ControllerAddr peer);
  std::unordered_map<ControllerAddr, Peer> peers_;
  PeerConnector peer_connector_;
  std::unordered_map<uint64_t, Promise<Result<PeerReplyMsg>>> pending_ops_;
  std::unordered_map<uint64_t, ControllerAddr> pending_op_peer_;
  // Open peer-op spans by op id (populated only while a SpanTracer is alive); a timed-out or
  // severed op closes its span with an error attribute instead of leaking it open.
  std::unordered_map<uint64_t, uint64_t> pending_op_spans_;
  // Completed-peer-op reply cache for dedup (populated only on a lossy fabric). The FIFO
  // carries insertion times: entries are evicted when older than peer_op_dedup_ttl (the
  // deterministic, simulated-time bound) and the cap is the hard backstop.
  std::unordered_map<uint64_t, PeerReplyMsg> completed_peer_ops_;
  std::deque<std::pair<uint64_t, Time>> completed_peer_ops_fifo_;
  // Owner-side translation cache (see translation_cache.h); capacity from Config.
  TranslationCache tcache_;
  // Per-peer outgoing RemoteDerive batcher (active only when peer_op_batch_max > 0).
  struct PendingBatch {
    std::vector<RemoteDeriveMsg> ops;
    bool flush_scheduled = false;
  };
  std::unordered_map<ControllerAddr, PendingBatch> pending_batches_;
  std::unordered_map<uint64_t, ProcessId> pending_invokes_;
  // Two-phase revocation cleanup: invalidated objects are erased only after every peer has
  // acknowledged the broadcast (the distributed-GC "cleanup step" of Section 3.5).
  struct PendingCleanup {
    std::vector<ObjectIndex> objects;
    size_t awaiting = 0;
    ControllerAddr seat = 0;  // whose table to erase from (a takeover leader acts for peers)
  };
  std::unordered_map<uint64_t, PendingCleanup> pending_cleanups_;
  // Replication groups this Controller is a member of, by seat; empty by default.
  std::unordered_map<ControllerAddr, std::unique_ptr<ReplicationGroup>> repl_groups_;
  // Last announced leader per replicated seat (kReplLeaderAnnounce), for client redirects.
  struct SeatRoute {
    ControllerAddr leader = 0;
    uint64_t term = 0;
  };
  std::unordered_map<ControllerAddr, SeatRoute> repl_routes_;
  // Peers' known reboot generations (eager stale detection).
  std::unordered_map<ControllerAddr, uint32_t> peer_gens_;
  // Serialized-Request cache (cost model only; see Config::cache_serialized_requests).
  std::unordered_set<uint64_t> serialized_cache_;
  uint64_t next_op_id_ = 1;
  uint64_t next_seq_ = 1;
  uint64_t deliveries_queued_ = 0;
  bool failed_ = false;
  ControllerStats stats_;
  std::string name_;           // "ctrl-<addr>", for trace lines
  NameId name_id_ = kInvalidNameId;  // interned name_, the span actor
  // Pre-interned metric keys (ctrl.<addr>.*) so hot paths neither concatenate nor look up
  // strings.
  struct MetricKeys {
    NameId syscalls = kInvalidNameId;
    NameId deliveries = kInvalidNameId;
    NameId translations = kInvalidNameId;
    NameId peer_retries = kInvalidNameId;
    NameId peer_op_timeouts = kInvalidNameId;
    NameId peer_dedup_hits = kInvalidNameId;
    NameId late_reply = kInvalidNameId;  // mirrors stats_.late_replies_ignored exactly
    // cap.<addr>.* hot-path keys — touched only when the owning feature is enabled, so the
    // default-config metrics snapshots stay bit-identical.
    NameId cap_cache_hit = kInvalidNameId;       // translation-cache hits (counter)
    NameId cap_cache_miss = kInvalidNameId;      // translation-cache misses (counter)
    NameId cap_revoke_subtree = kInvalidNameId;  // invalidated-subtree sizes (histogram)
    NameId cap_batch_occupancy = kInvalidNameId; // ops per flushed batch (histogram)
    // Admission gate — touched only for processes with a nonzero limit.
    NameId admission_admitted = kInvalidNameId;
    NameId admission_shed = kInvalidNameId;
  } mkeys_;
};

}  // namespace fractos

#endif  // SRC_CORE_CONTROLLER_H_
