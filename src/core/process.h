// The FractOS Process runtime: libfractos.
//
// Table 1 of the paper maps onto this API as follows:
//   cap_create_revtree(cid)        -> cap_create_revtree()
//   cap_revoke(cid)                -> cap_revoke()
//   memory_create(addr,size,perms) -> memory_create() / memory_create_in() (device pools)
//   memory_diminish(...)           -> memory_diminish()
//   memory_copy(cid1,cid2)         -> memory_copy() (with offset/length extensions)
//   request_create([cid],imms,caps)-> request_create() (root) / request_derive() (refining)
//   request_invoke(cid)            -> request_invoke() (with invoke-time refinement)
//   request_receive{...}           -> serve() / on_endpoint() handlers receiving `Received`
//   monitor_delegate / monitor_receive (Section 3.6) -> monitor_delegate() / monitor_receive()
//
// A Process is a user-level program (application or device adaptor — "FractOS does not
// distinguish between adaptors that expose hardware devices and regular CPU services",
// Section 3.2) connected to exactly one Controller through a request/response channel. All
// Table-1 syscalls are asynchronous: each call posts a message and returns a Future resolved
// by the matching reply.
//
// Serving side: a Process registers handlers per endpoint (per root Request it created);
// deliveries carry the request_receive descriptor of Table 1. The runtime acknowledges each
// delivery (congestion control) after the handler returns.
//
// Sync-RPC sugar: call() implements the paper's continuation pattern — "a client Process that
// invokes A can initialize B to contain a separate Request A' implemented by A itself" — by
// creating a one-shot reply endpoint, appending its capability as the LAST capability
// argument (the cross-service convention in this codebase), and resolving the returned future
// when the callee invokes it.

#ifndef SRC_CORE_PROCESS_H_
#define SRC_CORE_PROCESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cap/types.h"
#include "src/core/channel.h"
#include "src/futures/future.h"
#include "src/sim/intern.h"
#include "src/fabric/network.h"

namespace fractos {

class Process {
 public:
  // Argument builder for request_create / request_invoke.
  struct Args {
    std::vector<ImmExtent> imms;
    std::vector<CapId> caps;

    Args& imm(uint32_t offset, std::vector<uint8_t> bytes) {
      imms.push_back(ImmExtent{offset, std::move(bytes)});
      return *this;
    }
    Args& imm_u64(uint32_t offset, uint64_t v);
    Args& imm_str(uint32_t offset, const std::string& s);
    Args& cap(CapId cid) {
      caps.push_back(cid);
      return *this;
    }
  };

  // The request_receive descriptor as seen by a handler.
  struct Received {
    CapId endpoint = kInvalidCap;
    std::vector<ImmExtent> imms;
    std::vector<DeliveredCap> caps;

    // Immediate accessors (by argument-buffer offset).
    std::optional<uint64_t> imm_u64(uint32_t offset) const;
    std::optional<std::vector<uint8_t>> imm_bytes(uint32_t offset, uint32_t size) const;
    std::optional<std::string> imm_str(uint32_t offset) const;  // whole extent at offset
    CapId cap(size_t i) const { return i < caps.size() ? caps[i].cid : kInvalidCap; }
    size_t num_caps() const { return caps.size(); }
  };
  using Handler = std::function<void(Received)>;

  Process(Network* net, ProcessId pid, std::string name, uint32_t node, PoolId heap_pool,
          Endpoint controller_ep);

  ProcessId pid() const { return pid_; }
  const std::string& name() const { return name_; }
  uint32_t node() const { return node_; }
  PoolId heap_pool() const { return heap_pool_; }
  Channel& channel() { return chan_; }
  bool failed() const { return failed_; }

  // --- Table 1 syscalls -----------------------------------------------------------------------

  Future<Status> null_op();
  Future<Result<CapId>> memory_create(uint64_t addr, uint64_t size, Perms perms);
  // For adaptors registering device memory pools on their node (e.g. GPU memory).
  Future<Result<CapId>> memory_create_in(PoolId pool, uint64_t addr, uint64_t size, Perms perms);
  Future<Result<CapId>> memory_diminish(CapId cid, uint64_t offset, uint64_t size,
                                        Perms drop_perms);
  // Copies `length` bytes (0 = the whole overlap) from src[src_off..] into dst[dst_off..].
  Future<Status> memory_copy(CapId src, CapId dst, uint64_t length = 0, uint64_t src_off = 0,
                             uint64_t dst_off = 0);
  Future<Result<CapId>> request_create(Args args = {});                // new root Request
  Future<Result<CapId>> request_derive(CapId base, Args args);         // derived Request
  Future<Status> request_invoke(CapId cid, Args invoke_args = {});
  Future<Result<CapId>> cap_create_revtree(CapId cid);
  Future<Status> cap_revoke(CapId cid);
  Future<Status> monitor_delegate(CapId cid, uint64_t callback_id);
  Future<Status> monitor_receive(CapId cid, uint64_t callback_id);

  // --- serving ---------------------------------------------------------------------------------

  // Registers the handler for deliveries to the given endpoint (a root Request cid this
  // Process created). Creating the endpoint and binding its handler in one step:
  Future<Result<CapId>> serve(Args initial_args, Handler handler);
  void on_endpoint(CapId endpoint_cid, Handler handler);
  void remove_endpoint(CapId endpoint_cid) { handlers_.erase(endpoint_cid); }
  void set_default_handler(Handler handler) { default_handler_ = std::move(handler); }
  void set_monitor_handler(std::function<void(uint64_t callback_id, bool delegate_mode)> h) {
    monitor_handler_ = std::move(h);
  }
  void set_invoke_error_handler(std::function<void(ErrorCode)> h) {
    invoke_error_handler_ = std::move(h);
  }

  // Sync-RPC sugar: invokes `target` with `args` plus a fresh one-shot reply endpoint
  // appended as the last capability argument; resolves with the delivery to that endpoint.
  Future<Result<Received>> call(CapId target, Args args = {});

  // --- local memory ----------------------------------------------------------------------------

  uint64_t heap_size() const;
  // Bump allocation out of the heap pool (the runtime's malloc stand-in).
  uint64_t alloc(uint64_t size, uint64_t align = 64);
  void write_mem(uint64_t addr, const std::vector<uint8_t>& bytes);
  std::vector<uint8_t> read_mem(uint64_t addr, uint64_t size) const;

  // Models application compute on the node's host core.
  Future<Unit> compute(Duration cost);

  // Crashes the Process: severs the channel, which its Controller translates into
  // revocations (Section 3.6).
  void fail();

 private:
  void on_envelope(Envelope env);
  uint64_t send_syscall(Envelope env);  // returns the seq used
  Future<Result<CapId>> cap_syscall(Envelope env);
  Future<Status> status_syscall(Envelope env);

  Network* net_;
  ProcessId pid_;
  std::string name_;
  NameId name_id_ = kInvalidNameId;  // interned name_, the span actor
  uint32_t node_;
  PoolId heap_pool_;
  Channel chan_;
  uint64_t next_seq_ = 1;
  // Open kSyscall span per in-flight syscall, keyed by envelope seq (empty when tracing off).
  std::unordered_map<uint64_t, uint64_t> pending_spans_;
  uint64_t next_alloc_ = 0;
  bool failed_ = false;
  std::unordered_map<uint64_t, std::function<void(const SyscallReplyMsg&)>> pending_;
  std::unordered_map<CapId, Handler> handlers_;
  Handler default_handler_;
  std::function<void(uint64_t, bool)> monitor_handler_;
  std::function<void(ErrorCode)> invoke_error_handler_;
};

}  // namespace fractos

#endif  // SRC_CORE_PROCESS_H_
