#include "src/core/node_monitor.h"

namespace fractos {

NodeMonitor::NodeMonitor(System* sys, uint32_t monitor_node)
    : NodeMonitor(sys, monitor_node, Params{}) {}

NodeMonitor::NodeMonitor(System* sys, uint32_t monitor_node, Params params)
    : sys_(sys), monitor_node_(monitor_node), params_(params) {}

void NodeMonitor::watch(uint32_t node) {
  auto w = std::make_unique<Watched>();
  w->node = node;
  w->agent = std::make_unique<QueuePair>(&sys_->net(), Endpoint{node, Loc::kHost});
  w->receiver = std::make_unique<QueuePair>(&sys_->net(), Endpoint{monitor_node_, Loc::kHost});
  // Heartbeats are datagrams (UD), not RC: a lossy fabric may silently eat them, which is
  // what makes monitor false positives possible — and the re-admission path testable.
  w->agent->set_mode(QueuePair::Mode::kDatagram);
  w->receiver->set_mode(QueuePair::Mode::kDatagram);
  QueuePair::connect(*w->agent, *w->receiver);
  w->agent->set_receive_handler([](Payload) {});
  Watched* raw = w.get();
  w->receiver->set_receive_handler([this, raw](Payload) {
    raw->last_beat = sys_->loop().now();
    if (raw->reported) {
      // A node we declared dead is beating again: the report was a false positive (its
      // heartbeats were lost in transit, not its host).
      readmit(*raw);
    }
  });
  w->last_beat = sys_->loop().now();
  watched_.push_back(std::move(w));
  if (running_) {
    beat(watched_.size() - 1);
  }
}

void NodeMonitor::start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++epoch_;
  for (size_t i = 0; i < watched_.size(); ++i) {
    beat(i);
  }
  const uint64_t epoch = epoch_;
  sys_->loop().schedule_after(params_.check_interval, [this, epoch]() {
    if (running_ && epoch == epoch_) {
      check();
    }
  });
}

void NodeMonitor::stop() { running_ = false; }

void NodeMonitor::beat(size_t idx) {
  if (!running_) {
    return;
  }
  Watched& w = *watched_[idx];
  // A dead node's agent cannot send (the fabric drops its messages); the send below is what
  // a live node's heartbeat daemon would do.
  if (!sys_->net().node(w.node).failed()) {
    // Every heartbeat aliases one shared frame — periodic beats allocate nothing.
    static const Payload kBeat(std::vector<uint8_t>(8, 0xbe));
    w.agent->send(Traffic::kControl, kBeat);
  }
  const uint64_t epoch = epoch_;
  sys_->loop().schedule_after(params_.heartbeat_interval, [this, idx, epoch]() {
    if (running_ && epoch == epoch_) {
      beat(idx);
    }
  });
}

void NodeMonitor::check() {
  const Time now = sys_->loop().now();
  for (auto& w : watched_) {
    if (!w->reported && now - w->last_beat > params_.failure_timeout) {
      report_failure(*w);
    }
  }
  const uint64_t epoch = epoch_;
  sys_->loop().schedule_after(params_.check_interval, [this, epoch]() {
    if (running_ && epoch == epoch_) {
      check();
    }
  });
}

void NodeMonitor::report_failure(Watched& w) {
  w.reported = true;
  ++failures_detected_;
  // "we inform the corresponding Controller to fail all Processes running in it" — every
  // surviving Controller that manages Processes on the dead node translates this into
  // revocations.
  for (Controller* c : sys_->controllers()) {
    if (!c->failed()) {
      c->node_failed(w.node);
    }
  }
}

void NodeMonitor::readmit(Watched& w) {
  w.reported = false;
  ++recoveries_detected_;
  // Processes already killed by failure translation stay dead (their revocations are
  // irreversible); re-admission clears the node for future placements and tells every
  // Controller the report was spurious.
  for (Controller* c : sys_->controllers()) {
    if (!c->failed()) {
      c->node_recovered(w.node);
    }
  }
}

bool NodeMonitor::reported(uint32_t node) const {
  for (const auto& w : watched_) {
    if (w->node == node) {
      return w->reported;
    }
  }
  return false;
}

}  // namespace fractos
