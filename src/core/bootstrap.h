// Capability bootstrap service: a key/value store that Processes use to publish and discover
// capabilities by name ("a key/value store to bootstrap capabilities on new Processes",
// Section 4 — the paper notes this would typically be replaced by a resource manager).
//
// The KV store is itself an ordinary FractOS Process (dogfooding): put/get are Requests, and
// capability movement happens through regular delegation. Wire conventions:
//
//   put endpoint:  imm@0 = name bytes; caps = [capability to store, reply Request]
//   get endpoint:  imm@0 = name bytes; caps = [reply Request]
//     reply (get): invoked with imm@0 = status byte; caps = [stored capability] on success.
//     reply (put): invoked with imm@0 = status byte.

#ifndef SRC_CORE_BOOTSTRAP_H_
#define SRC_CORE_BOOTSTRAP_H_

#include <string>
#include <unordered_map>

#include "src/core/process.h"
#include "src/core/system.h"

namespace fractos {

class KvStore {
 public:
  // Spawns the service Process on `node`, attached to `controller`.
  KvStore(System* sys, uint32_t node, Controller& controller);

  Process& process() { return *proc_; }
  CapId put_endpoint() const { return put_ep_; }
  CapId get_endpoint() const { return get_ep_; }
  size_t size() const { return store_.size(); }

  // Grants a fresh Process the put/get endpoints (operator bootstrap action).
  struct Endpoints {
    CapId put = kInvalidCap;
    CapId get = kInvalidCap;
  };
  Endpoints grant_to(Process& p);

  // --- client helpers (run on the client Process) --------------------------------------------

  // Publishes client-held capability `cid` under `name`.
  static Future<Status> put(Process& client, CapId kv_put, const std::string& name, CapId cid);

  // Looks up `name`; resolves with a cid installed in the client's space.
  static Future<Result<CapId>> get(Process& client, CapId kv_get, const std::string& name);

 private:
  void handle_put(Process::Received r);
  void handle_get(Process::Received r);

  System* sys_;
  Process* proc_;
  CapId put_ep_ = kInvalidCap;
  CapId get_ep_ = kInvalidCap;
  std::unordered_map<std::string, CapId> store_;  // name -> cid in the KV Process's space
};

}  // namespace fractos

#endif  // SRC_CORE_BOOTSTRAP_H_
