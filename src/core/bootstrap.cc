#include "src/core/bootstrap.h"

#include <utility>

namespace fractos {

namespace {
constexpr uint8_t kStatusOk = 0;
constexpr uint8_t kStatusNotFound = 1;
constexpr uint8_t kStatusBadArgs = 2;
}  // namespace

KvStore::KvStore(System* sys, uint32_t node, Controller& controller) : sys_(sys) {
  proc_ = &sys->spawn("kvstore", node, controller, 1 << 20);
  put_ep_ = sys->await_ok(proc_->serve({}, [this](Process::Received r) { handle_put(std::move(r)); }));
  get_ep_ = sys->await_ok(proc_->serve({}, [this](Process::Received r) { handle_get(std::move(r)); }));
}

KvStore::Endpoints KvStore::grant_to(Process& p) {
  Endpoints eps;
  eps.put = sys_->bootstrap_grant(*proc_, put_ep_, p).value();
  eps.get = sys_->bootstrap_grant(*proc_, get_ep_, p).value();
  return eps;
}

void KvStore::handle_put(Process::Received r) {
  // caps = [stored capability, reply Request]
  auto name = r.imm_str(0);
  const CapId reply = r.num_caps() >= 1 ? r.cap(r.num_caps() - 1) : kInvalidCap;
  uint8_t status = kStatusOk;
  if (!name.has_value() || r.num_caps() != 2) {
    status = kStatusBadArgs;
  } else {
    store_[*name] = r.cap(0);
  }
  if (reply != kInvalidCap) {
    proc_->request_invoke(reply, Process::Args{}.imm(0, {status}));
  }
}

void KvStore::handle_get(Process::Received r) {
  auto name = r.imm_str(0);
  const CapId reply = r.num_caps() >= 1 ? r.cap(r.num_caps() - 1) : kInvalidCap;
  if (reply == kInvalidCap) {
    return;
  }
  if (!name.has_value()) {
    proc_->request_invoke(reply, Process::Args{}.imm(0, {kStatusBadArgs}));
    return;
  }
  auto it = store_.find(*name);
  if (it == store_.end()) {
    proc_->request_invoke(reply, Process::Args{}.imm(0, {kStatusNotFound}));
    return;
  }
  proc_->request_invoke(reply, Process::Args{}.imm(0, {kStatusOk}).cap(it->second));
}

Future<Status> KvStore::put(Process& client, CapId kv_put, const std::string& name, CapId cid) {
  return client.call(kv_put, Process::Args{}.imm_str(0, name).cap(cid))
      .then([](Result<Process::Received> r) -> Status {
        if (!r.ok()) {
          return r.error();
        }
        auto status = r.value().imm_bytes(0, 1);
        if (!status.has_value()) {
          return ErrorCode::kInternal;
        }
        return (*status)[0] == kStatusOk ? ok_status() : Status(ErrorCode::kInvalidArgument);
      });
}

Future<Result<CapId>> KvStore::get(Process& client, CapId kv_get, const std::string& name) {
  return client.call(kv_get, Process::Args{}.imm_str(0, name))
      .then([](Result<Process::Received> r) -> Result<CapId> {
        if (!r.ok()) {
          return r.error();
        }
        auto status = r.value().imm_bytes(0, 1);
        if (!status.has_value()) {
          return ErrorCode::kInternal;
        }
        if ((*status)[0] != kStatusOk) {
          return ErrorCode::kNotFound;
        }
        if (r.value().num_caps() < 1) {
          return ErrorCode::kInternal;
        }
        return r.value().cap(0);
      });
}

}  // namespace fractos
