// External node-monitoring service (the paper's Zookeeper stand-in, Section 3.6):
// "A node or Controller failure is detected by an external monitoring service such as
// Zookeeper. After a node failure, we inform the corresponding Controller to fail all
// Processes running in it."
//
// Each watched node runs a heartbeat agent that periodically sends a beat over a queue pair
// to the monitor's node. The monitor checks for missing beats on a timer; when a node goes
// quiet past the timeout it notifies every surviving Controller (Controller::node_failed),
// which translates the failure into Process revocations. This matters for shared/remote
// Controller deployments, where a dead node's Process channels may never visibly sever.
//
// Note: heartbeats keep the event loop non-empty — tests and benches that use a NodeMonitor
// must drive the loop with run_until()/run_until_time() and call stop() when done.

#ifndef SRC_CORE_NODE_MONITOR_H_
#define SRC_CORE_NODE_MONITOR_H_

#include <memory>
#include <vector>

#include "src/core/system.h"

namespace fractos {

class NodeMonitor {
 public:
  struct Params {
    Duration heartbeat_interval = Duration::millis(5);
    Duration failure_timeout = Duration::millis(16);
    Duration check_interval = Duration::millis(4);
  };

  NodeMonitor(System* sys, uint32_t monitor_node);
  NodeMonitor(System* sys, uint32_t monitor_node, Params params);

  // Starts a heartbeat agent on `node` and tracks it.
  void watch(uint32_t node);

  // Begins periodic failure checks (heartbeat agents start at watch()).
  void start();
  // Stops all periodic activity; the event loop can drain again.
  void stop();

  bool running() const { return running_; }
  uint32_t failures_detected() const { return failures_detected_; }
  // Spurious failure reports retracted because the node's heartbeats resumed (possible only
  // on a lossy fabric, where dropped heartbeats can mimic a dead node).
  uint32_t recoveries_detected() const { return recoveries_detected_; }
  bool reported(uint32_t node) const;

 private:
  struct Watched {
    uint32_t node = 0;
    std::unique_ptr<QueuePair> agent;    // heartbeat sender on the watched node
    std::unique_ptr<QueuePair> receiver; // monitor-side end
    Time last_beat;
    bool reported = false;
  };

  void beat(size_t idx);
  void check();
  void report_failure(Watched& w);
  void readmit(Watched& w);

  System* sys_;
  uint32_t monitor_node_;
  Params params_;
  bool running_ = false;
  uint64_t epoch_ = 0;  // invalidates scheduled callbacks from a previous start()
  uint32_t failures_detected_ = 0;
  uint32_t recoveries_detected_ = 0;
  std::vector<std::unique_ptr<Watched>> watched_;
};

}  // namespace fractos

#endif  // SRC_CORE_NODE_MONITOR_H_
