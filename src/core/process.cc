#include "src/core/process.h"

#include <algorithm>
#include <utility>

#include "src/base/assert.h"
#include "src/sim/span.h"

namespace fractos {

Process::Args& Process::Args::imm_u64(uint32_t offset, uint64_t v) {
  std::vector<uint8_t> bytes(8);
  for (size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  return imm(offset, std::move(bytes));
}

Process::Args& Process::Args::imm_str(uint32_t offset, const std::string& s) {
  return imm(offset, std::vector<uint8_t>(s.begin(), s.end()));
}

std::optional<uint64_t> Process::Received::imm_u64(uint32_t offset) const {
  auto bytes = imm_bytes(offset, 8);
  if (!bytes.has_value()) {
    return std::nullopt;
  }
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>((*bytes)[i]) << (8 * i);
  }
  return v;
}

std::optional<std::vector<uint8_t>> Process::Received::imm_bytes(uint32_t offset,
                                                                 uint32_t size) const {
  // Extents are non-overlapping; find the one containing [offset, offset+size).
  for (const auto& e : imms) {
    if (offset >= e.offset && offset + size <= e.end()) {
      const uint32_t start = offset - e.offset;
      return std::vector<uint8_t>(e.bytes.begin() + start, e.bytes.begin() + start + size);
    }
  }
  return std::nullopt;
}

std::optional<std::string> Process::Received::imm_str(uint32_t offset) const {
  for (const auto& e : imms) {
    if (e.offset == offset) {
      return std::string(e.bytes.begin(), e.bytes.end());
    }
  }
  return std::nullopt;
}

Process::Process(Network* net, ProcessId pid, std::string name, uint32_t node, PoolId heap_pool,
                 Endpoint controller_ep)
    : net_(net),
      pid_(pid),
      name_(std::move(name)),
      node_(node),
      heap_pool_(heap_pool),
      chan_(net, Endpoint{node, Loc::kHost}) {
  (void)controller_ep;  // the System wires the channel to the Controller side
  name_id_ = intern_name(name_);
  chan_.set_handler([this](Envelope env) { on_envelope(std::move(env)); });
}

// --- syscall plumbing ---------------------------------------------------------------------------

uint64_t Process::send_syscall(Envelope env) {
  FRACTOS_CHECK(!failed_);
  if (span_tracing_active()) {
    if (SpanTracer* t = net_->loop()->span_tracer()) {
      const uint64_t span =
          t->begin(name_id_, SpanKind::kSyscall, msg_type_span_name(env.type), net_->loop()->now());
      if (span != 0) {
        pending_spans_.emplace(env.seq, span);
      }
    }
  }
  chan_.send(Traffic::kControl, env);
  return env.seq;
}

Future<Result<CapId>> Process::cap_syscall(Envelope env) {
  if (failed_) {
    // A failed process cannot reach its Controller; syscalls fail through the error channel
    // instead of CHECK-crashing, so failure-cleanup continuations can run safely.
    return make_ready_future(Result<CapId>(ErrorCode::kChannelClosed));
  }
  Promise<Result<CapId>> promise;
  pending_.emplace(env.seq, [promise](const SyscallReplyMsg& r) {
    if (r.status == ErrorCode::kOk) {
      promise.set(r.cid);
    } else {
      promise.set(r.status);
    }
  });
  send_syscall(std::move(env));
  return promise.future();
}

Future<Status> Process::status_syscall(Envelope env) {
  if (failed_) {
    return make_ready_future(Status(ErrorCode::kChannelClosed));
  }
  Promise<Status> promise;
  pending_.emplace(env.seq, [promise](const SyscallReplyMsg& r) {
    promise.set(r.status == ErrorCode::kOk ? ok_status() : Status(r.status));
  });
  send_syscall(std::move(env));
  return promise.future();
}

Future<Status> Process::null_op() {
  return status_syscall(make_envelope(next_seq_++, NullOpMsg{}));
}

Future<Result<CapId>> Process::memory_create(uint64_t addr, uint64_t size, Perms perms) {
  return memory_create_in(heap_pool_, addr, size, perms);
}

Future<Result<CapId>> Process::memory_create_in(PoolId pool, uint64_t addr, uint64_t size,
                                                Perms perms) {
  MemoryCreateMsg m;
  m.pool = pool;
  m.addr = addr;
  m.size = size;
  m.perms = perms;
  return cap_syscall(make_envelope(next_seq_++, m));
}

Future<Result<CapId>> Process::memory_diminish(CapId cid, uint64_t offset, uint64_t size,
                                               Perms drop_perms) {
  MemoryDiminishMsg m;
  m.cid = cid;
  m.offset = offset;
  m.size = size;
  m.drop_perms = drop_perms;
  return cap_syscall(make_envelope(next_seq_++, m));
}

Future<Status> Process::memory_copy(CapId src, CapId dst, uint64_t length, uint64_t src_off,
                                    uint64_t dst_off) {
  MemoryCopyMsg m;
  m.src = src;
  m.dst = dst;
  m.src_off = src_off;
  m.dst_off = dst_off;
  m.length = length;
  return status_syscall(make_envelope(next_seq_++, m));
}

Future<Result<CapId>> Process::request_create(Args args) {
  RequestCreateMsg m;
  m.has_base = false;
  m.imms = std::move(args.imms);
  m.caps = std::move(args.caps);
  return cap_syscall(make_envelope(next_seq_++, std::move(m)));
}

Future<Result<CapId>> Process::request_derive(CapId base, Args args) {
  RequestCreateMsg m;
  m.has_base = true;
  m.base = base;
  m.imms = std::move(args.imms);
  m.caps = std::move(args.caps);
  return cap_syscall(make_envelope(next_seq_++, std::move(m)));
}

Future<Status> Process::request_invoke(CapId cid, Args invoke_args) {
  RequestInvokeMsg m;
  m.cid = cid;
  m.imms = std::move(invoke_args.imms);
  m.caps = std::move(invoke_args.caps);
  return status_syscall(make_envelope(next_seq_++, std::move(m)));
}

Future<Result<CapId>> Process::cap_create_revtree(CapId cid) {
  return cap_syscall(make_envelope(next_seq_++, CapCreateRevtreeMsg{cid}));
}

Future<Status> Process::cap_revoke(CapId cid) {
  return status_syscall(make_envelope(next_seq_++, CapRevokeMsg{cid}));
}

Future<Status> Process::monitor_delegate(CapId cid, uint64_t callback_id) {
  return status_syscall(
      make_envelope(next_seq_++, MonitorMsg{cid, callback_id}, /*delegate_mode=*/true));
}

Future<Status> Process::monitor_receive(CapId cid, uint64_t callback_id) {
  return status_syscall(
      make_envelope(next_seq_++, MonitorMsg{cid, callback_id}, /*delegate_mode=*/false));
}

// --- serving --------------------------------------------------------------------------------------

Future<Result<CapId>> Process::serve(Args initial_args, Handler handler) {
  return request_create(std::move(initial_args))
      .then([this, handler = std::move(handler)](Result<CapId> cid) -> Result<CapId> {
        if (cid.ok()) {
          on_endpoint(cid.value(), handler);
        }
        return cid;
      });
}

void Process::on_endpoint(CapId endpoint_cid, Handler handler) {
  handlers_[endpoint_cid] = std::move(handler);
}

Future<Result<Process::Received>> Process::call(CapId target, Args args) {
  Promise<Result<Received>> promise;
  request_create({}).then([this, target, args = std::move(args),
                           promise](Result<CapId> reply_ep) mutable {
    if (!reply_ep.ok()) {
      promise.set(reply_ep.error());
      return;
    }
    const CapId ep = reply_ep.value();
    on_endpoint(ep, [this, ep, promise](Received r) {
      handlers_.erase(ep);
      promise.set(std::move(r));
    });
    args.cap(ep);  // convention: the reply Request is the last capability argument
    request_invoke(target, std::move(args)).on_ready([promise](Status s) {
      if (!s.ok()) {
        promise.set(s.error());
      }
    });
  });
  return promise.future();
}

// --- delivery / replies ------------------------------------------------------------------------

void Process::on_envelope(Envelope env) {
  switch (env.type) {
    case MsgType::kSyscallReply: {
      const auto& r = std::get<SyscallReplyMsg>(env.body);
      auto it = pending_.find(r.call_seq);
      FRACTOS_CHECK_MSG(it != pending_.end(), "reply for unknown syscall");
      auto cont = std::move(it->second);
      pending_.erase(it);
      auto sit = pending_spans_.find(r.call_seq);
      if (sit != pending_spans_.end()) {
        const uint64_t span = sit->second;
        pending_spans_.erase(sit);
        if (SpanTracer* t = net_->loop()->span_tracer()) {
          t->end(span, net_->loop()->now());
        }
      }
      cont(r);
      break;
    }
    case MsgType::kDeliverRequest: {
      auto& d = std::get<DeliverRequestMsg>(env.body);
      Received r;
      r.endpoint = d.endpoint_cid;
      r.imms = std::move(d.imms);
      r.caps = std::move(d.caps);
      auto it = handlers_.find(r.endpoint);
      if (it != handlers_.end()) {
        // Copy the handler: it may erase itself (one-shot endpoints).
        Handler h = it->second;
        h(std::move(r));
      } else if (default_handler_ != nullptr) {
        default_handler_(std::move(r));
      }
      {
        Envelope ack = make_envelope(next_seq_++, DeliverAckMsg{});
        if (span_tracing_active()) {
          // The trailing congestion-control ack is not on any request's critical path; detach
          // it from the ambient trace so it cannot extend a closed request span.
          SpanScope detach;
          chan_.send(Traffic::kControl, std::move(ack));
        } else {
          chan_.send(Traffic::kControl, std::move(ack));
        }
      }
      break;
    }
    case MsgType::kMonitorCallback: {
      const auto& m = std::get<MonitorCallbackMsg>(env.body);
      if (monitor_handler_ != nullptr) {
        monitor_handler_(m.callback_id, m.delegate_mode);
      }
      break;
    }
    case MsgType::kRemoteInvokeError: {
      const auto& m = std::get<RemoteInvokeErrorMsg>(env.body);
      if (invoke_error_handler_ != nullptr) {
        invoke_error_handler_(m.status);
      }
      break;
    }
    default:
      FRACTOS_CHECK_MSG(false, "unexpected message type delivered to process");
  }
}

// --- local memory ---------------------------------------------------------------------------------

uint64_t Process::heap_size() const { return net_->node(node_).pool(heap_pool_).size(); }

uint64_t Process::alloc(uint64_t size, uint64_t align) {
  FRACTOS_CHECK(align > 0 && (align & (align - 1)) == 0);
  uint64_t addr = (next_alloc_ + align - 1) & ~(align - 1);
  FRACTOS_CHECK_MSG(addr + size <= heap_size(), "process heap exhausted");
  next_alloc_ = addr + size;
  return addr;
}

void Process::write_mem(uint64_t addr, const std::vector<uint8_t>& bytes) {
  auto& pool = net_->node(node_).pool(heap_pool_);
  FRACTOS_CHECK(addr + bytes.size() <= pool.size());
  std::copy(bytes.begin(), bytes.end(), pool.begin() + static_cast<ptrdiff_t>(addr));
}

std::vector<uint8_t> Process::read_mem(uint64_t addr, uint64_t size) const {
  const auto& pool = net_->node(node_).pool(heap_pool_);
  FRACTOS_CHECK(addr + size <= pool.size());
  return std::vector<uint8_t>(pool.begin() + static_cast<ptrdiff_t>(addr),
                              pool.begin() + static_cast<ptrdiff_t>(addr + size));
}

Future<Unit> Process::compute(Duration cost) {
  Promise<Unit> promise;
  net_->node(node_).host().run(cost, [promise]() { promise.set(Unit{}); });
  return promise.future();
}

void Process::fail() {
  if (failed_) {
    return;
  }
  failed_ = true;
  pending_.clear();
  if (!pending_spans_.empty()) {
    if (SpanTracer* t = net_->loop()->span_tracer()) {
      for (const auto& [seq, span] : pending_spans_) {
        t->end_error(span, net_->loop()->now(), "process-failed");
      }
    }
    pending_spans_.clear();
  }
  handlers_.clear();
  chan_.sever();
}

}  // namespace fractos
