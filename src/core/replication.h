// Quorum replication of one Controller seat's capability metadata (DESIGN.md §4h).
//
// A ReplicationGroup makes a Controller "seat" — its object table, the root of every
// capability it owns — survive the Controller's death. Each member of the group runs one
// ReplicationGroup instance for the seat: the seat itself serves clients and leads the
// group; the other members maintain a follower replica of the seat's ObjectTable by
// applying a replicated log of capability mutations (grant / refine / diminish / revoke,
// and every translation-affecting op) in commit order.
//
// The protocol is a lease-based Raft variant, specialized for the deterministic simulator:
//
//   * Terms and votes are standard Raft. Election timeouts are NOT randomized — member
//     rank (index in the member list) staggers candidacy deterministically, so the same
//     seed always elects the same leader at the same simulated time.
//   * The leader's lease is refreshed by append acks: the lease is valid while a majority
//     of members (counting the leader) acked an append within the last `lease` window.
//     A follower refuses to vote while its own view of the lease is fresh, so a deposed
//     leader's lease provably expires before a successor can be elected — no two leaders
//     can both hold a valid lease, which is what lets the leader serve reads locally.
//   * The leader applies mutations to its serving table *eagerly* (it needs the produced
//     object indices to build replies) but releases the reply only when the log entry
//     commits on a majority — "no committed grant is ever lost" holds because a client
//     only ever observes committed state. If the leader is deposed with eagerly applied
//     but uncommitted entries, it marks itself tainted and rejoins via full snapshot.
//   * A takeover leader commits a no-op barrier entry before serving (committing the whole
//     prefix it inherited), then re-issues revocation broadcasts for every object that is
//     invalidated but not yet erased — completing any revocation the dead leader started.
//
// With no group constructed (the default), no timer fires, no message is sent, and no
// byte of Controller state changes: replication is strictly pay-for-what-you-use.

#ifndef SRC_CORE_REPLICATION_H_
#define SRC_CORE_REPLICATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cap/object_table.h"
#include "src/sim/intern.h"
#include "src/sim/span.h"
#include "src/sim/time.h"
#include "src/wire/message.h"

namespace fractos {

class Controller;
class EventLoop;

class ReplicationGroup {
 public:
  struct Params {
    Duration heartbeat = Duration::micros(500);        // append/heartbeat cadence
    Duration lease = Duration::millis(2);              // leader lease / follower patience
    // Extra candidacy delay per rank. Candidacy-by-silence is only checked at tick (=
    // heartbeat) granularity, so a stagger below one heartbeat puts adjacent ranks in the
    // same tick bucket: both stand at once, split the vote, and retry in lockstep forever.
    // SystemConfig::validate() rejects stagger < heartbeat for exactly this reason.
    Duration election_stagger = Duration::micros(500); // extra candidacy delay per rank
    Duration commit_deadline = Duration::millis(2);    // waiter gives up (entry may still commit)
    uint64_t snapshot_threshold = 4096;                // compact the applied prefix past this
  };

  enum class Role : uint8_t { kFollower = 0, kCandidate = 1, kLeader = 2 };

  // `members` must contain both `seat` (the initial leader) and the host's own address;
  // members[0] must be the seat. `seat_reboot` seeds the follower replica's reboot counter
  // so capabilities minted by the seat resolve as non-stale against the replica.
  ReplicationGroup(Controller* host, ControllerAddr seat, std::vector<ControllerAddr> members,
                   uint32_t seat_reboot, Params params);

  // Arms the tick timer and (on the seat) starts the term-1 leadership with a fresh lease.
  void start();
  // Cancels timers and fails every commit waiter with `waiter_status`.
  void stop(ErrorCode waiter_status);

  ControllerAddr seat() const { return seat_; }
  const std::vector<ControllerAddr>& members() const { return members_; }
  size_t quorum() const { return members_.size() / 2 + 1; }
  uint64_t term() const { return term_; }
  Role role() const { return role_; }
  ControllerAddr known_leader() const { return leader_; }
  bool is_leader() const { return role_ == Role::kLeader; }
  bool lease_valid() const;
  // Leader, lease fresh, and the takeover no-op barrier (if any) committed: safe to serve
  // both reads and mutations for the seat.
  bool can_serve() const;
  bool established() const { return established_; }
  bool tainted() const { return tainted_; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t applied_index() const { return applied_index_; }
  uint64_t last_index() const { return log_start_ + log_.size(); }

  // The state machine this member maintains for the seat: the host Controller's own table
  // when the member *is* the seat, the follower replica otherwise.
  ObjectTable& state();
  const ObjectTable& state() const;

  // Leader-side commit gate. The caller has already applied `op` to state() (eager apply);
  // this appends it to the log and calls `done` exactly once — kOk when the entry commits
  // on a majority, kNotLeader when this member cannot lead, kTimeout past commit_deadline
  // (the entry may still commit later: the classic unknown-outcome window).
  void replicate(ReplicatedOp op, std::function<void(ErrorCode)> done);

  // Message entry points (dispatched from Controller::on_peer_msg).
  void on_append(ControllerAddr from, const ReplAppendMsg& m);
  void on_append_reply(ControllerAddr from, const ReplAppendReplyMsg& m);
  void on_vote(ControllerAddr from, const ReplVoteMsg& m);
  void on_vote_reply(ControllerAddr from, const ReplVoteReplyMsg& m);
  void on_snapshot(ControllerAddr from, const ReplSnapshotMsg& m);

  // Channel to `peer` severed: drop its freshness; if it was the leader, expire the lease
  // and schedule a rank-staggered candidacy immediately instead of waiting out the lease.
  void on_peer_severed(ControllerAddr peer);

 private:
  struct Waiter {
    uint64_t index = 0;
    Time deadline;
    Time appended;
    SpanContext ctx;        // ambient trace at replicate() time, for the commit span
    std::function<void(ErrorCode)> done;
  };

  size_t rank_of_self() const;
  uint64_t term_of(uint64_t index) const;  // snapshot boundary and 0 handled
  void schedule_tick();
  void tick();
  void become_candidate();
  void become_leader();
  void step_down(uint64_t new_term);
  void send_appends();
  void send_append_to(ControllerAddr peer);
  void send_snapshot(ControllerAddr peer);
  void advance_commit();
  void apply_committed();
  void maybe_compact();
  void complete_waiters();
  void fail_waiters(ErrorCode code);
  template <typename M>
  void send(ControllerAddr peer, M msg);  // defined in replication.cc (only used there)
  EventLoop* loop() const;
  void bump(NameId key, int64_t delta = 1);

  Controller* host_;
  ControllerAddr seat_;
  ControllerAddr self_;
  std::vector<ControllerAddr> members_;
  Params params_;
  std::unique_ptr<ObjectTable> replica_;  // null when self_ == seat_

  Role role_ = Role::kFollower;
  uint64_t term_ = 1;
  ControllerAddr leader_ = 0;
  uint64_t voted_term_ = 0;
  ControllerAddr voted_for_ = 0;

  // log_[i] holds the entry at index log_start_ + i + 1; entries <= log_start_ are
  // compacted away (their effects live in the snapshot / applied state).
  std::vector<ReplLogEntry> log_;
  uint64_t log_start_ = 0;
  uint64_t snap_last_term_ = 0;
  uint64_t commit_index_ = 0;
  uint64_t applied_index_ = 0;
  bool established_ = false;  // this term's barrier entry committed
  bool tainted_ = false;      // eagerly applied entries lost leadership before committing

  // Leader bookkeeping.
  std::unordered_map<ControllerAddr, uint64_t> next_;
  std::unordered_map<ControllerAddr, uint64_t> match_;
  std::unordered_map<ControllerAddr, Time> last_ack_;
  uint64_t barrier_index_ = 0;  // index of this term's no-op barrier
  std::deque<Waiter> waiters_;

  // Follower / candidate bookkeeping.
  Time last_append_time_;
  Time last_candidacy_;
  std::unordered_set<ControllerAddr> votes_;
  Time candidacy_start_;
  uint64_t election_trace_ = 0;

  uint64_t epoch_ = 0;  // bumped by stop(); in-flight timers compare and bail
  bool running_ = false;

  struct Keys {
    NameId appends = kInvalidNameId;
    NameId commits = kInvalidNameId;
    NameId elections = kInvalidNameId;
    NameId snapshots_sent = kInvalidNameId;
    NameId snapshots_installed = kInvalidNameId;
    NameId divergence = kInvalidNameId;
    NameId term = kInvalidNameId;
  } keys_;
};

}  // namespace fractos

#endif  // SRC_CORE_REPLICATION_H_
