file(REMOVE_RECURSE
  "CMakeFiles/inference_pipeline.dir/inference_pipeline.cpp.o"
  "CMakeFiles/inference_pipeline.dir/inference_pipeline.cpp.o.d"
  "inference_pipeline"
  "inference_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
