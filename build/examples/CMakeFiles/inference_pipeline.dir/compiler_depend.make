# Empty compiler generated dependencies file for inference_pipeline.
# This may be replaced when dependencies are built.
