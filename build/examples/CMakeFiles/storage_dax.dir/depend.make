# Empty dependencies file for storage_dax.
# This may be replaced when dependencies are built.
