file(REMOVE_RECURSE
  "CMakeFiles/storage_dax.dir/storage_dax.cpp.o"
  "CMakeFiles/storage_dax.dir/storage_dax.cpp.o.d"
  "storage_dax"
  "storage_dax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_dax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
