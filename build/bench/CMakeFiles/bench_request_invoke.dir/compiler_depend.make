# Empty compiler generated dependencies file for bench_request_invoke.
# This may be replaced when dependencies are built.
