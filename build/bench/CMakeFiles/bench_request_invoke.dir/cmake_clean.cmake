file(REMOVE_RECURSE
  "CMakeFiles/bench_request_invoke.dir/bench_request_invoke.cc.o"
  "CMakeFiles/bench_request_invoke.dir/bench_request_invoke.cc.o.d"
  "bench_request_invoke"
  "bench_request_invoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_request_invoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
