file(REMOVE_RECURSE
  "CMakeFiles/bench_null_latency.dir/bench_null_latency.cc.o"
  "CMakeFiles/bench_null_latency.dir/bench_null_latency.cc.o.d"
  "bench_null_latency"
  "bench_null_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_null_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
