file(REMOVE_RECURSE
  "CMakeFiles/bench_memcopy.dir/bench_memcopy.cc.o"
  "CMakeFiles/bench_memcopy.dir/bench_memcopy.cc.o.d"
  "bench_memcopy"
  "bench_memcopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
