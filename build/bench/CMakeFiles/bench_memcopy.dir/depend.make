# Empty dependencies file for bench_memcopy.
# This may be replaced when dependencies are built.
