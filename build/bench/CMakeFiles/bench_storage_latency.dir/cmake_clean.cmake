file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_latency.dir/bench_storage_latency.cc.o"
  "CMakeFiles/bench_storage_latency.dir/bench_storage_latency.cc.o.d"
  "bench_storage_latency"
  "bench_storage_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
