# Empty dependencies file for bench_storage_latency.
# This may be replaced when dependencies are built.
