# Empty dependencies file for bench_storage_throughput.
# This may be replaced when dependencies are built.
