file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_throughput.dir/bench_storage_throughput.cc.o"
  "CMakeFiles/bench_storage_throughput.dir/bench_storage_throughput.cc.o.d"
  "bench_storage_throughput"
  "bench_storage_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
