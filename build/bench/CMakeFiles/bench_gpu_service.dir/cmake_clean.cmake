file(REMOVE_RECURSE
  "CMakeFiles/bench_gpu_service.dir/bench_gpu_service.cc.o"
  "CMakeFiles/bench_gpu_service.dir/bench_gpu_service.cc.o.d"
  "bench_gpu_service"
  "bench_gpu_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpu_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
