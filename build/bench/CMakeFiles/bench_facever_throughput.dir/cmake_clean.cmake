file(REMOVE_RECURSE
  "CMakeFiles/bench_facever_throughput.dir/bench_facever_throughput.cc.o"
  "CMakeFiles/bench_facever_throughput.dir/bench_facever_throughput.cc.o.d"
  "bench_facever_throughput"
  "bench_facever_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_facever_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
