# Empty dependencies file for bench_facever_throughput.
# This may be replaced when dependencies are built.
