# Empty dependencies file for bench_facever_latency.
# This may be replaced when dependencies are built.
