file(REMOVE_RECURSE
  "CMakeFiles/bench_facever_latency.dir/bench_facever_latency.cc.o"
  "CMakeFiles/bench_facever_latency.dir/bench_facever_latency.cc.o.d"
  "bench_facever_latency"
  "bench_facever_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_facever_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
