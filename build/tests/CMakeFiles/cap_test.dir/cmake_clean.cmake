file(REMOVE_RECURSE
  "CMakeFiles/cap_test.dir/cap_test.cc.o"
  "CMakeFiles/cap_test.dir/cap_test.cc.o.d"
  "cap_test"
  "cap_test.pdb"
  "cap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
