# Empty compiler generated dependencies file for cloud_inference_test.
# This may be replaced when dependencies are built.
