file(REMOVE_RECURSE
  "CMakeFiles/cloud_inference_test.dir/cloud_inference_test.cc.o"
  "CMakeFiles/cloud_inference_test.dir/cloud_inference_test.cc.o.d"
  "cloud_inference_test"
  "cloud_inference_test.pdb"
  "cloud_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
