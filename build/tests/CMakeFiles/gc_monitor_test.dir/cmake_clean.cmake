file(REMOVE_RECURSE
  "CMakeFiles/gc_monitor_test.dir/gc_monitor_test.cc.o"
  "CMakeFiles/gc_monitor_test.dir/gc_monitor_test.cc.o.d"
  "gc_monitor_test"
  "gc_monitor_test.pdb"
  "gc_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
