# Empty dependencies file for gc_monitor_test.
# This may be replaced when dependencies are built.
