file(REMOVE_RECURSE
  "CMakeFiles/services_edge_test.dir/services_edge_test.cc.o"
  "CMakeFiles/services_edge_test.dir/services_edge_test.cc.o.d"
  "services_edge_test"
  "services_edge_test.pdb"
  "services_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/services_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
