# Empty dependencies file for services_edge_test.
# This may be replaced when dependencies are built.
