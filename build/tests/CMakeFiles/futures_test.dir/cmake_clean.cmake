file(REMOVE_RECURSE
  "CMakeFiles/futures_test.dir/futures_test.cc.o"
  "CMakeFiles/futures_test.dir/futures_test.cc.o.d"
  "futures_test"
  "futures_test.pdb"
  "futures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
