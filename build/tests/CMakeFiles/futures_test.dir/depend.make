# Empty dependencies file for futures_test.
# This may be replaced when dependencies are built.
