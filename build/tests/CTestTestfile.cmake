# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/futures_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/cap_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/bootstrap_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/param_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/composition_test[1]_include.cmake")
include("/root/repo/build/tests/gc_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/trace_stats_test[1]_include.cmake")
include("/root/repo/build/tests/services_edge_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_inference_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
