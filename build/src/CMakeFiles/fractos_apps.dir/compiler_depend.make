# Empty compiler generated dependencies file for fractos_apps.
# This may be replaced when dependencies are built.
