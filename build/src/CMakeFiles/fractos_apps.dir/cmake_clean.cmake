file(REMOVE_RECURSE
  "CMakeFiles/fractos_apps.dir/apps/cloud_inference.cc.o"
  "CMakeFiles/fractos_apps.dir/apps/cloud_inference.cc.o.d"
  "CMakeFiles/fractos_apps.dir/apps/face_verify.cc.o"
  "CMakeFiles/fractos_apps.dir/apps/face_verify.cc.o.d"
  "libfractos_apps.a"
  "libfractos_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractos_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
