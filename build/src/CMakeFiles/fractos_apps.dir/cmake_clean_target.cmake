file(REMOVE_RECURSE
  "libfractos_apps.a"
)
