
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap.cc" "src/CMakeFiles/fractos_core.dir/core/bootstrap.cc.o" "gcc" "src/CMakeFiles/fractos_core.dir/core/bootstrap.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/CMakeFiles/fractos_core.dir/core/controller.cc.o" "gcc" "src/CMakeFiles/fractos_core.dir/core/controller.cc.o.d"
  "/root/repo/src/core/node_monitor.cc" "src/CMakeFiles/fractos_core.dir/core/node_monitor.cc.o" "gcc" "src/CMakeFiles/fractos_core.dir/core/node_monitor.cc.o.d"
  "/root/repo/src/core/process.cc" "src/CMakeFiles/fractos_core.dir/core/process.cc.o" "gcc" "src/CMakeFiles/fractos_core.dir/core/process.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/fractos_core.dir/core/system.cc.o" "gcc" "src/CMakeFiles/fractos_core.dir/core/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fractos_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
