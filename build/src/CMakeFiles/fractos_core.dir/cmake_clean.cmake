file(REMOVE_RECURSE
  "CMakeFiles/fractos_core.dir/core/bootstrap.cc.o"
  "CMakeFiles/fractos_core.dir/core/bootstrap.cc.o.d"
  "CMakeFiles/fractos_core.dir/core/controller.cc.o"
  "CMakeFiles/fractos_core.dir/core/controller.cc.o.d"
  "CMakeFiles/fractos_core.dir/core/node_monitor.cc.o"
  "CMakeFiles/fractos_core.dir/core/node_monitor.cc.o.d"
  "CMakeFiles/fractos_core.dir/core/process.cc.o"
  "CMakeFiles/fractos_core.dir/core/process.cc.o.d"
  "CMakeFiles/fractos_core.dir/core/system.cc.o"
  "CMakeFiles/fractos_core.dir/core/system.cc.o.d"
  "libfractos_core.a"
  "libfractos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
