# Empty dependencies file for fractos_core.
# This may be replaced when dependencies are built.
