file(REMOVE_RECURSE
  "libfractos_core.a"
)
