
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cap/cap_space.cc" "src/CMakeFiles/fractos_cap.dir/cap/cap_space.cc.o" "gcc" "src/CMakeFiles/fractos_cap.dir/cap/cap_space.cc.o.d"
  "/root/repo/src/cap/object_table.cc" "src/CMakeFiles/fractos_cap.dir/cap/object_table.cc.o" "gcc" "src/CMakeFiles/fractos_cap.dir/cap/object_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fractos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
