file(REMOVE_RECURSE
  "libfractos_cap.a"
)
