file(REMOVE_RECURSE
  "CMakeFiles/fractos_cap.dir/cap/cap_space.cc.o"
  "CMakeFiles/fractos_cap.dir/cap/cap_space.cc.o.d"
  "CMakeFiles/fractos_cap.dir/cap/object_table.cc.o"
  "CMakeFiles/fractos_cap.dir/cap/object_table.cc.o.d"
  "libfractos_cap.a"
  "libfractos_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractos_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
