# Empty compiler generated dependencies file for fractos_cap.
# This may be replaced when dependencies are built.
