file(REMOVE_RECURSE
  "libfractos_devices.a"
)
