# Empty compiler generated dependencies file for fractos_devices.
# This may be replaced when dependencies are built.
