file(REMOVE_RECURSE
  "CMakeFiles/fractos_devices.dir/devices/gpu.cc.o"
  "CMakeFiles/fractos_devices.dir/devices/gpu.cc.o.d"
  "CMakeFiles/fractos_devices.dir/devices/nvme.cc.o"
  "CMakeFiles/fractos_devices.dir/devices/nvme.cc.o.d"
  "libfractos_devices.a"
  "libfractos_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractos_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
