# Empty compiler generated dependencies file for fractos_services.
# This may be replaced when dependencies are built.
