file(REMOVE_RECURSE
  "libfractos_services.a"
)
