file(REMOVE_RECURSE
  "CMakeFiles/fractos_services.dir/services/block_adaptor.cc.o"
  "CMakeFiles/fractos_services.dir/services/block_adaptor.cc.o.d"
  "CMakeFiles/fractos_services.dir/services/fs.cc.o"
  "CMakeFiles/fractos_services.dir/services/fs.cc.o.d"
  "CMakeFiles/fractos_services.dir/services/gpu_adaptor.cc.o"
  "CMakeFiles/fractos_services.dir/services/gpu_adaptor.cc.o.d"
  "libfractos_services.a"
  "libfractos_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractos_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
