# Empty dependencies file for fractos_wire.
# This may be replaced when dependencies are built.
