file(REMOVE_RECURSE
  "CMakeFiles/fractos_wire.dir/wire/buffer.cc.o"
  "CMakeFiles/fractos_wire.dir/wire/buffer.cc.o.d"
  "CMakeFiles/fractos_wire.dir/wire/message.cc.o"
  "CMakeFiles/fractos_wire.dir/wire/message.cc.o.d"
  "libfractos_wire.a"
  "libfractos_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractos_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
