file(REMOVE_RECURSE
  "libfractos_wire.a"
)
