# Empty compiler generated dependencies file for fractos_sim.
# This may be replaced when dependencies are built.
