file(REMOVE_RECURSE
  "libfractos_sim.a"
)
