file(REMOVE_RECURSE
  "CMakeFiles/fractos_sim.dir/sim/event_loop.cc.o"
  "CMakeFiles/fractos_sim.dir/sim/event_loop.cc.o.d"
  "CMakeFiles/fractos_sim.dir/sim/exec_context.cc.o"
  "CMakeFiles/fractos_sim.dir/sim/exec_context.cc.o.d"
  "CMakeFiles/fractos_sim.dir/sim/stats.cc.o"
  "CMakeFiles/fractos_sim.dir/sim/stats.cc.o.d"
  "libfractos_sim.a"
  "libfractos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
