# Empty compiler generated dependencies file for fractos_baselines.
# This may be replaced when dependencies are built.
