file(REMOVE_RECURSE
  "libfractos_baselines.a"
)
