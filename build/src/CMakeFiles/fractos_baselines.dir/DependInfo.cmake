
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline_fs.cc" "src/CMakeFiles/fractos_baselines.dir/baselines/baseline_fs.cc.o" "gcc" "src/CMakeFiles/fractos_baselines.dir/baselines/baseline_fs.cc.o.d"
  "/root/repo/src/baselines/nfs.cc" "src/CMakeFiles/fractos_baselines.dir/baselines/nfs.cc.o" "gcc" "src/CMakeFiles/fractos_baselines.dir/baselines/nfs.cc.o.d"
  "/root/repo/src/baselines/nvmeof.cc" "src/CMakeFiles/fractos_baselines.dir/baselines/nvmeof.cc.o" "gcc" "src/CMakeFiles/fractos_baselines.dir/baselines/nvmeof.cc.o.d"
  "/root/repo/src/baselines/page_cache.cc" "src/CMakeFiles/fractos_baselines.dir/baselines/page_cache.cc.o" "gcc" "src/CMakeFiles/fractos_baselines.dir/baselines/page_cache.cc.o.d"
  "/root/repo/src/baselines/pipeline.cc" "src/CMakeFiles/fractos_baselines.dir/baselines/pipeline.cc.o" "gcc" "src/CMakeFiles/fractos_baselines.dir/baselines/pipeline.cc.o.d"
  "/root/repo/src/baselines/rcuda.cc" "src/CMakeFiles/fractos_baselines.dir/baselines/rcuda.cc.o" "gcc" "src/CMakeFiles/fractos_baselines.dir/baselines/rcuda.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fractos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_services.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
