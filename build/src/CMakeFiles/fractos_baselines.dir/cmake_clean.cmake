file(REMOVE_RECURSE
  "CMakeFiles/fractos_baselines.dir/baselines/baseline_fs.cc.o"
  "CMakeFiles/fractos_baselines.dir/baselines/baseline_fs.cc.o.d"
  "CMakeFiles/fractos_baselines.dir/baselines/nfs.cc.o"
  "CMakeFiles/fractos_baselines.dir/baselines/nfs.cc.o.d"
  "CMakeFiles/fractos_baselines.dir/baselines/nvmeof.cc.o"
  "CMakeFiles/fractos_baselines.dir/baselines/nvmeof.cc.o.d"
  "CMakeFiles/fractos_baselines.dir/baselines/page_cache.cc.o"
  "CMakeFiles/fractos_baselines.dir/baselines/page_cache.cc.o.d"
  "CMakeFiles/fractos_baselines.dir/baselines/pipeline.cc.o"
  "CMakeFiles/fractos_baselines.dir/baselines/pipeline.cc.o.d"
  "CMakeFiles/fractos_baselines.dir/baselines/rcuda.cc.o"
  "CMakeFiles/fractos_baselines.dir/baselines/rcuda.cc.o.d"
  "libfractos_baselines.a"
  "libfractos_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractos_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
