file(REMOVE_RECURSE
  "CMakeFiles/fractos_fabric.dir/fabric/network.cc.o"
  "CMakeFiles/fractos_fabric.dir/fabric/network.cc.o.d"
  "CMakeFiles/fractos_fabric.dir/fabric/node.cc.o"
  "CMakeFiles/fractos_fabric.dir/fabric/node.cc.o.d"
  "CMakeFiles/fractos_fabric.dir/fabric/params.cc.o"
  "CMakeFiles/fractos_fabric.dir/fabric/params.cc.o.d"
  "CMakeFiles/fractos_fabric.dir/fabric/queue_pair.cc.o"
  "CMakeFiles/fractos_fabric.dir/fabric/queue_pair.cc.o.d"
  "libfractos_fabric.a"
  "libfractos_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractos_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
