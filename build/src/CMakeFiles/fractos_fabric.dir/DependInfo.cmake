
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/network.cc" "src/CMakeFiles/fractos_fabric.dir/fabric/network.cc.o" "gcc" "src/CMakeFiles/fractos_fabric.dir/fabric/network.cc.o.d"
  "/root/repo/src/fabric/node.cc" "src/CMakeFiles/fractos_fabric.dir/fabric/node.cc.o" "gcc" "src/CMakeFiles/fractos_fabric.dir/fabric/node.cc.o.d"
  "/root/repo/src/fabric/params.cc" "src/CMakeFiles/fractos_fabric.dir/fabric/params.cc.o" "gcc" "src/CMakeFiles/fractos_fabric.dir/fabric/params.cc.o.d"
  "/root/repo/src/fabric/queue_pair.cc" "src/CMakeFiles/fractos_fabric.dir/fabric/queue_pair.cc.o" "gcc" "src/CMakeFiles/fractos_fabric.dir/fabric/queue_pair.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fractos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fractos_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
