file(REMOVE_RECURSE
  "libfractos_fabric.a"
)
