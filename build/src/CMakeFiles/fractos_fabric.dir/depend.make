# Empty dependencies file for fractos_fabric.
# This may be replaced when dependencies are built.
