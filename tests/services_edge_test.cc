// Edge cases and stress for the service layer: malformed invocations, slot exhaustion under
// concurrency, streaming-internals behaviour, permission boundaries, and multi-tenant
// isolation through the capability system.

#include <gtest/gtest.h>

#include <memory>

#include "src/services/block_adaptor.h"
#include "src/services/fs.h"
#include "src/services/gpu_adaptor.h"
#include "src/sim/rng.h"

namespace fractos {
namespace {

std::vector<uint8_t> random_bytes(uint64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) {
    b = rng.next_byte();
  }
  return v;
}

class ServiceEdgeTest : public ::testing::Test {
 protected:
  ServiceEdgeTest() {
    n0_ = sys_.add_node("client-node");
    n1_ = sys_.add_node("service-node");
    c0_ = &sys_.add_controller(n0_, Loc::kHost);
    c1_ = &sys_.add_controller(n1_, Loc::kHost);
  }

  System sys_;
  uint32_t n0_ = 0, n1_ = 0;
  Controller *c0_ = nullptr, *c1_ = nullptr;
};

// --- GPU adaptor ------------------------------------------------------------------------------

TEST_F(ServiceEdgeTest, GpuInvokeWithoutContinuationsInvokesErrorIfAny) {
  SimGpu gpu(&sys_.net(), n1_);
  GpuAdaptor adaptor(&sys_, *c1_, &gpu);
  adaptor.register_kernel("k", [](PoolBytes&, const std::vector<uint64_t>&) {
    return Duration::micros(1);
  });
  Process& client = sys_.spawn("client", n0_, *c0_);
  const CapId init =
      sys_.bootstrap_grant(adaptor.process(), adaptor.init_endpoint(), client).value();
  auto session = sys_.await_ok(GpuClient::init(client, init));
  const CapId kernel = sys_.await_ok(GpuClient::load(client, session, "k"));

  // Malformed: a single Request argument (needs success AND error). The adaptor must not
  // launch, must not crash, and must signal the one Request it got.
  bool signalled = false;
  const CapId only = sys_.await_ok(client.serve({}, [&](Process::Received) {
    signalled = true;
  }));
  ASSERT_TRUE(sys_.await(client.request_invoke(kernel, Process::Args{}.cap(only))).ok());
  sys_.loop().run();
  EXPECT_TRUE(signalled);
  EXPECT_EQ(gpu.launches(), 0u);

  // Malformed: an odd number of Memory caps (copy pairs must be even).
  signalled = false;
  const CapId mem = sys_.await_ok(client.memory_create(client.alloc(64), 64, Perms::kRead));
  const CapId ok_ep = sys_.await_ok(client.serve({}, [](Process::Received) {}));
  const CapId err_ep = sys_.await_ok(client.serve({}, [&](Process::Received) {
    signalled = true;
  }));
  ASSERT_TRUE(sys_.await(client.request_invoke(
                             kernel, Process::Args{}.cap(mem).cap(ok_ep).cap(err_ep)))
                  .ok());
  sys_.loop().run();
  EXPECT_TRUE(signalled);
  EXPECT_EQ(gpu.launches(), 0u);
}

TEST_F(ServiceEdgeTest, GpuTwoTenantsCannotTouchEachOthersBuffers) {
  SimGpu gpu(&sys_.net(), n1_);
  GpuAdaptor adaptor(&sys_, *c1_, &gpu);
  Process& tenant_a = sys_.spawn("tenant-a", n0_, *c0_);
  Process& tenant_b = sys_.spawn("tenant-b", n0_, *c0_);
  const CapId init_a =
      sys_.bootstrap_grant(adaptor.process(), adaptor.init_endpoint(), tenant_a).value();
  const CapId init_b =
      sys_.bootstrap_grant(adaptor.process(), adaptor.init_endpoint(), tenant_b).value();
  auto sa = sys_.await_ok(GpuClient::init(tenant_a, init_a));
  auto sb = sys_.await_ok(GpuClient::init(tenant_b, init_b));
  auto buf_a = sys_.await_ok(GpuClient::alloc(tenant_a, sa, 4096));
  auto buf_b = sys_.await_ok(GpuClient::alloc(tenant_b, sb, 4096));
  EXPECT_NE(buf_a.device_addr, buf_b.device_addr);

  // Tenant B never received a capability to A's buffer; it cannot even NAME it — the cid
  // space is per-process, so using A's cid value from B's space hits whatever B has there
  // (or nothing), never A's buffer. Verify the cid is meaningless in B's space:
  auto entry = c0_->inspect_cap(tenant_b.pid(), buf_a.mem);
  if (entry.ok()) {
    EXPECT_NE(entry.value().mem.addr, buf_a.device_addr);
  }
  // And after A's cleanup, B's session still works (isolation of contexts).
  ASSERT_TRUE(sys_.await(GpuClient::cleanup(tenant_a, sa)).ok());
  sys_.loop().run();
  auto buf_b2 = sys_.await_ok(GpuClient::alloc(tenant_b, sb, 1024));
  EXPECT_NE(buf_b2.mem, kInvalidCap);
}

// --- block adaptor -----------------------------------------------------------------------------

TEST_F(ServiceEdgeTest, BlockStreamingPreservesBytesAtSubChunkBoundaries) {
  auto nvme = std::make_unique<SimNvme>(&sys_.loop());
  BlockAdaptor::Params p;
  p.stream_chunk = 8 << 10;  // force many sub-chunks
  BlockAdaptor adaptor(&sys_, n1_, *c1_, nvme.get(), p);
  Process& client = sys_.spawn("client", n0_, *c0_, 4 << 20);
  const CapId mgmt =
      sys_.bootstrap_grant(adaptor.process(), adaptor.mgmt_endpoint(), client).value();
  auto vol = sys_.await_ok(BlockClient::create_volume(client, mgmt, 2 << 20));

  // An awkward size: not a multiple of the sub-chunk.
  const uint64_t size = (8 << 10) * 5 + 1234;
  const auto data = random_bytes(size, 99);
  const uint64_t addr = client.alloc(size);
  client.write_mem(addr, data);
  const CapId buf = sys_.await_ok(client.memory_create(addr, size, Perms::kReadWrite));
  ASSERT_TRUE(sys_.await(BlockClient::write(client, vol, 4096, size, buf)).ok());
  client.write_mem(addr, std::vector<uint8_t>(size, 0));
  ASSERT_TRUE(sys_.await(BlockClient::read(client, vol, 4096, size, buf)).ok());
  EXPECT_EQ(client.read_mem(addr, size), data);
  EXPECT_EQ(nvme->peek(4096, size), data);
}

TEST_F(ServiceEdgeTest, BlockReadFailsCleanlyWhenDestinationRevokedMidStream) {
  auto nvme = std::make_unique<SimNvme>(&sys_.loop());
  BlockAdaptor adaptor(&sys_, n1_, *c1_, nvme.get());
  Process& client = sys_.spawn("client", n0_, *c0_, 4 << 20);
  const CapId mgmt =
      sys_.bootstrap_grant(adaptor.process(), adaptor.mgmt_endpoint(), client).value();
  auto vol = sys_.await_ok(BlockClient::create_volume(client, mgmt, 2 << 20));
  const uint64_t size = 1 << 20;
  const uint64_t addr = client.alloc(size);
  const CapId buf = sys_.await_ok(client.memory_create(addr, size, Perms::kReadWrite));

  auto io = BlockClient::read(client, vol, 0, size, buf);
  // The device read takes ~70us before the first network copy; the (loopback, ~3us) revoke
  // lands well before it, so every RDMA into the destination must be refused.
  sys_.loop().run(10);
  ASSERT_TRUE(sys_.await(client.cap_revoke(buf)).ok());
  sys_.loop().run();
  ASSERT_TRUE(io.ready());
  EXPECT_FALSE(io.peek().ok());  // the RDMA into the revoked buffer was refused
}

TEST_F(ServiceEdgeTest, VolumeIsolationBetweenTenants) {
  auto nvme = std::make_unique<SimNvme>(&sys_.loop());
  BlockAdaptor adaptor(&sys_, n1_, *c1_, nvme.get());
  Process& a = sys_.spawn("a", n0_, *c0_);
  Process& b = sys_.spawn("b", n0_, *c0_);
  const CapId mgmt_a =
      sys_.bootstrap_grant(adaptor.process(), adaptor.mgmt_endpoint(), a).value();
  const CapId mgmt_b =
      sys_.bootstrap_grant(adaptor.process(), adaptor.mgmt_endpoint(), b).value();
  auto vol_a = sys_.await_ok(BlockClient::create_volume(a, mgmt_a, 64 << 10));
  auto vol_b = sys_.await_ok(BlockClient::create_volume(b, mgmt_b, 64 << 10));

  // Each tenant writes its own pattern at volume offset 0; they land at different device
  // locations — no interference.
  const auto da = random_bytes(4096, 1);
  const auto db = random_bytes(4096, 2);
  const CapId ba = sys_.await_ok(a.memory_create(a.alloc(4096), 4096, Perms::kReadWrite));
  const CapId bb = sys_.await_ok(b.memory_create(b.alloc(4096), 4096, Perms::kReadWrite));
  a.write_mem(0, da);
  b.write_mem(0, db);
  ASSERT_TRUE(sys_.await(BlockClient::write(a, vol_a, 0, 4096, ba)).ok());
  ASSERT_TRUE(sys_.await(BlockClient::write(b, vol_b, 0, 4096, bb)).ok());
  a.write_mem(0, std::vector<uint8_t>(4096, 0));
  ASSERT_TRUE(sys_.await(BlockClient::read(a, vol_a, 0, 4096, ba)).ok());
  EXPECT_EQ(a.read_mem(0, 4096), da);

  // Destroying A's volume leaves B untouched.
  ASSERT_TRUE(sys_.await(BlockClient::destroy(a, vol_a)).ok());
  sys_.loop().run();
  b.write_mem(0, std::vector<uint8_t>(4096, 0));
  ASSERT_TRUE(sys_.await(BlockClient::read(b, vol_b, 0, 4096, bb)).ok());
  EXPECT_EQ(b.read_mem(0, 4096), db);
}

// --- FS ---------------------------------------------------------------------------------------

class FsEdgeTest : public ::testing::Test {
 protected:
  FsEdgeTest() {
    cn_ = sys_.add_node("client");
    fn_ = sys_.add_node("fs");
    sn_ = sys_.add_node("storage");
    cc_ = &sys_.add_controller(cn_, Loc::kHost);
    cf_ = &sys_.add_controller(fn_, Loc::kHost);
    cs_ = &sys_.add_controller(sn_, Loc::kHost);
    nvme_ = std::make_unique<SimNvme>(&sys_.loop());
    block_ = std::make_unique<BlockAdaptor>(&sys_, sn_, *cs_, nvme_.get());
    FsService::Params p;
    p.staging_slots = 2;  // tiny pool: concurrency must queue, not break
    p.extent_bytes = 128 << 10;
    fs_ = FsService::bootstrap(&sys_, fn_, *cf_, block_->process(), block_->mgmt_endpoint(), p);
    client_ = &sys_.spawn("client", cn_, *cc_, 8 << 20);
    create_ = sys_.bootstrap_grant(fs_->process(), fs_->create_endpoint(), *client_).value();
    open_ = sys_.bootstrap_grant(fs_->process(), fs_->open_endpoint(), *client_).value();
  }

  System sys_;
  uint32_t cn_ = 0, fn_ = 0, sn_ = 0;
  Controller *cc_ = nullptr, *cf_ = nullptr, *cs_ = nullptr;
  std::unique_ptr<SimNvme> nvme_;
  std::unique_ptr<BlockAdaptor> block_;
  std::unique_ptr<FsService> fs_;
  Process* client_ = nullptr;
  CapId create_ = kInvalidCap, open_ = kInvalidCap;
};

TEST_F(FsEdgeTest, ManyConcurrentOpsOnTinySlotPool) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_, "f", 4 << 20)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_, "f", true, false));
  constexpr int kOps = 12;
  std::vector<CapId> bufs;
  std::vector<uint64_t> addrs;
  std::vector<std::vector<uint8_t>> datas;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t addr = client_->alloc(64 << 10);
    addrs.push_back(addr);
    datas.push_back(random_bytes(64 << 10, 1000 + static_cast<uint64_t>(i)));
    client_->write_mem(addr, datas.back());
    bufs.push_back(
        sys_.await_ok(client_->memory_create(addr, 64 << 10, Perms::kReadWrite)));
  }
  std::vector<Future<Status>> writes;
  for (int i = 0; i < kOps; ++i) {
    writes.push_back(FsClient::write(*client_, f, static_cast<uint64_t>(i) * (64 << 10),
                                     64 << 10, bufs[static_cast<size_t>(i)]));
  }
  for (auto& w : writes) {
    ASSERT_TRUE(sys_.await(std::move(w)).ok());
  }
  // All content must have survived concurrent staged streaming through just 2 slots.
  for (int i = 0; i < kOps; ++i) {
    client_->write_mem(addrs[static_cast<size_t>(i)], std::vector<uint8_t>(64 << 10, 0));
    ASSERT_TRUE(sys_.await(FsClient::read(*client_, f, static_cast<uint64_t>(i) * (64 << 10),
                                          64 << 10, bufs[static_cast<size_t>(i)]))
                    .ok());
    EXPECT_EQ(client_->read_mem(addrs[static_cast<size_t>(i)], 64 << 10),
              datas[static_cast<size_t>(i)])
        << "op " << i;
  }
}

TEST_F(FsEdgeTest, ZeroAndOversizeIosRejected) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_, "f", 64 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_, "f", true, false));
  const CapId buf =
      sys_.await_ok(client_->memory_create(client_->alloc(4096), 4096, Perms::kReadWrite));
  EXPECT_FALSE(sys_.await(FsClient::read(*client_, f, 0, 0, buf)).ok());
  EXPECT_FALSE(sys_.await(FsClient::read(*client_, f, 60 << 10, 8 << 10, buf)).ok());
  EXPECT_FALSE(sys_.await(FsClient::write(*client_, f, (64 << 10) - 1, 2, buf)).ok());
}

TEST_F(FsEdgeTest, BufferSmallerThanIoRejected) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_, "f", 64 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_, "f", true, false));
  const CapId small =
      sys_.await_ok(client_->memory_create(client_->alloc(1024), 1024, Perms::kReadWrite));
  EXPECT_FALSE(sys_.await(FsClient::read(*client_, f, 0, 4096, small)).ok());
}

TEST_F(FsEdgeTest, CreateZeroSizedFileRejected) {
  EXPECT_FALSE(sys_.await(FsClient::create(*client_, create_, "zero", 0)).ok());
}

TEST_F(FsEdgeTest, DoubleCloseFailsSecondTime) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_, "f", 4096)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_, "f", false, false));
  ASSERT_TRUE(sys_.await(FsClient::close(*client_, f)).ok());
  sys_.loop().run();
  EXPECT_FALSE(sys_.await(FsClient::close(*client_, f)).ok());
}

TEST_F(FsEdgeTest, ReadOnlyDaxCapCannotBeEscalatedByDiminish) {
  // A client holding a DAX read child cannot conjure write authority from it: diminish can
  // only narrow, and the write endpoints were never delivered for an RO open.
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_, "f", 64 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_, "f", /*rw=*/false, /*dax=*/true));
  ASSERT_EQ(f.write_eps.size(), 0u);
  // The read endpoint is a Request capability; memory_diminish on it is a kind error.
  EXPECT_EQ(sys_.await(client_->memory_diminish(f.read_eps[0], 0, 1, Perms::kNone)).error(),
            ErrorCode::kWrongObjectKind);
}

}  // namespace
}  // namespace fractos
