// Tests for the baseline stacks: page cache, NVMe-oF, NFS, rCUDA, the baseline FS, and the
// three pipeline drive modes of Fig. 8.

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/baseline_fs.h"
#include "src/baselines/nfs.h"
#include "src/baselines/nvmeof.h"
#include "src/baselines/page_cache.h"
#include "src/baselines/pipeline.h"
#include "src/baselines/rcuda.h"
#include "src/services/fs.h"
#include "src/sim/rng.h"

namespace fractos {
namespace {

std::vector<uint8_t> pattern(size_t n, uint8_t seed = 1) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return v;
}

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest() : nvme_(&loop_), dev_(&nvme_), cache_(&loop_, &dev_) {}

  Result<std::vector<uint8_t>> read_sync(BlockDevice& d, uint64_t off, uint64_t size) {
    Result<std::vector<uint8_t>> out = ErrorCode::kInternal;
    bool done = false;
    d.read(off, size, [&](Result<Payload> r) {
      if (r.ok()) {
        out = r.value().to_vector();
      } else {
        out = r.error();
      }
      done = true;
    });
    loop_.run();
    EXPECT_TRUE(done);
    return out;
  }

  EventLoop loop_;
  SimNvme nvme_;
  LocalNvmeDevice dev_;
  PageCache cache_;
};

TEST_F(PageCacheTest, MissThenHitServesSameData) {
  nvme_.poke(8192, pattern(4096, 5));
  auto first = read_sync(cache_, 8192, 4096);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache_.misses(), 1u);
  const Time after_miss = loop_.now();
  auto second = read_sync(cache_, 8192, 4096);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(cache_.hits(), 1u);
  // The hit is orders of magnitude faster than the 70us flash read.
  EXPECT_LT((loop_.now() - after_miss).to_us(), 5.0);
}

TEST_F(PageCacheTest, SequentialReadsTriggerReadahead) {
  // Sequential 4 KiB reads: after the first miss, the read-ahead window prefetches, so
  // subsequent reads hit.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(read_sync(cache_, static_cast<uint64_t>(i) * 4096, 4096).ok());
  }
  EXPECT_GE(cache_.readahead_fetches(), 1u);
  EXPECT_GE(cache_.hits(), 25u);  // the vast majority hit
  EXPECT_LE(cache_.misses(), 3u);
}

TEST_F(PageCacheTest, RandomReadsMostlyMiss) {
  Rng rng(5);
  for (int i = 0; i < 16; ++i) {
    const uint64_t off = rng.next_below(1 << 20) * 4096;
    ASSERT_TRUE(read_sync(cache_, off, 4096).ok());
  }
  EXPECT_GE(cache_.misses(), 14u);  // "the Linux cache ... is ineffective in this case"
}

TEST_F(PageCacheTest, WritesAbsorbedAndReadBack) {
  const auto data = pattern(16384, 9);
  bool done = false;
  const Time start = loop_.now();
  cache_.write(4096, data, [&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  loop_.run_until([&]() { return done; });
  // Absorbed: completes at memcpy speed, far below the device write latency.
  EXPECT_LT((loop_.now() - start).to_us(), 10.0);
  auto r = read_sync(cache_, 4096, 16384);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), data);
  loop_.run();  // drain the background write-back
  EXPECT_EQ(nvme_.peek(4096, 16384), data);
}

TEST_F(PageCacheTest, LruEvictionBoundsMemory) {
  PageCache::Params p;
  p.capacity_pages = 8;
  PageCache small(&loop_, &dev_, p);
  for (int i = 0; i < 64; ++i) {
    bool done = false;
    small.read(static_cast<uint64_t>(i) * 65536, 4096,
               [&](Result<Payload>) { done = true; });
    loop_.run();
    ASSERT_TRUE(done);
  }
  EXPECT_LE(small.cached_pages(), 8u);
}

class NvmeofTest : public ::testing::Test {
 protected:
  NvmeofTest() : net_(&loop_), nvme_(&loop_) {
    fs_node_ = net_.add_node("fs");
    storage_node_ = net_.add_node("storage");
    target_ = std::make_unique<NvmeofTarget>(&net_, storage_node_, &nvme_);
    initiator_ = std::make_unique<NvmeofInitiator>(&net_, fs_node_, target_.get());
  }

  EventLoop loop_;
  Network net_;
  SimNvme nvme_;
  uint32_t fs_node_ = 0, storage_node_ = 0;
  std::unique_ptr<NvmeofTarget> target_;
  std::unique_ptr<NvmeofInitiator> initiator_;
};

TEST_F(NvmeofTest, RemoteReadWriteRoundTrip) {
  const auto data = pattern(8192, 3);
  Status ws = ErrorCode::kInternal;
  initiator_->write(4096, data, [&](Status s) { ws = s; });
  loop_.run();
  ASSERT_TRUE(ws.ok());
  Result<Payload> r = ErrorCode::kInternal;
  initiator_->read(4096, 8192, [&](Result<Payload> rr) { r = std::move(rr); });
  loop_.run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().bytes(), data);
}

TEST_F(NvmeofTest, ReadLatencyIsRttPlusDevice) {
  Result<Payload> r = ErrorCode::kInternal;
  const Time start = loop_.now();
  initiator_->read(0, 4096, [&](Result<Payload> rr) { r = std::move(rr); });
  loop_.run();
  ASSERT_TRUE(r.ok());
  const double us = (loop_.now() - start).to_us();
  // ~ 2 * 1.65us wire + 2us target + ~69us device + ~3.3us data serialization.
  EXPECT_NEAR(us, 78.0, 4.0);
}

class NfsTest : public ::testing::Test {
 protected:
  NfsTest() : net_(&loop_), nvme_(&loop_), dev_(&nvme_), cache_(&loop_, &dev_) {
    frontend_ = net_.add_node("frontend");
    fs_node_ = net_.add_node("fs");
    server_ = std::make_unique<NfsServer>(&net_, fs_node_, &cache_);
    client_ = std::make_unique<NfsClient>(&net_, frontend_, server_.get());
  }

  template <typename T>
  T await(Future<T> f) {
    loop_.run_until([&]() { return f.ready(); });
    return f.take();
  }

  EventLoop loop_;
  Network net_;
  SimNvme nvme_;
  LocalNvmeDevice dev_;
  PageCache cache_;
  uint32_t frontend_ = 0, fs_node_ = 0;
  std::unique_ptr<NfsServer> server_;
  std::unique_ptr<NfsClient> client_;
};

TEST_F(NfsTest, OpenReadWriteRoundTrip) {
  ASSERT_TRUE(server_->create_file("f.bin", 64 << 10).ok());
  auto fh = await(client_->open("f.bin"));
  ASSERT_TRUE(fh.ok());
  EXPECT_EQ(fh.value().size, 64u << 10);
  const auto data = pattern(16 << 10, 7);
  ASSERT_TRUE(await(client_->write(fh.value(), 4096, data)).ok());
  auto r = await(client_->read(fh.value(), 4096, 16 << 10));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), data);
}

TEST_F(NfsTest, MissingFileFailsOpen) {
  auto fh = await(client_->open("ghost"));
  EXPECT_FALSE(fh.ok());
}

TEST_F(NfsTest, OutOfRangeReadFails) {
  ASSERT_TRUE(server_->create_file("small", 4096).ok());
  auto fh = await(client_->open("small"));
  auto r = await(client_->read(fh.value(), 4000, 4096));
  EXPECT_FALSE(r.ok());
}

class RcudaTest : public ::testing::Test {
 protected:
  RcudaTest() : net_(&loop_) {
    client_node_ = net_.add_node("client");
    gpu_node_ = net_.add_node("gpu");
    gpu_ = std::make_unique<SimGpu>(&net_, gpu_node_);
    daemon_ = std::make_unique<RcudaDaemon>(&net_, gpu_.get());
    daemon_->register_kernel("inc", [](PoolBytes& mem,
                                       const std::vector<uint64_t>& args) {
      for (uint64_t i = 0; i < args[1]; ++i) {
        mem[args[0] + i] = static_cast<uint8_t>(mem[args[0] + i] + 1);
      }
      return Duration::micros(30);
    });
    client_ = std::make_unique<RcudaClient>(&net_, client_node_, daemon_.get());
  }

  template <typename T>
  T await(Future<T> f) {
    loop_.run_until([&]() { return f.ready(); });
    return f.take();
  }

  EventLoop loop_;
  Network net_;
  uint32_t client_node_ = 0, gpu_node_ = 0;
  std::unique_ptr<SimGpu> gpu_;
  std::unique_ptr<RcudaDaemon> daemon_;
  std::unique_ptr<RcudaClient> client_;
};

TEST_F(RcudaTest, FullKernelCycle) {
  auto addr = await(client_->cu_mem_alloc(1024));
  ASSERT_TRUE(addr.ok());
  auto fn = await(client_->cu_module_get_function("inc"));
  ASSERT_TRUE(fn.ok());
  ASSERT_TRUE(await(client_->cu_memcpy_htod(addr.value(), pattern(1024, 10))).ok());
  ASSERT_TRUE(await(client_->cu_launch_kernel(fn.value(), {addr.value(), 1024})).ok());
  ASSERT_TRUE(await(client_->cu_ctx_synchronize()).ok());
  auto data = await(client_->cu_memcpy_dtoh(addr.value(), 1024));
  ASSERT_TRUE(data.ok());
  const auto expected_base = pattern(1024, 10);
  for (size_t i = 0; i < 1024; ++i) {
    ASSERT_EQ(data.value()[i], static_cast<uint8_t>(expected_base[i] + 1));
  }
  // The whole cycle took 6 driver calls (the multi-round-trip cost FractOS avoids).
  EXPECT_EQ(client_->calls_issued(), 6u);
}

TEST_F(RcudaTest, UnknownFunctionFails) {
  EXPECT_FALSE(await(client_->cu_module_get_function("nope")).ok());
}

TEST_F(RcudaTest, SynchronizeWaitsForKernel) {
  auto fn = await(client_->cu_module_get_function("inc"));
  auto addr = await(client_->cu_mem_alloc(64));
  const Time before = loop_.now();
  ASSERT_TRUE(await(client_->cu_launch_kernel(fn.value(), {addr.value(), 64})).ok());
  const double launch_us = (loop_.now() - before).to_us();
  ASSERT_TRUE(await(client_->cu_ctx_synchronize()).ok());
  const double total_us = (loop_.now() - before).to_us();
  EXPECT_LT(launch_us, 45.0);                  // async launch returns without the kernel
  EXPECT_GT(total_us, launch_us + 25.0);       // sync waited for the 30us kernel
}

class BaselineFsTest : public ::testing::Test {
 protected:
  BaselineFsTest() {
    client_node_ = sys_.add_node("client");
    fs_node_ = sys_.add_node("fs");
    storage_node_ = sys_.add_node("storage");
    cc_ = &sys_.add_controller(client_node_, Loc::kHost);
    cf_ = &sys_.add_controller(fs_node_, Loc::kHost);
    nvme_ = std::make_unique<SimNvme>(&sys_.loop());
    target_ = std::make_unique<NvmeofTarget>(&sys_.net(), storage_node_, nvme_.get());
    initiator_ = std::make_unique<NvmeofInitiator>(&sys_.net(), fs_node_, target_.get());
    cache_ = std::make_unique<PageCache>(&sys_.loop(), initiator_.get());
    fs_ = std::make_unique<BaselineFs>(&sys_, fs_node_, *cf_, cache_.get());
    client_ = &sys_.spawn("client", client_node_, *cc_);
    create_ep_ = sys_.bootstrap_grant(fs_->process(), fs_->create_endpoint(), *client_).value();
    open_ep_ = sys_.bootstrap_grant(fs_->process(), fs_->open_endpoint(), *client_).value();
  }

  System sys_;
  uint32_t client_node_ = 0, fs_node_ = 0, storage_node_ = 0;
  Controller* cc_ = nullptr;
  Controller* cf_ = nullptr;
  std::unique_ptr<SimNvme> nvme_;
  std::unique_ptr<NvmeofTarget> target_;
  std::unique_ptr<NvmeofInitiator> initiator_;
  std::unique_ptr<PageCache> cache_;
  std::unique_ptr<BaselineFs> fs_;
  Process* client_ = nullptr;
  CapId create_ep_ = kInvalidCap, open_ep_ = kInvalidCap;
};

TEST_F(BaselineFsTest, WriteReadRoundTripThroughNvmeof) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "b.bin", 128 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_ep_, "b.bin", true, false));
  const auto data = pattern(32 << 10, 13);
  const uint64_t addr = client_->alloc(32 << 10);
  client_->write_mem(addr, data);
  const CapId buf = sys_.await_ok(client_->memory_create(addr, 32 << 10, Perms::kReadWrite));
  ASSERT_TRUE(sys_.await(FsClient::write(*client_, f, 0, 32 << 10, buf)).ok());
  client_->write_mem(addr, std::vector<uint8_t>(32 << 10, 0));
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, f, 0, 32 << 10, buf)).ok());
  EXPECT_EQ(client_->read_mem(addr, 32 << 10), data);
}

TEST_F(BaselineFsTest, DaxOpenRejected) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "d.bin", 4096)).ok());
  auto f = sys_.await(FsClient::open(*client_, open_ep_, "d.bin", false, /*dax=*/true));
  EXPECT_FALSE(f.ok());  // a kernel block device cannot delegate sub-range authority
}

TEST_F(BaselineFsTest, CacheAbsorbsRepeatedReads) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "c.bin", 64 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_ep_, "c.bin", true, false));
  const uint64_t addr = client_->alloc(4096);
  const CapId buf = sys_.await_ok(client_->memory_create(addr, 4096, Perms::kReadWrite));
  ASSERT_TRUE(sys_.await(FsClient::write(*client_, f, 0, 4096, buf)).ok());

  const Time t0 = sys_.loop().now();
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, f, 0, 4096, buf)).ok());
  const double first_us = (sys_.loop().now() - t0).to_us();
  const Time t1 = sys_.loop().now();
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, f, 0, 4096, buf)).ok());
  const double second_us = (sys_.loop().now() - t1).to_us();
  // The write left the pages cached, so both reads avoid the device; the key property is
  // that repeated reads stay fast (no 70us flash read in the path).
  EXPECT_LT(second_us, 55.0);
  EXPECT_LT(first_us, 55.0);
}

class PipelineTest : public ::testing::Test {
 protected:
  static constexpr int kStages = 3;
  static constexpr uint64_t kPayload = 16 << 10;

  PipelineTest() {
    client_node_ = sys_.add_node("client");
    cc_ = &sys_.add_controller(client_node_, Loc::kHost);
    for (int i = 0; i < kStages; ++i) {
      const uint32_t node = sys_.add_node("stage" + std::to_string(i));
      Controller& c = sys_.add_controller(node, Loc::kHost);
      stages_.push_back(std::make_unique<PipelineStage>(&sys_, node, c, 1 << 20,
                                                        Duration::micros(1)));
    }
  }

  PipelineRunner make_runner(PipelineMode mode) {
    std::vector<PipelineStage*> ptrs;
    for (auto& s : stages_) {
      ptrs.push_back(s.get());
    }
    return PipelineRunner(&sys_, client_node_, *cc_, ptrs, kPayload, mode);
  }

  System sys_;
  uint32_t client_node_ = 0;
  Controller* cc_ = nullptr;
  std::vector<std::unique_ptr<PipelineStage>> stages_;
};

TEST_F(PipelineTest, StarProducesCorrectOutput) {
  auto runner = make_runner(PipelineMode::kStar);
  EXPECT_TRUE(sys_.await(runner.run_once()).ok());
  EXPECT_TRUE(sys_.await(runner.run_once()).ok());  // repeatable
}

TEST_F(PipelineTest, FastStarProducesCorrectOutput) {
  auto runner = make_runner(PipelineMode::kFastStar);
  EXPECT_TRUE(sys_.await(runner.run_once()).ok());
}

TEST_F(PipelineTest, ChainProducesCorrectOutput) {
  auto runner = make_runner(PipelineMode::kChain);
  EXPECT_TRUE(sys_.await(runner.run_once()).ok());
  EXPECT_TRUE(sys_.await(runner.run_once()).ok());
}

TEST_F(PipelineTest, LatencyOrderingMatchesFig8) {
  // For I/O-bound pipelines: star > fast-star > chain.
  auto star = make_runner(PipelineMode::kStar);
  auto fast = make_runner(PipelineMode::kFastStar);
  auto chain = make_runner(PipelineMode::kChain);

  auto time_one = [this](PipelineRunner& r) {
    const Time start = sys_.loop().now();
    EXPECT_TRUE(sys_.await(r.run_once()).ok());
    return (sys_.loop().now() - start).to_us();
  };
  const double star_us = time_one(star);
  const double fast_us = time_one(fast);
  const double chain_us = time_one(chain);
  EXPECT_GT(star_us, fast_us);
  EXPECT_GT(fast_us, chain_us);
}

TEST_F(PipelineTest, ChainMovesDataOnceAcrossEachHop) {
  auto star = make_runner(PipelineMode::kStar);
  auto chain = make_runner(PipelineMode::kChain);
  sys_.net().reset_counters();
  ASSERT_TRUE(sys_.await(star.run_once()).ok());
  const uint64_t star_data = sys_.net().counters().cross_bytes[1];
  sys_.net().reset_counters();
  ASSERT_TRUE(sys_.await(chain.run_once()).ok());
  const uint64_t chain_data = sys_.net().counters().cross_bytes[1];
  // Star: 2 transfers per stage (2K); chain: K+1. For K=3: 6 vs 4 -> 1.5x.
  EXPECT_NEAR(static_cast<double>(star_data) / static_cast<double>(chain_data), 1.5, 0.15);
}

}  // namespace
}  // namespace fractos
