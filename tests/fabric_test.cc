// Fabric tests: wire-latency calibration (against the paper's raw numbers), bandwidth
// occupancy, traffic accounting, queue pairs, RDMA verbs and rkey authorization, and node
// failure behaviour.

#include <gtest/gtest.h>

#include <vector>

#include "src/fabric/network.h"
#include "src/fabric/queue_pair.h"

namespace fractos {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : net_(&loop_) {
    n0_ = net_.add_node("n0");
    n1_ = net_.add_node("n1");
  }

  EventLoop loop_;
  Network net_;
  uint32_t n0_, n1_;
};

TEST_F(FabricTest, WireLatencyCalibration) {
  // Table 3: raw loopback RTT 2.42us -> one way 1.21us; server on sNIC 3.68us -> 1.84us.
  // Fig. 5: 1-byte RDMA round trip 3.3us -> cross-node one way 1.65us.
  const Endpoint h0{n0_, Loc::kHost}, s0{n0_, Loc::kSnic}, h1{n1_, Loc::kHost};
  EXPECT_EQ(net_.wire_latency(h0, h0).ns(), 1210);
  EXPECT_EQ(net_.wire_latency(h0, s0).ns(), 1840);
  EXPECT_EQ(net_.wire_latency(h0, h1).ns(), 1650);
  EXPECT_EQ(net_.wire_latency(s0, h1).ns(), 1650);
}

TEST_F(FabricTest, SendDeliversAfterLatency) {
  bool got = false;
  net_.send(Endpoint{n0_, Loc::kHost}, Endpoint{n1_, Loc::kHost}, Traffic::kControl, {1, 2, 3},
            [&](Payload bytes) {
              got = true;
              EXPECT_EQ(bytes.size(), 3u);
            });
  loop_.run();
  EXPECT_TRUE(got);
  // 3 bytes + 66-byte header at 1.25 B/ns = 55 ns serialization, + 1650 ns latency.
  EXPECT_EQ(loop_.now().ns(), 1650 + 55);
}

TEST_F(FabricTest, BandwidthOccupancySerializesMessages) {
  // Two 1 MiB messages on the same egress: the second waits for the first's serialization.
  const uint64_t size = 1 << 20;
  std::vector<int64_t> arrivals;
  for (int i = 0; i < 2; ++i) {
    net_.send(Endpoint{n0_, Loc::kHost}, Endpoint{n1_, Loc::kHost}, Traffic::kData,
              std::vector<uint8_t>(size),
              [&](Payload) { arrivals.push_back(loop_.now().ns()); });
  }
  loop_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const int64_t serialization = arrivals[1] - arrivals[0];
  // One message of 1 MiB + headers takes ~ (1 MiB + 256*66 B) / 1.25 B/ns ~ 852 us.
  EXPECT_NEAR(static_cast<double>(serialization), (1048576 + 256 * 66) / 1.25, 100.0);
}

TEST_F(FabricTest, ThroughputApproachesLineRate) {
  // Pump 64 MiB in 256 KiB messages: total time ~ bytes / 1.25 B/ns.
  const uint64_t msg = 256 << 10;
  const int count = 256;
  int received = 0;
  for (int i = 0; i < count; ++i) {
    net_.send(Endpoint{n0_, Loc::kHost}, Endpoint{n1_, Loc::kHost}, Traffic::kData,
              std::vector<uint8_t>(msg), [&](Payload) { ++received; });
  }
  loop_.run();
  EXPECT_EQ(received, count);
  const double goodput = static_cast<double>(msg) * count / static_cast<double>(loop_.now().ns());
  EXPECT_GT(goodput, 1.15);  // >92% of 1.25 B/ns despite header overhead
  EXPECT_LT(goodput, 1.25);
}

TEST_F(FabricTest, TrafficCountersByCategory) {
  net_.send(Endpoint{n0_, Loc::kHost}, Endpoint{n1_, Loc::kHost}, Traffic::kControl,
            std::vector<uint8_t>(10), [](Payload) {});
  net_.send(Endpoint{n0_, Loc::kHost}, Endpoint{n0_, Loc::kHost}, Traffic::kData,
            std::vector<uint8_t>(100), [](Payload) {});
  loop_.run();
  const TrafficCounters& c = net_.counters();
  EXPECT_EQ(c.control_messages(), 1u);
  EXPECT_EQ(c.data_messages(), 1u);
  EXPECT_EQ(c.total_cross_messages(), 1u);  // loopback not counted as cross
  EXPECT_EQ(c.bytes[0], 10u + 66u);
  EXPECT_EQ(c.bytes[1], 100u + 66u);
  net_.reset_counters();
  EXPECT_EQ(net_.counters().total_messages(), 0u);
}

TEST_F(FabricTest, LargeMessageChargesHeaderPerMtuSegment) {
  const uint64_t size = 10000;  // 3 segments at 4096 MTU
  net_.send(Endpoint{n0_, Loc::kHost}, Endpoint{n1_, Loc::kHost}, Traffic::kData,
            std::vector<uint8_t>(size), [](Payload) {});
  loop_.run();
  EXPECT_EQ(net_.counters().bytes[1], size + 3 * 66);
}

TEST_F(FabricTest, RdmaReadMovesRealBytes) {
  Node& target = net_.node(n1_);
  const PoolId pool = target.add_pool(4096);
  for (int i = 0; i < 16; ++i) {
    target.pool(pool)[static_cast<size_t>(i)] = static_cast<uint8_t>(i * 3);
  }
  Result<Payload> got = ErrorCode::kInternal;
  net_.rdma_read(Endpoint{n0_, Loc::kHost}, n1_, RdmaKey{}, pool, 0, 16,
                 [&](Result<Payload> r) { got = std::move(r); });
  loop_.run();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().bytes()[5], 15);
  // Round trip: ~2 * 1.65us for a small payload.
  EXPECT_NEAR(static_cast<double>(loop_.now().ns()), 3300 + 2 * 66 / 1.25 + 16 / 1.25, 30.0);
}

TEST_F(FabricTest, RdmaWriteMovesRealBytes) {
  Node& target = net_.node(n1_);
  const PoolId pool = target.add_pool(4096);
  Status got = ErrorCode::kInternal;
  net_.rdma_write(Endpoint{n0_, Loc::kHost}, n1_, RdmaKey{}, pool, 100, {7, 8, 9},
                  [&](Status s) { got = s; });
  loop_.run();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(target.pool(pool)[101], 8);
}

TEST_F(FabricTest, RdmaAuthorizerDeniesAndKeyIsForwarded) {
  Node& target = net_.node(n1_);
  const PoolId pool = target.add_pool(4096);
  RdmaKey seen{};
  target.set_rdma_authorizer(
      [&](const RdmaKey& key, PoolId, uint64_t, uint64_t, bool is_write) -> Status {
        seen = key;
        return is_write ? Status(ErrorCode::kPermissionDenied) : ok_status();
      });
  Status ws = ok_status();
  net_.rdma_write(Endpoint{n0_, Loc::kHost}, n1_, RdmaKey{9, 77, 3}, pool, 0, {1},
                  [&](Status s) { ws = s; });
  loop_.run();
  EXPECT_EQ(ws.error(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(seen.controller, 9u);
  EXPECT_EQ(seen.object, 77u);
  EXPECT_EQ(seen.generation, 3u);
  EXPECT_EQ(target.pool(pool)[0], 0);  // nothing written

  Result<Payload> rs = ErrorCode::kInternal;
  net_.rdma_read(Endpoint{n0_, Loc::kHost}, n1_, RdmaKey{}, pool, 0, 1,
                 [&](Result<Payload> r) { rs = std::move(r); });
  loop_.run();
  EXPECT_TRUE(rs.ok());
}

TEST_F(FabricTest, RdmaOutOfRangeFails) {
  Node& target = net_.node(n1_);
  const PoolId pool = target.add_pool(128);
  Result<Payload> got = ErrorCode::kInternal;
  net_.rdma_read(Endpoint{n0_, Loc::kHost}, n1_, RdmaKey{}, pool, 100, 100,
                 [&](Result<Payload> r) { got = std::move(r); });
  loop_.run();
  EXPECT_EQ(got.error(), ErrorCode::kOutOfRange);
}

TEST_F(FabricTest, ThirdPartyRdmaTransfersDirectly) {
  const uint32_t n2 = net_.add_node("n2");
  Node& src = net_.node(n1_);
  Node& dst = net_.node(n2);
  const PoolId sp = src.add_pool(1024);
  const PoolId dp = dst.add_pool(1024);
  for (int i = 0; i < 64; ++i) {
    src.pool(sp)[static_cast<size_t>(i)] = static_cast<uint8_t>(0x40 + i);
  }
  Status got = ErrorCode::kInternal;
  net_.reset_counters();
  net_.rdma_third_party(Endpoint{n0_, Loc::kHost}, Network::RdmaSide{n1_, RdmaKey{}, sp, 0},
                        Network::RdmaSide{n2, RdmaKey{}, dp, 128}, 64,
                        [&](Status s) { got = s; });
  loop_.run();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(dst.pool(dp)[128], 0x40);
  EXPECT_EQ(dst.pool(dp)[191], 0x40 + 63);
  // Exactly one data-bearing leg: 3 messages total (request, data, completion).
  EXPECT_EQ(net_.counters().data_messages(), 3u);
}

TEST_F(FabricTest, FailedNodeDropsMessages) {
  net_.node(n1_).fail();
  bool delivered = false;
  bool dropped = false;
  net_.send(Endpoint{n0_, Loc::kHost}, Endpoint{n1_, Loc::kHost}, Traffic::kControl, {1},
            [&](Payload) { delivered = true; }, [&]() { dropped = true; });
  loop_.run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
}

TEST_F(FabricTest, NodeFailedWhileMessageInFlight) {
  bool delivered = false;
  bool dropped = false;
  net_.send(Endpoint{n0_, Loc::kHost}, Endpoint{n1_, Loc::kHost}, Traffic::kControl, {1},
            [&](Payload) { delivered = true; }, [&]() { dropped = true; });
  net_.node(n1_).fail();  // before delivery fires
  loop_.run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
}

TEST_F(FabricTest, RdmaToFailedNodeFails) {
  Node& target = net_.node(n1_);
  const PoolId pool = target.add_pool(128);
  target.fail();
  Result<Payload> got = ErrorCode::kInternal;
  net_.rdma_read(Endpoint{n0_, Loc::kHost}, n1_, RdmaKey{}, pool, 0, 16,
                 [&](Result<Payload> r) { got = std::move(r); });
  loop_.run();
  EXPECT_EQ(got.error(), ErrorCode::kChannelClosed);
}

class QueuePairTest : public FabricTest {};

TEST_F(QueuePairTest, BidirectionalOrderedDelivery) {
  QueuePair a(&net_, Endpoint{n0_, Loc::kHost});
  QueuePair b(&net_, Endpoint{n1_, Loc::kHost});
  QueuePair::connect(a, b);
  std::vector<uint8_t> seen;
  b.set_receive_handler([&](Payload bytes) { seen.push_back(bytes.bytes()[0]); });
  a.set_receive_handler([](Payload) {});
  for (uint8_t i = 0; i < 5; ++i) {
    a.send(Traffic::kControl, {i});
  }
  loop_.run();
  EXPECT_EQ(seen, (std::vector<uint8_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(b.remote(), (Endpoint{n0_, Loc::kHost}));
}

TEST_F(QueuePairTest, SeverNotifiesPeerOnce) {
  QueuePair a(&net_, Endpoint{n0_, Loc::kHost});
  QueuePair b(&net_, Endpoint{n1_, Loc::kHost});
  QueuePair::connect(a, b);
  a.set_receive_handler([](Payload) {});
  b.set_receive_handler([](Payload) {});
  int severed = 0;
  b.set_severed_handler([&]() { ++severed; });
  a.sever();
  a.sever();  // idempotent
  loop_.run();
  EXPECT_EQ(severed, 1);
  EXPECT_TRUE(a.severed());
  EXPECT_TRUE(b.severed());
}

TEST_F(QueuePairTest, SendsAfterSeverAreDropped) {
  QueuePair a(&net_, Endpoint{n0_, Loc::kHost});
  QueuePair b(&net_, Endpoint{n1_, Loc::kHost});
  QueuePair::connect(a, b);
  int got = 0;
  b.set_receive_handler([&](Payload) { ++got; });
  a.sever();
  a.send(Traffic::kControl, {1});
  a.send(Traffic::kData, {2});
  loop_.run();
  EXPECT_EQ(got, 0);
  // Post-sever sends are counted, not silently lost.
  EXPECT_EQ(a.dropped(), 2u);
}

TEST_F(QueuePairTest, SendToFailedNodeCountsDrop) {
  QueuePair a(&net_, Endpoint{n0_, Loc::kHost});
  QueuePair b(&net_, Endpoint{n1_, Loc::kHost});
  QueuePair::connect(a, b);
  b.set_receive_handler([](Payload) {});
  net_.node(n1_).fail();
  a.send(Traffic::kControl, {1});
  loop_.run();
  EXPECT_EQ(a.dropped(), 1u);
}

class LossyQueuePairTest : public FabricTest {
 protected:
  void install(double control_drop) {
    FaultPlan plan;
    plan.seed = 99;
    plan.drop_prob[0] = control_drop;
    net_.install_fault_injector(plan);
  }
};

TEST_F(LossyQueuePairTest, ReliableDeliveryUnderHeavyDrop) {
  install(0.3);
  QueuePair a(&net_, Endpoint{n0_, Loc::kHost});
  QueuePair b(&net_, Endpoint{n1_, Loc::kHost});
  QueuePair::connect(a, b);
  // ACKs are lossy too; a generous budget keeps the pair below the sever horizon.
  a.set_retry_policy(Duration::micros(30), 20);
  b.set_retry_policy(Duration::micros(30), 20);
  std::vector<uint8_t> seen;
  b.set_receive_handler([&](Payload bytes) { seen.push_back(bytes.bytes()[0]); });
  a.set_receive_handler([](Payload) {});
  std::vector<uint8_t> want;
  for (uint8_t i = 0; i < 40; ++i) {
    a.send(Traffic::kControl, {i});
    want.push_back(i);
  }
  loop_.run();
  // Exactly-once, in-order delivery despite a 30% drop rate on every packet (data and ACK).
  EXPECT_EQ(seen, want);
  EXPECT_FALSE(a.severed());
  EXPECT_GT(a.retransmits(), 0u);
  EXPECT_GT(net_.fault_injector()->counters().dropped[0], 0u);
  EXPECT_EQ(a.unacked(), 0u);
}

TEST_F(LossyQueuePairTest, ExhaustedRetryBudgetSeversPair) {
  install(1.0);  // black-hole link: nothing gets through, the RC budget must give up
  QueuePair a(&net_, Endpoint{n0_, Loc::kHost});
  QueuePair b(&net_, Endpoint{n1_, Loc::kHost});
  QueuePair::connect(a, b);
  a.set_retry_policy(Duration::micros(10), 4);
  a.set_receive_handler([](Payload) {});
  b.set_receive_handler([](Payload) {});
  int peer_severed = 0;
  b.set_severed_handler([&]() { ++peer_severed; });
  a.send(Traffic::kControl, {1});
  loop_.run();
  EXPECT_TRUE(a.severed());
  EXPECT_TRUE(b.severed());
  EXPECT_EQ(peer_severed, 1);
  EXPECT_GT(a.dropped(), 0u);
  EXPECT_EQ(a.retransmits(), 3u);  // budget 4 = 1 initial + 3 retries
}

TEST_F(LossyQueuePairTest, DatagramModeHasNoRetransmission) {
  install(1.0);
  QueuePair a(&net_, Endpoint{n0_, Loc::kHost});
  QueuePair b(&net_, Endpoint{n1_, Loc::kHost});
  QueuePair::connect(a, b);
  a.set_mode(QueuePair::Mode::kDatagram);
  b.set_mode(QueuePair::Mode::kDatagram);
  int got = 0;
  b.set_receive_handler([&](Payload) { ++got; });
  a.set_receive_handler([](Payload) {});
  a.send(Traffic::kControl, {1});
  loop_.run();
  // UD semantics: the drop is final — no retry, no sever, the pair stays usable.
  EXPECT_EQ(got, 0);
  EXPECT_EQ(a.retransmits(), 0u);
  EXPECT_FALSE(a.severed());
}

TEST_F(FabricTest, FaultScheduleIsSeedDeterministic) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop_prob[0] = 0.2;
  plan.dup_prob[0] = 0.1;
  plan.jitter_prob[0] = 0.3;
  FaultInjector x(plan), y(plan);
  for (int i = 0; i < 200; ++i) {
    const auto vx = x.on_message(n0_, n1_, Traffic::kControl, Time::from_ns(i));
    const auto vy = y.on_message(n0_, n1_, Traffic::kControl, Time::from_ns(i));
    ASSERT_EQ(vx.drop, vy.drop);
    ASSERT_EQ(vx.duplicate, vy.duplicate);
    ASSERT_EQ(vx.extra_delay.ns(), vy.extra_delay.ns());
  }
  EXPECT_TRUE(x.counters() == y.counters());
  EXPECT_GT(x.counters().total_injected(), 0u);
}

}  // namespace
}  // namespace fractos
