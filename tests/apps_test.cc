// End-to-end tests of the face-verification application: both deployments return correct
// verdicts on real data, survive concurrency, and FractOS moves ~3x less data (the headline
// claim of the paper).

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/face_verify.h"

namespace fractos {
namespace {

FaceVerifyParams small_params() {
  FaceVerifyParams p;
  p.image_bytes = 16 << 10;
  p.images_per_batch = 4;
  p.num_batches = 4;
  p.pool_slots = 2;
  p.per_image_compute = Duration::micros(50);
  return p;
}

TEST(FaceVerifyFractosTest, CorrectVerdictsOnCleanAndTamperedProbes) {
  System sys;
  auto cluster = FaceVerifyCluster::build(&sys);
  FaceVerifyFractos app(&sys, &cluster, Loc::kHost, small_params());
  app.ingest_database();
  EXPECT_TRUE(sys.await_ok(app.verify(0)));
  EXPECT_TRUE(sys.await_ok(app.verify(1)));
  EXPECT_TRUE(sys.await_ok(app.verify(2, /*tamper=*/true)));
}

TEST(FaceVerifyFractosTest, ConcurrentRequestsShareTheSlotPool) {
  System sys;
  auto cluster = FaceVerifyCluster::build(&sys);
  FaceVerifyFractos app(&sys, &cluster, Loc::kHost, small_params());
  app.ingest_database();
  std::vector<Future<Result<bool>>> reqs;
  for (int i = 0; i < 6; ++i) {  // 3x the 2 slots
    reqs.push_back(app.verify(static_cast<uint32_t>(i % 4)));
  }
  for (auto& r : reqs) {
    EXPECT_TRUE(sys.await_ok(std::move(r)));
  }
}

TEST(FaceVerifyFractosTest, WorksWithSnicControllers) {
  System sys;
  auto cluster = FaceVerifyCluster::build(&sys);
  FaceVerifyFractos app(&sys, &cluster, Loc::kSnic, small_params());
  app.ingest_database();
  EXPECT_TRUE(sys.await_ok(app.verify(0)));
}

TEST(FaceVerifyFractosTest, WorksWithSharedController) {
  System sys;
  auto cluster = FaceVerifyCluster::build(&sys);
  Controller& shared = sys.add_controller(cluster.fs_node, Loc::kHost);
  FaceVerifyFractos app(&sys, &cluster, Loc::kHost, small_params(), &shared);
  app.ingest_database();
  EXPECT_TRUE(sys.await_ok(app.verify(0)));
}

TEST(FaceVerifyBaselineTest, CorrectVerdictsOnCleanAndTamperedProbes) {
  System sys;
  auto cluster = FaceVerifyCluster::build(&sys);
  FaceVerifyBaseline app(&sys, &cluster, small_params());
  app.ingest_database();
  EXPECT_TRUE(sys.await_ok(app.verify(0)));
  EXPECT_TRUE(sys.await_ok(app.verify(1, /*tamper=*/true)));
}

TEST(FaceVerifyComparisonTest, FractosIsFasterAndMovesLessData) {
  // Paper-scale request: 8 images of 64 KiB — data transfers matter at this size.
  FaceVerifyParams p;
  p.image_bytes = 64 << 10;
  p.images_per_batch = 8;
  p.num_batches = 4;
  p.pool_slots = 2;
  p.per_image_compute = Duration::micros(120);

  // FractOS deployment.
  System sys_f;
  auto cluster_f = FaceVerifyCluster::build(&sys_f);
  FaceVerifyFractos fractos(&sys_f, &cluster_f, Loc::kHost, p);
  fractos.ingest_database();
  sys_f.await_ok(fractos.verify(0));  // warm-up (DAX children etc.)
  sys_f.net().reset_counters();
  const Time f_start = sys_f.loop().now();
  ASSERT_TRUE(sys_f.await_ok(fractos.verify(1)));
  const double fractos_us = (sys_f.loop().now() - f_start).to_us();
  const auto f_counters = sys_f.net().counters();

  // Baseline deployment.
  System sys_b;
  auto cluster_b = FaceVerifyCluster::build(&sys_b);
  FaceVerifyBaseline baseline(&sys_b, &cluster_b, p);
  baseline.ingest_database();
  sys_b.await_ok(baseline.verify(0));  // warm-up
  sys_b.net().reset_counters();
  const Time b_start = sys_b.loop().now();
  ASSERT_TRUE(sys_b.await_ok(baseline.verify(1)));
  const double baseline_us = (sys_b.loop().now() - b_start).to_us();
  const auto b_counters = sys_b.net().counters();

  // The paper: "47% faster end-to-end execution while reducing network traffic by 3x".
  EXPECT_GT(baseline_us / fractos_us, 1.2) << "FractOS " << fractos_us << "us vs baseline "
                                           << baseline_us << "us";
  // Database bytes cross once (storage->GPU) instead of three times (NVMe-oF, NFS, rCUDA).
  // Both sides also upload the probe once (frontend->GPU), so the overall ratio lands
  // around (1+1)/(3+1) = 2x total; the file-data-only ratio is 3x.
  EXPECT_GT(static_cast<double>(b_counters.total_cross_bytes()) /
                static_cast<double>(f_counters.total_cross_bytes()),
            1.6)
      << "bytes: fractos=" << f_counters.total_cross_bytes()
      << " baseline=" << b_counters.total_cross_bytes();
}

TEST(FaceImageTest, DeterministicAndDistinct) {
  const auto a1 = face_image(1, 2, 4096);
  const auto a2 = face_image(1, 2, 4096);
  const auto b = face_image(1, 3, 4096);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(FaceKernelTest, ComparesImagesAndModelsTime) {
  EventLoop loop;
  Network net(&loop);
  const uint32_t node = net.add_node("gpu");
  SimGpu gpu(&net, node);
  auto kernel = make_face_verify_kernel(Duration::micros(100));
  auto& mem = net.node(node).pool(gpu.pool());
  // probe at 0, db at 8K, results at 16K; 2 images of 4K.
  for (int i = 0; i < 8192; ++i) {
    mem[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
    mem[static_cast<size_t>(8192 + i)] = static_cast<uint8_t>(i);
  }
  mem[4096] ^= 0xff;  // corrupt probe image 1
  const Duration t = kernel(mem, {0, 8192, 16384, 2, 4096});
  EXPECT_EQ(mem[16384], 1);  // image 0 matches
  EXPECT_EQ(mem[16385], 0);  // image 1 tampered
  EXPECT_EQ(t.ns(), 200000);
}

}  // namespace
}  // namespace fractos
