// Chaos-soak harness: the soak workload run on a deliberately lossy fabric.
//
// A FaultPlan derived from a seed drops/duplicates/jitters messages and flaps links while
// the full service stack (FS + block + GPU) executes a randomized workload. The harness
// asserts the reliability layer's contract:
//
//   * no hang: every application op resolves — with ok or a specific ErrorCode (never a
//     stuck future, never a CHECK);
//   * determinism: the same seed reproduces a bit-identical run (simulated end time, traffic
//     counters, injected-fault counters, per-op outcomes); different seeds diverge;
//   * bounded state: object tables and cleanup queues stay bounded by live state even when
//     ops fail mid-flight.
//
// Also here: the monitor false-positive/re-admission scenario and the Controller peer-op
// timeout + dedup scenario, which need hand-placed fault schedules rather than random ones.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/node_monitor.h"
#include "src/core/replication.h"
#include "src/services/block_adaptor.h"
#include "src/services/fs.h"
#include "src/services/gpu_adaptor.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"
#include "src/sim/span.h"
#include "src/sim/tax_report.h"

namespace fractos {
namespace {

// Everything a chaos run produces. Two runs with the same seed must compare equal on every
// field; runs with different seeds should diverge somewhere.
struct ChaosOutcome {
  int64_t end_ns = 0;
  TrafficCounters traffic;
  FaultCounters faults;
  int ok_ops = 0;
  std::map<ErrorCode, int> errors;
  uint64_t live_objects = 0;
  uint64_t total_objects = 0;
  uint64_t pending_cleanups = 0;

  int total_ops() const {
    int n = ok_ops;
    for (const auto& [code, count] : errors) {
      n += count;
    }
    return n;
  }
};

bool same_outcome(const ChaosOutcome& a, const ChaosOutcome& b) {
  return a.end_ns == b.end_ns && a.ok_ops == b.ok_ops && a.errors == b.errors &&
         a.faults == b.faults && a.traffic.messages[0] == b.traffic.messages[0] &&
         a.traffic.messages[1] == b.traffic.messages[1] &&
         a.traffic.bytes[0] == b.traffic.bytes[0] && a.traffic.bytes[1] == b.traffic.bytes[1] &&
         a.live_objects == b.live_objects && a.total_objects == b.total_objects;
}

// Setup (spawn, FS/GPU bootstrap, file create/open) runs under the probabilistic faults —
// the RC layer absorbs those — but must finish before the first link flap, which can push
// peer ops past their deadline. Flaps are therefore scheduled at >= kFlapFloor.
constexpr int64_t kFlapFloorNs = 6'000'000;  // 6 ms

// Derives a randomized-but-deterministic fault schedule from a seed. Probabilities are kept
// in a band where the RC layer recovers everything (so setup succeeds) while flaps are long
// enough to break peer-op deadlines (1 ms) yet far below the QP sever horizon (~11 ms).
FaultPlan chaos_plan(uint64_t seed) {
  Rng r(seed ^ 0x9e3779b97f4a7c15ull);
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob[0] = 0.005 + 0.010 * r.next_double();  // control: 0.5% .. 1.5%
  plan.drop_prob[1] = 0.002 + 0.004 * r.next_double();  // data:    0.2% .. 0.6%
  plan.dup_prob[0] = 0.004;
  plan.dup_prob[1] = 0.002;
  plan.jitter_prob[0] = 0.02;
  plan.jitter_prob[1] = 0.01;
  plan.max_jitter = Duration::micros(15);
  for (int i = 0; i < 2; ++i) {
    const uint32_t a = r.next_below(4);
    const uint32_t b = (a + 1 + r.next_below(3)) % 4;
    const Time start = Time::from_ns(kFlapFloorNs + int64_t(r.next_below(6'000'000)));
    const Duration len = Duration::micros(200 + r.next_below(1800));  // 0.2 .. 2 ms
    plan.flaps.push_back({a, b, start, start + len});
  }
  return plan;
}

// One full chaos run: build the soak topology on a faulted fabric, run `ops` randomized
// application ops tolerating per-op errors, drain, and snapshot the outcome. When `metrics`
// or `tracer` is given, it is attached for the entire run (bootstrap included, so the fault
// mirrors see every message) — instrumentation must not perturb the simulation, which the
// observability tests check by comparing outcomes against an uninstrumented run.
ChaosOutcome run_chaos(uint64_t seed, int ops, MetricsRegistry* metrics = nullptr,
                       SpanTracer* tracer = nullptr) {
  constexpr uint64_t kFileBytes = 1 << 20;
  constexpr uint64_t kBufBytes = 64 << 10;

  SystemConfig cfg;
  cfg.faults = chaos_plan(seed);
  System sys(cfg);
  sys.loop().set_metrics(metrics);
  sys.loop().set_span_tracer(tracer);
  Rng rng(seed * 2654435761u + 1);

  const uint32_t cn = sys.add_node("client");
  const uint32_t fn = sys.add_node("fs");
  const uint32_t sn = sys.add_node("storage");
  const uint32_t gn = sys.add_node("gpu");
  Controller& cc = sys.add_controller(cn, Loc::kHost);
  Controller& cf = sys.add_controller(fn, Loc::kHost);
  Controller& cs = sys.add_controller(sn, Loc::kHost);
  Controller& cg = sys.add_controller(gn, Loc::kHost);
  (void)cf;
  auto nvme = std::make_unique<SimNvme>(&sys.loop());
  auto block = std::make_unique<BlockAdaptor>(&sys, sn, cs, nvme.get());
  auto fs = FsService::bootstrap(&sys, fn, cf, block->process(), block->mgmt_endpoint());
  auto gpu = std::make_unique<SimGpu>(&sys.net(), gn);
  auto gpu_adaptor = std::make_unique<GpuAdaptor>(&sys, cg, gpu.get());
  gpu_adaptor->register_kernel(
      "xor", [](PoolBytes& m, const std::vector<uint64_t>& a) {
        for (uint64_t i = 0; i < a[2]; ++i) {
          m[a[1] + i] = static_cast<uint8_t>(m[a[0] + i] ^ 0x77);
        }
        return Duration::micros(20);
      });

  Process& client = sys.spawn("client", cn, cc, 16 << 20);
  const CapId create_ep = sys.bootstrap_grant(fs->process(), fs->create_endpoint(), client).value();
  const CapId open_ep = sys.bootstrap_grant(fs->process(), fs->open_endpoint(), client).value();
  const CapId init_ep =
      sys.bootstrap_grant(gpu_adaptor->process(), gpu_adaptor->init_endpoint(), client).value();
  const GpuClient::Session session = sys.await_ok(GpuClient::init(client, init_ep));
  const CapId kernel = sys.await_ok(GpuClient::load(client, session, "xor"));
  const GpuClient::Buffer gpu_in = sys.await_ok(GpuClient::alloc(client, session, kBufBytes));
  const GpuClient::Buffer gpu_out = sys.await_ok(GpuClient::alloc(client, session, kBufBytes));

  const uint64_t buf_addr = client.alloc(kBufBytes);
  const CapId buf = sys.await_ok(client.memory_create(buf_addr, kBufBytes, Perms::kReadWrite));
  FRACTOS_CHECK(sys.await(FsClient::create(client, create_ep, "chaos", kFileBytes)).ok());
  const FsClient::OpenFile file_fs = sys.await_ok(FsClient::open(client, open_ep, "chaos", true, false));
  const FsClient::OpenFile file_dax = sys.await_ok(FsClient::open(client, open_ep, "chaos", true, true));

  // Setup must have finished before flaps begin, or the await_ok calls above could have
  // CHECK-failed on a timed-out peer op. If this ever fires, raise kFlapFloorNs.
  FRACTOS_CHECK_MSG(sys.loop().now().ns() < kFlapFloorNs, "chaos setup overran the flap floor");

  ChaosOutcome out;
  auto tally = [&out](const Status& s) {
    if (s.ok()) {
      ++out.ok_ops;
    } else {
      ++out.errors[s.error()];
    }
  };

  for (int op = 0; op < ops; ++op) {
    const uint64_t io = 4096ull << rng.next_below(4);  // 4K..32K
    const uint64_t off = rng.next_below((kFileBytes - io) / 4096 + 1) * 4096;
    const auto& file = rng.next_bool() ? file_dax : file_fs;
    // With a tracer attached, every op runs under its own root span so the downstream
    // instrumentation (syscalls, peer ops, devices) has an ambient context to attach to.
    uint64_t root = 0;
    std::optional<SpanScope> scope;
    if (tracer != nullptr) {
      root = tracer->start_trace("chaos", "op-" + std::to_string(op), sys.loop().now());
      scope.emplace(tracer->context_of(root));
    }
    switch (rng.next_below(4)) {
      case 0: {  // write (no content model: a failed write may leave partial state)
        std::vector<uint8_t> data(io);
        for (auto& byte : data) {
          byte = rng.next_byte();
        }
        client.write_mem(buf_addr, data);
        tally(sys.await(FsClient::write(client, file, off, io, buf)));
        break;
      }
      case 1: {  // read (content verified only by the clean-fabric soak test)
        tally(sys.await(FsClient::read(client, file, off, io, buf)));
        break;
      }
      case 2: {  // GPU round trip: buf -> gpu_in, xor kernel, gpu_out -> buf
        const Status copied = sys.await(client.memory_copy(buf, gpu_in.mem));
        tally(copied);
        if (copied.ok()) {
          tally(sys.await(GpuClient::run(client, kernel,
                                         {gpu_in.device_addr, gpu_out.device_addr, kBufBytes},
                                         gpu_out.mem, buf)));
        }
        break;
      }
      default: {  // capability churn: derive a view and revoke it (all local to cc)
        Result<CapId> view = sys.await(client.memory_diminish(buf, 0, 4096, Perms::kNone));
        if (view.ok()) {
          tally(sys.await(client.cap_revoke(view.value())));
        } else {
          ++out.errors[view.error()];
        }
        break;
      }
    }
    if (tracer != nullptr) {
      scope.reset();
      tracer->end(root, sys.loop().now());
    }
  }
  sys.loop().run();  // drain retransmit timers, late replies, cleanup protocol
  sys.loop().set_metrics(nullptr);
  sys.loop().set_span_tracer(nullptr);

  out.end_ns = sys.loop().now().ns();
  out.traffic = sys.net().counters();
  out.faults = sys.fault_injector()->counters();
  out.live_objects = cc.table().live_count();
  out.total_objects = cc.table().total_count();
  out.pending_cleanups = cc.pending_cleanups() + cs.pending_cleanups();
  return out;
}

uint64_t base_seed() {
  if (const char* env = std::getenv("FRACTOS_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC0FFEE;
}

TEST(ChaosSoak, EveryOpResolvesUnderLossyFabric) {
  constexpr int kOps = 120;
  const ChaosOutcome out = run_chaos(base_seed(), kOps);

  // The plan actually perturbed the run...
  EXPECT_GT(out.faults.total_injected(), 0u);
  EXPECT_GT(out.faults.dropped[0], 0u);
  // ...and every op resolved, ok or with a real error code (GPU round trips tally up to two
  // awaits per op, so total is >= kOps; a hang would have CHECK-failed inside await).
  EXPECT_GE(out.total_ops(), kOps);
  for (const auto& [code, count] : out.errors) {
    EXPECT_NE(code, ErrorCode::kBrokenPromise) << "count " << count;
  }
  // Failed ops must not leak table state: bounded by live objects + op count, with the
  // cleanup protocol fully drained.
  EXPECT_EQ(out.pending_cleanups, 0u);
  EXPECT_LT(out.total_objects, 600u);
}

TEST(ChaosSoak, SameSeedIsBitIdentical) {
  const ChaosOutcome a = run_chaos(base_seed(), 60);
  const ChaosOutcome b = run_chaos(base_seed(), 60);
  EXPECT_TRUE(same_outcome(a, b))
      << "end_ns " << a.end_ns << " vs " << b.end_ns << ", ok " << a.ok_ops << " vs "
      << b.ok_ops << ", injected " << a.faults.total_injected() << " vs "
      << b.faults.total_injected();
}

TEST(ChaosSoak, DifferentSeedsDiverge) {
  const ChaosOutcome a = run_chaos(base_seed(), 60);
  const ChaosOutcome b = run_chaos(base_seed() + 1, 60);
  EXPECT_FALSE(same_outcome(a, b));
}

// The fault mirrors are bumped at the injector's verdict site, so under any chaos plan the
// net.faults.* metrics must equal the FaultInjector's own counters key-for-key. (drops
// covers both dice-induced and flap-induced losses: the verdict reports both as `drop`.)
TEST(ChaosObservability, FaultMetricsMirrorInjectorCounters) {
  MetricsRegistry metrics;
  SpanTracer tracer;
  const ChaosOutcome out = run_chaos(base_seed(), 60, &metrics, &tracer);

  ASSERT_GT(out.faults.total_injected(), 0u);
  EXPECT_EQ(static_cast<uint64_t>(metrics.value("net.faults.drops")),
            out.faults.dropped[0] + out.faults.dropped[1] + out.faults.partition_drops);
  EXPECT_EQ(static_cast<uint64_t>(metrics.value("net.faults.duplicates")),
            out.faults.duplicated[0] + out.faults.duplicated[1]);
  EXPECT_EQ(static_cast<uint64_t>(metrics.value("net.faults.delayed")),
            out.faults.delayed[0] + out.faults.delayed[1]);
  EXPECT_EQ(static_cast<uint64_t>(metrics.value("net.faults.rdma_retransmits")),
            out.faults.rdma_retransmits);
  EXPECT_EQ(static_cast<uint64_t>(metrics.value("net.faults.rdma_aborts")),
            out.faults.rdma_aborts);
  // RC retry-budget exhaustion mirrors the TrafficCounters field (zero here — the chaos
  // band deliberately stays below the sever horizon — but the keys must agree regardless).
  EXPECT_EQ(static_cast<uint64_t>(metrics.value("net.faults.rc_exhausted")),
            out.traffic.rc_exhausted);

  // The QP reliability layer's own counters surface too: a lossy run must retransmit.
  EXPECT_GT(metrics.value("qp.retransmits"), 0);

  // Even under faults no span leaks: every syscall reply eventually lands (RC retransmit),
  // every timed-out peer op is force-closed, every FS io reaches a terminal branch.
  EXPECT_EQ(tracer.open_spans(), 0u);
  for (const Span& s : tracer.spans()) {
    EXPECT_FALSE(s.open) << "span " << s.span_id << " (" << s.name() << ") left open";
  }
}

// Attaching a tracer and a metrics registry must not perturb the simulation: the
// instrumented run's outcome (end time, traffic, faults, per-op results) is bit-identical
// to the uninstrumented run with the same seed.
TEST(ChaosObservability, InstrumentationDoesNotPerturbTheRun) {
  const ChaosOutcome plain = run_chaos(base_seed(), 60);
  MetricsRegistry metrics;
  SpanTracer tracer;
  const ChaosOutcome traced = run_chaos(base_seed(), 60, &metrics, &tracer);
  EXPECT_TRUE(same_outcome(plain, traced))
      << "end_ns " << plain.end_ns << " vs " << traced.end_ns << ", injected "
      << plain.faults.total_injected() << " vs " << traced.faults.total_injected();
}

// A node outage at the fabric level eats heartbeats while the node keeps executing: the
// monitor must first report the failure, then retract it (re-admission) when beats resume.
TEST(ChaosMonitor, SpuriousNodeFailureIsReadmitted) {
  FaultPlan plan;
  plan.seed = 42;
  plan.outages.push_back({1, Time::from_ns(2'000'000), Time::from_ns(10'000'000)});
  SystemConfig cfg;
  cfg.faults = plan;
  System sys(cfg);
  sys.add_node("monitor");
  sys.add_node("watched");
  Controller& c0 = sys.add_controller(0, Loc::kHost);

  NodeMonitor::Params params;
  params.heartbeat_interval = Duration::millis(1);
  params.failure_timeout = Duration::millis(3);
  params.check_interval = Duration::millis(1);
  NodeMonitor monitor(&sys, 0, params);
  monitor.watch(1);
  monitor.start();

  sys.loop().run_until_time(Time::from_ns(6'000'000));
  EXPECT_TRUE(monitor.reported(1));
  EXPECT_EQ(monitor.failures_detected(), 1u);
  EXPECT_EQ(monitor.recoveries_detected(), 0u);

  sys.loop().run_until_time(Time::from_ns(14'000'000));
  EXPECT_FALSE(monitor.reported(1));
  EXPECT_EQ(monitor.failures_detected(), 1u);
  EXPECT_EQ(monitor.recoveries_detected(), 1u);
  EXPECT_EQ(c0.stats().node_recoveries, 1u);
  EXPECT_GT(sys.fault_injector()->counters().partition_drops, 0u);

  monitor.stop();
  sys.loop().run();
}

// Controller peer ops under a long flap: the op times out on the caller with kTimeout, yet
// the request eventually lands (QP retransmission) and executes exactly once (dedup). The
// late replies are counted and ignored, and the channel recovers for the next op.
TEST(ChaosPeerOps, TimeoutThenDedupAfterLinkHeals) {
  FaultPlan plan;
  plan.seed = 7;
  plan.flaps.push_back({0, 1, Time::from_ns(0), Time::from_ns(3'000'000)});
  SystemConfig cfg;
  cfg.faults = plan;
  System sys(cfg);
  MetricsRegistry metrics;
  sys.loop().set_metrics(&metrics);
  sys.add_node("a");
  sys.add_node("b");
  Controller& c0 = sys.add_controller(0, Loc::kHost);
  Controller& c1 = sys.add_controller(1, Loc::kHost);

  Process& p = sys.spawn("p", 0, c0);
  Process& q = sys.spawn("q", 1, c1);
  // q owns a buffer; p holds a capability to it, so p's diminish is a cross-controller
  // derive (RemoteDerive peer op c0 -> c1). All setup traffic is node-local, so the flap
  // that is already active does not disturb it.
  const CapId qbuf = sys.await_ok(q.memory_create(q.alloc(8192), 8192, Perms::kReadWrite));
  const CapId pbuf = sys.bootstrap_grant(q, qbuf, p).value();
  const uint64_t c1_objects_before = c1.table().total_count();

  // Trace the doomed op: the controller's peer-op span must be closed with the timeout
  // error when the deadline fires, not left dangling until the late reply arrives.
  SpanTracer tracer;
  sys.loop().set_span_tracer(&tracer);
  const uint64_t root = tracer.start_trace("test", "diminish", sys.loop().now());

  // The request (and its resends) are stuck behind the flap; the 1 ms deadline fires first.
  Result<CapId> first = sys.await([&]() {
    SpanScope scope(tracer.context_of(root));
    return p.memory_diminish(pbuf, 0, 4096, Perms::kRead);
  }());
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error(), ErrorCode::kTimeout);
  EXPECT_EQ(c0.stats().peer_op_timeouts, 1u);
  EXPECT_GE(c0.stats().peer_retries, 1u);
  tracer.end(root, sys.loop().now());

  // The timed-out peer op's span is closed — with the error recorded — the moment the
  // deadline fires, and the failed syscall's span carries an error too.
  bool saw_timeout_span = false;
  for (const Span& s : tracer.spans()) {
    if (s.kind == SpanKind::kController && s.name() == "peer-op") {
      EXPECT_FALSE(s.open);
      EXPECT_TRUE(s.error);
      EXPECT_EQ(s.error_what, "timeout");
      saw_timeout_span = true;
    }
  }
  EXPECT_TRUE(saw_timeout_span) << "no peer-op span recorded for the timed-out op";

  // Heal, deliver the queued request copies, and drain: exactly one execution at the owner,
  // the duplicates answered from the dedup cache, every reply late and ignored.
  sys.loop().run();
  EXPECT_GT(sys.loop().now().ns(), 3'000'000);
  EXPECT_EQ(c1.table().total_count(), c1_objects_before + 1);
  EXPECT_GE(c1.stats().peer_dedup_hits, 1u);
  EXPECT_GE(c0.stats().late_replies_ignored, 2u);

  // The channel survived the flap (no sever): the next peer op completes normally.
  const CapId second = sys.await_ok(p.memory_diminish(pbuf, 0, 4096, Perms::kRead));
  EXPECT_NE(second, kInvalidCap);
  EXPECT_EQ(c0.stats().peer_op_timeouts, 1u);

  // Nothing leaks: the late-reply dedup path and the timeout path both close their spans.
  EXPECT_EQ(tracer.open_spans(), 0u);
  sys.loop().set_span_tracer(nullptr);

  // The late replies surfaced as a dedicated metric, mirroring the stats counter exactly.
  EXPECT_EQ(static_cast<uint64_t>(
                metrics.value("ctrl." + std::to_string(c0.addr()) + ".late_reply")),
            c0.stats().late_replies_ignored);
  sys.loop().set_metrics(nullptr);
}

// A seeded spine-link-flap schedule on a fat-tree topology: both uplinks of rack 0 flap for
// a window derived from the seed, partitioning rack 0 from rack 1 regardless of which spine
// ECMP picks. Cross-rack peer ops issued across the window must all resolve — ok before and
// after, kTimeout during — with the partition drops counted, and the whole run must be
// bit-identical when repeated with the same seed.
ChaosOutcome run_spine_flap_chaos(uint64_t seed) {
  Rng r(seed ^ 0x5bd1e995u);
  const int64_t flap_start = kFlapFloorNs + int64_t(r.next_below(1'000'000));
  // The flap must outlast the peer-op deadline (1 ms) by more than the 250 us op pacing,
  // or a lucky draw lets every blocked op resend its way to success after the heal and the
  // window produces zero timeouts. 1.5 .. 2.5 ms guarantees a >=500 us stretch in which
  // any issued op is doomed, for every seed.
  const int64_t flap_len = 1'500'000 + int64_t(r.next_below(1'000'000));

  SystemConfig cfg;
  cfg.topology = TopologySpec::fat_tree(2, 2);
  FaultPlan plan;
  plan.seed = seed;
  for (uint32_t s = 0; s < 2; ++s) {
    plan.flaps.push_back({Topology::tor_id(0), Topology::spine_id(s), Time::from_ns(flap_start),
                          Time::from_ns(flap_start + flap_len)});
  }
  cfg.faults = plan;
  System sys(cfg);
  for (int i = 0; i < 4; ++i) {
    sys.add_node("n" + std::to_string(i));
  }
  Controller& c0 = sys.add_controller(0, Loc::kHost);
  Controller& c2 = sys.add_controller(2, Loc::kHost);
  Process& p = sys.spawn("p", 0, c0);
  Process& q = sys.spawn("q", 2, c2);
  const CapId qbuf = sys.await_ok(q.memory_create(q.alloc(8192), 8192, Perms::kReadWrite));
  const CapId pbuf = sys.bootstrap_grant(q, qbuf, p).value();
  FRACTOS_CHECK_MSG(sys.loop().now().ns() < kFlapFloorNs, "spine-flap setup overran the floor");

  ChaosOutcome out;
  // 30 cross-rack derives, paced 250 us apart: the op train straddles the flap window.
  for (int op = 0; op < 30; ++op) {
    const Result<CapId> res = sys.await(p.memory_diminish(pbuf, 0, 4096, Perms::kRead));
    if (res.ok()) {
      ++out.ok_ops;
    } else {
      ++out.errors[res.error()];
    }
    sys.loop().run_until_time(sys.loop().now() + Duration::micros(250));
  }
  sys.loop().run();

  out.end_ns = sys.loop().now().ns();
  out.traffic = sys.net().counters();
  out.faults = sys.fault_injector()->counters();
  out.live_objects = c2.table().live_count();
  out.total_objects = c2.table().total_count();
  return out;
}

TEST(ChaosSpineFlap, CrossRackOpsResolveAcrossTheFlapWindow) {
  const ChaosOutcome out = run_spine_flap_chaos(base_seed());
  EXPECT_EQ(out.total_ops(), 30);
  EXPECT_GT(out.ok_ops, 0) << "no op succeeded outside the flap window";
  EXPECT_GT(out.errors.count(ErrorCode::kTimeout), 0u)
      << "no op hit the partition — flap window missed the op train";
  for (const auto& [code, count] : out.errors) {
    EXPECT_EQ(code, ErrorCode::kTimeout) << "count " << count;
  }
  // The drops were the deterministic topology-link kind, not dice.
  EXPECT_GT(out.faults.partition_drops, 0u);
  EXPECT_EQ(out.faults.dropped[0] + out.faults.dropped[1], 0u);
}

TEST(ChaosSpineFlap, SameSeedIsBitIdentical) {
  const ChaosOutcome a = run_spine_flap_chaos(base_seed());
  const ChaosOutcome b = run_spine_flap_chaos(base_seed());
  EXPECT_TRUE(same_outcome(a, b))
      << "end_ns " << a.end_ns << " vs " << b.end_ns << ", ok " << a.ok_ops << " vs "
      << b.ok_ops << ", partition_drops " << a.faults.partition_drops << " vs "
      << b.faults.partition_drops;
}

// --- controller failure mid-revocation of a delegation chain -----------------------------------

// A 4-level delegation chain root -> l1 -> l2 -> l3 -> l4 spans three Controllers (levels 3/4
// are held at c2), with a monitor_receive on every level. c2 is killed at a seeded point while
// l1's revocation is in flight — before, between, or after the cleanup broadcast hops — then
// restarted. Afterwards no capability under l1 may ever be honored again (the revocation took
// effect atomically at the owner, so a lost broadcast leg must not matter), the untouched root
// must keep working, each monitor must have fired exactly once, and the owner's translation
// cache must still audit clean. The hot path (translation cache + batched peer ops) is on, so
// this also exercises cache invalidation racing a peer failure.
TEST(ChaosRevocation, ControllerFailureMidRevocationHonorsNoStaleCap) {
  for (const uint64_t fail_step : {0ull, 1ull, 2ull, 4ull, 8ull, 16ull}) {
    SystemConfig cfg;
    cfg.translation_cache_entries = 64;
    cfg.charge_chain_traversal = true;
    cfg.peer_op_batch_max = 4;
    System sys(cfg);
    const uint32_t n0 = sys.add_node("owner");
    const uint32_t n1 = sys.add_node("mid");
    const uint32_t n2 = sys.add_node("far");
    Controller& c0 = sys.add_controller(n0, Loc::kHost);
    Controller& c1 = sys.add_controller(n1, Loc::kHost);
    Controller& c2 = sys.add_controller(n2, Loc::kHost);
    Process& provider = sys.spawn("provider", n0, c0);
    Process& watcher = sys.spawn("watcher", n0, c0);
    Process& holder1 = sys.spawn("holder1", n1, c1);
    Process& holder2 = sys.spawn("holder2", n2, c2);

    int deliveries = 0;
    const CapId root =
        sys.await_ok(provider.serve({}, [&](Process::Received) { ++deliveries; }));
    const CapId root_h1 = sys.bootstrap_grant(provider, root, holder1).value();

    // Build the chain: l1/l2 derived by holder1, l3/l4 derived by holder2 (on c2).
    const CapId l1 = sys.await_ok(holder1.cap_create_revtree(root_h1));
    const CapId l2 = sys.await_ok(holder1.cap_create_revtree(l1));
    const CapId l2_h2 = sys.bootstrap_grant(holder1, l2, holder2).value();
    const CapId l3 = sys.await_ok(holder2.cap_create_revtree(l2_h2));
    const CapId l4 = sys.await_ok(holder2.cap_create_revtree(l3));
    // The watcher (on the always-alive c0) monitors levels 3/4 so every fire is observable
    // even while c2 is down.
    const CapId l3_w = sys.bootstrap_grant(holder2, l3, watcher).value();
    const CapId l4_w = sys.bootstrap_grant(holder2, l4, watcher).value();

    std::map<uint64_t, int> fires;
    holder1.set_monitor_handler([&](uint64_t cb, bool) { ++fires[cb]; });
    watcher.set_monitor_handler([&](uint64_t cb, bool) { ++fires[cb]; });
    ASSERT_TRUE(sys.await(holder1.monitor_receive(l1, 1)).ok());
    ASSERT_TRUE(sys.await(holder1.monitor_receive(l2, 2)).ok());
    ASSERT_TRUE(sys.await(watcher.monitor_receive(l3_w, 3)).ok());
    ASSERT_TRUE(sys.await(watcher.monitor_receive(l4_w, 4)).ok());

    // Sanity: the deep end of the chain delivers before the revocation.
    holder2.request_invoke(l4);
    sys.loop().run();
    ASSERT_EQ(deliveries, 1) << "fail_step " << fail_step;

    // Revoke l1 and kill c2 `fail_step` events into the in-flight revocation.
    auto revoked = holder1.cap_revoke(l1);
    sys.loop().run(fail_step);
    sys.fail_controller(c2);
    sys.loop().run();
    ASSERT_TRUE(revoked.ready()) << "fail_step " << fail_step;
    EXPECT_TRUE(revoked.take().ok()) << "fail_step " << fail_step;

    sys.restart_controller(c2);
    sys.loop().run();

    // No stale capability is honored: nothing under l1 can reach the provider again,
    // whichever side of the torn broadcast each holder was on.
    const int before = deliveries;
    holder2.request_invoke(l4);
    holder2.request_invoke(l3);
    holder1.request_invoke(l2);
    holder1.request_invoke(l1);
    sys.loop().run();
    EXPECT_EQ(deliveries, before) << "fail_step " << fail_step;

    // The untouched root still works...
    holder1.request_invoke(root_h1);
    sys.loop().run();
    EXPECT_EQ(deliveries, before + 1) << "fail_step " << fail_step;

    // ...each monitor fired exactly once...
    ASSERT_EQ(fires.size(), 4u) << "fail_step " << fail_step;
    for (const auto& [cb, count] : fires) {
      EXPECT_EQ(count, 1) << "callback " << cb << " fail_step " << fail_step;
    }

    // ...and the owner's translation cache is coherent with its table.
    EXPECT_TRUE(c0.translation_cache_audit().ok()) << "fail_step " << fail_step;
  }
}

// A flap that outlives the QP sever horizon: the RC layer retransmits until the head WQE's
// retry budget exhausts, then moves the connection to the error state. The exhaustion is a
// first-class counter mirrored into net.faults.rc_exhausted, and the severed channel fails
// cleanly (kChannelClosed) instead of retrying forever.
TEST(ChaosPeerOps, RetryBudgetExhaustionSeversAndIsCounted) {
  FaultPlan plan;
  plan.seed = 9;
  plan.flaps.push_back({0, 1, Time::from_ns(0), Time::from_ns(15'000'000)});
  SystemConfig cfg;
  cfg.faults = plan;
  System sys(cfg);
  MetricsRegistry metrics;
  sys.loop().set_metrics(&metrics);
  sys.add_node("a");
  sys.add_node("b");
  Controller& c0 = sys.add_controller(0, Loc::kHost);
  Controller& c1 = sys.add_controller(1, Loc::kHost);
  Process& p = sys.spawn("p", 0, c0);
  Process& q = sys.spawn("q", 1, c1);
  const CapId qbuf = sys.await_ok(q.memory_create(q.alloc(8192), 8192, Perms::kReadWrite));
  const CapId pbuf = sys.bootstrap_grant(q, qbuf, p).value();

  // The op times out on the caller long before the QP gives up retransmitting the request.
  const Result<CapId> first = sys.await(p.memory_diminish(pbuf, 0, 4096, Perms::kRead));
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error(), ErrorCode::kTimeout);
  sys.loop().run();  // ride out the flap: head retries exhaust ~11 ms in, severing the QP

  EXPECT_GE(sys.net().counters().rc_exhausted, 1u);
  EXPECT_EQ(static_cast<uint64_t>(metrics.value("net.faults.rc_exhausted")),
            sys.net().counters().rc_exhausted);

  // The severed channel reports closure immediately — no silent hang, no misdelivery.
  const Result<CapId> second = sys.await(p.memory_diminish(pbuf, 0, 4096, Perms::kRead));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error(), ErrorCode::kChannelClosed);
  sys.loop().set_metrics(nullptr);
}

// Monitor false positive from a flapped *monitoring* link: heartbeats (UD datagrams) from
// the watched node drop while the node itself — and the capability data path to it — stays
// perfectly healthy. The suspicion must not misroute or disturb a single capability op:
// derives keep landing at the suspected node's Controller (the owner), nowhere else, and
// re-admission fires once beats resume. The watched node hosts only a Controller (its
// attached Process runs on another node, the Shared-HAL deployment), so the false positive
// has no process casualties to mask the routing assertion.
TEST(ChaosMonitor, LinkFlapFalsePositiveDoesNotMisrouteCapabilityOps) {
  FaultPlan plan;
  plan.seed = 21;
  plan.flaps.push_back({0, 1, Time::from_ns(2'000'000), Time::from_ns(10'000'000)});
  SystemConfig cfg;
  cfg.faults = plan;
  System sys(cfg);
  sys.add_node("monitor");
  sys.add_node("watched");
  sys.add_node("client");
  Controller& c1 = sys.add_controller(1, Loc::kHost);  // on the watched node
  Controller& c2 = sys.add_controller(2, Loc::kHost);
  // Shared HAL: q runs on the client node but its capability seat is c1 on the watched
  // node, so c1 owns objects while no Process lives on the suspected node.
  Process& q = sys.spawn("q", 2, c1);
  Process& p = sys.spawn("p", 2, c2);
  const CapId qbuf = sys.await_ok(q.memory_create(q.alloc(16384), 16384, Perms::kReadWrite));
  const CapId pbuf = sys.bootstrap_grant(q, qbuf, p).value();

  NodeMonitor::Params params;
  params.heartbeat_interval = Duration::millis(1);
  params.failure_timeout = Duration::millis(3);
  params.check_interval = Duration::millis(1);
  NodeMonitor monitor(&sys, 0, params);
  monitor.watch(1);
  monitor.start();

  // Mid-flap: the monitor has (wrongly) declared the node dead.
  sys.loop().run_until_time(Time::from_ns(6'500'000));
  EXPECT_TRUE(monitor.reported(1));
  EXPECT_EQ(monitor.failures_detected(), 1u);

  // Capability ops issued during the suspect window still route to the suspected owner —
  // the client<->owner link is clean; only the monitoring link is flapping.
  const uint64_t c1_objects = c1.table().total_count();
  const uint64_t c2_objects = c2.table().total_count();
  for (int i = 0; i < 3; ++i) {
    const Result<CapId> view = sys.await(p.memory_diminish(pbuf, 0, 4096, Perms::kRead));
    ASSERT_TRUE(view.ok()) << "op " << i << ": " << error_code_name(view.error());
  }
  EXPECT_EQ(c1.table().total_count(), c1_objects + 3);  // derived at the owner...
  EXPECT_EQ(c2.table().total_count(), c2_objects);      // ...and nowhere else
  EXPECT_TRUE(monitor.reported(1)) << "ops outran the suspect window";

  // The link heals, beats resume, the report is retracted exactly once.
  sys.loop().run_until_time(Time::from_ns(14'000'000));
  EXPECT_FALSE(monitor.reported(1));
  EXPECT_EQ(monitor.failures_detected(), 1u);
  EXPECT_EQ(monitor.recoveries_detected(), 1u);
  EXPECT_EQ(c1.stats().node_recoveries, 1u);
  EXPECT_EQ(c2.stats().node_recoveries, 1u);

  monitor.stop();
  sys.loop().run();
}

// --- leader killed mid-revocation with quorum replication on ------------------------------------

// The PR's acceptance scenario: a 4-level delegation chain rooted at a replicated seat, the
// seat Controller killed a seeded number of events into an in-flight revocation. A replica
// must take over within the lease bound, the revocation must reach a terminal, audited
// state (completed, or provably never-started and repeatable), no capability under the
// revoked level may ever derive again, the untouched levels must keep working, monitors
// fire at most once across the failover, and both surviving state machines must report the
// same structural digest. FRACTOS_FAILOVER_TRACE=<dir> dumps per-step span traces as
// Chrome trace JSON (the CI failover job uploads them on failure).
TEST(ChaosFailover, LeaderKilledMidRevocationHonorsNoStaleCap) {
  const char* trace_dir = std::getenv("FRACTOS_FAILOVER_TRACE");
  Rng step_rng(base_seed() * 0x9e3779b97f4a7c15ull + 1);
  for (const uint64_t fail_step : {0ull, 1ull, 2ull, 4ull, 8ull, 16ull, 32ull}) {
    // The seed shifts every kill point so the CI seed matrix sweeps distinct interleavings.
    const uint64_t kill_step = fail_step + step_rng.next_below(3);
    SystemConfig cfg;
    cfg.replication_group_size = 3;
    System sys(cfg);
    SpanTracer tracer;
    if (trace_dir != nullptr) {
      sys.loop().set_span_tracer(&tracer);
    }
    sys.add_node("seat");
    sys.add_node("r1");
    sys.add_node("r2");
    sys.add_node("holder");
    Controller& c1 = sys.add_controller(0, Loc::kHost);
    Controller& c2 = sys.add_controller(1, Loc::kHost);
    Controller& c3 = sys.add_controller(2, Loc::kHost);
    Controller& c4 = sys.add_controller(3, Loc::kHost);
    const ControllerAddr seat = c1.addr();
    sys.replicate_controller(c1, {&c2, &c3});

    Process& provider = sys.spawn("provider", 0, c1);
    Process& holder = sys.spawn("holder", 3, c4);
    Process& watcher = sys.spawn("watcher", 3, c4);

    const CapId root =
        sys.await_ok(provider.memory_create(provider.alloc(8192), 8192, Perms::kReadWrite));
    const CapId root_h = sys.bootstrap_grant(provider, root, holder).value();
    // 4-level chain, every level owned by the replicated seat (derivation-at-owner).
    const CapId l1 = sys.await_ok(holder.cap_create_revtree(root_h));
    const CapId l2 = sys.await_ok(holder.cap_create_revtree(l1));
    const CapId l3 = sys.await_ok(holder.cap_create_revtree(l2));
    const CapId l4 = sys.await_ok(holder.cap_create_revtree(l3));
    const CapId l2_w = sys.bootstrap_grant(holder, l2, watcher).value();
    const CapId l4_w = sys.bootstrap_grant(holder, l4, watcher).value();
    std::map<uint64_t, int> fires;
    watcher.set_monitor_handler([&](uint64_t cb, bool) { ++fires[cb]; });
    ASSERT_TRUE(sys.await(watcher.monitor_receive(l2_w, 2)).ok());
    ASSERT_TRUE(sys.await(watcher.monitor_receive(l4_w, 4)).ok());

    // Kill the leader `kill_step` events into the revocation of l2 (subtree l2/l3/l4).
    auto revoked = holder.cap_revoke(l2);
    sys.loop().run(kill_step);
    const Time killed = sys.loop().now();
    sys.fail_controller(c1);

    // A replica takes over within the lease bound; rank order makes it c2 every time.
    ASSERT_TRUE(sys.loop().run_until(
        [&]() { return c2.serves_seat(seat) || c3.serves_seat(seat); }))
        << "kill_step " << kill_step;
    EXPECT_LE((sys.loop().now() - killed).ns(), cfg.replication.lease.ns())
        << "kill_step " << kill_step;
    EXPECT_NE(c2.serves_seat(seat), c3.serves_seat(seat)) << "kill_step " << kill_step;
    sys.loop().run_until_time(sys.loop().now() + Duration::millis(2));

    // The in-flight revocation resolved one way or the other. If its outcome was unknown
    // (leader died holding it), the retry at the takeover leader must land terminally:
    // kOk (it never committed) or kRevoked (it did, and the takeover finished the cleanup).
    ASSERT_TRUE(revoked.ready()) << "kill_step " << kill_step;
    const Status first = revoked.take();
    if (!first.ok()) {
      // Terminal either way: kOk (never committed — ran fresh at the takeover), or
      // kRevoked / kInvalidCapability (committed before the kill — the cap is a tombstone
      // or already erased; the takeover leader finishes the cleanup broadcast).
      const Status retry = sys.await(holder.cap_revoke(l2));
      EXPECT_TRUE(retry.ok() || retry.error() == ErrorCode::kRevoked ||
                  retry.error() == ErrorCode::kInvalidCapability)
          << "kill_step " << kill_step << ": " << error_code_name(retry.error());
    }
    sys.loop().run_until_time(sys.loop().now() + Duration::millis(2));

    // No stale capability honored: nothing under l2 derives at the takeover leader.
    for (const CapId stale : {l2, l3, l4}) {
      const Result<CapId> derived = sys.await(holder.cap_create_revtree(stale));
      ASSERT_FALSE(derived.ok()) << "kill_step " << kill_step;
      EXPECT_TRUE(derived.error() == ErrorCode::kRevoked ||
                  derived.error() == ErrorCode::kInvalidCapability)
          << "kill_step " << kill_step << ": " << error_code_name(derived.error());
    }
    // No committed grant lost: the untouched levels still derive.
    EXPECT_NE(sys.await_ok(holder.cap_create_revtree(l1)), kInvalidCap)
        << "kill_step " << kill_step;
    EXPECT_NE(sys.await_ok(holder.cap_create_revtree(root_h)), kInvalidCap)
        << "kill_step " << kill_step;

    // Monitors fired at most once each across the failover (never twice, even though the
    // takeover leader re-broadcasts cleanup for revocations the dead leader started).
    for (const auto& [cb, count] : fires) {
      EXPECT_LE(count, 1) << "callback " << cb << " kill_step " << kill_step;
    }

    // Replica audit: both survivors converged to the same structural digest, and the
    // cleanup protocol fully drained on every live Controller.
    sys.loop().run_until_time(sys.loop().now() + Duration::millis(2));
    const uint64_t digest = c2.seat_state_digest(seat);
    EXPECT_NE(digest, 0u) << "kill_step " << kill_step;
    EXPECT_EQ(digest, c3.seat_state_digest(seat)) << "kill_step " << kill_step;
    EXPECT_EQ(c2.pending_cleanups() + c3.pending_cleanups() + c4.pending_cleanups(), 0u)
        << "kill_step " << kill_step;

    for (Controller* c : {&c2, &c3}) {
      if (ReplicationGroup* g = c->replication_group(seat)) {
        g->stop(ErrorCode::kAborted);
      }
    }
    sys.loop().run();
    if (trace_dir != nullptr) {
      sys.loop().set_span_tracer(nullptr);
      const std::string path = std::string(trace_dir) + "/failover_seed" +
                               std::to_string(base_seed()) + "_step" +
                               std::to_string(fail_step) + ".json";
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        const std::string json = chrome_trace_json(tracer);
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      }
    }
  }
}

}  // namespace
}  // namespace fractos
