// Unit tests for the single-threaded promise/future library.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/futures/future.h"
#include "src/futures/slot_pool.h"
#include "src/futures/timeout.h"
#include "src/sim/event_loop.h"

namespace fractos {
namespace {

TEST(FutureTest, SetBeforeOnReady) {
  Promise<int> p;
  p.set(42);
  int got = 0;
  p.future().on_ready([&](int&& v) { got = v; });
  EXPECT_EQ(got, 42);
}

TEST(FutureTest, SetAfterOnReady) {
  Promise<int> p;
  int got = 0;
  p.future().on_ready([&](int&& v) { got = v; });
  EXPECT_EQ(got, 0);
  p.set(7);
  EXPECT_EQ(got, 7);
}

TEST(FutureTest, ReadyAndPeekAndTake) {
  Promise<std::string> p;
  auto f = p.future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.ready());
  p.set("hello");
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), "hello");
  EXPECT_EQ(f.take(), "hello");
}

TEST(FutureTest, ThenMapsValue) {
  Promise<int> p;
  auto f = p.future().then([](int&& v) { return v * 2; });
  p.set(21);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), 42);
}

TEST(FutureTest, ThenVoidYieldsUnit) {
  Promise<int> p;
  int seen = 0;
  auto f = p.future().then([&](int&& v) { seen = v; });
  p.set(5);
  EXPECT_EQ(seen, 5);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), Unit{});
}

TEST(FutureTest, ThenFlattensNestedFuture) {
  Promise<int> outer;
  Promise<std::string> inner;
  auto f = outer.future().then([&inner](int&&) { return inner.future(); });
  static_assert(std::is_same_v<decltype(f), Future<std::string>>);
  outer.set(1);
  EXPECT_FALSE(f.ready());
  inner.set("done");
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), "done");
}

TEST(FutureTest, LongThenChain) {
  Promise<int> p;
  auto f = p.future();
  Future<int> chained = f.then([](int&& v) { return v + 1; });
  for (int i = 0; i < 50; ++i) {
    chained = chained.then([](int&& v) { return v + 1; });
  }
  p.set(0);
  ASSERT_TRUE(chained.ready());
  EXPECT_EQ(chained.peek(), 51);
}

TEST(FutureTest, MoveOnlyishValueMoves) {
  Promise<std::vector<int>> p;
  std::vector<int> got;
  p.future().on_ready([&](std::vector<int>&& v) { got = std::move(v); });
  p.set({1, 2, 3});
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(FutureTest, MakeReadyFuture) {
  auto f = make_ready_future(9);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), 9);
  auto u = make_ready_future();
  EXPECT_TRUE(u.ready());
}

TEST(FutureTest, PromiseFulfilledFlag) {
  Promise<int> p;
  EXPECT_FALSE(p.fulfilled());
  p.set(1);
  EXPECT_TRUE(p.fulfilled());
  Promise<int> q;
  q.future().on_ready([](int&&) {});
  q.set(2);
  EXPECT_TRUE(q.fulfilled());
}

TEST(WhenAllTest, EmptyInput) {
  auto f = when_all(std::vector<Future<int>>{});
  ASSERT_TRUE(f.ready());
  EXPECT_TRUE(f.peek().empty());
}

TEST(WhenAllTest, PreservesOrderRegardlessOfCompletion) {
  Promise<int> a, b, c;
  auto f = when_all(std::vector<Future<int>>{a.future(), b.future(), c.future()});
  c.set(3);
  a.set(1);
  EXPECT_FALSE(f.ready());
  b.set(2);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), (std::vector<int>{1, 2, 3}));
}

TEST(WhenAllTest, AlreadyReadyInputs) {
  auto f = when_all(std::vector<Future<int>>{make_ready_future(4), make_ready_future(5)});
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), (std::vector<int>{4, 5}));
}

TEST(FutureTest, ContinuationRunsSynchronouslyOnSet) {
  Promise<int> p;
  std::vector<int> order;
  p.future().on_ready([&](int&&) { order.push_back(1); });
  order.push_back(0);
  p.set(0);
  order.push_back(2);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---- and_then: the success path of the error channel --------------------------------------

TEST(AndThenTest, MapsSuccessValue) {
  Promise<Result<int>> p;
  auto f = p.future().and_then([](int&& v) { return v * 2; });
  static_assert(std::is_same_v<decltype(f), Future<Result<int>>>);
  p.set(Result<int>(21));
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().value(), 42);
}

TEST(AndThenTest, ShortCircuitsOnEveryErrorClass) {
  // Capability-layer, argument, and resource/transport failures must all skip the
  // continuation and come out the other side unchanged.
  for (ErrorCode e :
       {ErrorCode::kInvalidCapability, ErrorCode::kRevoked, ErrorCode::kStaleCapability,
        ErrorCode::kPermissionDenied, ErrorCode::kWrongObjectKind, ErrorCode::kInvalidArgument,
        ErrorCode::kOutOfRange, ErrorCode::kNotFound, ErrorCode::kResourceExhausted,
        ErrorCode::kBackpressure, ErrorCode::kChannelClosed, ErrorCode::kTimeout,
        ErrorCode::kAborted, ErrorCode::kBrokenPromise, ErrorCode::kInternal}) {
    Promise<Result<int>> p;
    bool ran = false;
    auto f = p.future().and_then([&](int&&) {
      ran = true;
      return 0;
    });
    p.set(Result<int>(e));
    ASSERT_TRUE(f.ready());
    EXPECT_FALSE(ran) << error_code_name(e);
    EXPECT_EQ(f.peek().error(), e) << error_code_name(e);
  }
}

TEST(AndThenTest, StatusContinuationTakesNoArgument) {
  Promise<Status> p;
  auto f = p.future().and_then([]() { return 7; });
  static_assert(std::is_same_v<decltype(f), Future<Result<int>>>);
  p.set(ok_status());
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().value(), 7);
}

TEST(AndThenTest, VoidContinuationYieldsStatus) {
  Promise<Result<int>> p;
  int seen = 0;
  auto f = p.future().and_then([&](int&& v) { seen = v; });
  static_assert(std::is_same_v<decltype(f), Future<Status>>);
  p.set(Result<int>(5));
  EXPECT_EQ(seen, 5);
  ASSERT_TRUE(f.ready());
  EXPECT_TRUE(f.peek().ok());
}

TEST(AndThenTest, ResultReturningContinuationCanFail) {
  Promise<Result<int>> p;
  auto f = p.future().and_then([](int&&) -> Result<int> { return ErrorCode::kOutOfRange; });
  p.set(Result<int>(-1));
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().error(), ErrorCode::kOutOfRange);
}

TEST(AndThenTest, FlattensFutureReturningContinuation) {
  Promise<Result<int>> outer;
  Promise<Result<std::string>> inner;
  auto f = outer.future().and_then([&](int&&) { return inner.future(); });
  static_assert(std::is_same_v<decltype(f), Future<Result<std::string>>>);
  outer.set(Result<int>(1));
  EXPECT_FALSE(f.ready());
  inner.set(Result<std::string>(std::string("done")));
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().value(), "done");
}

TEST(AndThenTest, PipelineShortCircuitsPastLaterStages) {
  Promise<Result<int>> p;
  std::vector<int> stages;
  auto f = p.future()
               .and_then([&](int&&) -> Result<int> {
                 stages.push_back(1);
                 return ErrorCode::kNotFound;
               })
               .and_then([&](int&&) {
                 stages.push_back(2);
                 return 0;
               })
               .or_else([&](ErrorCode) { stages.push_back(3); });
  p.set(Result<int>(0));
  EXPECT_EQ(stages, (std::vector<int>{1, 3}));
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().error(), ErrorCode::kNotFound);
}

// ---- or_else: the error path --------------------------------------------------------------

TEST(OrElseTest, SideEffectOnlyHandlerPropagatesTheError) {
  Promise<Result<int>> p;
  ErrorCode seen = ErrorCode::kOk;
  auto f = p.future().or_else([&](ErrorCode e) { seen = e; });
  p.set(Result<int>(ErrorCode::kRevoked));
  EXPECT_EQ(seen, ErrorCode::kRevoked);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().error(), ErrorCode::kRevoked);
}

TEST(OrElseTest, SkipsHandlerOnSuccess) {
  Promise<Result<int>> p;
  bool ran = false;
  auto f = p.future().or_else([&](ErrorCode) {
    ran = true;
    return -1;
  });
  p.set(Result<int>(3));
  EXPECT_FALSE(ran);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().value(), 3);
}

TEST(OrElseTest, RecoveryValueReplacesTheError) {
  Promise<Result<int>> p;
  auto f = p.future().or_else([](ErrorCode) { return 99; });
  p.set(Result<int>(ErrorCode::kTimeout));
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().value(), 99);
}

TEST(OrElseTest, RecoveryFutureIsFlattened) {
  Promise<Result<int>> p;
  Promise<Result<int>> recovery;
  auto f = p.future().or_else([&](ErrorCode) { return recovery.future(); });
  p.set(Result<int>(ErrorCode::kChannelClosed));
  EXPECT_FALSE(f.ready());
  recovery.set(Result<int>(12));
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().value(), 12);
}

// ---- when_any -----------------------------------------------------------------------------

TEST(WhenAnyTest, FirstCompletionWinsAndLosersAreDropped) {
  Promise<int> a, b, c;
  auto f = when_any(std::vector<Future<int>>{a.future(), b.future(), c.future()});
  EXPECT_FALSE(f.ready());
  b.set(20);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().index, 1u);
  EXPECT_EQ(f.peek().value, 20);
  a.set(10);  // late completions are silently dropped
  c.set(30);
  EXPECT_EQ(f.peek().index, 1u);
  EXPECT_EQ(f.peek().value, 20);
}

TEST(WhenAnyTest, AlreadyReadyInputsResolveToLowestIndexDeterministically) {
  Promise<int> a, b;
  b.set(2);  // set order is b then a, but attachment order (input order) decides the winner
  a.set(1);
  auto f = when_any(std::vector<Future<int>>{a.future(), b.future()});
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().index, 0u);
  EXPECT_EQ(f.peek().value, 1);
}

// ---- with_timeout / sleep_for (simulated clock) -------------------------------------------

TEST(TimeoutTest, SleepForAdvancesSimulatedTime) {
  EventLoop loop;
  bool woke = false;
  sleep_for(loop, Duration::micros(3)).on_ready([&](Unit&&) { woke = true; });
  EXPECT_FALSE(woke);
  loop.run();
  EXPECT_TRUE(woke);
  EXPECT_EQ(loop.now().ns(), Duration::micros(3).ns());
}

TEST(TimeoutTest, DeadlineFiresWhenInnerFutureNeverCompletes) {
  EventLoop loop;
  Promise<Result<int>> p;
  auto f = with_timeout(loop, Duration::micros(10), p.future());
  EXPECT_FALSE(f.ready());
  loop.run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().error(), ErrorCode::kTimeout);
}

TEST(TimeoutTest, InnerCompletionBeatsTheDeadline) {
  EventLoop loop;
  Promise<Result<int>> p;
  auto f = with_timeout(loop, Duration::millis(5), p.future());
  loop.schedule_after(Duration::micros(1), [p]() { p.set(Result<int>(8)); });
  loop.run();
  ASSERT_TRUE(f.ready());
  ASSERT_TRUE(f.peek().ok());
  EXPECT_EQ(f.peek().value(), 8);
}

TEST(TimeoutTest, SimultaneousCompletionAndDeadlineIsDeterministic) {
  // Equal timestamps fire in submission order: the inner future's completion was scheduled
  // after with_timeout armed the deadline, so the deadline wins — every run, bit-for-bit.
  EventLoop loop;
  Promise<Result<int>> p;
  auto f = with_timeout(loop, Duration::micros(2), p.future());
  loop.schedule_after(Duration::micros(2), [p]() { p.set(Result<int>(8)); });
  loop.run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().error(), ErrorCode::kTimeout);
}

// ---- trampoline: deep chains must not overflow the stack ----------------------------------

TEST(TrampolineTest, HundredThousandLinkThenChain) {
  Promise<int> p;
  Future<int> chained = p.future();
  constexpr int kLinks = 100000;
  for (int i = 0; i < kLinks; ++i) {
    chained = chained.then([](int&& v) { return v + 1; });
  }
  p.set(0);
  // The whole chain completes before set() returns: the trampoline defers frames past the
  // depth bound but the outermost delivery drains them, so callers still observe synchronous
  // completion.
  ASSERT_TRUE(chained.ready());
  EXPECT_EQ(chained.peek(), kLinks);
}

TEST(TrampolineTest, DeepErrorShortCircuitAlsoTrampolines) {
  Promise<Result<int>> p;
  Future<Result<int>> chained = p.future();
  constexpr int kLinks = 100000;
  for (int i = 0; i < kLinks; ++i) {
    chained = chained.and_then([](int&& v) { return v; });
  }
  p.set(Result<int>(ErrorCode::kAborted));
  ASSERT_TRUE(chained.ready());
  EXPECT_EQ(chained.peek().error(), ErrorCode::kAborted);
}

TEST(TrampolineTest, ShallowChainsStaySynchronousInOrder) {
  // Below the depth bound nothing is deferred: continuations interleave exactly as before the
  // trampoline existed (this pins the fast path so service code keeps its ordering).
  std::vector<int> order;
  Promise<int> p;
  p.future().on_ready([&](int&& v) {
    order.push_back(v);
    Promise<int> q;
    q.future().on_ready([&](int&& w) { order.push_back(w); });
    q.set(v + 1);
    order.push_back(v + 2);
  });
  p.set(0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---- broken promises ----------------------------------------------------------------------

TEST(BrokenPromiseTest, ResultFutureBecomesReadyWithBrokenPromise) {
  Future<Result<int>> f;
  {
    Promise<Result<int>> p;
    f = p.future();
  }
  EXPECT_TRUE(f.broken());
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek().error(), ErrorCode::kBrokenPromise);
}

TEST(BrokenPromiseTest, AttachedContinuationIsDeliveredTheError) {
  ErrorCode seen = ErrorCode::kOk;
  {
    Promise<Result<int>> p;
    p.future().or_else([&](ErrorCode e) { seen = e; });
  }
  EXPECT_EQ(seen, ErrorCode::kBrokenPromise);
}

TEST(BrokenPromiseTest, CopiedPromisesShareOneObligation) {
  Future<Result<int>> f;
  {
    Promise<Result<int>> p;
    f = p.future();
    Promise<Result<int>> q = p;  // two handles, one obligation
    {
      Promise<Result<int>> r = q;
      (void)r;
    }
    EXPECT_FALSE(f.broken());  // a handle is still alive
  }
  EXPECT_TRUE(f.broken());
}

TEST(BrokenPromiseTest, NonResultFutureWithoutContinuationJustMarksBroken) {
  Future<int> f;
  {
    Promise<int> p;
    f = p.future();
  }
  EXPECT_TRUE(f.broken());
  EXPECT_FALSE(f.ready());
}

TEST(BrokenPromiseDeathTest, NonResultContinuationWouldDangleSoItChecks) {
  EXPECT_DEATH(
      {
        Promise<int> p;
        p.future().on_ready([](int&&) {});
        // p dies here without set(): the continuation would dangle forever.
      },
      "Promise destroyed without set");
}

TEST(BrokenPromiseDeathTest, DoubleSetChecks) {
  EXPECT_DEATH(
      {
        Promise<int> p;
        p.future().on_ready([](int&&) {});
        p.set(1);
        p.set(2);
      },
      "already delivered");
}

// ---- SlotPool -----------------------------------------------------------------------------

TEST(SlotPoolTest, GrantsSlotsInOrderThenQueuesFifo) {
  SlotPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::vector<size_t> grants;
  auto grab = [&] {
    pool.acquire().and_then([&](size_t s) { grants.push_back(s); });
  };
  grab();
  grab();
  EXPECT_EQ(grants, (std::vector<size_t>{0, 1}));  // lowest-numbered first
  EXPECT_EQ(pool.available(), 0u);
  grab();  // pool exhausted: these two queue behind each other
  grab();
  EXPECT_EQ(pool.waiting(), 2u);
  EXPECT_EQ(grants.size(), 2u);
  pool.release(1);  // the longest-waiting acquirer is woken synchronously with this slot
  EXPECT_EQ(grants, (std::vector<size_t>{0, 1, 1}));
  pool.release(0);
  EXPECT_EQ(grants, (std::vector<size_t>{0, 1, 1, 0}));
  EXPECT_EQ(pool.waiting(), 0u);
  pool.release(1);
  pool.release(0);
  EXPECT_EQ(pool.available(), 2u);
}

TEST(SlotPoolTest, CloseFailsWaitersAndLaterAcquires) {
  SlotPool pool(1);
  pool.acquire().and_then([](size_t) {});  // takes the only slot
  ErrorCode waiter_err = ErrorCode::kOk;
  pool.acquire().or_else([&](ErrorCode e) { waiter_err = e; });
  pool.close(ErrorCode::kChannelClosed);
  EXPECT_TRUE(pool.closed());
  EXPECT_EQ(waiter_err, ErrorCode::kChannelClosed);
  ErrorCode late_err = ErrorCode::kOk;
  pool.acquire().or_else([&](ErrorCode e) { late_err = e; });
  EXPECT_EQ(late_err, ErrorCode::kAborted);
}

TEST(SlotPoolTest, DestructionBreaksQueuedAcquirersThroughTheErrorChannel) {
  ErrorCode seen = ErrorCode::kOk;
  {
    SlotPool pool(1);
    pool.acquire().and_then([](size_t) {});
    pool.acquire().or_else([&](ErrorCode e) { seen = e; });
  }
  EXPECT_EQ(seen, ErrorCode::kBrokenPromise);
}

TEST(SlotPoolTest, ReleaseAfterCloseReturnsToFreeListWithoutWaking) {
  SlotPool pool(2);
  size_t got = SIZE_MAX;
  pool.acquire().and_then([&](size_t s) { got = s; });
  ASSERT_EQ(got, 0u);
  pool.close();
  pool.release(0);
  EXPECT_EQ(pool.available(), 2u);  // slot returned quietly; nobody can be waiting
}

}  // namespace
}  // namespace fractos
