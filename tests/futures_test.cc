// Unit tests for the single-threaded promise/future library.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/futures/future.h"

namespace fractos {
namespace {

TEST(FutureTest, SetBeforeOnReady) {
  Promise<int> p;
  p.set(42);
  int got = 0;
  p.future().on_ready([&](int&& v) { got = v; });
  EXPECT_EQ(got, 42);
}

TEST(FutureTest, SetAfterOnReady) {
  Promise<int> p;
  int got = 0;
  p.future().on_ready([&](int&& v) { got = v; });
  EXPECT_EQ(got, 0);
  p.set(7);
  EXPECT_EQ(got, 7);
}

TEST(FutureTest, ReadyAndPeekAndTake) {
  Promise<std::string> p;
  auto f = p.future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.ready());
  p.set("hello");
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), "hello");
  EXPECT_EQ(f.take(), "hello");
}

TEST(FutureTest, ThenMapsValue) {
  Promise<int> p;
  auto f = p.future().then([](int&& v) { return v * 2; });
  p.set(21);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), 42);
}

TEST(FutureTest, ThenVoidYieldsUnit) {
  Promise<int> p;
  int seen = 0;
  auto f = p.future().then([&](int&& v) { seen = v; });
  p.set(5);
  EXPECT_EQ(seen, 5);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), Unit{});
}

TEST(FutureTest, ThenFlattensNestedFuture) {
  Promise<int> outer;
  Promise<std::string> inner;
  auto f = outer.future().then([&inner](int&&) { return inner.future(); });
  static_assert(std::is_same_v<decltype(f), Future<std::string>>);
  outer.set(1);
  EXPECT_FALSE(f.ready());
  inner.set("done");
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), "done");
}

TEST(FutureTest, LongThenChain) {
  Promise<int> p;
  auto f = p.future();
  Future<int> chained = f.then([](int&& v) { return v + 1; });
  for (int i = 0; i < 50; ++i) {
    chained = chained.then([](int&& v) { return v + 1; });
  }
  p.set(0);
  ASSERT_TRUE(chained.ready());
  EXPECT_EQ(chained.peek(), 51);
}

TEST(FutureTest, MoveOnlyishValueMoves) {
  Promise<std::vector<int>> p;
  std::vector<int> got;
  p.future().on_ready([&](std::vector<int>&& v) { got = std::move(v); });
  p.set({1, 2, 3});
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(FutureTest, MakeReadyFuture) {
  auto f = make_ready_future(9);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), 9);
  auto u = make_ready_future();
  EXPECT_TRUE(u.ready());
}

TEST(FutureTest, PromiseFulfilledFlag) {
  Promise<int> p;
  EXPECT_FALSE(p.fulfilled());
  p.set(1);
  EXPECT_TRUE(p.fulfilled());
  Promise<int> q;
  q.future().on_ready([](int&&) {});
  q.set(2);
  EXPECT_TRUE(q.fulfilled());
}

TEST(WhenAllTest, EmptyInput) {
  auto f = when_all(std::vector<Future<int>>{});
  ASSERT_TRUE(f.ready());
  EXPECT_TRUE(f.peek().empty());
}

TEST(WhenAllTest, PreservesOrderRegardlessOfCompletion) {
  Promise<int> a, b, c;
  auto f = when_all(std::vector<Future<int>>{a.future(), b.future(), c.future()});
  c.set(3);
  a.set(1);
  EXPECT_FALSE(f.ready());
  b.set(2);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), (std::vector<int>{1, 2, 3}));
}

TEST(WhenAllTest, AlreadyReadyInputs) {
  auto f = when_all(std::vector<Future<int>>{make_ready_future(4), make_ready_future(5)});
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), (std::vector<int>{4, 5}));
}

TEST(FutureTest, ContinuationRunsSynchronouslyOnSet) {
  Promise<int> p;
  std::vector<int> order;
  p.future().on_ready([&](int&&) { order.push_back(1); });
  order.push_back(0);
  p.set(0);
  order.push_back(2);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace fractos
