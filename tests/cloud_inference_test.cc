// End-to-end tests of the complete Fig. 2 cloud-inference scenario, including the
// message/data-transfer accounting of the paper's Section 2.1 analysis.

#include <gtest/gtest.h>

#include "src/apps/cloud_inference.h"

namespace fractos {
namespace {

CloudInferenceParams small_params() {
  CloudInferenceParams p;
  p.request_bytes = 64 << 10;
  p.num_inputs = 3;
  p.pool_slots = 2;
  p.compute = Duration::micros(200);
  return p;
}

TEST(CloudInferenceTest, DistributedRingProducesCorrectOutput) {
  System sys;
  CloudInference app(&sys, Loc::kHost, small_params());
  app.ingest();
  EXPECT_TRUE(sys.await_ok(app.infer_distributed(0)));
  EXPECT_TRUE(sys.await_ok(app.infer_distributed(1)));
  EXPECT_TRUE(sys.await_ok(app.infer_distributed(2)));
}

TEST(CloudInferenceTest, CentralizedStarProducesCorrectOutput) {
  System sys;
  CloudInference app(&sys, Loc::kHost, small_params());
  app.ingest();
  EXPECT_TRUE(sys.await_ok(app.infer_centralized(0)));
  EXPECT_TRUE(sys.await_ok(app.infer_centralized(1)));
}

TEST(CloudInferenceTest, WorksOnSnicControllers) {
  System sys;
  CloudInference app(&sys, Loc::kSnic, small_params());
  app.ingest();
  EXPECT_TRUE(sys.await_ok(app.infer_distributed(0)));
}

TEST(CloudInferenceTest, ConcurrentDistributedRequests) {
  System sys;
  CloudInference app(&sys, Loc::kHost, small_params());
  app.ingest();
  std::vector<Future<Result<bool>>> reqs;
  for (int i = 0; i < 5; ++i) {  // more than the 2 slots
    reqs.push_back(app.infer_distributed(static_cast<uint32_t>(i % 3)));
  }
  for (auto& r : reqs) {
    EXPECT_TRUE(sys.await_ok(std::move(r)));
  }
}

TEST(CloudInferenceTest, Fig2AnalysisRingBeatsStar) {
  // Section 2.1: "it has 2.5x fewer data transfers [...] and requires 1.6x fewer network
  // messages overall". Measure both executions of the SAME work on the SAME cluster.
  System sys;
  CloudInference app(&sys, Loc::kHost, small_params());
  app.ingest();
  // Warm-ups on both paths (verification reads use the FS path on both sides, so exclude
  // them by measuring only up to the respond/completion: we time/count the full request
  // including verification, identical on both sides, and compare the DIFFERENCE-insensitive
  // ratios on data transfers which verification shifts equally).
  sys.await_ok(app.infer_distributed(0));
  sys.await_ok(app.infer_centralized(0));

  sys.net().reset_counters();
  const Time t0 = sys.loop().now();
  ASSERT_TRUE(sys.await_ok(app.infer_distributed(1)));
  const double ring_us = (sys.loop().now() - t0).to_us();
  const auto ring = sys.net().counters();

  sys.net().reset_counters();
  const Time t1 = sys.loop().now();
  ASSERT_TRUE(sys.await_ok(app.infer_centralized(1)));
  const double star_us = (sys.loop().now() - t1).to_us();
  const auto star = sys.net().counters();

  // Data bytes: the star moves the payload 5 times + verification; the ring twice +
  // verification (verification itself is 2 transfers on both sides). 7/4 = 1.75 minimum.
  const double data_ratio =
      static_cast<double>(star.cross_bytes[1]) / static_cast<double>(ring.cross_bytes[1]);
  EXPECT_GT(data_ratio, 1.6) << "star=" << star.cross_bytes[1]
                             << " ring=" << ring.cross_bytes[1];
  // Total messages: the star needs more of everything.
  EXPECT_GT(static_cast<double>(star.total_cross_messages()) /
                static_cast<double>(ring.total_cross_messages()),
            1.3);
  // And it is slower end to end.
  EXPECT_GT(star_us / ring_us, 1.2) << "ring " << ring_us << "us vs star " << star_us << "us";
}

TEST(CloudInferenceTest, OutputLandsOnTheOutputDeviceOnly) {
  System sys;
  CloudInferenceParams p = small_params();
  CloudInference app(&sys, Loc::kHost, p);
  app.ingest();
  ASSERT_TRUE(sys.await_ok(app.infer_distributed(2)));
  // Nothing of the transformed output should be observable in the frontend's address space
  // during the distributed flow except the explicit verification read — which is the only
  // way the test itself saw it. (The data path was storage -> GPU -> storage.)
  SUCCEED();
}

}  // namespace
}  // namespace fractos
