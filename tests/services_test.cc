// Integration tests for the disaggregated services: GPU adaptor, block-device adaptor, and
// the two-tier FS (FS vs DAX modes), on a 3-node cluster like the paper's testbed.

#include <gtest/gtest.h>

#include <memory>

#include "src/services/block_adaptor.h"
#include "src/services/fs.h"
#include "src/services/gpu_adaptor.h"

namespace fractos {
namespace {

std::vector<uint8_t> pattern(size_t n, uint8_t seed = 1) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return v;
}

class GpuServiceTest : public ::testing::Test {
 protected:
  GpuServiceTest() {
    client_node_ = sys_.add_node("client");
    gpu_node_ = sys_.add_node("gpu");
    cc_ = &sys_.add_controller(client_node_, Loc::kHost);
    cg_ = &sys_.add_controller(gpu_node_, Loc::kHost);
    gpu_ = std::make_unique<SimGpu>(&sys_.net(), gpu_node_);
    adaptor_ = std::make_unique<GpuAdaptor>(&sys_, *cg_, gpu_.get());
    adaptor_->register_kernel("add_k", [](PoolBytes& mem,
                                          const std::vector<uint64_t>& args) {
      // args: in_addr, out_addr, count, k
      const uint64_t in = args[0], out = args[1], n = args[2], k = args[3];
      for (uint64_t i = 0; i < n; ++i) {
        mem[out + i] = static_cast<uint8_t>(mem[in + i] + k);
      }
      return Duration::micros(50);
    });
    client_ = &sys_.spawn("client", client_node_, *cc_);
    init_ep_ = sys_.bootstrap_grant(adaptor_->process(), adaptor_->init_endpoint(), *client_)
                   .value();
  }

  System sys_;
  uint32_t client_node_ = 0, gpu_node_ = 0;
  Controller* cc_ = nullptr;
  Controller* cg_ = nullptr;
  std::unique_ptr<SimGpu> gpu_;
  std::unique_ptr<GpuAdaptor> adaptor_;
  Process* client_ = nullptr;
  CapId init_ep_ = kInvalidCap;
};

TEST_F(GpuServiceTest, EndToEndKernelRunWithCopyBack) {
  auto session = sys_.await_ok(GpuClient::init(*client_, init_ep_));
  auto in_buf = sys_.await_ok(GpuClient::alloc(*client_, session, 1024));
  auto out_buf = sys_.await_ok(GpuClient::alloc(*client_, session, 1024));
  const CapId kernel = sys_.await_ok(GpuClient::load(*client_, session, "add_k"));

  // Upload input from client memory to GPU memory.
  const auto input = pattern(1024, 3);
  const uint64_t src_addr = client_->alloc(1024);
  client_->write_mem(src_addr, input);
  const CapId src = sys_.await_ok(client_->memory_create(src_addr, 1024, Perms::kRead));
  ASSERT_TRUE(sys_.await(client_->memory_copy(src, in_buf.mem)).ok());

  // Result landing buffer in client memory; the adaptor copies it back after the kernel.
  const uint64_t res_addr = client_->alloc(1024);
  const CapId res = sys_.await_ok(client_->memory_create(res_addr, 1024, Perms::kReadWrite));

  ASSERT_TRUE(sys_.await(GpuClient::run(*client_, kernel,
                                        {in_buf.device_addr, out_buf.device_addr, 1024, 5},
                                        out_buf.mem, res))
                  .ok());
  const auto got = client_->read_mem(res_addr, 1024);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], static_cast<uint8_t>(input[i] + 5)) << "at " << i;
  }
  EXPECT_EQ(gpu_->launches(), 1u);
}

TEST_F(GpuServiceTest, UnknownKernelNameFailsLoad) {
  auto session = sys_.await_ok(GpuClient::init(*client_, init_ep_));
  auto r = sys_.await(GpuClient::load(*client_, session, "not-a-kernel"));
  EXPECT_EQ(r.error(), ErrorCode::kNotFound);
}

TEST_F(GpuServiceTest, AllocationExhaustionReported) {
  auto session = sys_.await_ok(GpuClient::init(*client_, init_ep_));
  auto r = sys_.await(GpuClient::alloc(*client_, session, 1ull << 40));
  EXPECT_EQ(r.error(), ErrorCode::kResourceExhausted);
}

TEST_F(GpuServiceTest, CleanupRevokesEverything) {
  auto session = sys_.await_ok(GpuClient::init(*client_, init_ep_));
  auto buf = sys_.await_ok(GpuClient::alloc(*client_, session, 256));
  const CapId kernel = sys_.await_ok(GpuClient::load(*client_, session, "add_k"));
  ASSERT_TRUE(sys_.await(GpuClient::cleanup(*client_, session)).ok());
  sys_.loop().run();

  // The delegated buffer capability is dead: copies into it fail.
  const CapId local = sys_.await_ok(client_->memory_create(client_->alloc(256), 256,
                                                           Perms::kReadWrite));
  EXPECT_FALSE(sys_.await(client_->memory_copy(local, buf.mem)).ok());
  // The kernel endpoint is dead too.
  EXPECT_FALSE(sys_.await(GpuClient::run(*client_, kernel, {0, 0, 0, 0})).ok());
  EXPECT_EQ(adaptor_->num_contexts(), 0u);
}

TEST_F(GpuServiceTest, ConcurrentClientsSerializeOnEngine) {
  Process& client2 = sys_.spawn("client2", client_node_, *cc_);
  const CapId init2 =
      sys_.bootstrap_grant(adaptor_->process(), adaptor_->init_endpoint(), client2).value();

  auto s1 = sys_.await_ok(GpuClient::init(*client_, init_ep_));
  auto s2 = sys_.await_ok(GpuClient::init(client2, init2));
  const CapId k1 = sys_.await_ok(GpuClient::load(*client_, s1, "add_k"));
  const CapId k2 = sys_.await_ok(GpuClient::load(client2, s2, "add_k"));
  auto b1 = sys_.await_ok(GpuClient::alloc(*client_, s1, 64));
  auto b2 = sys_.await_ok(GpuClient::alloc(client2, s2, 64));

  auto f1 = GpuClient::run(*client_, k1, {b1.device_addr, b1.device_addr, 64, 1});
  auto f2 = GpuClient::run(client2, k2, {b2.device_addr, b2.device_addr, 64, 1});
  EXPECT_TRUE(sys_.await(std::move(f1)).ok());
  EXPECT_TRUE(sys_.await(std::move(f2)).ok());
  EXPECT_EQ(gpu_->launches(), 2u);
  // Engine busy time = 2 kernels, fully serialized.
  EXPECT_EQ(gpu_->busy_time().ns(), 2 * (50000 + 8000));
}

class BlockServiceTest : public ::testing::Test {
 protected:
  BlockServiceTest() {
    client_node_ = sys_.add_node("client");
    storage_node_ = sys_.add_node("storage");
    cc_ = &sys_.add_controller(client_node_, Loc::kHost);
    cs_ = &sys_.add_controller(storage_node_, Loc::kHost);
    nvme_ = std::make_unique<SimNvme>(&sys_.loop());
    adaptor_ = std::make_unique<BlockAdaptor>(&sys_, storage_node_, *cs_, nvme_.get());
    client_ = &sys_.spawn("client", client_node_, *cc_);
    mgmt_ =
        sys_.bootstrap_grant(adaptor_->process(), adaptor_->mgmt_endpoint(), *client_).value();
  }

  System sys_;
  uint32_t client_node_ = 0, storage_node_ = 0;
  Controller* cc_ = nullptr;
  Controller* cs_ = nullptr;
  std::unique_ptr<SimNvme> nvme_;
  std::unique_ptr<BlockAdaptor> adaptor_;
  Process* client_ = nullptr;
  CapId mgmt_ = kInvalidCap;
};

TEST_F(BlockServiceTest, VolumeWriteReadRoundTrip) {
  auto vol = sys_.await_ok(BlockClient::create_volume(*client_, mgmt_, 1 << 20));
  const auto data = pattern(8192, 11);
  const uint64_t buf = client_->alloc(8192);
  client_->write_mem(buf, data);
  const CapId mem = sys_.await_ok(client_->memory_create(buf, 8192, Perms::kReadWrite));

  ASSERT_TRUE(sys_.await(BlockClient::write(*client_, vol, 4096, 8192, mem)).ok());
  // Clear the client buffer, then read back.
  client_->write_mem(buf, std::vector<uint8_t>(8192, 0));
  ASSERT_TRUE(sys_.await(BlockClient::read(*client_, vol, 4096, 8192, mem)).ok());
  EXPECT_EQ(client_->read_mem(buf, 8192), data);
  // The device really holds the bytes (volume 0 starts at device offset 0).
  EXPECT_EQ(nvme_->peek(4096, 8192), data);
}

TEST_F(BlockServiceTest, OutOfRangeIoFailsThroughErrorContinuation) {
  auto vol = sys_.await_ok(BlockClient::create_volume(*client_, mgmt_, 64 << 10));
  const CapId mem = sys_.await_ok(client_->memory_create(client_->alloc(4096), 4096,
                                                         Perms::kReadWrite));
  EXPECT_EQ(sys_.await(BlockClient::read(*client_, vol, (64 << 10) - 100, 4096, mem)).error(),
            ErrorCode::kInvalidArgument);
}

TEST_F(BlockServiceTest, DeleteVolumeRevokesEndpoints) {
  auto vol = sys_.await_ok(BlockClient::create_volume(*client_, mgmt_, 64 << 10));
  const CapId mem = sys_.await_ok(client_->memory_create(client_->alloc(4096), 4096,
                                                         Perms::kReadWrite));
  ASSERT_TRUE(sys_.await(BlockClient::read(*client_, vol, 0, 4096, mem)).ok());
  ASSERT_TRUE(sys_.await(BlockClient::destroy(*client_, vol)).ok());
  sys_.loop().run();
  // The freed blocks are immediately unreachable (use-after-free prevention, Section 3.5):
  // the client's capability was purged by the cleanup broadcast, or the invoke is refused.
  auto r = sys_.await(BlockClient::read(*client_, vol, 0, 4096, mem));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(adaptor_->num_volumes(), 0u);
}

TEST_F(BlockServiceTest, ManyConcurrentIosQueueOnSlots) {
  auto vol = sys_.await_ok(BlockClient::create_volume(*client_, mgmt_, 16 << 20));
  std::vector<Future<Status>> ios;
  std::vector<CapId> mems;
  for (int i = 0; i < 24; ++i) {  // 3x the staging slots
    const CapId mem = sys_.await_ok(client_->memory_create(client_->alloc(4096), 4096,
                                                           Perms::kReadWrite));
    mems.push_back(mem);
  }
  for (int i = 0; i < 24; ++i) {
    ios.push_back(BlockClient::read(*client_, vol, static_cast<uint64_t>(i) * 4096, 4096,
                                    mems[static_cast<size_t>(i)]));
  }
  for (auto& f : ios) {
    EXPECT_TRUE(sys_.await(std::move(f)).ok());
  }
}

TEST_F(BlockServiceTest, ChainedContinuationRunsDecentralized) {
  // The Fig. 3 flow: the client pre-arranges "read block -> invoke next stage" and the SSD
  // adaptor drives the next stage directly, without the client in the loop.
  auto vol = sys_.await_ok(BlockClient::create_volume(*client_, mgmt_, 64 << 10));
  nvme_->poke(0, pattern(4096, 42));

  // Stage 2 lives on the client node and checks it got invoked.
  bool stage2_ran = false;
  const CapId stage2 = sys_.await_ok(client_->serve({}, [&](Process::Received) {
    stage2_ran = true;
  }));
  const uint64_t buf = client_->alloc(4096);
  const CapId mem = sys_.await_ok(client_->memory_create(buf, 4096, Perms::kReadWrite));
  ASSERT_TRUE(sys_.await(client_->request_invoke(vol.read_ep, Process::Args{}
                                                                  .imm_u64(0, 0)
                                                                  .imm_u64(8, 4096)
                                                                  .cap(mem)
                                                                  .cap(stage2)))
                  .ok());
  ASSERT_TRUE(sys_.loop().run_until([&]() { return stage2_ran; }));
  EXPECT_EQ(client_->read_mem(buf, 4096), pattern(4096, 42));
}

class FsServiceTest : public ::testing::Test {
 protected:
  FsServiceTest() {
    client_node_ = sys_.add_node("client");
    fs_node_ = sys_.add_node("fs");
    storage_node_ = sys_.add_node("storage");
    cc_ = &sys_.add_controller(client_node_, Loc::kHost);
    cf_ = &sys_.add_controller(fs_node_, Loc::kHost);
    cs_ = &sys_.add_controller(storage_node_, Loc::kHost);
    nvme_ = std::make_unique<SimNvme>(&sys_.loop());
    block_ = std::make_unique<BlockAdaptor>(&sys_, storage_node_, *cs_, nvme_.get());
    FsService::Params p;
    p.extent_bytes = 64 << 10;  // small extents so tests exercise spanning cheaply
    fs_ = FsService::bootstrap(&sys_, fs_node_, *cf_, block_->process(),
                               block_->mgmt_endpoint(), p);
    client_ = &sys_.spawn("client", client_node_, *cc_);
    create_ep_ = sys_.bootstrap_grant(fs_->process(), fs_->create_endpoint(), *client_).value();
    open_ep_ = sys_.bootstrap_grant(fs_->process(), fs_->open_endpoint(), *client_).value();
    unlink_ep_ = sys_.bootstrap_grant(fs_->process(), fs_->unlink_endpoint(), *client_).value();
  }

  CapId make_buffer(uint64_t size, const std::vector<uint8_t>& content = {}) {
    const uint64_t addr = client_->alloc(size);
    last_addr_ = addr;
    if (!content.empty()) {
      client_->write_mem(addr, content);
    }
    return sys_.await_ok(client_->memory_create(addr, size, Perms::kReadWrite));
  }

  System sys_;
  uint32_t client_node_ = 0, fs_node_ = 0, storage_node_ = 0;
  Controller* cc_ = nullptr;
  Controller* cf_ = nullptr;
  Controller* cs_ = nullptr;
  std::unique_ptr<SimNvme> nvme_;
  std::unique_ptr<BlockAdaptor> block_;
  std::unique_ptr<FsService> fs_;
  Process* client_ = nullptr;
  CapId create_ep_ = kInvalidCap, open_ep_ = kInvalidCap, unlink_ep_ = kInvalidCap;
  uint64_t last_addr_ = 0;
};

TEST_F(FsServiceTest, FsModeWriteReadRoundTrip) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "a.bin", 128 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_ep_, "a.bin", /*rw=*/true, /*dax=*/false));
  EXPECT_EQ(f.size, 128u << 10);
  ASSERT_EQ(f.read_eps.size(), 1u);
  ASSERT_EQ(f.write_eps.size(), 1u);

  const auto data = pattern(32 << 10, 7);
  const CapId buf = make_buffer(32 << 10, data);
  const uint64_t addr = last_addr_;
  ASSERT_TRUE(sys_.await(FsClient::write(*client_, f, 4096, 32 << 10, buf)).ok());
  client_->write_mem(addr, std::vector<uint8_t>(32 << 10, 0));
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, f, 4096, 32 << 10, buf)).ok());
  EXPECT_EQ(client_->read_mem(addr, 32 << 10), data);
}

TEST_F(FsServiceTest, FsModeIoSpansExtents) {
  // 64 KiB extents; write 100 KiB crossing the extent boundary at 64 KiB.
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "span.bin", 256 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_ep_, "span.bin", true, false));
  const uint64_t size = 100 << 10;
  const auto data = pattern(size, 99);
  const CapId buf = make_buffer(size, data);
  const uint64_t addr = last_addr_;
  ASSERT_TRUE(sys_.await(FsClient::write(*client_, f, 30 << 10, size, buf)).ok());
  client_->write_mem(addr, std::vector<uint8_t>(size, 0));
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, f, 30 << 10, size, buf)).ok());
  EXPECT_EQ(client_->read_mem(addr, size), data);
}

TEST_F(FsServiceTest, DaxModeReadsDirectlyWithIntegrity) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "d.bin", 128 << 10)).ok());
  // Seed via FS mode.
  auto fw = sys_.await_ok(FsClient::open(*client_, open_ep_, "d.bin", true, false));
  const auto data = pattern(64 << 10, 21);
  const CapId wbuf = make_buffer(64 << 10, data);
  ASSERT_TRUE(sys_.await(FsClient::write(*client_, fw, 0, 64 << 10, wbuf)).ok());
  ASSERT_TRUE(sys_.await(FsClient::close(*client_, fw)).ok());

  auto fd = sys_.await_ok(FsClient::open(*client_, open_ep_, "d.bin", false, /*dax=*/true));
  EXPECT_EQ(fd.read_eps.size(), 2u);   // one per extent
  EXPECT_TRUE(fd.write_eps.empty());   // read-only open: no write authority (security)
  const CapId rbuf = make_buffer(64 << 10);
  const uint64_t addr = last_addr_;
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, fd, 0, 64 << 10, rbuf)).ok());
  EXPECT_EQ(client_->read_mem(addr, 64 << 10), data);
}

TEST_F(FsServiceTest, DaxReadSpanningExtents) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "sp.bin", 192 << 10)).ok());
  auto fw = sys_.await_ok(FsClient::open(*client_, open_ep_, "sp.bin", true, false));
  const uint64_t size = 120 << 10;  // crosses 64 KiB boundary
  const auto data = pattern(size, 77);
  const CapId wbuf = make_buffer(size, data);
  ASSERT_TRUE(sys_.await(FsClient::write(*client_, fw, 20 << 10, size, wbuf)).ok());

  auto fd = sys_.await_ok(FsClient::open(*client_, open_ep_, "sp.bin", true, true));
  EXPECT_EQ(fd.read_eps.size(), 3u);
  EXPECT_EQ(fd.write_eps.size(), 3u);
  const CapId rbuf = make_buffer(size);
  const uint64_t addr = last_addr_;
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, fd, 20 << 10, size, rbuf)).ok());
  EXPECT_EQ(client_->read_mem(addr, size), data);
}

TEST_F(FsServiceTest, DaxWriteRoundTrip) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "w.bin", 64 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_ep_, "w.bin", true, true));
  const auto data = pattern(16 << 10, 33);
  const CapId buf = make_buffer(16 << 10, data);
  const uint64_t addr = last_addr_;
  ASSERT_TRUE(sys_.await(FsClient::write(*client_, f, 8 << 10, 16 << 10, buf)).ok());
  client_->write_mem(addr, std::vector<uint8_t>(16 << 10, 0));
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, f, 8 << 10, 16 << 10, buf)).ok());
  EXPECT_EQ(client_->read_mem(addr, 16 << 10), data);
}

TEST_F(FsServiceTest, ReadOnlyFsModeRejectsWrites) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "ro.bin", 64 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_ep_, "ro.bin", /*rw=*/false, false));
  EXPECT_TRUE(f.write_eps.empty());
  const CapId buf = make_buffer(4096, pattern(4096));
  EXPECT_EQ(sys_.await(FsClient::write(*client_, f, 0, 4096, buf)).error(),
            ErrorCode::kInvalidArgument);  // no write endpoint delivered at all
}

TEST_F(FsServiceTest, OpenMissingFileFails) {
  auto r = sys_.await(FsClient::open(*client_, open_ep_, "ghost", false, false));
  EXPECT_EQ(r.error(), ErrorCode::kNotFound);
}

TEST_F(FsServiceTest, CreateDuplicateFails) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "dup", 4096)).ok());
  EXPECT_EQ(sys_.await(FsClient::create(*client_, create_ep_, "dup", 4096)).error(),
            ErrorCode::kAlreadyExists);
}

TEST_F(FsServiceTest, CloseRevokesDaxAuthority) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "c.bin", 64 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_ep_, "c.bin", false, true));
  const CapId buf = make_buffer(4096);
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, f, 0, 4096, buf)).ok());
  ASSERT_TRUE(sys_.await(FsClient::close(*client_, f)).ok());
  sys_.loop().run();
  // The cached extent children were revoked with the last close.
  EXPECT_FALSE(sys_.await(FsClient::read(*client_, f, 0, 4096, buf)).ok());
}

TEST_F(FsServiceTest, DaxChildrenSharedAcrossOpensAndRefcounted) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "s.bin", 64 << 10)).ok());
  auto f1 = sys_.await_ok(FsClient::open(*client_, open_ep_, "s.bin", false, true));
  auto f2 = sys_.await_ok(FsClient::open(*client_, open_ep_, "s.bin", false, true));
  const CapId buf = make_buffer(4096);
  ASSERT_TRUE(sys_.await(FsClient::close(*client_, f1)).ok());
  sys_.loop().run();
  // The second open still works: the children survive until the last close.
  EXPECT_TRUE(sys_.await(FsClient::read(*client_, f2, 0, 4096, buf)).ok());
  ASSERT_TRUE(sys_.await(FsClient::close(*client_, f2)).ok());
  sys_.loop().run();
  EXPECT_FALSE(sys_.await(FsClient::read(*client_, f2, 0, 4096, buf)).ok());
}

TEST_F(FsServiceTest, UnlinkKillsOutstandingDaxCapabilities) {
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "u.bin", 64 << 10)).ok());
  auto f = sys_.await_ok(FsClient::open(*client_, open_ep_, "u.bin", false, true));
  const CapId buf = make_buffer(4096);
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, f, 0, 4096, buf)).ok());
  ASSERT_TRUE(sys_.await(FsClient::unlink(*client_, unlink_ep_, "u.bin")).ok());
  sys_.loop().run();
  // The block adaptor revoked the per-volume endpoints; the DAX children died with them.
  EXPECT_FALSE(sys_.await(FsClient::read(*client_, f, 0, 4096, buf)).ok());
  EXPECT_EQ(fs_->num_files(), 0u);
}

TEST_F(FsServiceTest, DaxHalvesCrossNodeDataTraffic) {
  // The quantitative heart of Fig. 4/10: FS mode moves data over the network twice
  // (SSD node -> FS node -> client), DAX once (SSD node -> client).
  ASSERT_TRUE(sys_.await(FsClient::create(*client_, create_ep_, "t.bin", 64 << 10)).ok());
  auto fw = sys_.await_ok(FsClient::open(*client_, open_ep_, "t.bin", true, false));
  const uint64_t size = 32 << 10;
  const CapId buf = make_buffer(size, pattern(size));
  ASSERT_TRUE(sys_.await(FsClient::write(*client_, fw, 0, size, buf)).ok());

  sys_.net().reset_counters();
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, fw, 0, size, buf)).ok());
  const uint64_t fs_bytes = sys_.net().counters().cross_bytes[1];

  auto fd = sys_.await_ok(FsClient::open(*client_, open_ep_, "t.bin", false, true));
  sys_.net().reset_counters();
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, fd, 0, size, buf)).ok());
  const uint64_t dax_bytes = sys_.net().counters().cross_bytes[1];

  EXPECT_NEAR(static_cast<double>(fs_bytes) / static_cast<double>(dax_bytes), 2.0, 0.2);
}

}  // namespace
}  // namespace fractos
