// Soak test: a long randomized workload mixing every service — FS reads/writes (FS and DAX
// modes), GPU kernel runs, raw copies, revocations and process churn — with continuous data
// verification and, at the end, object-table reclamation checks (the two-phase cleanup must
// keep table sizes bounded by live state, not by operation count).

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/services/block_adaptor.h"
#include "src/services/fs.h"
#include "src/services/gpu_adaptor.h"
#include "src/sim/rng.h"

namespace fractos {
namespace {

class SoakTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kFileBytes = 1 << 20;
  static constexpr uint64_t kBufBytes = 64 << 10;

  SoakTest() : rng_(20260706) {
    cn_ = sys_.add_node("client");
    fn_ = sys_.add_node("fs");
    sn_ = sys_.add_node("storage");
    gn_ = sys_.add_node("gpu");
    cc_ = &sys_.add_controller(cn_, Loc::kHost);
    cf_ = &sys_.add_controller(fn_, Loc::kHost);
    cs_ = &sys_.add_controller(sn_, Loc::kHost);
    cg_ = &sys_.add_controller(gn_, Loc::kHost);
    nvme_ = std::make_unique<SimNvme>(&sys_.loop());
    block_ = std::make_unique<BlockAdaptor>(&sys_, sn_, *cs_, nvme_.get());
    fs_ = FsService::bootstrap(&sys_, fn_, *cf_, block_->process(), block_->mgmt_endpoint());
    gpu_ = std::make_unique<SimGpu>(&sys_.net(), gn_);
    gpu_adaptor_ = std::make_unique<GpuAdaptor>(&sys_, *cg_, gpu_.get());
    gpu_adaptor_->register_kernel("xor", [](PoolBytes& m,
                                            const std::vector<uint64_t>& a) {
      for (uint64_t i = 0; i < a[2]; ++i) {
        m[a[1] + i] = static_cast<uint8_t>(m[a[0] + i] ^ 0x77);
      }
      return Duration::micros(20);
    });

    client_ = &sys_.spawn("client", cn_, *cc_, 16 << 20);
    create_ = sys_.bootstrap_grant(fs_->process(), fs_->create_endpoint(), *client_).value();
    open_ = sys_.bootstrap_grant(fs_->process(), fs_->open_endpoint(), *client_).value();
    const CapId init =
        sys_.bootstrap_grant(gpu_adaptor_->process(), gpu_adaptor_->init_endpoint(), *client_)
            .value();
    session_ = sys_.await_ok(GpuClient::init(*client_, init));
    kernel_ = sys_.await_ok(GpuClient::load(*client_, session_, "xor"));
    gpu_in_ = sys_.await_ok(GpuClient::alloc(*client_, session_, kBufBytes));
    gpu_out_ = sys_.await_ok(GpuClient::alloc(*client_, session_, kBufBytes));

    buf_addr_ = client_->alloc(kBufBytes);
    buf_ = sys_.await_ok(client_->memory_create(buf_addr_, kBufBytes, Perms::kReadWrite));
    FRACTOS_CHECK(sys_.await(FsClient::create(*client_, create_, "soak", kFileBytes)).ok());
    file_fs_ = sys_.await_ok(FsClient::open(*client_, open_, "soak", true, false));
    file_dax_ = sys_.await_ok(FsClient::open(*client_, open_, "soak", true, true));
  }

  std::vector<uint8_t> rand_bytes(uint64_t n) {
    std::vector<uint8_t> v(n);
    for (auto& b : v) {
      b = rng_.next_byte();
    }
    return v;
  }

  System sys_;
  Rng rng_;
  uint32_t cn_ = 0, fn_ = 0, sn_ = 0, gn_ = 0;
  Controller *cc_ = nullptr, *cf_ = nullptr, *cs_ = nullptr, *cg_ = nullptr;
  std::unique_ptr<SimNvme> nvme_;
  std::unique_ptr<BlockAdaptor> block_;
  std::unique_ptr<FsService> fs_;
  std::unique_ptr<SimGpu> gpu_;
  std::unique_ptr<GpuAdaptor> gpu_adaptor_;
  Process* client_ = nullptr;
  CapId create_ = kInvalidCap, open_ = kInvalidCap;
  GpuClient::Session session_;
  CapId kernel_ = kInvalidCap;
  GpuClient::Buffer gpu_in_, gpu_out_;
  uint64_t buf_addr_ = 0;
  CapId buf_ = kInvalidCap;
  FsClient::OpenFile file_fs_, file_dax_;
};

TEST_F(SoakTest, MixedWorkloadStaysConsistent) {
  // Reference model of the file.
  std::vector<uint8_t> file_model(kFileBytes, 0);
  int ops_done = 0;

  for (int op = 0; op < 250; ++op) {
    const uint64_t io = 4096ull << rng_.next_below(4);  // 4K..32K
    const uint64_t off = rng_.next_below((kFileBytes - io) / 4096 + 1) * 4096;
    const bool dax = rng_.next_bool();
    const auto& file = dax ? file_dax_ : file_fs_;
    switch (rng_.next_below(4)) {
      case 0: {  // write
        const auto data = rand_bytes(io);
        client_->write_mem(buf_addr_, data);
        ASSERT_TRUE(sys_.await(FsClient::write(*client_, file, off, io, buf_)).ok())
            << "op " << op;
        std::copy(data.begin(), data.end(),
                  file_model.begin() + static_cast<ptrdiff_t>(off));
        break;
      }
      case 1: {  // read + verify
        client_->write_mem(buf_addr_, std::vector<uint8_t>(io, 0));
        ASSERT_TRUE(sys_.await(FsClient::read(*client_, file, off, io, buf_)).ok())
            << "op " << op;
        const auto got = client_->read_mem(buf_addr_, io);
        const std::vector<uint8_t> expect(
            file_model.begin() + static_cast<ptrdiff_t>(off),
            file_model.begin() + static_cast<ptrdiff_t>(off + io));
        ASSERT_EQ(got, expect) << "op " << op << (dax ? " dax" : " fs");
        break;
      }
      case 2: {  // GPU round trip: buf -> gpu_in, xor kernel, gpu_out -> buf, verify
        const auto data = rand_bytes(kBufBytes);
        client_->write_mem(buf_addr_, data);
        ASSERT_TRUE(sys_.await(client_->memory_copy(buf_, gpu_in_.mem)).ok());
        ASSERT_TRUE(sys_.await(GpuClient::run(
                                   *client_, kernel_,
                                   {gpu_in_.device_addr, gpu_out_.device_addr, kBufBytes},
                                   gpu_out_.mem, buf_))
                        .ok())
            << "op " << op;
        const auto got = client_->read_mem(buf_addr_, kBufBytes);
        for (uint64_t i = 0; i < kBufBytes; i += 4099) {  // spot check
          ASSERT_EQ(got[i], static_cast<uint8_t>(data[i] ^ 0x77)) << "op " << op;
        }
        break;
      }
      default: {  // capability churn: derive a view and revoke it
        const CapId view = sys_.await_ok(
            client_->memory_diminish(buf_, 0, 4096, Perms::kNone));
        ASSERT_TRUE(sys_.await(client_->cap_revoke(view)).ok()) << "op " << op;
        break;
      }
    }
    ++ops_done;
  }
  sys_.loop().run();
  EXPECT_EQ(ops_done, 250);

  // Two-phase cleanup kept the tables bounded: the client controller's table holds live
  // objects only, not one stub per churn op (~60 revocations happened above).
  EXPECT_EQ(cc_->table().live_count(), cc_->table().total_count());
  EXPECT_LT(cc_->table().total_count(), 600u);
  EXPECT_EQ(cc_->pending_cleanups(), 0u);
  EXPECT_EQ(cs_->pending_cleanups(), 0u);
  // The peer-op dedup cache is bounded by construction (TTL eviction + hard cap), never by
  // operation count.
  for (Controller* c : sys_.controllers()) {
    EXPECT_LE(c->completed_peer_op_cache_size(), Controller::kCompletedPeerOpCacheCap);
  }
}

TEST_F(SoakTest, SurvivesMidWorkloadProcessChurn) {
  // Spawn short-lived clients that do some work and crash; the long-lived client's work must
  // stay correct throughout.
  const auto stable = rand_bytes(8192);
  client_->write_mem(buf_addr_, stable);
  ASSERT_TRUE(sys_.await(FsClient::write(*client_, file_fs_, 0, 8192, buf_)).ok());

  for (int round = 0; round < 6; ++round) {
    Process& ephemeral = sys_.spawn("eph" + std::to_string(round), cn_, *cc_, 1 << 20);
    const CapId eopen =
        sys_.bootstrap_grant(fs_->process(), fs_->open_endpoint(), ephemeral).value();
    const CapId ebuf = sys_.await_ok(
        ephemeral.memory_create(ephemeral.alloc(8192), 8192, Perms::kReadWrite));
    auto f = sys_.await_ok(FsClient::open(ephemeral, eopen, "soak", false, round % 2 == 0));
    // Start a read, then crash at a random point.
    auto io = FsClient::read(ephemeral, f, 0, 8192, ebuf);
    sys_.loop().run(rng_.next_below(400));
    sys_.fail_process(ephemeral);
    sys_.loop().run();
  }

  // The survivor still reads the right bytes both ways.
  client_->write_mem(buf_addr_, std::vector<uint8_t>(8192, 0));
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, file_fs_, 0, 8192, buf_)).ok());
  EXPECT_EQ(client_->read_mem(buf_addr_, 8192), stable);
  client_->write_mem(buf_addr_, std::vector<uint8_t>(8192, 0));
  ASSERT_TRUE(sys_.await(FsClient::read(*client_, file_dax_, 0, 8192, buf_)).ok());
  EXPECT_EQ(client_->read_mem(buf_addr_, 8192), stable);
}

// The dedup cache only fills on a lossy fabric (that is the only place replies can be lost and
// replayed), so the bounded-state soak for it runs over light loss with a shortened TTL: churn
// enough remote capability ops to cross many TTL windows and check the cache (a) never exceeds
// its hard cap at any step and (b) actually shrank back to the ops completed within the last
// TTL window — bounded by simulated time, not by how many ops ever ran.
TEST(SoakDedupCache, StaysBoundedUnderLossyPeerOpChurn) {
  SystemConfig cfg;
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob[0] = 0.005;
  plan.dup_prob[0] = 0.002;
  cfg.faults = plan;
  cfg.peer_op_batch_max = 4;  // the batched path shares the per-op dedup discipline
  cfg.peer_op_dedup_ttl = Duration::millis(2);
  System sys(cfg);
  const uint32_t n0 = sys.add_node("owner");
  const uint32_t n1 = sys.add_node("holder");
  Controller& c0 = sys.add_controller(n0, Loc::kHost);
  Controller& c1 = sys.add_controller(n1, Loc::kHost);
  Process& provider = sys.spawn("provider", n0, c0);
  Process& holder = sys.spawn("holder", n1, c1);

  const CapId root = sys.await_ok(provider.serve({}, [](Process::Received) {}));
  const CapId root_h = sys.bootstrap_grant(provider, root, holder).value();

  int completed = 0;
  for (int i = 0; i < 2000; ++i) {
    auto child = sys.await(holder.cap_create_revtree(root_h));
    if (child.ok()) {
      // Tolerate per-op timeouts under loss, like the chaos soak does; a revoke of a cap we
      // just created may still time out on the reply leg.
      if (sys.await(holder.cap_revoke(child.value())).ok()) {
        ++completed;
      }
    }
    for (Controller* c : sys.controllers()) {
      ASSERT_LE(c->completed_peer_op_cache_size(), Controller::kCompletedPeerOpCacheCap)
          << "op " << i;
    }
  }
  sys.loop().run();
  ASSERT_GT(completed, 1000);
  // The run spanned many TTL windows, so eviction must have reclaimed the bulk of the
  // completed ops: what remains is one window's worth, far below everything that ever ran.
  EXPECT_GT(sys.loop().now().ns(), 10 * cfg.peer_op_dedup_ttl.ns());
  EXPECT_LT(c0.completed_peer_op_cache_size(), static_cast<size_t>(completed));
  EXPECT_LE(c0.completed_peer_op_cache_size(), Controller::kCompletedPeerOpCacheCap);
}

}  // namespace
}  // namespace fractos
