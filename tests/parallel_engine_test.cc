// Tests for the sharded parallel simulation engine (DESIGN.md §4j).
//
// The contract under test has two halves:
//   * Shard-count invariance — a sharded run fires the canonical (when, src_rack, rack_seq)
//     event order, so every per-rack observable (latency samples, traffic counters, merged
//     metrics, span dumps, tax breakdowns) is identical for 1, 2, and 4 shards. The 1-shard
//     cooperative run is the ground truth the threaded runs must reproduce.
//   * Run-to-run determinism — a parallel run is byte-stable across repetitions regardless
//     of thread scheduling: cross-shard events are ordered by their (when, seq) stamp, never
//     by wall-clock mailbox arrival.
//
// The end-to-end differential runs bench_scaleout's 12-node face-verification scenario
// (3 pods striped over 4 racks) for both the FractOS deployment and the CPU-centric
// baseline, at every shard count, and compares full run fingerprints.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/face_verify.h"
#include "src/core/system.h"
#include "src/sim/metrics.h"
#include "src/sim/tax_report.h"

namespace fractos {
namespace {

// --- engine-level invariants ------------------------------------------------------------------

// Events scheduled from four rack namespaces must fire in the canonical order for any shard
// count — including equal-time events, which order by (src_rack, per-rack issue order).
std::vector<std::pair<int64_t, int>> coop_firing_order(uint32_t shards) {
  EventLoop loop;
  loop.enable_sharding(shards, /*num_racks=*/4, Duration::nanos(100));
  std::vector<std::pair<int64_t, int>> fired;
  for (uint32_t r = 0; r < 4; ++r) {
    RackScope scope(r);
    for (int i = 0; i < 64; ++i) {
      const int tag = static_cast<int>(r) * 1000 + i;
      // Deliberately collapse many events onto few timestamps to exercise tie-breaking.
      loop.schedule_at(Time::from_ns((i * 7) % 5), [&fired, &loop, tag]() {
        fired.emplace_back(loop.now().ns(), tag);
      });
    }
  }
  loop.run();
  return fired;
}

TEST(ShardedEngine, CooperativeOrderIsShardCountInvariant) {
  const auto one = coop_firing_order(1);
  ASSERT_EQ(one.size(), 256u);
  EXPECT_EQ(one, coop_firing_order(2));
  EXPECT_EQ(one, coop_firing_order(4));
}

// A ring of cross-rack chains driven through post_remote. Each rack records its own firing
// times (rack-confined state, so the recording itself is race-free under run_parallel).
struct ChainResult {
  std::vector<std::vector<int64_t>> per_rack;
  uint64_t events = 0;
  int64_t final_now = 0;
  uint64_t mailbox_hwm = 0;
};

ChainResult run_chains(uint32_t shards, bool parallel) {
  constexpr uint32_t kRacks = 4;
  EventLoop loop;
  loop.enable_sharding(shards, kRacks, Duration::nanos(100));

  struct Chain {
    EventLoop* loop;
    std::vector<std::vector<int64_t>> rec{kRacks};
    void step(uint32_t rack, int depth) {
      rec[rack].push_back(loop->now().ns());
      if (depth == 0) {
        return;
      }
      const uint32_t next = (rack + 1) % kRacks;
      // 150 ns >= the 100 ns lookahead; distinct chains collide on timestamps on purpose.
      loop->post_remote(next, loop->now() + Duration::nanos(150),
                        [this, next, depth]() { step(next, depth - 1); });
    }
  };
  Chain chain{&loop};

  for (uint32_t r = 0; r < kRacks; ++r) {
    RackScope scope(r);
    for (int c = 0; c < 3; ++c) {
      loop.schedule_at(Time::from_ns(r + c), [&chain, r]() { chain.step(r, 200); });
    }
  }
  ChainResult out;
  out.events = parallel ? loop.run_parallel() : loop.run();
  out.per_rack = std::move(chain.rec);
  out.final_now = loop.now().ns();
  out.mailbox_hwm = loop.mailbox_high_water();
  return out;
}

TEST(ShardedEngine, ParallelChainsMatchCooperativeBaseline) {
  const ChainResult base = run_chains(1, /*parallel=*/false);
  ASSERT_EQ(base.events, 4u * 3u * 201u);
  for (const uint32_t shards : {2u, 4u}) {
    const ChainResult coop = run_chains(shards, /*parallel=*/false);
    EXPECT_EQ(base.per_rack, coop.per_rack) << shards << " shards, cooperative";
    const ChainResult par = run_chains(shards, /*parallel=*/true);
    EXPECT_EQ(base.per_rack, par.per_rack) << shards << " shards, parallel";
    EXPECT_EQ(base.events, par.events);
    EXPECT_EQ(base.final_now, par.final_now);
    // Chains hop between racks on different shards every step, so the windowed run must
    // have routed events through the cross-shard mailboxes.
    EXPECT_GT(par.mailbox_hwm, 0u);
  }
}

TEST(ShardedEngine, ParallelRunIsDeterministicAcrossRepetitions) {
  const ChainResult first = run_chains(4, /*parallel=*/true);
  for (int rep = 0; rep < 9; ++rep) {
    const ChainResult again = run_chains(4, /*parallel=*/true);
    ASSERT_EQ(first.per_rack, again.per_rack) << "repetition " << rep;
    ASSERT_EQ(first.events, again.events);
    ASSERT_EQ(first.final_now, again.final_now);
  }
}

// --- configuration validation ------------------------------------------------------------------

TEST(TopologyValidate, RejectsUnevenFatTree) {
  const TopologySpec spec = TopologySpec::fat_tree(/*nodes_per_rack=*/8, /*num_spines=*/2);
  EXPECT_FALSE(spec.validate(16).has_value());
  EXPECT_FALSE(spec.validate(0).has_value());  // unknown size: shape-only checks
  const auto err = spec.validate(20);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("does not divide"), std::string::npos);
  EXPECT_NE(err->find("add 4 node(s)"), std::string::npos);

  TopologySpec no_spines = TopologySpec::fat_tree(8, 2);
  no_spines.num_spines = 0;
  ASSERT_TRUE(no_spines.validate().has_value());
  EXPECT_NE(no_spines.validate()->find("num_spines"), std::string::npos);

  TopologySpec empty_racks = TopologySpec::fat_tree(8, 2);
  empty_racks.nodes_per_rack = 0;
  ASSERT_TRUE(empty_racks.validate().has_value());

  EXPECT_FALSE(TopologySpec::single_switch().validate(17).has_value());
}

TEST(ShardedConfig, ValidateRejectsInconsistentEngineSettings) {
  SystemConfig flat;
  flat.engine_shards = 2;
  flat.engine_racks = 4;
  ASSERT_TRUE(flat.validate().has_value());
  EXPECT_NE(flat.validate()->find("fat-tree"), std::string::npos);

  SystemConfig half;
  half.topology = TopologySpec::fat_tree(3, 2);
  half.engine_shards = 2;
  ASSERT_TRUE(half.validate().has_value());
  EXPECT_NE(half.validate()->find("both be set"), std::string::npos);

  SystemConfig starved;
  starved.topology = TopologySpec::fat_tree(3, 2);
  starved.engine_shards = 4;
  starved.engine_racks = 2;
  ASSERT_TRUE(starved.validate().has_value());
  EXPECT_NE(starved.validate()->find("own no rack"), std::string::npos);

  SystemConfig sized;
  sized.topology = TopologySpec::fat_tree(3, 2);
  sized.engine_shards = 2;
  sized.engine_racks = 4;
  EXPECT_FALSE(sized.validate(12).has_value());
  ASSERT_TRUE(sized.validate(15).has_value());

  SystemConfig faulty;
  faulty.topology = TopologySpec::fat_tree(3, 2);
  faulty.engine_shards = 2;
  faulty.engine_racks = 4;
  faulty.faults = FaultPlan{};
  ASSERT_TRUE(faulty.validate().has_value());
  EXPECT_NE(faulty.validate()->find("clean fabric"), std::string::npos);
}

// --- end-to-end differential: bench_scaleout's 12-node face-verify scenario -------------------
//
// 3 pods of 4 nodes, resource classes striped across 4 racks (frontends = rack 0, FS =
// rack 1, storage = rack 2, GPUs = rack 3) — every request crosses the bisection.

constexpr uint32_t kPods = 3;
constexpr uint32_t kRacks = 4;
constexpr int kPerPod = 6;
constexpr int kInflight = 2;

FaceVerifyParams test_params() {
  FaceVerifyParams p;
  p.image_bytes = 16 << 10;
  p.images_per_batch = 2;
  p.num_batches = 3;
  p.pool_slots = 2;
  p.per_image_compute = Duration::micros(120);
  return p;
}

// Runs the full scenario at `shards` and returns a fingerprint string covering every
// observable the differential must pin: event count, final simulated time, per-request
// latency samples, traffic counters, merged per-rack metrics, and (when traced) the merged
// span dump plus the disaggregation-tax table of the measured window.
template <typename App>
std::string facever_fingerprint(uint32_t shards, bool traced, bool lazy_mesh = false) {
  SystemConfig cfg;
  cfg.topology = TopologySpec::fat_tree(kPods, 2);
  cfg.engine_shards = shards;
  cfg.engine_racks = kRacks;
  cfg.lazy_controller_mesh = lazy_mesh;
  System sys(cfg);

  std::vector<std::unique_ptr<MetricsRegistry>> regs;
  std::vector<std::unique_ptr<SpanTracer>> tracers;
  for (uint32_t r = 0; r < kRacks; ++r) {
    regs.push_back(std::make_unique<MetricsRegistry>());
    sys.loop().set_rack_metrics(r, regs.back().get());
    if (traced) {
      tracers.push_back(std::make_unique<SpanTracer>(uint64_t{r} << 40));
      sys.loop().set_rack_span_tracer(r, tracers.back().get());
    }
  }

  for (const char* role : {"frontend", "fs", "storage", "gpu"}) {
    for (uint32_t p = 0; p < kPods; ++p) {
      sys.add_node(std::string(role) + std::to_string(p));
    }
  }
  std::vector<std::unique_ptr<FaceVerifyCluster>> clusters;
  std::vector<std::unique_ptr<App>> apps;
  for (uint32_t p = 0; p < kPods; ++p) {
    auto c = std::make_unique<FaceVerifyCluster>();
    c->frontend_node = p;
    c->fs_node = kPods + p;
    c->storage_node = 2 * kPods + p;
    c->gpu_node = 3 * kPods + p;
    c->nvme = std::make_unique<SimNvme>(&sys.loop());
    c->gpu = std::make_unique<SimGpu>(&sys.net(), c->gpu_node);
    clusters.push_back(std::move(c));
  }
  for (uint32_t p = 0; p < kPods; ++p) {
    if constexpr (std::is_same_v<App, FaceVerifyFractos>) {
      apps.push_back(
          std::make_unique<App>(&sys, clusters[p].get(), Loc::kHost, test_params()));
    } else {
      apps.push_back(std::make_unique<App>(&sys, clusters[p].get(), test_params()));
    }
    apps.back()->ingest_database();
  }
  for (auto& app : apps) {
    const Result<bool> warm = sys.await(app->verify(0));
    FRACTOS_CHECK(warm.ok() && warm.value());
  }

  // Closed-loop measured phase. All completion bookkeeping runs on frontend (rack 0)
  // events, so the shared vectors below are touched by exactly one shard.
  std::vector<int> issued(kPods, 0);
  std::vector<uint32_t> round(kPods, 0);
  std::vector<int64_t> lat_ns;
  int done = 0;
  std::function<void(uint32_t)> next = [&](uint32_t p) {
    if (issued[p] == kPerPod) {
      return;
    }
    ++issued[p];
    const uint32_t batch = round[p]++ % test_params().num_batches;
    const Time t0 = sys.loop().now();
    apps[p]->verify(batch).on_ready([&, t0, p](Result<bool>&& r) {
      FRACTOS_CHECK(r.ok() && r.value());
      lat_ns.push_back((sys.loop().now() - t0).ns());
      ++done;
      next(p);
    });
  };

  uint64_t trace_root = 0;
  {
    RackScope scope(0);  // frontends live in rack 0
    std::optional<SpanScope> span_scope;
    if (traced) {
      trace_root = tracers[0]->start_trace("driver", "measured", sys.loop().now());
      span_scope.emplace(tracers[0]->context_of(trace_root));
    }
    for (uint32_t p = 0; p < kPods; ++p) {
      for (int i = 0; i < kInflight; ++i) {
        next(p);
      }
    }
  }
  const uint64_t fired = sys.loop().run_parallel();
  FRACTOS_CHECK(done == static_cast<int>(kPods) * kPerPod);
  if (traced) {
    tracers[0]->end(trace_root, sys.loop().now());
  }

  std::string out;
  out += "events=" + std::to_string(fired) + "\n";
  out += "steps=" + std::to_string(sys.loop().steps()) + "\n";
  out += "now_ns=" + std::to_string(sys.loop().now().ns()) + "\n";
  out += "lat_ns=";
  for (const int64_t v : lat_ns) {
    out += std::to_string(v) + ",";
  }
  out += "\n";
  const TrafficCounters& c = sys.net().counters();
  out += "msgs=" + std::to_string(c.total_messages()) +
         " bytes=" + std::to_string(c.total_bytes()) +
         " cross=" + std::to_string(c.total_cross_messages()) + "/" +
         std::to_string(c.total_cross_bytes()) +
         " rack_local=" + std::to_string(c.total_rack_local_messages()) + "/" +
         std::to_string(c.total_rack_local_bytes()) +
         " cross_rack=" + std::to_string(c.total_cross_rack_messages()) + "/" +
         std::to_string(c.total_cross_rack_bytes()) + "\n";
  out += "max_port_queue=" + std::to_string(sys.net().topology().max_port_queue_bytes()) +
         " ecn=" + std::to_string(sys.net().topology().total_ecn_marks()) + "\n";
  MetricsRegistry merged;
  for (const auto& reg : regs) {
    merged.merge_from(*reg);
  }
  out += merged.serialize();
  if (traced) {
    std::vector<const SpanTracer*> view;
    for (const auto& t : tracers) {
      view.push_back(t.get());
    }
    out += serialize_spans(view);
    out += tax_table({{"measured", fold_tax(view, trace_root)}});
  }
  return out;
}

TEST(ShardedDifferential, FaceVerifyFractosMatchesAcrossShardCounts) {
  const std::string base = facever_fingerprint<FaceVerifyFractos>(1, /*traced=*/false);
  EXPECT_EQ(base, facever_fingerprint<FaceVerifyFractos>(2, false));
  EXPECT_EQ(base, facever_fingerprint<FaceVerifyFractos>(4, false));
}

TEST(ShardedDifferential, FaceVerifyBaselineMatchesAcrossShardCounts) {
  const std::string base = facever_fingerprint<FaceVerifyBaseline>(1, /*traced=*/false);
  EXPECT_EQ(base, facever_fingerprint<FaceVerifyBaseline>(2, false));
  EXPECT_EQ(base, facever_fingerprint<FaceVerifyBaseline>(4, false));
}

TEST(ShardedDifferential, TracedRunMatchesAcrossShardCounts) {
  // Spans and the folded tax table are part of the fingerprint here: rack-namespaced span
  // ids and the rack-boundary bubbling rule must make traces shard-count-invariant too.
  const std::string base = facever_fingerprint<FaceVerifyFractos>(1, /*traced=*/true);
  EXPECT_EQ(base, facever_fingerprint<FaceVerifyFractos>(4, true));
}

TEST(ShardedDifferential, LazyMeshPreservesWorkloadResults) {
  // Lazy peer meshing (SystemConfig::lazy_controller_mesh) creates channels on first use
  // at zero simulated cost. The revocation-cleanup broadcast fans out only to connected
  // peers, so global message/step totals legitimately shrink; everything the workload can
  // observe — the measured-window event count and every per-request latency — must not
  // move.
  const std::string eager = facever_fingerprint<FaceVerifyFractos>(4, /*traced=*/false);
  const std::string lazy =
      facever_fingerprint<FaceVerifyFractos>(4, /*traced=*/false, /*lazy_mesh=*/true);
  const auto line = [](const std::string& s, const char* key) {
    const size_t b = s.find(key);
    EXPECT_NE(b, std::string::npos) << key;
    return s.substr(b, s.find('\n', b) - b);
  };
  EXPECT_EQ(line(eager, "events="), line(lazy, "events="));
  EXPECT_EQ(line(eager, "lat_ns="), line(lazy, "lat_ns="));
  EXPECT_EQ(line(eager, "facever.requests"), line(lazy, "facever.requests"));
  EXPECT_EQ(line(eager, "nvme.reads"), line(lazy, "nvme.reads"));
}

TEST(ShardedConfig, ValidateRejectsLazyMeshWithReplication) {
  SystemConfig cfg;
  cfg.lazy_controller_mesh = true;
  cfg.replication_group_size = 3;
  const auto err = cfg.validate();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("lazy_controller_mesh"), std::string::npos) << *err;
}

TEST(ShardedDifferential, ParallelWorkloadIsByteIdenticalAcrossTenRuns) {
  const std::string first = facever_fingerprint<FaceVerifyFractos>(4, /*traced=*/false);
  for (int rep = 0; rep < 9; ++rep) {
    ASSERT_EQ(first, facever_fingerprint<FaceVerifyFractos>(4, false))
        << "repetition " << rep;
  }
}

}  // namespace
}  // namespace fractos
